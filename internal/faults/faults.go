// Package faults injects crash and Byzantine failures into house-hunting
// colonies, implementing the paper's §6 "Fault tolerance" extension: "a small
// number of ants suffering from crash-faults or even malicious faults should
// not affect the overall populations of recruiting ants and the algorithm's
// performance". EXPERIMENTS.md E13 quantifies that claim.
//
// Faulty ants still occupy the model (every ant must make exactly one call
// per round), so:
//
//   - a crashed ant wanders to its last known nest and stays there — a lost
//     ant that still physically exists and perturbs population counts;
//   - a Byzantine ant searches until it finds a BAD nest and then actively
//     recruits for it forever, trying to lure the colony to a bad home.
//
// Both wrappers implement core.Faulty, excluding them from the convergence
// census: the problem is for the correct ants to co-locate.
package faults

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// committer mirrors core.Committer without importing core (the dependency
// points from core/experiment down into faults's wrapped colonies).
type committer interface {
	Committed() (sim.NestID, bool)
}

// decider mirrors core.Decided without importing core. Fault wrappers forward
// the inner agent's verdict only when the inner agent implements the
// interface: unconditionally implementing it would turn every wrapped colony
// into a "deciding" one and stall core.Census.Converged for algorithms that
// never decide.
type decider interface {
	Decided() bool
}

// CrashAnt wraps an agent and kills it at a scheduled round. Before the
// crash it is transparent. After the crash it repeatedly walks to the last
// candidate nest it knew (or waits passively at home if it never learned
// one) and ignores everything it observes.
type CrashAnt struct {
	inner      sim.Agent
	crashRound int
	crashed    bool
	lastNest   sim.NestID
}

var _ sim.Agent = (*CrashAnt)(nil)

// NewCrashAnt schedules inner to crash at the start of crashRound (1-based).
func NewCrashAnt(inner sim.Agent, crashRound int) (*CrashAnt, error) {
	if inner == nil {
		return nil, fmt.Errorf("faults: nil inner agent")
	}
	if crashRound < 1 {
		return nil, fmt.Errorf("faults: crash round %d must be >= 1", crashRound)
	}
	return &CrashAnt{inner: inner, crashRound: crashRound}, nil
}

// Act implements sim.Agent.
func (c *CrashAnt) Act(round int) sim.Action {
	if !c.crashed && round >= c.crashRound {
		c.crashed = true
	}
	if !c.crashed {
		return c.inner.Act(round)
	}
	if c.lastNest != sim.Home {
		return sim.Goto(c.lastNest)
	}
	return sim.Recruit(false, sim.Home)
}

// Observe implements sim.Agent.
func (c *CrashAnt) Observe(round int, out sim.Outcome) {
	if c.crashed {
		// A dead ant can still be dragged around by recruiters; track where it
		// ends up so its corpse keeps occupying a consistent location, but
		// never wake the inner agent again.
		if out.Nest != sim.Home {
			c.lastNest = out.Nest
		}
		return
	}
	if out.Nest != sim.Home {
		c.lastNest = out.Nest
	}
	c.inner.Observe(round, out)
}

// Faulty implements the core.Faulty contract once the crash has fired.
func (c *CrashAnt) Faulty() bool { return c.crashed }

// Committed delegates to the inner agent before the crash so censuses remain
// meaningful, and reports no commitment afterwards.
func (c *CrashAnt) Committed() (sim.NestID, bool) {
	if c.crashed {
		return sim.Home, false
	}
	if com, ok := c.inner.(committer); ok {
		return com.Committed()
	}
	return sim.Home, false
}

// crashDecider is a CrashAnt over a deciding inner agent: it forwards the
// inner verdict so a not-yet-crashed ant still counts as a decider in
// core.TakeCensus. Without the forwarding, wrapping ANY ant of a deciding
// algorithm (e.g. Algorithm 2) made convergence unreachable: the wrapped ant
// counted toward Total but could never count as decided, so the
// Decided == Total gate never closed. The wrap helpers select this subtype
// exactly when the inner agent decides.
type crashDecider struct{ *CrashAnt }

// Decided forwards the inner agent's verdict until the crash; afterwards the
// ant is Faulty and the census never consults it.
func (c crashDecider) Decided() bool {
	if c.crashed {
		return false
	}
	return c.inner.(decider).Decided()
}

// wrapCrash wraps inner to crash at crashRound, preserving the inner agent's
// decider contract when it has one.
func wrapCrash(inner sim.Agent, crashRound int) (sim.Agent, error) {
	crashed, err := NewCrashAnt(inner, crashRound)
	if err != nil {
		return nil, err
	}
	if _, ok := inner.(decider); ok {
		return crashDecider{crashed}, nil
	}
	return crashed, nil
}

// ByzantineAnt actively works against the colony: it searches until it finds
// a bad nest, then recruits for that nest every round, kidnapping correct
// ants into a site the colony must not choose. If the environment has no bad
// nest it searches forever, which merely removes it from the workforce.
//
// Stream-consumption contract: a ByzantineAnt NEVER draws from its source.
// Its whole policy — search, latch the first bad nest, lure forever — is
// deterministic given its outcomes (the search destinations come from the
// ENGINE's environment stream, like every searcher's). The source parameter
// exists so each adversary owns a private stream should a future strategy
// randomize, but today it stays untouched, and the batch engine's fault lane
// relies on that: it materializes no per-ant stream for Byzantine ants at
// all, which is bit-identical precisely because this contract holds (pinned
// by TestByzantineAntDrawsNothing).
type ByzantineAnt struct {
	src     *rng.Source
	badNest sim.NestID
}

var _ sim.Agent = (*ByzantineAnt)(nil)

// NewByzantineAnt builds a luring adversary.
func NewByzantineAnt(src *rng.Source) *ByzantineAnt {
	return &ByzantineAnt{src: src}
}

// Act implements sim.Agent.
func (b *ByzantineAnt) Act(int) sim.Action {
	if b.badNest == sim.Home {
		return sim.Search()
	}
	return sim.Recruit(true, b.badNest)
}

// Observe implements sim.Agent.
func (b *ByzantineAnt) Observe(_ int, out sim.Outcome) {
	if b.badNest == sim.Home && out.Nest != sim.Home && out.Quality == 0 {
		b.badNest = out.Nest
	}
}

// Faulty implements the core.Faulty contract: Byzantine ants never count
// toward convergence.
func (b *ByzantineAnt) Faulty() bool { return true }

// Plan describes a fault-injection configuration for a colony.
type Plan struct {
	// CrashFraction of the colony crashes at a uniformly random round in
	// [1, CrashWindow].
	CrashFraction float64
	// CrashWindow is the last round by which scheduled crashes fire;
	// default 64 if <= 0 and crashes are requested.
	CrashWindow int
	// ByzantineFraction of the colony is replaced by luring adversaries.
	ByzantineFraction float64
}

// Validate checks the plan's fractions.
func (p Plan) Validate() error {
	if p.CrashFraction < 0 || p.ByzantineFraction < 0 {
		return fmt.Errorf("faults: negative fault fraction %+v", p)
	}
	if p.CrashFraction+p.ByzantineFraction > 1 {
		return fmt.Errorf("faults: fault fractions sum to %v > 1",
			p.CrashFraction+p.ByzantineFraction)
	}
	return nil
}

// Apply wraps a built colony according to the plan, choosing victims
// uniformly at random from src. It returns a wrapper function suitable for
// core.RunConfig.Wrap.
func (p Plan) Apply(src *rng.Source) func([]sim.Agent) ([]sim.Agent, error) {
	return func(agents []sim.Agent) ([]sim.Agent, error) {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		n := len(agents)
		nCrash := int(p.CrashFraction * float64(n))
		nByz := int(p.ByzantineFraction * float64(n))
		window := p.CrashWindow
		if window <= 0 {
			window = 64
		}
		perm := src.Perm(n)
		idx := 0
		for ; idx < nCrash; idx++ {
			victim := perm[idx]
			crashed, err := wrapCrash(agents[victim], 1+src.Intn(window))
			if err != nil {
				return nil, err
			}
			agents[victim] = crashed
		}
		for ; idx < nCrash+nByz; idx++ {
			victim := perm[idx]
			agents[victim] = NewByzantineAnt(src.Split(uint64(victim)))
		}
		return agents, nil
	}
}
