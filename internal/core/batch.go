package core

import (
	"fmt"

	"github.com/gmrl/househunt/internal/sim"
)

// BatchCompilable is implemented by algorithms that can lower themselves to
// the batch engine's compiled form (sim.Program). CompileBatch returns
// ok = false when the algorithm cannot be compiled for the given parameters;
// callers then fall back to the scalar agent path.
type BatchCompilable interface {
	Algorithm
	CompileBatch(n int, env sim.Environment) (sim.Program, bool)
}

// CompileForBatch reports whether algo + cfg can run on the batch engine and
// returns the compiled program if so. Eligibility requires a compilable
// algorithm and a configuration with none of the scalar-only features: agent
// wrappers (faults, asynchrony), traces, metrics, custom matchers and the
// goroutine-per-ant mode all hold per-agent or per-engine state the batch
// lanes do not model.
func CompileForBatch(algo Algorithm, cfg RunConfig) (sim.Program, bool) {
	if algo == nil || cfg.N <= 0 || cfg.Env.K() == 0 {
		return sim.Program{}, false
	}
	if cfg.Wrap != nil || cfg.Trace != nil || cfg.Metrics != nil || cfg.NewMatcher != nil || cfg.Concurrent {
		return sim.Program{}, false
	}
	bc, ok := algo.(BatchCompilable)
	if !ok {
		return sim.Program{}, false
	}
	return bc.CompileBatch(cfg.N, cfg.Env)
}

// RunBatch executes one replicate per seed on the batch engine and returns
// results equal to what Run would produce for the same (algo, cfg, seed)
// triples — same winners, same round counts, same censuses. The boolean
// reports eligibility: when false, the caller must run the scalar path
// (cfg cannot run batched); no work has been done in that case.
func RunBatch(algo Algorithm, cfg RunConfig, seeds []uint64) ([]Result, bool, error) {
	prog, ok := CompileForBatch(algo, cfg)
	if !ok {
		return nil, false, nil
	}
	if len(seeds) == 0 {
		return nil, true, fmt.Errorf("core: batch run needs at least one seed")
	}
	batch, err := sim.NewBatch(cfg.Env, prog, cfg.N)
	if err != nil {
		return nil, true, fmt.Errorf("core: constructing batch engine: %w", err)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(cfg.N, cfg.Env.K())
	}
	window := cfg.StabilityWindow
	if window <= 0 {
		window = 1
	}
	raw, err := batch.Run(seeds, maxRounds, window)
	if err != nil {
		return nil, true, fmt.Errorf("core: running %s batched: %w", algo.Name(), err)
	}
	results := make([]Result, len(raw))
	for i, r := range raw {
		results[i] = Result{
			Solved:        r.Solved,
			Winner:        r.Winner,
			WinnerQuality: r.WinnerQuality,
			Rounds:        r.Rounds,
			FinalCensus: Census{
				Committed: r.Committed,
				// Deciding programs (Final-flagged states, Algorithm 2)
				// report the decided count like TakeCensus would; others
				// expose commitment only (-1).
				Decided: r.Decided,
				Total:   cfg.N,
			},
			Algorithm: algo.Name(),
		}
	}
	return results, true, nil
}
