package sim

import (
	"errors"
	"fmt"

	"github.com/gmrl/househunt/internal/metrics"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/trace"
)

// Engine executes a colony of agents against an environment in synchronous
// rounds, implementing the paper's §2 model exactly (see the package comment
// for the round-resolution discipline).
//
// An Engine is single-use: construct, Step/Run to completion, inspect. After
// any error the engine is poisoned and further Steps return the same error.
// Engines are not safe for concurrent use; the concurrent execution mode in
// RunConcurrent drives one engine from a single resolver goroutine.
type Engine struct {
	env     Environment
	agents  []Agent
	matcher Matcher

	envSrc   *rng.Source // search destinations
	matchSrc *rng.Source // recruitment pairing

	round  int
	loc    []NestID // location of each ant at the end of the last round
	counts []int    // population per nest (index 0 = home) at end of last round

	visited []bool // flat n×(K+1): ant i has visited nest j (home trivially true)

	actions  []Action
	outcomes []Outcome

	recruiters []int // ant indices recruiting this round
	slotOf     []int // ant index -> recruiter slot this round (-1 otherwise)
	active     []bool
	carries    []int
	anyCarry   bool
	capturedBy []int32
	succeeded  []bool
	captures   []int

	strict bool
	err    error
	hook   RoundHook // end-of-round callback (adaptive fault controller); nil otherwise

	tracer *trace.Trace
	reg    *metrics.Registry

	cRounds, cSearch, cGo, cRecruit   *metrics.Counter
	cActive, cSuccess, cSelf, cErrors *metrics.Counter
}

// Option configures an Engine.
type Option func(*engineConfig)

type engineConfig struct {
	seed    uint64
	matcher Matcher
	strict  bool
	tracer  *trace.Trace
	reg     *metrics.Registry
}

// WithSeed sets the root seed for environment and matcher randomness.
// Default 1. Agent randomness is owned by the agents themselves.
func WithSeed(seed uint64) Option {
	return func(c *engineConfig) { c.seed = seed }
}

// WithMatcher replaces the recruitment pairing model; the default is the
// paper's Algorithm 1.
func WithMatcher(m Matcher) Option {
	return func(c *engineConfig) { c.matcher = m }
}

// WithStrict toggles protocol validation (the go/recruit visited-nest
// preconditions of §2). Strict is on by default; turning it off removes the
// checks for maximum benchmark throughput.
func WithStrict(strict bool) Option {
	return func(c *engineConfig) { c.strict = strict }
}

// WithTrace attaches a trace that receives per-round population records and,
// if the trace has events enabled, recruitment events.
func WithTrace(t *trace.Trace) Option {
	return func(c *engineConfig) { c.tracer = t }
}

// WithMetrics attaches a metrics registry for engine instrumentation.
func WithMetrics(r *metrics.Registry) Option {
	return func(c *engineConfig) { c.reg = r }
}

// New constructs an engine for the given environment and agents. The agent
// slice is captured, not copied: the caller must not mutate it afterwards.
func New(env Environment, agents []Agent, opts ...Option) (*Engine, error) {
	if env.K() == 0 {
		return nil, errors.New("sim: engine needs a non-empty environment")
	}
	if len(agents) == 0 {
		return nil, errors.New("sim: engine needs at least one agent")
	}
	for i, a := range agents {
		if a == nil {
			return nil, fmt.Errorf("sim: agent %d is nil", i)
		}
	}
	cfg := engineConfig{seed: 1, strict: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.matcher == nil {
		cfg.matcher = &AlgorithmOneMatcher{}
	}
	if cfg.reg == nil {
		cfg.reg = metrics.NewRegistry()
	}
	if cfg.tracer != nil && cfg.tracer.NumNests() != env.K() {
		return nil, fmt.Errorf("sim: trace built for %d nests, environment has %d", cfg.tracer.NumNests(), env.K())
	}

	n := len(agents)
	k := env.K()
	root := rng.New(cfg.seed)
	e := &Engine{
		env:        env,
		agents:     agents,
		matcher:    cfg.matcher,
		envSrc:     root.Split(0),
		matchSrc:   root.Split(1),
		loc:        make([]NestID, n),
		counts:     make([]int, k+1),
		visited:    make([]bool, n*(k+1)),
		actions:    make([]Action, n),
		outcomes:   make([]Outcome, n),
		recruiters: make([]int, 0, n),
		slotOf:     make([]int, n),
		active:     make([]bool, 0, n),
		carries:    make([]int, 0, n),
		capturedBy: make([]int32, 0, n),
		succeeded:  make([]bool, 0, n),
		captures:   make([]int, 0, n),
		strict:     cfg.strict,
		tracer:     cfg.tracer,
		reg:        cfg.reg,
	}
	e.counts[Home] = n // everyone starts at the home nest
	if sized, ok := e.matcher.(sizedMatcher); ok {
		sized.Reserve(n) // recruiting sets reach colony size; never grow mid-run
	}
	// Install the first round hook the colony carries (the adaptive fault
	// controller wraps every ant, all sharing one hook, so "first" is "the"
	// hook). The scan is construction-time only; unhooked colonies pay one
	// nil check per round.
	for _, a := range agents {
		if rh, ok := a.(RoundHooked); ok {
			e.hook = rh.RoundHook()
			break
		}
	}
	e.cRounds = e.reg.Counter("engine.rounds")
	e.cSearch = e.reg.Counter("engine.actions.search")
	e.cGo = e.reg.Counter("engine.actions.go")
	e.cRecruit = e.reg.Counter("engine.actions.recruit")
	e.cActive = e.reg.Counter("engine.recruit.active")
	e.cSuccess = e.reg.Counter("engine.recruit.success")
	e.cSelf = e.reg.Counter("engine.recruit.selfpair")
	e.cErrors = e.reg.Counter("engine.protocol.violations")
	return e, nil
}

// N returns the colony size.
func (e *Engine) N() int { return len(e.agents) }

// K returns the number of candidate nests.
func (e *Engine) K() int { return e.env.K() }

// Env returns the environment.
func (e *Engine) Env() Environment { return e.env }

// Round returns the index of the last completed round (0 before any Step).
func (e *Engine) Round() int { return e.round }

// Count returns the population of nest i at the end of the last round.
func (e *Engine) Count(i NestID) int {
	if i < 0 || int(i) >= len(e.counts) {
		return 0
	}
	return e.counts[i]
}

// Counts returns a copy of the end-of-round populations, index 0 = home.
func (e *Engine) Counts() []int {
	return append([]int(nil), e.counts...)
}

// Location returns ant a's location at the end of the last round.
func (e *Engine) Location(a int) NestID { return e.loc[a] }

// Visited reports whether ant a has visited (or been recruited to) nest i.
func (e *Engine) Visited(a int, i NestID) bool {
	if i == Home {
		return true
	}
	if i < 0 || int(i) > e.env.K() {
		return false
	}
	return e.visited[a*(e.env.K()+1)+int(i)]
}

// Outcome returns ant a's outcome from the last completed round. It is only
// meaningful after at least one Step.
func (e *Engine) Outcome(a int) Outcome { return e.outcomes[a] }

// ActionTaken returns ant a's action in the last completed round.
func (e *Engine) ActionTaken(a int) Action { return e.actions[a] }

// Metrics returns the engine's metrics registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Err returns the poisoning error, if any.
func (e *Engine) Err() error { return e.err }

// protocolError builds, records and poisons with a protocol violation.
func (e *Engine) protocolError(ant int, format string, args ...any) error {
	e.cErrors.Inc()
	e.err = fmt.Errorf("sim: round %d, ant %d: %s", e.round, ant, fmt.Sprintf(format, args...))
	return e.err
}

// Step executes one synchronous round: collect actions, apply moves, run the
// recruitment matching, compute end-of-round counts, deliver outcomes.
func (e *Engine) Step() error {
	if e.err != nil {
		return e.err
	}
	e.round++
	r := e.round
	for i, a := range e.agents {
		e.actions[i] = a.Act(r)
	}
	if err := e.resolve(); err != nil {
		return err
	}
	for i, a := range e.agents {
		a.Observe(r, e.outcomes[i])
	}
	// End-of-round hook: the adaptive fault controller observes and mutates
	// here — after every observe folded, before the caller's convergence
	// census — matching the batch lane's applySchedule position exactly.
	if e.hook != nil {
		if err := e.hook(e, r); err != nil {
			e.err = err
			return err
		}
	}
	return nil
}

// resolve applies the already-collected actions for round e.round. It is
// shared by Step and the concurrent runner.
func (e *Engine) resolve() error {
	r := e.round
	k := e.env.K()
	e.recruiters = e.recruiters[:0]

	// Apply moves and classify.
	for i := range e.agents {
		act := e.actions[i]
		e.slotOf[i] = -1
		switch act.Kind {
		case ActionSearch:
			dest := NestID(e.envSrc.Intn(k) + 1)
			e.loc[i] = dest
			e.visited[i*(k+1)+int(dest)] = true
			// Stash the destination so the outcome phase does not need a
			// second slice; Nest is filled in now, Count later.
			e.outcomes[i] = Outcome{Nest: dest, Quality: e.env.Quality(dest)}
			e.cSearch.Inc()
		case ActionGo:
			if act.Nest <= 0 || int(act.Nest) > k {
				return e.protocolError(i, "go(%d): nest out of range 1..%d", act.Nest, k)
			}
			if e.strict && !e.visited[i*(k+1)+int(act.Nest)] {
				return e.protocolError(i, "go(%d): nest never visited (§2 precondition)", act.Nest)
			}
			e.loc[i] = act.Nest
			e.outcomes[i] = Outcome{Nest: act.Nest, Quality: e.env.Quality(act.Nest)}
			e.cGo.Inc()
		case ActionRecruit:
			if act.Nest < 0 || int(act.Nest) > k {
				return e.protocolError(i, "recruit(%v,%d): nest out of range 0..%d", act.Active, act.Nest, k)
			}
			if act.Active && act.Nest == Home {
				return e.protocolError(i, "recruit(1,0): cannot actively recruit for the home nest")
			}
			if act.Carry < 0 {
				return e.protocolError(i, "recruit: negative carry %d", act.Carry)
			}
			if act.Carry > 1 && !act.Active {
				return e.protocolError(i, "recruit: carry %d requires active recruitment", act.Carry)
			}
			if e.strict && act.Nest != Home && !e.visited[i*(k+1)+int(act.Nest)] {
				return e.protocolError(i, "recruit(%v,%d): nest never visited (§2 precondition)", act.Active, act.Nest)
			}
			e.loc[i] = Home
			e.slotOf[i] = len(e.recruiters)
			e.recruiters = append(e.recruiters, i)
			e.cRecruit.Inc()
			if act.Active {
				e.cActive.Inc()
			}
		default:
			return e.protocolError(i, "invalid action kind %v", act.Kind)
		}
	}

	// Recruitment matching over R.
	nR := len(e.recruiters)
	e.active = e.active[:0]
	e.carries = e.carries[:0]
	e.capturedBy = e.capturedBy[:0]
	e.succeeded = e.succeeded[:0]
	e.captures = e.captures[:0]
	e.anyCarry = false
	for t := 0; t < nR; t++ {
		act := e.actions[e.recruiters[t]]
		e.active = append(e.active, act.Active)
		carry := act.Carry
		if carry < 1 {
			carry = 1
		}
		if carry > 1 {
			e.anyCarry = true
		}
		e.carries = append(e.carries, carry)
		e.capturedBy = append(e.capturedBy, -1)
		e.succeeded = append(e.succeeded, false)
		e.captures = append(e.captures, 0)
	}
	if nR > 0 {
		if e.anyCarry {
			cm, ok := e.matcher.(CarryMatcher)
			if !ok {
				return e.protocolError(e.recruiters[0],
					"transport (carry > 1) unsupported by matcher %q", e.matcher.Name())
			}
			cm.MatchCarry(nR, e.active, e.carries, e.matchSrc, e.capturedBy, e.succeeded)
		} else {
			e.matcher.Match(nR, e.active, e.matchSrc, e.capturedBy, e.succeeded)
		}
		for _, cb := range e.capturedBy {
			if cb >= 0 {
				e.captures[cb]++
			}
		}
	}

	// End-of-round populations.
	for i := range e.counts {
		e.counts[i] = 0
	}
	for _, l := range e.loc {
		e.counts[l]++
	}

	// Outcomes.
	for i := range e.agents {
		switch e.actions[i].Kind {
		case ActionSearch, ActionGo:
			e.outcomes[i].Count = e.counts[e.outcomes[i].Nest]
			e.outcomes[i].Recruited = false
			e.outcomes[i].Succeeded = false
			e.outcomes[i].SelfPaired = false
		case ActionRecruit:
			slot := e.slotOf[i]
			out := Outcome{Nest: e.actions[i].Nest, Count: e.counts[Home], Captures: e.captures[slot]}
			if cb := int(e.capturedBy[slot]); cb >= 0 {
				if cb == slot {
					out.SelfPaired = true
					out.Succeeded = true
					e.cSelf.Inc()
					e.cSuccess.Inc()
				} else {
					capturer := e.recruiters[cb]
					out.Nest = e.actions[capturer].Nest
					out.Recruited = true
					// Being recruited to a nest teaches its location: the
					// tandem run of the biology. This is what licenses the
					// subsequent go(j) calls of both algorithms.
					e.visited[i*(k+1)+int(out.Nest)] = true
				}
			}
			if e.succeeded[slot] && int(e.capturedBy[slot]) != slot {
				out.Succeeded = true
				e.cSuccess.Inc()
			}
			e.outcomes[i] = out
		}
	}

	e.cRounds.Inc()
	if e.tracer != nil {
		if err := e.tracer.RecordRound(r, e.counts, nil); err != nil {
			e.err = fmt.Errorf("sim: recording trace: %w", err)
			return e.err
		}
		if e.tracer.EventsEnabled() {
			for t := 0; t < nR; t++ {
				cb := int(e.capturedBy[t])
				if cb < 0 {
					continue
				}
				ant := e.recruiters[t]
				if cb == t {
					e.tracer.RecordEvent(trace.Event{
						Round: r, Kind: trace.EventSelfRecruit,
						Subject: ant, Object: ant, Nest: int(e.actions[ant].Nest),
					})
					continue
				}
				capturer := e.recruiters[cb]
				e.tracer.RecordEvent(trace.Event{
					Round: r, Kind: trace.EventRecruitSuccess,
					Subject: capturer, Object: ant, Nest: int(e.actions[capturer].Nest),
				})
			}
		}
	}
	return nil
}

// Teach marks nest as visited by ant a, as if the ant had been recruited
// there — the tandem run of the biology, performed out of band. It exists for
// the fault layer: an adaptive adversary relocating a Byzantine lurer to the
// colony's front-runner must license the lurer's subsequent recruit(1, nest)
// calls under strict §2 validation (a real lurer would simply walk there).
// Out-of-range arguments are ignored.
func (e *Engine) Teach(a int, nest NestID) {
	k := e.env.K()
	if a < 0 || a >= len(e.agents) || nest < 1 || int(nest) > k {
		return
	}
	e.visited[a*(k+1)+int(nest)] = true
}

// Run executes rounds until until returns true, maxRounds is reached, or an
// error occurs. It returns the number of the last completed round. The until
// predicate is evaluated after each round with the engine in its end-of-round
// state; a nil predicate runs to maxRounds.
func (e *Engine) Run(maxRounds int, until func(*Engine) bool) (int, error) {
	if maxRounds <= 0 {
		return e.round, fmt.Errorf("sim: Run needs positive maxRounds, got %d", maxRounds)
	}
	for e.round < maxRounds {
		if err := e.Step(); err != nil {
			return e.round, err
		}
		if until != nil && until(e) {
			return e.round, nil
		}
	}
	return e.round, nil
}
