package rng

import (
	"math"
	"testing"
)

// assertThresholdEquivalence drives NewThreshold(p).Draw and Source.Bernoulli(p)
// from identical stream positions for `draws` consecutive samples and demands
// bit-identical decisions AND bit-identical stream consumption — the contract
// the batch engine's fixed-point kernels rest on. Probabilities at or outside
// the [0, 1] boundary (and NaN) exercise the draw-free (and draw-and-reject)
// sentinels, whose consumption must match Bernoulli's exactly too.
func assertThresholdEquivalence(t *testing.T, p float64, seed uint64, draws int) {
	t.Helper()
	thr := NewThreshold(p)
	a := New(seed)
	b := New(seed)
	for d := 0; d < draws; d++ {
		want := a.Bernoulli(p)
		got := thr.Draw(b)
		if want != got {
			t.Fatalf("p=%v (threshold %d) draw %d: Draw=%v, Bernoulli=%v", p, thr, d, got, want)
		}
		if a.State() != b.State() {
			t.Fatalf("p=%v (threshold %d) draw %d: stream positions diverged (consumption differs)", p, thr, d)
		}
	}
}

// TestThresholdBoundaryProbabilities covers the sentinel and extreme regions:
// p <= 0 and p >= 1 (draw-free), NaN (draw-and-reject), subnormals, the
// smallest and largest in-(0,1) representables, and values straddling 2⁻⁵³
// where the ceiling in the derivation matters most.
func TestThresholdBoundaryProbabilities(t *testing.T) {
	t.Parallel()
	boundary := []float64{
		0, math.Copysign(0, -1), -1, -1e300, math.Inf(-1),
		1, math.Nextafter(1, 2), 2, 1e300, math.Inf(1),
		math.NaN(),
		5e-324,                      // smallest subnormal
		1e-310,                      // mid subnormal
		math.SmallestNonzeroFloat64, // = 5e-324, spelled via the constant
		0x1p-1074, 0x1p-1022, 0x1p-53, 0x1.0000000000001p-53, 0x1p-52,
		math.Nextafter(1, 0), // largest double below 1: threshold 2⁵³−1
		0.5, math.Nextafter(0.5, 0), math.Nextafter(0.5, 1),
		1.0 / 3, 2.0 / 3, 0.1, 0.9,
	}
	for i, p := range boundary {
		assertThresholdEquivalence(t, p, uint64(1000+i), 4096)
	}
	// Sentinel encodings are exactly the documented values.
	if NewThreshold(0) != ThresholdNever || NewThreshold(-3) != ThresholdNever {
		t.Error("p <= 0 must encode ThresholdNever")
	}
	if NewThreshold(1) != ThresholdAlways || NewThreshold(7) != ThresholdAlways {
		t.Error("p >= 1 must encode ThresholdAlways")
	}
	if got := NewThreshold(math.Nextafter(1, 0)); got != ThresholdAlways-1 {
		t.Errorf("largest p < 1 encodes %d, want 2^53-1", got)
	}
	if got := NewThreshold(5e-324); got != 1 {
		t.Errorf("smallest subnormal encodes %d, want 1", got)
	}
}

// TestThresholdCountRatiosExhaustive is the count-table equivalence: for the
// exact probabilities the batch engine tables — count/n for every count in
// {0..n} — the threshold must reproduce Bernoulli decision-for-decision and
// word-for-word. Small n run the full count range with many draws each;
// n = 1024 (the benchmark point) runs the full range with fewer draws.
func TestThresholdCountRatiosExhaustive(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 5, 17, 64, 255} {
		nF := float64(n)
		for c := 0; c <= n; c++ {
			assertThresholdEquivalence(t, float64(c)/nF, uint64(n*1000+c), 512)
		}
	}
	const n = 1024
	for c := 0; c <= n; c++ {
		assertThresholdEquivalence(t, float64(c)/n, uint64(7_000_000+c), 64)
	}
}

// TestThresholdProgramParamKnobs covers the remaining probabilities the
// compiled programs table: the quality-weighted rate q·c/n over graded
// qualities, the adaptive schedule c/(c+A) over its decay ladder, the quorum
// docility knob over a [0, 1] grid (degenerate endpoints included), and the
// approximate-n rate min(1, c/ñ) that stays on the float kernel but must
// still agree wherever a threshold is built for it.
func TestThresholdProgramParamKnobs(t *testing.T) {
	t.Parallel()
	const n = 96
	nF := float64(n)
	seed := uint64(31)
	for _, q := range []float64{0, 0.05, 1.0 / 3, 0.5, 0.9, 1} {
		for c := 0; c <= n; c += 7 {
			seed++
			assertThresholdEquivalence(t, q*float64(c)/nF, seed, 256)
		}
	}
	for _, decay := range []float64{nF, nF / 2, nF / 4, nF / 8, 1.5, 1} {
		for c := 0; c <= n; c += 5 {
			seed++
			cF := float64(c)
			assertThresholdEquivalence(t, cF/(cF+decay), seed, 256)
		}
	}
	for _, docility := range []float64{0, 0.05, 0.25, 0.5, 0.75, 0.999, 1} {
		seed++
		assertThresholdEquivalence(t, docility, seed, 2048)
	}
	for _, nEst := range []float64{nF * 0.5, nF * 0.77, nF, nF * 1.3} {
		for c := 0; c <= n; c += 11 {
			seed++
			p := float64(c) / nEst
			if p > 1 {
				p = 1
			}
			assertThresholdEquivalence(t, p, seed, 256)
		}
	}
}

// TestThresholdRandomProbabilities sweeps uniformly random probabilities and
// random raw bit patterns (clamped to the float range) for good measure.
func TestThresholdRandomProbabilities(t *testing.T) {
	t.Parallel()
	src := New(2015)
	for i := 0; i < 400; i++ {
		assertThresholdEquivalence(t, src.Float64(), uint64(i)*13+5, 256)
	}
	// Exponent-stratified samples reach tiny probabilities a uniform draw
	// never visits.
	for exp := 1; exp <= 1000; exp += 13 {
		p := math.Ldexp(src.Float64(), -exp)
		assertThresholdEquivalence(t, p, uint64(exp)*17+3, 256)
	}
}

// TestPermVariantsDrawIdentical pins the three permutation kernels to one
// draw sequence: PermInto (with its manually fused Lemire fast path),
// PermInto32 and PermAdvance must consume identical words — including the
// data-dependent rejection redraws — and the two materializing forms must
// produce the same permutation. A reference loop drawing Intn(i+1) plays the
// oracle for the draw sequence itself.
func TestPermVariantsDrawIdentical(t *testing.T) {
	t.Parallel()
	for _, n := range []int{0, 1, 2, 3, 7, 64, 257, 1024} {
		for seed := uint64(1); seed <= 20; seed++ {
			ref := New(seed)
			refPerm := make([]int, n)
			if n > 0 {
				refPerm[0] = 0
				for i := 1; i < n; i++ {
					j := ref.Intn(i + 1)
					refPerm[i] = refPerm[j]
					refPerm[j] = i
				}
			}

			a := New(seed)
			got := a.PermInto(make([]int, n))
			b := New(seed)
			got32 := b.PermInto32(make([]int32, n))
			c := New(seed)
			c.PermAdvance(n)

			if a.State() != ref.State() || b.State() != ref.State() || c.State() != ref.State() {
				t.Fatalf("n=%d seed=%d: stream positions diverged across perm variants", n, seed)
			}
			for i := range got {
				if got[i] != refPerm[i] || int(got32[i]) != refPerm[i] {
					t.Fatalf("n=%d seed=%d index %d: PermInto=%d PermInto32=%d oracle=%d",
						n, seed, i, got[i], got32[i], refPerm[i])
				}
			}
		}
	}
}
