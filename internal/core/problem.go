// Package core defines the HouseHunting problem of the paper and the runner
// that executes an algorithm against the simulation engine until the problem
// is solved (or a round budget expires).
//
// Problem statement (paper §2): an algorithm solves HouseHunting with k nests
// in T rounds with probability 1−δ if, with that probability, there is a nest
// i with q(i) = 1 such that ℓ(a,r) = i for all ants a and rounds r ≥ T.
//
// Both of the paper's algorithms settle into a commitment rather than a
// literal co-location (committed ants keep shuttling to the home nest to
// recruit stragglers — the paper's §4.2 remark adopts "all ants reached the
// final state / committed to the same unique nest" as termination). The
// runner therefore detects convergence on commitments: every non-faulty ant
// committed to the same good nest. A strict location check is available for
// tests via LocationConverged.
package core

import (
	"errors"
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// Committer is implemented by agents that expose their committed nest.
// Commitment drives convergence detection.
type Committer interface {
	// Committed returns the nest the ant is committed to and whether it is
	// committed at all.
	Committed() (sim.NestID, bool)
}

// Decided is optionally implemented by agents that distinguish "committed"
// from "irrevocably decided" (Algorithm 2's final state). When every agent
// implements Decided, the runner additionally requires all ants decided.
type Decided interface {
	// Decided reports that the ant has reached its algorithm's terminal state.
	Decided() bool
}

// Faulty is implemented by fault-injection wrappers; faulty ants are excluded
// from the convergence census (a crashed ant cannot relocate).
type Faulty interface {
	// Faulty reports that the ant has been disabled or subverted.
	Faulty() bool
}

// Algorithm builds the agents of a house-hunting colony. Implementations
// live in internal/algo.
type Algorithm interface {
	// Name identifies the algorithm in tables and CLIs.
	Name() string
	// Build returns n agents for the given environment. src is the root
	// randomness for the colony; implementations split per-ant streams from
	// it. The returned agents must implement Committer.
	Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error)
}

// Census summarizes colony commitment at the end of a round.
type Census struct {
	// Committed[i] counts non-faulty ants committed to nest i (index 0
	// counts uncommitted ants).
	Committed []int
	// Decided counts non-faulty ants whose Decided() is true; -1 when the
	// colony does not expose decisions.
	Decided int
	// Faulty counts excluded ants.
	Faulty int
	// Total is the number of non-faulty ants.
	Total int
}

// TakeCensus inspects the agents and tallies commitments. Agents that do not
// implement Committer are counted as uncommitted.
func TakeCensus(agents []sim.Agent, k int) Census {
	c := Census{Committed: make([]int, k+1), Decided: -1}
	anyDecider := false
	decided := 0
	for _, a := range agents {
		if f, ok := a.(Faulty); ok && f.Faulty() {
			c.Faulty++
			continue
		}
		c.Total++
		nest := sim.Home
		if com, ok := a.(Committer); ok {
			if n, committed := com.Committed(); committed && n >= 1 && int(n) <= k {
				nest = n
			}
		}
		c.Committed[nest]++
		if d, ok := a.(Decided); ok {
			anyDecider = true
			if d.Decided() {
				decided++
			}
		}
	}
	if anyDecider {
		c.Decided = decided
	}
	return c
}

// Winner returns the nest to which every non-faulty ant is committed, if a
// unanimous commitment exists.
func (c Census) Winner() (sim.NestID, bool) {
	if c.Total == 0 {
		return sim.Home, false
	}
	for i := 1; i < len(c.Committed); i++ {
		if c.Committed[i] == c.Total {
			return sim.NestID(i), true
		}
	}
	return sim.Home, false
}

// Converged reports unanimous commitment to a good nest, with all ants
// decided when decisions are exposed.
func (c Census) Converged(env sim.Environment) (sim.NestID, bool) {
	w, ok := c.Winner()
	if !ok || !env.Good(w) {
		return sim.Home, false
	}
	if c.Decided >= 0 && c.Decided != c.Total {
		return sim.Home, false
	}
	return w, true
}

// LocationConverged is the strict §2 check: every non-faulty ant is located
// at the same good nest at the end of the engine's last round. Faulty ants
// are identified through the agents slice, which must parallel engine ants.
func LocationConverged(e *sim.Engine, agents []sim.Agent) (sim.NestID, bool) {
	if len(agents) != e.N() {
		return sim.Home, false
	}
	winner := sim.Home
	for i := 0; i < e.N(); i++ {
		if f, ok := agents[i].(Faulty); ok && f.Faulty() {
			continue
		}
		loc := e.Location(i)
		if loc == sim.Home {
			return sim.Home, false
		}
		if winner == sim.Home {
			winner = loc
		} else if loc != winner {
			return sim.Home, false
		}
	}
	if winner == sim.Home || !e.Env().Good(winner) {
		return sim.Home, false
	}
	return winner, true
}

// ErrNoConvergence is returned by Run when the round budget expires first.
var ErrNoConvergence = errors.New("core: round budget exhausted before convergence")

// Sentinel validation errors.
var (
	errNilAlgorithm = errors.New("core: nil algorithm")
	errBadColony    = errors.New("core: colony size must be positive")
)

// wrapBuild annotates algorithm build failures uniformly.
func wrapBuild(name string, err error) error {
	return fmt.Errorf("core: building %s colony: %w", name, err)
}
