package househunt

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun smoke-tests every program under examples/: each
// must build and then run to completion quickly with a zero exit status.
// The examples are the library's de-facto integration suite — refactors that
// break their use of the public API fail here instead of silently rotting.
func TestExamplesBuildAndRun(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	bindir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}

			// Each example is a deterministic small-scale demo; a minute is
			// far beyond any of them (they run in well under a second).
			deadline := time.Now().Add(time.Minute)
			if testDeadline, ok := t.Deadline(); ok && testDeadline.Before(deadline) {
				deadline = testDeadline
			}
			run := exec.Command(bin)
			done := make(chan error, 1)
			if err := run.Start(); err != nil {
				t.Fatalf("start failed: %v", err)
			}
			go func() { done <- run.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example exited with error: %v", err)
				}
			case <-time.After(time.Until(deadline)):
				_ = run.Process.Kill()
				t.Fatalf("example did not finish before deadline")
			}
		})
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
}
