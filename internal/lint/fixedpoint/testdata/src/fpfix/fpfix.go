// Package fpfix exercises the fixedpoint rules: float arithmetic,
// compound assignment and non-constant conversions are flagged inside
// //hh:hotpath functions, while comparisons, constant conversions,
// //hh:floatok exemptions (function, statement, and case granularity)
// and cold code are allowed.
package fpfix

//hh:hotpath
func hotBad(a, b float64, n int) float64 {
	c := a * b      // want "float arithmetic"
	c += a          // want "float arithmetic"
	d := float64(n) // want "float conversion"
	if a < b {      // comparison: allowed
		return c + d // want "float arithmetic"
	}
	return 0
}

//hh:hotpath
func hotAllowed(a float64, n int) int {
	k := float64(8) // constant conversion folds at compile time: allowed
	if a > k {
		return n
	}
	return int(a) // want "float conversion"
}

//hh:hotpath
func hotAnnotated(a float64, n int) float64 {
	x := float64(n) //hh:floatok mirrors the scalar formula above the table ceiling

	//hh:floatok fallback block above batchTableMaxN
	if n > 0 {
		x = x * a
	}
	switch n {
	//hh:floatok the float→fixed compile path
	case 1:
		x = x / a
	case 2:
		x = x - a // want "float arithmetic"
	}
	return x
}

// hotFloatOk is exempt wholesale: the named float→fixed compiler.
//
//hh:hotpath
//hh:floatok this function IS the float fallback
func hotFloatOk(a float64) float64 { return a * a }

// coldFloat is not hotpath: fixedpoint does not police cold code.
func coldFloat(a float64) float64 { return a * 2 }

var _ = []any{hotBad, hotAllowed, hotAnnotated, hotFloatOk, coldFloat}
