package algo

import (
	"math"
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
)

// runAlgo is a test helper executing one colony to convergence.
func runAlgo(t *testing.T, a core.Algorithm, n int, env sim.Environment, seed uint64, maxRounds int) core.Result {
	t.Helper()
	res, err := core.Run(a, core.RunConfig{N: n, Env: env, Seed: seed, MaxRounds: maxRounds})
	if err != nil {
		t.Fatalf("%s run failed: %v", a.Name(), err)
	}
	return res
}

func TestSimpleConvergesSmall(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	res := runAlgo(t, Simple{}, 128, env, 1, 0)
	if !res.Solved {
		t.Fatalf("simple did not converge: %+v", res)
	}
	if !env.Good(res.Winner) {
		t.Fatalf("winner %d is a bad nest", res.Winner)
	}
}

func TestSimpleAlwaysPicksGoodNest(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 0, 1, 0, 0, 0, 0, 0})
	for seed := uint64(1); seed <= 20; seed++ {
		res := runAlgo(t, Simple{}, 96, env, seed, 0)
		if !res.Solved {
			t.Fatalf("seed %d: did not converge", seed)
		}
		if res.Winner != 3 {
			t.Fatalf("seed %d: winner %d, want the unique good nest 3", seed, res.Winner)
		}
	}
}

func TestSimpleSingleNest(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	res := runAlgo(t, Simple{}, 64, env, 2, 0)
	if !res.Solved || res.Winner != 1 {
		t.Fatalf("k=1 colony failed: %+v", res)
	}
}

func TestSimpleRoundsGrowWithK(t *testing.T) {
	t.Parallel()
	// Theorem 5.11's O(k log n): average convergence rounds over seeds should
	// clearly increase from k=2 to k=16 at fixed n (all nests good).
	const n = 256
	avg := func(k int) float64 {
		env, err := sim.Uniform(k, k)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const reps = 6
		for seed := uint64(1); seed <= reps; seed++ {
			res := runAlgo(t, Simple{}, n, env, seed, 0)
			if !res.Solved {
				t.Fatalf("k=%d seed=%d unsolved", k, seed)
			}
			total += res.Rounds
		}
		return float64(total) / reps
	}
	small, large := avg(2), avg(16)
	if large <= small {
		t.Fatalf("rounds did not grow with k: k=2 → %.1f, k=16 → %.1f", small, large)
	}
}

func TestSimpleCommitmentAlwaysVisited(t *testing.T) {
	t.Parallel()
	// Every ant's committed nest must always be one it can legally go(i) to;
	// the strict engine enforces this — a protocol error would fail the run.
	env := sim.MustEnvironment([]float64{1, 1, 0})
	for seed := uint64(1); seed <= 5; seed++ {
		res := runAlgo(t, Simple{}, 200, env, seed, 0)
		if !res.Solved {
			t.Fatalf("seed %d unsolved", seed)
		}
	}
}

func TestSimpleAntPhaseCycle(t *testing.T) {
	t.Parallel()
	// Unit-level: the ant alternates search → (recruit ↔ assess) regardless of
	// the round numbers passed in.
	a := NewSimpleAnt(10, testSrc(1))
	if got := a.Act(1); got.Kind != sim.ActionSearch {
		t.Fatalf("first act = %+v, want search", got)
	}
	a.Observe(1, sim.Outcome{Nest: 2, Count: 3, Quality: 1})
	if got := a.Act(2); got.Kind != sim.ActionRecruit || got.Nest != 2 {
		t.Fatalf("second act = %+v, want recruit(·, 2)", got)
	}
	a.Observe(2, sim.Outcome{Nest: 2, Count: 5})
	if got := a.Act(3); got.Kind != sim.ActionGo || got.Nest != 2 {
		t.Fatalf("third act = %+v, want go(2)", got)
	}
	a.Observe(3, sim.Outcome{Nest: 2, Count: 7})
	if a.Count() != 7 {
		t.Fatalf("count register = %d, want 7", a.Count())
	}
}

func TestSimpleAntPassiveActivation(t *testing.T) {
	t.Parallel()
	a := NewSimpleAnt(10, testSrc(2))
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 2, Quality: 0}) // bad nest → passive
	if a.Active() {
		t.Fatal("ant active after finding a bad nest")
	}
	act := a.Act(2)
	if act.Kind != sim.ActionRecruit || act.Active {
		t.Fatalf("passive ant act = %+v, want recruit(0, ·)", act)
	}
	// Captured: recruit returns a different nest.
	a.Observe(2, sim.Outcome{Nest: 3, Count: 9, Recruited: true})
	if !a.Active() {
		t.Fatal("captured ant did not re-activate")
	}
	if nest, ok := a.Committed(); !ok || nest != 3 {
		t.Fatalf("captured ant committed to %v %v, want 3", nest, ok)
	}
}

func TestSimpleBuilderValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := (Simple{}).Build(0, env, testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := (Simple{}).Build(5, sim.Environment{}, testSrc(1)); err == nil {
		t.Fatal("empty environment accepted")
	}
	agents, err := (Simple{}).Build(5, env, testSrc(1))
	if err != nil || len(agents) != 5 {
		t.Fatalf("Build: %v, %d agents", err, len(agents))
	}
}

func TestSimpleRecruitProbabilityMatchesCount(t *testing.T) {
	t.Parallel()
	// Statistical unit test of the core §5 rule: an active ant with count c
	// recruits with probability exactly c/n.
	const n, count, trials = 100, 37, 20000
	src := testSrc(3)
	active := 0
	for i := 0; i < trials; i++ {
		a := NewSimpleAnt(n, src.Split(uint64(i)))
		a.Act(1)
		a.Observe(1, sim.Outcome{Nest: 1, Count: count, Quality: 1})
		if act := a.Act(2); act.Active {
			active++
		}
	}
	got := float64(active) / trials
	want := float64(count) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("recruit frequency %v, want %v (count/n)", got, want)
	}
}

func TestSimpleManyBadNests(t *testing.T) {
	t.Parallel()
	// k close to the paper's O(√n/log n) comfort zone with a single good
	// nest: convergence must still land on it.
	env, err := sim.Uniform(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := runAlgo(t, Simple{}, 300, env, 7, 0)
	if !res.Solved || res.Winner != 1 {
		t.Fatalf("unsolved or wrong winner: %+v", res)
	}
}
