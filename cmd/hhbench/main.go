// Command hhbench regenerates the experiment tables of EXPERIMENTS.md: one
// experiment per lemma/theorem/extension claim of the paper (E1-E21).
//
// Examples:
//
//	hhbench -list
//	hhbench -exp E9
//	hhbench -exp all -scale full
//	hhbench -engine scalar -exp E9   (force the scalar replicate loop)
//	hhbench -batchbench              (batch vs scalar throughput comparison)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/experiment"
	"github.com/gmrl/househunt/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hhbench:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments; split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hhbench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment id (E1..E21) or 'all'")
		scale      = fs.String("scale", "small", "experiment sizing: small or full")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		engine     = fs.String("engine", "auto", "replicate engine: auto (batch where eligible) or scalar")
		batchbench = fs.Bool("batchbench", false, "run the batch vs scalar replicate-sweep throughput comparison and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch strings.ToLower(*engine) {
	case "auto":
		experiment.SetBatchEngine(true)
	case "scalar":
		experiment.SetBatchEngine(false)
	default:
		return fmt.Errorf("unknown engine %q (want auto or scalar)", *engine)
	}

	if *batchbench {
		return runBatchBench(out)
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	var sc experiment.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = experiment.ScaleSmall
	case "full":
		sc = experiment.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q (want small or full)", *scale)
	}

	ids := experiment.IDs()
	if !strings.EqualFold(*exp, "all") {
		ids = []string{*exp}
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := experiment.RunExperiment(id, sc)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Fprint(out, rep)
		fmt.Fprintf(out, "(elapsed %.1fs)\n\n", time.Since(start).Seconds())
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) reported a violated shape", failed)
	}
	return nil
}

// runBatchBench times the same replicate sweep (Algorithm 3, n=1024, k=4,
// R=32 colonies) on the scalar agent path and on the batch struct-of-arrays
// engine, reporting ant-step throughput and the speedup. Both paths execute
// bit-identical replicates, so the comparison is apples to apples.
func runBatchBench(out io.Writer) error {
	const (
		n         = 1024
		k         = 4
		good      = 2
		reps      = 32
		maxRounds = 4000
		minTime   = time.Second
	)
	env, err := workload.Binary(k, good)
	if err != nil {
		return err
	}
	cfg := core.RunConfig{N: n, Env: env, MaxRounds: maxRounds}

	sweep := func() (totalRounds int, err error) {
		pt, err := experiment.MeasureConvergence(algo.Simple{}, cfg, reps, "batchbench")
		if err != nil {
			return 0, err
		}
		// Ant-steps executed: every solved replicate ran its recorded rounds,
		// every unsolved one the full budget.
		solvedRounds := int(pt.Rounds.Mean*float64(pt.Solved) + 0.5)
		return solvedRounds + (reps-pt.Solved)*maxRounds, nil
	}

	measure := func(label string, batch bool) (float64, error) {
		experiment.SetBatchEngine(batch)
		if _, err := sweep(); err != nil { // warm-up
			return 0, err
		}
		var (
			elapsed time.Duration
			rounds  int
			iters   int
		)
		for elapsed < minTime {
			start := time.Now()
			r, err := sweep()
			if err != nil {
				return 0, err
			}
			elapsed += time.Since(start)
			rounds += r
			iters++
		}
		perSweep := elapsed / time.Duration(iters)
		steps := float64(rounds) * n / elapsed.Seconds()
		fmt.Fprintf(out, "%-7s %3d sweep(s) of %d x n=%d k=%d: %8.1f ms/sweep, %11.0f ant-steps/s\n",
			label, iters, reps, n, k, perSweep.Seconds()*1e3, steps)
		return steps, nil
	}

	fmt.Fprintf(out, "replicate-sweep throughput, scalar agents vs batch engine\n\n")
	scalar, err := measure("scalar", false)
	if err != nil {
		return err
	}
	batch, err := measure("batch", true)
	if err != nil {
		return err
	}
	experiment.SetBatchEngine(true)
	fmt.Fprintf(out, "\nspeedup: %.2fx\n", batch/scalar)
	return nil
}
