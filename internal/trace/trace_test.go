package trace

import (
	"bytes"
	"strings"
	"testing"
)

func mustRecord(t *testing.T, tr *Trace, round int, pops, commits []int) {
	t.Helper()
	if err := tr.RecordRound(round, pops, commits); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRoundValidation(t *testing.T) {
	t.Parallel()
	tr := New(2)
	if err := tr.RecordRound(1, []int{1, 2}, nil); err == nil {
		t.Fatal("short populations accepted")
	}
	if err := tr.RecordRound(1, []int{1, 2, 3}, []int{1}); err == nil {
		t.Fatal("short commitments accepted")
	}
	if err := tr.RecordRound(1, []int{1, 2, 3}, nil); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestRecordRoundCopies(t *testing.T) {
	t.Parallel()
	tr := New(1)
	buf := []int{5, 7}
	mustRecord(t, tr, 1, buf, nil)
	buf[0] = 99
	if tr.Rounds()[0].Populations[0] != 5 {
		t.Fatal("RecordRound did not copy populations")
	}
}

func TestSeries(t *testing.T) {
	t.Parallel()
	tr := New(2)
	mustRecord(t, tr, 1, []int{10, 5, 3}, []int{0, 6, 4})
	mustRecord(t, tr, 2, []int{8, 7, 3}, []int{0, 8, 2})
	pop, err := tr.PopulationSeries(1)
	if err != nil {
		t.Fatal(err)
	}
	if pop[0] != 5 || pop[1] != 7 {
		t.Fatalf("PopulationSeries(1) = %v", pop)
	}
	com, err := tr.CommitmentSeries(2)
	if err != nil {
		t.Fatal(err)
	}
	if com[0] != 4 || com[1] != 2 {
		t.Fatalf("CommitmentSeries(2) = %v", com)
	}
	if _, err := tr.PopulationSeries(3); err == nil {
		t.Fatal("out-of-range nest accepted")
	}
	if _, err := tr.CommitmentSeries(-1); err == nil {
		t.Fatal("negative nest accepted")
	}
}

func TestCommitmentSeriesWithoutCensus(t *testing.T) {
	t.Parallel()
	tr := New(1)
	mustRecord(t, tr, 1, []int{3, 2}, nil)
	com, err := tr.CommitmentSeries(1)
	if err != nil {
		t.Fatal(err)
	}
	if com[0] != 0 {
		t.Fatalf("missing census should read as 0, got %v", com[0])
	}
}

func TestEventsDisabledByDefault(t *testing.T) {
	t.Parallel()
	tr := New(1)
	tr.RecordEvent(Event{Round: 1, Kind: EventRecruitSuccess})
	if len(tr.Events()) != 0 {
		t.Fatal("events recorded while disabled")
	}
	if tr.EventsEnabled() {
		t.Fatal("EventsEnabled true while disabled")
	}
}

func TestEventsCap(t *testing.T) {
	t.Parallel()
	tr := New(1, WithEvents(2))
	for i := 0; i < 5; i++ {
		tr.RecordEvent(Event{Round: i, Kind: EventFinalize, Subject: i, Object: -1, Nest: 1})
	}
	if len(tr.Events()) != 2 {
		t.Fatalf("cap not enforced: %d events", len(tr.Events()))
	}
	if tr.EventsEnabled() {
		t.Fatal("EventsEnabled should be false at cap")
	}
	if tr.EventCount(EventFinalize) != 2 {
		t.Fatalf("EventCount = %d", tr.EventCount(EventFinalize))
	}
	if tr.EventCount(EventCrash) != 0 {
		t.Fatal("EventCount for absent kind should be 0")
	}
}

func TestEventKindString(t *testing.T) {
	t.Parallel()
	kinds := []EventKind{
		EventRecruitSuccess, EventSelfRecruit, EventNestDropout, EventFinalize,
		EventCrash, EventByzantineAct, EventQuorumReached, EventKind(99),
	}
	seen := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func TestWriteCSV(t *testing.T) {
	t.Parallel()
	tr := New(2)
	mustRecord(t, tr, 1, []int{10, 5, 3}, []int{0, 6, 4})
	mustRecord(t, tr, 2, []int{8, 7, 3}, nil)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "round,pop0,pop1,pop2,committed0,committed1,committed2" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,10,5,3,0,6,4" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,8,7,3,0,0,0" {
		t.Fatalf("row 2 (nil census should render zeros) = %q", lines[2])
	}
}

func TestWriteCSVNoCommitments(t *testing.T) {
	t.Parallel()
	tr := New(1)
	mustRecord(t, tr, 1, []int{4, 4}, nil)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "committed") {
		t.Fatalf("commitment columns present without census:\n%s", buf.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	t.Parallel()
	tr := New(2, WithEvents(0))
	mustRecord(t, tr, 1, []int{9, 6, 1}, []int{0, 7, 2})
	tr.RecordEvent(Event{Round: 1, Kind: EventRecruitSuccess, Subject: 3, Object: 5, Nest: 1})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNests() != 2 || back.Len() != 1 {
		t.Fatalf("round trip lost shape: nests=%d len=%d", back.NumNests(), back.Len())
	}
	if back.Rounds()[0].Populations[1] != 6 {
		t.Fatalf("round trip lost populations: %+v", back.Rounds()[0])
	}
	if len(back.Events()) != 1 || back.Events()[0].Kind != EventRecruitSuccess {
		t.Fatalf("round trip lost events: %+v", back.Events())
	}
}

func TestReadJSONError(t *testing.T) {
	t.Parallel()
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestRenderPlot(t *testing.T) {
	t.Parallel()
	tr := New(2)
	for r := 1; r <= 20; r++ {
		mustRecord(t, tr, r, []int{100 - 2*r, 2 * r, r / 2}, nil)
	}
	out := tr.RenderPlot(PlotOptions{Width: 40, Height: 10})
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "nest1=*") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
	if strings.Contains(out, "home=") {
		t.Fatal("home series plotted without Home option")
	}
	withHome := tr.RenderPlot(PlotOptions{Width: 40, Height: 10, Home: true})
	if !strings.Contains(withHome, "home=") {
		t.Fatalf("home series missing:\n%s", withHome)
	}
}

func TestRenderPlotEmpty(t *testing.T) {
	t.Parallel()
	tr := New(1)
	if out := tr.RenderPlot(PlotOptions{}); !strings.Contains(out, "empty") {
		t.Fatalf("empty trace plot = %q", out)
	}
}

func TestRenderPlotSingleRound(t *testing.T) {
	t.Parallel()
	tr := New(1)
	mustRecord(t, tr, 1, []int{5, 5}, nil)
	out := tr.RenderPlot(PlotOptions{Width: 10, Height: 4})
	if out == "" {
		t.Fatal("single-round plot empty")
	}
}

// failWriter fails after a fixed number of bytes, to exercise export error
// paths.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errFull
	}
	n := len(p)
	if n > f.budget {
		n = f.budget
	}
	f.budget -= n
	if n < len(p) {
		return n, errFull
	}
	return n, nil
}

var errFull = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic writer failure" }

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	t.Parallel()
	tr := New(1)
	mustRecord(t, tr, 1, []int{1, 1}, nil)
	if err := tr.WriteCSV(&failWriter{budget: 0}); err == nil {
		t.Fatal("header write failure swallowed")
	}
	if err := tr.WriteCSV(&failWriter{budget: 20}); err == nil {
		t.Fatal("row write failure swallowed")
	}
}

func TestWriteJSONPropagatesWriterErrors(t *testing.T) {
	t.Parallel()
	tr := New(1)
	mustRecord(t, tr, 1, []int{1, 1}, nil)
	if err := tr.WriteJSON(&failWriter{budget: 4}); err == nil {
		t.Fatal("json write failure swallowed")
	}
}
