package algo

import (
	"github.com/gmrl/househunt/internal/rng"
)

// testSrc returns a fresh deterministic source for unit tests.
func testSrc(seed uint64) *rng.Source { return rng.New(seed) }
