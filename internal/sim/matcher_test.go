package sim

import (
	"testing"
	"testing/quick"

	"github.com/gmrl/househunt/internal/rng"
)

// runMatch executes one matching round of m over n slots with the given
// active pattern and returns the filled assignment slices.
func runMatch(m Matcher, n int, active []bool, src *rng.Source) (capturedBy []int32, succeeded []bool) {
	capturedBy = make([]int32, n)
	succeeded = make([]bool, n)
	m.Match(n, active, src, capturedBy, succeeded)
	return capturedBy, succeeded
}

// checkMatchingInvariants verifies the structural properties shared by every
// matcher model: capturers are active and marked succeeded; capturedBy values
// are valid slots; passive slots never succeed.
func checkMatchingInvariants(t *testing.T, name string, n int, active []bool, capturedBy []int32, succeeded []bool) {
	t.Helper()
	for slot := 0; slot < n; slot++ {
		cb := int(capturedBy[slot])
		if cb < -1 || cb >= n {
			t.Fatalf("%s: capturedBy[%d] = %d out of range", name, slot, cb)
		}
		if cb >= 0 {
			if !active[cb] {
				t.Fatalf("%s: slot %d captured by passive slot %d", name, slot, cb)
			}
			if !succeeded[cb] {
				t.Fatalf("%s: capturer %d not marked succeeded", name, cb)
			}
		}
		if succeeded[slot] && !active[slot] {
			t.Fatalf("%s: passive slot %d marked succeeded", name, slot)
		}
	}
	// Every succeeded slot must actually appear as a capturer.
	captures := make(map[int32]int, n)
	for slot := 0; slot < n; slot++ {
		if capturedBy[slot] >= 0 {
			captures[capturedBy[slot]]++
		}
	}
	for slot := 0; slot < n; slot++ {
		if succeeded[slot] && captures[int32(slot)] == 0 {
			t.Fatalf("%s: slot %d succeeded but captured nobody", name, slot)
		}
	}
}

// checkOneToOne verifies the stricter Algorithm-1 matching property: the pairs
// form a partial matching (each ant appears in at most one pair, as either
// element), which the paper's process guarantees.
func checkOneToOne(t *testing.T, name string, n int, capturedBy []int32, succeeded []bool) {
	t.Helper()
	for slot := 0; slot < n; slot++ {
		if capturedBy[slot] >= 0 && int(capturedBy[slot]) != slot {
			if succeeded[slot] {
				t.Fatalf("%s: slot %d both captured and succeeded", name, slot)
			}
		}
	}
	seen := make(map[int32]bool, n)
	for slot := 0; slot < n; slot++ {
		cb := capturedBy[slot]
		if cb < 0 {
			continue
		}
		if int(cb) != slot && seen[cb] {
			t.Fatalf("%s: capturer %d captured two ants", name, cb)
		}
		seen[cb] = true
	}
}

func TestMatcherInvariantsQuick(t *testing.T) {
	t.Parallel()
	src := rng.New(7)
	for _, m := range Matchers() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(sizeRaw uint8, pattern uint64, seed uint16) bool {
				n := int(sizeRaw%64) + 1
				active := make([]bool, n)
				anyActive := false
				for i := range active {
					active[i] = pattern&(1<<(uint(i)%64)) != 0
					anyActive = anyActive || active[i]
				}
				_ = anyActive
				local := src.Split(uint64(seed))
				capturedBy, succeeded := runMatch(m, n, active, local)
				checkMatchingInvariants(t, m.Name(), n, active, capturedBy, succeeded)
				if m.Name() != "simultaneous" {
					checkOneToOne(t, m.Name(), n, capturedBy, succeeded)
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMatchersEmptyAndSingle(t *testing.T) {
	t.Parallel()
	src := rng.New(9)
	for _, m := range Matchers() {
		// Empty pool: no panic, nothing set.
		runMatch(m, 0, nil, src)

		// Single passive ant: nothing happens.
		capturedBy, succeeded := runMatch(m, 1, []bool{false}, src)
		if capturedBy[0] != -1 || succeeded[0] {
			t.Fatalf("%s: single passive ant got matched", m.Name())
		}
	}
}

func TestAlgorithmOneSelfRecruitWhenAlone(t *testing.T) {
	t.Parallel()
	// A single active ant must pair with itself ("forced to recruit itself",
	// paper §3): the only possible draw is the ant's own slot.
	src := rng.New(11)
	m := &AlgorithmOneMatcher{}
	for trial := 0; trial < 50; trial++ {
		capturedBy, succeeded := runMatch(m, 1, []bool{true}, src)
		if capturedBy[0] != 0 || !succeeded[0] {
			t.Fatalf("lone active ant: capturedBy=%v succeeded=%v", capturedBy, succeeded)
		}
	}
}

func TestAlgorithmOnePermutationPriority(t *testing.T) {
	t.Parallel()
	// With all ants active, captured ants must never also succeed: being
	// captured earlier in the permutation removes the chance to recruit.
	src := rng.New(13)
	m := &AlgorithmOneMatcher{}
	const n = 32
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	for trial := 0; trial < 200; trial++ {
		capturedBy, succeeded := runMatch(m, n, active, src)
		checkOneToOne(t, "algorithm1", n, capturedBy, succeeded)
		_ = capturedBy
		_ = succeeded
	}
}

// TestLemma21SuccessProbability is the statistical reproduction of the
// paper's Lemma 2.1: an ant executing recruit(1,·) in a round with
// c(0,r) >= 2 succeeds with probability at least 1/16, regardless of what the
// other ants do. We measure the empirical frequency for a designated ant
// across home-nest sizes and activity mixes; the observed value is far above
// the 1/16 bound, so asserting >= 1/16 with 10^4 trials has negligible
// false-failure probability.
func TestLemma21SuccessProbability(t *testing.T) {
	t.Parallel()
	src := rng.New(17)
	m := &AlgorithmOneMatcher{}
	const trials = 10000
	for _, n := range []int{2, 3, 8, 64, 512} {
		for _, activeFraction := range []float64{1.0, 0.5} {
			succ := 0
			for trial := 0; trial < trials; trial++ {
				active := make([]bool, n)
				active[0] = true // the designated Lemma 2.1 ant
				for i := 1; i < n; i++ {
					active[i] = src.Bernoulli(activeFraction)
				}
				_, succeeded := runMatch(m, n, active, src)
				if succeeded[0] {
					succ++
				}
			}
			freq := float64(succ) / trials
			if freq < 1.0/16 {
				t.Errorf("n=%d activeFrac=%.1f: success frequency %.4f < 1/16 (violates Lemma 2.1)",
					n, activeFraction, freq)
			}
		}
	}
}

func TestSimultaneousMatcherCapturesAmongPickers(t *testing.T) {
	t.Parallel()
	src := rng.New(19)
	m := &SimultaneousMatcher{}
	const n = 16
	active := make([]bool, n)
	for i := 0; i < n/2; i++ {
		active[i] = true
	}
	for trial := 0; trial < 100; trial++ {
		capturedBy, succeeded := runMatch(m, n, active, src)
		checkMatchingInvariants(t, "simultaneous", n, active, capturedBy, succeeded)
	}
}

func TestRendezvousNearPerfectMatching(t *testing.T) {
	t.Parallel()
	// With all ants active, rendezvous should match ~n/2 pairs: every other
	// ant in the shuffled order captures its successor.
	src := rng.New(23)
	m := &RendezvousMatcher{}
	const n = 64
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	capturedBy, succeeded := runMatch(m, n, active, src)
	checkOneToOne(t, "rendezvous", n, capturedBy, succeeded)
	pairs := 0
	for _, s := range succeeded {
		if s {
			pairs++
		}
	}
	if pairs != n/2 {
		t.Fatalf("rendezvous with all active matched %d pairs, want %d", pairs, n/2)
	}
}

func TestMatcherNamesUnique(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, m := range Matchers() {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("matcher name %q empty or duplicated", m.Name())
		}
		seen[m.Name()] = true
	}
}

// TestAlgorithmOneSuccessRateStable pins the approximate success probability
// of a recruiter in a fully active pool, which Lemma 2.1 lower-bounds at 1/16
// and which concentrates near a constant for large pools. A drastic change
// here means the matcher's distribution changed, which would invalidate the
// experiment calibration in EXPERIMENTS.md.
func TestAlgorithmOneSuccessRateStable(t *testing.T) {
	t.Parallel()
	src := rng.New(29)
	m := &AlgorithmOneMatcher{}
	const n, trials = 256, 2000
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	totalSucc := 0
	for trial := 0; trial < trials; trial++ {
		_, succeeded := runMatch(m, n, active, src)
		for _, s := range succeeded {
			if s {
				totalSucc++
			}
		}
	}
	rate := float64(totalSucc) / float64(n*trials)
	// Analytically the per-ant success rate in a fully-active large pool sits
	// in the 0.25–0.45 band; allow generous slack while excluding collapse.
	if rate < 0.2 || rate > 0.5 {
		t.Fatalf("algorithm1 success rate %.4f outside expected band [0.2, 0.5]", rate)
	}
}

func BenchmarkAlgorithmOneMatch1024(b *testing.B) {
	src := rng.New(1)
	m := &AlgorithmOneMatcher{}
	const n = 1024
	active := make([]bool, n)
	for i := range active {
		active[i] = i%2 == 0
	}
	capturedBy := make([]int32, n)
	succeeded := make([]bool, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(n, active, src, capturedBy, succeeded)
	}
}

// TestMatchCarrySaturation pins the carry-capacity ceiling: a lone transporter
// with capacity c never captures more than c slots in one round, and with
// everything else passive the cap is actually reached (draws are only lost to
// blocking, which across seeds cannot suppress every full-capacity round).
func TestMatchCarrySaturation(t *testing.T) {
	t.Parallel()
	const (
		n     = 32
		carry = 3
	)
	m := &AlgorithmOneMatcher{}
	active := make([]bool, n)
	active[0] = true
	carries := make([]int, n)
	for i := range carries {
		carries[i] = 1
	}
	carries[0] = carry
	capturedBy := make([]int32, n)
	succeeded := make([]bool, n)
	maxCaptures := 0
	for seed := uint64(1); seed <= 200; seed++ {
		m.MatchCarry(n, active, carries, rng.New(seed), capturedBy, succeeded)
		captures := 0
		for slot, cb := range capturedBy {
			if cb != 0 && cb != -1 {
				t.Fatalf("seed %d: slot %d captured by %d; only slot 0 recruits", seed, slot, cb)
			}
			if cb == 0 && slot != 0 {
				captures++
			}
			if cb == 0 && slot == 0 {
				// Self-pair: the transporter consumed itself and must carry
				// nobody else this round (§3's lone-ant semantics).
				if captures > 0 {
					t.Fatalf("seed %d: self-paired transporter also carried others", seed)
				}
				captures = -n // exclude this round from the saturation check
			}
		}
		if captures > carry {
			t.Fatalf("seed %d: transporter carried %d > capacity %d", seed, captures, carry)
		}
		if captures > maxCaptures {
			maxCaptures = captures
		}
	}
	if maxCaptures != carry {
		t.Fatalf("capacity never saturated: max captures %d, want %d", maxCaptures, carry)
	}
}

// TestMatchCarryAllOnesMatchesMatch pins the draw-sequence identity the batch
// engine relies on: MatchCarry with an all-ones carry vector consumes the
// stream exactly like Match, so a transporting program's canvass-only rounds
// pair identically to the scalar engine's Match dispatch.
func TestMatchCarryAllOnesMatchesMatch(t *testing.T) {
	t.Parallel()
	const n = 64
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	for seed := uint64(1); seed <= 25; seed++ {
		src := rng.New(seed)
		active := make([]bool, n)
		for i := range active {
			active[i] = src.Bernoulli(0.5)
		}
		plain := &AlgorithmOneMatcher{}
		viaMatch, succMatch := runMatch(plain, n, active, rng.New(seed+1000))
		withCarry := &AlgorithmOneMatcher{}
		srcCarry := rng.New(seed + 1000)
		viaCarry := make([]int32, n)
		succCarry := make([]bool, n)
		withCarry.MatchCarry(n, active, ones, srcCarry, viaCarry, succCarry)
		for slot := 0; slot < n; slot++ {
			if viaMatch[slot] != viaCarry[slot] || succMatch[slot] != succCarry[slot] {
				t.Fatalf("seed %d slot %d: Match (%d,%v) != MatchCarry ones (%d,%v)",
					seed, slot, viaMatch[slot], succMatch[slot], viaCarry[slot], succCarry[slot])
			}
		}
		// The draw identity must extend to the stream position: both calls
		// leave the source in the same state.
		ref := rng.New(seed + 1000)
		refCaptured := make([]int32, n)
		refSucceeded := make([]bool, n)
		plain2 := &AlgorithmOneMatcher{}
		plain2.Match(n, active, ref, refCaptured, refSucceeded)
		if srcCarry.State() != ref.State() {
			t.Fatalf("seed %d: MatchCarry ones left the stream at a different position than Match", seed)
		}
	}
}

// TestMatchersAllocationFree is the scratch-reuse regression test: after a
// warm-up call has sized the internal buffers, Match must not allocate — the
// simultaneous model once allocated its reservoir counters on every call,
// which dominated ablation sweeps.
func TestMatchersAllocationFree(t *testing.T) {
	const n = 256
	for _, m := range Matchers() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			src := rng.New(3)
			active := make([]bool, n)
			for i := range active {
				active[i] = i%3 != 0
			}
			capturedBy := make([]int32, n)
			succeeded := make([]bool, n)
			m.Match(n, active, src, capturedBy, succeeded) // warm-up sizes scratch
			allocs := testing.AllocsPerRun(100, func() {
				m.Match(n, active, src, capturedBy, succeeded)
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocs per Match, want 0", m.Name(), allocs)
			}
			if cm, ok := m.(CarryMatcher); ok {
				carries := make([]int, n)
				for i := range carries {
					carries[i] = 1 + i%3
				}
				allocs := testing.AllocsPerRun(100, func() {
					cm.MatchCarry(n, active, carries, src, capturedBy, succeeded)
				})
				if allocs != 0 {
					t.Errorf("%s: %v allocs per MatchCarry, want 0", m.Name(), allocs)
				}
			}
		})
	}
}

// TestCaptureListMatchesCaptureTable pins the CaptureLister contract on every
// stock matcher: the returned slots are exactly those with capturedBy >= 0,
// without duplicates, across activity patterns including all-passive (empty
// list) and fully active rounds.
func TestCaptureListMatchesCaptureTable(t *testing.T) {
	t.Parallel()
	const n = 64
	for _, m := range Matchers() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			lister, ok := m.(CaptureLister)
			if !ok {
				t.Fatalf("%s implements no CaptureLister", m.Name())
			}
			src := rng.New(17)
			for trial := 0; trial < 200; trial++ {
				active := make([]bool, n)
				for i := range active {
					active[i] = src.Bernoulli(float64(trial%5) / 4)
				}
				capturedBy := make([]int32, n)
				succeeded := make([]bool, n)
				m.Match(n, active, src, capturedBy, succeeded)
				listed := map[int32]int{}
				for _, t32 := range lister.Captures() {
					listed[t32]++
				}
				for slot := 0; slot < n; slot++ {
					want := 0
					if capturedBy[slot] >= 0 {
						want = 1
					}
					if listed[int32(slot)] != want {
						t.Fatalf("trial %d slot %d: capture list count %d, capturedBy %d",
							trial, slot, listed[int32(slot)], capturedBy[slot])
					}
				}
			}
		})
	}
}
