package trace

import (
	"sync"
	"testing"
)

// collectSink records every drained record for inspection; safe only because
// Record is called from the single collector goroutine.
type collectSink struct {
	mu   sync.Mutex
	recs map[int][][3]int32 // lane → (rep, round, payload[0])
}

func newCollectSink() *collectSink { return &collectSink{recs: make(map[int][][3]int32)} }

func (s *collectSink) Record(lane int, rep, round int32, row []int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[lane] = append(s.recs[lane], [3]int32{rep, round, row[0]})
}

func (s *collectSink) laneRecords(lane int) [][3]int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recs[lane]
}

// TestCollectorDeliversAllInOrder pushes from several concurrent producers
// through deliberately tiny rings (forcing backpressure spins) and checks
// every record arrives, per lane, in push order. Run under -race in CI this
// also pins the ring's synchronization.
func TestCollectorDeliversAllInOrder(t *testing.T) {
	const (
		lanes   = 4
		perLane = 10000
	)
	sink := newCollectSink()
	c, err := NewCollector(3, 4, sink) // 4 slots: producers outrun the consumer constantly
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		r := c.Lane(lane)
		wg.Add(1)
		go func(lane int, r *Ring) {
			defer wg.Done()
			row := make([]int32, 3)
			for i := 0; i < perLane; i++ {
				row[0] = int32(lane*perLane + i)
				r.Push(int32(lane), int32(i), row)
			}
		}(lane, r)
	}
	wg.Wait()
	c.Close()

	for lane := 0; lane < lanes; lane++ {
		recs := sink.laneRecords(lane)
		if len(recs) != perLane {
			t.Fatalf("lane %d delivered %d records, want %d", lane, len(recs), perLane)
		}
		for i, rec := range recs {
			if rec[0] != int32(lane) || rec[1] != int32(i) || rec[2] != int32(lane*perLane+i) {
				t.Fatalf("lane %d record %d = %v, want {%d %d %d}", lane, i, rec, lane, i, lane*perLane+i)
			}
		}
	}
}

// TestCollectorCloseDrainsRemainder pushes with no consumer pressure and
// checks Close's final sweep delivers everything pushed before it.
func TestCollectorCloseDrainsRemainder(t *testing.T) {
	sink := newCollectSink()
	c, err := NewCollector(1, 1024, sink)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Lane(0)
	row := []int32{0}
	for i := 0; i < 100; i++ {
		row[0] = int32(i)
		r.Push(0, int32(i), row)
	}
	c.Close()
	if got := len(sink.laneRecords(0)); got != 100 {
		t.Fatalf("delivered %d records after Close, want 100", got)
	}
	c.Close() // idempotent
}

func TestCollectorLaneReuse(t *testing.T) {
	c, err := NewCollector(2, 8, SinkFunc(func(int, int32, int32, []int32) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Lane(3) != c.Lane(3) {
		t.Fatal("same lane returned different rings")
	}
	if c.Lane(0) == c.Lane(3) {
		t.Fatal("different lanes shared a ring")
	}
	if w := c.Lane(0).Width(); w != 2 {
		t.Fatalf("Width = %d, want 2", w)
	}
}

func TestNewCollectorValidates(t *testing.T) {
	sink := SinkFunc(func(int, int32, int32, []int32) {})
	if _, err := NewCollector(0, 8, sink); err == nil {
		t.Error("width 0: expected error")
	}
	if _, err := NewCollector(4, 0, sink); err == nil {
		t.Error("slots 0: expected error")
	}
	if _, err := NewCollector(4, 8, nil); err == nil {
		t.Error("nil sink: expected error")
	}
}
