package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

// randomTrace builds an arbitrary valid trace for the round-trip properties.
func randomTrace(src *rng.Source, withEvents bool) *Trace {
	numNests := 1 + src.Intn(5)
	var tr *Trace
	if withEvents {
		tr = New(numNests, WithEvents(0))
	} else {
		tr = New(numNests)
	}
	rounds := src.Intn(20)
	for r := 1; r <= rounds; r++ {
		pops := make([]int, numNests+1)
		for i := range pops {
			pops[i] = src.Intn(100)
		}
		var commits []int
		if src.Intn(3) > 0 {
			commits = make([]int, numNests+1)
			for i := range commits {
				commits[i] = src.Intn(50)
			}
		}
		if err := tr.RecordRound(r, pops, commits); err != nil {
			panic(err)
		}
	}
	if withEvents {
		for i := 0; i < src.Intn(5); i++ {
			tr.RecordEvent(Event{
				Round:   1 + src.Intn(rounds+1),
				Kind:    EventKind(1 + src.Intn(7)),
				Subject: src.Intn(64),
				Object:  src.Intn(64) - 1,
				Nest:    src.Intn(numNests + 1),
			})
		}
	}
	return tr
}

// TestWriteJSONByteIdenticalToOneShotEncoding pins the streaming JSONWriter
// against the historical whole-document encoding across random traces — the
// golden contract that the rewrite changed nothing on the wire.
func TestWriteJSONByteIdenticalToOneShotEncoding(t *testing.T) {
	t.Parallel()
	src := rng.New(0x7ACE)
	for trial := 0; trial < 50; trial++ {
		tr := randomTrace(src, trial%2 == 0)
		var streamed bytes.Buffer
		if err := tr.WriteJSON(&streamed); err != nil {
			t.Fatal(err)
		}
		var oneShot bytes.Buffer
		if err := json.NewEncoder(&oneShot).Encode(jsonDoc{NumNests: tr.numNests, Rounds: tr.rounds, Events: tr.events}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed.Bytes(), oneShot.Bytes()) {
			t.Fatalf("trial %d: streamed JSON differs from one-shot encoding:\nstreamed: %s\none-shot: %s",
				trial, streamed.String(), oneShot.String())
		}
	}
}

// TestJSONRoundTripFixedPoint checks write→read→write is a fixed point on
// random traces, including eventless traces that had recording enabled (the
// ReadJSON event-configuration fix).
func TestJSONRoundTripFixedPoint(t *testing.T) {
	t.Parallel()
	src := rng.New(0xF1CE)
	for trial := 0; trial < 50; trial++ {
		tr := randomTrace(src, trial%2 == 0)
		var first bytes.Buffer
		if err := tr.WriteJSON(&first); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, first.String())
		}
		if back.NumNests() != tr.NumNests() || back.Len() != tr.Len() {
			t.Fatalf("trial %d: shape changed: nests %d→%d rounds %d→%d",
				trial, tr.NumNests(), back.NumNests(), tr.Len(), back.Len())
		}
		var second bytes.Buffer
		if err := back.WriteJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: JSON round trip is not a fixed point:\nfirst:  %s\nsecond: %s",
				trial, first.String(), second.String())
		}
	}
}

// TestCSVRoundTripFixedPoint checks WriteCSV→ReadCSV→WriteCSV is a fixed
// point. CSV carries no events and renders absent censuses as zeros, so the
// property quantifies over what the format can represent: the second and
// third documents must be byte-identical.
func TestCSVRoundTripFixedPoint(t *testing.T) {
	t.Parallel()
	src := rng.New(0xC5F)
	for trial := 0; trial < 50; trial++ {
		tr := randomTrace(src, false)
		var first bytes.Buffer
		if err := tr.WriteCSV(&first); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, first.String())
		}
		var second bytes.Buffer
		if err := back.WriteCSV(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: CSV round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				trial, first.String(), second.String())
		}
		again, err := ReadCSV(bytes.NewReader(second.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.Rounds(), again.Rounds()) {
			t.Fatalf("trial %d: rounds changed across CSV round trips", trial)
		}
	}
}

func TestReadJSONValidatesShapes(t *testing.T) {
	t.Parallel()
	cases := []struct{ name, doc string }{
		{"truncated populations", `{"num_nests":2,"rounds":[{"round":1,"populations":[1,2]}]}`},
		{"oversized populations", `{"num_nests":1,"rounds":[{"round":1,"populations":[1,2,3]}]}`},
		{"truncated commitments", `{"num_nests":1,"rounds":[{"round":1,"populations":[1,2],"commitments":[5]}]}`},
		{"negative num_nests", `{"num_nests":-1,"rounds":null}`},
	}
	for _, tc := range cases {
		if _, err := ReadJSON(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The errors must arrive at decode time, not as a later panic.
	good := `{"num_nests":1,"rounds":[{"round":1,"populations":[3,4]}]}`
	tr, err := ReadJSON(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.PopulationSeries(1); err != nil {
		t.Fatal(err)
	}
}

// TestReadJSONPreservesEventConfiguration pins the fix for the unconditional
// WithEvents(0): an eventless document reads back with event recording off.
func TestReadJSONPreservesEventConfiguration(t *testing.T) {
	t.Parallel()
	eventless := New(1, WithEvents(0))
	if err := eventless.RecordRound(1, []int{2, 2}, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eventless.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.EventsEnabled() {
		t.Fatal("eventless document read back with event recording enabled")
	}

	withEvents := New(1, WithEvents(0))
	withEvents.RecordEvent(Event{Round: 1, Kind: EventFinalize, Object: -1, Nest: 1})
	buf.Reset()
	if err := withEvents.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err = ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EventsEnabled() {
		t.Fatal("event-carrying document read back with event recording disabled")
	}
	if len(back.Events()) != 1 {
		t.Fatalf("events = %+v, want 1", back.Events())
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	t.Parallel()
	cases := []struct{ name, doc string }{
		{"empty", ""},
		{"bad first column", "r,pop0\n"},
		{"no populations", "round,committed0\n"},
		{"gapped pops", "round,pop0,pop2\n"},
		{"commit count mismatch", "round,pop0,pop1,committed0\n"},
		{"short row", "round,pop0,pop1\n1,5\n"},
		{"non-numeric", "round,pop0,pop1\n1,5,x\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCSVWriterHeaderOnlyOnClose(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	cw := NewCSVWriter(&buf, 1, false)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "round,pop0,pop1\n" {
		t.Fatalf("empty stream = %q", buf.String())
	}
}

func TestCSVWriterValidatesRows(t *testing.T) {
	t.Parallel()
	cw := NewCSVWriter(&bytes.Buffer{}, 2, true)
	if err := cw.WriteRound(Round{Round: 1, Populations: []int{1}}); err == nil {
		t.Fatal("short populations accepted")
	}
	if err := cw.WriteRound(Round{Round: 1, Populations: []int{1, 2, 3}, Commitments: []int{1}}); err == nil {
		t.Fatal("short commitments accepted")
	}
}

func TestJSONWriterMisuse(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	jw := NewJSONWriter(&buf, 1)
	if err := jw.WriteRound(Round{Round: 1, Populations: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := jw.WriteRound(Round{Round: 2, Populations: []int{1, 2}}); err == nil {
		t.Fatal("WriteRound after Close accepted")
	}
	if err := jw.Close(nil); err == nil {
		t.Fatal("double Close accepted")
	}
	if err := NewJSONWriter(&bytes.Buffer{}, 1).WriteRound(Round{Populations: []int{1}}); err == nil {
		t.Fatal("short populations accepted")
	}
}

// TestJSONWriterEmptyMatchesEmptyTrace pins the zero-round encoding
// ("rounds":null) against an actual empty Trace.
func TestJSONWriterEmptyMatchesEmptyTrace(t *testing.T) {
	t.Parallel()
	var streamed, oneShot bytes.Buffer
	if err := NewJSONWriter(&streamed, 3).Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := New(3).WriteJSON(&oneShot); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != oneShot.String() {
		t.Fatalf("empty stream %q != empty trace %q", streamed.String(), oneShot.String())
	}
}
