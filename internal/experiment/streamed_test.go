package experiment

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/stats"
	"github.com/gmrl/househunt/internal/trace"
	"github.com/gmrl/househunt/internal/workload"
)

// This file pins the streamed-measurement contract on a fixed grid: the
// ConvergencePoint out of MeasureConvergenceStreamed is identical to
// MeasureConvergence's (observation is draw-free), the online distributions
// agree with post-hoc statistics over the same runs, and the batch-streamed
// fold matches the scalar fold on the same cell (same multiset of
// observations, so the integer-count sketch is bucket-identical).

// streamedGrid returns the pinned (algorithm, environment) cells. Shapes
// cover the lockstep path, the quality-recruit family on a graded
// environment, and the quorum-transport strategy.
func streamedGrid(t *testing.T) []struct {
	name string
	algo core.Algorithm
	env  sim.Environment
} {
	t.Helper()
	binary, err := workload.Binary(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	graded := sim.MustEnvironment([]float64{0.3, 0.9, 0.2, 0})
	return []struct {
		name string
		algo core.Algorithm
		env  sim.Environment
	}{
		{"simple", algo.Simple{}, binary},
		{"quality", algo.QualityAware{}, graded},
		{"quorum", algo.Quorum{}, binary},
		{"optimal", algo.Optimal{}, binary},
	}
}

// TestMeasureConvergenceStreamedMatchesScalar is the experiment layer of the
// telemetry differential harness: on each pinned cell the streamed
// measurement's point equals the plain measurement's, the streamed Welford
// moments equal the post-hoc Summarize over the same runs, the quantile
// sketch answers within DefaultSketchAlpha of the exact sample quantiles,
// and RoundsObserved counts every executed round of the sweep.
func TestMeasureConvergenceStreamedMatchesScalar(t *testing.T) {
	const (
		reps = 24
		tag  = "streamed-equiv"
	)
	for _, tc := range streamedGrid(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.RunConfig{N: 96, Env: tc.env, MaxRounds: 4000}

			want, err := MeasureConvergence(tc.algo, cfg, reps, tag)
			if err != nil {
				t.Fatal(err)
			}
			point, dist, err := MeasureConvergenceStreamed(tc.algo, cfg, reps, tag)
			if err != nil {
				t.Fatal(err)
			}
			if !dist.Streamed {
				t.Fatal("batch-eligible cell did not stream")
			}
			if !reflect.DeepEqual(point, want) {
				t.Fatalf("streamed point diverged:\nstreamed: %+v\nplain:    %+v", point, want)
			}
			if point.Solved == 0 {
				t.Fatalf("cell solved no replicates; the check is vacuous")
			}

			// Post-hoc oracle: the same sweep's per-rep results.
			runs, ok, err := core.RunBatch(tc.algo, cfg, convergenceSeeds(cfg, reps, tag))
			if err != nil || !ok {
				t.Fatalf("oracle sweep: ok=%v err=%v", ok, err)
			}
			var wantObserved uint64
			var rounds, quality []float64
			for _, res := range runs {
				wantObserved += uint64(res.Rounds)
				if res.Solved {
					rounds = append(rounds, float64(res.Rounds))
					quality = append(quality, res.WinnerQuality)
				}
			}
			if dist.RoundsObserved != wantObserved {
				t.Errorf("RoundsObserved = %d, want %d (sum of executed rounds)", dist.RoundsObserved, wantObserved)
			}
			checkWelford(t, "Rounds", &dist.Rounds, rounds, point.Rounds)
			checkWelford(t, "Quality", &dist.Quality, quality, point.WinnerQuality)
			checkSketch(t, dist.RoundsQ, rounds)
		})
	}
}

// checkWelford compares streamed moments against the post-hoc sample and the
// point's Summary. Min/max/count are exact; the mean tolerates last-bit
// drift because the streamed fold adds observations in completion order.
func checkWelford(t *testing.T, label string, w *stats.Welford, sample []float64, summary stats.Summary) {
	t.Helper()
	if w.N() != len(sample) || w.N() != summary.N {
		t.Errorf("%s: streamed N = %d, sample has %d, summary has %d", label, w.N(), len(sample), summary.N)
		return
	}
	if len(sample) == 0 {
		return
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	if w.Min() != sorted[0] || w.Max() != sorted[len(sorted)-1] {
		t.Errorf("%s: streamed min/max = %v/%v, want %v/%v", label, w.Min(), w.Max(), sorted[0], sorted[len(sorted)-1])
	}
	if d := math.Abs(w.Mean() - summary.Mean); d > 1e-9 {
		t.Errorf("%s: streamed mean %v vs summary mean %v (|Δ| = %g)", label, w.Mean(), summary.Mean, d)
	}
}

// checkSketch asserts every sketched quantile is within the sketch's
// advertised relative accuracy of the exact closest-rank sample value.
func checkSketch(t *testing.T, sk *stats.QuantileSketch, sample []float64) {
	t.Helper()
	if sk.N() != uint64(len(sample)) {
		t.Errorf("sketch N = %d, want %d", sk.N(), len(sample))
		return
	}
	if len(sample) == 0 {
		return
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		exact := sorted[int(q*float64(len(sorted)-1))] // the sketch's closest-rank convention
		got := sk.Quantile(q)
		if tol := sk.Alpha()*math.Abs(exact) + 1e-9; math.Abs(got-exact) > tol {
			t.Errorf("q=%.2f: sketch %v, exact %v (tolerance %g)", q, got, exact, tol)
		}
	}
}

// TestMeasureConvergenceStreamedScalarFoldMatchesBatchFold runs the same cell
// through both folds — ring-streamed from the batch lanes, and folded from
// the scalar loop's results — and requires identical distributions: the
// observation multisets are equal, so the integer-count sketch must be
// bucket-identical and every quantile must agree exactly.
func TestMeasureConvergenceStreamedScalarFoldMatchesBatchFold(t *testing.T) {
	const (
		reps = 16
		tag  = "streamed-fold"
	)
	env, err := workload.Binary(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.RunConfig{N: 64, Env: env, MaxRounds: 4000}

	pointB, distB, err := MeasureConvergenceStreamed(algo.Simple{}, cfg, reps, tag)
	if err != nil {
		t.Fatal(err)
	}
	if !distB.Streamed {
		t.Fatal("batch path did not stream")
	}

	SetBatchEngine(false)
	defer SetBatchEngine(true)
	pointS, distS, err := MeasureConvergenceStreamed(algo.Simple{}, cfg, reps, tag)
	if err != nil {
		t.Fatal(err)
	}
	if distS.Streamed {
		t.Fatal("scalar fallback claims to have streamed")
	}

	if !reflect.DeepEqual(pointB, pointS) {
		t.Fatalf("points diverge across folds:\nbatch:  %+v\nscalar: %+v", pointB, pointS)
	}
	if pointB.Solved == 0 {
		t.Fatal("cell solved no replicates; the check is vacuous")
	}
	if distB.RoundsObserved != distS.RoundsObserved {
		t.Errorf("RoundsObserved: batch %d, scalar %d", distB.RoundsObserved, distS.RoundsObserved)
	}
	for _, w := range []struct {
		label         string
		batch, scalar *stats.Welford
		meanTol       float64
	}{
		{"Rounds", &distB.Rounds, &distS.Rounds, 1e-9},
		{"Quality", &distB.Quality, &distS.Quality, 1e-9},
	} {
		if w.batch.N() != w.scalar.N() || w.batch.Min() != w.scalar.Min() || w.batch.Max() != w.scalar.Max() {
			t.Errorf("%s: N/min/max diverge: batch (%d,%v,%v), scalar (%d,%v,%v)", w.label,
				w.batch.N(), w.batch.Min(), w.batch.Max(), w.scalar.N(), w.scalar.Min(), w.scalar.Max())
		}
		if d := math.Abs(w.batch.Mean() - w.scalar.Mean()); d > w.meanTol {
			t.Errorf("%s: means diverge beyond fold-order tolerance: %v vs %v", w.label, w.batch.Mean(), w.scalar.Mean())
		}
	}
	// Equal multisets → bucket-identical sketches → exactly equal quantiles.
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1} {
		if b, s := distB.RoundsQ.Quantile(q), distS.RoundsQ.Quantile(q); b != s {
			t.Errorf("q=%.2f: batch sketch %v, scalar sketch %v", q, b, s)
		}
	}
}

// TestMeasureConvergenceStreamedFallback exercises the batch-ineligible
// branch: a custom matcher type forces the scalar path (same idiom as the
// batch equivalence tests), and the streamed API must still produce a full
// measurement with Streamed reporting the fallback.
func TestMeasureConvergenceStreamedFallback(t *testing.T) {
	env, err := workload.Binary(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.RunConfig{
		N:          64,
		Env:        env,
		NewMatcher: func() sim.Matcher { return &fallbackMatcher{} },
	}
	if _, ok, _ := core.CompileForBatch(algo.Simple{}, cfg); ok {
		t.Fatal("a custom-matcher config should have no batch path")
	}
	want, err := MeasureConvergence(algo.Simple{}, cfg, 8, "streamed-fallback")
	if err != nil {
		t.Fatal(err)
	}
	point, dist, err := MeasureConvergenceStreamed(algo.Simple{}, cfg, 8, "streamed-fallback")
	if err != nil {
		t.Fatal(err)
	}
	if dist.Streamed {
		t.Error("batch-ineligible cell claims to have streamed")
	}
	if !reflect.DeepEqual(point, want) {
		t.Fatalf("fallback point diverged:\nstreamed: %+v\nplain:    %+v", point, want)
	}
	if dist.Rounds.N() != point.Solved {
		t.Errorf("distribution folded %d solved reps, point has %d", dist.Rounds.N(), point.Solved)
	}
	if point.Solved == 0 {
		t.Fatal("cell solved no replicates; the check is vacuous")
	}
}

// repTrace reassembles one replicate's streamed rows; mutated only on the
// collector goroutine, read after Close.
type repTrace struct {
	rounds  []int
	pops    [][]int
	commits [][]int
	end     []int32
}

// traceSink collects streamed records per replicate for the cross-engine
// per-round comparison.
type traceSink struct {
	mu   sync.Mutex
	k    int
	reps map[int32]*repTrace
}

func (s *traceSink) Record(_ int, rep, round int32, row []int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.reps[rep]
	if rt == nil {
		rt = &repTrace{}
		s.reps[rep] = rt
	}
	if round == sim.StreamEndRound {
		rt.end = append([]int32(nil), row[:4]...)
		return
	}
	base := s.k + 1
	pops := make([]int, base)
	commits := make([]int, base)
	for i := 0; i < base; i++ {
		pops[i] = int(row[i])
		commits[i] = int(row[base+i])
	}
	rt.rounds = append(rt.rounds, int(round))
	rt.pops = append(rt.pops, pops)
	rt.commits = append(rt.commits, commits)
}

// TestStreamedRecordsMatchScalarTraces is the strongest cross-layer pin: the
// per-round records streamed out of the batch lanes must equal, round for
// round, the trace core.RunTraced records on the scalar engine for the same
// (algorithm, config, seed) — populations and commitment census both.
func TestStreamedRecordsMatchScalarTraces(t *testing.T) {
	seeds := []uint64{11, 23, 58, 91}
	for _, tc := range streamedGrid(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.RunConfig{N: 96, Env: tc.env, MaxRounds: 4000}
			k := tc.env.K()

			sink := &traceSink{k: k, reps: map[int32]*repTrace{}}
			coll, err := trace.NewCollector(sim.StreamRowWidth(k), 64, sink)
			if err != nil {
				t.Fatal(err)
			}
			obs, err := sim.NewStreamObserver(coll, k)
			if err != nil {
				t.Fatal(err)
			}
			_, ok, err := core.RunBatchObserved(tc.algo, cfg, seeds, obs)
			if err != nil || !ok {
				t.Fatalf("observed sweep: ok=%v err=%v", ok, err)
			}
			coll.Close()

			for rep, seed := range seeds {
				tr := trace.New(k)
				repCfg := cfg
				repCfg.Seed = seed
				repCfg.Trace = tr
				res, err := core.RunTraced(tc.algo, repCfg)
				if err != nil {
					t.Fatalf("rep %d: RunTraced: %v", rep, err)
				}
				rt := sink.reps[int32(rep)]
				if rt == nil {
					t.Fatalf("rep %d: no streamed records", rep)
				}
				scalar := tr.Rounds()
				if len(rt.rounds) != len(scalar) {
					t.Fatalf("rep %d: streamed %d rounds, scalar trace has %d", rep, len(rt.rounds), len(scalar))
				}
				for i, rec := range scalar {
					if rt.rounds[i] != rec.Round {
						t.Fatalf("rep %d record %d: streamed round %d, scalar %d", rep, i, rt.rounds[i], rec.Round)
					}
					if !reflect.DeepEqual(rt.pops[i], rec.Populations) {
						t.Fatalf("rep %d round %d: populations diverge: streamed %v, scalar %v", rep, rec.Round, rt.pops[i], rec.Populations)
					}
					if !reflect.DeepEqual(rt.commits[i], rec.Commitments) {
						t.Fatalf("rep %d round %d: commitments diverge: streamed %v, scalar %v", rep, rec.Round, rt.commits[i], rec.Commitments)
					}
				}
				if rt.end == nil {
					t.Fatalf("rep %d: missing end record", rep)
				}
				solved, rounds, winner, _ := sim.DecodeStreamEnd(rt.end)
				if solved != res.Solved || rounds != res.Rounds || (solved && winner != res.Winner) {
					t.Fatalf("rep %d: streamed end (%v,%d,%d) != scalar result (%v,%d,%d)",
						rep, solved, rounds, winner, res.Solved, res.Rounds, res.Winner)
				}
				if len(scalar) == 0 {
					t.Fatalf("rep %d: scalar trace empty; the check is vacuous", rep)
				}
			}
		})
	}
}
