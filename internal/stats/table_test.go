package stats

import (
	"strings"
	"testing"
)

// TestTableStringGolden pins the exact rendering: title line, padded header,
// rule sized to the column widths, aligned cells with two-space gutters and
// no trailing spaces.
func TestTableStringGolden(t *testing.T) {
	t.Parallel()
	tb := NewTable("E0: demo", "algorithm", "n", "rounds")
	tb.AddRow("simple", "1024", "412.5")
	tb.AddRow("optimal", "64", "31")
	want := strings.Join([]string{
		"E0: demo",
		"algorithm  n     rounds",
		"-----------------------",
		"simple     1024  412.5",
		"optimal    64    31",
		"",
	}, "\n")
	if got := tb.String(); got != want {
		t.Fatalf("Table.String golden mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	t.Parallel()
	tb := NewTable("t", "a", "b")
	tb.AddRow("x")               // short: padded
	tb.AddRow("y", "z", "extra") // long: widens the table
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want title+header+rule+2 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "extra") {
		t.Fatalf("long row lost its extra cell:\n%s", out)
	}
	if strings.HasSuffix(lines[3], " ") {
		t.Fatalf("padded short row has trailing spaces: %q", lines[3])
	}
}

func TestTableAddRowf(t *testing.T) {
	t.Parallel()
	tb := NewTable("t", "n", "rate")
	tb.AddRowf("%d\t%.2f", 128, 0.875)
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d, want 1", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "128") || !strings.Contains(out, "0.88") {
		t.Fatalf("AddRowf cells missing from render:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	t.Parallel()
	var tb Table
	if got := tb.String(); got != "\n" {
		t.Fatalf("zero-value table rendered %q, want a bare newline", got)
	}
	titled := NewTable("only a title")
	if got := titled.String(); got != "only a title\n" {
		t.Fatalf("headerless table rendered %q", got)
	}
}

func TestTableHeaderlessRows(t *testing.T) {
	t.Parallel()
	tb := NewTable("t")
	tb.AddRow("a", "bb")
	out := tb.String()
	if strings.Contains(out, "-") {
		t.Fatalf("headerless table drew a rule:\n%s", out)
	}
	if !strings.Contains(out, "a  bb") {
		t.Fatalf("row cells misaligned:\n%s", out)
	}
}
