package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gmrl/househunt/internal/rng"
)

// Batch executes R replicate colonies of n ants each, all running one
// compiled Program, as a struct-of-arrays sweep: per-ant state (PFSM state
// id, register file, RNG stream, location) lives in flat slices rather than
// heap-allocated agent objects, and a round resolves with plain switches over
// opcodes — no interface dispatch, no map lookups and no per-round
// allocations on the hot path. Replicates are fanned out across a worker
// pool; each worker owns one lane of flat arrays and streams replicates
// through it.
//
// Two execution paths exist. Programs whose transitions are all
// outcome-independent (Program.Lockstep) keep the whole colony in one shared
// state, so the opcode dispatch happens once per round and the recruit phase
// needs no recruiter/slot indirection because slot t is ant t. Programs with
// branching observes (Algorithm 2) run the general path state-major: each
// round the per-ant state column is regrouped into per-state buckets, the
// emit and observe opcodes dispatch once per occupied state, and recruiting
// ants are assembled into a slot table in ant order so the matcher sees
// exactly the scalar engine's slot space (see stepGeneral).
//
// The recruit draws run on fixed-point kernels at every colony size: each
// Bernoulli probability whose numerator is a population count resolves to an
// rng.Threshold — from a small per-count table below batchTableMaxN, and from
// the precomputed reciprocal kernels (rng.Recip.Threshold for count/n,
// rng.Recip.ThresholdMul for quality·count/n) above it — so the per-ant inner
// loops compare raw integers with zero floating-point operations and no O(n)
// table memory. The threshold transform is bit-identical to
// rng.Source.Bernoulli by construction (see rng.Threshold and rng.Recip).
//
// Within one replicate the O(n) phases — regrouping, per-ant draws, emit and
// observe folds, register init — can additionally be sharded across worker
// goroutines (see Run's worker budget and WithBatchShards). Sharding never
// moves a draw between streams or reorders draws within a stream: the shared
// envSrc and matchSrc streams are consumed only in sequential ant-order
// passes, parallel loops draw exclusively from per-ant streams (which are
// stream-disjoint, so shard order is immaterial), and cross-ant reductions
// (population tallies, commitment deltas, the recruiting-slot prefix) are
// deterministic sums — so results are bit-identical for every shard count, a
// property the differential harness pins.
//
// The recruitment pairing defaults to the paper's Algorithm 1 and can be
// swapped for any Matcher via WithBatchMatcher: the engine hands the matcher
// the recruiting slots in scalar engine order, so the stock ablation models
// (SimultaneousMatcher, RendezvousMatcher) run batched with exactly their
// scalar draw sequences.
//
// The engine is bit-compatible with the scalar path: replicate r seeded with
// seeds[r] produces round-for-round identical populations, commitments and
// final results to an Engine running the same algorithm's scalar agents under
// the same seed (pinned for every compiled algorithm — Algorithms 2 and 3 and
// the §6 extensions, including the carry-matched quorum-transport strategy and
// the hook-driven noisy-perception model — and for every stock matcher by the
// randomized cross-engine differential harness in internal/algo).
// That holds because the batch engine derives exactly the same RNG streams —
// envSrc = root.Split(0), matchSrc = root.Split(1), ant i = root.Split(2).
// Split(i) — and consumes them in the same order as Engine.Step: per-ant
// draws are stream-disjoint from environment draws, search draws happen in
// ant order, and the matcher receives the recruiting slots in ant order, so
// fusing the emit and move loops preserves every sequence.
//
// A Batch is reusable and safe for concurrent Run calls; all mutable state
// lives in per-worker lanes.
type Batch struct {
	env        Environment
	prog       Program
	n          int
	workers    int
	shards     int
	probe      func(rep, round int, counts, committed []int)
	obs        BatchObserver
	newMatcher func() Matcher

	// Program traits, computed once at construction.
	lockstep  bool
	decides   bool
	antRNG    bool
	needI     bool
	needF     bool
	usesCarry bool
	faulted   bool

	// Shared read-only fixed-point draw kernels (see newLane for the
	// per-lane mutable ones). popT is nil when the program does not use the
	// opcode or the colony is above the table/reciprocal crossover; rcp is
	// the table-free kernel backing every count-ratio draw beyond the table
	// (and all quality-weighted draws at any size).
	popT []rng.Threshold // Bernoulli(count/n) by count, EmitRecruitPop
	rcp  rng.Recip       // reciprocal kernels for count/n and q·count/n
	docT rng.Threshold   // Bernoulli(QuorumDocility), ObserveQuorumTransport
	ada  bool            // lanes maintain the EmitRecruitAdaptive decay table
}

// batchTableMaxN is the table/reciprocal crossover for the count-ratio draw:
// at or below it the per-count threshold table is materialized (one load per
// draw); above it the draws derive each threshold on the fly from rng.Recip
// (a handful of integer multiplies per draw, no O(n) memory). Both kernels
// produce bit-identical thresholds, so the crossover is purely a
// memory/latency trade — it is no longer a fixed-point ceiling.
const batchTableMaxN = 1 << 16

// batchShardGrain is the smallest per-shard colony slice worth a worker: Run
// stops splitting a replicate once shards would drop below this many ants
// each (explicit WithBatchShards values bypass the grain).
const batchShardGrain = 1 << 10

// BatchResult reports one replicate of a Batch run, mirroring the fields the
// scalar runner derives for core.Result.
type BatchResult struct {
	// Seed is the replicate's root seed.
	Seed uint64
	// Solved reports convergence within the round budget.
	Solved bool
	// Winner is the unanimously chosen nest (0 if unsolved).
	Winner NestID
	// WinnerQuality is q(Winner).
	WinnerQuality float64
	// Rounds is the round at which convergence was detected (the end of the
	// stability window), or the budget if unsolved.
	Rounds int
	// Committed is the final commitment census (index 0 = uncommitted).
	Committed []int
	// Decided counts ants in Final program states at termination, or -1 when
	// the program does not distinguish terminal states — the same convention
	// as core.Census.Decided.
	Decided int
	// Faulty counts the ants that were faulty at termination (Byzantine ants
	// plus crashes that fired), mirroring core.Census.Faulty; sleeping ants
	// are healthy and never counted. Zero without a fault spec.
	Faulty int
}

// BatchOption configures a Batch.
type BatchOption func(*Batch)

// WithBatchWorkers sets Run's total worker budget — the number of concurrent
// replicate lanes times the shards each lane splits its colony across; values
// < 1 select GOMAXPROCS. The budget is spent on replicate-level parallelism
// first (up to one lane per seed) and any surplus on intra-replicate shards,
// so a single-seed run of a large colony still uses the whole budget (see
// WithBatchShards to pin the split explicitly).
func WithBatchWorkers(w int) BatchOption {
	return func(b *Batch) { b.workers = w }
}

// WithBatchShards pins the number of intra-replicate shards per lane,
// bypassing the worker-budget and grain derivation in Run; values < 1 keep
// the automatic choice. Results are bit-identical for every shard count (a
// pinned property); the option exists for tests and benchmarks that fix a
// topology.
func WithBatchShards(s int) BatchOption {
	return func(b *Batch) { b.shards = s }
}

// WithBatchProbe installs a per-round observer, called after each replicate
// round with that round's end-of-round populations (index 0 = home) and
// commitment census (index 0 = uncommitted). The slices are worker-owned
// scratch, valid only during the call; the probe may be invoked concurrently
// for different replicates. Probes exist for the golden equivalence tests.
func WithBatchProbe(probe func(rep, round int, counts, committed []int)) BatchOption {
	return func(b *Batch) { b.probe = probe }
}

// WithBatchMatcher replaces the recruitment pairing model (default: the
// paper's Algorithm 1). Matchers carry per-engine scratch state, so the
// option takes a factory; every worker lane constructs its own instance, and
// the factory must return a fresh matcher on each call (lanes are built
// concurrently). A nil factory keeps the default. Programs that transport
// (carry > 1) require the factory's matchers to implement CarryMatcher.
func WithBatchMatcher(newMatcher func() Matcher) BatchOption {
	return func(b *Batch) { b.newMatcher = newMatcher }
}

// NewBatch builds a batch engine for n-ant colonies of prog in env.
func NewBatch(env Environment, prog Program, n int, opts ...BatchOption) (*Batch, error) {
	if env.K() == 0 {
		return nil, fmt.Errorf("sim: batch needs a non-empty environment")
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: batch needs a positive colony, got %d", n)
	}
	if n > math.MaxInt32 {
		// Ant indices, counts and slot ids are int32 columns throughout the
		// lanes; reject oversized colonies by name instead of wrapping.
		return nil, fmt.Errorf("sim: batch colony %d exceeds the int32 ant-index limit %d", n, math.MaxInt32)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	b := &Batch{
		env:       env,
		prog:      prog,
		n:         n,
		lockstep:  prog.Lockstep(),
		decides:   prog.Decides(),
		antRNG:    prog.NeedsAntRNG(),
		needI:     prog.NeedsIntParam(),
		needF:     prog.NeedsFloatParam(),
		usesCarry: prog.UsesCarry(),
		faulted:   prog.Params.Faults.Enabled(),
	}
	for _, o := range opts {
		o(b)
	}
	if b.newMatcher == nil {
		b.newMatcher = func() Matcher { return &AlgorithmOneMatcher{} }
	}
	probe := b.newMatcher()
	if probe == nil {
		return nil, fmt.Errorf("sim: batch matcher factory returned nil")
	}
	if _, carryOK := probe.(CarryMatcher); b.usesCarry && prog.Params.QuorumCarry > 1 && !carryOK {
		return nil, fmt.Errorf("sim: program %q transports (carry %d > 1) but matcher %q implements no CarryMatcher",
			prog.Algorithm, prog.Params.QuorumCarry, probe.Name())
	}
	b.buildTables()
	return b, nil
}

// buildTables materializes the shared fixed-point draw kernels for the
// opcodes the program actually uses. Every kernel resolves the exact
// threshold of the exact float probability the scalar agents feed to
// Bernoulli, so kernel draws and float draws are interchangeable bit for bit
// at any colony size: the count-ratio draw uses a per-count table up to the
// batchTableMaxN crossover and the rng.Recip reciprocal above it, the
// quality-weighted draw uses rng.Recip.ThresholdMul everywhere (its former
// (k+1)×(n+1) table cost O(k·n) threshold entries — ~134 MB at the old
// ceiling with 255 nests — for no exactness gain), and the adaptive decay
// ladder is a per-lane table at every size because its divisor varies with
// the colony's phase clock, not just the count.
func (b *Batch) buildTables() {
	var hasPop, hasQual, hasDoc bool
	for _, st := range b.prog.States {
		switch st.Emit {
		case EmitRecruitPop:
			hasPop = true
		case EmitRecruitQual:
			hasQual = true
		case EmitRecruitAdaptive:
			b.ada = true
		}
		if st.Observe == ObserveQuorumTransport {
			hasDoc = true
		}
	}
	if hasDoc {
		b.docT = rng.NewThreshold(b.prog.Params.QuorumDocility)
	}
	n := b.n
	if hasPop || hasQual {
		b.rcp = rng.NewRecip(n)
	}
	if hasPop && n <= batchTableMaxN {
		nF := float64(n)
		b.popT = make([]rng.Threshold, n+1)
		for c := 0; c <= n; c++ {
			b.popT[c] = rng.NewThreshold(float64(c) / nF)
		}
	}
}

// N returns the colony size per replicate.
func (b *Batch) N() int { return b.n }

// K returns the number of candidate nests.
func (b *Batch) K() int { return b.env.K() }

// Run executes one replicate per seed and returns the results in seed order.
// maxRounds bounds each replicate; window is the stability window in rounds
// (values < 1 mean 1), both matching the scalar runner's semantics. The first
// replicate error (a compiled program emitting an invalid call) aborts the
// run.
func (b *Batch) Run(seeds []uint64, maxRounds, window int) ([]BatchResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: batch run needs at least one seed")
	}
	if maxRounds <= 0 {
		return nil, fmt.Errorf("sim: batch run needs positive maxRounds, got %d", maxRounds)
	}
	if window < 1 {
		window = 1
	}
	// Split the worker budget: replicate-level lanes first (they parallelize
	// with zero coordination), then any surplus as intra-replicate shards —
	// so an R=1 run of a large colony still uses the whole budget instead of
	// clamping to one core. The grain stops sharding colonies too small to
	// amortize the fan-out; an explicit WithBatchShards bypasses both.
	workers := b.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	lanes := workers
	if lanes > len(seeds) {
		lanes = len(seeds)
	}
	shards := b.shards
	if shards < 1 {
		shards = workers / lanes
		if maxShards := b.n / batchShardGrain; shards > maxShards {
			shards = maxShards
		}
		if shards < 1 {
			shards = 1
		}
	}

	results := make([]BatchResult, len(seeds))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < lanes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ln := newLane(b, shards)
			defer ln.close()
			var obs LaneObserver
			if b.obs != nil {
				obs = b.obs.LaneObserver(w)
			}
			for {
				rep := int(next.Add(1)) - 1
				if rep >= len(seeds) || firstErr.Load() != nil {
					return
				}
				res, err := ln.runReplicate(rep, seeds[rep], maxRounds, window, b.probe, obs)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("sim: batch replicate %d (seed %d): %w", rep, seeds[rep], err))
					return
				}
				results[rep] = res
			}
		}(w)
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return results, nil
}

// lane is one worker's flat-array state: a full colony's registers plus the
// per-round scratch, reused across replicates.
//
// The per-ant state column is the execution model; the lockstep path (taken
// for programs with static successors, where the column would stay uniform by
// construction) models it as the single phase variable of runReplicate and
// keeps its specialized per-opcode loops. The general path dispatches per ant
// and maintains the recruiter/slot indirection: recruiting ants are appended
// to recruiters in ant order, so slot t is the t-th recruiting ant exactly as
// in Engine.resolve, and matching draws consume matchSrc in the scalar
// engine's order.
type lane struct {
	prog Program
	env  Environment
	qual []float64 // quality by nest id (index 0 = home)
	n, k int

	lockstep bool
	decides  bool
	antRNG   bool

	envSrc, matchSrc rng.Source
	antSrc           []rng.Source // one stream per ant, stored by value

	// Register file (struct of arrays). state is unused on the lockstep path
	// (the shared PFSM state lives in runReplicate's phase variable); nestT
	// and countT are Algorithm 2's cross-round scratch registers. paramI and
	// paramF are the §6 extension parameter columns — AdaptiveAnt's phase
	// clock and ApproxNAnt's private ñ estimate — materialized only when the
	// program's opcodes read them.
	state   []uint8
	nest    []NestID
	count   []int32
	quality []float64
	nestT   []NestID
	countT  []int32
	paramI  []int32
	paramF  []float64

	// Per-round scratch.
	actNest    []NestID // the nest advertised by this round's search/go/recruit
	counts     []int    // end-of-round population per nest
	commit     []int    // commitment census, maintained incrementally
	recruiters []int32  // slot -> ant index (general path)
	slotOf     []int32  // ant index -> recruiter slot this round (-1 otherwise)
	active     []bool   // recruit(1, ·) per slot (per ant on the lockstep path)
	carries    []int    // carry capacity per slot; nil unless the program transports
	capturedBy []int32
	succeeded  []bool
	finals     int // ants currently in Final states (deciding programs)

	// State-bucket scratch of the general path (nil on the lockstep path):
	// each round the colony is regrouped by PFSM state so the emit and
	// observe opcodes dispatch once per occupied state instead of once per
	// ant — the per-ant jump tables were the dominant stall of heterogeneous
	// colonies. bktAnts holds the ant indices grouped by state (ascending
	// within a group, because the scatter writes each shard's contiguous ant
	// range into its own precomputed segment); isRecr and actBit carry each
	// recruiter's classification from the emit phase to the ant-order
	// slot-assembly pass.
	//
	// The bucket of state s is the concatenation of its per-shard segments:
	// segment (s, sh) spans bkt[segOff[s*shards+sh]:segOff[s*shards+sh+1]]
	// (the trailing segOff entry is n), so segments of one state are
	// adjacent and the emit/observe shard loops walk exactly the sequential
	// bucket split at shard boundaries.
	bktAnts  []int32
	segOff   []int32 // numExec*shards+1 segment bounds, state-major
	iota32   []int32 // the identity permutation 0..n-1, immutable after construction
	isRecr   []uint8 // 0 = not recruiting, 1 = recruit, 2 = transport
	actBit   []uint8
	preState []uint8  // per recruited ant: the state it emitted from, for the capture pass
	capScrat []int32  // capture-list scratch for matchers without CaptureLister
	slotNest []NestID // per-slot resolved outcome nest (capturer's advertised nest)

	// Sharding scaffolding (see Batch's doc comment for the draw-placement
	// rules). shards is at least 1; pool is nil when the lane runs
	// single-sharded, and par dispatches a phase either inline or across the
	// pool. shardLo holds the shards+1 ant-range bounds. The sh* slabs are
	// per-shard reduction scratch, one (k+1)- or numExec-sized block per
	// shard: population tallies and commitment deltas (summed sequentially
	// after the parallel phase — integer sums, so the reduction order never
	// shows), recruiter counts (prefix-summed into per-shard slot bases),
	// histogram banks and scatter cursors, transport flags, and the
	// first-error record each shard may park (reduced by (state, ant) order
	// so the reported error is exactly the sequential scan's first).
	//
	// The ph* fields carry one phase's parameters from the sequential
	// dispatch point into the shard function — the functions themselves
	// (fnDraw, fnLockFold, …) are bound once at construction so dispatching
	// a phase allocates nothing.
	shards     int
	pool       *shardPool
	shardLo    []int32
	shCnt      []int32 // histogram: 4 interleaved banks per shard
	shCur      []int32 // scatter cursors, shard-major
	shCounts   []int   // emit population tallies per shard
	shCommit   []int   // observe commitment deltas per shard
	shNRecr    []int32
	shSlotBase []int32
	shFinals   []int32
	shTrans    []uint8
	shErrKind  []uint8
	shErrState []int32
	shErrAnt   []int32
	shErrNest  []NestID

	phOp        EmitOp
	phPhase     uint8
	phRecruited bool
	phCountSkip bool
	phAct       []NestID
	phBkt       []int32
	phMode      uint8
	phCountHome int32
	phNRecr     int
	phDecay     float64
	phAgents    rng.Source

	fnDraw     func(int)
	fnLockFold func(int)
	fnHist     func(int)
	fnScatter  func(int)
	fnEmit     func(int)
	fnAssemble func(int)
	fnObserve  func(int)
	fnReset    func(int)

	// Converged-tail O(k) bookkeeping: countAllN records that the lockstep
	// count column is uniformly n (so a unanimous goto round's refill can be
	// skipped), countUni the uniform value of the general-path count column
	// written by a sole-state recruited ObserveCount fold (-1 when the
	// column is not known uniform). Both make the absorbing-state tail cost
	// O(k) bookkeeping instead of O(n) rewrites.
	countAllN bool
	countUni  int32

	// Fault lanes (nil/zero unless prog.Params.Faults is enabled). The four
	// synthetic states live after the program's own in the padded tables:
	// numExec = len(prog.States) + batchSyntheticStates, and sleepSt..crashSt
	// name them. round counts this replicate's rounds for the pre-round fault
	// pass; alive is the census total (n minus Byzantine ants minus fired
	// crashes); lastNest tracks each crash-fated ant's last known candidate
	// nest — maintained every round, before and after the crash, exactly like
	// the scalar CrashAnt's Observe. crashAnts/crashAt and sleepAnts/wakeAt
	// are the compact victim lists the per-round passes scan; the full
	// crashRound/wakeRound/byz/permScrat columns are Assign scratch.
	faulted    bool
	numExec    int
	sleepSt    uint8
	byzSrchSt  uint8
	byzRecrSt  uint8
	crashSt    uint8
	round      int
	alive      int
	lastNest   []NestID
	crashAnts  []int32
	crashAt    []int32
	sleepAnts  []int32
	wakeAt     []int32
	crashRound []int32
	wakeRound  []int32
	byz        []uint8
	permScrat  []int32

	// Adaptive adversary (nil unless the spec carries a NewSchedule). sched
	// is rebuilt per replicate, schedSrc is the dedicated adversary stream
	// (root.Split(EffectiveScheduleSalt), touched by nothing else), schedOps
	// is the reused mutation buffer applySchedule hands to the schedule, and
	// nCrashed tallies currently-crashed ants for the view (alive excludes
	// Byzantine ants too, so it cannot serve as the restart-candidate count).
	sched    FaultSchedule
	schedSrc rng.Source
	schedOps []FaultOp
	nCrashed int

	matcher   Matcher
	carryM    CarryMatcher  // matcher's carry form; nil when unimplemented
	capLister CaptureLister // matcher's capture list; nil when unimplemented

	// Fixed-point draw kernels. popT/rcp/docT are shared from the Batch;
	// adaT is per-lane because the adaptive decay steps down over a
	// replicate and the table is rebuilt for each new decay value (its
	// divisor count+decay varies with the phase clock, so no reciprocal
	// applies — the ladder stays a table at every colony size).
	popT     []rng.Threshold
	rcp      rng.Recip
	docT     rng.Threshold
	ada      bool
	adaT     []rng.Threshold
	adaDecay float64

	// The dense state table and Final flags, padded to the full uint8 index
	// range so per-ant dispatch indexes with no bounds checks. searches
	// marks the states whose emit is EmitSearch, for the scatter pass's
	// in-ant-order environment draws.
	states   [256]ProgramState
	final    [256]uint8
	searches [256]uint8
}

func newLane(b *Batch, shards int) *lane {
	n, k := b.n, b.env.K()
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	qs := b.env.Qualities()
	ln := &lane{
		prog:       b.prog,
		env:        b.env,
		qual:       qs,
		n:          n,
		k:          k,
		lockstep:   b.lockstep,
		decides:    b.decides,
		antRNG:     b.antRNG,
		state:      make([]uint8, n),
		nest:       make([]NestID, n),
		count:      make([]int32, n),
		quality:    make([]float64, n),
		nestT:      make([]NestID, n),
		countT:     make([]int32, n),
		actNest:    make([]NestID, n),
		counts:     make([]int, k+1),
		commit:     make([]int, k+1),
		recruiters: make([]int32, 0, n),
		slotOf:     make([]int32, n),
		active:     make([]bool, n),
		capturedBy: make([]int32, n),
		succeeded:  make([]bool, n),
		shards:     shards,
		popT:       b.popT,
		rcp:        b.rcp,
		docT:       b.docT,
		ada:        b.ada,
	}
	copy(ln.states[:], b.prog.States)
	for i, st := range b.prog.States {
		if st.Final {
			ln.final[i] = 1
		}
		if st.Emit == EmitSearch {
			ln.searches[i] = 1
		}
	}
	ln.numExec = len(b.prog.States)
	if b.faulted {
		// Append the engine-owned synthetic fault states after the program's.
		// Three of the four reuse the generic emit loops verbatim: a sleeping
		// ant recruits passively at home (its nest register stays Home while
		// it sleeps), a searching Byzantine ant draws search destinations in
		// ant order via the searches flag, and a luring Byzantine ant actively
		// recruits for the bad nest latched in its nest register. Only the
		// crashed state's emit (goto last known nest / idle at home) and the
		// Byzantine search fold (latch the first BAD nest, without touching
		// the commitment census) need intercepts in stepGeneral. All four
		// observe as ObserveNone — a self-loop that folds nothing, which also
		// makes the capture pass skip them (a captured sleeper or corpse
		// ignores being dragged; the sparse lastNest pass handles the corpse's
		// location drift separately).
		ln.faulted = true
		base := uint8(ln.numExec)
		ln.sleepSt = base
		ln.byzSrchSt = base + 1
		ln.byzRecrSt = base + 2
		ln.crashSt = base + 3
		ln.states[ln.sleepSt] = ProgramState{Emit: EmitRecruitBit, Arg: 0, Observe: ObserveNone, Next: ln.sleepSt}
		ln.states[ln.byzSrchSt] = ProgramState{Emit: EmitSearch, Observe: ObserveNone, Next: ln.byzSrchSt}
		ln.states[ln.byzRecrSt] = ProgramState{Emit: EmitRecruitBit, Arg: 1, Observe: ObserveNone, Next: ln.byzRecrSt}
		ln.states[ln.crashSt] = ProgramState{Emit: EmitRecruitBit, Arg: 0, Observe: ObserveNone, Next: ln.crashSt}
		ln.searches[ln.byzSrchSt] = 1
		ln.numExec += batchSyntheticStates
		ln.lastNest = make([]NestID, n)
		ln.crashAnts = make([]int32, 0, n)
		ln.crashAt = make([]int32, 0, n)
		ln.sleepAnts = make([]int32, 0, n)
		ln.wakeAt = make([]int32, 0, n)
		ln.crashRound = make([]int32, n)
		ln.wakeRound = make([]int32, n)
		ln.byz = make([]uint8, n)
		ln.permScrat = make([]int32, n)
		if b.prog.Params.Faults.NewSchedule != nil {
			// The mutation buffer starts at a modest capacity and grows
			// amortized in applySchedule if a schedule ever asks for more;
			// steady-state rounds then allocate nothing.
			ln.schedOps = make([]FaultOp, 0, 64)
		}
	}
	if !b.lockstep {
		numExec := ln.numExec
		ln.bktAnts = make([]int32, n)
		ln.segOff = make([]int32, numExec*shards+1)
		ln.shCnt = make([]int32, shards*4*numExec)
		ln.shCur = make([]int32, shards*numExec)
		ln.iota32 = make([]int32, n)
		for i := range ln.iota32 {
			ln.iota32[i] = int32(i)
		}
		ln.isRecr = make([]uint8, n)
		ln.actBit = make([]uint8, n)
		ln.preState = make([]uint8, n)
		ln.capScrat = make([]int32, 0, n)
		ln.slotNest = make([]NestID, n)
		ln.shCounts = make([]int, shards*(k+1))
		ln.shNRecr = make([]int32, shards)
		ln.shSlotBase = make([]int32, shards)
		ln.shFinals = make([]int32, shards)
		ln.shTrans = make([]uint8, shards)
		ln.shErrKind = make([]uint8, shards)
		ln.shErrState = make([]int32, shards)
		ln.shErrAnt = make([]int32, shards)
		ln.shErrNest = make([]NestID, shards)
	}
	// Shard scaffolding shared by both paths: even ant-range bounds, the
	// commitment-delta slabs, the phase functions (bound once, so per-round
	// dispatch allocates nothing) and — only when the lane actually splits —
	// the helper pool.
	ln.shardLo = make([]int32, shards+1)
	for s := 0; s <= shards; s++ {
		ln.shardLo[s] = int32(int64(s) * int64(n) / int64(shards))
	}
	ln.shCommit = make([]int, shards*(k+1))
	ln.fnDraw = ln.drawActiveShard
	ln.fnLockFold = ln.lockFoldShard
	ln.fnHist = ln.histShard
	ln.fnScatter = ln.scatterShard
	ln.fnEmit = ln.emitShard
	ln.fnAssemble = ln.assembleShard
	ln.fnObserve = ln.observeShard
	ln.fnReset = ln.resetShard
	ln.pool = newShardPool(shards)
	ln.matcher = b.newMatcher()
	ln.carryM, _ = ln.matcher.(CarryMatcher)
	ln.capLister, _ = ln.matcher.(CaptureLister)
	if sized, ok := ln.matcher.(sizedMatcher); ok {
		sized.Reserve(n) // recruiting sets reach colony size; never grow mid-run
	}
	if b.antRNG {
		ln.antSrc = make([]rng.Source, n)
	}
	if b.needI {
		ln.paramI = make([]int32, n)
	}
	if b.needF {
		ln.paramF = make([]float64, n)
	}
	if b.usesCarry {
		ln.carries = make([]int, n)
	}
	if ln.ada {
		ln.adaT = make([]rng.Threshold, n+1)
		ln.adaDecay = -1 // no decay value tabled yet
	}
	return ln
}

// close releases the lane's shard pool (a no-op for single-sharded lanes).
func (ln *lane) close() {
	if ln.pool != nil {
		ln.pool.close()
	}
}

// par runs one phase function across the lane's shards: inline for a
// single-sharded lane, through the pool otherwise. fn must be one of the
// lane's prebound fn* fields so the dispatch performs no allocation.
//
//hh:hotpath
func (ln *lane) par(fn func(int)) {
	if ln.pool == nil {
		fn(0)
		return
	}
	ln.pool.run(fn)
}

// reset re-seeds the lane for a fresh replicate, deriving the same streams
// the scalar stack does: the engine splits {0: environment, 1: matcher} and
// the algorithm builder splits {2} then per-ant substreams. Per-ant streams
// are only materialized when the program draws ant randomness (programs
// without drawn-recruit opcodes never touch them, so seeding n streams would
// be wasted work — and the scalar agents' unused sources draw nothing either).
// The float parameter column is seeded here because the scalar ApproxN
// builder draws each ant's ñ from the ant's own stream before any round runs;
// doing the same keeps the subsequent Bernoulli sequences aligned.
func (ln *lane) reset(seed uint64) {
	root := rng.New(seed)
	root.SplitInto(0, &ln.envSrc)
	root.SplitInto(1, &ln.matchSrc)
	if ln.antRNG {
		root.SplitInto(2, &ln.phAgents)
	}
	// Per-ant seeding and register init shard cleanly: SplitInto never
	// advances the parent stream, the ñ draws come from each ant's own
	// already-seeded stream, and every other write is a per-ant constant.
	ln.par(ln.fnReset)
	ln.countAllN = false
	ln.countUni = -1
	split := ln.prog.InitSplit
	ln.alive = ln.n
	if ln.faulted {
		// The victim assignment draws from root.Split(Salt) — the same stream,
		// consumed identically, as the scalar faults.Spec wrapper builder
		// (both delegate to FaultSpec.Assign). The overrides run AFTER the
		// register and parameter-column init above because the scalar stack
		// builds the whole colony (including ApproxN's ñ draws) before the
		// wrapper replaces victims.
		var faultSrc rng.Source
		root.SplitInto(ln.prog.Params.Faults.Salt, &faultSrc)
		ln.prog.Params.Faults.Assign(ln.n, &faultSrc, ln.crashRound, ln.wakeRound, ln.byz, ln.permScrat)
		ln.round = 0
		ln.nCrashed = 0
		if ns := ln.prog.Params.Faults.NewSchedule; ns != nil {
			// A fresh schedule per replicate (stateful schedules restart) and
			// the dedicated adversary stream: the scalar controller builds
			// both identically, so adaptive draws can never desync.
			ln.sched = ns()
			root.SplitInto(ln.prog.Params.Faults.EffectiveScheduleSalt(), &ln.schedSrc)
		}
		ln.crashAnts = ln.crashAnts[:0]
		ln.crashAt = ln.crashAt[:0]
		ln.sleepAnts = ln.sleepAnts[:0]
		ln.wakeAt = ln.wakeAt[:0]
		for i := 0; i < ln.n; i++ {
			ln.lastNest[i] = Home
			switch {
			case ln.crashRound[i] > 0:
				ln.crashAnts = append(ln.crashAnts, int32(i))
				ln.crashAt = append(ln.crashAt, ln.crashRound[i])
			case ln.byz[i] != 0:
				ln.state[i] = ln.byzSrchSt
				ln.alive--
			case ln.wakeRound[i] > 0:
				ln.sleepAnts = append(ln.sleepAnts, int32(i))
				ln.wakeAt = append(ln.wakeAt, ln.wakeRound[i])
				ln.state[i] = ln.sleepSt
			}
		}
	}
	for i := range ln.commit {
		ln.commit[i] = 0
	}
	ln.commit[Home] = ln.alive
	ln.finals = 0
	if ln.decides {
		if !ln.faulted && split == 0 {
			if ln.final[ln.prog.Init] != 0 {
				ln.finals = ln.n
			}
		} else {
			for i := 0; i < ln.n; i++ {
				ln.finals += int(ln.final[ln.state[i]])
			}
		}
	}
}

// resetShard performs reset's per-ant work for one ant range: stream
// seeding, parameter-column init (including ApproxN's ñ draw from the ant's
// own stream, matching the scalar builder's order), and the register file.
func (ln *lane) resetShard(sh int) {
	lo, hi := int(ln.shardLo[sh]), int(ln.shardLo[sh+1])
	if ln.antRNG {
		agents := &ln.phAgents
		for i := lo; i < hi; i++ {
			agents.SplitInto(uint64(i), &ln.antSrc[i])
		}
	}
	if ln.paramI != nil {
		for i := lo; i < hi; i++ {
			ln.paramI[i] = 0
		}
	}
	if ln.paramF != nil {
		delta := ln.prog.Params.NEstDelta
		nF := float64(ln.n)
		for i := lo; i < hi; i++ {
			ln.paramF[i] = nF
			if delta > 0 {
				ln.paramF[i] = nF * (1 + (2*ln.antSrc[i].Float64()-1)*delta)
			}
		}
	}
	split := ln.prog.InitSplit
	for i := lo; i < hi; i++ {
		st := ln.prog.Init
		if split > 0 && i >= split {
			st = ln.prog.InitRest
		}
		ln.state[i] = st
		ln.nest[i] = Home
		ln.count[i] = 0
		ln.quality[i] = 0
		ln.nestT[i] = Home
		ln.countT[i] = 0
	}
}

// runReplicate executes one colony to convergence or the round budget. probe
// and obs are both draw-free observation taps on the resolved round; neither
// touches an RNG stream, so their presence cannot perturb the replicate (the
// differential tests pin this).
func (ln *lane) runReplicate(rep int, seed uint64, maxRounds, window int, probe func(rep, round int, counts, committed []int), obs LaneObserver) (BatchResult, error) {
	ln.reset(seed)
	res := BatchResult{Seed: seed, Decided: -1}
	streak := 0
	var winner NestID
	phase := ln.prog.Init
	for round := 1; round <= maxRounds; round++ {
		var err error
		if ln.lockstep {
			var next uint8
			next, err = ln.stepLockstep(phase)
			phase = next
			if ln.decides {
				ln.finals = 0
				if ln.final[phase] != 0 {
					ln.finals = ln.n
				}
			}
		} else {
			err = ln.stepGeneral()
		}
		if err != nil {
			return BatchResult{}, fmt.Errorf("round %d: %w", round, err)
		}
		w, ok := ln.census()
		if probe != nil {
			probe(rep, round, ln.counts, ln.commit)
		}
		if obs != nil {
			obs.ObserveRound(rep, round, ln.counts, ln.commit)
		}
		// Streak bookkeeping mirrors core.Run's until predicate exactly.
		switch {
		case !ok:
			streak = 0
		case streak == 0 || w == winner:
			winner = w
			streak++
		default: // converged, but to a different nest than the streak's
			winner = w
			streak = 1
		}
		res.Rounds = round
		if streak >= window {
			break
		}
	}
	res.Committed = append([]int(nil), ln.commit...)
	if ln.decides {
		res.Decided = ln.finals
	}
	if ln.faulted {
		res.Faulty = ln.n - ln.alive
	}
	if streak >= window {
		res.Solved = true
		res.Winner = winner
		res.WinnerQuality = ln.qual[winner]
	}
	if obs != nil {
		obs.ReplicateDone(rep, &res)
	}
	return res, nil
}

// stepLockstep resolves one synchronous round for a colony whose program has
// static successors: emit + move, recruitment matching, end-of-round counts,
// observe, all in per-opcode specialized loops. It is the batch counterpart
// of Engine.Step/resolve with the same randomness. phase is the colony's
// shared PFSM state; the returned value is next round's phase.
//
//hh:hotpath
//hh:draws per opcode contract on EmitOp/ObserveOp consts: envSrc search draws in ant order, drawActiveRange per-ant draws (one shard per ant), matchSrc via Match, perception hooks from the observing ant's stream
func (ln *lane) stepLockstep(phase uint8) (uint8, error) {
	n, k := ln.n, ln.k
	st := ln.states[phase]
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts

	// Emit and move, accumulating end-of-round populations as we go. Per-ant
	// Bernoulli draws and envSrc search draws touch disjoint streams, so
	// fusing the scalar engine's act/move phases preserves both sequences.
	//
	// act is the outcome-nest column the observe loops read: the freshly
	// filled actNest for search and recruit rounds, and the nest register
	// itself for go rounds — a go round's outcome nest IS the committed
	// nest, so aliasing spares the copy (and the observe folds never write
	// nest[i] on a go round, because outcome and register always coincide).
	act := actNest
	recruited := false
	switch st.Emit {
	case EmitSearch:
		for i := range counts {
			counts[i] = 0
		}
		envSrc := &ln.envSrc
		for i := range actNest {
			dest := NestID(envSrc.Intn(k) + 1)
			actNest[i] = dest
			counts[dest]++
		}
	case EmitGotoNest:
		// Every ant moves to its committed nest, so the end-of-round
		// populations are exactly the commitment census the lane already
		// maintains — O(k) instead of a colony scan. A committed Home nest
		// means some ant would emit go(0), which the scalar engine rejects;
		// surface the identical error for the first such ant.
		commit := ln.commit
		if commit[Home] != 0 {
			for i := range nest {
				if dest := nest[i]; dest < 1 || int(dest) > k {
					return 0, fmt.Errorf("ant %d: go(%d): nest out of range 1..%d", i, dest, k)
				}
			}
		}
		copy(counts, commit)
		act = nest
	case EmitRecruitPop, EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
		recruited = true
		// The active bits draw only from per-ant streams (stream-disjoint),
		// so the draw loop shards; the adaptive ladder's decay hoist and
		// table rebuild run once, sequentially, first.
		ln.drawActivePrep(st.Emit)
		ln.phOp = st.Emit
		ln.par(ln.fnDraw)
		// actNest snapshots the advertised nests (each recruiter advertises
		// its commitment). The observe folds below resolve a captured ant's
		// outcome nest from this snapshot on the fly — there is no rewrite
		// pass over the capture table, and the snapshot (rather than nest
		// itself) is read because a simultaneous-model capturer can itself
		// be captured and adopt mid-fold.
		copy(actNest, nest)
		for i := range counts {
			counts[i] = 0
		}
		counts[Home] = n

		// Recruitment matching: every ant recruits, so slot t is ant t and
		// no recruiter indirection exists; one dynamic call per round costs
		// nothing against the per-ant loops. The default matcher is the
		// paper's Algorithm 1 via the same implementation (and thus the
		// same draw sequence) as the scalar engine.
		ln.matcher.Match(n, ln.active, &ln.matchSrc, ln.capturedBy, ln.succeeded)
	}

	// Observe: fold outcomes into the registers. The adoption-family capture
	// folds are sparse and run sequentially first (they write the commitment
	// census directly); the bulk per-ant folds then shard across the lane's
	// ant ranges, accumulating commitment changes into per-shard delta slabs
	// folded back in one O(k·shards) pass (see lockFoldShard). Recruit
	// outcomes carry no quality and report the home population (= n,
	// everyone recruited).
	if recruited {
		switch st.Observe {
		case ObserveDiscovery:
			ln.foldCaptureAdopts(adoptPlain)
		case ObserveAdopt:
			ln.foldCaptureAdopts(adoptQualOne)
		case ObserveAdoptZero:
			ln.foldCaptureAdopts(adoptQualZero)
		}
	}
	// Converged-tail bookkeeping: once the count column is known to hold n
	// everywhere, a fold that would rewrite it with n — every recruit round,
	// and any go/search round with the whole colony in one nest — is skipped
	// outright, making the unanimous tail's count rounds O(k) instead of
	// O(n). Only ObserveCount can skip (its fold writes nothing else);
	// the other count-writing observes just maintain the flag.
	skip := false
	switch st.Observe {
	case ObserveCount:
		uniformN := recruited
		if !recruited {
			for j := range counts {
				if counts[j] == n {
					uniformN = true
					break
				}
			}
		}
		skip = uniformN && ln.countAllN
		ln.countAllN = uniformN
	case ObserveDiscovery, ObserveCountQual:
		ln.countAllN = recruited // the recruited arms fill the column with n
	case ObserveDiscoverNoisy, ObserveCountNoisy:
		ln.countAllN = false
	}
	if !skip {
		ln.phPhase = phase
		ln.phRecruited = recruited
		ln.phAct = act
		ln.par(ln.fnLockFold)
		ln.foldCommitDeltas()
	}
	return st.Next, nil
}

// lockFoldShard applies one lockstep round's bulk observe fold to one ant
// range. On recruit rounds a captured ant's outcome nest is its capturer's
// advertised nest, resolved on the fly from the actNest snapshot (see the
// emit phase) instead of via a rewrite pass over the capture table:
// capturedBy streams through each fold exactly once. Commitment changes go
// to the shard's delta slab; every other write targets the folding ant's own
// registers, and the only draws are the noisy perception hooks on the ant's
// own stream — which is what makes the fold safe to shard.
//
//hh:hotpath
//hh:draws noisy perception hooks only, from the observing ant's own stream; every other fold is draw-free
func (ln *lane) lockFoldShard(sh int) {
	lo, hi := int(ln.shardLo[sh]), int(ln.shardLo[sh+1])
	commit := ln.shCommit[sh*(ln.k+1) : (sh+1)*(ln.k+1)]
	for j := range commit {
		commit[j] = 0
	}
	st := ln.states[ln.phPhase]
	recruited := ln.phRecruited
	act := ln.phAct
	n := ln.n
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts
	capturedBy := ln.capturedBy
	switch st.Observe {
	case ObserveDiscovery:
		count := ln.count
		quality := ln.quality
		if recruited {
			// Capture adoptions already folded sequentially; the uniform
			// recruit outcome (home population, no quality) folds here.
			for i := lo; i < hi; i++ {
				count[i] = int32(n)
				quality[i] = 0
			}
		} else {
			qual := ln.qual
			for i := lo; i < hi; i++ {
				outNest := act[i]
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				count[i] = int32(counts[outNest])
				quality[i] = qual[outNest]
			}
		}
	case ObserveAdopt:
		if !recruited {
			quality := ln.quality
			for i := lo; i < hi; i++ {
				if outNest := act[i]; outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					quality[i] = 1
				}
			}
		}
	case ObserveCount:
		count := ln.count
		if recruited {
			// Recruit outcomes carry the home population n and no nest
			// change; the capture table is irrelevant to the fold.
			for i := lo; i < hi; i++ {
				count[i] = int32(n)
			}
		} else {
			for i := lo; i < hi; i++ {
				count[i] = int32(counts[act[i]])
			}
		}
	case ObserveAdoptZero:
		if !recruited {
			quality := ln.quality
			for i := lo; i < hi; i++ {
				if outNest := act[i]; outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					quality[i] = 0
				}
			}
		}
	case ObserveCountQual:
		count := ln.count
		quality := ln.quality
		if recruited {
			for i := lo; i < hi; i++ {
				count[i] = int32(n)
				quality[i] = 0
			}
		} else {
			qual := ln.qual
			for i := lo; i < hi; i++ {
				outNest := act[i]
				count[i] = int32(counts[outNest])
				quality[i] = qual[outNest]
			}
		}
	case ObserveDiscoverNoisy:
		count := ln.count
		quality := ln.quality
		countHook, assessHook := ln.prog.Params.Count, ln.prog.Params.Assess
		threshold := ln.prog.Params.Threshold
		for i := lo; i < hi; i++ {
			var c int
			var q float64
			if recruited {
				if cb := int(capturedBy[i]); cb >= 0 && cb != i {
					if outNest := actNest[cb]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
					}
				}
				c, q = n, 0
			} else {
				outNest := act[i]
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				c, q = counts[outNest], ln.qual[outNest]
			}
			// Perception order matches NoisyAnt's observe: the count estimate
			// draws first, then the quality assessment, both from the ant's
			// own stream.
			if countHook != nil {
				c = countHook(c, n, &ln.antSrc[i])
			}
			count[i] = int32(c)
			if assessHook != nil {
				q = assessHook(q, &ln.antSrc[i])
			}
			if q > threshold {
				quality[i] = 1
			} else {
				quality[i] = 0
			}
		}
	case ObserveCountNoisy:
		count := ln.count
		countHook := ln.prog.Params.Count
		for i := lo; i < hi; i++ {
			c := counts[act[i]]
			if recruited {
				c = n
			}
			if countHook != nil {
				c = countHook(c, n, &ln.antSrc[i])
			}
			count[i] = int32(c)
		}
	}
}

// foldCommitDeltas folds the per-shard commitment delta slabs into the
// lane's census — O(k·shards), order-free integer sums.
//
//hh:hotpath
func (ln *lane) foldCommitDeltas() {
	k1 := ln.k + 1
	commit := ln.commit
	for sh := 0; sh < ln.shards; sh++ {
		d := ln.shCommit[sh*k1 : (sh+1)*k1]
		for j, v := range d {
			commit[j] += v
		}
	}
}

// drawActivePrep hoists the colony-uniform work of a drawn-recruit round
// ahead of the sharded draw loops. Only the adaptive schedule has any: its
// decay term depends on the colony-uniform phase clock, so it is derived once
// here (and the per-lane threshold ladder rebuilt on the rare decay steps)
// instead of per shard — the rebuild writes lane-shared state and must not
// race.
//
//hh:hotpath
func (ln *lane) drawActivePrep(op EmitOp) {
	if op != EmitRecruitAdaptive {
		return
	}
	// The phase clock is colony-uniform here — lockstep programs march every
	// ant through the same emits — so the schedule's decay term is hoisted out
	// of the draw loops; only count varies per ant, and c/(c+decay) is
	// float-identical to AdaptiveRecruitProbability. The decay steps down a
	// handful of times per replicate, so the threshold ladder is rebuilt only
	// on those steps.
	tau, floorDiv := ln.prog.Params.Tau, ln.prog.Params.FloorDiv
	decay := adaptiveDecay(ln.n, int(ln.paramI[0]), tau, floorDiv)
	if decay != ln.adaDecay {
		//hh:floatok ladder rebuild on decay steps: the float→fixed compile happens a handful of times per replicate
		for c := 0; c <= ln.n; c++ {
			cF := float64(c)
			ln.adaT[c] = rng.NewThreshold(cF / (cF + decay))
		}
		ln.adaDecay = decay
	}
	ln.phDecay = decay
}

// drawActiveShard is the fnDraw phase body: the drawn-recruit loop over one
// shard's ant range. Safe to shard because every iteration draws from its own
// ant's stream only (see drawActiveRange).
//
//hh:hotpath
func (ln *lane) drawActiveShard(sh int) {
	ln.drawActiveRange(ln.phOp, int(ln.shardLo[sh]), int(ln.shardLo[sh+1]))
}

// drawActiveRange fills the active column for ants [lo, hi) of a drawn-recruit
// round, one specialized loop per opcode. Each loop consumes the per-ant
// streams exactly as the corresponding scalar ant does: Simple/Adaptive/
// ApproxN gate the draw on a positive quality register (their active flag),
// while Quality draws unconditionally — its probability is 0 whenever the
// scalar ant would be passive, and rng.Source's Bernoulli consumes nothing at
// p <= 0 or p >= 1, so both formulations touch the streams identically.
//
// Every draw is the fixed-point kernel — one integer compare against a bound
// that is either tabled (count-ratio below the crossover, the adaptive
// ladder) or derived on the fly from the lane's reciprocal (count-ratio above
// the crossover, quality-weighted at every size) — at any colony size. The
// tabled paths guard on a count-range check because the noisy estimators can
// report counts outside [0, n]; out-of-range counts resolve draw-free exactly
// like Bernoulli at p outside (0, 1), and the reciprocal kernels fold the
// same resolution in via their sentinel thresholds.
//
//hh:hotpath
//hh:draws at most one word per ant from its own stream, each ant touched by exactly one shard; draw-free for sentinel thresholds and out-of-range counts
func (ln *lane) drawActiveRange(op EmitOp, lo, hi int) {
	n := ln.n
	quality := ln.quality
	count := ln.count
	active := ln.active
	antSrc := ln.antSrc
	switch op {
	case EmitRecruitPop:
		if popT := ln.popT; popT != nil {
			for i := lo; i < hi; i++ {
				b := false
				if quality[i] > 0 {
					//hh:draws out-of-range counts resolve draw-free, exactly like Bernoulli at p outside (0, 1)
					if c := int(count[i]); uint(c) <= uint(n) {
						// The wraparound compare picks out the thresholds
						// that consume one word; the sentinels (0 and n,
						// plus any zero-probability row) resolve via the
						// draw-free Draw call. Fused inline because Draw
						// itself is beyond the inlining budget.
						if t := popT[c]; t-1 < rng.ThresholdAlways-1 {
							b = antSrc[i].Uint64()>>11 < uint64(t)
						} else {
							b = t.Draw(&antSrc[i])
						}
					} else {
						b = c > 0 // p outside (0, 1): accept or reject draw-free
					}
				}
				active[i] = b
			}
		} else {
			rcp := ln.rcp
			for i := lo; i < hi; i++ {
				b := false
				if quality[i] > 0 {
					// Above the table crossover the threshold is derived per
					// draw; rcp.Threshold's sentinels already resolve counts
					// outside (0, n) draw-free, so no range guard is needed.
					if t := rcp.Threshold(int(count[i])); t-1 < rng.ThresholdAlways-1 {
						b = antSrc[i].Uint64()>>11 < uint64(t)
					} else {
						b = t.Draw(&antSrc[i])
					}
				}
				active[i] = b
			}
		}
	case EmitRecruitQual:
		rcp := ln.rcp
		for i := lo; i < hi; i++ {
			// The quality-weighted draw derives its threshold on the fly at
			// every colony size (the former per-(quality, count) table cost
			// O(k·n) entries); ThresholdMul emulates the scalar expression
			// q·c/n including its out-of-range and q=0 cases, so the loop has
			// no guards at all.
			t := rcp.ThresholdMul(quality[i], int(count[i]))
			if t-1 < rng.ThresholdAlways-1 {
				active[i] = antSrc[i].Uint64()>>11 < uint64(t)
			} else {
				active[i] = t.Draw(&antSrc[i])
			}
		}
	case EmitRecruitAdaptive:
		// Decay and ladder were hoisted by drawActivePrep (colony-uniform
		// phase clock); the ladder exists at every colony size because its
		// divisor count+decay varies with the phase, defeating a reciprocal.
		decay := ln.phDecay
		adaT := ln.adaT
		paramI := ln.paramI
		for i := lo; i < hi; i++ {
			b := false
			if quality[i] > 0 {
				//hh:draws out-of-range counts resolve draw-free, exactly like Bernoulli at p outside (0, 1)
				if c := int(count[i]); uint(c) <= uint(n) {
					if t := adaT[c]; t-1 < rng.ThresholdAlways-1 {
						b = antSrc[i].Uint64()>>11 < uint64(t)
					} else {
						b = t.Draw(&antSrc[i])
					}
				} else {
					cF := float64(c)                           //hh:floatok out-of-range noisy count falls back to the float formula
					b = antSrc[i].Bernoulli(cF / (cF + decay)) //hh:floatok same float expression as AdaptiveRecruitProbability
				}
			}
			paramI[i]++
			active[i] = b
		}
	case EmitRecruitApproxN:
		// Per-ant ñ estimates defeat tabling and reciprocals alike (the
		// kernel would be per ant); the float draw is bit-identical
		// regardless.
		paramF := ln.paramF
		for i := lo; i < hi; i++ {
			b := false
			if quality[i] > 0 {
				p := float64(count[i]) / paramF[i] //hh:floatok per-ant ñ defeats fixed-point kernels; float draw is bit-identical to ApproxNAnt
				if p > 1 {
					p = 1
				}
				b = antSrc[i].Bernoulli(p)
			}
			active[i] = b
		}
	}
}

// stepGeneral resolves one synchronous round for a colony with a per-ant
// state column. The round runs state-major: a histogram/scatter pass regroups
// the colony into per-state buckets, the emit and observe opcodes then
// dispatch once per occupied state (the per-ant jump tables they replace were
// the dominant pipeline stall of heterogeneous colonies), and an ant-order
// pass assembles the recruiting slot table between the two.
//
// Every O(n) pass — histogram, scatter, emit, slot assembly, observe — fans
// out across the lane's shards (contiguous ant ranges, lane.shardLo); the
// sequential spine between the parallel phases is the O(k·shards) reductions,
// the environment draws, the matcher, and the sparse capture and fault
// passes. Sharding is bit-identical to the sequential scan by construction:
// the bucket of state s is the concatenation of its per-shard segments in
// shard order (the same ants in the same ascending order), the per-shard
// population/commitment/finals tallies are order-free integer sums, recruiter
// slots are assigned from prefix-summed per-shard bases, and the first-error
// reduce picks by (state, ant) — exactly the sequential scan's first error.
//
// Randomness is consumed exactly as Engine.Step/resolve consumes it:
// environment draws run in a dedicated sequential pass that scans ants in
// ascending order (envSrc has no jump-ahead and rejection sampling makes its
// consumption data-dependent, so those draws can never shard); per-ant stream
// draws are stream-disjoint across ants and each ant is visited by exactly
// one shard; recruiting ants enter the slot table in ant order via the
// assembly pass; and the matcher runs sequentially on matchSrc, only when the
// recruiting set is non-empty. Observe folds touch only the observing ant's
// registers, its own stream, and the order-free commitment deltas, so
// bucket-order sharded folding is bit-identical too.
//
//hh:hotpath
//hh:draws per opcode contract on EmitOp/ObserveOp consts: envSrc in ant order via the sequential environment pass, per-ant streams in bucket order (stream-disjoint, one shard per ant), matchSrc only when recruiters exist
func (ln *lane) stepGeneral() error {
	n, k := ln.n, ln.k
	states := &ln.states
	state := ln.state
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts
	numStates := ln.numExec
	shards := ln.shards

	// Pre-round fault pass: wake the sleepers and fire the crashes scheduled
	// for this round, before the colony is regrouped — the transitions must be
	// visible to this round's emit, exactly as the scalar wrappers decide in
	// Act. Waking restores the ant's initial program state (registers were
	// never touched while it slept, so it starts fresh like the scalar
	// wrapper's never-invoked inner agent); crashing removes the ant from the
	// census (commitment tally and alive count) and parks it in the crashed
	// synthetic state. Both lists are small — O(victims), not O(n).
	if ln.faulted {
		ln.round++
		r := int32(ln.round)
		for idx, i32 := range ln.sleepAnts {
			if ln.wakeAt[idx] == r {
				i := int(i32)
				// Guard: only an ant still sleeping wakes. A schedule may have
				// crashed the sleeper (or crashed and restarted it — already
				// awake); the scalar wrapper's wake branch requires the
				// sleeping status identically.
				if state[i] != ln.sleepSt {
					continue
				}
				st := ln.prog.Init
				if split := ln.prog.InitSplit; split > 0 && i >= split {
					st = ln.prog.InitRest
				}
				state[i] = st
			}
		}
		for idx, i32 := range ln.crashAnts {
			if ln.crashAt[idx] == r {
				i := int(i32)
				// Guard: an ant a schedule already crashed must not leave the
				// census twice. The match is exact (== r, not >=): a schedule
				// restarting the ant AFTER its static crash round must not
				// re-fire the static crash — the scalar wrapper checks
				// round == crashAt under the same status guard.
				if state[i] == ln.crashSt {
					continue
				}
				ln.commit[nest[i]]--
				ln.alive--
				ln.nCrashed++
				state[i] = ln.crashSt
			}
		}
	}

	// Regroup the colony by state: per-shard histogram, sequential prefix,
	// per-shard scatter into the precomputed segments. The prefix fills
	// segment bounds and scatter cursors so that state s's bucket is the
	// concatenation of its per-shard segments (each a subset of that shard's
	// own ant range, ascending), then detects a sole occupied state and
	// whether any occupied state searches.
	ln.par(ln.fnHist)
	segOff := ln.segOff
	searches := &ln.searches
	running := int32(0)
	sole := -1
	anySearch := false
	for s := 0; s < numStates; s++ {
		total := int32(0)
		for sh := 0; sh < shards; sh++ {
			segOff[s*shards+sh] = running
			ln.shCur[sh*numStates+s] = running
			bank := ln.shCnt[sh*4*numStates:]
			c := bank[s] + bank[numStates+s] + bank[2*numStates+s] + bank[3*numStates+s]
			running += c
			total += c
		}
		if int(total) == n {
			sole = s
		}
		if total > 0 && searches[s] != 0 {
			anySearch = true
		}
	}
	segOff[numStates*shards] = running
	bkt := ln.bktAnts[:n]
	envSrc := &ln.envSrc
	//hh:draws shape dispatch only: both arms draw one envSrc destination per searching ant, in ant order, exactly like the scalar per-ant emit
	if sole >= 0 {
		// The whole colony occupies one state (common in the converged tail,
		// where every ant sits in an absorbing recruit state): the bucket IS
		// the identity permutation — every segment (sole, sh) is exactly the
		// shard's own ant range — so the scatter collapses to reusing the
		// precomputed identity and, below, most of the slot-assembly work
		// degenerates too.
		bkt = ln.iota32
		//hh:draws a state's search bit decides whether its ants draw a destination; the scalar emit gates on the same compiled bit
		if searches[sole] != 0 {
			for i := 0; i < n; i++ {
				actNest[i] = NestID(envSrc.Intn(k) + 1)
			}
		}
	} else {
		ln.par(ln.fnScatter)
		// Environment draws stay sequential and in ant order — the scalar
		// engine's order; envSrc cannot shard (see the function comment). The
		// pass is skipped entirely when no occupied state searches.
		//hh:draws anySearch only skips the scan when no occupied state has the search bit — no ant would reach the gated draw anyway
		if anySearch {
			for i := 0; i < n; i++ {
				//hh:draws a state's search bit decides whether its ants draw a destination; the scalar emit gates on the same compiled bit
				if searches[state[i]] != 0 {
					actNest[i] = NestID(envSrc.Intn(k) + 1)
				}
			}
		}
	}

	// Emit per occupied segment, sharded (see emitShard). actNest receives
	// each ant's advertised nest; recruiters are classified into isRecr/actBit
	// and assembled into the ant-order slot table afterwards. Every ant
	// belongs to exactly one segment, so every isRecr entry is rewritten each
	// round.
	ln.phBkt = bkt
	ln.par(ln.fnEmit)

	// Reduce the emit phase: population tallies and recruiter counts are
	// order-free sums, the recruiter counts prefix-sum into the slot bases the
	// assembly pass writes from, and a parked invalid emit materializes here —
	// (state, ant)-minimal across shards, which is exactly the sequential
	// scan's first error — keeping fmt.Errorf off the parallel loops.
	for j := range counts {
		counts[j] = 0
	}
	nRecr := 0
	sawTransport := false
	errSh := -1
	for sh := 0; sh < shards; sh++ {
		slab := ln.shCounts[sh*(k+1) : (sh+1)*(k+1)]
		for j, v := range slab {
			counts[j] += v
		}
		ln.shSlotBase[sh] = int32(nRecr)
		nRecr += int(ln.shNRecr[sh])
		if ln.shTrans[sh] != 0 {
			sawTransport = true
		}
		if ln.shErrKind[sh] != errNone && (errSh < 0 ||
			ln.shErrState[sh] < ln.shErrState[errSh] ||
			(ln.shErrState[sh] == ln.shErrState[errSh] && ln.shErrAnt[sh] < ln.shErrAnt[errSh])) {
			errSh = sh
		}
	}
	if errSh >= 0 {
		i := int(ln.shErrAnt[errSh])
		nst := ln.shErrNest[errSh]
		st := &states[ln.shErrState[errSh]]
		switch ln.shErrKind[errSh] {
		case errGotoNest:
			return fmt.Errorf("ant %d: go(%d): nest out of range 1..%d", i, nst, k)
		case errGotoScratch:
			return fmt.Errorf("ant %d: go(%d): scratch nest out of range 1..%d", i, nst, k)
		case errRecruitHome:
			return fmt.Errorf("ant %d: recruit(1,0): cannot actively recruit for the home nest", i)
		case errRecruitRange:
			return fmt.Errorf("ant %d: recruit(%d,%d): nest out of range 0..%d", i, st.Arg, nst, k)
		default: // errTransport
			return fmt.Errorf("ant %d: transport(%d): nest out of range 1..%d", i, nst, k)
		}
	}

	// Assemble the recruiting slot table in ant order — the matcher's slot
	// space must list recruiters exactly as the scalar engine's action loop
	// encounters them; each shard writes its own slot range starting at its
	// prefix-summed base, so the concatenation is the sequential table (see
	// assembleShard). A sole-state round degenerates to identities: slot t is
	// ant t (or there are no recruiters at all), so the table is the
	// precomputed identity permutation and two column copies.
	rec := ln.recruiters[:n]
	carries := ln.carries
	switch {
	case carries == nil && nRecr == n:
		rec = ln.iota32
		ln.phMode = asmIdentity
	case nRecr == 0:
		ln.phMode = asmNone
	case carries == nil:
		ln.phMode = asmScan
	default:
		ln.phMode = asmCarry
	}
	ln.par(ln.fnAssemble)
	nR := nRecr
	counts[Home] = nR

	// Recruitment matching over the recruiting set, in slot space. The
	// scalar engine skips the matcher entirely for an empty set and selects
	// the carry-aware form only when some slot carries more than one ant;
	// mirroring both keeps matchSrc in sync on all-goto rounds and keeps
	// arbitrary matchers on exactly the scalar call sequence. (For the
	// default Algorithm 1 pairing the dispatch is immaterial: MatchCarry
	// with all-ones carries draws exactly like Match, a pinned property.)
	active := ln.active
	if nR > 0 {
		//hh:draws matcher dispatch mirrors the scalar call sequence; MatchCarry with all-ones carries draws exactly like Match (a pinned property)
		if anyCarry := sawTransport && ln.prog.Params.QuorumCarry > 1; anyCarry {
			if ln.carryM == nil {
				return fmt.Errorf("transport (carry > 1) unsupported by matcher %q", ln.matcher.Name())
			}
			ln.carryM.MatchCarry(nR, active, carries, &ln.matchSrc, ln.capturedBy, ln.succeeded)
		} else {
			ln.matcher.Match(nR, active, &ln.matchSrc, ln.capturedBy, ln.succeeded)
		}
	}

	// Resolve each slot's outcome nest: the assembly pass preloaded every
	// slot with its own advertised nest, so only captured slots need a
	// rewrite — their capturer's advertised entry, always read from the
	// pristine actNest column (a simultaneous-model capturer can itself be
	// captured, so chaining through slotNest could read a rewritten value).
	// Captures are sparse, so a capture-listing matcher turns this into a
	// handful of writes; other matchers pay one branch-free pass over the
	// slots. The observe folds then reach a recruiter's outcome through
	// slotOf → slotNest, two loads instead of a four-deep capture walk.
	slotNest := ln.slotNest
	if nR > 0 {
		capt := ln.capturedBy
		if ln.capLister != nil {
			for _, t32 := range ln.capLister.Captures() {
				t := int(t32)
				if cb := int(capt[t]); cb != t {
					slotNest[t] = actNest[rec[cb]]
				}
			}
		} else {
			for t := 0; t < nR; t++ {
				cb := int(capt[t])
				if cb < 0 {
					cb = t
				}
				slotNest[t] = actNest[rec[cb]]
			}
		}
	}

	// Observe per occupied segment, sharded (see observeShard): fold outcomes
	// into the registers and select successors. Commitment changes accumulate
	// in per-shard delta slabs and the Final-state tallies in per-shard
	// counters, both reduced here. The converged-tail skip: when the whole
	// colony sits in one recruited count state and the count column is
	// already uniformly the home population from last round's identical fold,
	// the O(n) refill is skipped outright (phCountSkip), making the absorbing
	// tail's count rounds O(k) bookkeeping.
	countHome := int32(nR)
	ln.phCountHome = countHome
	ln.phCountSkip = sole >= 0 && ln.countUni == countHome
	ln.par(ln.fnObserve)
	finals := 0
	for sh := 0; sh < shards; sh++ {
		finals += int(ln.shFinals[sh])
	}
	ln.foldCommitDeltas()
	// The count column is known uniform only after a sole-state recruited
	// count fold (every ant just read the home population); anything else
	// invalidates the skip.
	if sole >= 0 && recruitEmit(states[sole].Emit) && states[sole].Observe == ObserveCount {
		ln.countUni = countHome
	} else {
		ln.countUni = -1
	}

	// Capture pass: the adoption-family folds (adopt, latch, pend, the
	// recruit-nest learn, the quorum wake and the transport submit) act only
	// on captured ants, whose buckets above therefore folded nothing but
	// successors. Captures are sparse, so dispatching per captured slot on
	// the state the ant emitted from (recorded in preState — the state
	// column already holds next round's values) touches a fraction of the
	// colony. Fold order across captured ants is immaterial: each fold
	// writes only its own ant's registers (commit tallies are order-free)
	// and the docility draws come from the captured ant's own stream.
	commit := ln.commit
	quality := ln.quality
	antSrc := ln.antSrc
	nestT := ln.nestT
	isFinal := &ln.final
	preState := ln.preState
	if nR > 0 {
		caps := ln.capScrat[:0]
		if ln.capLister != nil {
			caps = ln.capLister.Captures()
		} else {
			capt := ln.capturedBy
			for t := 0; t < nR; t++ {
				if capt[t] >= 0 {
					caps = append(caps, int32(t)) //hh:allocok grows only to a new maximum capture count; steady-state rounds reuse capScrat's capacity
				}
			}
			ln.capScrat = caps[:0]
		}
		capt := ln.capturedBy
		for _, t32 := range caps {
			t := int(t32)
			cb := int(capt[t])
			if cb == t {
				continue // self-pairs adopt nothing
			}
			i := int(rec[t])
			outNest := actNest[rec[cb]]
			st := &states[preState[i]]
			switch st.Observe {
			case ObserveDiscovery, ObserveNestLatch:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
			case ObserveAdopt:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					quality[i] = 1
				}
			case ObserveAdoptZero:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					quality[i] = 0
				}
			case ObserveAdoptPend:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					state[i] = st.NextB // enter the pending chain
					finals += int(isFinal[st.NextB]) - int(isFinal[st.Next])
				}
			case ObserveRecruitNest:
				nestT[i] = outNest
			case ObserveQuorumAdopt:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				quality[i] = 1
			case ObserveQuorumTransport:
				// The docility draw consumes the CAPTURED ant's stream,
				// exactly like QuorumAnt's submit check, on the precompiled
				// fixed-point threshold.
				if ln.docT.Draw(&antSrc[i]) {
					if outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
						state[i] = st.NextB // demote to canvasser of the new nest
						finals += int(isFinal[st.NextB]) - int(isFinal[st.Next])
					}
					quality[i] = 1
				}
			}
		}
	}

	// Track every crash-fated ant's last known candidate nest from this
	// round's outcome — before AND after the crash fires, mirroring the
	// scalar CrashAnt.Observe: a live wrapper records where its inner agent
	// went, and a dead one records where recruiters dragged the corpse. The
	// pass is O(crash victims) and reads only resolved columns (actNest for
	// searchers/goers, the slot table for recruiters).
	if ln.faulted {
		lastNest := ln.lastNest
		isRecr := ln.isRecr
		slotOf := ln.slotOf
		if ln.sched != nil {
			// With an adaptive schedule ANY ant can crash, so every ant's last
			// known nest must be current when the mutation pass below runs —
			// the sparse static-victim walk becomes a full-colony pass. The
			// formula is identical; slotOf/slotNest are valid for every
			// recruiter in every assembly mode.
			for i := 0; i < n; i++ {
				outNest := actNest[i]
				if isRecr[i] != 0 {
					outNest = slotNest[slotOf[i]]
				}
				if outNest != Home {
					lastNest[i] = outNest
				}
			}
		} else {
			for _, i32 := range ln.crashAnts {
				i := int(i32)
				outNest := actNest[i]
				if isRecr[i] != 0 {
					outNest = slotNest[slotOf[i]]
				}
				if outNest != Home {
					lastNest[i] = outNest
				}
			}
		}
	}
	ln.finals = finals
	// Adaptive mutation pass: the schedule observes the fully resolved round
	// (census tallies, decided count) and its ops apply before runReplicate
	// takes the round's convergence census — the scalar engine's RoundHook
	// position. Sequential by construction: no shard or worker fans this out.
	if ln.sched != nil {
		if err := ln.applySchedule(); err != nil {
			return err
		}
	}
	return nil
}

// Slot-assembly modes (lane.phMode), selected by stepGeneral's emit reduce.
const (
	asmIdentity uint8 = iota // every ant recruits, no transports: slot t = ant t
	asmNone                  // no recruiters: clear slotOf
	asmScan                  // compacting scan, no carry column
	asmCarry                 // compacting scan, carry column filled
)

// Emit-phase error kinds parked in lane.shErrKind by parkErr.
const (
	errNone uint8 = iota
	errGotoNest
	errGotoScratch
	errRecruitHome
	errRecruitRange
	errTransport
)

// parkErr records the first invalid emit a shard's scan encounters as a
// compact (kind, state, ant, nest) record; stepGeneral's reduce min-picks
// across shards by (state, ant) — within one state, lower shards hold lower
// ant indices — and materializes the fmt.Errorf there, so the parallel scan
// stays allocation-free and reports exactly the sequential scan's first
// error.
//
//hh:coldpath
func (ln *lane) parkErr(sh int, kind uint8, s, i int, nst NestID) {
	if ln.shErrKind[sh] != errNone {
		return
	}
	ln.shErrKind[sh] = kind
	ln.shErrState[sh] = int32(s)
	ln.shErrAnt[sh] = int32(i)
	ln.shErrNest[sh] = nst
}

// histShard is the fnHist phase body: count one shard's ant range into the
// shard's own four interleaved histogram banks (consecutive ants usually
// share a state, and a single-bank cnt[s]++ serializes on store-to-load
// forwarding).
//
//hh:hotpath
func (ln *lane) histShard(sh int) {
	numStates := ln.numExec
	cnt := ln.shCnt[sh*4*numStates : (sh+1)*4*numStates]
	for j := range cnt {
		cnt[j] = 0
	}
	state := ln.state
	i, hi := int(ln.shardLo[sh]), int(ln.shardLo[sh+1])
	for ; i+4 <= hi; i += 4 {
		cnt[int(state[i])]++
		cnt[numStates+int(state[i+1])]++
		cnt[2*numStates+int(state[i+2])]++
		cnt[3*numStates+int(state[i+3])]++
	}
	for ; i < hi; i++ {
		cnt[int(state[i])]++
	}
}

// scatterShard is the fnScatter phase body: write one shard's ants into their
// states' segments, cursors preset by the sequential prefix. Shards write
// disjoint bkt ranges by construction (each segment is sized by the shard's
// own histogram bank).
//
//hh:hotpath
func (ln *lane) scatterShard(sh int) {
	numStates := ln.numExec
	cur := ln.shCur[sh*numStates : (sh+1)*numStates]
	state := ln.state
	bkt := ln.bktAnts[:ln.n]
	lo, hi := int(ln.shardLo[sh]), int(ln.shardLo[sh+1])
	for i := lo; i < hi; i++ {
		s := state[i]
		bkt[cur[s]] = int32(i)
		cur[s]++
	}
}

// emitShard is the fnEmit phase body: run the emit dispatch over one shard's
// segments. For every state the members slice is the shard's own contiguous
// segment of that state's bucket, so the shard touches exactly its own ants;
// population tallies, the recruiter count, the transport flag and at most one
// parked error go to the shard's slabs, reduced sequentially afterwards.
//
//hh:hotpath
//hh:draws drawn-recruit opcodes consume at most one word from the emitting ant's own stream; every ant is scanned by exactly one shard
func (ln *lane) emitShard(sh int) {
	n, k := ln.n, ln.k
	numStates := ln.numExec
	shards := ln.shards
	states := &ln.states
	segOff := ln.segOff
	bkt := ln.phBkt
	nest := ln.nest
	actNest := ln.actNest
	quality := ln.quality
	count := ln.count
	antSrc := ln.antSrc
	isRecr := ln.isRecr
	actBit := ln.actBit
	preState := ln.preState
	counts := ln.shCounts[sh*(k+1) : (sh+1)*(k+1)]
	for j := range counts {
		counts[j] = 0
	}
	ln.shErrKind[sh] = errNone
	ln.shTrans[sh] = 0
	nRecr := 0
	for s := 0; s < numStates; s++ {
		members := bkt[segOff[s*shards+sh]:segOff[s*shards+sh+1]]
		if len(members) == 0 {
			continue
		}
		if ln.faulted && uint8(s) == ln.crashSt {
			// A crashed ant walks to the last candidate nest it knew, or —
			// if it never learned one, or its corpse was dragged back home —
			// waits passively in the home-nest pairing, exactly like the
			// scalar CrashAnt. The bucket mixes both behaviours, so it cannot
			// reuse a generic emit loop.
			lastNest := ln.lastNest
			for _, i32 := range members {
				i := int(i32)
				if dest := lastNest[i]; dest != Home {
					actNest[i] = dest
					counts[dest]++
					isRecr[i] = 0
				} else {
					actNest[i] = Home
					isRecr[i] = 1
					actBit[i] = 0
					preState[i] = uint8(s)
					nRecr++
				}
			}
			continue
		}
		st := &states[s]
		if recruitEmit(st.Emit) {
			nRecr += len(members)
		}
		switch st.Emit {
		case EmitSearch:
			// Destinations were already drawn, in ant order, by the
			// sequential environment pass.
			for _, i32 := range members {
				i := int(i32)
				counts[actNest[i]]++
				isRecr[i] = 0
			}
		case EmitGotoNest:
			for _, i32 := range members {
				i := int(i32)
				dest := nest[i]
				if uint(dest)-1 >= uint(k) { // dest < 1 || dest > k, one compare
					ln.parkErr(sh, errGotoNest, s, i, dest)
					continue
				}
				actNest[i] = dest
				counts[dest]++
				isRecr[i] = 0
			}
		case EmitGotoScratch:
			nestT := ln.nestT
			for _, i32 := range members {
				i := int(i32)
				dest := nestT[i]
				if uint(dest)-1 >= uint(k) {
					ln.parkErr(sh, errGotoScratch, s, i, dest)
					continue
				}
				actNest[i] = dest
				counts[dest]++
				isRecr[i] = 0
			}
		case EmitRecruitBit:
			// The fixed bit is state-uniform, so the Home-forbidden check of
			// active recruits folds into the range compare per sub-loop.
			if st.Arg == 1 {
				for _, i32 := range members {
					i := int(i32)
					adv := nest[i]
					if uint(adv)-1 >= uint(k) { // adv < 1 || adv > k
						if adv == Home {
							ln.parkErr(sh, errRecruitHome, s, i, adv)
						} else {
							ln.parkErr(sh, errRecruitRange, s, i, adv)
						}
						continue
					}
					actNest[i] = adv
					isRecr[i] = 1
					actBit[i] = 1
					preState[i] = uint8(s)
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					adv := nest[i]
					if uint(adv) > uint(k) { // Home is allowed for passive recruits
						ln.parkErr(sh, errRecruitRange, s, i, adv)
						continue
					}
					actNest[i] = adv
					isRecr[i] = 1
					actBit[i] = 0
					preState[i] = uint8(s)
				}
			}
		case EmitRecruitTransport:
			ln.shTrans[sh] = 1
			for _, i32 := range members {
				i := int(i32)
				adv := nest[i]
				if uint(adv)-1 >= uint(k) {
					ln.parkErr(sh, errTransport, s, i, adv)
					continue
				}
				actNest[i] = adv
				isRecr[i] = 2
				actBit[i] = 1
				preState[i] = uint8(s)
			}
		case EmitRecruitPop:
			popT := ln.popT
			rcp := ln.rcp
			for _, i32 := range members {
				i := int(i32)
				b := false
				if quality[i] > 0 {
					c := int(count[i])
					var t rng.Threshold
					//hh:draws out-of-range counts resolve draw-free via the sentinel thresholds, exactly like Bernoulli at p outside (0, 1)
					if popT != nil && uint(c) <= uint(n) {
						t = popT[c]
					} else {
						// Above the table crossover (or out of range) the
						// threshold derives on the fly; the reciprocal
						// kernel's sentinels resolve c outside (0, n)
						// draw-free.
						t = rcp.Threshold(c)
					}
					if t-1 < rng.ThresholdAlways-1 {
						b = antSrc[i].Uint64()>>11 < uint64(t)
					} else {
						b = t.Draw(&antSrc[i])
					}
				}
				adv := nest[i]
				if b && adv == Home {
					ln.parkErr(sh, errRecruitHome, s, i, adv)
					continue
				}
				actNest[i] = adv
				isRecr[i] = 1
				if b {
					actBit[i] = 1
				} else {
					actBit[i] = 0
				}
				preState[i] = uint8(s)
			}
		case EmitRecruitQual:
			rcp := ln.rcp
			for _, i32 := range members {
				i := int(i32)
				// The fixed-point kernel derives the exact threshold of the
				// scalar expression q·c/n per draw — q = 0 and out-of-range
				// counts included — so the loop needs no guards and no
				// floats at any colony size.
				t := rcp.ThresholdMul(quality[i], int(count[i]))
				var b bool
				if t-1 < rng.ThresholdAlways-1 {
					b = antSrc[i].Uint64()>>11 < uint64(t)
				} else {
					b = t.Draw(&antSrc[i])
				}
				adv := nest[i]
				if b && adv == Home {
					ln.parkErr(sh, errRecruitHome, s, i, adv)
					continue
				}
				actNest[i] = adv
				isRecr[i] = 1
				if b {
					actBit[i] = 1
				} else {
					actBit[i] = 0
				}
				preState[i] = uint8(s)
			}
		case EmitRecruitAdaptive:
			// Per-ant phase clocks defeat both the ladder and a reciprocal
			// (each ant may sit at a different decay); the float formula is
			// bit-identical to the scalar AdaptiveAnt by construction.
			tau, floorDiv := ln.prog.Params.Tau, ln.prog.Params.FloorDiv
			paramI := ln.paramI
			for _, i32 := range members {
				i := int(i32)
				b := false
				if quality[i] > 0 {
					b = antSrc[i].Bernoulli(AdaptiveRecruitProbability(
						n, int(count[i]), int(paramI[i]), tau, floorDiv))
				}
				paramI[i]++
				adv := nest[i]
				if b && adv == Home {
					ln.parkErr(sh, errRecruitHome, s, i, adv)
					continue
				}
				actNest[i] = adv
				isRecr[i] = 1
				if b {
					actBit[i] = 1
				} else {
					actBit[i] = 0
				}
				preState[i] = uint8(s)
			}
		case EmitRecruitApproxN:
			paramF := ln.paramF
			for _, i32 := range members {
				i := int(i32)
				b := false
				if quality[i] > 0 {
					p := float64(count[i]) / paramF[i] //hh:floatok per-ant ñ defeats fixed-point kernels; float draw is bit-identical to ApproxNAnt
					if p > 1 {
						p = 1
					}
					b = antSrc[i].Bernoulli(p)
				}
				adv := nest[i]
				if b && adv == Home {
					ln.parkErr(sh, errRecruitHome, s, i, adv)
					continue
				}
				actNest[i] = adv
				isRecr[i] = 1
				if b {
					actBit[i] = 1
				} else {
					actBit[i] = 0
				}
				preState[i] = uint8(s)
			}
		}
	}
	ln.shNRecr[sh] = int32(nRecr)
}

// assembleShard is the fnAssemble phase body: build one shard's stretch of
// the recruiting slot table. The compacting modes use guarded writes (the
// sequential pass's branch-free cursor trick writes one slot past each
// non-recruiter — harmless when overwritten later in the same scan, but a
// cross-shard data race at shard boundaries), starting at the shard's
// prefix-summed slot base so the concatenation across shards is exactly the
// sequential ant-order table.
//
//hh:hotpath
func (ln *lane) assembleShard(sh int) {
	lo, hi := int(ln.shardLo[sh]), int(ln.shardLo[sh+1])
	slotOf := ln.slotOf
	switch ln.phMode {
	case asmIdentity:
		// Every ant recruits (absorbing recruit states, canvass rounds):
		// slot t is ant t, so the table is the identity permutation and two
		// column copies.
		copy(slotOf[lo:hi], ln.iota32[lo:hi])
		actBit := ln.actBit
		active := ln.active
		for i := lo; i < hi; i++ {
			active[i] = actBit[i] != 0
		}
		copy(ln.slotNest[lo:hi], ln.actNest[lo:hi])
	case asmNone:
		for i := lo; i < hi; i++ {
			slotOf[i] = -1
		}
	case asmScan:
		rec := ln.recruiters[:ln.n]
		active := ln.active
		slotNest := ln.slotNest
		actNest := ln.actNest
		actBit := ln.actBit
		isRecr := ln.isRecr
		w := int(ln.shSlotBase[sh])
		for i := lo; i < hi; i++ {
			if isRecr[i] != 0 {
				rec[w] = int32(i)
				active[w] = actBit[i] != 0
				slotNest[w] = actNest[i]
				slotOf[i] = int32(w)
				w++
			} else {
				slotOf[i] = -1
			}
		}
	case asmCarry:
		rec := ln.recruiters[:ln.n]
		active := ln.active
		slotNest := ln.slotNest
		actNest := ln.actNest
		actBit := ln.actBit
		isRecr := ln.isRecr
		carries := ln.carries
		qc := ln.prog.Params.QuorumCarry
		w := int(ln.shSlotBase[sh])
		for i := lo; i < hi; i++ {
			if r := isRecr[i]; r != 0 {
				rec[w] = int32(i)
				active[w] = actBit[i] != 0
				slotNest[w] = actNest[i]
				c := 1
				if r == 2 {
					c = qc
				}
				carries[w] = c
				slotOf[i] = int32(w)
				w++
			} else {
				slotOf[i] = -1
			}
		}
	}
}

// observeShard is the fnObserve phase body: fold outcomes into the registers
// and select successors over one shard's segments, one opcode dispatch per
// occupied segment. The outcome count is the end-of-round population of the
// outcome nest for searchers and goers, and the home population for
// recruiters, exactly as Engine.resolve fills Outcome.Count; whether a
// segment recruited is a property of its emit opcode, so the distinction is
// loop-invariant. A captured recruiter's outcome nest is its capturer's
// advertised nest, resolved from the slotNest column (which observe folds
// never write, so it stays pristine). Commitment changes go to the shard's
// delta slab and Final-state entries to its finals counter; every other
// write targets the folding ant's own registers, and the only draws are the
// noisy perception hooks on the ant's own stream.
//
//hh:hotpath
//hh:draws noisy perception hooks only, from the observing ant's own stream; every ant is folded by exactly one shard
func (ln *lane) observeShard(sh int) {
	n, k := ln.n, ln.k
	numStates := ln.numExec
	shards := ln.shards
	states := &ln.states
	segOff := ln.segOff
	bkt := ln.phBkt
	state := ln.state
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts
	count := ln.count
	quality := ln.quality
	antSrc := ln.antSrc
	qual := ln.qual
	nestT := ln.nestT
	countT := ln.countT
	isFinal := &ln.final
	countHome := ln.phCountHome
	commit := ln.shCommit[sh*(k+1) : (sh+1)*(k+1)]
	for j := range commit {
		commit[j] = 0
	}
	finals := 0
	for s := 0; s < numStates; s++ {
		members := bkt[segOff[s*shards+sh]:segOff[s*shards+sh+1]]
		if len(members) == 0 {
			continue
		}
		if ln.faulted && uint8(s) == ln.byzSrchSt {
			// The Byzantine search fold: latch the first BAD nest discovered
			// as the lure target (in the nest register, which the luring
			// state's recruit emit advertises) — without touching the
			// commitment census, because Byzantine ants are excluded from it
			// from round one. In an all-good environment nothing ever
			// latches, and the adversary searches forever, exactly like the
			// scalar ByzantineAnt.
			for _, i32 := range members {
				i := int(i32)
				if outNest := actNest[i]; qual[outNest] == 0 {
					nest[i] = outNest
					state[i] = ln.byzRecrSt
				}
			}
			continue
		}
		st := &states[s]
		recruited := recruitEmit(st.Emit)
		next0 := st.Next
		switch st.Observe {
		case ObserveNone:
			// Padding call; outcome discarded. Successors are uniform, and a
			// self-loop (the synthetic fault states, absorbing waits) writes
			// nothing at all.
			if next0 != uint8(s) {
				for _, i32 := range members {
					state[i32] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveDiscovery:
			if recruited {
				// Capture adoptions land in the capture pass afterwards; the
				// uniform recruit outcome (home population, no quality)
				// folds here.
				for _, i32 := range members {
					i := int(i32)
					count[i] = countHome
					quality[i] = 0
					state[i] = next0
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					outNest := actNest[i]
					if outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
					}
					count[i] = int32(counts[outNest])
					quality[i] = qual[outNest]
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveAdopt:
			if recruited {
				// Adoption requires capture: the capture pass folds it.
				if next0 != uint8(s) {
					for _, i32 := range members {
						state[i32] = next0
					}
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					if outNest := actNest[i]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
						quality[i] = 1
					}
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveCount:
			if recruited {
				// The converged-tail skip: a sole-state recruited count fold
				// whose column already holds the home population (and whose
				// state self-loops) rewrites nothing.
				if !(ln.phCountSkip && next0 == uint8(s)) {
					for _, i32 := range members {
						count[i32] = countHome
						state[i32] = next0
					}
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					count[i] = int32(counts[actNest[i]])
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveAdoptZero:
			if recruited {
				if next0 != uint8(s) {
					for _, i32 := range members {
						state[i32] = next0
					}
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					if outNest := actNest[i]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
						quality[i] = 0
					}
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveCountQual:
			for _, i32 := range members {
				i := int(i32)
				outNest, outCount := ln.outcome(i, recruited, countHome)
				count[i] = outCount
				if recruited {
					quality[i] = 0
				} else {
					quality[i] = qual[outNest]
				}
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveDiscoverBranch:
			for _, i32 := range members {
				i := int(i32)
				outNest, outCount := ln.outcome(i, recruited, countHome)
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				count[i] = outCount
				q := qual[outNest]
				quality[i] = q
				next := next0
				if q == 0 {
					next = st.NextB
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveRecruitNest:
			// Uncaptured ants (and non-recruit emits) learn their own
			// advertised nest; the capture pass rewrites captured ants.
			for _, i32 := range members {
				i := int(i32)
				nestT[i] = actNest[i]
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveCompareR2:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				countT[i] = outCount
				next := next0
				switch {
				case nestT[i] == nest[i] && countT[i] >= count[i]:
					count[i] = countT[i] // Case 1: re-baseline
				case nestT[i] == nest[i]:
					next = st.NextB // Case 2: population dropped
				default:
					// Case 3: recruited to another nest.
					commit[nest[i]]--
					commit[nestT[i]]++
					nest[i] = nestT[i]
					next = st.NextC
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveRecountRebase:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				next := next0
				if outCount < countT[i] {
					next = st.NextB
				} else {
					count[i] = outCount
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveRecountLiteral:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				next := next0
				if outCount < countT[i] {
					next = st.NextB
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveFinalEq:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				next := next0
				if outCount == count[i] {
					next = st.NextB
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveAdoptPend:
			if recruited {
				// Adoption requires capture; the capture pass redirects
				// adopted ants to NextB and adjusts the finals tally.
				for _, i32 := range members {
					state[i32] = next0
				}
				finals += int(isFinal[next0]) * len(members)
			} else {
				for _, i32 := range members {
					i := int(i32)
					next := next0
					if outNest := actNest[i]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
						next = st.NextB
					}
					state[i] = next
					finals += int(isFinal[next])
				}
			}
		case ObserveNestLatch:
			if recruited {
				// Only captured ants latch a new nest (the capture pass);
				// with a self-looping state the whole bucket is a no-op —
				// Algorithm 2's absorbing final state costs nothing here.
				if next0 != uint8(s) {
					for _, i32 := range members {
						state[i32] = next0
					}
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					if outNest := actNest[i]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
					}
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveDiscoverNoisy:
			countHook, assessHook := ln.prog.Params.Count, ln.prog.Params.Assess
			threshold := ln.prog.Params.Threshold
			for _, i32 := range members {
				i := int(i32)
				outNest, outCount := ln.outcome(i, recruited, countHome)
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				c := int(outCount)
				if countHook != nil {
					c = countHook(c, n, &antSrc[i])
				}
				count[i] = int32(c)
				q := 0.0
				if !recruited {
					q = qual[outNest]
				}
				if assessHook != nil {
					q = assessHook(q, &antSrc[i])
				}
				if q > threshold {
					quality[i] = 1
				} else {
					quality[i] = 0
				}
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveCountNoisy:
			countHook := ln.prog.Params.Count
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				c := int(outCount)
				if countHook != nil {
					c = countHook(c, n, &antSrc[i])
				}
				count[i] = int32(c)
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveDiscoverQuorum:
			assessHook := ln.prog.Params.Assess
			mult := ln.prog.Params.QuorumMult
			for _, i32 := range members {
				i := int(i32)
				outNest, outCount := ln.outcome(i, recruited, countHome)
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				count[i] = outCount
				q := 0.0
				if !recruited {
					q = qual[outNest]
				}
				if assessHook != nil {
					q = assessHook(q, &antSrc[i])
				}
				if q > 0.5 {
					quality[i] = 1
				} else {
					quality[i] = 0
				}
				// Self-calibrate the quorum threshold into the countT scratch
				// register: QuorumAnt's T = max(⌊mult·count⌋, count+2).
				thr := int32(mult * float64(outCount)) //hh:floatok quorum self-calibration mirrors QuorumAnt's float threshold formula, T = max(⌊mult·count⌋, count+2)
				if thr < outCount+2 {
					thr = outCount + 2
				}
				countT[i] = thr
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveQuorumAdopt:
			// Capture — not a nest change — is what wakes a quorum ant; the
			// capture pass folds it. Self-pairs are not captures.
			if next0 != uint8(s) {
				for _, i32 := range members {
					state[i32] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveQuorumCheck:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				count[i] = outCount
				next := next0
				if quality[i] > 0 && countT[i] > 0 && outCount >= countT[i] {
					next = st.NextB // quorum reached: promote to transport
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveQuorumTransport:
			// Docility and demotion act on captured transporters only; the
			// capture pass folds them and adjusts the finals tally.
			for _, i32 := range members {
				state[i32] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveInform:
			// The rumor-spreading fold: a good outcome nest informs the ant
			// (capture resolves through the slot table, so a captured waiter
			// learns its capturer's nest — the second information channel).
			// Informed ants commit; the capture pass skips this opcode
			// because the fold already resolved the capture here.
			for _, i32 := range members {
				i := int(i32)
				outNest, _ := ln.outcome(i, recruited, countHome)
				next := st.NextB
				if qual[outNest] > 0 {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					next = next0
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		}
	}
	ln.shFinals[sh] = int32(finals)
}

// outcome resolves ant i's outcome nest and count for the observe folds:
// searchers and goers read the end-of-round population of their advertised
// nest, recruiters read the home population and their slot's precomputed
// outcome nest (their capturer's advertised nest when captured). recruited is
// loop-invariant per bucket (it is a property of the state's emit opcode), so
// the branch predicts perfectly.
//
//hh:hotpath
func (ln *lane) outcome(i int, recruited bool, countHome int32) (NestID, int32) {
	if !recruited {
		outNest := ln.actNest[i]
		return outNest, int32(ln.counts[outNest])
	}
	return ln.slotNest[ln.slotOf[i]], countHome
}

// recruitEmit reports whether op sends the ant to the home-nest pairing (its
// outcome is then the home population and possibly a capturer's nest).
//
//hh:hotpath
func recruitEmit(op EmitOp) bool {
	switch op {
	case EmitRecruitBit, EmitRecruitTransport,
		EmitRecruitPop, EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
		return true
	}
	return false
}

// census reports unanimous commitment to a good nest from the incrementally
// maintained tally, mirroring core.TakeCensus + Census.Converged: faulty ants
// (Byzantine from round one, crashed once their crash fires) are excluded
// from the census total, while sleeping ants count — the colony cannot
// converge before its idle reserve wakes and joins. A deciding program (one
// with Final states) additionally requires every census ant to have reached a
// Final state, exactly as the scalar runner gates on the core.Decided
// contract.
//
//hh:hotpath
func (ln *lane) census() (NestID, bool) {
	alive := ln.n
	if ln.faulted {
		alive = ln.alive
		if alive == 0 {
			return Home, false
		}
	}
	if ln.decides && ln.finals != alive {
		return Home, false
	}
	for i := 1; i <= ln.k; i++ {
		if ln.commit[i] == alive && ln.qual[i] > 0 {
			return NestID(i), true
		}
	}
	return Home, false
}

// Adoption fold modes for foldCaptureAdopts: what a captured ant's registers
// record beyond the nest move. Encoding the variants as a mode instead of a
// closure keeps the per-capture work a direct, predictable branch — the
// closure form captured loop state and relied on escape analysis to stay off
// the heap (hhlint/hotpathalloc flags it).
const (
	adoptPlain    uint8 = iota // nest move only (ObserveDiscovery)
	adoptQualOne               // nest move, quality := 1 (ObserveAdopt)
	adoptQualZero              // nest move, quality zeroed (ObserveAdoptZero)
)

// foldCaptureAdopts applies one adoption per lockstep-round ant whose
// capturer advertises a nest different from the ant's own — the common core
// of the recruit-round adoption folds. With a capture-listing matcher only
// the actual captures are visited (they are sparse); otherwise the whole
// capture table is scanned. Reading the capturer's nest from the actNest
// snapshot keeps the fold order-independent even for matchers whose
// capturers can themselves be captured.
//
//hh:hotpath
func (ln *lane) foldCaptureAdopts(mode uint8) {
	nest := ln.nest
	actNest := ln.actNest
	capturedBy := ln.capturedBy
	if ln.capLister != nil {
		for _, t32 := range ln.capLister.Captures() {
			i := int(t32) // slot t is ant t on the lockstep path
			if cb := int(capturedBy[i]); cb != i {
				if outNest := actNest[cb]; outNest != nest[i] {
					ln.adoptCapture(i, outNest, mode)
				}
			}
		}
		return
	}
	for i := range nest {
		if cb := int(capturedBy[i]); cb >= 0 && cb != i {
			if outNest := actNest[cb]; outNest != nest[i] {
				ln.adoptCapture(i, outNest, mode)
			}
		}
	}
}

// adoptCapture moves ant i to its capturer's advertised nest, maintaining the
// incremental commitment census, and applies the mode's register updates.
//
//hh:hotpath
func (ln *lane) adoptCapture(i int, outNest NestID, mode uint8) {
	ln.commit[ln.nest[i]]--
	ln.commit[outNest]++
	ln.nest[i] = outNest
	switch mode {
	case adoptQualOne:
		ln.quality[i] = 1
	case adoptQualZero:
		ln.quality[i] = 0
	}
}
