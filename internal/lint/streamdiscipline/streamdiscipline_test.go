package streamdiscipline_test

import (
	"testing"

	"github.com/gmrl/househunt/internal/lint/analysistest"
	"github.com/gmrl/househunt/internal/lint/streamdiscipline"
)

func TestStreamDiscipline(t *testing.T) {
	analysistest.Run(t, streamdiscipline.Analyzer, "sdfix")
}
