// Package sdfix exercises every streamdiscipline rule: SD1 guarded
// draws, SD2 bucket-order draws, SD3 opcode contracts, SD4 hot-function
// draw contracts — each with at least one flagged and one allowed form.
package sdfix

import "rng"

type EmitOp uint8

type ObserveOp uint8

const (
	EmitBad EmitOp = iota // want "opcode const EmitBad has no draw contract"
	//hh:draws one word per ant
	EmitNoScalar // want "malformed"
	//hh:draws scalar=GoodAnt.Act
	EmitNoSpec // want "missing draw spec"
	//hh:draws one Bernoulli word per active ant scalar=GoodAnt.Act
	EmitGood
	// internalOp is not an exported opcode: no contract required.
	internalOp
)

const (
	ObserveBad ObserveOp = iota // want "opcode const ObserveBad has no draw contract"
	//hh:draws none scalar=GoodAnt.Observe
	ObserveGood
)

// Other is a const of unrelated type; the contract rule ignores it.
const Other = 3

// guardedBad draws under an undocumented non-sentinel condition.
//
//hh:hotpath
//hh:draws one word when ready
func guardedBad(src *rng.Source, ready bool) uint64 {
	if ready {
		return src.Uint64() // want "draw guarded by undocumented condition"
	}
	return 0
}

// guardedSentinel gates its draw on a documented sentinel identifier.
//
//hh:hotpath
//hh:draws one word when quality is positive
func guardedSentinel(src *rng.Source, quality float64) uint64 {
	if quality > 0 {
		return src.Uint64()
	}
	return 0
}

// guardedAnnotated documents a non-sentinel guard in place.
//
//hh:hotpath
//hh:draws one word per ready call
func guardedAnnotated(src *rng.Source, ready bool) uint64 {
	//hh:draws the scalar engine draws under the identical ready flag
	if ready {
		return src.Uint64()
	}
	return 0
}

// hookTransfer hands the stream to a hook: a nil comparison is draw-free
// by contract, any other guard needs documentation.
//
//hh:hotpath
//hh:draws whatever the hook draws, once per call
func hookTransfer(hook func(*rng.Source) float64, src *rng.Source, ready bool) {
	if hook != nil {
		hook(src)
	}
	if ready {
		hook(src) // want "draw guarded by undocumented condition"
	}
}

// thresholdGuard draws through a Threshold; the sentinel bound justifies
// the fused compare.
//
//hh:hotpath
//hh:draws one word per in-range threshold
func thresholdGuard(t rng.Threshold, src *rng.Source, cheap bool) bool {
	var bound rng.Threshold = 1 << 53
	if t < bound {
		_ = cheap
		return t.Draw(src) // want "draw guarded by undocumented condition"
	}
	if t != rng.ThresholdNever {
		return t.Draw(src) // allowed: ThresholdNever is a documented sentinel
	}
	return false
}

// bucketDraws ranges a state bucket: shared streams consume out of ant
// order, indexed per-ant streams are fine, and an annotation overrides.
//
//hh:hotpath
//hh:draws one word per member
func bucketDraws(members []int32, src *rng.Source, antSrc []rng.Source) uint64 {
	var acc uint64
	for _, i := range members {
		acc += src.Uint64() // want "shared-stream draw inside a bucket-order loop"
		acc += antSrc[int(i)].Uint64()
	}
	//hh:antorder the scalar engine consumes this shared stream in the same bucket order
	for range members {
		acc += src.Uint64()
	}
	for i := 0; i < 4; i++ {
		acc += src.Uint64() // plain counted loop: no bucket, no SD2
	}
	return acc
}

// missingContract draws but its doc has no //hh:draws line.
//
//hh:hotpath
func missingContract(src *rng.Source) uint64 { // want "doc comment has no //hh:draws contract"
	return src.Uint64()
}

// coldDraw is not hotpath: streamdiscipline does not police cold code.
func coldDraw(src *rng.Source, ready bool) uint64 {
	if ready {
		return src.Uint64()
	}
	return 0
}

var _ = []any{guardedBad, guardedSentinel, guardedAnnotated, hookTransfer,
	thresholdGuard, bucketDraws, missingContract, coldDraw, EmitBad, EmitNoScalar,
	EmitNoSpec, EmitGood, internalOp, ObserveBad, ObserveGood}
