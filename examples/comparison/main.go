// Comparison races the paper's algorithms against each other across the
// number of candidate nests, reproducing the headline asymptotic story on a
// laptop: Algorithm 2 ("Optimal", O(log n)) is nearly flat in k, Algorithm 3
// ("Simple", O(k log n)) grows with k, and the §6 adaptive extension pays a
// ramp-up at small k to stay flat at large k.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"github.com/gmrl/househunt"
)

func main() {
	const colony = 512
	const repetitions = 5
	algorithms := []househunt.Algorithm{
		househunt.AlgorithmOptimal,
		househunt.AlgorithmSimple,
		househunt.AlgorithmAdaptive,
	}

	fmt.Printf("colony of %d ants, all nests good, %d repetitions per cell\n\n", colony, repetitions)
	fmt.Printf("%6s", "k")
	for _, a := range algorithms {
		fmt.Printf("  %12s", a)
	}
	fmt.Println()

	for _, k := range []int{2, 4, 8, 16, 32} {
		fmt.Printf("%6d", k)
		for _, algorithm := range algorithms {
			mean, err := meanRounds(algorithm, colony, k, repetitions)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %12.1f", mean)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("expected shape: the 'simple' column grows with k (its O(k log n) bound);")
	fmt.Println("'optimal' stays nearly flat (O(log n)); 'adaptive' starts slower but is")
	fmt.Println("flat in k, overtaking 'simple' around k ≈ 16.")
}

// meanRounds averages convergence rounds over repetitions (all runs at these
// sizes solve, so failures are reported as errors rather than skipped).
func meanRounds(algorithm househunt.Algorithm, n, k, reps int) (float64, error) {
	total := 0
	for rep := 0; rep < reps; rep++ {
		res, err := househunt.Run(
			househunt.WithColonySize(n),
			househunt.WithBinaryNests(k, k),
			househunt.WithAlgorithm(algorithm),
			househunt.WithSeed(uint64(9000+rep*31+k)),
		)
		if err != nil {
			return 0, err
		}
		if !res.Solved {
			return 0, fmt.Errorf("%s failed to converge at n=%d k=%d", algorithm, n, k)
		}
		total += res.Rounds
	}
	return float64(total) / float64(reps), nil
}
