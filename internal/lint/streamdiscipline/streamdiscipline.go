// Package streamdiscipline defines an analyzer that enforces the RNG
// stream discipline the scalar/batch differential harness depends on:
// both engines must consume draws from the same streams, in the same
// order, under the same conditions, or replicate results silently
// diverge.
//
// Four rules:
//
//	SD1 — in //hh:hotpath functions, a draw call (any rng.Source /
//	      rng.Threshold draw method, or any call handing a *rng.Source to
//	      a hook) nested under an if statement is flagged unless every
//	      enclosing condition is a documented draw-free sentinel (the
//	      identifiers in Sentinels, or a nil comparison — nil hooks are
//	      draw-free by contract), or the if is annotated //hh:draws <why>
//	      documenting that the scalar path draws under the identical
//	      condition.
//
//	SD2 — inside loops ranging over state buckets (an expression rooted
//	      at an identifier containing "bkt", "bucket", or "members"),
//	      draws must come from per-ant streams (an indexed source like
//	      antSrc[i]); a draw from a shared stream consumes in bucket
//	      order, not ant order, and is flagged unless the range is
//	      annotated //hh:antorder <why>.
//
//	SD3 — every Emit*/Observe* opcode constant (type EmitOp/ObserveOp)
//	      must carry a //hh:draws <spec> scalar=<name> contract naming
//	      its per-round draw count and the scalar counterpart that
//	      consumes the identical draws.
//
//	SD4 — a //hh:hotpath function that performs draws must carry a
//	      //hh:draws <spec> doc contract summarizing its draw order.
//
// The rng package itself is exempt: discipline governs consumers.
package streamdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/gmrl/househunt/internal/lint/analysis"
	"github.com/gmrl/househunt/internal/lint/hhannot"
)

// Sentinels are the documented draw-free guard identifiers: conditions on
// these values gate draws identically in the scalar and batch engines
// (see README.md "Stream discipline").
var Sentinels = map[string]bool{
	"quality":         true,
	"active":          true,
	"anyActive":       true,
	"nR":              true,
	"ThresholdAlways": true,
	"ThresholdNever":  true,
}

// drawMethods are the rng.Source methods that advance the stream.
// Split/SplitInto/Reseed derive or seed streams without consuming the
// parent's draw sequence and are deliberately absent.
var drawMethods = map[string]bool{
	"Uint64": true, "Uint64n": true, "Int63": true, "Intn": true,
	"Float64": true, "Bernoulli": true, "Perm": true, "PermInto": true,
	"PermInto32": true, "PermAdvance": true, "Shuffle": true,
	"Binomial": true, "Geometric": true, "NormFloat64": true, "Pick": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "streamdiscipline",
	Doc:  "enforce scalar/batch RNG draw-order discipline (guarded draws, ant order, opcode draw contracts)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "rng" {
		return nil
	}
	annots := hhannot.NewMap(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		checkOpcodeContracts(pass, annots, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hhannot.DocHas(fd.Doc, "hotpath") {
				continue
			}
			checkHotFunc(pass, annots, fd)
		}
	}
	return nil
}

// checkHotFunc walks one hot function tracking the enclosing if and
// bucket-range context, applying SD1, SD2, and SD4.
func checkHotFunc(pass *analysis.Pass, annots *hhannot.Map, fd *ast.FuncDecl) {
	drew := false
	var walk func(n ast.Node, ifs []*ast.IfStmt, buckets []*ast.RangeStmt)
	walk = func(n ast.Node, ifs []*ast.IfStmt, buckets []*ast.RangeStmt) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			if n.Init != nil {
				walk(n.Init, ifs, buckets)
			}
			// The condition executes unconditionally relative to this
			// if, so draws inside it are guarded only by the outer ifs.
			walk(n.Cond, ifs, buckets)
			inner := append(ifs, n)
			walk(n.Body, inner, buckets)
			walk(n.Else, inner, buckets)
			return
		case *ast.RangeStmt:
			inner := buckets
			if isBucketRange(n) {
				inner = append(buckets, n)
			}
			walk(n.Body, ifs, inner)
			return
		case *ast.FuncLit:
			// A nested function body has its own control flow; draws in
			// it (e.g. Shuffle swap callbacks) execute at call sites.
			walk(n.Body, nil, nil)
			return
		case *ast.CallExpr:
			if recv, ok := drawCall(pass, n); ok {
				drew = true
				checkGuards(pass, annots, n, ifs)
				checkAntOrder(pass, annots, n, recv, buckets)
			}
		}
		// Generic traversal of children, preserving context.
		children(n, func(c ast.Node) { walk(c, ifs, buckets) })
	}
	walk(fd.Body, nil, nil)

	if drew && !hhannot.DocHas(fd.Doc, "draws") {
		pass.Reportf(fd.Name.Pos(), "//hh:hotpath function %s draws from rng but its doc comment has no //hh:draws contract", fd.Name.Name)
	}
}

// checkGuards is SD1: every enclosing if must be sentinel-guarded,
// nil-guarded, or annotated.
func checkGuards(pass *analysis.Pass, annots *hhannot.Map, call *ast.CallExpr, ifs []*ast.IfStmt) {
	for _, ifStmt := range ifs {
		if guardJustified(pass, annots, ifStmt) {
			continue
		}
		pos := pass.Fset.Position(ifStmt.Pos())
		pass.Reportf(call.Pos(), "draw guarded by undocumented condition at line %d: scalar and batch must gate draws on the same documented sentinel (or annotate the if with //hh:draws <why>)", pos.Line)
	}
}

func guardJustified(pass *analysis.Pass, annots *hhannot.Map, ifStmt *ast.IfStmt) bool {
	if annots.Has(ifStmt, "draws") {
		return true
	}
	ok := false
	ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if Sentinels[n.Name] {
				ok = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if isNilIdent(n.X) || isNilIdent(n.Y) {
					ok = true
				}
			}
		}
		return !ok
	})
	return ok
}

// checkAntOrder is SD2: in bucket-order loops, draws must come from an
// indexed per-ant stream.
func checkAntOrder(pass *analysis.Pass, annots *hhannot.Map, call *ast.CallExpr, recv ast.Expr, buckets []*ast.RangeStmt) {
	if len(buckets) == 0 || recv == nil || containsIndex(recv) {
		return
	}
	rng := buckets[len(buckets)-1]
	if annots.Has(rng, "antorder") {
		return
	}
	pass.Reportf(call.Pos(), "shared-stream draw inside a bucket-order loop consumes draws out of ant order; use a per-ant stream (antSrc[i]) or annotate the range //hh:antorder <why>")
}

// drawCall reports whether call consumes from an rng stream, returning
// the expression whose indexing identifies the stream (the method
// receiver, or the *rng.Source argument for hook-style transfers).
func drawCall(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pass.TypesInfo.Selections[sel]; ok {
			recvName, pkgName := namedRecv(s.Recv())
			if pkgName == "rng" {
				if recvName == "Source" && drawMethods[sel.Sel.Name] {
					return sel.X, true
				}
				if recvName == "Threshold" && sel.Sel.Name == "Draw" {
					return call.Args[0], true
				}
			}
		}
	}
	// Hook-style transfer: handing a *rng.Source to any callee makes the
	// callee's draws part of this site's stream discipline.
	for _, arg := range call.Args {
		t := pass.TypesInfo.TypeOf(arg)
		if p, ok := t.(*types.Pointer); ok {
			if name, pkg := namedRecv(p.Elem()); name == "Source" && pkg == "rng" {
				return arg, true
			}
		}
	}
	return nil, false
}

// namedRecv unwraps pointers and reports the named type and its
// package's name.
func namedRecv(t types.Type) (string, string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Name(), n.Obj().Pkg().Name()
}

// checkOpcodeContracts is SD3.
func checkOpcodeContracts(pass *analysis.Pass, annots *hhannot.Map, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				tn, _ := namedRecv(obj.Type())
				if tn != "EmitOp" && tn != "ObserveOp" {
					continue
				}
				if !strings.HasPrefix(name.Name, "Emit") && !strings.HasPrefix(name.Name, "Observe") {
					continue
				}
				a, ok := contractFor(annots, vs)
				if !ok {
					pass.Reportf(name.Pos(), "opcode const %s has no draw contract; annotate //hh:draws <spec> scalar=<name>", name.Name)
					continue
				}
				if err := validateContract(a.Args); err != "" {
					pass.Reportf(name.Pos(), "opcode const %s has a malformed //hh:draws contract: %s", name.Name, err)
				}
			}
		}
	}
}

func contractFor(annots *hhannot.Map, vs *ast.ValueSpec) (hhannot.Annot, bool) {
	if a, ok := hhannot.DocGet(vs.Doc, "draws"); ok {
		return a, true
	}
	if a, ok := hhannot.DocGet(vs.Comment, "draws"); ok {
		return a, true
	}
	return annots.Get(vs, "draws")
}

// validateContract checks "<spec> scalar=<name>": a non-empty draw spec
// plus the scalar counterpart that consumes the identical draws.
func validateContract(args string) string {
	fields := strings.Fields(args)
	if len(fields) == 0 {
		return "empty contract"
	}
	scalar := ""
	spec := 0
	for _, fld := range fields {
		if v, ok := strings.CutPrefix(fld, "scalar="); ok {
			scalar = v
		} else {
			spec++
		}
	}
	if spec == 0 {
		return "missing draw spec before scalar="
	}
	if scalar == "" {
		return "missing scalar=<name> counterpart"
	}
	return ""
}

func isBucketRange(n *ast.RangeStmt) bool {
	name := rootName(n.X)
	for _, marker := range []string{"bkt", "bucket", "members"} {
		if strings.Contains(strings.ToLower(name), marker) {
			return true
		}
	}
	return false
}

func rootName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return ""
		}
	}
}

func containsIndex(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// children invokes fn for each direct child node of n, excluding the
// node types walk handles itself (which never reach here).
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
