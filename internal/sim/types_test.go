package sim

import (
	"testing"
)

func TestNewEnvironmentValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		qualities []float64
		wantErr   bool
	}{
		{"empty", nil, true},
		{"all bad", []float64{0, 0, 0}, true},
		{"negative", []float64{-0.1, 1}, true},
		{"above one", []float64{1.1}, true},
		{"single good", []float64{1}, false},
		{"binary mix", []float64{0, 1, 0, 1}, false},
		{"non-binary", []float64{0.3, 0.9, 0}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := NewEnvironment(tc.qualities)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewEnvironment(%v) error = %v, wantErr %v", tc.qualities, err, tc.wantErr)
			}
		})
	}
}

func TestEnvironmentAccessors(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{0, 1, 0.5, 0})
	if env.K() != 4 {
		t.Fatalf("K = %d, want 4", env.K())
	}
	if env.Quality(0) != 0 || env.Quality(1) != 0 || env.Quality(2) != 1 || env.Quality(3) != 0.5 {
		t.Fatal("Quality indexing wrong")
	}
	if env.Quality(-1) != 0 || env.Quality(99) != 0 {
		t.Fatal("out-of-range Quality should be 0")
	}
	if env.Good(1) || !env.Good(2) || !env.Good(3) {
		t.Fatal("Good wrong")
	}
	good := env.GoodNests()
	if len(good) != 2 || good[0] != 2 || good[1] != 3 {
		t.Fatalf("GoodNests = %v", good)
	}
	best := env.BestNests()
	if len(best) != 1 || best[0] != 2 {
		t.Fatalf("BestNests = %v", best)
	}
}

func TestEnvironmentZeroValue(t *testing.T) {
	t.Parallel()
	var env Environment
	if env.K() != 0 {
		t.Fatalf("zero environment K = %d", env.K())
	}
	if env.Good(1) {
		t.Fatal("zero environment has a good nest")
	}
}

func TestUniform(t *testing.T) {
	t.Parallel()
	env, err := Uniform(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if env.K() != 8 || len(env.GoodNests()) != 3 {
		t.Fatalf("Uniform(8,3): K=%d good=%v", env.K(), env.GoodNests())
	}
	for _, bad := range [][2]int{{0, 1}, {4, 0}, {4, 5}, {-1, -1}} {
		if _, err := Uniform(bad[0], bad[1]); err == nil {
			t.Fatalf("Uniform(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestQualitiesCopies(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1, 0})
	qs := env.Qualities()
	qs[1] = 0
	if env.Quality(1) != 1 {
		t.Fatal("Qualities returned internal storage")
	}
}

func TestMustEnvironmentPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("MustEnvironment did not panic on invalid input")
		}
	}()
	MustEnvironment(nil)
}

func TestActionConstructors(t *testing.T) {
	t.Parallel()
	if a := Search(); a.Kind != ActionSearch {
		t.Fatalf("Search() = %+v", a)
	}
	if a := Goto(3); a.Kind != ActionGo || a.Nest != 3 {
		t.Fatalf("Goto(3) = %+v", a)
	}
	if a := Recruit(true, 2); a.Kind != ActionRecruit || a.Nest != 2 || !a.Active {
		t.Fatalf("Recruit(true,2) = %+v", a)
	}
}

func TestActionKindString(t *testing.T) {
	t.Parallel()
	for _, k := range []ActionKind{ActionSearch, ActionGo, ActionRecruit, ActionKind(0)} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}
