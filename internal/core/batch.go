package core

import (
	"fmt"

	"github.com/gmrl/househunt/internal/sim"
)

// BatchCompilable is implemented by algorithms that can lower themselves to
// the batch engine's compiled form (sim.Program). CompileBatch returns
// ok = false when the algorithm cannot be compiled for the given parameters;
// callers then fall back to the scalar agent path.
type BatchCompilable interface {
	Algorithm
	CompileBatch(n int, env sim.Environment) (sim.Program, bool)
}

// BatchFaultWrapper is an AgentWrapper whose effect the batch engine can
// reproduce natively: a declarative fault spec (faults.Spec) that lowers to
// sim.FaultSpec fault lanes. CompileForBatch recognizes the interface and
// compiles such configs instead of declining cfg.Wrap; any other wrapper is
// an arbitrary per-agent transformation and stays scalar. The boolean mirrors
// Enabled(): a disabled spec wraps as the identity and batches as a plain
// (fault-free) program. Adaptive schedules ride through the same lowering —
// the lowered sim.FaultSpec carries NewSchedule/ScheduleSalt, and the batch
// engine runs the schedule against its own per-round census snapshot with a
// dedicated adversary stream, so scheduled runs stay batch-eligible and
// bit-identical to the scalar path.
type BatchFaultWrapper interface {
	AgentWrapper
	BatchFaults() (sim.FaultSpec, bool)
}

// Decline reasons returned by CompileForBatch for configurations with
// scalar-only features. Exported as constants so the harness layers (algo and
// experiment tests, CLI logs) can assert the exact routing cause instead of
// matching ad-hoc substrings.
const (
	// ReasonWrapperScalarOnly: cfg.Wrap holds a custom wrapper (not a
	// BatchFaultWrapper), e.g. async plans or hand-rolled agent decoration.
	ReasonWrapperScalarOnly = "cfg.Wrap is set (agent wrappers other than fault specs are scalar-only)"
	// ReasonTraceScalarOnly: per-round traces require the scalar engine.
	ReasonTraceScalarOnly = "cfg.Trace is set (per-round traces are scalar-only)"
	// ReasonMetricsScalarOnly: engine instrumentation requires the scalar engine.
	ReasonMetricsScalarOnly = "cfg.Metrics is set (engine instrumentation is scalar-only)"
	// ReasonConcurrentScalarOnly: the goroutine-per-ant mode is scalar by definition.
	ReasonConcurrentScalarOnly = "cfg.Concurrent is set (the goroutine-per-ant mode is scalar-only)"
)

// batchMatcherFactory resolves cfg.NewMatcher for the batch engine. The
// engine compiles the stock matcher models — the default Algorithm 1 pairing
// (including its carry-aware transport form) and the §6 ablations
// (SimultaneousMatcher, RendezvousMatcher) — by probing one instance from the
// factory and rebuilding fresh instances of the same stock type per worker
// lane; the user factory is called exactly once per eligibility check (never
// concurrently), and a factory that (incorrectly) shares one instance still
// batches safely. A matcher of any other type is an arbitrary implementation
// with per-engine scratch state the lanes cannot model, so it stays scalar
// with a reason naming the type. A nil cfg factory selects the batch
// engine's default pairing (nil factory, nil probe returned).
func batchMatcherFactory(cfg RunConfig) (factory func() sim.Matcher, probe sim.Matcher, ok bool, reason string) {
	if cfg.NewMatcher == nil {
		return nil, nil, true, ""
	}
	probe = cfg.NewMatcher()
	switch probe.(type) {
	case *sim.AlgorithmOneMatcher:
		return func() sim.Matcher { return &sim.AlgorithmOneMatcher{} }, probe, true, ""
	case *sim.SimultaneousMatcher:
		return func() sim.Matcher { return &sim.SimultaneousMatcher{} }, probe, true, ""
	case *sim.RendezvousMatcher:
		return func() sim.Matcher { return &sim.RendezvousMatcher{} }, probe, true, ""
	case nil:
		return nil, nil, false, "cfg.NewMatcher returned nil"
	}
	return nil, nil, false, fmt.Sprintf(
		"cfg.NewMatcher supplies custom matcher %q (only the stock models — algorithm1 with its carry-aware transport form, simultaneous, rendezvous — are batch-compiled)",
		probe.Name())
}

// CompileForBatch reports whether algo + cfg can run on the batch engine and
// returns the compiled program if so. Eligibility requires a compilable
// algorithm and a configuration with none of the scalar-only features:
// traces, metrics, non-stock matchers and the goroutine-per-ant mode all hold
// per-agent or per-engine state the batch lanes do not model. Agent wrappers
// are scalar-only too, with one exception: a cfg.Wrap implementing
// BatchFaultWrapper (faults.Spec) lowers to the batch engine's native fault
// lanes and compiles, its sim.FaultSpec attached to the program's parameters.
// Configurations selecting a stock matcher model (Algorithm 1 or the
// simultaneous/rendezvous ablations) compile: the batch engine runs those
// models with exactly their scalar draw sequences.
//
// When compilation is declined, the returned reason names the cfg field or
// algorithm that blocked it — one log line answers "why is this sweep on the
// slow path". The reason is empty exactly when ok is true.
func CompileForBatch(algo Algorithm, cfg RunConfig) (prog sim.Program, ok bool, reason string) {
	prog, _, ok, reason = compileForBatch(algo, cfg)
	return prog, ok, reason
}

// compileForBatch is CompileForBatch plus the resolved matcher factory, so
// RunBatch performs the whole eligibility check — cfg.NewMatcher probe
// included — exactly once.
func compileForBatch(algo Algorithm, cfg RunConfig) (prog sim.Program, matcher func() sim.Matcher, ok bool, reason string) {
	switch {
	case algo == nil:
		return sim.Program{}, nil, false, "no algorithm"
	case cfg.N <= 0:
		return sim.Program{}, nil, false, fmt.Sprintf("colony size %d is not positive", cfg.N)
	case cfg.Env.K() == 0:
		return sim.Program{}, nil, false, "empty environment"
	case cfg.Trace != nil:
		return sim.Program{}, nil, false, ReasonTraceScalarOnly
	case cfg.Metrics != nil:
		return sim.Program{}, nil, false, ReasonMetricsScalarOnly
	case cfg.Concurrent:
		return sim.Program{}, nil, false, ReasonConcurrentScalarOnly
	}
	var faultSpec sim.FaultSpec
	if cfg.Wrap != nil {
		fw, isFaults := cfg.Wrap.(BatchFaultWrapper)
		if !isFaults {
			return sim.Program{}, nil, false, ReasonWrapperScalarOnly
		}
		spec, enabled := fw.BatchFaults()
		if err := spec.Validate(); err != nil {
			return sim.Program{}, nil, false, fmt.Sprintf("cfg.Wrap fault spec is invalid: %v", err)
		}
		if enabled {
			faultSpec = spec
		}
		// A disabled spec wraps as the identity: compile fault-free.
	}
	factory, probe, matcherOK, reason := batchMatcherFactory(cfg)
	if !matcherOK {
		return sim.Program{}, nil, false, reason
	}
	bc, isCompilable := algo.(BatchCompilable)
	if !isCompilable {
		return sim.Program{}, nil, false, fmt.Sprintf("algorithm %q does not implement core.BatchCompilable", algo.Name())
	}
	prog, ok = bc.CompileBatch(cfg.N, cfg.Env)
	if !ok {
		return sim.Program{}, nil, false, fmt.Sprintf("algorithm %q declined to compile for n=%d, k=%d", algo.Name(), cfg.N, cfg.Env.K())
	}
	if faultSpec.Enabled() {
		// The batch engine appends four synthetic fault states to the
		// program's table; a program that leaves no room stays scalar.
		if len(prog.States) > 252 {
			return sim.Program{}, nil, false, fmt.Sprintf(
				"algorithm %q compiles to %d states, too many for the fault lanes (max 252)",
				algo.Name(), len(prog.States))
		}
		prog.Params.Faults = faultSpec
	}
	if probe != nil && prog.UsesCarry() && prog.Params.QuorumCarry > 1 {
		if _, carries := probe.(sim.CarryMatcher); !carries {
			// The scalar engine rejects a transporting round at runtime for
			// such matchers; declining compilation here routes the config to
			// the scalar path so the user sees that engine's error.
			return sim.Program{}, nil, false, fmt.Sprintf(
				"algorithm %q transports (carry %d > 1) but matcher %q implements no sim.CarryMatcher",
				algo.Name(), prog.Params.QuorumCarry, probe.Name())
		}
	}
	return prog, factory, true, ""
}

// RunBatch executes one replicate per seed on the batch engine and returns
// results equal to what Run would produce for the same (algo, cfg, seed)
// triples — same winners, same round counts, same censuses. The boolean
// reports eligibility: when false, the caller must run the scalar path
// (cfg cannot run batched); no work has been done in that case.
func RunBatch(algo Algorithm, cfg RunConfig, seeds []uint64) ([]Result, bool, error) {
	return RunBatchObserved(algo, cfg, seeds, nil)
}

// RunBatchObserved is RunBatch with a streaming telemetry observer attached
// to the batch engine. Observation is draw-free, so the results are
// bit-identical to RunBatch's; cfg.Trace/cfg.Metrics still decline
// compilation (they are scalar-engine instrumentation — the observer IS the
// batch engine's telemetry path). A nil observer is exactly RunBatch.
func RunBatchObserved(algo Algorithm, cfg RunConfig, seeds []uint64, obs sim.BatchObserver) ([]Result, bool, error) {
	prog, factory, ok, _ := compileForBatch(algo, cfg)
	if !ok {
		return nil, false, nil
	}
	if len(seeds) == 0 {
		return nil, true, fmt.Errorf("core: batch run needs at least one seed")
	}
	var opts []sim.BatchOption
	if factory != nil {
		opts = append(opts, sim.WithBatchMatcher(factory))
	}
	if obs != nil {
		opts = append(opts, sim.WithBatchObserver(obs))
	}
	if cfg.BatchWorkers > 0 {
		opts = append(opts, sim.WithBatchWorkers(cfg.BatchWorkers))
	}
	if cfg.BatchShards > 0 {
		opts = append(opts, sim.WithBatchShards(cfg.BatchShards))
	}
	batch, err := sim.NewBatch(cfg.Env, prog, cfg.N, opts...)
	if err != nil {
		return nil, true, fmt.Errorf("core: constructing batch engine: %w", err)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(cfg.N, cfg.Env.K())
	}
	window := cfg.StabilityWindow
	if window <= 0 {
		window = 1
	}
	raw, err := batch.Run(seeds, maxRounds, window)
	if err != nil {
		return nil, true, fmt.Errorf("core: running %s batched: %w", algo.Name(), err)
	}
	results := make([]Result, len(raw))
	for i, r := range raw {
		results[i] = Result{
			Solved:        r.Solved,
			Winner:        r.Winner,
			WinnerQuality: r.WinnerQuality,
			Rounds:        r.Rounds,
			FinalCensus: Census{
				Committed: r.Committed,
				// Deciding programs (Final-flagged states, Algorithm 2)
				// report the decided count like TakeCensus would; others
				// expose commitment only (-1).
				Decided: r.Decided,
				// Faulty ants (Byzantine plus fired crashes) are excluded
				// from Total, mirroring TakeCensus over wrapped agents.
				Faulty: r.Faulty,
				Total:  cfg.N - r.Faulty,
			},
			Algorithm: algo.Name(),
		}
	}
	return results, true, nil
}
