// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that the hhlint analyzers
// need. The module deliberately has no external dependencies, so instead
// of importing x/tools this package re-declares the small Analyzer /
// Pass / Diagnostic vocabulary with identical field names and semantics.
// Swapping to the real framework later is a mechanical import change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects a single type-checked
// package via the Pass and reports diagnostics through pass.Report.
type Analyzer struct {
	// Name is a short lowercase identifier used in diagnostics and
	// test expectations.
	Name string

	// Doc is the help text: first line is a one-line summary.
	Doc string

	// Run applies the check to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer with the syntax, type information, and
// reporting hook for a single package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver sets it.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
