// Package workload generates the environment families and parameter grids
// used by the experiment harness: binary landscapes with a controlled number
// of good nests, non-binary quality ladders, and (n, k) sweep grids with
// deterministic per-point seeds.
package workload

import (
	"fmt"
	"hash/fnv"

	"github.com/gmrl/househunt/internal/sim"
)

// Binary returns a k-nest environment with the given number of good
// (quality 1) nests; the rest have quality 0.
func Binary(k, good int) (sim.Environment, error) {
	return sim.Uniform(k, good)
}

// AllGood returns a k-nest environment where every nest is good — the
// hardest setting for symmetry breaking, used by the competition experiments.
func AllGood(k int) (sim.Environment, error) {
	return sim.Uniform(k, k)
}

// SingleGood returns a k-nest environment with exactly one good nest — the
// lower bound's setting and the hardest setting for discovery.
func SingleGood(k int) (sim.Environment, error) {
	return sim.Uniform(k, 1)
}

// QualityLadder returns a k-nest environment with qualities evenly spaced
// from lo up to hi (nest k is the best). It feeds the §6 non-binary
// experiments. Requires 0 < lo <= hi <= 1.
func QualityLadder(k int, lo, hi float64) (sim.Environment, error) {
	if k <= 0 {
		return sim.Environment{}, fmt.Errorf("workload: ladder needs positive k, got %d", k)
	}
	if lo <= 0 || hi > 1 || lo > hi {
		return sim.Environment{}, fmt.Errorf("workload: ladder bounds (%v, %v) invalid", lo, hi)
	}
	qs := make([]float64, k)
	for i := range qs {
		if k == 1 {
			qs[i] = hi
			continue
		}
		qs[i] = lo + (hi-lo)*float64(i)/float64(k-1)
	}
	return sim.NewEnvironment(qs)
}

// Point is one cell of an (n, k) sweep grid.
type Point struct {
	N    int
	K    int
	Seed uint64
}

// Grid is a cartesian (n, k) sweep.
type Grid struct {
	Ns []int
	Ks []int
	// Tag decorrelates seeds between experiments that share grid points.
	Tag string
}

// Points enumerates the grid with a deterministic seed per point derived
// from (tag, n, k).
func (g Grid) Points() []Point {
	pts := make([]Point, 0, len(g.Ns)*len(g.Ks))
	for _, n := range g.Ns {
		for _, k := range g.Ks {
			pts = append(pts, Point{N: n, K: k, Seed: SeedFor(g.Tag, n, k, 0)})
		}
	}
	return pts
}

// SeedFor derives a stable 64-bit seed from an experiment tag and up to three
// integer coordinates (e.g. n, k, repetition). Identical inputs always give
// identical seeds; distinct inputs decorrelate through FNV-1a.
func SeedFor(tag string, a, b, c int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(tag))
	var buf [24]byte
	put := func(off int, v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(u >> (8 * i))
		}
	}
	put(0, a)
	put(8, b)
	put(16, c)
	_, _ = h.Write(buf[:])
	seed := h.Sum64()
	if seed == 0 {
		seed = 1 // the RNG rejects nothing, but avoid the degenerate seed anyway
	}
	return seed
}

// PowersOfTwo returns {2^lo, …, 2^hi}.
func PowersOfTwo(lo, hi int) []int {
	if lo < 0 || hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<uint(e))
	}
	return out
}
