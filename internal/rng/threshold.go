package rng

// Threshold is a Bernoulli acceptance bound in 53-bit fixed point: a
// precomputed form of a probability p such that Draw reproduces
// Source.Bernoulli(p) bit for bit — the same accept/reject decision AND the
// same stream consumption — while comparing raw integers instead of
// converting and comparing floats.
//
// Derivation. Source.Float64 is float64(Uint64()>>11) · 2⁻⁵³: the high 53
// bits of one output word, scaled into [0, 1). Write x = Uint64()>>11, an
// integer in [0, 2⁵³). Both float64(x) and the scaling by the power of two
// are exact, so for p ∈ (0, 1):
//
//	Float64() < p  ⟺  x·2⁻⁵³ < p  ⟺  x < p·2⁵³  (as reals)
//	               ⟺  x < ⌈p·2⁵³⌉               (x is an integer)
//
// The product p·2⁵³ is itself computed exactly in float64 (multiplying by a
// power of two only shifts the exponent; p < 1 rules out overflow, and a
// subnormal p scales up to a normal product), so T = ⌈p·2⁵³⌉ is an exact
// integer in [1, 2⁵³−1] — the largest float64 below 1 is 1−2⁻⁵³, whose
// threshold is 2⁵³−1. That leaves 0 and values ≥ 2⁵³ free to encode the
// draw-free cases: Bernoulli returns false at p ≤ 0 and true at p ≥ 1
// without consuming randomness, and Float64() < NaN consumes one word and
// rejects. The batch engine materializes tables of Thresholds (one per
// possible count) so its recruit loops run with zero floating-point
// operations; thresholdEquivalence in threshold_test.go pins the
// equivalence exhaustively over boundary probabilities and full count/n
// ranges.
type Threshold uint64

// The sentinel bounds are exported so hot loops can fuse the common
// in-(0, 1) compare inline — t−1 < ThresholdAlways−1 (with uint64 wraparound
// excluding ThresholdNever) selects exactly the one-word-drawing thresholds,
// and everything else defers to Draw — because Draw itself exceeds the
// compiler's inlining budget once Source.Uint64 is folded into it.
const (
	// ThresholdNever encodes p <= 0: reject without drawing.
	ThresholdNever Threshold = 0
	// ThresholdAlways encodes p >= 1: accept without drawing. Real
	// thresholds are at most 2⁵³−1, so the value cannot collide.
	ThresholdAlways Threshold = 1 << 53
	// thresholdNaN encodes p = NaN: draw one word and reject, exactly as
	// Float64() < NaN evaluates.
	thresholdNaN Threshold = 1<<53 + 1
)

// NewThreshold compiles probability p into its fixed-point acceptance bound.
// Every float64 p — including ±0, values outside [0, 1], subnormals and NaN —
// maps to a Threshold whose Draw is bit-identical to Source.Bernoulli(p).
//
//hh:hotpath
//hh:floatok the float→fixed compiler: the one place p crosses from float to Threshold
func NewThreshold(p float64) Threshold {
	switch {
	case p != p:
		return thresholdNaN
	case p <= 0:
		return ThresholdNever
	case p >= 1:
		return ThresholdAlways
	}
	y := p * (1 << 53) // exact: a power-of-two scale only shifts the exponent
	t := Threshold(y)  // truncation toward zero, exact for y < 2⁶³
	if float64(t) < y {
		t++ // ceiling for non-integer products
	}
	return t
}

// Draw samples the encoded Bernoulli from src: true with the compiled
// probability, consuming exactly the words Source.Bernoulli would consume
// (one for p strictly inside (0, 1) or NaN, none otherwise).
//
//hh:hotpath
func (t Threshold) Draw(src *Source) bool {
	if t == ThresholdNever {
		return false
	}
	if t < ThresholdAlways {
		return src.Uint64()>>11 < uint64(t)
	}
	if t == ThresholdAlways {
		return true
	}
	src.Uint64() // NaN: Float64() < NaN draws and rejects
	return false
}
