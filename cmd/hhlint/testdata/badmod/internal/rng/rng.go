// Package rng is a fixture stand-in for the real internal/rng; the
// analyzers identify draws by package name, type name and method name.
package rng

type Source struct{ s uint64 }

func (s *Source) Uint64() uint64 { s.s += 0x9e3779b97f4a7c15; return s.s }
