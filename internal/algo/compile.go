package algo

import (
	"math"

	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// This file lowers algorithms to the batch engine's compiled form
// (sim.Program). An algorithm that can be compiled implements
// core.BatchCompilable by exposing CompileBatch; the replicate-sweep
// machinery (core.RunBatch, experiment.MeasureConvergence) then executes it
// on the struct-of-arrays fast path, with the scalar agent path as the
// fallback for everything else.
//
// The compiled programs are subject to the invariant contracts in the
// top-level README.md ("Invariants", "Annotation contracts"): the batch
// engine executing them must match the scalar agents draw for draw, which
// cmd/hhlint enforces statically over internal/sim and this package.
//
// Batch-coverage matrix (algorithm × configuration → engine). Any scalar-only
// cfg feature (Trace, Metrics, a non-stock NewMatcher, Concurrent, an agent
// wrapper other than a fault spec) forces the scalar path regardless of the
// algorithm; core.CompileForBatch reports which field blocked compilation via
// the core.Reason* constants. Every algorithm in the package now has a
// compiled form — only scalar-only cfg features fall back.
//
//	algorithm      plain cfg   batch path          notes
//	Simple         batch       lockstep            Algorithm 3
//	SimplePFSM     batch       lockstep            same program as Simple
//	Optimal        batch       general (per-ant)   both Case-3 variants
//	Adaptive       batch       lockstep            §6 boosted rate; per-ant phase-clock column
//	QualityAware   batch       lockstep            §6 non-binary qualities; quality·count/n draw
//	ApproxN        batch       lockstep            §6 approximate n; per-ant ñ column (δ ∈ [0,1))
//	Noisy          batch       lockstep            §6 noisy perception; estimator/assessor hooks
//	Quorum         batch       general (per-ant)   §6 quorum/transport; carry-aware matching,
//	                                               threshold in countT, docility draw on capture
//	Spreader       batch       general (split)     information spreading; seed-searcher/waiter
//	                                               split via InitSplit, ObserveInform branching;
//	                                               needs exactly one good nest (else scalar)
//
// Fault-lane coverage (cfg.Wrap × algorithm → engine). A faults.Spec wrapper
// is the one agent wrapper the batch engine can execute: core.CompileForBatch
// recognizes it through the core.BatchFaultWrapper hook and lowers it to
// sim.ProgramParams.Faults, which routes crashed/Byzantine/sleeping ants
// through engine-owned synthetic states. Any other wrapper value stays
// scalar (core.ReasonWrapperScalarOnly):
//
//	cfg.Wrap                 coverage   notes
//	(nil)                    batch      no adversary
//	faults.Spec              batch      crash/Byzantine/sleep lanes; forces the
//	                                    general path; program capped at 252 states
//	faults.Spec+NewSchedule  batch      adaptive schedules: per-round census
//	                                    snapshot → crash/restart/relocate ops,
//	                                    dedicated adversary stream
//	                                    (EffectiveScheduleSalt); restarted ants
//	                                    re-enter at round 1 on pristine per-ant
//	                                    streams
//	core.WrapFunc / custom   scalar     reason: core.ReasonWrapperScalarOnly
//
// Matcher coverage (cfg.NewMatcher × algorithm → engine). The batch engine
// runs the stock pairing models with their scalar draw sequences; only a
// custom Matcher implementation (per-engine scratch the lanes cannot model)
// forces the scalar path:
//
//	matcher                 coverage   notes
//	(default) algorithm1    batch      the paper's Algorithm 1, carry-aware
//	                                   MatchCarry for the transport extension
//	algorithm1 (explicit)   batch      cfg.NewMatcher resolved to the stock type
//	simultaneous            batch      §2 ablation; no CarryMatcher, so quorum
//	                                   configs with carry > 1 stay scalar
//	rendezvous              batch      §2 ablation; same carry restriction
//	custom implementations  scalar     reason names the type and the stock models
//
// Every compiled row is pinned round-for-round bit-identical to its scalar
// agents — for every stock matcher, with and without a fault spec, static or
// adaptive — by the randomized cross-engine differential harness in
// batch_equiv_test.go and the FuzzBatchEquivalence / FuzzBatchFaultEquivalence
// / FuzzBatchAdaptiveFaultEquivalence fuzz targets.
//
// Scaling contract (n × workers → engine). Compilation is colony-size
// independent up to the engine's int32 ant-index limit: the recruit draws
// resolve fixed-point thresholds from a reciprocal (rng.Recip) above the
// 2^16 table crossover, so no compiled form falls back to float kernels or
// allocates per-count tables at large n. The one large-n gate left is
// Quorum's: a threshold M·n that cannot live in the engine's 32-bit
// count register declines to compile (named fallback reason, scalar path).
// Inside the engine a replicate's phase loops shard across workers
// (sim.WithBatchWorkers / sim.WithBatchShards, cfg.BatchWorkers /
// cfg.BatchShards at the runner layer); only per-ant-stream loops
// parallelize — environment and matcher draws stay in a sequential
// ant-order pass — so every worker/shard count reproduces the scalar trace
// bit for bit (pinned at n = 2^16 ± ε and beyond by the ceiling-boundary
// and shard-invariance cells in batch_equiv_test.go).

// simpleBatchProgram is Algorithm 3's three-state table: search, then the
// recruit/assess loop. It is the opcode form of newSimpleSpec — the states
// correspond one-to-one and the randomness (a single Bernoulli(count/n) per
// recruit phase, gated on positive quality) is drawn identically, so batch
// executions are bit-identical to both SimplePFSM and the hand-written
// SimpleAnt (which pfsm_test.go proves equivalent to each other).
func simpleBatchProgram(name string) sim.Program {
	return sim.Program{
		Algorithm: name,
		Init:      0,
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscovery, Next: 1},
			{Emit: sim.EmitRecruitPop, Observe: sim.ObserveAdopt, Next: 2},
			{Emit: sim.EmitGotoNest, Observe: sim.ObserveCount, Next: 1},
		},
	}
}

// CompileBatch implements core.BatchCompilable: SimplePFSM's declarative
// state table lowered to opcodes.
func (a SimplePFSM) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return simpleBatchProgram(a.Name()), true
}

// CompileBatch implements core.BatchCompilable. The hand-written SimpleAnt
// and the PFSM formulation execute identically for equal seeds (the active
// flag coincides with quality > 0), so Simple compiles to the same program.
func (a Simple) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return simpleBatchProgram(a.Name()), true
}

// State indices of the compiled Algorithm 2 table. The layout mirrors the
// pseudocode's structure: the global search round, the active 4-round
// subroutine with its three R2 cases as separate state chains, the passive
// subroutine with a separate pending chain for captured ants, and the
// absorbing final recruit loop. The scalar OptimalAnt's branch register is
// the choice of chain, its pending flag is the P_R3P/P_R4P chain, and its
// phase-boundary next-state latch is each chain's last transition — the
// outcome-dependent successors encode all three, so the lane needs no columns
// for them. Every chain from a block entry (A_R1 or P_R1) back to a block
// entry or to F is exactly four states long, which keeps all non-final ants
// aligned on the pseudocode's R1..R4 positions without any round arithmetic.
const (
	optS0     = iota // round 1: global search
	optAR1           // active R1: recruit(1, nest), learn nest_t     (line 23)
	optAR2           // active R2: go(nest_t), three-way compare      (lines 24-38)
	optAR3C1         // case 1 R3: go(nest)                           (line 28)
	optAR4C1         // case 1 R4: recruit(0, nest), final check      (lines 29-31)
	optAR3C2         // case 2 R3: recruit(0, nest)                   (line 35)
	optAR4C2         // case 2 R4: go(nest), latch passive            (line 36)
	optAR3C3         // case 3 R3: go(nest), population check         (lines 39-41)
	optAR4C3         // case 3 R4: go(nest), stay active              (line 42)
	optAR4C3P        // case 3 R4: go(nest), latch passive            (line 42)
	optPR1           // passive R1: go(nest)                          (line 13)
	optPR2           // passive R2: recruit(0, nest), maybe adopt     (lines 14-17)
	optPR3           // passive R3: go(nest)                          (line 18)
	optPR4           // passive R4: go(nest)                          (line 19)
	optPR3P          // pending R3: go(nest)                          (line 18)
	optPR4P          // pending R4: go(nest), latch final             (line 19)
	optF             // final: recruit(1, nest) forever               (line 21)
)

// optimalBatchProgram is Algorithm 2's compiled state table. literal selects
// the pseudocode-literal Case 3 count handling (stale baseline) over the
// analysis-consistent re-baselining, matching OptimalAnt's Literal knob; the
// two variants differ in exactly one observe opcode.
func optimalBatchProgram(name string, literal bool) sim.Program {
	recount := sim.ObserveRecountRebase
	if literal {
		recount = sim.ObserveRecountLiteral
	}
	return sim.Program{
		Algorithm: name,
		Init:      optS0,
		States: []sim.ProgramState{
			optS0:     {Emit: sim.EmitSearch, Observe: sim.ObserveDiscoverBranch, Next: optAR1, NextB: optPR1},
			optAR1:    {Emit: sim.EmitRecruitBit, Arg: 1, Observe: sim.ObserveRecruitNest, Next: optAR2},
			optAR2:    {Emit: sim.EmitGotoScratch, Observe: sim.ObserveCompareR2, Next: optAR3C1, NextB: optAR3C2, NextC: optAR3C3},
			optAR3C1:  {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optAR4C1},
			optAR4C1:  {Emit: sim.EmitRecruitBit, Arg: 0, Observe: sim.ObserveFinalEq, Next: optAR1, NextB: optF},
			optAR3C2:  {Emit: sim.EmitRecruitBit, Arg: 0, Observe: sim.ObserveNone, Next: optAR4C2},
			optAR4C2:  {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR1},
			optAR3C3:  {Emit: sim.EmitGotoNest, Observe: recount, Next: optAR4C3, NextB: optAR4C3P},
			optAR4C3:  {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optAR1},
			optAR4C3P: {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR1},
			optPR1:    {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR2},
			optPR2:    {Emit: sim.EmitRecruitBit, Arg: 0, Observe: sim.ObserveAdoptPend, Next: optPR3, NextB: optPR3P},
			optPR3:    {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR4},
			optPR4:    {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR1},
			optPR3P:   {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR4P},
			optPR4P:   {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optF},
			optF:      {Emit: sim.EmitRecruitBit, Arg: 1, Observe: sim.ObserveNestLatch, Next: optF, Final: true},
		},
	}
}

// CompileBatch implements core.BatchCompilable: Algorithm 2 lowered to the
// batch engine's outcome-dependent opcode form, in both the
// analysis-consistent and Literal variants. Batch executions are
// round-for-round bit-identical to the scalar OptimalAnt colony (pinned by
// the golden grid in batch_equiv_test.go).
func (o Optimal) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return optimalBatchProgram(o.Name(), o.Literal), true
}

// CompileBatch implements core.BatchCompilable: the §6 boosted-rate extension
// is Algorithm 3's three-state cycle with the recruit draw swapped for the
// schedule-driven EmitRecruitAdaptive, whose phase clock lives in the lane's
// per-ant integer parameter column. The scalar AdaptiveAnt's active flag is
// modeled by the quality register exactly as in the Simple program (adoption
// sets quality 1; a passive discovery leaves it 0), and the probability
// formula is shared with the scalar ant via sim.AdaptiveRecruitProbability,
// so executions are bit-identical. The builder's defaulting (tau 2, floorDiv
// 4) is applied here so the compiled program matches what Build constructs.
func (ad Adaptive) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	tau, floorDiv := ad.Tau, ad.FloorDiv
	if tau <= 0 {
		tau = 2
	}
	if floorDiv <= 0 {
		floorDiv = 4
	}
	return sim.Program{
		Algorithm: ad.Name(),
		Init:      0,
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscovery, Next: 1},
			{Emit: sim.EmitRecruitAdaptive, Observe: sim.ObserveAdopt, Next: 2},
			{Emit: sim.EmitGotoNest, Observe: sim.ObserveCount, Next: 1},
		},
		Params: sim.ProgramParams{Tau: tau, FloorDiv: floorDiv},
	}, true
}

// CompileBatch implements core.BatchCompilable: the §6 non-binary-quality
// extension compiles to Algorithm 3's cycle with a quality-weighted draw
// (EmitRecruitQual) and two quality-tracking observes: the recruit fold
// resets quality to 0 on adoption (a captured ant prices the unknown nest
// conservatively) and the assess visit re-prices it from the environment.
// No explicit active flag is needed: the scalar QualityAnt only skips the
// Bernoulli call when passive, and a passive ant's quality register is always
// 0, where Bernoulli consumes no randomness anyway — so drawing at
// quality·count/n unconditionally is bit-identical.
func (QualityAware) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return sim.Program{
		Algorithm: QualityAware{}.Name(),
		Init:      0,
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscovery, Next: 1},
			{Emit: sim.EmitRecruitQual, Observe: sim.ObserveAdoptZero, Next: 2},
			{Emit: sim.EmitGotoNest, Observe: sim.ObserveCountQual, Next: 1},
		},
	}, true
}

// CompileBatch implements core.BatchCompilable: the §6 approximate-n
// extension is Algorithm 3's cycle with the draw probability min(1, count/ñ)
// (EmitRecruitApproxN), where each ant's private estimate ñ lives in the
// lane's per-ant float parameter column. The lane draws ñ from the ant's own
// stream at replicate start — and skips the draw entirely at δ = 0 — exactly
// as the scalar builder does, which keeps every subsequent Bernoulli aligned.
// A δ outside [0, 1) declines to compile so the scalar path surfaces the
// builder's validation error.
func (a ApproxN) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 || a.Delta < 0 || a.Delta >= 1 {
		return sim.Program{}, false
	}
	return sim.Program{
		Algorithm: a.Name(),
		Init:      0,
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscovery, Next: 1},
			{Emit: sim.EmitRecruitApproxN, Observe: sim.ObserveAdopt, Next: 2},
			{Emit: sim.EmitGotoNest, Observe: sim.ObserveCount, Next: 1},
		},
		Params: sim.ProgramParams{NEstDelta: a.Delta},
	}, true
}

// State indices of the compiled lower-bound spreading process. The scalar
// SpreaderAnt's informed flag is membership in sprDone; its searcher flag is
// the sprSearch/sprWait choice, fixed at init via the program's InitSplit
// partition (ants below the split search, the rest wait) — the first compiled
// program whose ants do not all start in one state.
const (
	sprSearch = iota // ignorant searcher: search until the good nest turns up
	sprWait          // ignorant waiter: rest at home, capturable by recruiters
	sprDone          // informed: recruit for the target forever
)

// CompileBatch implements core.BatchCompilable: the §3 lower-bound spreading
// process lowered to three states around the branching ObserveInform opcode,
// which latches the target on any good-nest outcome (search arrival or
// capture — the bound's two information channels). The opcode keys on nest
// quality, so the compile declines unless the environment has exactly one
// good nest — the same restriction Build enforces, and what makes "reached a
// good nest" and "reached the target" the same event. Spreader ants never
// draw from their per-ant streams in either form, so equivalence needs no
// draw alignment at all: searchers consume the engine's environment stream in
// ant order exactly like scalar searchers.
func (s Spreader) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	if len(env.GoodNests()) != 1 {
		return sim.Program{}, false
	}
	seeds := s.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	if seeds > n {
		seeds = n
	}
	prog := sim.Program{
		Algorithm: s.Name(),
		Init:      sprSearch,
		States: []sim.ProgramState{
			sprSearch: {Emit: sim.EmitSearch, Observe: sim.ObserveInform, Next: sprDone, NextB: sprSearch},
			sprWait:   {Emit: sim.EmitRecruitBit, Arg: 0, Observe: sim.ObserveInform, Next: sprDone, NextB: sprWait},
			sprDone:   {Emit: sim.EmitRecruitBit, Arg: 1, Observe: sim.ObserveNone, Next: sprDone},
		},
	}
	if !s.SearchAll && seeds < n {
		prog.InitSplit = seeds
		prog.InitRest = sprWait
	}
	return prog, true
}

// assessHook lowers a nest.Assessor to the batch engine's perception hook.
// Exact assessment (nil or nest.ExactAssessor) lowers to a nil hook so the
// hot path skips the call entirely — nest.ExactAssessor consumes no
// randomness, so skipping it is bit-identical. Every assessor in the nest
// package is a stateless value, which is what the hook contract (concurrent
// calls from worker lanes) requires.
func assessHook(a nest.Assessor) func(float64, *rng.Source) float64 {
	if a == nil {
		return nil
	}
	if _, exact := a.(nest.ExactAssessor); exact {
		return nil
	}
	return a.Assess
}

// countHook lowers a nest.CountEstimator to the batch engine's perception
// hook, with the same exact-perception elision as assessHook.
func countHook(c nest.CountEstimator) func(int, int, *rng.Source) int {
	if c == nil {
		return nil
	}
	if _, exact := c.(nest.ExactCounter); exact {
		return nil
	}
	return c.Estimate
}

// CompileBatch implements core.BatchCompilable: the §6 noisy-perception
// extension is Algorithm 3's three-state cycle with every count and quality
// read routed through the perception hooks, consumed from the ant's own
// stream in NoisyAnt's order (count estimate first, then assessment). The
// scalar ant's active flag is the quality register — 1 exactly when the
// perceived discovery quality exceeds the classification threshold, and set
// to 1 on adoption — so the recruit draw reuses EmitRecruitPop: NoisyAnt
// clamps its probability at 1, but rng.Source's Bernoulli consumes nothing at
// p >= 1 either way, so the unclamped draw is bit-identical. The builder's
// threshold defaulting (0 → 0.5) is applied here so the compiled program
// matches what Build constructs.
func (no Noisy) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	threshold := no.Threshold
	if threshold == 0 {
		threshold = 0.5
	}
	return sim.Program{
		Algorithm: no.Name(),
		Init:      0,
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscoverNoisy, Next: 1},
			{Emit: sim.EmitRecruitPop, Observe: sim.ObserveAdopt, Next: 2},
			{Emit: sim.EmitGotoNest, Observe: sim.ObserveCountNoisy, Next: 1},
		},
		Params: sim.ProgramParams{
			Assess:    assessHook(no.Assessor),
			Count:     countHook(no.Counter),
			Threshold: threshold,
		},
	}, true
}

// State indices of the compiled quorum-transport table. The scalar QuorumAnt's
// three phases alternate search/recruit/assess; its two mode flags map onto
// the state chain instead of register columns: the active flag is the quality
// register (1 canvasser, 0 passive — exactly the Simple encoding, so the
// canvass recruit reuses EmitRecruitPop's gated draw) and the transport flag
// is membership in the quoRT/quoAT chain, whose states are Final because
// QuorumAnt.Decided reports transport. Every chain alternates a recruit state
// with an assess state, so colony-wide the recruit rounds stay aligned — all
// ants recruit in the same rounds, exactly like the scalar colony.
const (
	quoS0 = iota // round 1: global search, classify, self-calibrate threshold
	quoR         // canvass/passive recruit: Bernoulli(count/n) gated on quality
	quoA         // canvass assess: count + quorum check (promote → quoRT)
	quoRT        // transport recruit: carry Params.QuorumCarry, docility on capture
	quoAT        // transport assess: count only (checkQuorum is a no-op)
)

// quorumBatchProgram is the quorum-transport strategy's compiled state table.
func quorumBatchProgram(name string, mult float64, carry int, docility float64, assessor nest.Assessor) sim.Program {
	return sim.Program{
		Algorithm: name,
		Init:      quoS0,
		States: []sim.ProgramState{
			quoS0: {Emit: sim.EmitSearch, Observe: sim.ObserveDiscoverQuorum, Next: quoR},
			quoR:  {Emit: sim.EmitRecruitPop, Observe: sim.ObserveQuorumAdopt, Next: quoA},
			quoA:  {Emit: sim.EmitGotoNest, Observe: sim.ObserveQuorumCheck, Next: quoR, NextB: quoRT},
			quoRT: {Emit: sim.EmitRecruitTransport, Observe: sim.ObserveQuorumTransport, Next: quoAT, NextB: quoA, Final: true},
			quoAT: {Emit: sim.EmitGotoNest, Observe: sim.ObserveCount, Next: quoRT, Final: true},
		},
		Params: sim.ProgramParams{
			Assess:         assessHook(assessor),
			QuorumMult:     mult,
			QuorumCarry:    carry,
			QuorumDocility: docility,
		},
	}
}

// CompileBatch implements core.BatchCompilable: the §6 quorum/transport
// strategy lowered to the general execution path with carry-aware recruitment
// matching. The per-ant quorum threshold lives in the countT scratch register
// (disjoint from Algorithm 2's use of it), the docility Bernoulli consumes
// the captured ant's stream exactly like QuorumAnt's submit check, and the
// builder's defaulting (multiplier 1.5, carry 3, docility 0.25) and
// validation are mirrored here so invalid parameterizations surface the
// scalar builder's error instead of silently compiling. A multiplier large
// enough to overflow the 32-bit threshold register declines to compile.
func (q Quorum) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	if q.Multiplier != 0 && q.Multiplier <= 1 {
		return sim.Program{}, false
	}
	if q.Docility < 0 || q.Docility > 1 {
		return sim.Program{}, false
	}
	mult := q.Multiplier
	if mult <= 1 {
		mult = 1.5
	}
	carry := q.Carry
	if carry < 1 {
		carry = 3
	}
	docility := q.Docility
	if docility <= 0 {
		docility = 0.25
	}
	if mult*float64(n) >= math.MaxInt32 {
		return sim.Program{}, false
	}
	return quorumBatchProgram(q.Name(), mult, carry, docility, q.Assessor), true
}
