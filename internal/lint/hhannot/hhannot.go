// Package hhannot parses the //hh: comment directives that document the
// batch engine's invariant contracts. The grammar is one directive per
// comment line:
//
//	//hh:hotpath                     — per-round hot function: checked by
//	                                   hotpathalloc, fixedpoint, streamdiscipline
//	//hh:coldpath <reason>           — same-package callee of a hot function
//	                                   deliberately off the hot path
//	//hh:draws <spec> [scalar=<name>] — RNG draw contract (opcode consts,
//	                                   hot functions, guarded draw sites)
//	//hh:floatok <reason>            — fixedpoint exemption (named fallback)
//	//hh:allocok <reason>            — hotpathalloc statement exemption
//	//hh:antorder <reason>           — streamdiscipline bucket-loop exemption
//	//hh:sorted <reason>             — determinism map-range exemption
//	//hh:wallclock <reason>          — determinism time-call exemption
//
// A directive attaches to a function through its doc comment, and to a
// statement or declaration through a trailing comment on the same line or
// a comment on the immediately preceding line.
package hhannot

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annot is one parsed //hh: directive.
type Annot struct {
	Key  string // e.g. "hotpath", "draws"
	Args string // remainder of the line, trimmed
}

// parse extracts directives from a single comment's text.
func parse(text string) (Annot, bool) {
	s := strings.TrimPrefix(text, "//")
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "hh:") {
		return Annot{}, false
	}
	s = strings.TrimPrefix(s, "hh:")
	key, args, _ := strings.Cut(s, " ")
	return Annot{Key: key, Args: strings.TrimSpace(args)}, key != ""
}

// FromDoc returns the directives anywhere in a doc comment group.
func FromDoc(doc *ast.CommentGroup) []Annot {
	if doc == nil {
		return nil
	}
	var out []Annot
	for _, c := range doc.List {
		if a, ok := parse(c.Text); ok {
			out = append(out, a)
		}
	}
	return out
}

// DocHas reports whether a doc comment group carries the given directive.
func DocHas(doc *ast.CommentGroup, key string) bool {
	for _, a := range FromDoc(doc) {
		if a.Key == key {
			return true
		}
	}
	return false
}

// DocGet returns the first directive with the given key in a doc group.
func DocGet(doc *ast.CommentGroup, key string) (Annot, bool) {
	for _, a := range FromDoc(doc) {
		if a.Key == key {
			return a, true
		}
	}
	return Annot{}, false
}

// Map indexes every //hh: directive in a set of files by file and line, so
// analyzers can ask whether a statement is annotated without relying on
// go/ast comment attachment (which only covers declarations).
type Map struct {
	fset   *token.FileSet
	byLine map[string]map[int][]Annot
}

// NewMap scans all comments in files.
func NewMap(fset *token.FileSet, files []*ast.File) *Map {
	m := &Map{fset: fset, byLine: make(map[string]map[int][]Annot)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := m.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Annot)
					m.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], a)
			}
		}
	}
	return m
}

// At returns the directives attached to node: those written on the line
// where the node starts, or on the line immediately above it.
func (m *Map) At(node ast.Node) []Annot {
	pos := m.fset.Position(node.Pos())
	lines := m.byLine[pos.Filename]
	if lines == nil {
		return nil
	}
	out := append([]Annot(nil), lines[pos.Line-1]...)
	return append(out, lines[pos.Line]...)
}

// Has reports whether node carries the given directive.
func (m *Map) Has(node ast.Node, key string) bool {
	for _, a := range m.At(node) {
		if a.Key == key {
			return true
		}
	}
	return false
}

// Get returns the first directive with the given key attached to node.
func (m *Map) Get(node ast.Node, key string) (Annot, bool) {
	for _, a := range m.At(node) {
		if a.Key == key {
			return a, true
		}
	}
	return Annot{}, false
}
