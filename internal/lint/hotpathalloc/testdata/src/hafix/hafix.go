// Package hafix exercises every hotpathalloc rule: unannotated roots,
// direct allocations, append discipline, fmt calls, closures, callee
// propagation, interface boxing in calls, assignments, declarations and
// returns, and the cold-error-return exemption.
package hafix

import (
	"errors"
	"fmt"
)

type sink interface{ put(int) }

type impl struct{ n int }

func (impl) put(int) {}

// Match is a hot root left unannotated.
func Match(n int) {} // want "hot root Match must be annotated //hh:hotpath"

// MatchCarry is the annotated root; calling another hot function is fine.
//
//hh:hotpath
func MatchCarry(n int) int { return helperHot(n) }

//hh:hotpath
func helperHot(n int) int { return n + 1 }

//hh:coldpath reserve-time setup only
func helperCold() {}

func unmarked() {}

//hh:hotpath
func badAllocs(buf []int) {
	x := make([]int, 4)  // want "make allocates"
	p := new(int)        // want "new allocates"
	buf = append(buf, 1) // want "append in //hh:hotpath function may grow"
	buf = append(buf, 2) //hh:allocok within the capacity Reserve established

	m := map[int]int{} // want "map literal allocates"
	f := func() {}     // want "closure in //hh:hotpath function"
	fmt.Println(x, m)  // want "fmt.Println in //hh:hotpath function"
	helperCold()
	unmarked() // want "calls unmarked, which is neither"
	f()
	_ = p
	_ = buf
}

//hh:coldpath diagnostics helper, never on the per-round path
func consume(v any) { _ = v }

//hh:hotpath
func boxing(n int, c impl, s sink) {
	consume(n)  // want "argument boxes int into interface"
	_ = sink(c) // want "conversion to interface"
	var s2 sink
	s2 = c          // want "assignment boxes"
	var s3 sink = c // want "declaration boxes"
	_, _ = s2, s3
	s.put(n) // interface dispatch: no static callee, nothing to propagate
}

//hh:hotpath
func retBox(c impl) sink {
	return c // want "return boxes"
}

// coldAbort exercises the exemption: error-constructing returns are the
// cold abort idiom and never execute on the steady-state path.
//
//hh:hotpath
func coldAbort(bad bool) error {
	if bad {
		return fmt.Errorf("bad input %d", 1)
	}
	if !bad {
		return errors.New("also cold")
	}
	return nil
}

// coldAlloc is not hotpath: allocation rules do not apply.
func coldAlloc() []int { return make([]int, 8) }

var _ = []any{Match, MatchCarry, badAllocs, boxing, retBox, coldAbort, coldAlloc}
