package stats

import (
	"fmt"
	"math"

	"github.com/gmrl/househunt/internal/rng"
)

// BinomialTailUpper returns the Chernoff-Hoeffding upper bound on
// P[X >= k] for X ~ Binomial(n, p) via the KL-divergence form
// exp(-n * D(k/n || p)). It is used to size trial counts so that lemma-level
// statistical assertions have negligible false-failure probability.
func BinomialTailUpper(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	q := float64(k) / float64(n)
	if q <= p {
		return 1
	}
	return math.Exp(-float64(n) * klBernoulli(q, p))
}

// BinomialTailLower returns the Chernoff-Hoeffding upper bound on
// P[X <= k] for X ~ Binomial(n, p).
func BinomialTailLower(n int, p float64, k int) float64 {
	if k >= n {
		return 1
	}
	if k < 0 {
		return 0
	}
	q := float64(k) / float64(n)
	if q >= p {
		return 1
	}
	return math.Exp(-float64(n) * klBernoulli(q, p))
}

// klBernoulli computes D(q || p) for Bernoulli distributions, with the usual
// 0·log0 = 0 conventions.
func klBernoulli(q, p float64) float64 {
	if p <= 0 || p >= 1 {
		if q == p {
			return 0
		}
		return math.Inf(1)
	}
	var d float64
	if q > 0 {
		d += q * math.Log(q/p)
	}
	if q < 1 {
		d += (1 - q) * math.Log((1-q)/(1-p))
	}
	return d
}

// WilsonInterval returns the Wilson score 95% confidence interval for a
// binomial proportion with successes out of trials. Unlike the normal
// approximation it behaves sanely at the 0 and 1 boundaries, which our
// success-probability experiments regularly hit.
func WilsonInterval(successes, trials int) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	const z = 1.959963984540054
	n := float64(trials)
	pHat := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (pHat + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(pHat*(1-pHat)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// BootstrapCI returns a percentile bootstrap confidence interval for the mean
// of xs at the given confidence level (e.g. 0.95), using resamples drawn from
// src. It returns an error on empty input or an out-of-range level.
func BootstrapCI(xs []float64, level float64, resamples int, src *rng.Source) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: BootstrapCI of empty sample")
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: BootstrapCI level %v out of (0,1)", level)
	}
	if resamples <= 0 {
		resamples = 1000
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[src.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sorted := means
	insertionSortFloat64(sorted)
	alpha := (1 - level) / 2
	return Quantile(sorted, alpha), Quantile(sorted, 1-alpha), nil
}

// insertionSortFloat64 sorts in place; resample counts are small (~1e3) and
// nearly sorted inputs are common, so this avoids pulling sort.Slice's
// reflection cost into hot loops.
func insertionSortFloat64(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
