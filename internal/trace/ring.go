package trace

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Ring is a single-producer single-consumer ring of fixed-width int32
// records, the transport that carries per-round telemetry out of a batch
// engine lane without allocating. Each slot holds a (rep, round) header plus
// a payload of Width int32s; the producer's Push and the consumer's pop
// synchronize only through the atomic head/tail counters, so neither side
// takes a lock and the race detector sees a clean happens-before edge on
// every record.
//
// A Ring is built by Collector.Lane; the producing lane calls Push, the
// collector goroutine drains. Push blocks (spinning with runtime.Gosched)
// when the consumer falls a full ring behind — backpressure instead of
// records dropped or buffers grown.
type Ring struct {
	buf    []int32
	mask   uint64 // slots-1; slots is a power of two
	stride int    // int32s per slot: 2 headers + Width payload
	width  int
	notify chan<- struct{}

	head atomic.Uint64 // next slot the consumer will read
	tail atomic.Uint64 // next slot the producer will write
}

// Width returns the payload width in int32s each record carries.
func (r *Ring) Width() int { return r.width }

// Push publishes one record, blocking while the ring is full. row must have
// length Width (extra elements are ignored, missing ones leave zeroes).
// Safe for exactly one producer goroutine.
//
//hh:hotpath
func (r *Ring) Push(rep, round int32, row []int32) {
	tail := r.tail.Load()
	for tail-r.head.Load() > r.mask {
		// Consumer is a full ring behind: yield rather than drop or grow.
		runtime.Gosched()
	}
	base := int(tail&r.mask) * r.stride
	r.buf[base] = rep
	r.buf[base+1] = round
	copy(r.buf[base+2:base+r.stride], row)
	r.tail.Store(tail + 1)
	select {
	case r.notify <- struct{}{}:
	default: // a wakeup is already pending; the collector will re-scan
	}
}

// pop moves the next record into row (length ≥ Width) and returns its
// headers. Safe for exactly one consumer goroutine; allocation-free.
func (r *Ring) pop(row []int32) (rep, round int32, ok bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return 0, 0, false
	}
	base := int(head&r.mask) * r.stride
	rep = r.buf[base]
	round = r.buf[base+1]
	copy(row[:r.width], r.buf[base+2:base+r.stride])
	r.head.Store(head + 1)
	return rep, round, true
}

// Sink consumes records drained from the lane rings. Record is called from
// the single collector goroutine, in push order per lane (lanes interleave
// arbitrarily). row is scratch reused across calls — copy it to retain it.
// A Sink that must stay allocation-free (for the AllocsPerRun telemetry
// pins) simply folds row into preallocated state.
type Sink interface {
	Record(lane int, rep, round int32, row []int32)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(lane int, rep, round int32, row []int32)

// Record implements Sink.
func (f SinkFunc) Record(lane int, rep, round int32, row []int32) { f(lane, rep, round, row) }

// Collector owns one Ring per producer lane and a single goroutine that
// drains them all into a Sink. Construct with NewCollector, hand each
// producer its Ring via Lane, and Close once every producer has finished
// pushing; Close drains whatever remains before returning, so no record is
// lost.
type Collector struct {
	width  int
	slots  int
	sink   Sink
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
	row    []int32 // drain scratch, reused across every Record call

	mu     sync.Mutex
	rings  []*Ring
	closed bool
}

// NewCollector starts a collector whose rings carry width-int32 payloads in
// slotsPerLane slots (rounded up to a power of two, minimum 2). The drain
// goroutine starts immediately and runs until Close.
func NewCollector(width, slotsPerLane int, sink Sink) (*Collector, error) {
	if width <= 0 {
		return nil, fmt.Errorf("trace: collector payload width must be positive, got %d", width)
	}
	if slotsPerLane <= 0 {
		return nil, fmt.Errorf("trace: collector slots per lane must be positive, got %d", slotsPerLane)
	}
	if sink == nil {
		return nil, fmt.Errorf("trace: collector sink must not be nil")
	}
	slots := 2
	for slots < slotsPerLane {
		slots *= 2
	}
	c := &Collector{
		width:  width,
		slots:  slots,
		sink:   sink,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		row:    make([]int32, width),
	}
	go c.drain()
	return c, nil
}

// Width returns the payload width (in int32s) of the collector's rings.
func (c *Collector) Width() int { return c.width }

// Lane returns the ring for the given lane index, creating it on first use.
// Each ring must have exactly one producer; lanes are typically registered
// once at worker startup.
func (c *Collector) Lane(lane int) *Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		panic("trace: Lane called on closed Collector")
	}
	for lane >= len(c.rings) {
		c.rings = append(c.rings, nil)
	}
	if c.rings[lane] == nil {
		c.rings[lane] = &Ring{
			buf:    make([]int32, c.slots*(c.width+2)),
			mask:   uint64(c.slots - 1),
			stride: c.width + 2,
			width:  c.width,
			notify: c.notify,
		}
	}
	return c.rings[lane]
}

// drain is the collector goroutine: wake on notify, sweep every ring dry,
// repeat. The cap-1 notify channel cannot lose a wakeup — a producer's send
// only falls to the default branch when a wakeup is already pending, and the
// record was published (tail stored) before the send, so the pending wakeup's
// sweep observes it.
func (c *Collector) drain() {
	defer close(c.done)
	for {
		select {
		case <-c.notify:
			c.sweep()
		case <-c.stop:
			c.sweep()
			return
		}
	}
}

// sweep pops every available record from every ring into the sink. It holds
// the registration mutex, which only contends with Lane at worker startup.
func (c *Collector) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for lane, r := range c.rings {
		if r == nil {
			continue
		}
		for {
			rep, round, ok := r.pop(c.row)
			if !ok {
				break
			}
			c.sink.Record(lane, rep, round, c.row)
		}
	}
}

// Close stops the collector after a final sweep and waits for the drain
// goroutine to exit. All producers must have finished pushing before Close
// is called; records pushed before Close are guaranteed delivered. Close is
// idempotent.
func (c *Collector) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
}
