package stats

import (
	"math"
	"sort"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

func sketchEqual(t *testing.T, a, b *QuantileSketch) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("N mismatch: %d vs %d", a.N(), b.N())
	}
	if a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("min/max mismatch: [%g,%g] vs [%g,%g]", a.Min(), a.Max(), b.Min(), b.Max())
	}
	if a.N() == 0 {
		return
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if av, bv := a.Quantile(q), b.Quantile(q); av != bv {
			t.Fatalf("Quantile(%g) mismatch: %g vs %g", q, av, bv)
		}
	}
}

// TestSketchAccuracy checks every quantile against the sorted-slice oracle
// within the sketch's relative-error guarantee, allowing a ±1 rank slack for
// ties at bucket boundaries.
func TestSketchAccuracy(t *testing.T) {
	const alpha = 0.01
	src := rng.New(0xA11CE)
	samples := make([]float64, 5000)
	for i := range samples {
		// Convergence-time-shaped data: positive, right-skewed.
		samples[i] = math.Floor(1 + 400*math.Exp(2*float64(src.Intn(1000))/1000.0-1))
	}
	s := MustQuantileSketch(alpha)
	for _, x := range samples {
		s.Add(x)
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)

	for q := 0.0; q <= 1.0; q += 0.005 {
		got := s.Quantile(q)
		// Accept a match against any sample within ±1 rank of the target:
		// the sketch uses closest-rank semantics while Quantile interpolates.
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos)) - 1
		hi := int(math.Ceil(pos)) + 1
		if lo < 0 {
			lo = 0
		}
		if hi >= len(sorted) {
			hi = len(sorted) - 1
		}
		ok := false
		for r := lo; r <= hi; r++ {
			want := sorted[r]
			if math.Abs(got-want) <= alpha*want+1e-12 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("Quantile(%g) = %g not within %g%% of any sample in rank window [%g, %g]",
				q, got, alpha*100, sorted[lo], sorted[hi])
		}
	}
	if s.N() != uint64(len(samples)) {
		t.Errorf("N = %d, want %d", s.N(), len(samples))
	}
	if s.Min() != sorted[0] || s.Max() != sorted[len(sorted)-1] {
		t.Errorf("min/max = %g/%g, want %g/%g", s.Min(), s.Max(), sorted[0], sorted[len(sorted)-1])
	}
}

// TestSketchMergeAssociative pins that merging shards in any order and any
// grouping yields exactly the same sketch as adding every observation to one
// sketch — the property the per-lane collector reduction relies on.
func TestSketchMergeAssociative(t *testing.T) {
	const alpha = 0.02
	src := rng.New(0xBEEF)
	shards := make([][]float64, 7)
	var all []float64
	for i := range shards {
		n := 50 + src.Intn(200)
		shard := make([]float64, n)
		for j := range shard {
			shard[j] = float64(1 + src.Intn(100000))
		}
		shards[i] = shard
		all = append(all, shard...)
	}

	build := func(xs []float64) *QuantileSketch {
		s := MustQuantileSketch(alpha)
		for _, x := range xs {
			s.Add(x)
		}
		return s
	}
	reference := build(all)

	// Left fold in shard order.
	left := MustQuantileSketch(alpha)
	for _, sh := range shards {
		if err := left.Merge(build(sh)); err != nil {
			t.Fatal(err)
		}
	}
	sketchEqual(t, reference, left)

	// Right fold (reverse order).
	right := MustQuantileSketch(alpha)
	for i := len(shards) - 1; i >= 0; i-- {
		if err := right.Merge(build(shards[i])); err != nil {
			t.Fatal(err)
		}
	}
	sketchEqual(t, reference, right)

	// Balanced tree grouping.
	var tree func(lo, hi int) *QuantileSketch
	tree = func(lo, hi int) *QuantileSketch {
		if hi-lo == 1 {
			return build(shards[lo])
		}
		mid := (lo + hi) / 2
		l, r := tree(lo, mid), tree(mid, hi)
		if err := l.Merge(r); err != nil {
			t.Fatal(err)
		}
		return l
	}
	sketchEqual(t, reference, tree(0, len(shards)))

	// Merging empties is the identity.
	withEmpty := build(all)
	if err := withEmpty.Merge(MustQuantileSketch(alpha)); err != nil {
		t.Fatal(err)
	}
	if err := withEmpty.Merge(nil); err != nil {
		t.Fatal(err)
	}
	sketchEqual(t, reference, withEmpty)
}

func TestSketchMergeRejectsMixedAccuracy(t *testing.T) {
	a := MustQuantileSketch(0.01)
	b := MustQuantileSketch(0.02)
	b.Add(3)
	if err := a.Merge(b); err == nil {
		t.Fatal("expected accuracy-mismatch error, got nil")
	}
}

func TestSketchZeroAndNegative(t *testing.T) {
	s := MustQuantileSketch(0.01)
	s.Add(0)
	s.Add(-5)
	s.Add(10)
	if s.N() != 3 {
		t.Fatalf("N = %d, want 3", s.N())
	}
	if s.Min() != -5 || s.Max() != 10 {
		t.Fatalf("min/max = %g/%g, want -5/10", s.Min(), s.Max())
	}
	if got := s.Quantile(0); got != -5 {
		t.Errorf("Quantile(0) = %g, want -5", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %g, want 10", got)
	}
}

func TestSketchEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sketch Quantile")
		}
	}()
	MustQuantileSketch(0.01).Quantile(0.5)
}

func TestNewQuantileSketchRejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewQuantileSketch(alpha); err == nil {
			t.Errorf("NewQuantileSketch(%g): expected error", alpha)
		}
	}
}
