package algo

import (
	"math"
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/sim"
)

func TestSpreaderInformsEveryone(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 0, 1, 0})
	for _, n := range []int{32, 256} {
		res := runAlgo(t, Spreader{Seeds: 1}, n, env, 3, 0)
		if !res.Solved {
			t.Fatalf("n=%d: rumor never reached everyone", n)
		}
		if res.Winner != 3 {
			t.Fatalf("n=%d: spread to %d, want the unique good nest 3", n, res.Winner)
		}
	}
}

func TestSpreaderLogarithmicGrowth(t *testing.T) {
	t.Parallel()
	// Theorem 3.2's shape: spreading time should grow roughly additively as n
	// doubles. Compare n=64 and n=4096 (64x): the ratio of rounds must be far
	// below 64 and consistent with a logarithmic law.
	env := sim.MustEnvironment([]float64{1, 0})
	avg := func(n int) float64 {
		const reps = 8
		total := 0
		for seed := uint64(1); seed <= reps; seed++ {
			res := runAlgo(t, Spreader{SearchAll: true}, n, env, seed, 0)
			if !res.Solved {
				t.Fatalf("n=%d seed=%d unsolved", n, seed)
			}
			total += res.Rounds
		}
		return float64(total) / reps
	}
	small, large := avg(64), avg(4096)
	if ratio := large / small; ratio > 4 {
		t.Fatalf("spreading scaled by %.1fx over a 64x colony: not logarithmic (%.1f → %.1f)",
			ratio, small, large)
	}
}

func TestSpreaderNeedsSingleGoodNest(t *testing.T) {
	t.Parallel()
	twoGood := sim.MustEnvironment([]float64{1, 1})
	if _, err := (Spreader{}).Build(10, twoGood, testSrc(1)); err == nil {
		t.Fatal("two good nests accepted for the lower-bound process")
	}
	if _, err := (Spreader{}).Build(0, sim.MustEnvironment([]float64{1}), testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
}

func TestSpreaderSeedsClamped(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	agents, err := (Spreader{Seeds: 99}).Build(5, env, testSrc(2))
	if err != nil || len(agents) != 5 {
		t.Fatalf("Build with excess seeds: %v, %d agents", err, len(agents))
	}
}

func TestSpreaderAntInformsOnTargetContact(t *testing.T) {
	t.Parallel()
	a := NewSpreaderAnt(testSrc(3), 2, false)
	if a.Informed() {
		t.Fatal("fresh ant informed")
	}
	if act := a.Act(1); act.Kind != sim.ActionRecruit || act.Active {
		t.Fatalf("ignorant waiter act = %+v", act)
	}
	a.Observe(1, sim.Outcome{Nest: sim.Home}) // not captured
	if a.Informed() {
		t.Fatal("informed without contact")
	}
	a.Observe(2, sim.Outcome{Nest: 2, Recruited: true})
	if !a.Informed() {
		t.Fatal("capture by informed recruiter did not inform")
	}
	if act := a.Act(3); act.Kind != sim.ActionRecruit || !act.Active || act.Nest != 2 {
		t.Fatalf("informed ant act = %+v, want recruit(1, 2)", act)
	}
}

func TestAdaptiveConverges(t *testing.T) {
	t.Parallel()
	env, err := sim.Uniform(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		res := runAlgo(t, Adaptive{}, 256, env, seed, 0)
		if !res.Solved {
			t.Fatalf("seed %d: adaptive unsolved", seed)
		}
		if !env.Good(res.Winner) {
			t.Fatalf("seed %d: adaptive picked bad nest %d", seed, res.Winner)
		}
	}
}

func TestAdaptiveFasterThanSimpleAtLargeK(t *testing.T) {
	t.Parallel()
	// The §6 extension's raison d'être: beat O(k log n) when k is large.
	const n, reps = 512, 6
	env, err := sim.Uniform(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	var adTotal, simTotal int
	for seed := uint64(1); seed <= reps; seed++ {
		ad := runAlgo(t, Adaptive{}, n, env, seed, 0)
		si := runAlgo(t, Simple{}, n, env, seed, 0)
		if !ad.Solved || !si.Solved {
			t.Fatalf("seed %d: adaptive=%v simple=%v", seed, ad.Solved, si.Solved)
		}
		adTotal += ad.Rounds
		simTotal += si.Rounds
	}
	if adTotal >= simTotal {
		t.Fatalf("adaptive (%d total rounds) not faster than simple (%d) at k=32", adTotal, simTotal)
	}
}

func TestAdaptiveProbabilitySchedule(t *testing.T) {
	t.Parallel()
	// The recruit probability must (a) start near count/n, (b) grow as phases
	// pass, and (c) stay strictly below 1 and increasing in count.
	a := NewAdaptiveAnt(1024, testSrc(4), 4, 8)
	a.count = 64 // n/k for k=16
	early := a.recruitProbability()
	if math.Abs(early-64.0/(64+1024)) > 1e-9 {
		t.Fatalf("early probability %v, want count/(count+n)", early)
	}
	a.recruitPhases = 40 // far past the floor
	late := a.recruitProbability()
	if late <= early {
		t.Fatalf("probability did not grow: early %v late %v", early, late)
	}
	floorA := 1024.0 / 8
	want := 64 / (64 + floorA)
	if math.Abs(late-want) > 1e-9 {
		t.Fatalf("late probability %v, want floored %v", late, want)
	}
	bigger := *a
	bigger.count = 128
	if bigger.recruitProbability() <= a.recruitProbability() {
		t.Fatal("probability not increasing in count")
	}
	if p := bigger.recruitProbability(); p >= 1 {
		t.Fatalf("probability %v reached 1", p)
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	t.Parallel()
	a := NewAdaptiveAnt(100, testSrc(5), 0, 0)
	if a.tau != 2 || a.floorDiv != 4 {
		t.Fatalf("defaults: tau=%d floorDiv=%v", a.tau, a.floorDiv)
	}
}

func TestQualityAwarePrefersBestNest(t *testing.T) {
	t.Parallel()
	// Non-binary qualities: 0.9 vs 0.3 vs 0.2. The quality-weighted urn race
	// should pick the best nest in a strong majority of runs.
	env := sim.MustEnvironment([]float64{0.3, 0.9, 0.2})
	best := 0
	const reps = 12
	for seed := uint64(1); seed <= reps; seed++ {
		res := runAlgo(t, QualityAware{}, 256, env, seed, 0)
		if !res.Solved {
			t.Fatalf("seed %d unsolved", seed)
		}
		if res.Winner == 2 {
			best++
		}
	}
	if best < reps*2/3 {
		t.Fatalf("best nest won only %d/%d runs", best, reps)
	}
}

func TestQualityAwareBinaryReducesToGoodChoice(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1, 0})
	res := runAlgo(t, QualityAware{}, 128, env, 2, 0)
	if !res.Solved || res.Winner != 2 {
		t.Fatalf("binary environment: %+v", res)
	}
}

func TestQualityAntRepricesAfterCapture(t *testing.T) {
	t.Parallel()
	a := NewQualityAnt(100, testSrc(6))
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 10, Quality: 0.8})
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 2, Count: 0, Recruited: true})
	if a.quality != 0 {
		t.Fatalf("captured ant's quality = %v, want conservative 0", a.quality)
	}
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 2, Count: 12, Quality: 0.6})
	if a.quality != 0.6 {
		t.Fatalf("revisit did not reprice: quality = %v", a.quality)
	}
}

func TestNoisyExactPerceptionMatchesSimple(t *testing.T) {
	t.Parallel()
	// With exact perception the noisy ant's behaviour — including its RNG
	// draw sequence — is identical to SimpleAnt, so whole executions must
	// coincide round for round.
	env := sim.MustEnvironment([]float64{1, 0, 1})
	const n = 96
	for seed := uint64(1); seed <= 3; seed++ {
		plain, err := core.Run(Simple{}, core.RunConfig{N: n, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		noisy, err := core.Run(Noisy{}, core.RunConfig{N: n, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Rounds != noisy.Rounds || plain.Winner != noisy.Winner {
			t.Fatalf("seed %d: exact-noisy diverged from simple: %+v vs %+v", seed, plain, noisy)
		}
	}
}

func TestNoisyToleratesModerateCountNoise(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	a := Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.3}}
	solved := 0
	const reps = 8
	for seed := uint64(1); seed <= reps; seed++ {
		res := runAlgo(t, a, 192, env, seed, 0)
		if res.Solved && env.Good(res.Winner) {
			solved++
		}
	}
	if solved < reps-1 {
		t.Fatalf("solved only %d/%d with sigma=0.3 count noise", solved, reps)
	}
}

func TestNoisyToleratesAssessmentFlips(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	a := Noisy{Assessor: nest.FlipAssessor{P: 0.1}}
	solved := 0
	const reps = 8
	for seed := uint64(1); seed <= reps; seed++ {
		res := runAlgo(t, a, 192, env, seed, 0)
		if res.Solved && env.Good(res.Winner) {
			solved++
		}
	}
	if solved < reps/2 {
		t.Fatalf("solved only %d/%d with 10%% assessment flips", solved, reps)
	}
}

func TestNoisyBuilderValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := (Noisy{}).Build(0, env, testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := NewNoisyAnt(10, testSrc(1), nil, nest.ExactAssessor{}, 0.5); err == nil {
		t.Fatal("nil counter accepted")
	}
	if (Noisy{}).Name() == "" {
		t.Fatal("empty name")
	}
}

func TestPFSMEquivalentToSimple(t *testing.T) {
	t.Parallel()
	// The declarative PFSM encoding and the hand-written SimpleAnt must
	// produce identical executions for equal seeds.
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	const n = 128
	for seed := uint64(1); seed <= 3; seed++ {
		hand, err := core.Run(Simple{}, core.RunConfig{N: n, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		pfsm, err := core.Run(SimplePFSM{}, core.RunConfig{N: n, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if hand.Rounds != pfsm.Rounds || hand.Winner != pfsm.Winner {
			t.Fatalf("seed %d: PFSM diverged: hand %+v, pfsm %+v", seed, hand, pfsm)
		}
	}
}

func TestPFSMBuilderValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := (SimplePFSM{}).Build(0, env, testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := (SimplePFSM{}).Build(2, sim.Environment{}, testSrc(1)); err == nil {
		t.Fatal("empty environment accepted")
	}
}
