package core

import (
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/trace"
)

// trespasserAnt violates the §2 go precondition on purpose: it heads for
// nest 1 without ever having visited it. Under strict validation the engine
// must reject the run; with strict disabled it commits immediately.
type trespasserAnt struct{}

func (trespasserAnt) Act(int) sim.Action            { return sim.Goto(1) }
func (trespasserAnt) Observe(int, sim.Outcome)      {}
func (trespasserAnt) Committed() (sim.NestID, bool) { return 1, true }

type trespasserAlgorithm struct{}

func (trespasserAlgorithm) Name() string { return "trespasser" }

func (trespasserAlgorithm) Build(n int, _ sim.Environment, _ *rng.Source) ([]sim.Agent, error) {
	agents := make([]sim.Agent, n)
	for i := range agents {
		agents[i] = trespasserAnt{}
	}
	return agents, nil
}

// TestRunTracedRejectsSizeChangingWrapper is the regression test for the
// missing post-Wrap size check: a wrapper that shrinks the colony must fail
// with a clean error, exactly as Run does, not corrupt downstream indexing.
func TestRunTracedRejectsSizeChangingWrapper(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	shrink := WrapFunc(func(a []sim.Agent) ([]sim.Agent, error) { return a[:len(a)-1], nil })

	tr := trace.New(1)
	_, err := RunTraced(oracleAlgorithm{}, RunConfig{N: 8, Env: env, Trace: tr, Wrap: shrink})
	if err == nil || !strings.Contains(err.Error(), "changed colony size") {
		t.Fatalf("RunTraced accepted a size-changing wrapper: %v", err)
	}

	// Run's behaviour is the reference; the two runners must agree.
	_, err = Run(oracleAlgorithm{}, RunConfig{N: 8, Env: env, Wrap: shrink})
	if err == nil || !strings.Contains(err.Error(), "changed colony size") {
		t.Fatalf("Run accepted a size-changing wrapper: %v", err)
	}
}

// TestRunTracedStrictPropagation is the regression test for the dropped
// cfg.Strict: traced runs must honour a disabled strict mode (the protocol
// violation goes unpunished) and enforce it when left at the default.
func TestRunTracedStrictPropagation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})

	// Default (strict on): the unvisited go must poison the run.
	tr := trace.New(1)
	_, err := RunTraced(trespasserAlgorithm{}, RunConfig{N: 4, Env: env, Trace: tr})
	if err == nil || !strings.Contains(err.Error(), "never visited") {
		t.Fatalf("strict traced run accepted a protocol violation: %v", err)
	}

	// Strict disabled: the same colony commits to nest 1 on round one.
	off := false
	tr2 := trace.New(1)
	res, err := RunTraced(trespasserAlgorithm{}, RunConfig{N: 4, Env: env, Trace: tr2, Strict: &off})
	if err != nil {
		t.Fatalf("non-strict traced run failed: %v", err)
	}
	if !res.Solved || res.Winner != 1 || res.Rounds != 1 {
		t.Fatalf("non-strict traced run did not converge immediately: %+v", res)
	}
	if tr2.Len() != 1 {
		t.Fatalf("trace recorded %d rounds, want 1", tr2.Len())
	}

	// The scalar runner must agree on both paths.
	if _, err := Run(trespasserAlgorithm{}, RunConfig{N: 4, Env: env}); err == nil {
		t.Fatal("strict Run accepted a protocol violation")
	}
	res, err = Run(trespasserAlgorithm{}, RunConfig{N: 4, Env: env, Strict: &off})
	if err != nil || !res.Solved {
		t.Fatalf("non-strict Run: %v %+v", err, res)
	}
}
