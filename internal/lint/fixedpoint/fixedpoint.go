// Package fixedpoint defines an analyzer that keeps //hh:hotpath code
// free of floating-point arithmetic. The batch engine's recruit/emit
// loops run on fixed-point rng.Threshold kernels precisely so that the
// per-round path executes zero float operations below batchTableMaxN;
// this analyzer is the static twin of that design decision.
//
// Flagged inside //hh:hotpath functions: binary + - * / with a float32 or
// float64 operand, the compound assignments += -= *= /=, and non-constant
// conversions to or from a float type. Comparisons, plain assignments,
// and constant-folded conversions are allowed.
//
// The named fallback paths (float draws above the table ceiling, the
// float→fixed threshold compiler) are exempted with //hh:floatok <why>
// on the function or on the enclosing statement/case clause.
package fixedpoint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/gmrl/househunt/internal/lint/analysis"
	"github.com/gmrl/househunt/internal/lint/hhannot"
)

var Analyzer = &analysis.Analyzer{
	Name: "fixedpoint",
	Doc:  "forbid float arithmetic and conversions in //hh:hotpath code outside //hh:floatok fallbacks",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	annots := hhannot.NewMap(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hhannot.DocHas(fd.Doc, "hotpath") || hhannot.DocHas(fd.Doc, "floatok") {
				continue
			}
			checkBody(pass, annots, fd.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, annots *hhannot.Map, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, *ast.CaseClause:
			if annots.Has(n, "floatok") {
				return false
			}
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if isFloat(pass, n.X) || isFloat(pass, n.Y) {
					pass.Reportf(n.OpPos, "float arithmetic (%s) in //hh:hotpath code; use fixed-point rng.Threshold or annotate //hh:floatok <why>", n.Op)
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && isFloat(pass, n.Lhs[0]) {
					pass.Reportf(n.TokPos, "float arithmetic (%s) in //hh:hotpath code; use fixed-point rng.Threshold or annotate //hh:floatok <why>", n.Tok)
				}
			}
		case *ast.CallExpr:
			if conv, from, to := floatConversion(pass, n); conv {
				pass.Reportf(n.Pos(), "float conversion (%s → %s) in //hh:hotpath code; annotate //hh:floatok <why> if this is a named fallback", from, to)
			}
		}
		return true
	})
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	return isFloatType(pass.TypesInfo.TypeOf(e))
}

func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// floatConversion reports a non-constant conversion where the source or
// destination is a float type. Constant conversions fold at compile time
// and cost nothing at run time.
func floatConversion(pass *analysis.Pass, call *ast.CallExpr) (bool, string, string) {
	if len(call.Args) != 1 {
		return false, "", ""
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false, "", ""
	}
	if rv, ok := pass.TypesInfo.Types[ast.Expr(call)]; ok && rv.Value != nil {
		return false, "", ""
	}
	src := pass.TypesInfo.TypeOf(call.Args[0])
	dst := tv.Type
	if src == nil || (!isFloatType(src) && !isFloatType(dst)) {
		return false, "", ""
	}
	return true, src.String(), dst.String()
}
