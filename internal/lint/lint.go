// Package lint assembles the hhlint analyzer suite and the driver that
// runs it over Go package patterns. The suite statically enforces the
// batch engine's invariants: RNG stream discipline (streamdiscipline),
// zero-allocation hot paths (hotpathalloc), fixed-point purity
// (fixedpoint), and replicate determinism (determinism). See README.md
// for the annotation contracts the analyzers check.
package lint

import (
	"fmt"
	"io"
	"sort"

	"github.com/gmrl/househunt/internal/lint/analysis"
	"github.com/gmrl/househunt/internal/lint/determinism"
	"github.com/gmrl/househunt/internal/lint/fixedpoint"
	"github.com/gmrl/househunt/internal/lint/hotpathalloc"
	"github.com/gmrl/househunt/internal/lint/load"
	"github.com/gmrl/househunt/internal/lint/streamdiscipline"
)

// Analyzers returns the full hhlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		streamdiscipline.Analyzer,
		hotpathalloc.Analyzer,
		fixedpoint.Analyzer,
		determinism.Analyzer,
	}
}

// Run loads patterns relative to dir, applies every analyzer to every
// matched package, and writes file:line:col: message [analyzer] lines to
// out in a stable order. It returns the number of diagnostics.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, out io.Writer) (int, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	type line struct {
		file     string
		row, col int
		analyzer string
		message  string
	}
	var lines []line
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				lines = append(lines, line{pos.Filename, pos.Line, pos.Column, a.Name, d.Message})
			}
			if err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		a, b := lines[i], lines[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.row != b.row {
			return a.row < b.row
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, l := range lines {
		fmt.Fprintf(out, "%s:%d:%d: %s [%s]\n", l.file, l.row, l.col, l.message, l.analyzer)
	}
	return len(lines), nil
}
