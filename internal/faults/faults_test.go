package faults

import (
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

func TestNewCrashAntValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewCrashAnt(nil, 5); err == nil {
		t.Fatal("nil inner accepted")
	}
	inner := algo.NewSimpleAnt(10, rng.New(1))
	if _, err := NewCrashAnt(inner, 0); err == nil {
		t.Fatal("crash round 0 accepted")
	}
}

func TestCrashAntTransparentUntilCrash(t *testing.T) {
	t.Parallel()
	inner := algo.NewSimpleAnt(10, rng.New(2))
	c, err := NewCrashAnt(inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Faulty() {
		t.Fatal("faulty before crash round")
	}
	if act := c.Act(1); act.Kind != sim.ActionSearch {
		t.Fatalf("pre-crash act = %+v, want delegated search", act)
	}
	c.Observe(1, sim.Outcome{Nest: 2, Count: 1, Quality: 1})
	if nestID, ok := c.Committed(); !ok || nestID != 2 {
		t.Fatalf("pre-crash commitment = %v %v", nestID, ok)
	}
	c.Act(2)
	c.Observe(2, sim.Outcome{Nest: 2})
	// Round 3: crash fires.
	act := c.Act(3)
	if !c.Faulty() {
		t.Fatal("not faulty at crash round")
	}
	if act.Kind != sim.ActionGo || act.Nest != 2 {
		t.Fatalf("crashed act = %+v, want go(last nest 2)", act)
	}
	if _, ok := c.Committed(); ok {
		t.Fatal("crashed ant still reports commitment")
	}
}

func TestCrashAntWithoutKnownNest(t *testing.T) {
	t.Parallel()
	inner := algo.NewSimpleAnt(10, rng.New(3))
	c, err := NewCrashAnt(inner, 1) // crashes before ever searching
	if err != nil {
		t.Fatal(err)
	}
	act := c.Act(1)
	if act.Kind != sim.ActionRecruit || act.Active || act.Nest != sim.Home {
		t.Fatalf("nest-less crash act = %+v, want recruit(0, home)", act)
	}
	// If a recruiter drags the corpse somewhere, it stays there.
	c.Observe(1, sim.Outcome{Nest: 4, Recruited: true})
	if act := c.Act(2); act.Kind != sim.ActionGo || act.Nest != 4 {
		t.Fatalf("dragged corpse act = %+v, want go(4)", act)
	}
}

func TestByzantineAntHuntsBadNestThenLures(t *testing.T) {
	t.Parallel()
	b := NewByzantineAnt(rng.New(4))
	if !b.Faulty() {
		t.Fatal("byzantine ant not faulty")
	}
	if act := b.Act(1); act.Kind != sim.ActionSearch {
		t.Fatalf("hunting act = %+v", act)
	}
	b.Observe(1, sim.Outcome{Nest: 1, Quality: 1}) // good nest: keep hunting
	if act := b.Act(2); act.Kind != sim.ActionSearch {
		t.Fatalf("act after good nest = %+v, want search", act)
	}
	b.Observe(2, sim.Outcome{Nest: 3, Quality: 0}) // found a bad nest
	act := b.Act(3)
	if act.Kind != sim.ActionRecruit || !act.Active || act.Nest != 3 {
		t.Fatalf("luring act = %+v, want recruit(1, 3)", act)
	}
}

func TestPlanValidate(t *testing.T) {
	t.Parallel()
	if err := (Plan{CrashFraction: -0.1}).Validate(); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if err := (Plan{CrashFraction: 0.6, ByzantineFraction: 0.6}).Validate(); err == nil {
		t.Fatal("over-unity fractions accepted")
	}
	if err := (Plan{CrashFraction: 0.1, ByzantineFraction: 0.1}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestSimpleSurvivesCrashFaults(t *testing.T) {
	t.Parallel()
	// §6 claim: a small crash fraction must not stop the correct ants from
	// converging on a good nest.
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	plan := Plan{CrashFraction: 0.1, CrashWindow: 40}
	solved := 0
	const reps = 6
	for seed := uint64(1); seed <= reps; seed++ {
		res, err := core.Run(algo.Simple{}, core.RunConfig{
			N: 200, Env: env, Seed: seed,
			Wrap: core.WrapFunc(plan.Apply(rng.New(seed).Split(77))),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Solved && env.Good(res.Winner) {
			solved++
		}
	}
	if solved < reps-1 {
		t.Fatalf("solved only %d/%d under 10%% crash faults", solved, reps)
	}
}

func TestSimpleSurvivesFewByzantine(t *testing.T) {
	t.Parallel()
	// Byzantine lures kidnap honest ants to a bad nest; with a small
	// adversary the colony must still reach a good-nest supermajority. Full
	// unanimity can flicker (kidnaps continue forever), so this test checks
	// the census directly over a fixed horizon.
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	const n = 300
	okRuns := 0
	const reps = 6
	for seed := uint64(1); seed <= reps; seed++ {
		plan := Plan{ByzantineFraction: 0.05}
		res, err := core.Run(algo.Simple{}, core.RunConfig{
			N: n, Env: env, Seed: seed, MaxRounds: 1200,
			Wrap: core.WrapFunc(plan.Apply(rng.New(seed).Split(78))),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c := res.FinalCensus
		bestGood := 0
		for i := 1; i < len(c.Committed); i++ {
			if env.Good(sim.NestID(i)) && c.Committed[i] > bestGood {
				bestGood = c.Committed[i]
			}
		}
		if float64(bestGood) >= 0.9*float64(c.Total) {
			okRuns++
		}
	}
	if okRuns < reps-1 {
		t.Fatalf("good-nest supermajority reached in only %d/%d byzantine runs", okRuns, reps)
	}
}

func TestPlanApplyCountsVictims(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	agents, err := (algo.Simple{}).Build(100, env, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{CrashFraction: 0.2, ByzantineFraction: 0.1, CrashWindow: 10}
	wrapped, err := plan.Apply(rng.New(9))(agents)
	if err != nil {
		t.Fatal(err)
	}
	crashes, byz := 0, 0
	for _, a := range wrapped {
		switch a.(type) {
		case *CrashAnt:
			crashes++
		case *ByzantineAnt:
			byz++
		}
	}
	if crashes != 20 || byz != 10 {
		t.Fatalf("victims: %d crash, %d byzantine; want 20, 10", crashes, byz)
	}
}

func TestPlanApplyRejectsInvalid(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	agents, err := (algo.Simple{}).Build(10, env, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Plan{CrashFraction: 2}).Apply(rng.New(1))(agents); err == nil {
		t.Fatal("invalid plan applied")
	}
}
