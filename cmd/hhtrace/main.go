// Command hhtrace runs a traced house-hunting execution and exports the
// per-round history as CSV or JSON, for plotting population dynamics with
// external tools.
//
// Examples:
//
//	hhtrace -n 512 -k 4 -good 2 -algo simple -format csv > run.csv
//	hhtrace -n 512 -k 4 -good 4 -algo optimal -format json > run.json
//
// With -live the tool tails a running batch sweep instead of replaying one
// colony: -reps replicates run on the batch engine with a streaming telemetry
// observer attached, and per-round census records are written as CSV the
// moment the collector drains them from the worker lanes — long before the
// sweep finishes. A distribution summary (streamed Welford moments plus a
// quantile sketch over convergence times) lands on stderr at the end:
//
//	hhtrace -live -reps 64 -n 512 -k 4 -good 2 -algo simple > sweep.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/gmrl/househunt"
	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/experiment"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/stats"
	"github.com/gmrl/househunt/internal/trace"
	"github.com/gmrl/househunt/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hhtrace:", err)
		os.Exit(1)
	}
}

// run executes one traced colony (or a live sweep) and exports it; split for
// testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hhtrace", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 256, "colony size")
		k        = fs.Int("k", 4, "number of candidate nests")
		good     = fs.Int("good", 1, "number of good nests")
		algoName = fs.String("algo", "simple", "algorithm name")
		seed     = fs.Uint64("seed", 1, "random seed (replicate i of a -live sweep uses seed+i)")
		rounds   = fs.Int("rounds", 0, "round budget (0 = automatic)")
		format   = fs.String("format", "csv", "output format: csv or json (-live supports csv only)")
		live     = fs.Bool("live", false, "tail a batch sweep: stream per-round census records as they arrive instead of replaying one colony")
		reps     = fs.Int("reps", 16, "replicates for a -live sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *live {
		return runLive(*n, *k, *good, *algoName, *format, *seed, *rounds, *reps, out)
	}

	res, err := househunt.Run(
		househunt.WithColonySize(*n),
		househunt.WithBinaryNests(*k, *good),
		househunt.WithAlgorithm(househunt.Algorithm(*algoName)),
		househunt.WithSeed(*seed),
		househunt.WithMaxRounds(*rounds),
		househunt.WithTracing(),
	)
	if err != nil {
		return err
	}
	switch *format {
	case "csv":
		if err := res.WriteCSV(out); err != nil {
			return err
		}
	case "json":
		if err := res.WriteJSON(out); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	fmt.Fprintln(os.Stderr, res.Summary())
	return nil
}

// liveAlgorithm maps -algo names to batch-compilable algorithms with the
// library's default parameters — the same inventory hhsim lists.
func liveAlgorithm(name string) (core.Algorithm, error) {
	switch name {
	case "simple":
		return algo.Simple{}, nil
	case "simple-pfsm":
		return algo.SimplePFSM{}, nil
	case "optimal":
		return algo.Optimal{}, nil
	case "optimal-literal":
		return algo.Optimal{Literal: true}, nil
	case "adaptive":
		return algo.Adaptive{}, nil
	case "quality":
		return algo.QualityAware{}, nil
	case "quorum":
		return algo.Quorum{}, nil
	case "approxn":
		return algo.ApproxN{}, nil
	case "spreader":
		return algo.Spreader{}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want optimal, optimal-literal, simple, simple-pfsm, adaptive, quality, quorum, approxn or spreader)", name)
}

// liveSink writes each drained record as one CSV row and folds the
// replicate-end records into streamed distribution statistics. All calls
// arrive on the single collector goroutine; results are read after
// Collector.Close.
type liveSink struct {
	w    *bufio.Writer
	k    int
	qual []float64 // quality by nest id (index 0 = home)
	err  error     // first write error; subsequent records are dropped

	reps    int
	solved  int
	rounds  stats.Welford
	quality stats.Welford
	roundsQ *stats.QuantileSketch
}

func (s *liveSink) Record(_ int, rep, round int32, row []int32) {
	if round == sim.StreamEndRound {
		solved, rounds, winner, _ := sim.DecodeStreamEnd(row)
		s.reps++
		if solved {
			s.solved++
			s.rounds.Add(float64(rounds))
			s.roundsQ.Add(float64(rounds))
			s.quality.Add(s.qual[winner])
		}
		return
	}
	if s.err != nil {
		return
	}
	if _, err := fmt.Fprintf(s.w, "%d,%d", rep, round); err != nil {
		s.err = err
		return
	}
	for _, v := range row {
		if _, err := fmt.Fprintf(s.w, ",%d", v); err != nil {
			s.err = err
			return
		}
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
	}
}

// runLive streams a batch sweep: collector → observer → batch engine, with
// the sink above emitting CSV rows as the collector drains the lane rings.
func runLive(n, k, good int, algoName, format string, seed uint64, rounds, reps int, out io.Writer) error {
	if format != "csv" {
		return fmt.Errorf("live mode streams csv only, got -format %q", format)
	}
	if reps <= 0 {
		return fmt.Errorf("live mode needs -reps > 0, got %d", reps)
	}
	a, err := liveAlgorithm(algoName)
	if err != nil {
		return err
	}
	env, err := workload.Binary(k, good)
	if err != nil {
		return err
	}
	cfg := core.RunConfig{N: n, Env: env, MaxRounds: rounds}
	if _, ok, reason := core.CompileForBatch(a, cfg); !ok {
		return fmt.Errorf("config is not batch-eligible (%s); live mode streams from the batch engine", reason)
	}

	// Header and writer are set up before the sweep starts; from then on only
	// the collector goroutine writes, until Close drains the final records.
	w := bufio.NewWriter(out)
	if _, err := fmt.Fprint(w, "rep,round"); err != nil {
		return err
	}
	for i := 0; i <= k; i++ {
		fmt.Fprintf(w, ",pop%d", i)
	}
	for i := 0; i <= k; i++ {
		fmt.Fprintf(w, ",committed%d", i)
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}

	sink := &liveSink{w: w, k: k, qual: env.Qualities(), roundsQ: stats.MustQuantileSketch(experiment.DefaultSketchAlpha)}
	coll, err := trace.NewCollector(sim.StreamRowWidth(k), 256, sink)
	if err != nil {
		return err
	}
	defer coll.Close()
	obs, err := sim.NewStreamObserver(coll, k)
	if err != nil {
		return err
	}

	seeds := make([]uint64, reps)
	for i := range seeds {
		seeds[i] = seed + uint64(i)
	}
	if _, ok, err := core.RunBatchObserved(a, cfg, seeds, obs); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("batch engine declined a config that passed eligibility — this is a bug")
	}
	coll.Close() // drain the tail before flushing and summarizing
	if sink.err != nil {
		return fmt.Errorf("writing stream: %w", sink.err)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "live sweep: algo=%s n=%d k=%d good=%d solved=%d/%d (%.1f%%)\n",
		a.Name(), n, k, good, sink.solved, sink.reps, 100*float64(sink.solved)/float64(reps))
	if sink.solved > 0 {
		lo, hi := sink.rounds.CI95()
		fmt.Fprintf(os.Stderr, "rounds: mean %.1f (95%% CI %.1f–%.1f), min %.0f, max %.0f, p50 %.0f, p90 %.0f, p99 %.0f (sketch ±%.1f%%)\n",
			sink.rounds.Mean(), lo, hi, sink.rounds.Min(), sink.rounds.Max(),
			sink.roundsQ.Quantile(0.5), sink.roundsQ.Quantile(0.9), sink.roundsQ.Quantile(0.99),
			100*sink.roundsQ.Alpha())
		fmt.Fprintf(os.Stderr, "winner quality: mean %.3f\n", sink.quality.Mean())
	}
	return nil
}
