// Emigration walks through the biological scenario that motivates the paper:
// a Temnothorax colony's rock crevice is destroyed and the colony must find,
// agree on, and move to a new home.
//
// The candidate sites are described physically (cavity area, entrance width,
// darkness) and scored with the attribute priorities reported in the biology
// literature (darkness dominates, then entrance size, then area). The colony
// runs the quality-aware algorithm and the example narrates the emigration:
// discovery, competition, quorum, and transport, with an ASCII plot of the
// commitment dynamics.
//
//	go run ./examples/emigration
package main

import (
	"fmt"
	"log"

	"github.com/gmrl/househunt"
)

// site pairs a nickname with physical attributes (all normalized to [0,1]).
type site struct {
	name     string
	area     float64 // larger is better
	entrance float64 // smaller is better
	darkness float64 // larger is better
}

func main() {
	// Four candidate crevices around the destroyed nest. "oak hollow" is the
	// clear winner on the attributes ants weigh most.
	sites := []site{
		{name: "sunlit crack", area: 0.8, entrance: 0.9, darkness: 0.1},
		{name: "oak hollow", area: 0.7, entrance: 0.2, darkness: 0.9},
		{name: "shallow chip", area: 0.2, entrance: 0.5, darkness: 0.4},
		{name: "gravel gap", area: 0.5, entrance: 0.6, darkness: 0.5},
	}

	// Weighted quality per Healey & Pratt: darkness 0.5, entrance 0.3, area 0.2.
	qualities := make([]float64, len(sites))
	fmt.Println("scouting report (quality = 0.2*area + 0.3*(1-entrance) + 0.5*darkness):")
	for i, s := range sites {
		qualities[i] = 0.2*s.area + 0.3*(1-s.entrance) + 0.5*s.darkness
		fmt.Printf("  nest %d %-14s area=%.1f entrance=%.1f darkness=%.1f  -> quality %.2f\n",
			i+1, s.name, s.area, s.entrance, s.darkness, qualities[i])
	}

	const colony = 384
	fmt.Printf("\nthe home nest collapsed; %d ants begin searching...\n\n", colony)

	res, err := househunt.Run(
		househunt.WithColonySize(colony),
		househunt.WithNests(qualities...),
		househunt.WithAlgorithm(househunt.AlgorithmQualityAware),
		househunt.WithSeed(7),
		househunt.WithTracing(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Narrate the emigration from the trace: discovery, first majority
	// (quorum-like threshold), unanimity.
	history := res.History()
	quorum := colony / 2
	firstMajority := -1
	for _, snap := range history {
		if firstMajority < 0 {
			for nestID := 1; nestID < len(snap.Commitments); nestID++ {
				if snap.Commitments[nestID] >= quorum {
					firstMajority = snap.Round
					fmt.Printf("round %3d: nest %d (%s) passes a quorum of %d committed ants\n",
						snap.Round, nestID, sites[nestID-1].name, quorum)
				}
			}
		}
	}
	if res.Solved {
		fmt.Printf("round %3d: unanimity — every ant is committed to nest %d (%s)\n",
			res.Rounds, res.Winner, sites[res.Winner-1].name)
		fmt.Printf("\nchosen home: %q with quality %.2f (best available: %.2f)\n\n",
			sites[res.Winner-1].name, res.WinnerQuality, maxOf(qualities))
	} else {
		fmt.Println("the colony failed to reach consensus within the round budget")
	}

	fmt.Println(res.RenderPlot(72, 14))
	fmt.Println("(the rising series is the winning site absorbing the colony;")
	fmt.Println(" falling series are competitors draining as their ants are recruited away)")
}

// maxOf returns the maximum of a non-empty slice.
func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
