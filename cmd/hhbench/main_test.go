package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(out.String())
	if len(ids) != 27 || ids[0] != "E1" {
		t.Fatalf("listed ids = %v", ids)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1", "-scale", "small"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SHAPE HOLDS") {
		t.Fatalf("output missing verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Lemma 2.1") {
		t.Fatalf("output missing claim:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "gigantic"}, &out); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-engine", "warp"}, &out); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run([]string{"-json"}, &out); err == nil {
		t.Fatal("-json without -batchbench accepted")
	}
	if err := run([]string{"-out", "x.json"}, &out); err == nil {
		t.Fatal("-out without -batchbench accepted")
	}
	if err := run([]string{"-batchbench", "-out", "x.json"}, &out); err == nil {
		t.Fatal("-out without -json accepted")
	}
	if err := run([]string{"-baseline", "x.json"}, &out); err == nil {
		t.Fatal("-baseline without -batchbench accepted")
	}
}

// TestBatchBenchJSONRecords runs a shrunken batch benchmark and checks the
// machine-readable BENCH records: one per (algorithm, engine) cell, with the
// batch cells carrying a positive speedup. The published sizing is exercised
// by hand via `hhbench -batchbench`; this pins the record schema.
func TestBatchBenchJSONRecords(t *testing.T) {
	var out bytes.Buffer
	bb := batchBenchConfig{n: 64, k: 4, good: 2, reps: 4, maxRounds: 2000, minTime: time.Millisecond, json: true}
	if err := runBatchBench(&out, bb); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&out)
	var recs []benchRecord
	for dec.More() {
		var rec benchRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 19 {
		t.Fatalf("got %d BENCH records, want 19:\n%+v", len(recs), recs)
	}
	wantCells := []struct{ algorithm, engine string }{
		{"simple", "scalar"}, {"simple", "batch"}, {"simple", "batch+obs"},
		{"optimal", "scalar"}, {"optimal", "batch"},
		{"adaptive", "scalar"}, {"adaptive", "batch"},
		{"quality", "scalar"}, {"quality", "batch"},
		{"approxn(δ=0.2)", "scalar"}, {"approxn(δ=0.2)", "batch"},
		{"quorum(M=1.5)", "scalar"}, {"quorum(M=1.5)", "batch"},
		{"noisy[relative(σ=0.1),exact]", "scalar"}, {"noisy[relative(σ=0.1),exact]", "batch"},
		{"simple+crash10", "scalar"}, {"simple+crash10", "batch"},
		{"simple+targeted", "scalar"}, {"simple+targeted", "batch"},
	}
	for i, rec := range recs {
		if rec.Type != "BENCH" {
			t.Errorf("record %d: type %q, want BENCH", i, rec.Type)
		}
		if rec.Algorithm != wantCells[i].algorithm || rec.Engine != wantCells[i].engine {
			t.Errorf("record %d: cell %s/%s, want %s/%s",
				i, rec.Algorithm, rec.Engine, wantCells[i].algorithm, wantCells[i].engine)
		}
		if rec.N != bb.n || rec.K != bb.k || rec.Reps != bb.reps {
			t.Errorf("record %d: sizing %+v does not match config", i, rec)
		}
		if rec.AntStepsPerSec <= 0 || rec.MsPerSweep <= 0 {
			t.Errorf("record %d: non-positive throughput: %+v", i, rec)
		}
		isBatch := rec.Engine == "batch" || rec.Engine == "batch+obs"
		if isBatch && rec.Speedup <= 0 {
			t.Errorf("record %d: batch cell missing speedup: %+v", i, rec)
		}
		if !isBatch && rec.Speedup != 0 {
			t.Errorf("record %d: scalar cell carries a speedup: %+v", i, rec)
		}
	}
}

// TestBatchBenchBigCellRecords runs a shrunken large-colony cell and pins its
// record schema: one batch-only sweep record plus one "+scale" row per worker
// budget, all carrying positive throughput, the scale rows carrying their
// worker count. The bit-identity of the scaling rows is asserted inside
// runBigCell itself — a divergent multi-worker run fails the bench.
func TestBatchBenchBigCellRecords(t *testing.T) {
	var out bytes.Buffer
	bb := batchBenchConfig{
		json: true,
		bigN: 4096, bigK: 4, bigGood: 2, bigReps: 2, maxRounds: 2000,
		scaleWorkers: []int{1, 2, 7},
	}
	recs, err := runBigCell(&out, bb)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+len(bb.scaleWorkers) {
		t.Fatalf("got %d records, want %d: %+v", len(recs), 1+len(bb.scaleWorkers), recs)
	}
	if recs[0].Algorithm != "simple" || recs[0].Engine != "batch" || recs[0].Reps != bb.bigReps || recs[0].Workers != 0 {
		t.Errorf("sweep record %+v has the wrong shape", recs[0])
	}
	for i, w := range bb.scaleWorkers {
		rec := recs[1+i]
		if rec.Algorithm != "simple+scale" || rec.Reps != 1 || rec.Workers != w {
			t.Errorf("scale record %d: %+v, want workers=%d over 1 replicate", i, rec, w)
		}
	}
	for i, rec := range recs {
		if rec.N != bb.bigN || rec.K != bb.bigK || rec.MsPerSweep <= 0 || rec.AntStepsPerSec <= 0 {
			t.Errorf("record %d: bad sizing or timing: %+v", i, rec)
		}
	}
}

// TestRunEngineScalar forces the scalar replicate loop; the experiment must
// still regenerate and pass (the batch path is bit-identical, so either
// engine yields the same table).
func TestRunEngineScalar(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "scalar", "-exp", "E2", "-scale", "small"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SHAPE HOLDS") {
		t.Fatalf("output missing verdict:\n%s", out.String())
	}
}

// TestBatchBenchOutAndBaseline exercises the perf artifact round trip: a
// shrunken benchmark writes its BENCH records via bb.out; a second run
// compared against that fresh baseline must pass the gate (same machine,
// moments apart), and a doctored baseline with impossibly fast batch cells
// must fail it. A baseline sharing no cells errors too.
func TestBatchBenchOutAndBaseline(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "BENCH_test.json")
	bb := batchBenchConfig{n: 64, k: 4, good: 2, reps: 4, maxRounds: 2000, minTime: time.Millisecond, json: true, out: artifact}
	var out bytes.Buffer
	if err := runBatchBench(&out, bb); err != nil {
		t.Fatal(err)
	}
	records, err := readBenchRecords(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("artifact holds no records")
	}
	batchCells := 0
	for _, rec := range records {
		if rec.Engine == "batch" {
			batchCells++
			if rec.MsPerSweep <= 0 {
				t.Fatalf("batch record without timing: %+v", rec)
			}
		}
	}
	if batchCells == 0 {
		t.Fatal("artifact holds no batch cells")
	}

	// Same-machine re-run against the fresh baseline passes with the default
	// 30% tolerance relaxed to 3x: the shrunken cells run only milliseconds,
	// so scheduler noise dominates them in a way the real 1s cells avoid.
	check := bb
	check.out = ""
	check.baseline = artifact
	check.tolerance = 2.0
	out.Reset()
	if err := runBatchBench(&out, check); err != nil {
		t.Fatalf("fresh baseline comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "baseline check passed") {
		t.Fatalf("comparison output missing pass line:\n%s", out.String())
	}

	// A doctored baseline claiming the batch cells once ran 1000x faster
	// must trip the gate.
	doctored := filepath.Join(dir, "BENCH_doctored.json")
	for i := range records {
		if records[i].Engine == "batch" {
			records[i].MsPerSweep /= 1000
		}
	}
	if err := writeBenchRecords(doctored, records); err != nil {
		t.Fatal(err)
	}
	check.baseline = doctored
	check.tolerance = 0.30
	out.Reset()
	if err := runBatchBench(&out, check); err == nil {
		t.Fatalf("doctored baseline accepted:\n%s", out.String())
	} else if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}

	// A baseline with no overlapping cells is a configuration error.
	foreign := filepath.Join(dir, "BENCH_foreign.json")
	if err := writeBenchRecords(foreign, []benchRecord{{Type: "BENCH", Engine: "batch", Algorithm: "nope", N: 1, K: 1, Reps: 1, MsPerSweep: 1}}); err != nil {
		t.Fatal(err)
	}
	check.baseline = foreign
	if err := runBatchBench(&out, check); err == nil {
		t.Fatal("disjoint baseline accepted")
	}
}

// TestProfileFlags smoke-tests -cpuprofile/-memprofile: a tiny run must
// produce non-empty profile files.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
