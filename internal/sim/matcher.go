package sim

import (
	"github.com/gmrl/househunt/internal/rng"
)

// Matcher computes one round's recruitment assignment over the recruiting
// set R (the ants that called recruit this round). Implementations work in
// slot space: slot t ∈ [0, n) is the t-th recruiting ant in engine order; the
// engine maps slots back to ant indices.
//
// Match must fill:
//
//   - capturedBy[t] = slot of the recruiter that captured slot t, or -1 if t
//     was not captured. A self-pair is capturedBy[t] == t.
//   - succeeded[s]  = true iff slot s actively recruited and captured a slot.
//
// active[t] reports whether slot t called recruit(1, ·). Implementations may
// use scratch space owned by the matcher; the engine never calls Match
// concurrently on one matcher instance.
type Matcher interface {
	Match(n int, active []bool, src *rng.Source, capturedBy []int, succeeded []bool)
	// Name identifies the matcher in benchmarks and ablation tables.
	Name() string
}

// CarryMatcher is implemented by matchers that support the §6 transport
// extension: an active slot t may capture up to carry[t] ants in one round.
// carry may be nil, meaning capacity 1 everywhere, in which case the process
// must be identical to Match (including its randomness).
type CarryMatcher interface {
	Matcher
	MatchCarry(n int, active []bool, carry []int, src *rng.Source, capturedBy []int, succeeded []bool)
}

// AlgorithmOneMatcher is the paper's Algorithm 1, reproduced exactly:
//
//	M ← ∅  (a set of ordered pairs)
//	P ← uniform random permutation of R
//	for i = 1..|P|:
//	    if a_P(i) ∈ S (active) and (·, a_P(i)) ∉ M:
//	        a' ← uniform random ant from R        // may be a_P(i) itself
//	        if (a', ·) ∉ M and (·, a') ∉ M:
//	            M ← M ∪ {(a_P(i), a')}
//
// An ant captured earlier in the permutation loses its chance to recruit; a
// drawn ant that already recruited or was already captured blocks the pair
// (no retry). Self-pairs are possible and count as a success whose captured
// ant learns its own nest, matching the paper's remark that a lone ant "is
// forced to recruit itself".
//
// The zero value is ready to use; the matcher grows internal scratch buffers
// as needed and is not safe for concurrent use.
type AlgorithmOneMatcher struct {
	perm []int
}

var (
	_ Matcher      = (*AlgorithmOneMatcher)(nil)
	_ CarryMatcher = (*AlgorithmOneMatcher)(nil)
)

// Name implements Matcher.
func (m *AlgorithmOneMatcher) Name() string { return "algorithm1" }

// Match implements Matcher with the paper's sequential pairing process.
func (m *AlgorithmOneMatcher) Match(n int, active []bool, src *rng.Source, capturedBy []int, succeeded []bool) {
	m.MatchCarry(n, active, nil, src, capturedBy, succeeded)
}

// MatchCarry implements CarryMatcher: the paper's process generalized so slot
// a draws up to carry[a] targets (each draw independent and lost if blocked,
// exactly like the single draw of Algorithm 1). With carry nil or all-ones
// the process — including its random draw sequence — is exactly Algorithm 1.
func (m *AlgorithmOneMatcher) MatchCarry(n int, active []bool, carry []int, src *rng.Source, capturedBy []int, succeeded []bool) {
	for t := 0; t < n; t++ {
		capturedBy[t] = -1
		succeeded[t] = false
	}
	if n == 0 {
		return
	}
	if cap(m.perm) < n {
		m.perm = make([]int, n)
	}
	perm := m.perm[:n]
	src.PermInto(perm)

	for _, a := range perm {
		if !active[a] || capturedBy[a] >= 0 {
			continue
		}
		draws := 1
		if carry != nil && carry[a] > 1 {
			draws = carry[a]
		}
		for d := 0; d < draws; d++ {
			target := src.Intn(n)
			if succeeded[target] || capturedBy[target] >= 0 {
				continue
			}
			capturedBy[target] = a
			succeeded[a] = true
			if target == a {
				// A self-pair consumes the recruiter itself; it cannot keep
				// carrying others, matching the lone-ant semantics of §3.
				break
			}
		}
	}
}

// SimultaneousMatcher is an ablation model ("other natural models" per the
// paper's §2 remark): every active ant draws a target simultaneously; each
// ant drawn by one or more recruiters is captured by one of them chosen
// uniformly at random. Unlike Algorithm 1, a recruiter can simultaneously be
// captured and succeed, and no permutation priority exists.
type SimultaneousMatcher struct {
	picks []int
}

var _ Matcher = (*SimultaneousMatcher)(nil)

// Name implements Matcher.
func (m *SimultaneousMatcher) Name() string { return "simultaneous" }

// Match implements Matcher.
func (m *SimultaneousMatcher) Match(n int, active []bool, src *rng.Source, capturedBy []int, succeeded []bool) {
	for t := 0; t < n; t++ {
		capturedBy[t] = -1
		succeeded[t] = false
	}
	if n == 0 {
		return
	}
	if cap(m.picks) < n {
		m.picks = make([]int, n)
	}
	picks := m.picks[:n]
	for t := 0; t < n; t++ {
		picks[t] = -1
		if active[t] {
			picks[t] = src.Intn(n)
		}
	}
	// Reservoir-sample one capturer per target among its pickers, so each
	// contender wins with equal probability without extra allocations.
	seen := make([]int, n) // seen[target] = number of pickers observed so far
	for s := 0; s < n; s++ {
		target := picks[s]
		if target < 0 {
			continue
		}
		seen[target]++
		if seen[target] == 1 || src.Intn(seen[target]) == 0 {
			capturedBy[target] = s
		}
	}
	for t := 0; t < n; t++ {
		if capturedBy[t] >= 0 {
			succeeded[capturedBy[t]] = true
		}
	}
}

// RendezvousMatcher is a second ablation model: the recruiting set is
// shuffled and scanned once; each still-unmatched active ant captures the
// nearest following unmatched ant in the shuffled order (wrapping around).
// This "speed dating" process has no random target draw at all, only the
// permutation, and produces near-perfect matchings — an upper bound on how
// efficient pairing could plausibly be.
type RendezvousMatcher struct {
	perm []int
}

var _ Matcher = (*RendezvousMatcher)(nil)

// Name implements Matcher.
func (m *RendezvousMatcher) Name() string { return "rendezvous" }

// Match implements Matcher.
func (m *RendezvousMatcher) Match(n int, active []bool, src *rng.Source, capturedBy []int, succeeded []bool) {
	for t := 0; t < n; t++ {
		capturedBy[t] = -1
		succeeded[t] = false
	}
	if n == 0 {
		return
	}
	if cap(m.perm) < n {
		m.perm = make([]int, n)
	}
	perm := m.perm[:n]
	src.PermInto(perm)

	for i := 0; i < n; i++ {
		a := perm[i]
		if !active[a] || capturedBy[a] >= 0 || succeeded[a] {
			continue
		}
		for j := 1; j < n; j++ {
			b := perm[(i+j)%n]
			if capturedBy[b] >= 0 || succeeded[b] {
				continue
			}
			capturedBy[b] = a
			succeeded[a] = true
			break
		}
	}
}

// Matchers returns one instance of every matcher model, the paper's first,
// for ablation sweeps.
func Matchers() []Matcher {
	return []Matcher{
		&AlgorithmOneMatcher{},
		&SimultaneousMatcher{},
		&RendezvousMatcher{},
	}
}
