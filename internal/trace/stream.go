package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVWriter streams trace rounds as CSV rows the moment they arrive, without
// holding the trace in memory — the export half of the telemetry path: a
// collector sink can write each drained record straight to disk. The column
// layout (round,pop0..popK[,committed0..committedK]) and the error shapes
// match Trace.WriteCSV exactly; Trace.WriteCSV is itself implemented on top
// of this writer.
//
// Whether commitment columns are present must be declared up front
// (streaming cannot scan ahead the way the whole-trace exporter could);
// rounds without a census then render zeros in those columns.
type CSVWriter struct {
	w           io.Writer
	numNests    int
	commitments bool
	headerDone  bool
	b           strings.Builder
}

// NewCSVWriter returns a writer for an environment with numNests candidate
// nests. When commitments is true every row carries commitment columns.
func NewCSVWriter(w io.Writer, numNests int, commitments bool) *CSVWriter {
	return &CSVWriter{w: w, numNests: numNests, commitments: commitments}
}

// writeHeader emits the column header once.
func (cw *CSVWriter) writeHeader() error {
	cw.b.Reset()
	cw.b.WriteString("round")
	for i := 0; i <= cw.numNests; i++ {
		fmt.Fprintf(&cw.b, ",pop%d", i)
	}
	if cw.commitments {
		for i := 0; i <= cw.numNests; i++ {
			fmt.Fprintf(&cw.b, ",committed%d", i)
		}
	}
	cw.b.WriteByte('\n')
	cw.headerDone = true
	if _, err := io.WriteString(cw.w, cw.b.String()); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	return nil
}

// WriteRound emits one row, flushing it to the underlying writer before
// returning so a failure is reported against the failing round, not
// discovered at close time.
func (cw *CSVWriter) WriteRound(r Round) error {
	if len(r.Populations) != cw.numNests+1 {
		return fmt.Errorf("trace: CSV row %d populations length %d, want %d", r.Round, len(r.Populations), cw.numNests+1)
	}
	if r.Commitments != nil && len(r.Commitments) != cw.numNests+1 {
		return fmt.Errorf("trace: CSV row %d commitments length %d, want %d", r.Round, len(r.Commitments), cw.numNests+1)
	}
	if !cw.headerDone {
		if err := cw.writeHeader(); err != nil {
			return err
		}
	}
	cw.b.Reset()
	fmt.Fprintf(&cw.b, "%d", r.Round)
	for _, p := range r.Populations {
		fmt.Fprintf(&cw.b, ",%d", p)
	}
	if cw.commitments {
		for i := 0; i <= cw.numNests; i++ {
			v := 0
			if r.Commitments != nil {
				v = r.Commitments[i]
			}
			fmt.Fprintf(&cw.b, ",%d", v)
		}
	}
	cw.b.WriteByte('\n')
	if _, err := io.WriteString(cw.w, cw.b.String()); err != nil {
		return fmt.Errorf("trace: writing CSV row %d: %w", r.Round, err)
	}
	return nil
}

// Close finishes the stream. A zero-round stream still gets its header, so
// the output is always a well-formed CSV document.
func (cw *CSVWriter) Close() error {
	if !cw.headerDone {
		return cw.writeHeader()
	}
	return nil
}

// ReadCSV parses a document written by CSVWriter / Trace.WriteCSV back into
// a Trace. The header determines the nest count and whether commitment
// columns are present.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading CSV header: %w", err)
		}
		return nil, fmt.Errorf("trace: reading CSV: empty document")
	}
	cols := strings.Split(sc.Text(), ",")
	if len(cols) < 2 || cols[0] != "round" {
		return nil, fmt.Errorf("trace: reading CSV: malformed header %q", sc.Text())
	}
	numNests := -1 // highest popN seen; nest 0 is home
	commitCols := 0
	for i, c := range cols[1:] {
		switch {
		case strings.HasPrefix(c, "pop") && commitCols == 0:
			n, err := strconv.Atoi(c[len("pop"):])
			if err != nil || n != i {
				return nil, fmt.Errorf("trace: reading CSV: unexpected header column %q", c)
			}
			numNests = n
		case strings.HasPrefix(c, "committed"):
			n, err := strconv.Atoi(c[len("committed"):])
			if err != nil || n != commitCols {
				return nil, fmt.Errorf("trace: reading CSV: unexpected header column %q", c)
			}
			commitCols++
		default:
			return nil, fmt.Errorf("trace: reading CSV: unexpected header column %q", c)
		}
	}
	if numNests < 0 {
		return nil, fmt.Errorf("trace: reading CSV: header has no population columns")
	}
	hasCommit := commitCols > 0
	if hasCommit && commitCols != numNests+1 {
		return nil, fmt.Errorf("trace: reading CSV: %d commitment columns for %d nests", commitCols, numNests)
	}

	t := New(numNests)
	wantFields := 1 + (numNests + 1)
	if hasCommit {
		wantFields += numNests + 1
	}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != wantFields {
			return nil, fmt.Errorf("trace: reading CSV line %d: %d fields, want %d", line, len(fields), wantFields)
		}
		vals := make([]int, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("trace: reading CSV line %d: field %q: %w", line, f, err)
			}
			vals[i] = v
		}
		rec := Round{Round: vals[0], Populations: vals[1 : numNests+2]}
		if hasCommit {
			rec.Commitments = vals[numNests+2:]
		}
		t.rounds = append(t.rounds, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	return t, nil
}

// JSONWriter streams a trace as the same single JSON document
// Trace.WriteJSON produces — byte-identical, including the trailing newline
// — but emits each round as it arrives instead of buffering the run.
// Trace.WriteJSON is implemented on top of this writer.
//
// Use: WriteRound per round, then Close (optionally with events) exactly
// once. A stream with zero rounds encodes "rounds":null, matching the
// encoding of a Trace that never recorded a round.
type JSONWriter struct {
	w        io.Writer
	numNests int
	rounds   int
	closed   bool
}

// NewJSONWriter returns a writer for an environment with numNests candidate
// nests.
func NewJSONWriter(w io.Writer, numNests int) *JSONWriter {
	return &JSONWriter{w: w, numNests: numNests}
}

// emit writes raw bytes with the package's uniform JSON error shape.
func (jw *JSONWriter) emit(s string) error {
	if _, err := io.WriteString(jw.w, s); err != nil {
		return fmt.Errorf("trace: encoding JSON: %w", err)
	}
	return nil
}

// WriteRound appends one round to the document's rounds array.
func (jw *JSONWriter) WriteRound(r Round) error {
	if jw.closed {
		return fmt.Errorf("trace: JSONWriter: WriteRound after Close")
	}
	if len(r.Populations) != jw.numNests+1 {
		return fmt.Errorf("trace: JSON round %d populations length %d, want %d", r.Round, len(r.Populations), jw.numNests+1)
	}
	if r.Commitments != nil && len(r.Commitments) != jw.numNests+1 {
		return fmt.Errorf("trace: JSON round %d commitments length %d, want %d", r.Round, len(r.Commitments), jw.numNests+1)
	}
	sep := ","
	if jw.rounds == 0 {
		if err := jw.emit(`{"num_nests":` + strconv.Itoa(jw.numNests) + `,"rounds":[`); err != nil {
			return err
		}
		sep = ""
	}
	enc, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("trace: encoding JSON: %w", err)
	}
	jw.rounds++
	if err := jw.emit(sep + string(enc)); err != nil {
		return err
	}
	return nil
}

// Close terminates the document, appending events when non-empty, and writes
// the trailing newline. It must be called exactly once.
func (jw *JSONWriter) Close(events []Event) error {
	if jw.closed {
		return fmt.Errorf("trace: JSONWriter: Close called twice")
	}
	jw.closed = true
	if jw.rounds == 0 {
		if err := jw.emit(`{"num_nests":` + strconv.Itoa(jw.numNests) + `,"rounds":null`); err != nil {
			return err
		}
	} else if err := jw.emit("]"); err != nil {
		return err
	}
	if len(events) > 0 {
		if err := jw.emit(`,"events":[`); err != nil {
			return err
		}
		for i, e := range events {
			enc, err := json.Marshal(e)
			if err != nil {
				return fmt.Errorf("trace: encoding JSON: %w", err)
			}
			sep := ","
			if i == 0 {
				sep = ""
			}
			if err := jw.emit(sep + string(enc)); err != nil {
				return err
			}
		}
		if err := jw.emit("]"); err != nil {
			return err
		}
	}
	return jw.emit("}\n")
}
