package agent

import (
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// twoState builds a minimal searcher: search once, then loop going to the
// found nest forever.
func twoState(t *testing.T) *Machine {
	t.Helper()
	spec := map[StateID]Spec{
		"search": {
			Emit: func(m *Machine, _ int) sim.Action { return sim.Search() },
			Next: func(m *Machine, _ int, out sim.Outcome) StateID {
				m.Regs().Nest = out.Nest
				m.Regs().Quality = out.Quality
				return "sit"
			},
		},
		"sit": {
			Emit: func(m *Machine, _ int) sim.Action { return sim.Goto(m.Regs().Nest) },
			Next: func(m *Machine, _ int, out sim.Outcome) StateID {
				m.Regs().Count = out.Count
				return "sit"
			},
		},
	}
	m, err := NewMachine("search", spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMachineValidation(t *testing.T) {
	t.Parallel()
	emit := func(m *Machine, _ int) sim.Action { return sim.Search() }
	next := func(m *Machine, _ int, _ sim.Outcome) StateID { return "a" }
	good := map[StateID]Spec{"a": {Emit: emit, Next: next}}

	if _, err := NewMachine("", good, rng.New(1)); err == nil {
		t.Fatal("empty initial state accepted")
	}
	if _, err := NewMachine("a", good, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewMachine("missing", good, rng.New(1)); err == nil {
		t.Fatal("unknown initial state accepted")
	}
	if _, err := NewMachine("a", map[StateID]Spec{"a": {Emit: emit}}, rng.New(1)); err == nil {
		t.Fatal("missing Next accepted")
	}
	if _, err := NewMachine("a", map[StateID]Spec{"a": {Next: next}}, rng.New(1)); err == nil {
		t.Fatal("missing Emit accepted")
	}
	if _, err := NewMachine("a", map[StateID]Spec{"a": {Emit: emit, Next: next}, "": {Emit: emit, Next: next}}, rng.New(1)); err == nil {
		t.Fatal("empty state id accepted")
	}
}

func TestMachineRunsInEngine(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 1})
	machines := []*Machine{twoState(t), twoState(t), twoState(t)}
	agents := make([]sim.Agent, len(machines))
	for i, m := range machines {
		agents[i] = m
	}
	e, err := sim.New(env, agents, sim.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range machines {
		if m.Err() != nil {
			t.Fatalf("machine %d erred: %v", i, m.Err())
		}
		if m.State() != "sit" {
			t.Fatalf("machine %d in state %q, want sit", i, m.State())
		}
		nest, ok := m.Committed()
		if !ok || nest == sim.Home {
			t.Fatalf("machine %d not committed: %v %v", i, nest, ok)
		}
		if m.Regs().Count <= 0 {
			t.Fatalf("machine %d count register %d", i, m.Regs().Count)
		}
	}
}

func TestMachineErrorOnUndeclaredTransition(t *testing.T) {
	t.Parallel()
	spec := map[StateID]Spec{
		"a": {
			Emit: func(m *Machine, _ int) sim.Action { return sim.Search() },
			Next: func(m *Machine, _ int, _ sim.Outcome) StateID { return "ghost" },
		},
	}
	m, err := NewMachine("a", spec, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	m.Act(1)
	m.Observe(1, sim.Outcome{Nest: 1})
	if m.Err() == nil {
		t.Fatal("transition to undeclared state not reported")
	}
	if !strings.Contains(m.Err().Error(), "ghost") {
		t.Fatalf("error does not name the bad state: %v", m.Err())
	}
	// After the error, the machine parks passively instead of misbehaving.
	act := m.Act(2)
	if act.Kind != sim.ActionRecruit || act.Active {
		t.Fatalf("erred machine acted %+v, want passive recruit", act)
	}
	m.Observe(2, sim.Outcome{})
	if m.State() != "a" {
		t.Fatal("erred machine kept transitioning")
	}
}

func TestMachineErrorOnEmptyTransition(t *testing.T) {
	t.Parallel()
	spec := map[StateID]Spec{
		"a": {
			Emit: func(m *Machine, _ int) sim.Action { return sim.Search() },
			Next: func(m *Machine, _ int, _ sim.Outcome) StateID { return "" },
		},
	}
	m, err := NewMachine("a", spec, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	m.Act(1)
	m.Observe(1, sim.Outcome{})
	if m.Err() == nil {
		t.Fatal("empty transition not reported")
	}
}

func TestMachineCommittedUncommitted(t *testing.T) {
	t.Parallel()
	m := twoState(t)
	if _, ok := m.Committed(); ok {
		t.Fatal("fresh machine reports commitment")
	}
}

func TestMachineRandomness(t *testing.T) {
	t.Parallel()
	// Two machines with different sources should diverge; equal sources agree.
	build := func(seed uint64) *Machine {
		spec := map[StateID]Spec{
			"flip": {
				Emit: func(m *Machine, _ int) sim.Action {
					if m.Src().Bernoulli(0.5) {
						return sim.Recruit(false, sim.Home)
					}
					return sim.Search()
				},
				Next: func(m *Machine, _ int, _ sim.Outcome) StateID { return "flip" },
			},
		}
		m, err := NewMachine("flip", spec, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b, c := build(7), build(7), build(8)
	sameAB, sameAC := 0, 0
	for r := 1; r <= 64; r++ {
		actA, actB, actC := a.Act(r), b.Act(r), c.Act(r)
		if actA == actB {
			sameAB++
		}
		if actA == actC {
			sameAC++
		}
	}
	if sameAB != 64 {
		t.Fatalf("equal seeds agreed only %d/64 rounds", sameAB)
	}
	if sameAC == 64 {
		t.Fatal("different seeds agreed on every round")
	}
}
