package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/lint"
)

// TestBadModule runs the full suite over the known-bad fixture module and
// pins every diagnostic the multichecker must report: one violation per
// analyzer plus the extra determinism findings.
func TestBadModule(t *testing.T) {
	var out bytes.Buffer
	n, err := lint.Run("testdata/badmod", []string{"./..."}, lint.Analyzers(), &out)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	got := out.String()
	expected := []string{
		"hot root stepLockstep must be annotated //hh:hotpath",
		"draw guarded by undocumented condition",
		"make allocates in //hh:hotpath function",
		"float conversion (int → float64)",
		"map range iteration order is nondeterministic",
		"time.Now reads the wall clock",
		"import of math/rand",
	}
	for _, want := range expected {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\nfull output:\n%s", want, got)
		}
	}
	if n != len(expected) {
		t.Errorf("diagnostic count = %d, want %d\nfull output:\n%s", n, len(expected), got)
	}
	for _, a := range []string{"streamdiscipline", "hotpathalloc", "fixedpoint", "determinism"} {
		if !strings.Contains(got, "["+a+"]") {
			t.Errorf("no diagnostic attributed to analyzer %s", a)
		}
	}
}

// TestBadModuleSingleAnalyzer pins the -run selection path: only the
// selected analyzer's findings appear.
func TestBadModuleSingleAnalyzer(t *testing.T) {
	analyzers, err := selectAnalyzers("determinism")
	if err != nil {
		t.Fatalf("selectAnalyzers: %v", err)
	}
	var out bytes.Buffer
	n, err := lint.Run("testdata/badmod", []string{"./..."}, analyzers, &out)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if n != 3 {
		t.Errorf("determinism-only count = %d, want 3\nfull output:\n%s", n, out.String())
	}
	if strings.Contains(out.String(), "[hotpathalloc]") {
		t.Errorf("unselected analyzer ran:\n%s", out.String())
	}
}

func TestSelectAnalyzersUnknown(t *testing.T) {
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("selectAnalyzers(\"nosuch\") did not error")
	}
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.Analyzers()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v", len(all), err)
	}
}
