package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// NoisyAnt implements the §6 "Approximate counting, nest assessment" extension:
// Algorithm 3 driven entirely by perceived values. Every count the ant reads
// passes through a nest.CountEstimator and every quality through a
// nest.Assessor, so the recruitment probability uses the ant's noisy belief
// about its nest's population, and the initial good/bad classification uses a
// noisy assessment thresholded at Threshold.
//
// The paper conjectures Algorithm 3 tolerates unbiased noise at some runtime
// cost; EXPERIMENTS.md E12 measures success rate and slowdown against the
// noise level.
type NoisyAnt struct {
	n      int
	src    *rng.Source
	phase  simplePhase
	active bool

	nest    sim.NestID
	count   int
	quality float64

	counter   nest.CountEstimator
	assessor  nest.Assessor
	threshold float64
}

var _ sim.Agent = (*NoisyAnt)(nil)

// NewNoisyAnt builds one noisy-perception ant. threshold is the perceived
// quality above which a nest is treated as good.
func NewNoisyAnt(n int, src *rng.Source, counter nest.CountEstimator, assessor nest.Assessor, threshold float64) (*NoisyAnt, error) {
	if counter == nil || assessor == nil {
		return nil, fmt.Errorf("algo: noisy ant needs both a counter and an assessor")
	}
	return &NoisyAnt{
		n: n, src: src, phase: simpleSearch, active: true,
		counter: counter, assessor: assessor, threshold: threshold,
	}, nil
}

// Act implements sim.Agent.
func (a *NoisyAnt) Act(int) sim.Action {
	switch a.phase {
	case simpleSearch:
		return sim.Search()
	case simpleRecruit:
		b := false
		if a.active {
			p := float64(a.count) / float64(a.n)
			if p > 1 {
				p = 1
			}
			b = a.src.Bernoulli(p)
		}
		return sim.Recruit(b, a.nest)
	default:
		return sim.Goto(a.nest)
	}
}

// Observe implements sim.Agent.
func (a *NoisyAnt) Observe(_ int, out sim.Outcome) {
	switch a.phase {
	case simpleSearch:
		a.nest = out.Nest
		a.count = a.counter.Estimate(out.Count, a.n, a.src)
		a.quality = a.assessor.Assess(out.Quality, a.src)
		if a.quality <= a.threshold {
			a.active = false
		}
		a.phase = simpleRecruit
	case simpleRecruit:
		if out.Nest != a.nest {
			a.nest = out.Nest
			a.active = true
		}
		a.phase = simpleAssess
	case simpleAssess:
		a.count = a.counter.Estimate(out.Count, a.n, a.src)
		a.phase = simpleRecruit
	}
}

// Committed implements the core.Committer contract.
func (a *NoisyAnt) Committed() (sim.NestID, bool) {
	return a.nest, a.nest != sim.Home
}

// Noisy is the core.Algorithm builder for the approximate-perception
// extension. Nil fields default to exact perception; Threshold defaults to
// 0.5 (the midpoint of the binary qualities).
type Noisy struct {
	Counter   nest.CountEstimator
	Assessor  nest.Assessor
	Threshold float64
}

// Name implements core.Algorithm.
func (no Noisy) Name() string {
	counter, assessor := no.Counter, no.Assessor
	if counter == nil {
		counter = nest.ExactCounter{}
	}
	if assessor == nil {
		assessor = nest.ExactAssessor{}
	}
	return fmt.Sprintf("noisy[%s,%s]", counter.Name(), assessor.Name())
}

// Build implements core.Algorithm.
func (no Noisy) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: noisy needs a positive colony, got %d", n)
	}
	if env.K() == 0 {
		return nil, fmt.Errorf("algo: noisy needs a non-empty environment")
	}
	counter := no.Counter
	if counter == nil {
		counter = nest.ExactCounter{}
	}
	assessor := no.Assessor
	if assessor == nil {
		assessor = nest.ExactAssessor{}
	}
	threshold := no.Threshold
	if threshold == 0 {
		threshold = 0.5
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		ant, err := NewNoisyAnt(n, src.Split(uint64(i)), counter, assessor, threshold)
		if err != nil {
			return nil, err
		}
		agents[i] = ant
	}
	return agents, nil
}
