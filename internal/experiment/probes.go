package experiment

import (
	"fmt"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/trace"
	"github.com/gmrl/househunt/internal/workload"
)

// RecruitSuccessPoint measures Lemma 2.1 empirically at one home-nest size:
// the frequency with which a designated active recruiter succeeds.
type RecruitSuccessPoint struct {
	PoolSize       int
	ActiveFraction float64
	Trials         int
	SuccessRate    float64
	// WilsonLo is the lower end of the 95% Wilson interval; the lemma's
	// bound P >= 1/16 must sit below it.
	WilsonLo float64
}

// MeasureRecruitSuccess runs the recruitment matching in isolation: pools of
// poolSize ants, a designated always-active recruiter, the rest active with
// probability activeFraction. It returns the designated ant's empirical
// success probability (Lemma 2.1 claims >= 1/16 whenever poolSize >= 2).
func MeasureRecruitSuccess(m sim.Matcher, poolSize int, activeFraction float64, trials int, seed uint64) (RecruitSuccessPoint, error) {
	if poolSize < 1 {
		return RecruitSuccessPoint{}, fmt.Errorf("experiment: pool size %d < 1", poolSize)
	}
	if trials <= 0 {
		return RecruitSuccessPoint{}, fmt.Errorf("experiment: trials must be positive")
	}
	src := rng.New(seed)
	active := make([]bool, poolSize)
	capturedBy := make([]int32, poolSize)
	succeeded := make([]bool, poolSize)
	successes := 0
	for trial := 0; trial < trials; trial++ {
		active[0] = true
		for i := 1; i < poolSize; i++ {
			active[i] = src.Bernoulli(activeFraction)
		}
		m.Match(poolSize, active, src, capturedBy, succeeded)
		if succeeded[0] {
			successes++
		}
	}
	pt := RecruitSuccessPoint{
		PoolSize:       poolSize,
		ActiveFraction: activeFraction,
		Trials:         trials,
		SuccessRate:    float64(successes) / float64(trials),
	}
	pt.WilsonLo, _ = wilson(successes, trials)
	return pt, nil
}

// wilson is re-exported thinly from stats to keep probe call sites compact.
func wilson(successes, trials int) (float64, float64) {
	lo, hi := statsWilson(successes, trials)
	return lo, hi
}

// PersistencePoint measures Lemma 3.1: the per-round probability that an
// ignorant ant remains ignorant during the rumor-spreading process.
type PersistencePoint struct {
	N           int
	Rounds      int
	MinStayRate float64 // minimum over rounds of P[ignorant stays ignorant]
	MeanStay    float64
}

// MeasureIgnorantPersistence runs the §3 spreading process and, for each
// round with at least minSample ignorant ants, measures the fraction that
// remain ignorant. Lemma 3.1 lower-bounds every such fraction's expectation
// by 1/4.
func MeasureIgnorantPersistence(n int, seed uint64, minSample int) (PersistencePoint, error) {
	if n < 4 {
		return PersistencePoint{}, fmt.Errorf("experiment: n=%d too small", n)
	}
	env, err := workload.SingleGood(2)
	if err != nil {
		return PersistencePoint{}, err
	}
	src := rng.New(seed)
	agents, err := (algo.Spreader{Seeds: 1}).Build(n, env, src.Split(2))
	if err != nil {
		return PersistencePoint{}, err
	}
	engine, err := sim.New(env, agents, sim.WithSeed(seed))
	if err != nil {
		return PersistencePoint{}, err
	}
	informed := func() int {
		c := 0
		for _, a := range agents {
			if sp, ok := a.(*algo.SpreaderAnt); ok && sp.Informed() {
				c++
			}
		}
		return c
	}
	pt := PersistencePoint{N: n, MinStayRate: 1}
	var totalStay float64
	samples := 0
	maxRounds := 64 * (bitsLen(n) + 1)
	for r := 0; r < maxRounds; r++ {
		before := n - informed()
		if before == 0 {
			break
		}
		if err := engine.Step(); err != nil {
			return PersistencePoint{}, err
		}
		after := n - informed()
		if before >= minSample {
			stay := float64(after) / float64(before)
			totalStay += stay
			samples++
			if stay < pt.MinStayRate {
				pt.MinStayRate = stay
			}
		}
		pt.Rounds = engine.Round()
	}
	if samples > 0 {
		pt.MeanStay = totalStay / float64(samples)
	}
	return pt, nil
}

// bitsLen returns ⌈log2(n)⌉ for n >= 1.
func bitsLen(n int) int {
	b := 0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b
}

// DeltaPoint measures Lemmas 4.1/4.2: the distribution of the per-round
// population delta Y of a competing nest during a pure recruitment round.
type DeltaPoint struct {
	NestSizes []int
	Trials    int
	// PNeg, PZero, PPos are the empirical probabilities of Y<0, Y=0, Y>0 for
	// nest 0 (the first of NestSizes).
	PNeg, PZero, PPos float64
}

// MeasureNestDelta simulates R3 rounds of Algorithm 2 in isolation: all ants
// of all competing nests are at home actively recruiting for their own nest.
// For each trial it computes nest 0's net population change (cross-nest
// captures only — intra-nest captures cancel) and tallies the sign.
// Lemma 4.1 claims P[Y<0] = P[Y>0]; Lemma 4.2 claims P[Y<0] >= 1/66 when
// nest 0 is not alone.
func MeasureNestDelta(m sim.Matcher, nestSizes []int, trials int, seed uint64) (DeltaPoint, error) {
	if len(nestSizes) == 0 {
		return DeltaPoint{}, fmt.Errorf("experiment: no nests")
	}
	total := 0
	for i, s := range nestSizes {
		if s <= 0 {
			return DeltaPoint{}, fmt.Errorf("experiment: nest %d size %d <= 0", i, s)
		}
		total += s
	}
	if trials <= 0 {
		return DeltaPoint{}, fmt.Errorf("experiment: trials must be positive")
	}
	src := rng.New(seed)
	nestOf := make([]int, total)
	idx := 0
	for nest, s := range nestSizes {
		for j := 0; j < s; j++ {
			nestOf[idx] = nest
			idx++
		}
	}
	active := make([]bool, total)
	for i := range active {
		active[i] = true
	}
	capturedBy := make([]int32, total)
	succeeded := make([]bool, total)

	pt := DeltaPoint{NestSizes: append([]int(nil), nestSizes...), Trials: trials}
	neg, zero, pos := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		m.Match(total, active, src, capturedBy, succeeded)
		delta := 0
		for t, cb := range capturedBy {
			if cb < 0 || int(cb) == t {
				continue
			}
			from, to := nestOf[t], nestOf[cb]
			if from == to {
				continue
			}
			if to == 0 {
				delta++
			}
			if from == 0 {
				delta--
			}
		}
		switch {
		case delta < 0:
			neg++
		case delta == 0:
			zero++
		default:
			pos++
		}
	}
	pt.PNeg = float64(neg) / float64(trials)
	pt.PZero = float64(zero) / float64(trials)
	pt.PPos = float64(pos) / float64(trials)
	return pt, nil
}

// GapPoint measures Lemma 5.4: the expected relative population gap between
// two nests after the initial search round.
type GapPoint struct {
	N, K     int
	Trials   int
	MeanGap  float64 // E[ε(i,j,1)], with ε capped at n to keep moments finite
	TieRate  float64 // P[ε = 0]
	BoundMin float64 // the lemma's bound 1/(3(n-1))
}

// MeasureInitialGap simulates round-1 search splits and computes the relative
// gap between nests 1 and 2.
func MeasureInitialGap(n, k, trials int, seed uint64) (GapPoint, error) {
	if n < 2 || k < 2 {
		return GapPoint{}, fmt.Errorf("experiment: need n >= 2 and k >= 2, got n=%d k=%d", n, k)
	}
	if trials <= 0 {
		return GapPoint{}, fmt.Errorf("experiment: trials must be positive")
	}
	src := rng.New(seed)
	counts := make([]int, k)
	pt := GapPoint{N: n, K: k, Trials: trials, BoundMin: 1.0 / (3 * float64(n-1))}
	var sum float64
	ties := 0
	for trial := 0; trial < trials; trial++ {
		for i := range counts {
			counts[i] = 0
		}
		for a := 0; a < n; a++ {
			counts[src.Intn(k)]++
		}
		hi, lo := counts[0], counts[1]
		if lo > hi {
			hi, lo = lo, hi
		}
		var eps float64
		switch {
		case hi == lo:
			ties++
			eps = 0
		case lo == 0:
			eps = float64(n) // cap: the paper's ratio is infinite here
		default:
			eps = float64(hi)/float64(lo) - 1
		}
		sum += eps
	}
	pt.MeanGap = sum / float64(trials)
	pt.TieRate = float64(ties) / float64(trials)
	return pt, nil
}

// ExtinctionPoint measures Lemmas 5.8/5.9 on organic Algorithm 3 runs: once a
// nest's committed population falls below n/(dk) it should die (reach zero)
// within O(k log n) rounds and never win.
type ExtinctionPoint struct {
	N, K int
	Runs int
	// Crossings counts nests observed crossing below the threshold.
	Crossings int
	// Extinct counts crossings that reached zero committed ants.
	Extinct int
	// Recovered counts crossings that went on to win the run (the lemma says
	// this should essentially never happen).
	Recovered int
	// MeanLinger is the mean number of rounds from crossing to extinction.
	MeanLinger float64
	// BudgetRounds is the lemma's O(k log n) budget used for comparison.
	BudgetRounds int
}

// MeasureExtinction traces Algorithm 3 runs and post-processes the commitment
// series. d is the lemma's constant (the paper requires d >= 64; smaller d
// raises the threshold and produces more crossings to grade).
func MeasureExtinction(n, k, runs int, d float64, seed uint64) (ExtinctionPoint, error) {
	if n <= 0 || k <= 0 || runs <= 0 || d <= 0 {
		return ExtinctionPoint{}, fmt.Errorf("experiment: invalid extinction parameters")
	}
	env, err := workload.AllGood(k)
	if err != nil {
		return ExtinctionPoint{}, err
	}
	threshold := float64(n) / (d * float64(k))
	pt := ExtinctionPoint{N: n, K: k, Runs: runs, BudgetRounds: 64 * k * (bitsLen(n) + 1)}
	var lingerSum float64
	for run := 0; run < runs; run++ {
		tr := trace.New(k)
		res, err := core.RunTraced(algo.Simple{}, core.RunConfig{
			N: n, Env: env, Trace: tr,
			Seed: workload.SeedFor("extinction", n, k, run+1),
		})
		if err != nil {
			return ExtinctionPoint{}, err
		}
		for nestID := 1; nestID <= k; nestID++ {
			series, err := tr.CommitmentSeries(nestID)
			if err != nil {
				return ExtinctionPoint{}, err
			}
			cross := -1
			for r, v := range series {
				if v > 0 && v < threshold {
					cross = r
					break
				}
			}
			if cross < 0 {
				continue
			}
			pt.Crossings++
			if res.Solved && int(res.Winner) == nestID {
				pt.Recovered++
				continue
			}
			died := -1
			for r := cross; r < len(series); r++ {
				if series[r] == 0 {
					died = r
					break
				}
			}
			if died >= 0 {
				pt.Extinct++
				lingerSum += float64(died - cross)
			}
		}
	}
	if pt.Extinct > 0 {
		pt.MeanLinger = lingerSum / float64(pt.Extinct)
	}
	return pt, nil
}

// DecayPoint measures the geometric decay of the number of competing nests
// during Algorithm 2 — the mechanism behind Theorem 4.3. The paper's Lemma
// 4.2 implies E[k_{r+4}] <= (65/66)·k_r; empirically the decay is far faster.
type DecayPoint struct {
	N, K int
	Runs int
	// MeanCompeting[p] is the mean number of competing nests after phase p
	// (phase 0 is the state right after the search round).
	MeanCompeting []float64
	// MeanDecay is the average per-phase ratio k_{p+1}/k_p while k_p > 1.
	MeanDecay float64
	// PhasesToOne is the mean number of phases until one competitor remains.
	PhasesToOne float64
}

// MeasureCompetingDecay runs Algorithm 2 colonies and tracks how many nests
// still have at least one active (competing) ant at each 4-round phase
// boundary.
func MeasureCompetingDecay(n, k, runs int, seed uint64) (DecayPoint, error) {
	if n <= 0 || k <= 0 || runs <= 0 {
		return DecayPoint{}, fmt.Errorf("experiment: invalid decay parameters")
	}
	env, err := workload.AllGood(k)
	if err != nil {
		return DecayPoint{}, err
	}
	pt := DecayPoint{N: n, K: k, Runs: runs}
	var decaySum float64
	decaySamples := 0
	var phasesSum float64
	maxPhases := 16 * (bitsLen(n) + 1)
	sums := make([]float64, 0, 64)
	for run := 0; run < runs; run++ {
		root := rng.New(seed + uint64(run)*7919)
		agents, err := (algo.Optimal{}).Build(n, env, root.Split(2))
		if err != nil {
			return DecayPoint{}, err
		}
		engine, err := sim.New(env, agents, sim.WithSeed(seed+uint64(run)*104729))
		if err != nil {
			return DecayPoint{}, err
		}
		competing := func() int {
			nests := make(map[sim.NestID]bool, k)
			for _, a := range agents {
				ant, ok := a.(*algo.OptimalAnt)
				if !ok {
					continue
				}
				if ant.State() == "active" {
					if nest, committed := ant.Committed(); committed {
						nests[nest] = true
					}
				}
			}
			return len(nests)
		}
		// Round 1 is the global search round; phases end at rounds 5, 9, ...
		if err := engine.Step(); err != nil {
			return DecayPoint{}, err
		}
		prev := competing()
		record := func(phase int, v float64) {
			for len(sums) <= phase {
				sums = append(sums, 0)
			}
			sums[phase] += v
		}
		record(0, float64(prev))
		settled := false
		for phase := 1; phase <= maxPhases; phase++ {
			for i := 0; i < 4; i++ {
				if err := engine.Step(); err != nil {
					return DecayPoint{}, err
				}
			}
			cur := competing()
			record(phase, float64(cur))
			if prev > 1 && cur >= 1 {
				decaySum += float64(cur) / float64(prev)
				decaySamples++
			}
			if !settled && cur <= 1 {
				phasesSum += float64(phase)
				settled = true
			}
			prev = cur
			if settled {
				break
			}
		}
		if !settled {
			phasesSum += float64(maxPhases)
		}
	}
	pt.MeanCompeting = make([]float64, len(sums))
	for i, s := range sums {
		pt.MeanCompeting[i] = s / float64(runs)
	}
	if decaySamples > 0 {
		pt.MeanDecay = decaySum / float64(decaySamples)
	}
	pt.PhasesToOne = phasesSum / float64(runs)
	return pt, nil
}
