package algo

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/faults"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// This file is the cross-engine differential harness: one shared set of
// generators and layer assertions through which every compiled algorithm —
// Simple/SimplePFSM (Algorithm 3), both Optimal variants (Algorithm 2), the
// §6 extensions (Adaptive, QualityAware, ApproxN, Quorum, Noisy) and the §3
// lower-bound Spreader process — is pinned round-for-round bit-identical
// between the scalar agent engine and the batch struct-of-arrays engine,
// with and without an adversary (the faults.Spec axis: scalar fault wrappers
// against the batch engine's fault lanes). Three layers are asserted per
// case:
//
//	algo layer: CompileBatch yields a structurally valid program carrying the
//	            algorithm's name (compileCase);
//	sim layer:  per-round populations and commitment censuses coincide
//	            exactly for the full round budget (assertTraceEquivalence);
//	core layer: core.RunBatch returns exactly the Results per-seed core.Run
//	            produces, censuses and decided counts included
//	            (assertRunnerEquivalence).
//
// The experiment layer (MeasureConvergence aggregation) is pinned in
// internal/experiment/batch_test.go over the same algorithm inventory, and
// FuzzBatchEquivalence in batch_fuzz_test.go drives the sim layer from raw
// fuzz words.

// diffCase is one configuration of the differential harness.
type diffCase struct {
	name      string
	algo      core.Algorithm
	n         int
	env       sim.Environment
	seeds     []uint64
	maxRounds int
	// matcher selects a stock recruitment-pairing model by name
	// ("simultaneous", "rendezvous", "algorithm1"); empty means the default
	// Algorithm 1 pairing with no cfg.NewMatcher set. Non-empty cases pin
	// the compiled matcher ablations against the scalar engine running the
	// same model.
	matcher string
	// shards, when positive, forces the batch lane to split its colony
	// across that many shard goroutines (sim.WithBatchShards). Sharding is
	// contractually invisible — every shard count must reproduce the scalar
	// trace bit for bit — so sharded cases assert the same equivalence as
	// unsharded ones, just through the parallel phase kernels.
	shards int
	// faults, when enabled, injects the same declarative adversary into both
	// engines: the scalar trace wraps the built agents via Spec.WrapAgents
	// and the batch trace attaches the lowered spec to the program's
	// parameters — the two lowerings the spec pins bit-identical.
	faults faults.Spec
	// sched, when non-nil, attaches an adaptive adversary on top of the
	// static spec: the factory lands on Spec.NewSchedule for both engines,
	// and a Rebuild closure over the case's builder is supplied so
	// restart-emitting schedules work on the scalar side too (the batch lane
	// revives ants from its own columns).
	sched func() faults.Schedule
}

// spec materializes the case's effective fault spec: the static fractions
// plus, when the case carries an adaptive schedule, the factory and the
// scalar-side Rebuild closure.
func (c diffCase) spec() faults.Spec {
	s := c.faults
	if c.sched != nil {
		s.NewSchedule = c.sched
		a, n, env := c.algo, c.n, c.env
		s.Rebuild = func(seed uint64) ([]sim.Agent, error) {
			return a.Build(n, env, rng.New(seed).Split(2))
		}
	}
	return s
}

// stockMatcher builds a fresh stock matcher instance by name.
func stockMatcher(name string) sim.Matcher {
	switch name {
	case "simultaneous":
		return &sim.SimultaneousMatcher{}
	case "rendezvous":
		return &sim.RendezvousMatcher{}
	default:
		return &sim.AlgorithmOneMatcher{}
	}
}

// stressSchedule is the harness's kitchen-sink adversary: it exercises every
// FaultOp kind and every ColonyView accessor in one schedule, drawing one
// adversary-stream Bernoulli per eligible ant so the two engines' stream
// consumption is stressed as hard as their snapshot semantics. Crashes gate
// on the colony staying half alive (reads Alive), restarts are frequent
// (recovery churn), and every seventh round the Byzantine ants re-aim at the
// highest-numbered bad nest (reads Round/K/Quality).
type stressSchedule struct{}

func (stressSchedule) Name() string { return "stress" }

func (stressSchedule) Step(v sim.ColonyView, adv *rng.Source, ops []sim.FaultOp) []sim.FaultOp {
	n := v.N()
	for i := 0; i < n; i++ {
		switch v.Status(i) {
		case sim.AntLive:
			if v.Alive() > n/2 && v.Committed(i) != sim.Home && adv.Bernoulli(0.05) {
				ops = append(ops, sim.FaultOp{Kind: sim.FaultCrash, Ant: int32(i)})
			}
		case sim.AntCrashed:
			if adv.Bernoulli(0.25) {
				ops = append(ops, sim.FaultOp{Kind: sim.FaultRestart, Ant: int32(i)})
			}
		case sim.AntByzantine:
			if v.Round()%7 == 0 {
				for nest := v.K(); nest >= 1; nest-- {
					if v.Quality(sim.NestID(nest)) == 0 {
						ops = append(ops, sim.FaultOp{Kind: sim.FaultRelocate, Ant: int32(i), Nest: sim.NestID(nest)})
						break
					}
				}
			}
		}
	}
	return ops
}

// roundRec is one round's end-of-round populations (index 0 = home) and
// commitment census (index 0 = uncommitted).
type roundRec struct {
	counts []int
	commit []int
}

// compiledInventory is the full set of algorithms advertising a compiled
// form, with representative parameterizations of the §6 extensions.
func compiledInventory() []core.Algorithm {
	return []core.Algorithm{
		Simple{},
		SimplePFSM{},
		Optimal{},
		Optimal{Literal: true},
		Adaptive{},
		Adaptive{Tau: 1, FloorDiv: 8},
		QualityAware{},
		ApproxN{},
		ApproxN{Delta: 0.3},
		ApproxN{Delta: 0.75},
		Quorum{},
		Quorum{Multiplier: 2, Carry: 1, Docility: 1},
		Quorum{Assessor: nest.FlipAssessor{P: 0.15}},
		Noisy{},
		Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.2}, Assessor: nest.GaussianAssessor{Sigma: 0.1}},
		Spreader{},
		Spreader{Seeds: 8},
		Spreader{SearchAll: true},
	}
}

// compileCase is the algo-layer assertion: the algorithm must compile to a
// structurally valid program that carries its name.
func compileCase(t *testing.T, c diffCase) sim.Program {
	t.Helper()
	bc, ok := c.algo.(core.BatchCompilable)
	if !ok {
		t.Fatalf("%s: algorithm is not BatchCompilable", c.name)
	}
	prog, ok := bc.CompileBatch(c.n, c.env)
	if !ok {
		t.Fatalf("%s: did not compile for n=%d k=%d", c.name, c.n, c.env.K())
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("%s: compiled program invalid: %v", c.name, err)
	}
	if prog.Algorithm != c.algo.Name() {
		t.Errorf("%s: program carries name %q, want %q", c.name, prog.Algorithm, c.algo.Name())
	}
	return prog
}

// scalarTrace runs the scalar engine on each seed, recording per-round
// populations and commitment censuses, with the exact stream derivation the
// core runner uses (ant root = rng.New(seed).Split(2)).
func scalarTrace(t *testing.T, c diffCase) [][]roundRec {
	t.Helper()
	recs := make([][]roundRec, len(c.seeds))
	for si, seed := range c.seeds {
		agents, err := c.algo.Build(c.n, c.env, rng.New(seed).Split(2))
		if err != nil {
			t.Fatalf("%s seed %d: build: %v", c.name, seed, err)
		}
		if spec := c.spec(); spec.Enabled() {
			if agents, err = spec.WrapAgents(seed, agents); err != nil {
				t.Fatalf("%s seed %d: wrap: %v", c.name, seed, err)
			}
		}
		opts := []sim.Option{sim.WithSeed(seed)}
		if c.matcher != "" {
			opts = append(opts, sim.WithMatcher(stockMatcher(c.matcher)))
		}
		eng, err := sim.New(c.env, agents, opts...)
		if err != nil {
			t.Fatalf("%s seed %d: engine: %v", c.name, seed, err)
		}
		for r := 0; r < c.maxRounds; r++ {
			if err := eng.Step(); err != nil {
				t.Fatalf("%s seed %d: scalar step: %v", c.name, seed, err)
			}
			recs[si] = append(recs[si], roundRec{
				counts: eng.Counts(),
				commit: core.TakeCensus(agents, c.env.K()).Committed,
			})
		}
	}
	return recs
}

// batchTrace runs the compiled program on the batch engine with a recording
// probe; the window exceeding the budget keeps every replicate running all
// maxRounds rounds so traces line up with scalarTrace.
func batchTrace(t *testing.T, c diffCase, prog sim.Program) [][]roundRec {
	t.Helper()
	if fs, on := c.spec().BatchFaults(); on {
		prog.Params.Faults = fs
	}
	var mu sync.Mutex
	recs := make([][]roundRec, len(c.seeds))
	opts := []sim.BatchOption{sim.WithBatchProbe(func(rep, round int, counts, committed []int) {
		rec := roundRec{
			counts: append([]int(nil), counts...),
			commit: append([]int(nil), committed...),
		}
		mu.Lock()
		recs[rep] = append(recs[rep], rec)
		mu.Unlock()
	})}
	if c.matcher != "" {
		name := c.matcher
		opts = append(opts, sim.WithBatchMatcher(func() sim.Matcher { return stockMatcher(name) }))
	}
	if c.shards > 0 {
		opts = append(opts, sim.WithBatchShards(c.shards))
	}
	b, err := sim.NewBatch(c.env, prog, c.n, opts...)
	if err != nil {
		t.Fatalf("%s: batch: %v", c.name, err)
	}
	if _, err := b.Run(c.seeds, c.maxRounds, c.maxRounds+1); err != nil {
		t.Fatalf("%s: batch run: %v", c.name, err)
	}
	return recs
}

// compareTraces asserts two per-seed round traces are bit-identical.
func compareTraces(t *testing.T, c diffCase, want, got [][]roundRec) {
	t.Helper()
	for si, seed := range c.seeds {
		if len(got[si]) != len(want[si]) {
			t.Fatalf("%s seed %d: batch ran %d rounds, scalar %d", c.name, seed, len(got[si]), len(want[si]))
		}
		for r := range want[si] {
			if !reflect.DeepEqual(got[si][r], want[si][r]) {
				t.Fatalf("%s seed %d round %d diverged:\nbatch  counts=%v commit=%v\nscalar counts=%v commit=%v",
					c.name, seed, r+1,
					got[si][r].counts, got[si][r].commit,
					want[si][r].counts, want[si][r].commit)
			}
		}
	}
}

// assertTraceEquivalence is the sim-layer assertion: round-for-round
// bit-identical populations and commitments across the full budget.
func assertTraceEquivalence(t *testing.T, c diffCase) {
	t.Helper()
	prog := compileCase(t, c)
	compareTraces(t, c, scalarTrace(t, c), batchTrace(t, c, prog))
}

// assertRunnerEquivalence is the core-layer assertion: core.RunBatch must
// return exactly the Results per-seed core.Run produces — solved flags,
// winners, round counts, censuses and decided counts.
func assertRunnerEquivalence(t *testing.T, c diffCase) {
	t.Helper()
	cfg := core.RunConfig{N: c.n, Env: c.env, MaxRounds: 8 * c.maxRounds, StabilityWindow: 2, BatchShards: c.shards}
	if c.matcher != "" {
		name := c.matcher
		cfg.NewMatcher = func() sim.Matcher { return stockMatcher(name) }
	}
	if spec := c.spec(); spec.Enabled() {
		// The spec rides on cfg.Wrap for BOTH runners: core.Run applies the
		// scalar wrappers, core.RunBatch recognizes the BatchFaultWrapper and
		// compiles the fault lanes — the end-to-end routing this layer pins.
		cfg.Wrap = spec
	}
	batched, ok, err := core.RunBatch(c.algo, cfg, c.seeds)
	if err != nil {
		t.Fatalf("%s: RunBatch: %v", c.name, err)
	}
	if !ok {
		t.Fatalf("%s: expected batch eligibility", c.name)
	}
	for i, seed := range c.seeds {
		scfg := cfg
		scfg.Seed = seed
		want, err := core.Run(c.algo, scfg)
		if err != nil {
			t.Fatalf("%s seed %d: Run: %v", c.name, seed, err)
		}
		got := batched[i]
		if got.Solved != want.Solved || got.Winner != want.Winner ||
			got.Rounds != want.Rounds || got.WinnerQuality != want.WinnerQuality ||
			got.Algorithm != want.Algorithm {
			t.Fatalf("%s seed %d: batch %+v != scalar %+v", c.name, seed, got, want)
		}
		if !reflect.DeepEqual(got.FinalCensus.Committed, want.FinalCensus.Committed) ||
			got.FinalCensus.Total != want.FinalCensus.Total ||
			got.FinalCensus.Decided != want.FinalCensus.Decided ||
			got.FinalCensus.Faulty != want.FinalCensus.Faulty {
			t.Fatalf("%s seed %d: census diverged: batch %+v != scalar %+v",
				c.name, seed, got.FinalCensus, want.FinalCensus)
		}
	}
}

// assertDiffCase runs every layer of the harness on one case.
func assertDiffCase(t *testing.T, c diffCase) {
	t.Helper()
	assertTraceEquivalence(t, c)
	assertRunnerEquivalence(t, c)
}

// randomDiffCases samples configurations from the full space the harness
// covers: every compiled algorithm (with randomized δ and schedule
// parameters), colony sizes, nest counts, binary and non-binary quality
// vectors, random seeds, round budgets and random fault plans (each lane's
// fraction, window and salt drawn independently on a third of the cases).
// The sampling is deterministic in metaSeed, so failures reproduce; bump the
// count or vary the seed locally for a deeper soak.
func randomDiffCases(metaSeed uint64, count int) []diffCase {
	src := rng.New(metaSeed)
	cases := make([]diffCase, 0, count)
	for i := 0; i < count; i++ {
		var a core.Algorithm
		switch src.Intn(10) {
		case 0:
			a = Simple{}
		case 1:
			a = SimplePFSM{}
		case 2:
			a = Optimal{}
		case 3:
			a = Optimal{Literal: true}
		case 4:
			a = Adaptive{} // zero values: the compiled defaults must match Build's
			if src.Bernoulli(0.7) {
				a = Adaptive{Tau: 1 + src.Intn(4), FloorDiv: float64(2 + src.Intn(7))}
			}
		case 5:
			a = QualityAware{}
		case 6:
			var delta float64
			if src.Bernoulli(0.8) {
				delta = 0.9 * src.Float64()
			}
			a = ApproxN{Delta: delta}
		case 7:
			q := Quorum{} // zero values: the compiled defaults must match Build's
			if src.Bernoulli(0.7) {
				q = Quorum{
					Multiplier: 1.1 + 2*src.Float64(),
					Carry:      1 + src.Intn(4),
					Docility:   src.Float64(),
				}
			}
			if src.Bernoulli(0.4) {
				q.Assessor = nest.FlipAssessor{P: 0.3 * src.Float64()}
			}
			a = q
		case 8:
			no := Noisy{} // zero values: the compiled defaults must match Build's
			if src.Bernoulli(0.7) {
				no.Counter = nest.RelativeNoiseCounter{Sigma: 0.5 * src.Float64()}
			}
			switch src.Intn(3) {
			case 1:
				no.Assessor = nest.GaussianAssessor{Sigma: 0.3 * src.Float64()}
			case 2:
				no.Assessor = nest.FlipAssessor{P: 0.3 * src.Float64()}
			}
			if src.Bernoulli(0.3) {
				no.Threshold = 0.2 + 0.6*src.Float64()
			}
			a = no
		case 9:
			sp := Spreader{}
			switch src.Intn(3) {
			case 1:
				sp.Seeds = 1 + src.Intn(16)
			case 2:
				sp.SearchAll = true
			}
			a = sp
		}
		n := 8 + src.Intn(120)
		k := 1 + src.Intn(5)
		quals := make([]float64, k)
		nonBinary := src.Bernoulli(0.5)
		sample := func() float64 {
			if nonBinary {
				return 0.05 + 0.95*src.Float64()
			}
			return 1
		}
		for j := range quals {
			if src.Bernoulli(0.6) {
				quals[j] = sample()
			}
		}
		if good := src.Intn(k); quals[good] == 0 {
			quals[good] = sample() // environments need at least one good nest
		}
		if _, isSpreader := a.(Spreader); isSpreader {
			// The spreading process compiles only against a single good nest.
			lone := src.Intn(k)
			for j := range quals {
				quals[j] = 0
			}
			quals[lone] = sample()
		}
		// A third of the cases run a stock matcher ablation; quorum only
		// pairs with ablation matchers at carry 1 (they implement no
		// MatchCarry, mirroring the compile gate).
		matcher := ""
		switch src.Intn(6) {
		case 0:
			matcher = "simultaneous"
		case 1:
			matcher = "rendezvous"
		}
		if q, isQuorum := a.(Quorum); isQuorum && matcher != "" {
			q.Carry = 1
			a = q
		}
		// A third of the cases draw a random fault plan: each lane's fraction
		// is drawn independently (scaled so the three sum below 1), windows
		// and the stream salt vary, and zero-fraction draws disable lanes so
		// single-lane and disabled plans appear too.
		var spec faults.Spec
		if src.Bernoulli(0.33) {
			spec = faults.Spec{
				CrashFraction:     0.3 * src.Float64() * float64(src.Intn(2)),
				CrashWindow:       5 + src.Intn(60),
				ByzantineFraction: 0.15 * src.Float64() * float64(src.Intn(2)),
				SleepFraction:     0.3 * src.Float64() * float64(src.Intn(2)),
				SleepWindow:       5 + src.Intn(60),
				Salt:              src.Uint64(),
			}
		}
		// A quarter of the cases additionally run an adaptive schedule drawn
		// from the stock set plus the stress adversary, with randomized
		// parameters and (half the time) a non-default adversary-stream salt.
		var sched func() faults.Schedule
		if src.Bernoulli(0.25) {
			switch src.Intn(4) {
			case 0:
				per, budget := 1+src.Intn(3), 4+src.Intn(24)
				sched = func() faults.Schedule { return &faults.TargetedCrash{PerRound: per, Budget: budget} }
			case 1:
				sched = func() faults.Schedule { return &faults.AdaptiveLurer{} }
				if spec.ByzantineFraction == 0 {
					spec.ByzantineFraction = 0.05 + 0.1*src.Float64()
				}
			case 2:
				p, mean := 0.01+0.05*src.Float64(), 1+11*src.Float64()
				sched = func() faults.Schedule { return faults.Churn{CrashProb: p, MeanDowntime: mean} }
			case 3:
				sched = func() faults.Schedule { return stressSchedule{} }
			}
			if src.Bernoulli(0.5) {
				spec.ScheduleSalt = 1 + src.Uint64()%1000
			}
		}
		cases = append(cases, diffCase{
			name:      fmt.Sprintf("case%02d/%s%s/n%d/k%d", i, a.Name(), matcher, n, k),
			algo:      a,
			n:         n,
			env:       sim.MustEnvironment(quals),
			seeds:     []uint64{src.Uint64(), src.Uint64()},
			maxRounds: 40 + src.Intn(120),
			matcher:   matcher,
			faults:    spec,
			sched:     sched,
		})
	}
	return cases
}

// pinnedDiffCases is the fixed grid the harness always runs: the PR-1/PR-2
// golden cells (Algorithm 3 and both Algorithm 2 variants across n × k) plus
// hand-picked extension cells covering the default and stressed
// parameterizations on binary and non-binary environments.
func pinnedDiffCases() []diffCase {
	envBinary := sim.MustEnvironment([]float64{1, 0, 1, 0})
	envSingle := sim.MustEnvironment([]float64{1, 0})
	envSparse := sim.MustEnvironment([]float64{0, 1, 1, 0, 0})
	envGraded := sim.MustEnvironment([]float64{0.3, 0.9, 0.2})
	seeds := []uint64{1, 7, 42, 2015}

	var cases []diffCase
	add := func(a core.Algorithm, n int, env sim.Environment, maxRounds int) {
		cases = append(cases, diffCase{
			name:      fmt.Sprintf("%s/n%d/k%d", a.Name(), n, env.K()),
			algo:      a,
			n:         n,
			env:       env,
			seeds:     seeds,
			maxRounds: maxRounds,
		})
	}

	// Algorithm 3: the original lockstep golden cell.
	add(SimplePFSM{}, 128, envBinary, 400)
	add(Simple{}, 64, envSparse, 200)
	// Algorithm 2: the original general-path grid. The literal variant's
	// cells include deadlocking executions, which must reproduce too.
	for _, variant := range []Optimal{{}, {Literal: true}} {
		for _, n := range []int{32, 96} {
			for _, env := range []sim.Environment{envSingle, envBinary, envSparse} {
				add(variant, n, env, 160)
			}
		}
	}
	// §6 extensions: defaults and stressed parameters, binary and graded
	// qualities, δ = 0 degenerating to Algorithm 3 and δ near the cap.
	add(Adaptive{}, 96, envBinary, 200)
	add(Adaptive{Tau: 1, FloorDiv: 8}, 64, envSparse, 200)
	add(QualityAware{}, 96, envGraded, 200)
	add(QualityAware{}, 64, envBinary, 200)
	add(ApproxN{}, 64, envBinary, 200)
	add(ApproxN{Delta: 0.3}, 96, envBinary, 200)
	add(ApproxN{Delta: 0.75}, 64, envSparse, 200)
	// Quorum/transport: the default parameterization, a hair-trigger quorum
	// with tandem-only carry and full docility, a high quorum with a large
	// carry, low docility (transport standoffs must reproduce too), and a
	// noisy assessor (the E18 speed-accuracy cell). Transport rounds route the
	// batch matcher through MatchCarry, so these cells pin the carry-aware
	// pairing and the docility draw on capture.
	add(Quorum{}, 96, envBinary, 200)
	add(Quorum{Multiplier: 1.1, Carry: 1, Docility: 1}, 64, envBinary, 200)
	add(Quorum{Multiplier: 3, Carry: 6, Docility: 0.05}, 64, envSparse, 240)
	add(Quorum{Assessor: nest.FlipAssessor{P: 0.15}}, 96, envBinary, 200)
	add(Quorum{Carry: 2}, 48, envSingle, 200)
	// Noisy perception: exact (degenerates to Algorithm 3 with identical
	// draws), each estimator/assessor family from the nest package, and a
	// shifted classification threshold on graded qualities.
	add(Noisy{}, 96, envBinary, 200)
	add(Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.3}}, 96, envBinary, 300)
	add(Noisy{Counter: nest.EncounterRateCounter{Probes: 16, Volume: 4}}, 64, envBinary, 300)
	add(Noisy{Assessor: nest.FlipAssessor{P: 0.2}}, 64, envSparse, 300)
	add(Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.2}, Assessor: nest.GaussianAssessor{Sigma: 0.15}, Threshold: 0.4}, 64, envGraded, 300)
	// Matcher ablations (§2's "other natural models", the E16 axis): the
	// compiled simultaneous and rendezvous pairings must reproduce the
	// scalar engine running the same model draw for draw, across the
	// lockstep (simple), general (optimal) and drawn-recruit extension
	// paths, plus an explicitly-selected algorithm1 (exercising the
	// cfg.NewMatcher stock-resolution instead of the default). Quorum with
	// tandem-only carry pins the carry-1 transport program on a carry-less
	// ablation matcher.
	addM := func(a core.Algorithm, matcher string, n int, env sim.Environment, maxRounds int) {
		cases = append(cases, diffCase{
			name:      fmt.Sprintf("%s+%s/n%d/k%d", a.Name(), matcher, n, env.K()),
			algo:      a,
			n:         n,
			env:       env,
			seeds:     seeds,
			maxRounds: maxRounds,
			matcher:   matcher,
		})
	}
	// The §3 lower-bound spreading process: the first split-init program
	// (seed searchers vs waiters), the all-searchers best case, and a seed
	// count exceeding the colony (clamps to all searchers). The process
	// requires exactly one good nest, so only envSingle-like environments
	// appear; envLone adds bad-nest padding around a graded target.
	envLone := sim.MustEnvironment([]float64{0, 0.6, 0})
	add(Spreader{}, 64, envSingle, 200)
	add(Spreader{Seeds: 8}, 96, envLone, 200)
	add(Spreader{SearchAll: true}, 64, envSingle, 120)
	add(Spreader{Seeds: 500}, 48, envSingle, 120)
	addM(Simple{}, "simultaneous", 96, envBinary, 300)
	addM(Simple{}, "rendezvous", 96, envBinary, 200)
	addM(Simple{}, "algorithm1", 64, envSparse, 200)
	addM(Optimal{}, "simultaneous", 64, envBinary, 200)
	addM(Optimal{}, "rendezvous", 64, envBinary, 200)
	addM(Optimal{Literal: true}, "simultaneous", 32, envSingle, 160)
	addM(QualityAware{}, "simultaneous", 64, envGraded, 240)
	addM(Adaptive{}, "rendezvous", 64, envBinary, 200)
	addM(Quorum{Carry: 1}, "simultaneous", 64, envBinary, 240)
	addM(Quorum{Carry: 1, Docility: 0.6}, "rendezvous", 64, envBinary, 240)
	// Adversary cells: each fault lane alone and mixed, across the compiled
	// inventory — the scalar crash/Byzantine/sleep wrappers against the batch
	// engine's synthetic fault states. The window values keep every lane's
	// events (crash fires, wake-ups) inside the traced budget, and the salts
	// vary so the fault stream's position relative to the other streams is
	// exercised too.
	crash := faults.Spec{CrashFraction: 0.15, CrashWindow: 30, Salt: 11}
	byz := faults.Spec{ByzantineFraction: 0.1, Salt: 12}
	sleep := faults.Spec{SleepFraction: 0.25, SleepWindow: 40, Salt: 13}
	mixed := faults.Spec{
		CrashFraction: 0.1, CrashWindow: 20,
		ByzantineFraction: 0.05,
		SleepFraction:     0.1, SleepWindow: 30,
		Salt: 14,
	}
	addF := func(a core.Algorithm, tag string, spec faults.Spec, n int, env sim.Environment, maxRounds int) {
		cases = append(cases, diffCase{
			name:      fmt.Sprintf("%s+%s/n%d/k%d", a.Name(), tag, n, env.K()),
			algo:      a,
			n:         n,
			env:       env,
			seeds:     seeds,
			maxRounds: maxRounds,
			faults:    spec,
		})
	}
	for _, a := range []core.Algorithm{Simple{}, SimplePFSM{}, Optimal{}, Optimal{Literal: true},
		Adaptive{}, QualityAware{}, ApproxN{Delta: 0.3}, Quorum{}, Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.2}}} {
		addF(a, "crash", crash, 64, envBinary, 200)
		addF(a, "byz", byz, 64, envBinary, 200)
		addF(a, "sleep", sleep, 64, envBinary, 200)
		addF(a, "mixed", mixed, 96, envSparse, 240)
	}
	// Graded qualities under faults (the quality-weighted draw must survive
	// the fault lanes' scatter reordering), the spreading process under every
	// lane, and a faulted matcher ablation (fault lanes compose with the
	// compiled stock models).
	addF(QualityAware{}, "mixed", mixed, 64, envGraded, 240)
	addF(Spreader{}, "crash", crash, 64, envSingle, 200)
	addF(Spreader{Seeds: 8}, "byz", byz, 64, envSingle, 200)
	addF(Spreader{SearchAll: true}, "sleep", sleep, 64, envSingle, 200)
	addF(Spreader{Seeds: 4}, "mixed", mixed, 96, envLone, 240)
	cases = append(cases, diffCase{
		name: "simple+simultaneous+crash/n64", algo: Simple{}, n: 64, env: envBinary,
		seeds: seeds, maxRounds: 200, matcher: "simultaneous",
		faults: crash,
	})
	// Sharded cells: the same equivalence contract through the parallel phase
	// kernels. One cell per phase family the shard pool fans out — the
	// lockstep emit/fold (simple), the drawn-recruit extensions (adaptive,
	// quality on graded qualities), the general path's
	// histogram/scatter/emit/assemble/observe pipeline (optimal), transport
	// plus docility capture (quorum), the fault lanes' scatter reordering
	// (mixed adversary), and the split-init spreader. Shard counts that do
	// not divide n pin the boundary arithmetic.
	addSh := func(a core.Algorithm, sh, n int, env sim.Environment, maxRounds int, spec faults.Spec) {
		cases = append(cases, diffCase{
			name:      fmt.Sprintf("%s+shards%d/n%d/k%d", a.Name(), sh, n, env.K()),
			algo:      a,
			n:         n,
			env:       env,
			seeds:     seeds,
			maxRounds: maxRounds,
			shards:    sh,
			faults:    spec,
		})
	}
	addSh(Simple{}, 4, 128, envBinary, 300, faults.Spec{})
	addSh(Adaptive{}, 3, 97, envBinary, 200, faults.Spec{})
	addSh(QualityAware{}, 5, 96, envGraded, 200, faults.Spec{})
	addSh(Optimal{}, 4, 96, envBinary, 160, faults.Spec{})
	addSh(Quorum{Multiplier: 1.1, Carry: 2, Docility: 0.6}, 3, 64, envBinary, 240, faults.Spec{})
	addSh(Simple{}, 4, 96, envSparse, 240, mixed)
	addSh(Optimal{}, 3, 64, envBinary, 200, byz)
	addSh(Spreader{Seeds: 8}, 4, 96, envLone, 200, faults.Spec{})
	// Adaptive adversary cells: the scalar schedule controller (engine round
	// hook) against the batch lane's mutation pass, over every stock schedule
	// and the kitchen-sink stress schedule, composed with static fault lanes,
	// graded qualities, a matcher ablation, sharding, and a non-default
	// ScheduleSalt. Churn and stress cells exercise crash-recovery (restarts
	// re-enter the algorithm at logical round 1 on both engines); lurer cells
	// need a Byzantine population to relocate.
	addA := func(a core.Algorithm, tag string, spec faults.Spec, sched func() faults.Schedule, sh, n int, env sim.Environment, maxRounds int) {
		cases = append(cases, diffCase{
			name:      fmt.Sprintf("%s+sched-%s/n%d/k%d", a.Name(), tag, n, env.K()),
			algo:      a,
			n:         n,
			env:       env,
			seeds:     seeds,
			maxRounds: maxRounds,
			shards:    sh,
			faults:    spec,
			sched:     sched,
		})
	}
	targeted := func() faults.Schedule { return &faults.TargetedCrash{PerRound: 1, Budget: 10} }
	lurer := func() faults.Schedule { return &faults.AdaptiveLurer{} }
	churn := func() faults.Schedule { return faults.Churn{CrashProb: 0.02, MeanDowntime: 6} }
	stress := func() faults.Schedule { return stressSchedule{} }
	byzOnly := faults.Spec{ByzantineFraction: 0.1, Salt: 15}
	for _, a := range []core.Algorithm{Simple{}, SimplePFSM{}, Optimal{}, Adaptive{},
		QualityAware{}, ApproxN{Delta: 0.3}, Quorum{}, Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.2}}} {
		addA(a, "targeted", faults.Spec{Salt: 15}, targeted, 0, 64, envBinary, 200)
		addA(a, "churn", faults.Spec{Salt: 15}, churn, 0, 64, envBinary, 200)
		addA(a, "lurer", byzOnly, lurer, 0, 64, envBinary, 200)
		addA(a, "stress", mixed, stress, 0, 96, envSparse, 240)
	}
	// Graded qualities, the spreading process, a salted adversary stream, a
	// matcher-ablation composition, and sharded adaptive lanes.
	addA(QualityAware{}, "stress", mixed, stress, 0, 64, envGraded, 240)
	addA(Spreader{}, "churn", faults.Spec{Salt: 15}, churn, 0, 64, envSingle, 200)
	addA(Spreader{Seeds: 8}, "lurer", byzOnly, lurer, 0, 96, envLone, 200)
	addA(Simple{}, "salted", faults.Spec{Salt: 15, ScheduleSalt: 99}, stress, 0, 64, envBinary, 200)
	addA(Simple{}, "sharded-stress", mixed, stress, 4, 96, envBinary, 240)
	addA(Optimal{}, "sharded-churn", faults.Spec{Salt: 15}, churn, 3, 64, envBinary, 200)
	cases = append(cases, diffCase{
		name: "simple+simultaneous+sched-targeted/n64", algo: Simple{}, n: 64, env: envBinary,
		seeds: seeds, maxRounds: 200, matcher: "simultaneous",
		faults: faults.Spec{Salt: 15}, sched: targeted,
	})
	// The satellite edge cells: a window of exactly 1 (every static event
	// lands on its lane's single eligible round) and fractions summing to
	// exactly 1 (no non-faulty ant in the colony), with and without a
	// schedule on top.
	edgeWindow := faults.Spec{CrashFraction: 0.2, CrashWindow: 1, SleepFraction: 0.2, SleepWindow: 1, Salt: 16}
	edgeSum := faults.Spec{CrashFraction: 0.5, CrashWindow: 12, ByzantineFraction: 0.25, SleepFraction: 0.25, SleepWindow: 12, Salt: 17}
	addF(Simple{}, "window1", edgeWindow, 64, envBinary, 200)
	addF(Optimal{}, "window1", edgeWindow, 64, envBinary, 160)
	addF(Simple{}, "sum1", edgeSum, 64, envBinary, 200)
	addF(Quorum{}, "sum1", edgeSum, 64, envBinary, 240)
	addA(Simple{}, "window1-churn", edgeWindow, churn, 0, 64, envBinary, 200)
	addA(Simple{}, "sum1-stress", edgeSum, stress, 0, 64, envBinary, 200)
	return cases
}

// TestBatchDifferentialPinned runs the fixed golden grid through every layer
// of the harness. It subsumes the per-algorithm equivalence tables of PRs 1-2
// (simple and optimal) and extends them to the §6 extensions.
func TestBatchDifferentialPinned(t *testing.T) {
	t.Parallel()
	for _, c := range pinnedDiffCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			assertDiffCase(t, c)
		})
	}
}

// TestBatchDifferentialRandomized is the property-based sweep: randomized
// (algorithm, seeds, n, k, quality vector, δ, schedule) configurations, all
// asserted bit-identical at every layer.
func TestBatchDifferentialRandomized(t *testing.T) {
	t.Parallel()
	for _, c := range randomDiffCases(2015, 24) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			assertDiffCase(t, c)
		})
	}
}

// generalPathVariant rewrites a lockstep program so the batch engine must
// take the general per-ant path without changing behavior: the initial
// search's static ObserveDiscovery becomes an ObserveDiscoverBranch whose two
// successors coincide. For a search outcome the two opcodes write identical
// registers, so every round still resolves identically — but the branching
// observe declassifies the program from Lockstep, forcing per-ant dispatch.
// Programs whose discovery observe has no branching twin (the noisy-perception
// fold) instead gain an UNREACHABLE branching state: Lockstep() classifies by
// the state table alone, so the dead state forces the general path while no
// execution ever enters it.
func generalPathVariant(t *testing.T, prog sim.Program) sim.Program {
	t.Helper()
	states := append([]sim.ProgramState(nil), prog.States...)
	rewritten := false
	for i, st := range states {
		if st.Emit == sim.EmitSearch && st.Observe == sim.ObserveDiscovery {
			states[i].Observe = sim.ObserveDiscoverBranch
			states[i].NextB = st.Next
			rewritten = true
		}
	}
	if !rewritten {
		states = append(states, sim.ProgramState{
			Emit: sim.EmitSearch, Observe: sim.ObserveDiscoverBranch, Next: prog.Init, NextB: prog.Init,
		})
	}
	gp := prog
	gp.States = states
	if err := gp.Validate(); err != nil {
		t.Fatalf("%s: general-path variant invalid: %v", prog.Algorithm, err)
	}
	if gp.Lockstep() {
		t.Fatalf("%s: general-path variant still classifies as lockstep", prog.Algorithm)
	}
	return gp
}

// TestExtensionGeneralPathEquivalence pins the general-path implementations
// of the §6 opcodes (the drawn-recruit emits and the quality-tracking
// observes), which the compiled extension programs never reach on their own
// because they all classify as lockstep: the same programs, forced onto the
// per-ant path via generalPathVariant, must still reproduce the scalar trace
// bit for bit.
func TestExtensionGeneralPathEquivalence(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	graded := sim.MustEnvironment([]float64{0.3, 0.9, 0.2})
	seeds := []uint64{1, 7, 42, 2015}
	cases := []diffCase{
		{name: "general/simple", algo: Simple{}, n: 64, env: env, seeds: seeds, maxRounds: 200},
		{name: "general/adaptive", algo: Adaptive{}, n: 64, env: env, seeds: seeds, maxRounds: 200},
		{name: "general/quality", algo: QualityAware{}, n: 64, env: graded, seeds: seeds, maxRounds: 200},
		{name: "general/approxn", algo: ApproxN{Delta: 0.4}, n: 64, env: env, seeds: seeds, maxRounds: 200},
		{name: "general/noisy", algo: Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.25}, Assessor: nest.FlipAssessor{P: 0.1}}, n: 64, env: env, seeds: seeds, maxRounds: 300},
		{name: "general/noisy-exact", algo: Noisy{}, n: 64, env: graded, seeds: seeds, maxRounds: 200},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			gp := generalPathVariant(t, compileCase(t, c))
			compareTraces(t, c, scalarTrace(t, c), batchTrace(t, c, gp))
		})
	}
}

// TestCompiledInventoryPrograms pins the path classification of every
// compiled algorithm: the Algorithm 3 family and the recruit-draw/perception
// extensions stay on the lockstep fast path, Algorithm 2, the
// quorum-transport strategy and the Spreader process require the general path
// (branching observes; Spreader additionally splits its initial state), only
// the extensions that need parameter columns request them, only the quorum
// programs carry transport capacity, and only quorum and optimal decide.
// Spreader is the one program with no per-ant randomness at all — neither
// form of the process ever draws from an ant stream.
func TestCompiledInventoryPrograms(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0})
	for _, a := range compiledInventory() {
		prog, ok := a.(core.BatchCompilable).CompileBatch(64, env)
		if !ok {
			t.Fatalf("%s: did not compile", a.Name())
		}
		_, isOptimal := a.(Optimal)
		_, isQuorum := a.(Quorum)
		spr, isSpreader := a.(Spreader)
		if got := prog.Lockstep(); got == (isOptimal || isQuorum || isSpreader) {
			t.Errorf("%s: Lockstep() = %v, want %v", a.Name(), got, !(isOptimal || isQuorum || isSpreader))
		}
		if wantSplit := isSpreader && !spr.SearchAll; (prog.InitSplit > 0) != wantSplit {
			t.Errorf("%s: InitSplit = %d, want split %v", a.Name(), prog.InitSplit, wantSplit)
		}
		_, isAdaptive := a.(Adaptive)
		if prog.NeedsIntParam() != isAdaptive {
			t.Errorf("%s: NeedsIntParam() = %v", a.Name(), prog.NeedsIntParam())
		}
		_, isApproxN := a.(ApproxN)
		if prog.NeedsFloatParam() != isApproxN {
			t.Errorf("%s: NeedsFloatParam() = %v", a.Name(), prog.NeedsFloatParam())
		}
		if prog.UsesCarry() != isQuorum {
			t.Errorf("%s: UsesCarry() = %v, want %v", a.Name(), prog.UsesCarry(), isQuorum)
		}
		if wantDecides := isQuorum || isOptimal; prog.Decides() != wantDecides {
			t.Errorf("%s: Decides() = %v, want %v", a.Name(), prog.Decides(), wantDecides)
		}
		if prog.NeedsAntRNG() == (isOptimal || isSpreader) {
			t.Errorf("%s: NeedsAntRNG() = %v; only optimal and spreader never draw per-ant", a.Name(), prog.NeedsAntRNG())
		}
	}
}

// TestRunBatchFallsBackForScalarOnlyConfigs pins the eligibility rules and
// the human-readable fallback reasons: configurations carrying scalar-only
// features and algorithms without a compiled form must decline the batch path
// and say why.
func TestRunBatchFallsBackForScalarOnlyConfigs(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0})
	base := core.RunConfig{N: 16, Env: env}
	ineligible := []struct {
		name       string
		algo       core.Algorithm
		cfg        core.RunConfig
		wantReason string
	}{
		// A plain function wrapper is an arbitrary agent transformation: it
		// must decline with the exact named constant (fault specs are the one
		// wrapper family that compiles — asserted below).
		{"wrap", Simple{}, func() core.RunConfig {
			c := base
			c.Wrap = core.WrapFunc(func(a []sim.Agent) ([]sim.Agent, error) { return a, nil })
			return c
		}(), core.ReasonWrapperScalarOnly},
		// An invalid fault spec declines with the validation error rather
		// than compiling garbage lanes or falling through to the scalar path
		// silently.
		{"wrap invalid spec", Simple{}, func() core.RunConfig {
			c := base
			c.Wrap = faults.Spec{CrashFraction: 0.9, ByzantineFraction: 0.9}
			return c
		}(), "fault spec is invalid"},
		// Stock matcher configs compile since the matcher-ablation lowering;
		// only a genuinely custom implementation forces the scalar path, and
		// the reason names the type plus the stock models that do batch. The
		// assertion loop checks every comma-separated fragment.
		{"matcher", Quorum{}, func() core.RunConfig {
			c := base
			c.NewMatcher = func() sim.Matcher { return scalarOnlyMatcher{} }
			return c
		}(), "custom matcher,scalar-only-test,simultaneous,rendezvous"},
		// A transporting algorithm cannot batch a carry-less ablation matcher:
		// the scalar engine rejects the first transport round for it, so the
		// config stays scalar and the reason names the missing CarryMatcher.
		{"matcher transport", Quorum{}, func() core.RunConfig {
			c := base
			c.NewMatcher = func() sim.Matcher { return &sim.SimultaneousMatcher{} }
			return c
		}(), "quorum,carry 3,CarryMatcher"},
		{"concurrent", Simple{}, func() core.RunConfig {
			c := base
			c.Concurrent = true
			return c
		}(), core.ReasonConcurrentScalarOnly},
		{"not compilable", scalarOnlyAlgorithm{}, base, "does not implement core.BatchCompilable"},
		{"declined", ApproxN{Delta: 1.5}, base, "declined to compile"},
		{"declined quorum", Quorum{Multiplier: 0.5}, base, "declined to compile"},
		{"declined quorum docility", Quorum{Docility: 1.5}, base, "declined to compile"},
		// Spreader compiles now — except against environments violating its
		// single-good-nest requirement.
		{"declined spreader", Spreader{}, func() core.RunConfig {
			c := base
			c.Env = sim.MustEnvironment([]float64{1, 1})
			return c
		}(), "declined to compile"},
	}
	for _, tc := range ineligible {
		if _, ok, reason := core.CompileForBatch(tc.algo, tc.cfg); ok {
			t.Errorf("%s: config should not be batch-eligible", tc.name)
		} else {
			for _, want := range strings.Split(tc.wantReason, ",") {
				if !strings.Contains(reason, want) {
					t.Errorf("%s: reason %q does not mention %q", tc.name, reason, want)
				}
			}
		}
	}
	// The full compiled inventory — quorum, noisy and the spreader included —
	// is batch-eligible on a plain configuration.
	for _, a := range compiledInventory() {
		if _, ok, reason := core.CompileForBatch(a, base); !ok || reason != "" {
			t.Errorf("%s: ok=%v reason=%q, want eligible with empty reason", a.Name(), ok, reason)
		}
	}
	// Fault specs are the one wrapper family that compiles: an enabled spec
	// lands in the program's parameters, and a disabled (zero) spec wraps as
	// the identity and compiles fault-free.
	for _, a := range compiledInventory() {
		cfg := base
		cfg.Wrap = faults.Spec{CrashFraction: 0.1, ByzantineFraction: 0.05, Salt: 7}
		prog, ok, reason := core.CompileForBatch(a, cfg)
		if !ok || reason != "" {
			t.Errorf("%s+faults: ok=%v reason=%q, want eligible with empty reason", a.Name(), ok, reason)
			continue
		}
		if !prog.Params.Faults.Enabled() || prog.Params.Faults.CrashFraction != 0.1 {
			t.Errorf("%s+faults: compiled program carries faults %+v, want the cfg.Wrap spec", a.Name(), prog.Params.Faults)
		}
	}
	disabled := base
	disabled.Wrap = faults.Spec{}
	if prog, ok, reason := core.CompileForBatch(Simple{}, disabled); !ok || reason != "" {
		t.Errorf("disabled spec: ok=%v reason=%q, want eligible", ok, reason)
	} else if prog.Params.Faults.Enabled() {
		t.Errorf("disabled spec: compiled program carries enabled faults %+v", prog.Params.Faults)
	}
	// Stock matcher ablation configs are batch-eligible too (for carry-less
	// algorithms): the ablation sweep no longer pays scalar speed.
	for _, stock := range []func() sim.Matcher{
		func() sim.Matcher { return &sim.AlgorithmOneMatcher{} },
		func() sim.Matcher { return &sim.SimultaneousMatcher{} },
		func() sim.Matcher { return &sim.RendezvousMatcher{} },
	} {
		cfg := base
		cfg.NewMatcher = stock
		name := stock().Name()
		if _, ok, reason := core.CompileForBatch(Simple{}, cfg); !ok || reason != "" {
			t.Errorf("simple with stock matcher %s: ok=%v reason=%q, want eligible", name, ok, reason)
		}
		if _, ok, reason := core.CompileForBatch(Optimal{}, cfg); !ok || reason != "" {
			t.Errorf("optimal with stock matcher %s: ok=%v reason=%q, want eligible", name, ok, reason)
		}
	}
	// Non-compilable algorithms fall back without error at the runner level.
	if _, ok, err := core.RunBatch(scalarOnlyAlgorithm{}, base, []uint64{1}); ok || err != nil {
		t.Errorf("RunBatch on a non-compilable algorithm: ok=%v err=%v, want fallback", ok, err)
	}
}

// scalarOnlyAlgorithm is an Algorithm with no compiled form: since the
// Spreader gap closed, the entire shipped inventory compiles, so the
// fallback-for-uncompilable path needs a synthetic representative.
type scalarOnlyAlgorithm struct{}

func (scalarOnlyAlgorithm) Name() string { return "scalar-only-algo" }

func (scalarOnlyAlgorithm) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	return Simple{}.Build(n, env, src)
}

// scalarOnlyMatcher is a non-stock Matcher: configs supplying it must fall
// back to the scalar engine with a reason naming the type.
type scalarOnlyMatcher struct{}

func (scalarOnlyMatcher) Name() string { return "scalar-only-test" }

func (scalarOnlyMatcher) Match(n int, active []bool, src *rng.Source, capturedBy []int32, succeeded []bool) {
	for t := 0; t < n; t++ {
		capturedBy[t] = -1
		succeeded[t] = false
	}
}

// TestBatchCeilingBoundaryEquivalence pins the first colony size past the old
// n ≤ 2^16 fixed-point fast-path ceiling: before PR 9 the batch engine sized
// its per-count threshold tables at 65536 entries and silently depended on
// every count fitting that range, so n = 2^16 + 1 is exactly the cell where
// the reciprocal kernels (rng.Recip) take over from the tables. One seed and
// a short budget keep the scalar oracle affordable; the three algorithms
// cover the population draw (simple), the adaptive ladder rebuild at full-n
// counts (adaptive) and the quality-scaled product kernel (quality). One
// sharded variant runs the same colony through the parallel phase kernels.
func TestBatchCeilingBoundaryEquivalence(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("65537-ant scalar oracle is slow under -short")
	}
	env := sim.MustEnvironment([]float64{1, 0, 0.6})
	const n = 1<<16 + 1
	seeds := []uint64{2015}
	cases := []diffCase{
		{name: "ceiling/simple", algo: Simple{}, n: n, env: env, seeds: seeds, maxRounds: 12},
		{name: "ceiling/adaptive", algo: Adaptive{}, n: n, env: env, seeds: seeds, maxRounds: 12},
		{name: "ceiling/quality", algo: QualityAware{}, n: n, env: env, seeds: seeds, maxRounds: 12},
		{name: "ceiling/simple+shards", algo: Simple{}, n: n, env: env, seeds: seeds, maxRounds: 12, shards: 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			prog := compileCase(t, c)
			compareTraces(t, c, scalarTrace(t, c), batchTrace(t, c, prog))
		})
	}
}

// TestBatchShardInvariance pins the sharding contract directly: the same
// compiled program over the same seeds must produce bit-identical round
// traces at every shard count, including counts that do not divide n and a
// count exceeding the colony (which clamps). The scalar engine never runs
// here — shard-count invariance is a property of the batch engine alone, and
// scalar equivalence of the shards=1 base is pinned by the differential grid.
func TestBatchShardInvariance(t *testing.T) {
	t.Parallel()
	envBinary := sim.MustEnvironment([]float64{1, 0, 1, 0})
	envGraded := sim.MustEnvironment([]float64{0.3, 0.9, 0.2})
	mixed := faults.Spec{
		CrashFraction: 0.1, CrashWindow: 20,
		ByzantineFraction: 0.05,
		SleepFraction:     0.1, SleepWindow: 30,
		Salt: 14,
	}
	cases := []diffCase{
		{name: "simple", algo: Simple{}, n: 96, env: envBinary, seeds: []uint64{1, 7}, maxRounds: 200},
		{name: "quality", algo: QualityAware{}, n: 97, env: envGraded, seeds: []uint64{1, 7}, maxRounds: 200},
		{name: "optimal", algo: Optimal{}, n: 96, env: envBinary, seeds: []uint64{1, 7}, maxRounds: 160},
		{name: "quorum", algo: Quorum{}, n: 96, env: envBinary, seeds: []uint64{1, 7}, maxRounds: 200},
		{name: "simple+faults", algo: Simple{}, n: 96, env: envBinary, seeds: []uint64{1, 7}, maxRounds: 200, faults: mixed},
		{name: "simple+sched", algo: Simple{}, n: 96, env: envBinary, seeds: []uint64{1, 7}, maxRounds: 200, faults: mixed,
			sched: func() faults.Schedule { return stressSchedule{} }},
		{name: "optimal+sched", algo: Optimal{}, n: 97, env: envBinary, seeds: []uint64{1, 7}, maxRounds: 160,
			sched: func() faults.Schedule { return faults.Churn{CrashProb: 0.02, MeanDowntime: 6} }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			prog := compileCase(t, c)
			base := c
			base.shards = 1
			want := batchTrace(t, base, prog)
			for _, sh := range []int{2, 3, 7, 1024} {
				v := c
				v.shards = sh
				v.name = fmt.Sprintf("%s/shards%d", c.name, sh)
				compareTraces(t, v, want, batchTrace(t, v, prog))
			}
		})
	}
}

// TestBatchWorkerInvariance pins the worker-budget contract at the runner
// layer: core.RunBatch must return identical Results for any cfg.BatchWorkers
// and cfg.BatchShards combination — lanes and shards partition work, they
// never reorder draws. This is the end-to-end form of the satellite fix that
// lets a single-replicate run use more than one core.
func TestBatchWorkerInvariance(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	seeds := []uint64{1, 7, 42}
	run := func(workers, shards int) []core.Result {
		t.Helper()
		cfg := core.RunConfig{N: 96, Env: env, MaxRounds: 400, StabilityWindow: 2,
			BatchWorkers: workers, BatchShards: shards}
		res, ok, err := core.RunBatch(Simple{}, cfg, seeds)
		if err != nil || !ok {
			t.Fatalf("RunBatch(workers=%d, shards=%d): ok=%v err=%v", workers, shards, ok, err)
		}
		return res
	}
	want := run(1, 1)
	for _, wc := range []struct{ workers, shards int }{
		{1, 4}, {2, 0}, {4, 0}, {8, 3}, {16, 16},
	} {
		if got := run(wc.workers, wc.shards); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d shards=%d diverged:\ngot  %+v\nwant %+v", wc.workers, wc.shards, got, want)
		}
	}
	// Adaptive-fault lanes under the same sweep: each lane steps its own
	// schedule instance on its own adversary stream sequentially, so worker
	// and shard fan-out must not perturb the mutations either.
	runSched := func(workers, shards int) []core.Result {
		t.Helper()
		cfg := core.RunConfig{N: 96, Env: env, MaxRounds: 400, StabilityWindow: 2,
			BatchWorkers: workers, BatchShards: shards}
		cfg.Wrap = faults.Spec{ByzantineFraction: 0.1, Salt: 15,
			NewSchedule: func() faults.Schedule { return stressSchedule{} }}
		res, ok, err := core.RunBatch(Simple{}, cfg, seeds)
		if err != nil || !ok {
			t.Fatalf("RunBatch+sched(workers=%d, shards=%d): ok=%v err=%v", workers, shards, ok, err)
		}
		return res
	}
	wantSched := runSched(1, 1)
	for _, wc := range []struct{ workers, shards int }{
		{1, 4}, {4, 0}, {8, 3},
	} {
		if got := runSched(wc.workers, wc.shards); !reflect.DeepEqual(got, wantSched) {
			t.Errorf("sched workers=%d shards=%d diverged:\ngot  %+v\nwant %+v", wc.workers, wc.shards, got, wantSched)
		}
	}
}

// TestQuorumThresholdOverflowDecline is the regression guard for the one
// intentional large-n compile gate left after the ceiling removal: a quorum
// threshold M·n that cannot live in the engine's 32-bit threshold register
// must keep declining to compile, and the runner must keep surfacing the
// named fallback reason rather than silently truncating the threshold.
func TestQuorumThresholdOverflowDecline(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0})
	// 1.5 · 1.5e9 > MaxInt32: over the register; one ant fewer at multiplier
	// 1.1 stays comfortably under and must still compile.
	over := (1 << 31) // mult 1.5 → threshold 3.2e9
	if _, ok := (Quorum{}).CompileBatch(over, env); ok {
		t.Fatalf("Quorum{}.CompileBatch(n=%d) compiled; threshold overflows int32", over)
	}
	if _, ok := (Quorum{Multiplier: 1.5}).CompileBatch(1<<20, env); !ok {
		t.Fatalf("Quorum{}.CompileBatch(n=2^20) declined; threshold fits int32")
	}
	cfg := core.RunConfig{N: over, Env: env}
	if _, ok, reason := core.CompileForBatch(Quorum{}, cfg); ok {
		t.Errorf("CompileForBatch(quorum, n=%d) eligible; want the named decline", over)
	} else if !strings.Contains(reason, "declined to compile") {
		t.Errorf("decline reason %q does not name the compile refusal", reason)
	}
}
