// Package load turns Go package patterns into type-checked syntax trees
// without any dependency outside the standard library. It shells out to
// `go list -export -json -deps` for package metadata and compiled export
// data, parses the target packages' sources with go/parser, and resolves
// imports through the gc export-data importer — so the hhlint analyzers
// see exactly what the compiler built, fully offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package bundles everything an analyzer pass needs for one package.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg mirrors the subset of `go list -json` output we consume.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a directory inside a Go module), parses the
// matched packages, and type-checks them against the compiler's export
// data for every dependency. Target packages are returned in a stable
// import-path order; dependencies are only used for type resolution.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		pkg, err := check(fset, t.ImportPath, t.Dir, t.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses files and type-checks one package.
func check(fset *token.FileSet, path, dir string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	return &Package{PkgPath: path, Fset: fset, Syntax: syntax, Types: tpkg, Info: info}, nil
}

// exportImporter resolves imports from a pre-listed map of export files,
// falling back to a fresh `go list -export` query for paths (typically
// transitive std dependencies) the initial listing did not cover. A single
// gc importer instance is shared across all imports so that every package
// sees one canonical *types.Package per import path — type identity in
// go/types is pointer identity.
type exportImporter struct {
	exports map[string]string
	gc      types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	im := &exportImporter{exports: exports}
	im.gc = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		f, ok := im.exports[p]
		if !ok {
			var err error
			if f, err = exportFile(p); err != nil {
				return nil, err
			}
			im.exports[p] = f
		}
		return os.Open(f)
	})
	return im
}

func (im *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.gc.Import(path)
}

// exportFile asks the go tool for the compiled export data of one package.
func exportFile(path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("load: go list -export %s: %v\n%s", path, err, stderr.String())
	}
	f := strings.TrimSpace(stdout.String())
	if f == "" {
		return "", fmt.Errorf("load: no export data for %q", path)
	}
	return f, nil
}

// LoadFixture type-checks the package in srcRoot/pkgPath, resolving
// non-standard imports from sibling directories under srcRoot (the
// analysistest GOPATH-style layout) and standard-library imports from
// compiler export data. Only the named package's files are returned.
func LoadFixture(srcRoot, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	im := &fixtureImporter{
		srcRoot: srcRoot,
		fset:    fset,
		std:     newExportImporter(fset, make(map[string]string)),
		pkgs:    make(map[string]*Package),
	}
	return im.load(pkgPath)
}

type fixtureImporter struct {
	srcRoot string
	fset    *token.FileSet
	std     *exportImporter
	pkgs    map[string]*Package
}

func (im *fixtureImporter) load(pkgPath string) (*Package, error) {
	if p, ok := im.pkgs[pkgPath]; ok {
		return p, nil
	}
	dir := filepath.Join(im.srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: fixture %s: %v", pkgPath, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: fixture %s: no Go files in %s", pkgPath, dir)
	}
	pkg, err := check(im.fset, pkgPath, dir, files, im)
	if err != nil {
		return nil, err
	}
	im.pkgs[pkgPath] = pkg
	return pkg, nil
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(im.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		pkg, err := im.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.std.Import(path)
}
