package experiment

import (
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/workload"
)

func TestMeasureConvergence(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1})
	pt, err := MeasureConvergence(algo.Simple{}, core.RunConfig{N: 96, Env: env}, 8, "test-e")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Reps != 8 || pt.Solved != 8 || pt.SuccessRate != 1 {
		t.Fatalf("point = %+v", pt)
	}
	if pt.Rounds.Mean <= 0 || pt.Rounds.N != 8 {
		t.Fatalf("rounds summary = %+v", pt.Rounds)
	}
	if pt.WinnerQuality.Mean != 1 {
		t.Fatalf("winner quality = %v", pt.WinnerQuality.Mean)
	}
}

func TestMeasureConvergenceDeterministic(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 1})
	a, err := MeasureConvergence(algo.Simple{}, core.RunConfig{N: 64, Env: env}, 4, "det")
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureConvergence(algo.Simple{}, core.RunConfig{N: 64, Env: env}, 4, "det")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds.Mean != b.Rounds.Mean {
		t.Fatalf("same tag diverged: %v vs %v", a.Rounds.Mean, b.Rounds.Mean)
	}
}

func TestMeasureConvergenceValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := MeasureConvergence(nil, core.RunConfig{N: 4, Env: env}, 2, "x"); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := MeasureConvergence(algo.Simple{}, core.RunConfig{N: 4, Env: env}, 0, "x"); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestSweepAndFits(t *testing.T) {
	t.Parallel()
	grid := workload.Grid{Ns: []int{64, 256}, Ks: []int{2, 4}, Tag: "sweep-test"}
	points, err := Sweep(algo.Simple{}, grid, nil, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	fit, err := FitRoundsVsKLogN(points)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope <= 0 {
		t.Fatalf("k·log n fit slope %v, want positive", fit.Slope)
	}
	// Restrict to k=2 and fit against log n.
	var k2 []ConvergencePoint
	for _, p := range points {
		if p.K == 2 {
			k2 = append(k2, p)
		}
	}
	logFit, err := FitRoundsVsLogN(k2)
	if err != nil {
		t.Fatal(err)
	}
	if logFit.Slope <= 0 {
		t.Fatalf("log n fit slope %v, want positive", logFit.Slope)
	}
	out := Table("sweep", points)
	if !strings.Contains(out, "simple") || !strings.Contains(out, "success") {
		t.Fatalf("table rendering:\n%s", out)
	}
}

func TestMeasureRecruitSuccessLemma21(t *testing.T) {
	t.Parallel()
	m := &sim.AlgorithmOneMatcher{}
	for _, pool := range []int{2, 4, 32, 256} {
		pt, err := MeasureRecruitSuccess(m, pool, 1.0, 4000, 11)
		if err != nil {
			t.Fatal(err)
		}
		if pt.WilsonLo < 1.0/16 {
			t.Fatalf("pool %d: Wilson lower bound %.4f below Lemma 2.1's 1/16", pool, pt.WilsonLo)
		}
	}
	if _, err := MeasureRecruitSuccess(m, 0, 1, 10, 1); err == nil {
		t.Fatal("pool 0 accepted")
	}
	if _, err := MeasureRecruitSuccess(m, 2, 1, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestMeasureIgnorantPersistenceLemma31(t *testing.T) {
	t.Parallel()
	pt, err := MeasureIgnorantPersistence(2048, 7, 32)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MinStayRate < 0.25 {
		t.Fatalf("min stay rate %.4f below Lemma 3.1's 1/4", pt.MinStayRate)
	}
	if pt.Rounds <= 0 {
		t.Fatalf("no rounds measured: %+v", pt)
	}
	if _, err := MeasureIgnorantPersistence(2, 1, 1); err == nil {
		t.Fatal("tiny n accepted")
	}
}

func TestMeasureNestDeltaLemmas41And42(t *testing.T) {
	t.Parallel()
	m := &sim.AlgorithmOneMatcher{}
	// Two equal competing nests: symmetry (Lemma 4.1) and drop-out
	// probability >= 1/66 (Lemma 4.2).
	pt, err := MeasureNestDelta(m, []int{64, 64}, 20000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if pt.PNeg < 1.0/66 {
		t.Fatalf("P[Y<0] = %.4f below Lemma 4.2's 1/66", pt.PNeg)
	}
	if diff := pt.PNeg - pt.PPos; diff > 0.02 || diff < -0.02 {
		t.Fatalf("Lemma 4.1 symmetry violated: P[Y<0]=%.4f vs P[Y>0]=%.4f", pt.PNeg, pt.PPos)
	}
	// Asymmetric nests keep the symmetry property per Lemma 4.1.
	pt, err = MeasureNestDelta(m, []int{32, 96}, 20000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if diff := pt.PNeg - pt.PPos; diff > 0.02 || diff < -0.02 {
		t.Fatalf("asymmetric symmetry violated: %.4f vs %.4f", pt.PNeg, pt.PPos)
	}
	if _, err := MeasureNestDelta(m, nil, 10, 1); err == nil {
		t.Fatal("no nests accepted")
	}
	if _, err := MeasureNestDelta(m, []int{0}, 10, 1); err == nil {
		t.Fatal("empty nest accepted")
	}
}

func TestMeasureInitialGapLemma54(t *testing.T) {
	t.Parallel()
	pt, err := MeasureInitialGap(256, 4, 20000, 19)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MeanGap < pt.BoundMin {
		t.Fatalf("E[ε] = %v below Lemma 5.4's bound %v", pt.MeanGap, pt.BoundMin)
	}
	// The proof's core combinatorial fact: ties happen with probability < 2/3.
	if pt.TieRate >= 2.0/3 {
		t.Fatalf("tie rate %.4f not below 2/3", pt.TieRate)
	}
	if _, err := MeasureInitialGap(1, 2, 10, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestMeasureExtinctionLemmas58And59(t *testing.T) {
	t.Parallel()
	// d=8 (rather than the paper's 64) raises the threshold so small test
	// runs still produce crossings to grade.
	pt, err := MeasureExtinction(256, 4, 4, 8, 23)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Crossings == 0 {
		t.Fatal("no threshold crossings observed; experiment mis-sized")
	}
	if pt.Recovered > 0 {
		t.Fatalf("%d sub-threshold nests won the run (Lemma 5.9 violated)", pt.Recovered)
	}
	if pt.Extinct == 0 {
		t.Fatal("no extinctions recorded")
	}
	if pt.MeanLinger > float64(pt.BudgetRounds) {
		t.Fatalf("mean linger %.1f exceeds the O(k log n) budget %d", pt.MeanLinger, pt.BudgetRounds)
	}
	if _, err := MeasureExtinction(0, 1, 1, 1, 1); err == nil {
		t.Fatal("invalid parameters accepted")
	}
}
