package experiment

import "github.com/gmrl/househunt/internal/stats"

// statsWilson aliases the stats package's Wilson interval so probes.go reads
// without a qualified import at each call site.
func statsWilson(successes, trials int) (lo, hi float64) {
	return stats.WilsonInterval(successes, trials)
}
