package nest

import (
	"fmt"
	"math"

	"github.com/gmrl/househunt/internal/rng"
)

// BuffonAreaEstimator reproduces the "ants estimate area using Buffon's
// needle" mechanism (Mallon & Franks 2000, the paper's [20]): on a first
// visit an ant lays a pheromone trail of total length L1 across the cavity;
// on a second visit it walks a path of length L2 and counts intersections
// with the first trail. For idealized random chords in a cavity of area A the
// expected intersection count is E[X] = 2·L1·L2 / (π·A), so A can be
// estimated as 2·L1·L2 / (π·X).
//
// The simulation drops both paths as collections of uniformly random short
// segments ("needles") in a square cavity of the true area and counts actual
// segment intersections, so the estimator inherits genuine geometric noise
// rather than postulated Gaussian noise.
type BuffonAreaEstimator struct {
	// TrailLength is each visit's total path length; default 12 if <= 0.
	TrailLength float64
	// SegmentLength is the needle length the paths are chopped into;
	// default 0.5 if <= 0.
	SegmentLength float64
}

// segment is a 2D line segment.
type segment struct {
	x1, y1, x2, y2 float64
}

// intersects reports proper intersection between two segments using
// orientation tests.
func (s segment) intersects(o segment) bool {
	d1 := orient(o.x1, o.y1, o.x2, o.y2, s.x1, s.y1)
	d2 := orient(o.x1, o.y1, o.x2, o.y2, s.x2, s.y2)
	d3 := orient(s.x1, s.y1, s.x2, s.y2, o.x1, o.y1)
	d4 := orient(s.x1, s.y1, s.x2, s.y2, o.x2, o.y2)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

// orient returns the cross-product orientation of (c) relative to ray (a→b).
func orient(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// needleCount is the number of whole needles a trail of the given nominal
// length is chopped into; dropTrail lays needleCount·segLen of actual path,
// and EstimateArea's formula must use that same length.
func needleCount(trail, segLen float64) int {
	return int(math.Ceil(trail / segLen))
}

// dropTrail scatters needles of total length trail inside a side×side square.
func dropTrail(side, trail, segLen float64, src *rng.Source) []segment {
	n := needleCount(trail, segLen)
	segs := make([]segment, 0, n)
	for i := 0; i < n; i++ {
		x := src.Float64() * side
		y := src.Float64() * side
		theta := src.Float64() * 2 * math.Pi
		segs = append(segs, segment{
			x1: x, y1: y,
			x2: x + segLen*math.Cos(theta),
			y2: y + segLen*math.Sin(theta),
		})
	}
	return segs
}

// EstimateArea runs the two-visit Buffon process in a square cavity of the
// given true area and returns the estimated area. It returns an error for
// non-positive areas.
func (b BuffonAreaEstimator) EstimateArea(trueArea float64, src *rng.Source) (float64, error) {
	if trueArea <= 0 {
		return 0, fmt.Errorf("nest: Buffon estimator needs positive area, got %v", trueArea)
	}
	trail := b.TrailLength
	if trail <= 0 {
		trail = 12
	}
	segLen := b.SegmentLength
	if segLen <= 0 {
		segLen = 0.5
	}
	side := math.Sqrt(trueArea)

	first := dropTrail(side, trail, segLen, src)
	second := dropTrail(side, trail, segLen, src)
	crossings := 0
	for _, s := range second {
		for _, f := range first {
			if s.intersects(f) {
				crossings++
			}
		}
	}
	if crossings == 0 {
		// No crossings resolves to "very large": cap at an order of magnitude
		// above truth, mirroring how an ant would read an empty sample.
		return trueArea * 10, nil
	}
	// The estimator must use the path length actually laid, not the nominal
	// trail length: dropTrail rounds up to whole needles, so each visit lays
	// needleCount·segLen of path. Using the nominal length biases the
	// estimate low whenever TrailLength is not a multiple of SegmentLength.
	laid := float64(needleCount(trail, segLen)) * segLen
	return 2 * laid * laid / (math.Pi * float64(crossings)), nil
}
