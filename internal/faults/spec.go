package faults

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// SleepAnt wraps an agent in an idle reserve: until its wake round it waits
// passively at the home nest and ignores everything it observes (being
// captured included — an idle ant dragged around simply walks home again),
// and from the wake round on it is fully transparent. Sleeping ants are NOT
// faulty: the census counts them, so a colony with an idle pool cannot
// converge before the reserve wakes and joins the emigration — the scenario
// of Afek–Gordon–Sulamy's "Idle Ants Have a Role" (see EXPERIMENTS.md E24).
type SleepAnt struct {
	inner     sim.Agent
	wakeRound int
}

var _ sim.Agent = (*SleepAnt)(nil)

// NewSleepAnt schedules inner to wake at the start of wakeRound (>= 2: a
// wake round of 1 would never sleep at all).
func NewSleepAnt(inner sim.Agent, wakeRound int) (*SleepAnt, error) {
	if inner == nil {
		return nil, fmt.Errorf("faults: nil inner agent")
	}
	if wakeRound < 2 {
		return nil, fmt.Errorf("faults: wake round %d must be >= 2", wakeRound)
	}
	return &SleepAnt{inner: inner, wakeRound: wakeRound}, nil
}

// Act implements sim.Agent. The inner agent's logical clock starts at the
// wake round: it sees round 1 on its first call and runs its algorithm from
// the beginning, exactly as the batch engine's fault lane wakes a sleeping
// ant into the program's initial state. Without the translation, round-keyed
// agents (OptimalAnt's global search fires at round 1 only) would skip their
// opening moves entirely.
func (s *SleepAnt) Act(round int) sim.Action {
	if round < s.wakeRound {
		return sim.Recruit(false, sim.Home)
	}
	return s.inner.Act(round - s.wakeRound + 1)
}

// Observe implements sim.Agent, with the same clock translation as Act.
func (s *SleepAnt) Observe(round int, out sim.Outcome) {
	if round < s.wakeRound {
		return
	}
	s.inner.Observe(round-s.wakeRound+1, out)
}

// Awake reports whether the ant has joined the emigration.
func (s *SleepAnt) Awake(round int) bool { return round >= s.wakeRound }

// Committed delegates to the inner agent: a sleeping ant's inner agent has
// never acted, so it reports uncommitted, and an awake ant's commitment is
// the inner one.
func (s *SleepAnt) Committed() (sim.NestID, bool) {
	if com, ok := s.inner.(committer); ok {
		return com.Committed()
	}
	return sim.Home, false
}

// sleepDecider is a SleepAnt over a deciding inner agent, forwarding the
// verdict for the same census reason as crashDecider.
type sleepDecider struct{ *SleepAnt }

// Decided forwards the inner agent's verdict (false while asleep: the inner
// agent is still in its initial state).
func (s sleepDecider) Decided() bool { return s.inner.(decider).Decided() }

// wrapSleep wraps inner to sleep until wakeRound, preserving the inner
// agent's decider contract when it has one.
func wrapSleep(inner sim.Agent, wakeRound int) (sim.Agent, error) {
	slept, err := NewSleepAnt(inner, wakeRound)
	if err != nil {
		return nil, err
	}
	if _, ok := inner.(decider); ok {
		return sleepDecider{slept}, nil
	}
	return slept, nil
}

// Spec is the declarative fault plan: per-colony crash, Byzantine and sleep
// fractions plus the stream salt the victim assignment is drawn with. It
// lowers BOTH ways — to the scalar wrappers (WrapAgents, for core.RunConfig.
// Wrap) and to the batch engine's fault lanes (BatchFaults, recognized by
// core.CompileForBatch) — from ONE canonical stream consumption,
// sim.FaultSpec.Assign, which is what pins the two paths bit-identical: the
// same ants crash at the same rounds, turn Byzantine, or sleep until the same
// wake rounds under either engine.
//
// Spec supersedes Plan: a Plan{...}.Apply(rng.New(seed).Split(salt)) wrapper
// draws exactly like Spec{..., Salt: salt} with SleepFraction 0, but only
// Spec-wrapped configs are batch-eligible.
type Spec struct {
	// CrashFraction of the colony crashes at a uniformly random round in
	// [1, CrashWindow] (§6 crash faults).
	CrashFraction float64
	// CrashWindow is the last round by which scheduled crashes fire;
	// values <= 0 select sim.DefaultFaultWindow.
	CrashWindow int
	// ByzantineFraction of the colony is replaced by luring adversaries
	// (§6 malicious faults).
	ByzantineFraction float64
	// SleepFraction of the colony starts as an idle reserve, waking at a
	// uniformly random round in [2, SleepWindow+1].
	SleepFraction float64
	// SleepWindow bounds the wake rounds; values <= 0 select
	// sim.DefaultFaultWindow.
	SleepWindow int
	// Salt is the Split index of the fault stream: victims are drawn from
	// rng.New(seed).Split(Salt) under the run's root seed.
	Salt uint64
	// NewSchedule, when non-nil, attaches an adaptive adversary: a fresh
	// Schedule per replicate, stepped at the end of every round on the
	// colony snapshot with the dedicated adversary stream
	// rng.New(seed).Split(EffectiveScheduleSalt). Both engines build the
	// schedule from this factory and feed it the same snapshot and stream,
	// which is what keeps adaptive-fault replicates bit-identical. The
	// factory must be deterministic: two calls must yield schedules that
	// draw and mutate identically.
	NewSchedule func() Schedule
	// ScheduleSalt is the Split index of the adversary stream; 0 selects
	// Salt+1 (see sim.FaultSpec.EffectiveScheduleSalt).
	ScheduleSalt uint64
	// Rebuild rebuilds the pristine colony for the replicate seed, for
	// schedules that restart crashed ants: a restarted ant adopts
	// Rebuild(seed)[i] as its fresh inner agent, whose per-ant stream is
	// bit-identical to the one ant i was born with (builder streams are
	// split, never consumed, off the builder root). Scalar-only — the batch
	// lane re-seeds restarted ants from its own columns — and required only
	// when the schedule emits FaultRestart ops; leaving it nil makes a
	// restart a run error. Typically cfg's algorithm builder closed over the
	// run's n and environment.
	Rebuild func(seed uint64) ([]sim.Agent, error)
}

// lower converts the spec to its sim-level form. Rebuild stays behind:
// it is scalar-machinery only.
func (s Spec) lower() sim.FaultSpec {
	return sim.FaultSpec{
		CrashFraction:     s.CrashFraction,
		CrashWindow:       s.CrashWindow,
		ByzantineFraction: s.ByzantineFraction,
		SleepFraction:     s.SleepFraction,
		SleepWindow:       s.SleepWindow,
		Salt:              s.Salt,
		NewSchedule:       s.NewSchedule,
		ScheduleSalt:      s.ScheduleSalt,
	}
}

// Enabled reports whether the spec injects any faults.
func (s Spec) Enabled() bool { return s.lower().Enabled() }

// Validate checks the spec's fractions and windows.
func (s Spec) Validate() error { return s.lower().Validate() }

// BatchFaults implements core.BatchFaultWrapper: it exposes the spec's
// sim-level lowering so core.CompileForBatch can compile a Spec-wrapped
// config to the batch engine's fault lanes instead of declining the wrapper.
func (s Spec) BatchFaults() (sim.FaultSpec, bool) { return s.lower(), s.Enabled() }

// WrapAgents implements core.AgentWrapper: it draws the victim assignment
// from rng.New(seed).Split(Salt) via sim.FaultSpec.Assign — the batch lane
// consumes the identical stream — and wraps the victims in the scalar
// CrashAnt/ByzantineAnt/SleepAnt wrappers, preserving each inner agent's
// decider contract.
//
// With a NewSchedule attached, EVERY ant is wrapped instead (schedAnt
// subsumes the static wrappers), sharing one controller that steps the
// schedule from the engine's round hook: any ant can crash or restart
// under an adaptive adversary, so every ant needs the status machinery.
// The victim assignment is drawn identically either way.
func (s Spec) WrapAgents(seed uint64, agents []sim.Agent) ([]sim.Agent, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	fs := s.lower()
	if !fs.Enabled() {
		return agents, nil
	}
	n := len(agents)
	crashRound := make([]int32, n)
	wakeRound := make([]int32, n)
	byz := make([]uint8, n)
	perm := make([]int32, n)
	src := rng.New(seed).Split(s.Salt)
	fs.Assign(n, src, crashRound, wakeRound, byz, perm)
	if s.NewSchedule != nil {
		return s.wrapScheduled(seed, fs, agents, crashRound, wakeRound, byz)
	}
	for i := range agents {
		var err error
		switch {
		case crashRound[i] > 0:
			agents[i], err = wrapCrash(agents[i], int(crashRound[i]))
		case byz[i] != 0:
			// The per-victim stream mirrors Plan.Apply's split; the adversary
			// never draws from it (see ByzantineAnt), so the batch lane needs
			// no counterpart.
			agents[i] = NewByzantineAnt(src.Split(uint64(i)))
		case wakeRound[i] > 0:
			agents[i], err = wrapSleep(agents[i], int(wakeRound[i]))
		}
		if err != nil {
			return nil, err
		}
	}
	return agents, nil
}

// wrapScheduled is WrapAgents' adaptive path: one schedCtrl per replicate,
// every ant wrapped in a schedAnt carrying its static fault plan (which
// sub-sumes CrashAnt/ByzantineAnt/SleepAnt behavior), the schedule built
// fresh and its adversary stream split at the canonical index. The
// per-victim Byzantine stream split of the static path is skipped: Split
// never advances the parent and ByzantineAnt never draws, so the streams
// stay bit-identical.
func (s Spec) wrapScheduled(seed uint64, fs sim.FaultSpec, agents []sim.Agent, crashRound, wakeRound []int32, byz []uint8) ([]sim.Agent, error) {
	n := len(agents)
	ctrl := &schedCtrl{
		sched:   s.NewSchedule(),
		adv:     rng.New(seed).Split(fs.EffectiveScheduleSalt()),
		rebuild: s.Rebuild,
		seed:    seed,
		ants:    make([]*schedAnt, n),
		ops:     make([]sim.FaultOp, 0, 64),
	}
	if ctrl.sched == nil {
		return nil, fmt.Errorf("faults: NewSchedule returned nil")
	}
	for _, inner := range agents {
		// The algorithm's decider contract is a colony property (mirrors
		// Program.Decides), read off the pre-replacement agents so a
		// Byzantine victim's lost inner still counts.
		if _, ok := inner.(decider); ok {
			ctrl.decides = true
			break
		}
	}
	for i, inner := range agents {
		a := &schedAnt{ctrl: ctrl, idx: i, inner: inner, lastNest: sim.Home}
		switch {
		case crashRound[i] > 0:
			a.crashAt = int(crashRound[i])
		case byz[i] != 0:
			a.inner = nil
			a.status = sim.AntByzantine
		case wakeRound[i] > 0:
			a.wakeAt = int(wakeRound[i])
			a.status = sim.AntSleeping
		}
		ctrl.ants[i] = a
		if a.inner != nil {
			if _, ok := a.inner.(decider); ok {
				agents[i] = schedDecider{a}
				continue
			}
		}
		agents[i] = a
	}
	return agents, nil
}
