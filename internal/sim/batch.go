package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gmrl/househunt/internal/rng"
)

// Batch executes R replicate colonies of n ants each, all running one
// compiled Program, as a struct-of-arrays sweep: per-ant state (PFSM state
// id, register file, RNG stream, location) lives in flat slices rather than
// heap-allocated agent objects, and a round resolves with plain switches over
// opcodes — no interface dispatch, no map lookups and no per-round
// allocations on the hot path. Replicates are fanned out across a worker
// pool; each worker owns one lane of flat arrays and streams replicates
// through it.
//
// Two execution paths exist. Programs whose transitions are all
// outcome-independent (Program.Lockstep) keep the whole colony in one shared
// state, so the opcode dispatch happens once per round and the recruit phase
// needs no recruiter/slot indirection because slot t is ant t. Programs with
// branching observes (Algorithm 2) run the general path state-major: each
// round the per-ant state column is regrouped into per-state buckets, the
// emit and observe opcodes dispatch once per occupied state, and recruiting
// ants are assembled into a slot table in ant order so the matcher sees
// exactly the scalar engine's slot space (see stepGeneral).
//
// The recruit draws run on fixed-point kernels where possible: every
// Bernoulli probability whose numerator is a population count is materialized
// once into a table of rng.Thresholds (count/n, quality·count/n, the adaptive
// schedule, the quorum docility), so the per-ant inner loops compare raw
// integers with zero floating-point operations. The threshold transform is
// bit-identical to rng.Source.Bernoulli by construction (see rng.Threshold);
// colonies too large to table fall back to the float draws, which are
// bit-identical too.
//
// The recruitment pairing defaults to the paper's Algorithm 1 and can be
// swapped for any Matcher via WithBatchMatcher: the engine hands the matcher
// the recruiting slots in scalar engine order, so the stock ablation models
// (SimultaneousMatcher, RendezvousMatcher) run batched with exactly their
// scalar draw sequences.
//
// The engine is bit-compatible with the scalar path: replicate r seeded with
// seeds[r] produces round-for-round identical populations, commitments and
// final results to an Engine running the same algorithm's scalar agents under
// the same seed (pinned for every compiled algorithm — Algorithms 2 and 3 and
// the §6 extensions, including the carry-matched quorum-transport strategy and
// the hook-driven noisy-perception model — and for every stock matcher by the
// randomized cross-engine differential harness in internal/algo).
// That holds because the batch engine derives exactly the same RNG streams —
// envSrc = root.Split(0), matchSrc = root.Split(1), ant i = root.Split(2).
// Split(i) — and consumes them in the same order as Engine.Step: per-ant
// draws are stream-disjoint from environment draws, search draws happen in
// ant order, and the matcher receives the recruiting slots in ant order, so
// fusing the emit and move loops preserves every sequence.
//
// A Batch is reusable and safe for concurrent Run calls; all mutable state
// lives in per-worker lanes.
type Batch struct {
	env        Environment
	prog       Program
	n          int
	workers    int
	probe      func(rep, round int, counts, committed []int)
	obs        BatchObserver
	newMatcher func() Matcher

	// Program traits, computed once at construction.
	lockstep  bool
	decides   bool
	antRNG    bool
	needI     bool
	needF     bool
	usesCarry bool
	faulted   bool

	// Shared read-only fixed-point draw tables (see newLane for the
	// per-lane mutable ones). Nil when the program does not use the opcode
	// or the colony is too large to table.
	popT  []rng.Threshold // Bernoulli(count/n) by count, EmitRecruitPop
	qualT []rng.Threshold // Bernoulli(q_j·count/n), row-major (k+1)×(n+1), EmitRecruitQual
	docT  rng.Threshold   // Bernoulli(QuorumDocility), ObserveQuorumTransport
	ada   bool            // lanes maintain the EmitRecruitAdaptive decay table
}

// batchTableMaxN caps the colony size for which the per-count threshold
// tables are materialized: above it the tables would dominate lane memory, so
// the draws fall back to the (equally bit-exact) float kernels.
const batchTableMaxN = 1 << 16

// BatchResult reports one replicate of a Batch run, mirroring the fields the
// scalar runner derives for core.Result.
type BatchResult struct {
	// Seed is the replicate's root seed.
	Seed uint64
	// Solved reports convergence within the round budget.
	Solved bool
	// Winner is the unanimously chosen nest (0 if unsolved).
	Winner NestID
	// WinnerQuality is q(Winner).
	WinnerQuality float64
	// Rounds is the round at which convergence was detected (the end of the
	// stability window), or the budget if unsolved.
	Rounds int
	// Committed is the final commitment census (index 0 = uncommitted).
	Committed []int
	// Decided counts ants in Final program states at termination, or -1 when
	// the program does not distinguish terminal states — the same convention
	// as core.Census.Decided.
	Decided int
	// Faulty counts the ants that were faulty at termination (Byzantine ants
	// plus crashes that fired), mirroring core.Census.Faulty; sleeping ants
	// are healthy and never counted. Zero without a fault spec.
	Faulty int
}

// BatchOption configures a Batch.
type BatchOption func(*Batch)

// WithBatchWorkers caps the worker pool; values < 1 select GOMAXPROCS.
func WithBatchWorkers(w int) BatchOption {
	return func(b *Batch) { b.workers = w }
}

// WithBatchProbe installs a per-round observer, called after each replicate
// round with that round's end-of-round populations (index 0 = home) and
// commitment census (index 0 = uncommitted). The slices are worker-owned
// scratch, valid only during the call; the probe may be invoked concurrently
// for different replicates. Probes exist for the golden equivalence tests.
func WithBatchProbe(probe func(rep, round int, counts, committed []int)) BatchOption {
	return func(b *Batch) { b.probe = probe }
}

// WithBatchMatcher replaces the recruitment pairing model (default: the
// paper's Algorithm 1). Matchers carry per-engine scratch state, so the
// option takes a factory; every worker lane constructs its own instance, and
// the factory must return a fresh matcher on each call (lanes are built
// concurrently). A nil factory keeps the default. Programs that transport
// (carry > 1) require the factory's matchers to implement CarryMatcher.
func WithBatchMatcher(newMatcher func() Matcher) BatchOption {
	return func(b *Batch) { b.newMatcher = newMatcher }
}

// NewBatch builds a batch engine for n-ant colonies of prog in env.
func NewBatch(env Environment, prog Program, n int, opts ...BatchOption) (*Batch, error) {
	if env.K() == 0 {
		return nil, fmt.Errorf("sim: batch needs a non-empty environment")
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: batch needs a positive colony, got %d", n)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	b := &Batch{
		env:       env,
		prog:      prog,
		n:         n,
		lockstep:  prog.Lockstep(),
		decides:   prog.Decides(),
		antRNG:    prog.NeedsAntRNG(),
		needI:     prog.NeedsIntParam(),
		needF:     prog.NeedsFloatParam(),
		usesCarry: prog.UsesCarry(),
		faulted:   prog.Params.Faults.Enabled(),
	}
	for _, o := range opts {
		o(b)
	}
	if b.newMatcher == nil {
		b.newMatcher = func() Matcher { return &AlgorithmOneMatcher{} }
	}
	probe := b.newMatcher()
	if probe == nil {
		return nil, fmt.Errorf("sim: batch matcher factory returned nil")
	}
	if _, carryOK := probe.(CarryMatcher); b.usesCarry && prog.Params.QuorumCarry > 1 && !carryOK {
		return nil, fmt.Errorf("sim: program %q transports (carry %d > 1) but matcher %q implements no CarryMatcher",
			prog.Algorithm, prog.Params.QuorumCarry, probe.Name())
	}
	b.buildTables()
	return b, nil
}

// buildTables materializes the shared fixed-point draw tables for the opcodes
// the program actually uses. Each table entry is the exact threshold of the
// exact float probability the scalar agents feed to Bernoulli, so table draws
// and float draws are interchangeable bit for bit.
func (b *Batch) buildTables() {
	var hasPop, hasQual, hasDoc, qualSafe bool
	qualSafe = true
	for _, st := range b.prog.States {
		switch st.Emit {
		case EmitRecruitPop:
			hasPop = true
		case EmitRecruitQual:
			hasQual = true
		case EmitRecruitAdaptive:
			b.ada = true
		}
		switch st.Observe {
		case ObserveQuorumTransport:
			hasDoc = true
		case ObserveAdopt, ObserveDiscoverNoisy:
			// These write quality values that are not environment qualities
			// (1, or a thresholded classification), so the quality-register
			// provenance column cannot index the quality table.
			qualSafe = false
		}
	}
	if hasDoc {
		b.docT = rng.NewThreshold(b.prog.Params.QuorumDocility)
	}
	n := b.n
	if n > batchTableMaxN {
		b.ada = false
		return
	}
	nF := float64(n)
	if hasPop {
		b.popT = make([]rng.Threshold, n+1)
		for c := 0; c <= n; c++ {
			b.popT[c] = rng.NewThreshold(float64(c) / nF)
		}
	}
	// The quality table is keyed by the provenance column qidx, which only
	// the lockstep path maintains (the general path keeps the float draw,
	// which is bit-identical anyway); it additionally needs every quality
	// write to be an environment quality or zero, and a nest id that fits
	// the uint8 column.
	if hasQual && qualSafe && b.lockstep && b.env.K() <= 255 {
		qs := b.env.Qualities()
		b.qualT = make([]rng.Threshold, len(qs)*(n+1))
		for j, q := range qs {
			row := j * (n + 1)
			for c := 0; c <= n; c++ {
				b.qualT[row+c] = rng.NewThreshold(q * float64(c) / nF)
			}
		}
	}
}

// N returns the colony size per replicate.
func (b *Batch) N() int { return b.n }

// K returns the number of candidate nests.
func (b *Batch) K() int { return b.env.K() }

// Run executes one replicate per seed and returns the results in seed order.
// maxRounds bounds each replicate; window is the stability window in rounds
// (values < 1 mean 1), both matching the scalar runner's semantics. The first
// replicate error (a compiled program emitting an invalid call) aborts the
// run.
func (b *Batch) Run(seeds []uint64, maxRounds, window int) ([]BatchResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: batch run needs at least one seed")
	}
	if maxRounds <= 0 {
		return nil, fmt.Errorf("sim: batch run needs positive maxRounds, got %d", maxRounds)
	}
	if window < 1 {
		window = 1
	}
	workers := b.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	results := make([]BatchResult, len(seeds))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ln := newLane(b)
			var obs LaneObserver
			if b.obs != nil {
				obs = b.obs.LaneObserver(w)
			}
			for {
				rep := int(next.Add(1)) - 1
				if rep >= len(seeds) || firstErr.Load() != nil {
					return
				}
				res, err := ln.runReplicate(rep, seeds[rep], maxRounds, window, b.probe, obs)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("sim: batch replicate %d (seed %d): %w", rep, seeds[rep], err))
					return
				}
				results[rep] = res
			}
		}(w)
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return results, nil
}

// lane is one worker's flat-array state: a full colony's registers plus the
// per-round scratch, reused across replicates.
//
// The per-ant state column is the execution model; the lockstep path (taken
// for programs with static successors, where the column would stay uniform by
// construction) models it as the single phase variable of runReplicate and
// keeps its specialized per-opcode loops. The general path dispatches per ant
// and maintains the recruiter/slot indirection: recruiting ants are appended
// to recruiters in ant order, so slot t is the t-th recruiting ant exactly as
// in Engine.resolve, and matching draws consume matchSrc in the scalar
// engine's order.
type lane struct {
	prog Program
	env  Environment
	qual []float64 // quality by nest id (index 0 = home)
	n, k int

	lockstep bool
	decides  bool
	antRNG   bool

	envSrc, matchSrc rng.Source
	antSrc           []rng.Source // one stream per ant, stored by value

	// Register file (struct of arrays). state is unused on the lockstep path
	// (the shared PFSM state lives in runReplicate's phase variable); nestT
	// and countT are Algorithm 2's cross-round scratch registers. paramI and
	// paramF are the §6 extension parameter columns — AdaptiveAnt's phase
	// clock and ApproxNAnt's private ñ estimate — materialized only when the
	// program's opcodes read them. qidx tracks which nest's quality the
	// quality register holds (the provenance index into the qualT table);
	// it exists only for lockstep quality-weighted programs.
	state   []uint8
	nest    []NestID
	count   []int32
	quality []float64
	nestT   []NestID
	countT  []int32
	paramI  []int32
	paramF  []float64
	qidx    []uint8

	// Per-round scratch.
	actNest    []NestID // the nest advertised by this round's search/go/recruit
	counts     []int    // end-of-round population per nest
	commit     []int    // commitment census, maintained incrementally
	recruiters []int32  // slot -> ant index (general path)
	slotOf     []int32  // ant index -> recruiter slot this round (-1 otherwise)
	active     []bool   // recruit(1, ·) per slot (per ant on the lockstep path)
	carries    []int    // carry capacity per slot; nil unless the program transports
	capturedBy []int32
	succeeded  []bool
	finals     int // ants currently in Final states (deciding programs)

	// State-bucket scratch of the general path (nil on the lockstep path):
	// each round the colony is regrouped by PFSM state so the emit and
	// observe opcodes dispatch once per occupied state instead of once per
	// ant — the per-ant jump tables were the dominant stall of heterogeneous
	// colonies. bktAnts holds the ant indices grouped by state (ascending
	// within a group, because the scatter pass scans ants in order); isRecr
	// and actBit carry each recruiter's classification from the emit phase
	// to the ant-order slot-assembly pass.
	bktCount []int32 // 4 interleaved banks, summed into bktOff (see stepGeneral)
	bktOff   []int32
	bktCur   []int32
	bktAnts  []int32
	iota32   []int32 // the identity permutation 0..n-1, immutable after construction
	isRecr   []uint8 // 0 = not recruiting, 1 = recruit, 2 = transport
	actBit   []uint8
	preState []uint8  // per recruited ant: the state it emitted from, for the capture pass
	capScrat []int32  // capture-list scratch for matchers without CaptureLister
	slotNest []NestID // per-slot resolved outcome nest (capturer's advertised nest)

	// Fault lanes (nil/zero unless prog.Params.Faults is enabled). The four
	// synthetic states live after the program's own in the padded tables:
	// numExec = len(prog.States) + batchSyntheticStates, and sleepSt..crashSt
	// name them. round counts this replicate's rounds for the pre-round fault
	// pass; alive is the census total (n minus Byzantine ants minus fired
	// crashes); lastNest tracks each crash-fated ant's last known candidate
	// nest — maintained every round, before and after the crash, exactly like
	// the scalar CrashAnt's Observe. crashAnts/crashAt and sleepAnts/wakeAt
	// are the compact victim lists the per-round passes scan; the full
	// crashRound/wakeRound/byz/permScrat columns are Assign scratch.
	faulted    bool
	numExec    int
	sleepSt    uint8
	byzSrchSt  uint8
	byzRecrSt  uint8
	crashSt    uint8
	round      int
	alive      int
	lastNest   []NestID
	crashAnts  []int32
	crashAt    []int32
	sleepAnts  []int32
	wakeAt     []int32
	crashRound []int32
	wakeRound  []int32
	byz        []uint8
	permScrat  []int32

	matcher   Matcher
	carryM    CarryMatcher  // matcher's carry form; nil when unimplemented
	capLister CaptureLister // matcher's capture list; nil when unimplemented

	// Fixed-point draw tables. popT/qualT/docT are shared from the Batch;
	// adaT is per-lane because the adaptive decay steps down over a
	// replicate and the table is rebuilt for each new decay value.
	popT     []rng.Threshold
	qualT    []rng.Threshold
	docT     rng.Threshold
	ada      bool
	adaT     []rng.Threshold
	adaDecay float64

	// The dense state table and Final flags, padded to the full uint8 index
	// range so per-ant dispatch indexes with no bounds checks. searches
	// marks the states whose emit is EmitSearch, for the scatter pass's
	// in-ant-order environment draws.
	states   [256]ProgramState
	final    [256]uint8
	searches [256]uint8
}

func newLane(b *Batch) *lane {
	n, k := b.n, b.env.K()
	qs := b.env.Qualities()
	ln := &lane{
		prog:       b.prog,
		env:        b.env,
		qual:       qs,
		n:          n,
		k:          k,
		lockstep:   b.lockstep,
		decides:    b.decides,
		antRNG:     b.antRNG,
		state:      make([]uint8, n),
		nest:       make([]NestID, n),
		count:      make([]int32, n),
		quality:    make([]float64, n),
		nestT:      make([]NestID, n),
		countT:     make([]int32, n),
		actNest:    make([]NestID, n),
		counts:     make([]int, k+1),
		commit:     make([]int, k+1),
		recruiters: make([]int32, 0, n),
		slotOf:     make([]int32, n),
		active:     make([]bool, n),
		capturedBy: make([]int32, n),
		succeeded:  make([]bool, n),
		popT:       b.popT,
		qualT:      b.qualT,
		docT:       b.docT,
		ada:        b.ada,
	}
	copy(ln.states[:], b.prog.States)
	for i, st := range b.prog.States {
		if st.Final {
			ln.final[i] = 1
		}
		if st.Emit == EmitSearch {
			ln.searches[i] = 1
		}
	}
	ln.numExec = len(b.prog.States)
	if b.faulted {
		// Append the engine-owned synthetic fault states after the program's.
		// Three of the four reuse the generic emit loops verbatim: a sleeping
		// ant recruits passively at home (its nest register stays Home while
		// it sleeps), a searching Byzantine ant draws search destinations in
		// ant order via the searches flag, and a luring Byzantine ant actively
		// recruits for the bad nest latched in its nest register. Only the
		// crashed state's emit (goto last known nest / idle at home) and the
		// Byzantine search fold (latch the first BAD nest, without touching
		// the commitment census) need intercepts in stepGeneral. All four
		// observe as ObserveNone — a self-loop that folds nothing, which also
		// makes the capture pass skip them (a captured sleeper or corpse
		// ignores being dragged; the sparse lastNest pass handles the corpse's
		// location drift separately).
		ln.faulted = true
		base := uint8(ln.numExec)
		ln.sleepSt = base
		ln.byzSrchSt = base + 1
		ln.byzRecrSt = base + 2
		ln.crashSt = base + 3
		ln.states[ln.sleepSt] = ProgramState{Emit: EmitRecruitBit, Arg: 0, Observe: ObserveNone, Next: ln.sleepSt}
		ln.states[ln.byzSrchSt] = ProgramState{Emit: EmitSearch, Observe: ObserveNone, Next: ln.byzSrchSt}
		ln.states[ln.byzRecrSt] = ProgramState{Emit: EmitRecruitBit, Arg: 1, Observe: ObserveNone, Next: ln.byzRecrSt}
		ln.states[ln.crashSt] = ProgramState{Emit: EmitRecruitBit, Arg: 0, Observe: ObserveNone, Next: ln.crashSt}
		ln.searches[ln.byzSrchSt] = 1
		ln.numExec += batchSyntheticStates
		ln.lastNest = make([]NestID, n)
		ln.crashAnts = make([]int32, 0, n)
		ln.crashAt = make([]int32, 0, n)
		ln.sleepAnts = make([]int32, 0, n)
		ln.wakeAt = make([]int32, 0, n)
		ln.crashRound = make([]int32, n)
		ln.wakeRound = make([]int32, n)
		ln.byz = make([]uint8, n)
		ln.permScrat = make([]int32, n)
	}
	if !b.lockstep {
		numExec := ln.numExec
		ln.bktCount = make([]int32, 4*numExec)
		ln.bktOff = make([]int32, numExec+1)
		ln.bktCur = make([]int32, numExec)
		ln.bktAnts = make([]int32, n)
		ln.iota32 = make([]int32, n)
		for i := range ln.iota32 {
			ln.iota32[i] = int32(i)
		}
		ln.isRecr = make([]uint8, n)
		ln.actBit = make([]uint8, n)
		ln.preState = make([]uint8, n)
		ln.capScrat = make([]int32, 0, n)
		ln.slotNest = make([]NestID, n)
	}
	ln.matcher = b.newMatcher()
	ln.carryM, _ = ln.matcher.(CarryMatcher)
	ln.capLister, _ = ln.matcher.(CaptureLister)
	if sized, ok := ln.matcher.(sizedMatcher); ok {
		sized.Reserve(n) // recruiting sets reach colony size; never grow mid-run
	}
	if b.antRNG {
		ln.antSrc = make([]rng.Source, n)
	}
	if b.needI {
		ln.paramI = make([]int32, n)
	}
	if b.needF {
		ln.paramF = make([]float64, n)
	}
	if b.usesCarry {
		ln.carries = make([]int, n)
	}
	if ln.qualT != nil {
		ln.qidx = make([]uint8, n)
	}
	if ln.ada {
		ln.adaT = make([]rng.Threshold, n+1)
		ln.adaDecay = -1 // no decay value tabled yet
	}
	return ln
}

// reset re-seeds the lane for a fresh replicate, deriving the same streams
// the scalar stack does: the engine splits {0: environment, 1: matcher} and
// the algorithm builder splits {2} then per-ant substreams. Per-ant streams
// are only materialized when the program draws ant randomness (programs
// without drawn-recruit opcodes never touch them, so seeding n streams would
// be wasted work — and the scalar agents' unused sources draw nothing either).
// The float parameter column is seeded here because the scalar ApproxN
// builder draws each ant's ñ from the ant's own stream before any round runs;
// doing the same keeps the subsequent Bernoulli sequences aligned.
func (ln *lane) reset(seed uint64) {
	root := rng.New(seed)
	root.SplitInto(0, &ln.envSrc)
	root.SplitInto(1, &ln.matchSrc)
	if ln.antRNG {
		var agents rng.Source
		root.SplitInto(2, &agents)
		for i := range ln.antSrc {
			agents.SplitInto(uint64(i), &ln.antSrc[i])
		}
	}
	for i := range ln.paramI {
		ln.paramI[i] = 0
	}
	if ln.paramF != nil {
		delta := ln.prog.Params.NEstDelta
		nF := float64(ln.n)
		for i := range ln.paramF {
			ln.paramF[i] = nF
			if delta > 0 {
				ln.paramF[i] = nF * (1 + (2*ln.antSrc[i].Float64()-1)*delta)
			}
		}
	}
	for i := range ln.qidx {
		ln.qidx[i] = 0
	}
	split := ln.prog.InitSplit
	for i := 0; i < ln.n; i++ {
		st := ln.prog.Init
		if split > 0 && i >= split {
			st = ln.prog.InitRest
		}
		ln.state[i] = st
		ln.nest[i] = Home
		ln.count[i] = 0
		ln.quality[i] = 0
		ln.nestT[i] = Home
		ln.countT[i] = 0
	}
	ln.alive = ln.n
	if ln.faulted {
		// The victim assignment draws from root.Split(Salt) — the same stream,
		// consumed identically, as the scalar faults.Spec wrapper builder
		// (both delegate to FaultSpec.Assign). The overrides run AFTER the
		// register and parameter-column init above because the scalar stack
		// builds the whole colony (including ApproxN's ñ draws) before the
		// wrapper replaces victims.
		var faultSrc rng.Source
		root.SplitInto(ln.prog.Params.Faults.Salt, &faultSrc)
		ln.prog.Params.Faults.Assign(ln.n, &faultSrc, ln.crashRound, ln.wakeRound, ln.byz, ln.permScrat)
		ln.round = 0
		ln.crashAnts = ln.crashAnts[:0]
		ln.crashAt = ln.crashAt[:0]
		ln.sleepAnts = ln.sleepAnts[:0]
		ln.wakeAt = ln.wakeAt[:0]
		for i := 0; i < ln.n; i++ {
			ln.lastNest[i] = Home
			switch {
			case ln.crashRound[i] > 0:
				ln.crashAnts = append(ln.crashAnts, int32(i))
				ln.crashAt = append(ln.crashAt, ln.crashRound[i])
			case ln.byz[i] != 0:
				ln.state[i] = ln.byzSrchSt
				ln.alive--
			case ln.wakeRound[i] > 0:
				ln.sleepAnts = append(ln.sleepAnts, int32(i))
				ln.wakeAt = append(ln.wakeAt, ln.wakeRound[i])
				ln.state[i] = ln.sleepSt
			}
		}
	}
	for i := range ln.commit {
		ln.commit[i] = 0
	}
	ln.commit[Home] = ln.alive
	ln.finals = 0
	if ln.decides {
		if !ln.faulted && split == 0 {
			if ln.final[ln.prog.Init] != 0 {
				ln.finals = ln.n
			}
		} else {
			for i := 0; i < ln.n; i++ {
				ln.finals += int(ln.final[ln.state[i]])
			}
		}
	}
}

// runReplicate executes one colony to convergence or the round budget. probe
// and obs are both draw-free observation taps on the resolved round; neither
// touches an RNG stream, so their presence cannot perturb the replicate (the
// differential tests pin this).
func (ln *lane) runReplicate(rep int, seed uint64, maxRounds, window int, probe func(rep, round int, counts, committed []int), obs LaneObserver) (BatchResult, error) {
	ln.reset(seed)
	res := BatchResult{Seed: seed, Decided: -1}
	streak := 0
	var winner NestID
	phase := ln.prog.Init
	for round := 1; round <= maxRounds; round++ {
		var err error
		if ln.lockstep {
			var next uint8
			next, err = ln.stepLockstep(phase)
			phase = next
			if ln.decides {
				ln.finals = 0
				if ln.final[phase] != 0 {
					ln.finals = ln.n
				}
			}
		} else {
			err = ln.stepGeneral()
		}
		if err != nil {
			return BatchResult{}, fmt.Errorf("round %d: %w", round, err)
		}
		w, ok := ln.census()
		if probe != nil {
			probe(rep, round, ln.counts, ln.commit)
		}
		if obs != nil {
			obs.ObserveRound(rep, round, ln.counts, ln.commit)
		}
		// Streak bookkeeping mirrors core.Run's until predicate exactly.
		switch {
		case !ok:
			streak = 0
		case streak == 0 || w == winner:
			winner = w
			streak++
		default: // converged, but to a different nest than the streak's
			winner = w
			streak = 1
		}
		res.Rounds = round
		if streak >= window {
			break
		}
	}
	res.Committed = append([]int(nil), ln.commit...)
	if ln.decides {
		res.Decided = ln.finals
	}
	if ln.faulted {
		res.Faulty = ln.n - ln.alive
	}
	if streak >= window {
		res.Solved = true
		res.Winner = winner
		res.WinnerQuality = ln.qual[winner]
	}
	if obs != nil {
		obs.ReplicateDone(rep, &res)
	}
	return res, nil
}

// stepLockstep resolves one synchronous round for a colony whose program has
// static successors: emit + move, recruitment matching, end-of-round counts,
// observe, all in per-opcode specialized loops. It is the batch counterpart
// of Engine.Step/resolve with the same randomness. phase is the colony's
// shared PFSM state; the returned value is next round's phase.
//
//hh:hotpath
//hh:draws per opcode contract on EmitOp/ObserveOp consts: envSrc search draws in ant order, drawActiveBits per-ant draws, matchSrc via Match, perception hooks from the observing ant's stream
func (ln *lane) stepLockstep(phase uint8) (uint8, error) {
	n, k := ln.n, ln.k
	st := ln.states[phase]
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts

	// Emit and move, accumulating end-of-round populations as we go. Per-ant
	// Bernoulli draws and envSrc search draws touch disjoint streams, so
	// fusing the scalar engine's act/move phases preserves both sequences.
	//
	// act is the outcome-nest column the observe loops read: the freshly
	// filled actNest for search and recruit rounds, and the nest register
	// itself for go rounds — a go round's outcome nest IS the committed
	// nest, so aliasing spares the copy (and the observe folds never write
	// nest[i] on a go round, because outcome and register always coincide).
	act := actNest
	recruited := false
	switch st.Emit {
	case EmitSearch:
		for i := range counts {
			counts[i] = 0
		}
		envSrc := &ln.envSrc
		for i := range actNest {
			dest := NestID(envSrc.Intn(k) + 1)
			actNest[i] = dest
			counts[dest]++
		}
	case EmitGotoNest:
		// Every ant moves to its committed nest, so the end-of-round
		// populations are exactly the commitment census the lane already
		// maintains — O(k) instead of a colony scan. A committed Home nest
		// means some ant would emit go(0), which the scalar engine rejects;
		// surface the identical error for the first such ant.
		commit := ln.commit
		if commit[Home] != 0 {
			for i := range nest {
				if dest := nest[i]; dest < 1 || int(dest) > k {
					return 0, fmt.Errorf("ant %d: go(%d): nest out of range 1..%d", i, dest, k)
				}
			}
		}
		copy(counts, commit)
		act = nest
	case EmitRecruitPop, EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
		recruited = true
		ln.drawActiveBits(st.Emit)
		// actNest snapshots the advertised nests (each recruiter advertises
		// its commitment). The observe folds below resolve a captured ant's
		// outcome nest from this snapshot on the fly — there is no rewrite
		// pass over the capture table, and the snapshot (rather than nest
		// itself) is read because a simultaneous-model capturer can itself
		// be captured and adopt mid-fold.
		copy(actNest, nest)
		for i := range counts {
			counts[i] = 0
		}
		counts[Home] = n

		// Recruitment matching: every ant recruits, so slot t is ant t and
		// no recruiter indirection exists; one dynamic call per round costs
		// nothing against the per-ant loops. The default matcher is the
		// paper's Algorithm 1 via the same implementation (and thus the
		// same draw sequence) as the scalar engine.
		ln.matcher.Match(n, ln.active, &ln.matchSrc, ln.capturedBy, ln.succeeded)
	}

	// Observe: fold outcomes into the registers. Recruit outcomes carry no
	// quality and report the home population (= n, everyone recruited); the
	// commitment census updates incrementally on the rare nest-register
	// writes instead of a full per-round recount.
	//
	// On recruit rounds a captured ant's outcome nest is its capturer's
	// advertised nest, resolved on the fly from the actNest snapshot (see
	// the emit phase) instead of via a rewrite pass over the capture table:
	// capturedBy streams through each fold exactly once.
	commit := ln.commit
	capturedBy := ln.capturedBy
	switch st.Observe {
	case ObserveDiscovery:
		count := ln.count
		quality := ln.quality
		qidx := ln.qidx
		if recruited {
			ln.foldCaptureAdopts(adoptPlain)
			for i := range count {
				count[i] = int32(n)
				quality[i] = 0
			}
			if qidx != nil {
				for i := range qidx {
					qidx[i] = 0
				}
			}
		} else {
			qual := ln.qual
			for i := range nest {
				outNest := act[i]
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				count[i] = int32(counts[outNest])
				quality[i] = qual[outNest]
				if qidx != nil {
					qidx[i] = uint8(outNest)
				}
			}
		}
	case ObserveAdopt:
		quality := ln.quality
		if recruited {
			ln.foldCaptureAdopts(adoptQualOne)
		} else {
			for i := range nest {
				if outNest := act[i]; outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					quality[i] = 1
				}
			}
		}
	case ObserveCount:
		count := ln.count
		if recruited {
			// Recruit outcomes carry the home population n and no nest
			// change; the capture table is irrelevant to the fold.
			for i := range count {
				count[i] = int32(n)
			}
		} else {
			for i := range count {
				count[i] = int32(counts[act[i]])
			}
		}
	case ObserveAdoptZero:
		quality := ln.quality
		qidx := ln.qidx
		if recruited {
			ln.foldCaptureAdopts(adoptQualZero)
		} else {
			for i := range nest {
				if outNest := act[i]; outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					quality[i] = 0
					if qidx != nil {
						qidx[i] = 0
					}
				}
			}
		}
	case ObserveCountQual:
		count := ln.count
		quality := ln.quality
		qidx := ln.qidx
		if recruited {
			for i := range count {
				count[i] = int32(n)
				quality[i] = 0
			}
			if qidx != nil {
				for i := range qidx {
					qidx[i] = 0
				}
			}
		} else {
			qual := ln.qual
			for i := range count {
				outNest := act[i]
				count[i] = int32(counts[outNest])
				quality[i] = qual[outNest]
				if qidx != nil {
					qidx[i] = uint8(outNest)
				}
			}
		}
	case ObserveDiscoverNoisy:
		count := ln.count
		quality := ln.quality
		countHook, assessHook := ln.prog.Params.Count, ln.prog.Params.Assess
		threshold := ln.prog.Params.Threshold
		for i := range nest {
			var c int
			var q float64
			if recruited {
				if cb := int(capturedBy[i]); cb >= 0 && cb != i {
					if outNest := actNest[cb]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
					}
				}
				c, q = n, 0
			} else {
				outNest := act[i]
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				c, q = counts[outNest], ln.qual[outNest]
			}
			// Perception order matches NoisyAnt's observe: the count estimate
			// draws first, then the quality assessment, both from the ant's
			// own stream.
			if countHook != nil {
				c = countHook(c, n, &ln.antSrc[i])
			}
			count[i] = int32(c)
			if assessHook != nil {
				q = assessHook(q, &ln.antSrc[i])
			}
			if q > threshold {
				quality[i] = 1
			} else {
				quality[i] = 0
			}
		}
	case ObserveCountNoisy:
		count := ln.count
		countHook := ln.prog.Params.Count
		for i := range count {
			c := counts[act[i]]
			if recruited {
				c = n
			}
			if countHook != nil {
				c = countHook(c, n, &ln.antSrc[i])
			}
			count[i] = int32(c)
		}
	}
	return st.Next, nil
}

// drawActiveBits fills the active column for a colony-wide drawn-recruit
// round, one specialized loop per opcode. Each loop consumes the per-ant
// streams exactly as the corresponding scalar ant does: Simple/Adaptive/
// ApproxN gate the draw on a positive quality register (their active flag),
// while Quality draws unconditionally — its probability is 0 whenever the
// scalar ant would be passive, and rng.Source's Bernoulli consumes nothing at
// p <= 0 or p >= 1, so both formulations touch the streams identically.
//
// Where a threshold table exists the draw is the fixed-point kernel — one
// integer compare against the tabled bound, zero float operations — guarded
// by a count-range check because the noisy estimators can report counts
// outside [0, n]; out-of-range counts resolve draw-free exactly like
// Bernoulli at p outside (0, 1).
//
//hh:hotpath
//hh:draws at most one word per ant from its own stream, in ant order; draw-free for sentinel thresholds and out-of-range counts
func (ln *lane) drawActiveBits(op EmitOp) {
	n := ln.n
	nF := float64(n) //hh:floatok loop-invariant divisor for the float fallback branches
	quality := ln.quality
	count := ln.count
	active := ln.active
	antSrc := ln.antSrc
	switch op {
	case EmitRecruitPop:
		if popT := ln.popT; popT != nil {
			for i := 0; i < n; i++ {
				b := false
				if quality[i] > 0 {
					//hh:draws out-of-range counts resolve draw-free, exactly like Bernoulli at p outside (0, 1)
					if c := int(count[i]); uint(c) <= uint(n) {
						// The wraparound compare picks out the thresholds
						// that consume one word; the sentinels (0 and n,
						// plus any zero-probability row) resolve via the
						// draw-free Draw call. Fused inline because Draw
						// itself is beyond the inlining budget.
						if t := popT[c]; t-1 < rng.ThresholdAlways-1 {
							b = antSrc[i].Uint64()>>11 < uint64(t)
						} else {
							b = t.Draw(&antSrc[i])
						}
					} else {
						b = c > 0 // p outside (0, 1): accept or reject draw-free
					}
				}
				active[i] = b
			}
		} else {
			for i := 0; i < n; i++ {
				b := false
				if quality[i] > 0 {
					b = antSrc[i].Bernoulli(float64(count[i]) / nF) //hh:floatok fallback above batchTableMaxN; bit-identical to the tabled kernel
				}
				active[i] = b
			}
		}
	case EmitRecruitQual:
		if qualT := ln.qualT; qualT != nil {
			qidx := ln.qidx
			stride := n + 1
			for i := 0; i < n; i++ {
				b := false
				//hh:draws out-of-range counts resolve draw-free, exactly like Bernoulli at p outside (0, 1)
				if c := int(count[i]); uint(c) <= uint(n) {
					if t := qualT[int(qidx[i])*stride+c]; t-1 < rng.ThresholdAlways-1 {
						b = antSrc[i].Uint64()>>11 < uint64(t)
					} else {
						b = t.Draw(&antSrc[i])
					}
				} else {
					b = antSrc[i].Bernoulli(quality[i] * float64(c) / nF) //hh:floatok out-of-range noisy count: scalar QualityAnt computes the same float probability
				}
				active[i] = b
			}
		} else {
			for i := 0; i < n; i++ {
				active[i] = antSrc[i].Bernoulli(quality[i] * float64(count[i]) / nF) //hh:floatok fallback above batchTableMaxN; bit-identical to the tabled kernel
			}
		}
	case EmitRecruitAdaptive:
		// The phase clock is colony-uniform here — lockstep programs march
		// every ant through the same emits — so the schedule's decay term is
		// hoisted out of the loop; only count varies per ant, and
		// c/(c+decay) is float-identical to AdaptiveRecruitProbability. The
		// decay steps down a handful of times per replicate, so the
		// threshold table is rebuilt only on those steps.
		tau, floorDiv := ln.prog.Params.Tau, ln.prog.Params.FloorDiv
		paramI := ln.paramI
		decay := adaptiveDecay(n, int(paramI[0]), tau, floorDiv)
		if ln.adaT != nil {
			if decay != ln.adaDecay {
				//hh:floatok table rebuild on decay steps: the float→fixed compile happens a handful of times per replicate
				for c := 0; c <= n; c++ {
					cF := float64(c)
					ln.adaT[c] = rng.NewThreshold(cF / (cF + decay))
				}
				ln.adaDecay = decay
			}
			adaT := ln.adaT
			for i := 0; i < n; i++ {
				b := false
				if quality[i] > 0 {
					//hh:draws out-of-range counts resolve draw-free, exactly like Bernoulli at p outside (0, 1)
					if c := int(count[i]); uint(c) <= uint(n) {
						if t := adaT[c]; t-1 < rng.ThresholdAlways-1 {
							b = antSrc[i].Uint64()>>11 < uint64(t)
						} else {
							b = t.Draw(&antSrc[i])
						}
					} else {
						cF := float64(c)                           //hh:floatok out-of-range noisy count falls back to the float formula
						b = antSrc[i].Bernoulli(cF / (cF + decay)) //hh:floatok same float expression as AdaptiveRecruitProbability
					}
				}
				paramI[i]++
				active[i] = b
			}
		} else {
			for i := 0; i < n; i++ {
				b := false
				if quality[i] > 0 {
					c := float64(count[i])                   //hh:floatok fallback above batchTableMaxN
					b = antSrc[i].Bernoulli(c / (c + decay)) //hh:floatok same float expression as AdaptiveRecruitProbability
				}
				paramI[i]++
				active[i] = b
			}
		}
	case EmitRecruitApproxN:
		// Per-ant ñ estimates defeat tabling (the table would be per ant);
		// the float draw is bit-identical regardless.
		paramF := ln.paramF
		for i := 0; i < n; i++ {
			b := false
			if quality[i] > 0 {
				p := float64(count[i]) / paramF[i] //hh:floatok per-ant ñ defeats tabling; float draw is bit-identical to ApproxNAnt
				if p > 1 {
					p = 1
				}
				b = antSrc[i].Bernoulli(p)
			}
			active[i] = b
		}
	}
}

// stepGeneral resolves one synchronous round for a colony with a per-ant
// state column. The round runs state-major: a count/scatter pass regroups the
// colony into per-state buckets, the emit and observe opcodes then dispatch
// once per occupied state (the per-ant jump tables they replace were the
// dominant pipeline stall of heterogeneous colonies), and a branch-free
// ant-order pass assembles the recruiting slot table between the two.
//
// Randomness is consumed exactly as Engine.Step/resolve consumes it:
// environment draws are folded into the scatter pass, which scans ants in
// ascending order, so searching ants draw from envSrc in ant order no matter
// how states interleave; per-ant stream draws are stream-disjoint across ants,
// so bucket-order draws are identical to ant-order draws; recruiting ants
// enter the slot table in ant order via the assembly pass; and the matcher
// runs only when the recruiting set is non-empty. Observe folds touch only
// the observing ant's registers, its own stream, and the order-free
// commitment tallies, so bucket-order folding is bit-identical too.
//
//hh:hotpath
//hh:draws per opcode contract on EmitOp/ObserveOp consts: envSrc in ant order via the scatter pass, per-ant streams in bucket order (stream-disjoint), matchSrc only when recruiters exist
func (ln *lane) stepGeneral() error {
	n, k := ln.n, ln.k
	states := &ln.states
	state := ln.state
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts
	numStates := ln.numExec

	// Pre-round fault pass: wake the sleepers and fire the crashes scheduled
	// for this round, before the colony is regrouped — the transitions must be
	// visible to this round's emit, exactly as the scalar wrappers decide in
	// Act. Waking restores the ant's initial program state (registers were
	// never touched while it slept, so it starts fresh like the scalar
	// wrapper's never-invoked inner agent); crashing removes the ant from the
	// census (commitment tally and alive count) and parks it in the crashed
	// synthetic state. Both lists are small — O(victims), not O(n).
	if ln.faulted {
		ln.round++
		r := int32(ln.round)
		for idx, i32 := range ln.sleepAnts {
			if ln.wakeAt[idx] == r {
				i := int(i32)
				st := ln.prog.Init
				if split := ln.prog.InitSplit; split > 0 && i >= split {
					st = ln.prog.InitRest
				}
				state[i] = st
			}
		}
		for idx, i32 := range ln.crashAnts {
			if ln.crashAt[idx] == r {
				i := int(i32)
				ln.commit[nest[i]]--
				ln.alive--
				state[i] = ln.crashSt
			}
		}
	}

	// Regroup the colony by state: count, prefix, scatter (+ ant-order
	// environment draws for searching ants). The count histogram runs over
	// four interleaved banks because consecutive ants usually share a state,
	// and a single-bank cnt[s]++ then serializes on store-to-load forwarding.
	cnt := ln.bktCount[:4*numStates]
	for s := range cnt {
		cnt[s] = 0
	}
	{
		i := 0
		for ; i+4 <= n; i += 4 {
			cnt[int(state[i])]++
			cnt[numStates+int(state[i+1])]++
			cnt[2*numStates+int(state[i+2])]++
			cnt[3*numStates+int(state[i+3])]++
		}
		for ; i < n; i++ {
			cnt[int(state[i])]++
		}
	}
	off := ln.bktOff[:numStates+1]
	cur := ln.bktCur[:numStates]
	running := int32(0)
	sole := -1
	for s := 0; s < numStates; s++ {
		off[s] = running
		cur[s] = running
		c := cnt[s] + cnt[numStates+s] + cnt[2*numStates+s] + cnt[3*numStates+s]
		if int(c) == n {
			sole = s
		}
		running += c
	}
	off[numStates] = running
	bkt := ln.bktAnts[:n]
	searches := &ln.searches
	envSrc := &ln.envSrc
	//hh:draws shape dispatch only: both arms draw one envSrc destination per searching ant, in ant order, exactly like the scalar per-ant emit
	if sole >= 0 {
		// The whole colony occupies one state (common in the converged tail,
		// where every ant sits in an absorbing recruit state): the bucket IS
		// the identity permutation, so the scatter — and, below, most of the
		// slot-assembly work — collapses to reusing precomputed identities.
		bkt = ln.iota32
		//hh:draws a state's search bit decides whether its ants draw a destination; the scalar emit gates on the same compiled bit
		if searches[sole] != 0 {
			for i := 0; i < n; i++ {
				actNest[i] = NestID(envSrc.Intn(k) + 1)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			s := state[i]
			bkt[cur[s]] = int32(i)
			cur[s]++
			//hh:draws a state's search bit decides whether its ants draw a destination; the scalar emit gates on the same compiled bit
			if searches[s] != 0 {
				actNest[i] = NestID(envSrc.Intn(k) + 1)
			}
		}
	}

	for i := range counts {
		counts[i] = 0
	}

	// Emit per occupied state. actNest receives each ant's advertised nest;
	// recruiters are classified into isRecr/actBit and assembled into the
	// ant-order slot table afterwards. Every ant belongs to exactly one
	// bucket, so every isRecr entry is rewritten each round.
	isRecr := ln.isRecr
	actBit := ln.actBit
	preState := ln.preState
	quality := ln.quality
	count := ln.count
	antSrc := ln.antSrc
	sawTransport := false
	nRecr := 0
	for s := 0; s < numStates; s++ {
		members := bkt[off[s]:off[s+1]]
		if len(members) == 0 {
			continue
		}
		if ln.faulted && uint8(s) == ln.crashSt {
			// A crashed ant walks to the last candidate nest it knew, or —
			// if it never learned one, or its corpse was dragged back home —
			// waits passively in the home-nest pairing, exactly like the
			// scalar CrashAnt. The bucket mixes both behaviours, so it cannot
			// reuse a generic emit loop.
			lastNest := ln.lastNest
			for _, i32 := range members {
				i := int(i32)
				if dest := lastNest[i]; dest != Home {
					actNest[i] = dest
					counts[dest]++
					isRecr[i] = 0
				} else {
					actNest[i] = Home
					isRecr[i] = 1
					actBit[i] = 0
					preState[i] = uint8(s)
					nRecr++
				}
			}
			continue
		}
		st := &states[s]
		if recruitEmit(st.Emit) {
			nRecr += len(members)
		}
		switch st.Emit {
		case EmitSearch:
			// Destinations were already drawn, in ant order, by the scatter
			// pass.
			for _, i32 := range members {
				i := int(i32)
				counts[actNest[i]]++
				isRecr[i] = 0
			}
		case EmitGotoNest:
			for _, i32 := range members {
				i := int(i32)
				dest := nest[i]
				if uint(dest)-1 >= uint(k) { // dest < 1 || dest > k, one compare
					return fmt.Errorf("ant %d: go(%d): nest out of range 1..%d", i, dest, k)
				}
				actNest[i] = dest
				counts[dest]++
				isRecr[i] = 0
			}
		case EmitGotoScratch:
			nestT := ln.nestT
			for _, i32 := range members {
				i := int(i32)
				dest := nestT[i]
				if uint(dest)-1 >= uint(k) {
					return fmt.Errorf("ant %d: go(%d): scratch nest out of range 1..%d", i, dest, k)
				}
				actNest[i] = dest
				counts[dest]++
				isRecr[i] = 0
			}
		case EmitRecruitBit:
			// The fixed bit is state-uniform, so the Home-forbidden check of
			// active recruits folds into the range compare per sub-loop.
			if st.Arg == 1 {
				for _, i32 := range members {
					i := int(i32)
					adv := nest[i]
					if uint(adv)-1 >= uint(k) { // adv < 1 || adv > k
						if adv == Home {
							return fmt.Errorf("ant %d: recruit(1,0): cannot actively recruit for the home nest", i)
						}
						return fmt.Errorf("ant %d: recruit(%d,%d): nest out of range 0..%d", i, st.Arg, adv, k)
					}
					actNest[i] = adv
					isRecr[i] = 1
					actBit[i] = 1
					preState[i] = uint8(s)
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					adv := nest[i]
					if uint(adv) > uint(k) { // Home is allowed for passive recruits
						return fmt.Errorf("ant %d: recruit(%d,%d): nest out of range 0..%d", i, st.Arg, adv, k)
					}
					actNest[i] = adv
					isRecr[i] = 1
					actBit[i] = 0
					preState[i] = uint8(s)
				}
			}
		case EmitRecruitTransport:
			sawTransport = true
			for _, i32 := range members {
				i := int(i32)
				adv := nest[i]
				if uint(adv)-1 >= uint(k) {
					return fmt.Errorf("ant %d: transport(%d): nest out of range 1..%d", i, adv, k)
				}
				actNest[i] = adv
				isRecr[i] = 2
				actBit[i] = 1
				preState[i] = uint8(s)
			}
		case EmitRecruitPop:
			popT := ln.popT
			for _, i32 := range members {
				i := int(i32)
				b := false
				if quality[i] > 0 {
					if c := int(count[i]); popT != nil && uint(c) <= uint(n) {
						if t := popT[c]; t-1 < rng.ThresholdAlways-1 {
							b = antSrc[i].Uint64()>>11 < uint64(t)
						} else {
							b = t.Draw(&antSrc[i])
						}
					} else {
						b = antSrc[i].Bernoulli(float64(c) / float64(n)) //hh:floatok fallback above batchTableMaxN; bit-identical to the tabled kernel
					}
				}
				adv := nest[i]
				if b && adv == Home {
					return fmt.Errorf("ant %d: recruit(1,0): cannot actively recruit for the home nest", i)
				}
				actNest[i] = adv
				isRecr[i] = 1
				if b {
					actBit[i] = 1
				} else {
					actBit[i] = 0
				}
				preState[i] = uint8(s)
			}
		case EmitRecruitQual:
			nF := float64(n) //hh:floatok the general engine reuses the scalar float formula verbatim; bit-identical by construction
			for _, i32 := range members {
				i := int(i32)
				b := antSrc[i].Bernoulli(quality[i] * float64(count[i]) / nF) //hh:floatok the general engine reuses the scalar float formula verbatim; bit-identical by construction
				adv := nest[i]
				if b && adv == Home {
					return fmt.Errorf("ant %d: recruit(1,0): cannot actively recruit for the home nest", i)
				}
				actNest[i] = adv
				isRecr[i] = 1
				if b {
					actBit[i] = 1
				} else {
					actBit[i] = 0
				}
				preState[i] = uint8(s)
			}
		case EmitRecruitAdaptive:
			tau, floorDiv := ln.prog.Params.Tau, ln.prog.Params.FloorDiv
			paramI := ln.paramI
			for _, i32 := range members {
				i := int(i32)
				b := false
				if quality[i] > 0 {
					b = antSrc[i].Bernoulli(AdaptiveRecruitProbability(
						n, int(count[i]), int(paramI[i]), tau, floorDiv))
				}
				paramI[i]++
				adv := nest[i]
				if b && adv == Home {
					return fmt.Errorf("ant %d: recruit(1,0): cannot actively recruit for the home nest", i)
				}
				actNest[i] = adv
				isRecr[i] = 1
				if b {
					actBit[i] = 1
				} else {
					actBit[i] = 0
				}
				preState[i] = uint8(s)
			}
		case EmitRecruitApproxN:
			paramF := ln.paramF
			for _, i32 := range members {
				i := int(i32)
				b := false
				if quality[i] > 0 {
					p := float64(count[i]) / paramF[i] //hh:floatok the general engine reuses the scalar float formula verbatim; bit-identical by construction
					if p > 1 {
						p = 1
					}
					b = antSrc[i].Bernoulli(p)
				}
				adv := nest[i]
				if b && adv == Home {
					return fmt.Errorf("ant %d: recruit(1,0): cannot actively recruit for the home nest", i)
				}
				actNest[i] = adv
				isRecr[i] = 1
				if b {
					actBit[i] = 1
				} else {
					actBit[i] = 0
				}
				preState[i] = uint8(s)
			}
		}
	}

	// Assemble the recruiting slot table in ant order — the matcher's slot
	// space must list recruiters exactly as the scalar engine's action loop
	// encounters them. The pass is branch-free: the write cursor advances by
	// the recruiter flag, and the slot id selection compiles to a
	// conditional move. A sole-state round degenerates to identities: slot t
	// is ant t (or there are no recruiters at all), so the table is the
	// precomputed identity permutation and two column copies.
	rec := ln.recruiters[:n]
	slotOf := ln.slotOf
	active := ln.active
	carries := ln.carries
	slotNest := ln.slotNest
	w := 0
	if carries == nil && nRecr == n {
		// Every ant recruits (absorbing recruit states, canvass rounds):
		// slot t is ant t, so the table is the identity permutation and two
		// column copies.
		rec = ln.iota32
		copy(slotOf, ln.iota32)
		for i := 0; i < n; i++ {
			active[i] = actBit[i] != 0
		}
		copy(slotNest, actNest)
		w = n
	} else if nRecr == 0 {
		for i := range slotOf {
			slotOf[i] = -1
		}
	} else if carries == nil {
		for i := 0; i < n; i++ {
			r := isRecr[i]
			rec[w] = int32(i)
			active[w] = actBit[i] != 0
			slotNest[w] = actNest[i]
			sl := int32(w)
			if r == 0 {
				sl = -1
			}
			slotOf[i] = sl
			w += int(r)
		}
	} else {
		qc := ln.prog.Params.QuorumCarry
		for i := 0; i < n; i++ {
			r := isRecr[i]
			rec[w] = int32(i)
			active[w] = actBit[i] != 0
			slotNest[w] = actNest[i]
			c := 1
			if r == 2 {
				c = qc
			}
			carries[w] = c
			sl := int32(w)
			if r == 0 {
				sl = -1
			}
			slotOf[i] = sl
			w += int(r & 1)
			w += int(r >> 1)
		}
	}
	nR := w
	counts[Home] = nR

	// Recruitment matching over the recruiting set, in slot space. The
	// scalar engine skips the matcher entirely for an empty set and selects
	// the carry-aware form only when some slot carries more than one ant;
	// mirroring both keeps matchSrc in sync on all-goto rounds and keeps
	// arbitrary matchers on exactly the scalar call sequence. (For the
	// default Algorithm 1 pairing the dispatch is immaterial: MatchCarry
	// with all-ones carries draws exactly like Match, a pinned property.)
	if nR > 0 {
		//hh:draws matcher dispatch mirrors the scalar call sequence; MatchCarry with all-ones carries draws exactly like Match (a pinned property)
		if anyCarry := sawTransport && ln.prog.Params.QuorumCarry > 1; anyCarry {
			if ln.carryM == nil {
				return fmt.Errorf("transport (carry > 1) unsupported by matcher %q", ln.matcher.Name())
			}
			ln.carryM.MatchCarry(nR, active, carries, &ln.matchSrc, ln.capturedBy, ln.succeeded)
		} else {
			ln.matcher.Match(nR, active, &ln.matchSrc, ln.capturedBy, ln.succeeded)
		}
	}

	// Resolve each slot's outcome nest: the assembly pass preloaded every
	// slot with its own advertised nest, so only captured slots need a
	// rewrite — their capturer's advertised entry, always read from the
	// pristine actNest column (a simultaneous-model capturer can itself be
	// captured, so chaining through slotNest could read a rewritten value).
	// Captures are sparse, so a capture-listing matcher turns this into a
	// handful of writes; other matchers pay one branch-free pass over the
	// slots. The observe folds then reach a recruiter's outcome through
	// slotOf → slotNest, two loads instead of a four-deep capture walk.
	if nR > 0 {
		capt := ln.capturedBy
		if ln.capLister != nil {
			for _, t32 := range ln.capLister.Captures() {
				t := int(t32)
				if cb := int(capt[t]); cb != t {
					slotNest[t] = actNest[rec[cb]]
				}
			}
		} else {
			for t := 0; t < nR; t++ {
				cb := int(capt[t])
				if cb < 0 {
					cb = t
				}
				slotNest[t] = actNest[rec[cb]]
			}
		}
	}

	// Observe per occupied state: fold outcomes into the registers and
	// select successors, one opcode dispatch per bucket. The outcome count
	// is the end-of-round population of the outcome nest for searchers and
	// goers, and the home population for recruiters, exactly as
	// Engine.resolve fills Outcome.Count; whether a bucket recruited is a
	// property of its emit opcode, so the distinction is loop-invariant. A
	// captured recruiter's outcome nest is its capturer's advertised nest,
	// resolved from the actNest column (which observe folds never write, so
	// it stays the pristine advertised set); the uncaptured and self-paired
	// cases resolve to the ant's own slot through a conditional move — the
	// capture pattern is noise a branch would mispredict on. The commitment
	// census updates incrementally on the rare nest-register writes.
	commit := ln.commit
	qual := ln.qual
	nestT := ln.nestT
	countT := ln.countT
	isFinal := &ln.final
	countHome := int32(nR)
	finals := 0
	for s := 0; s < numStates; s++ {
		members := bkt[off[s]:off[s+1]]
		if len(members) == 0 {
			continue
		}
		if ln.faulted && uint8(s) == ln.byzSrchSt {
			// The Byzantine search fold: latch the first BAD nest discovered
			// as the lure target (in the nest register, which the luring
			// state's recruit emit advertises) — without touching the
			// commitment census, because Byzantine ants are excluded from it
			// from round one. In an all-good environment nothing ever
			// latches, and the adversary searches forever, exactly like the
			// scalar ByzantineAnt.
			for _, i32 := range members {
				i := int(i32)
				if outNest := actNest[i]; qual[outNest] == 0 {
					nest[i] = outNest
					state[i] = ln.byzRecrSt
				}
			}
			continue
		}
		st := &states[s]
		recruited := recruitEmit(st.Emit)
		next0 := st.Next
		switch st.Observe {
		case ObserveNone:
			// Padding call; outcome discarded. Successors are uniform.
			for _, i32 := range members {
				state[i32] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveDiscovery:
			if recruited {
				// Capture adoptions land in the capture pass below; the
				// uniform recruit outcome (home population, no quality)
				// folds here.
				for _, i32 := range members {
					i := int(i32)
					count[i] = countHome
					quality[i] = 0
					state[i] = next0
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					outNest := actNest[i]
					if outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
					}
					count[i] = int32(counts[outNest])
					quality[i] = qual[outNest]
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveAdopt:
			if recruited {
				// Adoption requires capture: the capture pass folds it.
				if next0 != uint8(s) {
					for _, i32 := range members {
						state[i32] = next0
					}
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					if outNest := actNest[i]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
						quality[i] = 1
					}
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveCount:
			if recruited {
				for _, i32 := range members {
					count[i32] = countHome
					state[i32] = next0
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					count[i] = int32(counts[actNest[i]])
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveAdoptZero:
			if recruited {
				if next0 != uint8(s) {
					for _, i32 := range members {
						state[i32] = next0
					}
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					if outNest := actNest[i]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
						quality[i] = 0
					}
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveCountQual:
			for _, i32 := range members {
				i := int(i32)
				outNest, outCount := ln.outcome(i, recruited, countHome)
				count[i] = outCount
				if recruited {
					quality[i] = 0
				} else {
					quality[i] = qual[outNest]
				}
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveDiscoverBranch:
			for _, i32 := range members {
				i := int(i32)
				outNest, outCount := ln.outcome(i, recruited, countHome)
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				count[i] = outCount
				q := qual[outNest]
				quality[i] = q
				next := next0
				if q == 0 {
					next = st.NextB
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveRecruitNest:
			// Uncaptured ants (and non-recruit emits) learn their own
			// advertised nest; the capture pass rewrites captured ants.
			for _, i32 := range members {
				i := int(i32)
				nestT[i] = actNest[i]
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveCompareR2:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				countT[i] = outCount
				next := next0
				switch {
				case nestT[i] == nest[i] && countT[i] >= count[i]:
					count[i] = countT[i] // Case 1: re-baseline
				case nestT[i] == nest[i]:
					next = st.NextB // Case 2: population dropped
				default:
					// Case 3: recruited to another nest.
					commit[nest[i]]--
					commit[nestT[i]]++
					nest[i] = nestT[i]
					next = st.NextC
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveRecountRebase:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				next := next0
				if outCount < countT[i] {
					next = st.NextB
				} else {
					count[i] = outCount
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveRecountLiteral:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				next := next0
				if outCount < countT[i] {
					next = st.NextB
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveFinalEq:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				next := next0
				if outCount == count[i] {
					next = st.NextB
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveAdoptPend:
			if recruited {
				// Adoption requires capture; the capture pass redirects
				// adopted ants to NextB and adjusts the finals tally.
				for _, i32 := range members {
					state[i32] = next0
				}
				finals += int(isFinal[next0]) * len(members)
			} else {
				for _, i32 := range members {
					i := int(i32)
					next := next0
					if outNest := actNest[i]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
						next = st.NextB
					}
					state[i] = next
					finals += int(isFinal[next])
				}
			}
		case ObserveNestLatch:
			if recruited {
				// Only captured ants latch a new nest (the capture pass);
				// with a self-looping state the whole bucket is a no-op —
				// Algorithm 2's absorbing final state costs nothing here.
				if next0 != uint8(s) {
					for _, i32 := range members {
						state[i32] = next0
					}
				}
			} else {
				for _, i32 := range members {
					i := int(i32)
					if outNest := actNest[i]; outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
					}
					state[i] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveDiscoverNoisy:
			countHook, assessHook := ln.prog.Params.Count, ln.prog.Params.Assess
			threshold := ln.prog.Params.Threshold
			for _, i32 := range members {
				i := int(i32)
				outNest, outCount := ln.outcome(i, recruited, countHome)
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				c := int(outCount)
				if countHook != nil {
					c = countHook(c, n, &antSrc[i])
				}
				count[i] = int32(c)
				q := 0.0
				if !recruited {
					q = qual[outNest]
				}
				if assessHook != nil {
					q = assessHook(q, &antSrc[i])
				}
				if q > threshold {
					quality[i] = 1
				} else {
					quality[i] = 0
				}
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveCountNoisy:
			countHook := ln.prog.Params.Count
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				c := int(outCount)
				if countHook != nil {
					c = countHook(c, n, &antSrc[i])
				}
				count[i] = int32(c)
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveDiscoverQuorum:
			assessHook := ln.prog.Params.Assess
			mult := ln.prog.Params.QuorumMult
			for _, i32 := range members {
				i := int(i32)
				outNest, outCount := ln.outcome(i, recruited, countHome)
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				count[i] = outCount
				q := 0.0
				if !recruited {
					q = qual[outNest]
				}
				if assessHook != nil {
					q = assessHook(q, &antSrc[i])
				}
				if q > 0.5 {
					quality[i] = 1
				} else {
					quality[i] = 0
				}
				// Self-calibrate the quorum threshold into the countT scratch
				// register: QuorumAnt's T = max(⌊mult·count⌋, count+2).
				thr := int32(mult * float64(outCount)) //hh:floatok quorum self-calibration mirrors QuorumAnt's float threshold formula, T = max(⌊mult·count⌋, count+2)
				if thr < outCount+2 {
					thr = outCount + 2
				}
				countT[i] = thr
				state[i] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveQuorumAdopt:
			// Capture — not a nest change — is what wakes a quorum ant; the
			// capture pass folds it. Self-pairs are not captures.
			if next0 != uint8(s) {
				for _, i32 := range members {
					state[i32] = next0
				}
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveQuorumCheck:
			for _, i32 := range members {
				i := int(i32)
				_, outCount := ln.outcome(i, recruited, countHome)
				count[i] = outCount
				next := next0
				if quality[i] > 0 && countT[i] > 0 && outCount >= countT[i] {
					next = st.NextB // quorum reached: promote to transport
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		case ObserveQuorumTransport:
			// Docility and demotion act on captured transporters only; the
			// capture pass folds them and adjusts the finals tally.
			for _, i32 := range members {
				state[i32] = next0
			}
			finals += int(isFinal[next0]) * len(members)
		case ObserveInform:
			// The rumor-spreading fold: a good outcome nest informs the ant
			// (capture resolves through the slot table, so a captured waiter
			// learns its capturer's nest — the second information channel).
			// Informed ants commit; the capture pass skips this opcode
			// because the fold already resolved the capture here.
			for _, i32 := range members {
				i := int(i32)
				outNest, _ := ln.outcome(i, recruited, countHome)
				next := st.NextB
				if qual[outNest] > 0 {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					next = next0
				}
				state[i] = next
				finals += int(isFinal[next])
			}
		}
	}

	// Capture pass: the adoption-family folds (adopt, latch, pend, the
	// recruit-nest learn, the quorum wake and the transport submit) act only
	// on captured ants, whose buckets above therefore folded nothing but
	// successors. Captures are sparse, so dispatching per captured slot on
	// the state the ant emitted from (recorded in preState — the state
	// column already holds next round's values) touches a fraction of the
	// colony. Fold order across captured ants is immaterial: each fold
	// writes only its own ant's registers (commit tallies are order-free)
	// and the docility draws come from the captured ant's own stream.
	if nR > 0 {
		caps := ln.capScrat[:0]
		if ln.capLister != nil {
			caps = ln.capLister.Captures()
		} else {
			capt := ln.capturedBy
			for t := 0; t < nR; t++ {
				if capt[t] >= 0 {
					caps = append(caps, int32(t)) //hh:allocok grows only to a new maximum capture count; steady-state rounds reuse capScrat's capacity
				}
			}
			ln.capScrat = caps[:0]
		}
		capt := ln.capturedBy
		for _, t32 := range caps {
			t := int(t32)
			cb := int(capt[t])
			if cb == t {
				continue // self-pairs adopt nothing
			}
			i := int(rec[t])
			outNest := actNest[rec[cb]]
			st := &states[preState[i]]
			switch st.Observe {
			case ObserveDiscovery, ObserveNestLatch:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
			case ObserveAdopt:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					quality[i] = 1
				}
			case ObserveAdoptZero:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					quality[i] = 0
				}
			case ObserveAdoptPend:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
					state[i] = st.NextB // enter the pending chain
					finals += int(isFinal[st.NextB]) - int(isFinal[st.Next])
				}
			case ObserveRecruitNest:
				nestT[i] = outNest
			case ObserveQuorumAdopt:
				if outNest != nest[i] {
					commit[nest[i]]--
					commit[outNest]++
					nest[i] = outNest
				}
				quality[i] = 1
			case ObserveQuorumTransport:
				// The docility draw consumes the CAPTURED ant's stream,
				// exactly like QuorumAnt's submit check, on the precompiled
				// fixed-point threshold.
				if ln.docT.Draw(&antSrc[i]) {
					if outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
						state[i] = st.NextB // demote to canvasser of the new nest
						finals += int(isFinal[st.NextB]) - int(isFinal[st.Next])
					}
					quality[i] = 1
				}
			}
		}
	}

	// Track every crash-fated ant's last known candidate nest from this
	// round's outcome — before AND after the crash fires, mirroring the
	// scalar CrashAnt.Observe: a live wrapper records where its inner agent
	// went, and a dead one records where recruiters dragged the corpse. The
	// pass is O(crash victims) and reads only resolved columns (actNest for
	// searchers/goers, the slot table for recruiters).
	if ln.faulted {
		lastNest := ln.lastNest
		for _, i32 := range ln.crashAnts {
			i := int(i32)
			outNest := actNest[i]
			if isRecr[i] != 0 {
				outNest = slotNest[slotOf[i]]
			}
			if outNest != Home {
				lastNest[i] = outNest
			}
		}
	}
	ln.finals = finals
	return nil
}

// outcome resolves ant i's outcome nest and count for the observe folds:
// searchers and goers read the end-of-round population of their advertised
// nest, recruiters read the home population and their slot's precomputed
// outcome nest (their capturer's advertised nest when captured). recruited is
// loop-invariant per bucket (it is a property of the state's emit opcode), so
// the branch predicts perfectly.
//
//hh:hotpath
func (ln *lane) outcome(i int, recruited bool, countHome int32) (NestID, int32) {
	if !recruited {
		outNest := ln.actNest[i]
		return outNest, int32(ln.counts[outNest])
	}
	return ln.slotNest[ln.slotOf[i]], countHome
}

// recruitEmit reports whether op sends the ant to the home-nest pairing (its
// outcome is then the home population and possibly a capturer's nest).
//
//hh:hotpath
func recruitEmit(op EmitOp) bool {
	switch op {
	case EmitRecruitBit, EmitRecruitTransport,
		EmitRecruitPop, EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
		return true
	}
	return false
}

// census reports unanimous commitment to a good nest from the incrementally
// maintained tally, mirroring core.TakeCensus + Census.Converged: faulty ants
// (Byzantine from round one, crashed once their crash fires) are excluded
// from the census total, while sleeping ants count — the colony cannot
// converge before its idle reserve wakes and joins. A deciding program (one
// with Final states) additionally requires every census ant to have reached a
// Final state, exactly as the scalar runner gates on the core.Decided
// contract.
//
//hh:hotpath
func (ln *lane) census() (NestID, bool) {
	alive := ln.n
	if ln.faulted {
		alive = ln.alive
		if alive == 0 {
			return Home, false
		}
	}
	if ln.decides && ln.finals != alive {
		return Home, false
	}
	for i := 1; i <= ln.k; i++ {
		if ln.commit[i] == alive && ln.qual[i] > 0 {
			return NestID(i), true
		}
	}
	return Home, false
}

// Adoption fold modes for foldCaptureAdopts: what a captured ant's registers
// record beyond the nest move. Encoding the variants as a mode instead of a
// closure keeps the per-capture work a direct, predictable branch — the
// closure form captured loop state and relied on escape analysis to stay off
// the heap (hhlint/hotpathalloc flags it).
const (
	adoptPlain    uint8 = iota // nest move only (ObserveDiscovery)
	adoptQualOne               // nest move, quality := 1 (ObserveAdopt)
	adoptQualZero              // nest move, quality and qidx zeroed (ObserveAdoptZero)
)

// foldCaptureAdopts applies one adoption per lockstep-round ant whose
// capturer advertises a nest different from the ant's own — the common core
// of the recruit-round adoption folds. With a capture-listing matcher only
// the actual captures are visited (they are sparse); otherwise the whole
// capture table is scanned. Reading the capturer's nest from the actNest
// snapshot keeps the fold order-independent even for matchers whose
// capturers can themselves be captured.
//
//hh:hotpath
func (ln *lane) foldCaptureAdopts(mode uint8) {
	nest := ln.nest
	actNest := ln.actNest
	capturedBy := ln.capturedBy
	if ln.capLister != nil {
		for _, t32 := range ln.capLister.Captures() {
			i := int(t32) // slot t is ant t on the lockstep path
			if cb := int(capturedBy[i]); cb != i {
				if outNest := actNest[cb]; outNest != nest[i] {
					ln.adoptCapture(i, outNest, mode)
				}
			}
		}
		return
	}
	for i := range nest {
		if cb := int(capturedBy[i]); cb >= 0 && cb != i {
			if outNest := actNest[cb]; outNest != nest[i] {
				ln.adoptCapture(i, outNest, mode)
			}
		}
	}
}

// adoptCapture moves ant i to its capturer's advertised nest, maintaining the
// incremental commitment census, and applies the mode's register updates.
//
//hh:hotpath
func (ln *lane) adoptCapture(i int, outNest NestID, mode uint8) {
	ln.commit[ln.nest[i]]--
	ln.commit[outNest]++
	ln.nest[i] = outNest
	switch mode {
	case adoptQualOne:
		ln.quality[i] = 1
	case adoptQualZero:
		ln.quality[i] = 0
		if ln.qidx != nil {
			ln.qidx[i] = 0
		}
	}
}
