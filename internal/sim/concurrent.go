package sim

import (
	"fmt"
	"sync"
)

// antCommand instructs an ant goroutine which phase to run.
type antCommand int

const (
	cmdAct antCommand = iota + 1
	cmdObserve
	cmdQuit
)

// RunConcurrent executes rounds with one goroutine per ant, synchronized by a
// per-round barrier: all ants act, the resolver applies the round, all ants
// observe. The semantics and the random choices are identical to Run for the
// same seed — resolution always happens in ant-index order — so the two modes
// are interchangeable oracles for each other.
//
// All goroutines are joined before RunConcurrent returns, including on error
// and on early termination via until.
func (e *Engine) RunConcurrent(maxRounds int, until func(*Engine) bool) (rounds int, err error) {
	if maxRounds <= 0 {
		return e.round, fmt.Errorf("sim: RunConcurrent needs positive maxRounds, got %d", maxRounds)
	}
	if e.err != nil {
		return e.round, e.err
	}

	n := len(e.agents)
	cmds := make([]chan antCommand, n)
	done := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cmds[i] = make(chan antCommand, 1)
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			agent := e.agents[idx]
			for cmd := range cmds[idx] {
				switch cmd {
				case cmdAct:
					e.actions[idx] = agent.Act(e.round)
					done <- idx
				case cmdObserve:
					agent.Observe(e.round, e.outcomes[idx])
					done <- idx
				case cmdQuit:
					return
				}
			}
		}(i)
	}
	defer func() {
		for i := 0; i < n; i++ {
			cmds[i] <- cmdQuit
		}
		wg.Wait()
	}()

	broadcast := func(cmd antCommand) {
		for i := 0; i < n; i++ {
			cmds[i] <- cmd
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}

	for e.round < maxRounds {
		e.round++
		broadcast(cmdAct)
		if err := e.resolve(); err != nil {
			return e.round, err
		}
		broadcast(cmdObserve)
		// End-of-round hook, after every observe goroutine has rejoined the
		// barrier — the same position Step calls it, so the adaptive fault
		// controller mutates identically under either execution mode.
		if e.hook != nil {
			if err := e.hook(e, e.round); err != nil {
				e.err = err
				return e.round, err
			}
		}
		if until != nil && until(e) {
			return e.round, nil
		}
	}
	return e.round, nil
}
