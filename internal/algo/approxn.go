package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// ApproxNAnt implements the §6 "ants know only an approximation of n"
// extension: Algorithm 3 where each ant carries its own fixed estimate
// ñ = n·(1 + u), u ~ Uniform(−δ, +δ), and recruits with probability
// min(1, count/ñ).
//
// Underestimating n makes an ant recruit too eagerly; overestimating makes
// it too shy. Because the errors are independent across ants, the colony's
// aggregate recruitment rate per nest stays proportional to its population —
// the property the paper's §5 analysis actually uses — so convergence should
// survive sizable δ. EXPERIMENTS.md E19 quantifies the cost.
type ApproxNAnt struct {
	nEst   float64
	src    *rng.Source
	phase  simplePhase
	active bool

	nest    sim.NestID
	count   int
	quality float64
}

var _ sim.Agent = (*ApproxNAnt)(nil)

// NewApproxNAnt builds one ant believing the colony has nEst ants (must be
// positive).
func NewApproxNAnt(nEst float64, src *rng.Source) (*ApproxNAnt, error) {
	if nEst <= 0 {
		return nil, fmt.Errorf("algo: colony-size estimate %v must be positive", nEst)
	}
	return &ApproxNAnt{nEst: nEst, src: src, phase: simpleSearch, active: true}, nil
}

// Act implements sim.Agent.
func (a *ApproxNAnt) Act(int) sim.Action {
	switch a.phase {
	case simpleSearch:
		return sim.Search()
	case simpleRecruit:
		b := false
		if a.active {
			p := float64(a.count) / a.nEst
			if p > 1 {
				p = 1
			}
			b = a.src.Bernoulli(p)
		}
		return sim.Recruit(b, a.nest)
	default:
		return sim.Goto(a.nest)
	}
}

// Observe implements sim.Agent.
func (a *ApproxNAnt) Observe(_ int, out sim.Outcome) {
	switch a.phase {
	case simpleSearch:
		a.nest = out.Nest
		a.count = out.Count
		a.quality = out.Quality
		if a.quality == 0 {
			a.active = false
		}
		a.phase = simpleRecruit
	case simpleRecruit:
		if out.Nest != a.nest {
			a.nest = out.Nest
			a.active = true
		}
		a.phase = simpleAssess
	case simpleAssess:
		a.count = out.Count
		a.phase = simpleRecruit
	}
}

// Committed implements the core.Committer contract.
func (a *ApproxNAnt) Committed() (sim.NestID, bool) {
	return a.nest, a.nest != sim.Home
}

// ApproxN is the core.Algorithm builder for the approximate-n extension.
// Delta is the maximum relative error (0 reproduces Algorithm 3 exactly);
// it must lie in [0, 1).
type ApproxN struct {
	Delta float64
}

// Name implements core.Algorithm.
func (a ApproxN) Name() string { return fmt.Sprintf("approxn(δ=%g)", a.Delta) }

// Build implements core.Algorithm.
func (a ApproxN) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: approxn needs a positive colony, got %d", n)
	}
	if env.K() == 0 {
		return nil, fmt.Errorf("algo: approxn needs a non-empty environment")
	}
	if a.Delta < 0 || a.Delta >= 1 {
		return nil, fmt.Errorf("algo: approxn delta %v outside [0, 1)", a.Delta)
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		antSrc := src.Split(uint64(i))
		nEst := float64(n)
		if a.Delta > 0 {
			nEst = float64(n) * (1 + (2*antSrc.Float64()-1)*a.Delta)
		}
		ant, err := NewApproxNAnt(nEst, antSrc)
		if err != nil {
			return nil, err
		}
		agents[i] = ant
	}
	return agents, nil
}
