package core

import (
	"errors"
	"fmt"

	"github.com/gmrl/househunt/internal/metrics"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/trace"
)

// RunConfig parameterizes one house-hunting execution.
type RunConfig struct {
	// N is the colony size; must be positive.
	N int
	// Env is the nest landscape.
	Env sim.Environment
	// Seed is the root seed; engine and agent randomness derive from it.
	Seed uint64
	// MaxRounds bounds the execution; 0 selects a generous default of
	// 64·(k+1)·(log2 n + 1) rounds, comfortably above both algorithms'
	// high-probability bounds.
	MaxRounds int
	// StabilityWindow requires convergence to persist for this many
	// consecutive rounds before the run is declared solved; 0 means 1
	// (first detection wins). The paper's problem statement quantifies over
	// all rounds ≥ T, so experiments use a window > 1 to catch regressions
	// where commitment flickers.
	StabilityWindow int
	// NewMatcher, when non-nil, constructs the recruitment pairing model for
	// each run (default Algorithm 1). It is a factory rather than an instance
	// because matchers carry per-engine scratch state and must not be shared
	// across concurrent runs.
	NewMatcher func() sim.Matcher
	// Trace, when non-nil, receives per-round populations and commitments.
	Trace *trace.Trace
	// Metrics, when non-nil, receives engine instrumentation.
	Metrics *metrics.Registry
	// Concurrent selects the goroutine-per-ant execution mode.
	Concurrent bool
	// Strict toggles §2 protocol validation (default on).
	Strict *bool
	// Wrap post-processes the built agents (fault injection, asynchrony);
	// it must preserve slice length. Wrappers are scalar-only in general —
	// RunBatch declines wrapped configs — EXCEPT fault specs implementing
	// BatchFaultWrapper (faults.Spec), which compile to the batch engine's
	// fault lanes. Plain functions adapt via WrapFunc.
	Wrap AgentWrapper
	// BatchWorkers, when positive, caps the batch engine's worker-goroutine
	// budget (sim.WithBatchWorkers); 0 keeps the engine default of
	// GOMAXPROCS. Scalar runs ignore it. Workers are first spread across
	// replicate lanes, and any surplus shards each lane's colony.
	BatchWorkers int
	// BatchShards, when positive, forces the per-lane shard count
	// (sim.WithBatchShards); 0 lets the engine derive it from the worker
	// budget. Results are bit-identical for every shard count — the knob
	// trades fan-out overhead against per-round parallelism only.
	BatchShards int
}

// AgentWrapper post-processes a built colony — fault injection, asynchrony —
// before the engine runs it. The seed is the run's root seed, from which a
// wrapper derives its private victim stream (by convention
// rng.New(seed).Split(salt) for a wrapper-chosen salt), so a colony wraps
// identically however the wrapper is invoked.
type AgentWrapper interface {
	WrapAgents(seed uint64, agents []sim.Agent) ([]sim.Agent, error)
}

// WrapFunc adapts a bare wrapper function (one that owns its randomness, like
// the faults.Plan and async.Plan builders) to the AgentWrapper interface,
// ignoring the seed.
type WrapFunc func([]sim.Agent) ([]sim.Agent, error)

// WrapAgents implements AgentWrapper.
func (f WrapFunc) WrapAgents(_ uint64, agents []sim.Agent) ([]sim.Agent, error) {
	return f(agents)
}

// Result reports one execution.
type Result struct {
	// Solved is true when convergence was detected within the round budget.
	Solved bool
	// Winner is the unanimously chosen nest (0 if unsolved).
	Winner sim.NestID
	// WinnerQuality is q(Winner).
	WinnerQuality float64
	// Rounds is the round at which convergence was first detected (the end
	// of the stability window, if one was configured); if unsolved it is the
	// number of rounds executed.
	Rounds int
	// FinalCensus is the commitment census at termination.
	FinalCensus Census
	// Algorithm is the algorithm's name.
	Algorithm string
}

// defaultMaxRounds computes the documented default round budget.
func defaultMaxRounds(n, k int) int {
	log2n := 0
	for v := n; v > 1; v >>= 1 {
		log2n++
	}
	return 64 * (k + 1) * (log2n + 1)
}

// buildColony validates cfg, builds the algorithm's agents and applies the
// wrapper, enforcing the colony-size contract at every stage. It is the
// single setup path shared by Run and RunTraced so the two runners cannot
// drift apart (RunTraced once lost cfg.Strict and the size checks exactly
// that way).
func buildColony(algo Algorithm, cfg RunConfig) ([]sim.Agent, error) {
	if algo == nil {
		return nil, errNilAlgorithm
	}
	if cfg.N <= 0 {
		return nil, errBadColony
	}
	if cfg.Env.K() == 0 {
		return nil, errors.New("core: empty environment")
	}
	root := rng.New(cfg.Seed)
	agents, err := algo.Build(cfg.N, cfg.Env, root.Split(2))
	if err != nil {
		return nil, wrapBuild(algo.Name(), err)
	}
	if len(agents) != cfg.N {
		return nil, fmt.Errorf("core: %s built %d agents for n=%d", algo.Name(), len(agents), cfg.N)
	}
	if cfg.Wrap != nil {
		agents, err = cfg.Wrap.WrapAgents(cfg.Seed, agents)
		if err != nil {
			return nil, fmt.Errorf("core: wrapping agents: %w", err)
		}
		if len(agents) != cfg.N {
			return nil, fmt.Errorf("core: wrapper changed colony size to %d", len(agents))
		}
	}
	return agents, nil
}

// engineOptions assembles the sim options both runners share. The trace
// option is deliberately excluded: Run forwards cfg.Trace to the engine,
// while RunTraced records richer per-round censuses itself.
func engineOptions(cfg RunConfig) []sim.Option {
	opts := []sim.Option{sim.WithSeed(cfg.Seed)}
	if cfg.NewMatcher != nil {
		opts = append(opts, sim.WithMatcher(cfg.NewMatcher()))
	}
	if cfg.Metrics != nil {
		opts = append(opts, sim.WithMetrics(cfg.Metrics))
	}
	if cfg.Strict != nil {
		opts = append(opts, sim.WithStrict(*cfg.Strict))
	}
	return opts
}

// Run executes one colony of algo on cfg and reports the result. The error
// return covers configuration and protocol failures; failing to converge
// within the budget is NOT an error — it is Result.Solved == false — because
// non-convergence is a measured outcome for the lower-bound and fault
// experiments.
func Run(algo Algorithm, cfg RunConfig) (Result, error) {
	agents, err := buildColony(algo, cfg)
	if err != nil {
		return Result{}, err
	}
	opts := engineOptions(cfg)
	if cfg.Trace != nil {
		opts = append(opts, sim.WithTrace(cfg.Trace))
	}
	engine, err := sim.New(cfg.Env, agents, opts...)
	if err != nil {
		return Result{}, fmt.Errorf("core: constructing engine: %w", err)
	}

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(cfg.N, cfg.Env.K())
	}
	window := cfg.StabilityWindow
	if window <= 0 {
		window = 1
	}

	res := Result{Algorithm: algo.Name()}
	streak := 0
	var winner sim.NestID
	until := func(e *sim.Engine) bool {
		census := TakeCensus(agents, cfg.Env.K())
		w, ok := census.Converged(cfg.Env)
		switch {
		case !ok:
			streak = 0
		case streak == 0 || w == winner:
			winner = w
			streak++
		default: // converged but to a different nest than the streak's
			winner = w
			streak = 1
		}
		return streak >= window
	}

	var rounds int
	if cfg.Concurrent {
		rounds, err = engine.RunConcurrent(maxRounds, until)
	} else {
		rounds, err = engine.Run(maxRounds, until)
	}
	if err != nil {
		return Result{}, fmt.Errorf("core: running %s: %w", algo.Name(), err)
	}

	res.Rounds = rounds
	res.FinalCensus = TakeCensus(agents, cfg.Env.K())
	if streak >= window {
		res.Solved = true
		res.Winner = winner
		res.WinnerQuality = cfg.Env.Quality(winner)
	}
	return res, nil
}

// RunTraced is Run with per-round commitment recording into cfg.Trace, which
// must be non-nil. It is slower (a census per round lands in the trace) and
// exists for the CLI tools and the population-dynamics figures.
func RunTraced(algo Algorithm, cfg RunConfig) (Result, error) {
	if cfg.Trace == nil {
		return Result{}, errors.New("core: RunTraced needs a trace")
	}
	agents, err := buildColony(algo, cfg)
	if err != nil {
		return Result{}, err
	}

	// The engine records populations; we mirror commitments into a parallel
	// trace by census after each round, using Run's machinery via a manual
	// loop to interleave the census records.
	engine, err := sim.New(cfg.Env, agents, engineOptions(cfg)...)
	if err != nil {
		return Result{}, fmt.Errorf("core: constructing engine: %w", err)
	}

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(cfg.N, cfg.Env.K())
	}
	window := cfg.StabilityWindow
	if window <= 0 {
		window = 1
	}

	res := Result{Algorithm: algo.Name()}
	streak := 0
	var winner sim.NestID
	for engine.Round() < maxRounds {
		if err := engine.Step(); err != nil {
			return Result{}, fmt.Errorf("core: running %s: %w", algo.Name(), err)
		}
		census := TakeCensus(agents, cfg.Env.K())
		if err := cfg.Trace.RecordRound(engine.Round(), engine.Counts(), census.Committed); err != nil {
			return Result{}, fmt.Errorf("core: tracing: %w", err)
		}
		w, ok := census.Converged(cfg.Env)
		switch {
		case !ok:
			streak = 0
		case streak == 0 || w == winner:
			winner = w
			streak++
		default:
			winner = w
			streak = 1
		}
		if streak >= window {
			break
		}
	}

	res.Rounds = engine.Round()
	res.FinalCensus = TakeCensus(agents, cfg.Env.K())
	if streak >= window {
		res.Solved = true
		res.Winner = winner
		res.WinnerQuality = cfg.Env.Quality(winner)
	}
	return res, nil
}
