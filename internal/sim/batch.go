package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gmrl/househunt/internal/rng"
)

// Batch executes R replicate colonies of n ants each, all running one
// compiled Program, as a struct-of-arrays sweep: per-ant state (PFSM state
// id, register file, RNG stream, location) lives in flat slices rather than
// heap-allocated agent objects, and a round resolves with plain switches over
// opcodes — no interface dispatch, no map lookups and no per-round
// allocations on the hot path. Replicates are fanned out across a worker
// pool; each worker owns one lane of flat arrays and streams replicates
// through it.
//
// Two execution paths exist. Programs whose transitions are all
// outcome-independent (Program.Lockstep) keep the whole colony in one shared
// state, so the opcode dispatch happens once per round and the recruit phase
// needs no recruiter/slot indirection because slot t is ant t. Programs with
// branching observes (Algorithm 2) run the general path: a per-ant state
// column drives per-ant dispatch, and recruiting ants are gathered into a
// slot table so the matcher sees exactly the scalar engine's slot space.
//
// The engine is bit-compatible with the scalar path: replicate r seeded with
// seeds[r] produces round-for-round identical populations, commitments and
// final results to an Engine running the same algorithm's scalar agents under
// the same seed (pinned for every compiled algorithm — Algorithms 2 and 3 and
// the §6 extensions, including the carry-matched quorum-transport strategy and
// the hook-driven noisy-perception model — by the randomized cross-engine
// differential harness in internal/algo).
// That holds because the batch engine derives exactly the same RNG streams —
// envSrc = root.Split(0), matchSrc = root.Split(1), ant i = root.Split(2).
// Split(i) — and consumes them in the same order as Engine.Step: per-ant
// draws are stream-disjoint from environment draws, search draws happen in
// ant order, and the matcher receives the recruiting slots in ant order, so
// fusing the emit and move loops preserves every sequence.
//
// A Batch is reusable and safe for concurrent Run calls; all mutable state
// lives in per-worker lanes.
type Batch struct {
	env     Environment
	prog    Program
	n       int
	workers int
	probe   func(rep, round int, counts, committed []int)

	// Program traits, computed once at construction.
	lockstep  bool
	decides   bool
	antRNG    bool
	needI     bool
	needF     bool
	usesCarry bool
	isFinal   []bool
}

// BatchResult reports one replicate of a Batch run, mirroring the fields the
// scalar runner derives for core.Result.
type BatchResult struct {
	// Seed is the replicate's root seed.
	Seed uint64
	// Solved reports convergence within the round budget.
	Solved bool
	// Winner is the unanimously chosen nest (0 if unsolved).
	Winner NestID
	// WinnerQuality is q(Winner).
	WinnerQuality float64
	// Rounds is the round at which convergence was detected (the end of the
	// stability window), or the budget if unsolved.
	Rounds int
	// Committed is the final commitment census (index 0 = uncommitted).
	Committed []int
	// Decided counts ants in Final program states at termination, or -1 when
	// the program does not distinguish terminal states — the same convention
	// as core.Census.Decided.
	Decided int
}

// BatchOption configures a Batch.
type BatchOption func(*Batch)

// WithBatchWorkers caps the worker pool; values < 1 select GOMAXPROCS.
func WithBatchWorkers(w int) BatchOption {
	return func(b *Batch) { b.workers = w }
}

// WithBatchProbe installs a per-round observer, called after each replicate
// round with that round's end-of-round populations (index 0 = home) and
// commitment census (index 0 = uncommitted). The slices are worker-owned
// scratch, valid only during the call; the probe may be invoked concurrently
// for different replicates. Probes exist for the golden equivalence tests.
func WithBatchProbe(probe func(rep, round int, counts, committed []int)) BatchOption {
	return func(b *Batch) { b.probe = probe }
}

// NewBatch builds a batch engine for n-ant colonies of prog in env.
func NewBatch(env Environment, prog Program, n int, opts ...BatchOption) (*Batch, error) {
	if env.K() == 0 {
		return nil, fmt.Errorf("sim: batch needs a non-empty environment")
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: batch needs a positive colony, got %d", n)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	b := &Batch{
		env:       env,
		prog:      prog,
		n:         n,
		lockstep:  prog.Lockstep(),
		decides:   prog.Decides(),
		antRNG:    prog.NeedsAntRNG(),
		needI:     prog.NeedsIntParam(),
		needF:     prog.NeedsFloatParam(),
		usesCarry: prog.UsesCarry(),
		isFinal:   make([]bool, len(prog.States)),
	}
	for i, st := range prog.States {
		b.isFinal[i] = st.Final
	}
	for _, o := range opts {
		o(b)
	}
	return b, nil
}

// N returns the colony size per replicate.
func (b *Batch) N() int { return b.n }

// K returns the number of candidate nests.
func (b *Batch) K() int { return b.env.K() }

// Run executes one replicate per seed and returns the results in seed order.
// maxRounds bounds each replicate; window is the stability window in rounds
// (values < 1 mean 1), both matching the scalar runner's semantics. The first
// replicate error (a compiled program emitting an invalid call) aborts the
// run.
func (b *Batch) Run(seeds []uint64, maxRounds, window int) ([]BatchResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: batch run needs at least one seed")
	}
	if maxRounds <= 0 {
		return nil, fmt.Errorf("sim: batch run needs positive maxRounds, got %d", maxRounds)
	}
	if window < 1 {
		window = 1
	}
	workers := b.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	results := make([]BatchResult, len(seeds))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ln := newLane(b)
			for {
				rep := int(next.Add(1)) - 1
				if rep >= len(seeds) || firstErr.Load() != nil {
					return
				}
				res, err := ln.runReplicate(rep, seeds[rep], maxRounds, window, b.probe)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("sim: batch replicate %d (seed %d): %w", rep, seeds[rep], err))
					return
				}
				results[rep] = res
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return results, nil
}

// lane is one worker's flat-array state: a full colony's registers plus the
// per-round scratch, reused across replicates.
//
// The per-ant state column is the execution model; the lockstep path (taken
// for programs with static successors, where the column would stay uniform by
// construction) models it as the single phase variable of runReplicate and
// keeps its specialized per-opcode loops. The general path dispatches per ant
// and maintains the recruiter/slot indirection: recruiting ants are appended
// to recruiters in ant order, so slot t is the t-th recruiting ant exactly as
// in Engine.resolve, and matching draws consume matchSrc in the scalar
// engine's order.
type lane struct {
	prog Program
	env  Environment
	qual []float64 // quality by nest id (index 0 = home)
	n, k int

	lockstep bool
	decides  bool
	antRNG   bool
	isFinal  []bool

	envSrc, matchSrc rng.Source
	antSrc           []rng.Source // one stream per ant, stored by value

	// Register file (struct of arrays). state is unused on the lockstep path
	// (the shared PFSM state lives in runReplicate's phase variable); nestT
	// and countT are Algorithm 2's cross-round scratch registers. paramI and
	// paramF are the §6 extension parameter columns — AdaptiveAnt's phase
	// clock and ApproxNAnt's private ñ estimate — materialized only when the
	// program's opcodes read them.
	state   []uint8
	nest    []NestID
	count   []int32
	quality []float64
	nestT   []NestID
	countT  []int32
	paramI  []int32
	paramF  []float64

	// Per-round scratch.
	actNest    []NestID // the nest advertised by this round's search/go/recruit
	counts     []int    // end-of-round population per nest
	commit     []int    // commitment census, maintained incrementally
	recruiters []int    // slot -> ant index (general path)
	slotOf     []int    // ant index -> recruiter slot this round (-1 otherwise)
	active     []bool   // recruit(1, ·) per slot (per ant on the lockstep path)
	carries    []int    // carry capacity per slot; nil unless the program transports
	capturedBy []int
	succeeded  []bool
	finals     int // ants currently in Final states (deciding programs)
	matcher    AlgorithmOneMatcher
}

func newLane(b *Batch) *lane {
	n, k := b.n, b.env.K()
	qs := b.env.Qualities()
	ln := &lane{
		prog:       b.prog,
		env:        b.env,
		qual:       qs,
		n:          n,
		k:          k,
		lockstep:   b.lockstep,
		decides:    b.decides,
		antRNG:     b.antRNG,
		isFinal:    b.isFinal,
		state:      make([]uint8, n),
		nest:       make([]NestID, n),
		count:      make([]int32, n),
		quality:    make([]float64, n),
		nestT:      make([]NestID, n),
		countT:     make([]int32, n),
		actNest:    make([]NestID, n),
		counts:     make([]int, k+1),
		commit:     make([]int, k+1),
		recruiters: make([]int, 0, n),
		slotOf:     make([]int, n),
		active:     make([]bool, n),
		capturedBy: make([]int, n),
		succeeded:  make([]bool, n),
	}
	if b.antRNG {
		ln.antSrc = make([]rng.Source, n)
	}
	if b.needI {
		ln.paramI = make([]int32, n)
	}
	if b.needF {
		ln.paramF = make([]float64, n)
	}
	if b.usesCarry {
		ln.carries = make([]int, n)
	}
	return ln
}

// reset re-seeds the lane for a fresh replicate, deriving the same streams
// the scalar stack does: the engine splits {0: environment, 1: matcher} and
// the algorithm builder splits {2} then per-ant substreams. Per-ant streams
// are only materialized when the program draws ant randomness (programs
// without drawn-recruit opcodes never touch them, so seeding n streams would
// be wasted work — and the scalar agents' unused sources draw nothing either).
// The float parameter column is seeded here because the scalar ApproxN
// builder draws each ant's ñ from the ant's own stream before any round runs;
// doing the same keeps the subsequent Bernoulli sequences aligned.
func (ln *lane) reset(seed uint64) {
	root := rng.New(seed)
	root.SplitInto(0, &ln.envSrc)
	root.SplitInto(1, &ln.matchSrc)
	if ln.antRNG {
		var agents rng.Source
		root.SplitInto(2, &agents)
		for i := range ln.antSrc {
			agents.SplitInto(uint64(i), &ln.antSrc[i])
		}
	}
	for i := range ln.paramI {
		ln.paramI[i] = 0
	}
	if ln.paramF != nil {
		delta := ln.prog.Params.NEstDelta
		nF := float64(ln.n)
		for i := range ln.paramF {
			ln.paramF[i] = nF
			if delta > 0 {
				ln.paramF[i] = nF * (1 + (2*ln.antSrc[i].Float64()-1)*delta)
			}
		}
	}
	for i := 0; i < ln.n; i++ {
		ln.state[i] = ln.prog.Init
		ln.nest[i] = Home
		ln.count[i] = 0
		ln.quality[i] = 0
		ln.nestT[i] = Home
		ln.countT[i] = 0
	}
	for i := range ln.commit {
		ln.commit[i] = 0
	}
	ln.commit[Home] = ln.n
	ln.finals = 0
	if ln.isFinal[ln.prog.Init] {
		ln.finals = ln.n
	}
}

// runReplicate executes one colony to convergence or the round budget.
func (ln *lane) runReplicate(rep int, seed uint64, maxRounds, window int, probe func(rep, round int, counts, committed []int)) (BatchResult, error) {
	ln.reset(seed)
	res := BatchResult{Seed: seed, Decided: -1}
	streak := 0
	var winner NestID
	phase := ln.prog.Init
	for round := 1; round <= maxRounds; round++ {
		var err error
		if ln.lockstep {
			var next uint8
			next, err = ln.stepLockstep(phase)
			phase = next
			if ln.decides {
				ln.finals = 0
				if ln.isFinal[phase] {
					ln.finals = ln.n
				}
			}
		} else {
			err = ln.stepGeneral()
		}
		if err != nil {
			return BatchResult{}, fmt.Errorf("round %d: %w", round, err)
		}
		w, ok := ln.census()
		if probe != nil {
			probe(rep, round, ln.counts, ln.commit)
		}
		// Streak bookkeeping mirrors core.Run's until predicate exactly.
		switch {
		case !ok:
			streak = 0
		case streak == 0 || w == winner:
			winner = w
			streak++
		default: // converged, but to a different nest than the streak's
			winner = w
			streak = 1
		}
		res.Rounds = round
		if streak >= window {
			break
		}
	}
	res.Committed = append([]int(nil), ln.commit...)
	if ln.decides {
		res.Decided = ln.finals
	}
	if streak >= window {
		res.Solved = true
		res.Winner = winner
		res.WinnerQuality = ln.qual[winner]
	}
	return res, nil
}

// stepLockstep resolves one synchronous round for a colony whose program has
// static successors: emit + move, recruitment matching, end-of-round counts,
// observe, all in per-opcode specialized loops. It is the batch counterpart
// of Engine.Step/resolve with the same randomness. phase is the colony's
// shared PFSM state; the returned value is next round's phase.
func (ln *lane) stepLockstep(phase uint8) (uint8, error) {
	n, k := ln.n, ln.k
	st := ln.prog.States[phase]
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts

	for i := range counts {
		counts[i] = 0
	}

	// Emit and move, accumulating end-of-round populations as we go. Per-ant
	// Bernoulli draws and envSrc search draws touch disjoint streams, so
	// fusing the scalar engine's act/move phases preserves both sequences.
	recruited := false
	switch st.Emit {
	case EmitSearch:
		envSrc := &ln.envSrc
		for i := range actNest {
			dest := NestID(envSrc.Intn(k) + 1)
			actNest[i] = dest
			counts[dest]++
		}
	case EmitGotoNest:
		for i := range nest {
			dest := nest[i]
			if dest < 1 || int(dest) > k {
				return 0, fmt.Errorf("ant %d: go(%d): nest out of range 1..%d", i, dest, k)
			}
			counts[dest]++
		}
	case EmitRecruitPop, EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
		recruited = true
		ln.drawActiveBits(st.Emit)
		copy(actNest, nest)
		counts[Home] = n

		// Recruitment matching: the paper's Algorithm 1, via the same
		// matcher implementation (and thus the same draw sequence) as the
		// scalar engine. Every ant recruits, so slot t is ant t and no
		// recruiter indirection exists; one concrete call per round costs
		// nothing against the per-ant loops.
		ln.matcher.Match(n, ln.active, &ln.matchSrc, ln.capturedBy, ln.succeeded)
	}

	// Resolve outcome nests in place in actNest: a search outcome is the
	// drawn destination (already there), a go outcome the committed nest,
	// and a recruit outcome the capturer's advertised nest for captured
	// ants. The in-place rewrite is safe because a capturer is never itself
	// captured by another slot (Algorithm 1 blocks both directions), so its
	// entry still holds its own advertised nest when read.
	switch st.Emit {
	case EmitGotoNest:
		copy(actNest, nest)
	case EmitRecruitPop, EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
		capturedBy := ln.capturedBy
		for i := range actNest {
			if cb := capturedBy[i]; cb >= 0 && cb != i {
				actNest[i] = actNest[cb]
			}
		}
	}

	// Observe: fold outcomes into the registers. Recruit outcomes carry no
	// quality and report the home population (= n, everyone recruited); the
	// commitment census updates incrementally on the rare nest-register
	// writes instead of a full per-round recount.
	commit := ln.commit
	switch st.Observe {
	case ObserveDiscovery:
		count := ln.count
		quality := ln.quality
		for i := range nest {
			outNest := actNest[i]
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
			}
			if recruited {
				count[i] = int32(n)
				quality[i] = 0
			} else {
				count[i] = int32(counts[outNest])
				quality[i] = ln.qual[outNest]
			}
		}
	case ObserveAdopt:
		quality := ln.quality
		for i := range nest {
			if outNest := actNest[i]; outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
				quality[i] = 1
			}
		}
	case ObserveCount:
		count := ln.count
		if recruited {
			for i := range count {
				count[i] = int32(n)
			}
		} else {
			for i := range count {
				count[i] = int32(counts[actNest[i]])
			}
		}
	case ObserveAdoptZero:
		quality := ln.quality
		for i := range nest {
			if outNest := actNest[i]; outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
				quality[i] = 0
			}
		}
	case ObserveCountQual:
		count := ln.count
		quality := ln.quality
		if recruited {
			for i := range count {
				count[i] = int32(n)
				quality[i] = 0
			}
		} else {
			for i := range count {
				count[i] = int32(counts[actNest[i]])
				quality[i] = ln.qual[actNest[i]]
			}
		}
	case ObserveDiscoverNoisy:
		count := ln.count
		quality := ln.quality
		countHook, assessHook := ln.prog.Params.Count, ln.prog.Params.Assess
		threshold := ln.prog.Params.Threshold
		for i := range nest {
			outNest := actNest[i]
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
			}
			c, q := counts[outNest], ln.qual[outNest]
			if recruited {
				c, q = n, 0
			}
			// Perception order matches NoisyAnt's observe: the count estimate
			// draws first, then the quality assessment, both from the ant's
			// own stream.
			if countHook != nil {
				c = countHook(c, n, &ln.antSrc[i])
			}
			count[i] = int32(c)
			if assessHook != nil {
				q = assessHook(q, &ln.antSrc[i])
			}
			if q > threshold {
				quality[i] = 1
			} else {
				quality[i] = 0
			}
		}
	case ObserveCountNoisy:
		count := ln.count
		countHook := ln.prog.Params.Count
		for i := range count {
			c := counts[actNest[i]]
			if recruited {
				c = n
			}
			if countHook != nil {
				c = countHook(c, n, &ln.antSrc[i])
			}
			count[i] = int32(c)
		}
	}
	return st.Next, nil
}

// drawActiveBits fills the active column for a colony-wide drawn-recruit
// round, one specialized loop per opcode. Each loop consumes the per-ant
// streams exactly as the corresponding scalar ant does: Simple/Adaptive/
// ApproxN gate the draw on a positive quality register (their active flag),
// while Quality draws unconditionally — its probability is 0 whenever the
// scalar ant would be passive, and rng.Source's Bernoulli consumes nothing at
// p <= 0 or p >= 1, so both formulations touch the streams identically.
func (ln *lane) drawActiveBits(op EmitOp) {
	n := ln.n
	nF := float64(n)
	quality := ln.quality
	count := ln.count
	active := ln.active
	switch op {
	case EmitRecruitPop:
		for i := 0; i < n; i++ {
			b := false
			if quality[i] > 0 {
				b = ln.antSrc[i].Bernoulli(float64(count[i]) / nF)
			}
			active[i] = b
		}
	case EmitRecruitQual:
		for i := 0; i < n; i++ {
			active[i] = ln.antSrc[i].Bernoulli(quality[i] * float64(count[i]) / nF)
		}
	case EmitRecruitAdaptive:
		// The phase clock is colony-uniform here — lockstep programs march
		// every ant through the same emits — so the schedule's decay term is
		// hoisted out of the loop; only count varies per ant, and
		// c/(c+decay) is float-identical to AdaptiveRecruitProbability.
		tau, floorDiv := ln.prog.Params.Tau, ln.prog.Params.FloorDiv
		paramI := ln.paramI
		decay := adaptiveDecay(n, int(paramI[0]), tau, floorDiv)
		for i := 0; i < n; i++ {
			b := false
			if quality[i] > 0 {
				c := float64(count[i])
				b = ln.antSrc[i].Bernoulli(c / (c + decay))
			}
			paramI[i]++
			active[i] = b
		}
	case EmitRecruitApproxN:
		paramF := ln.paramF
		for i := 0; i < n; i++ {
			b := false
			if quality[i] > 0 {
				p := float64(count[i]) / paramF[i]
				if p > 1 {
					p = 1
				}
				b = ln.antSrc[i].Bernoulli(p)
			}
			active[i] = b
		}
	}
}

// stepGeneral resolves one synchronous round for a colony with a per-ant
// state column: per-ant emit + move with the recruiter/slot indirection,
// recruitment matching over the recruiting set, end-of-round counts, per-ant
// observe with outcome-dependent successor selection. The loop structure
// mirrors Engine.Step/resolve exactly: envSrc search draws happen in ant
// order, recruiting ants enter the slot table in ant order, and the matcher
// runs only when the recruiting set is non-empty — so every RNG stream is
// consumed in the scalar engine's order.
func (ln *lane) stepGeneral() error {
	n, k := ln.n, ln.k
	states := ln.prog.States
	state := ln.state
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts
	slotOf := ln.slotOf
	recruiters := ln.recruiters[:0]

	for i := range counts {
		counts[i] = 0
	}

	// Emit and move. actNest holds each ant's advertised nest: the drawn
	// destination for searchers, the target for goers, the recruited-for
	// nest for recruiters.
	for i := 0; i < n; i++ {
		st := &states[state[i]]
		switch st.Emit {
		case EmitSearch:
			dest := NestID(ln.envSrc.Intn(k) + 1)
			actNest[i] = dest
			counts[dest]++
			slotOf[i] = -1
		case EmitGotoNest:
			dest := nest[i]
			if dest < 1 || int(dest) > k {
				return fmt.Errorf("ant %d: go(%d): nest out of range 1..%d", i, dest, k)
			}
			actNest[i] = dest
			counts[dest]++
			slotOf[i] = -1
		case EmitGotoScratch:
			dest := ln.nestT[i]
			if dest < 1 || int(dest) > k {
				return fmt.Errorf("ant %d: go(%d): scratch nest out of range 1..%d", i, dest, k)
			}
			actNest[i] = dest
			counts[dest]++
			slotOf[i] = -1
		case EmitRecruitBit:
			adv := nest[i]
			if adv < 0 || int(adv) > k {
				return fmt.Errorf("ant %d: recruit(%d,%d): nest out of range 0..%d", i, st.Arg, adv, k)
			}
			if st.Arg == 1 && adv == Home {
				return fmt.Errorf("ant %d: recruit(1,0): cannot actively recruit for the home nest", i)
			}
			slot := len(recruiters)
			slotOf[i] = slot
			recruiters = append(recruiters, i)
			ln.active[slot] = st.Arg == 1
			if ln.carries != nil {
				ln.carries[slot] = 1
			}
			actNest[i] = adv
			counts[Home]++
		case EmitRecruitTransport:
			adv := nest[i]
			if adv < 1 || int(adv) > k {
				return fmt.Errorf("ant %d: transport(%d): nest out of range 1..%d", i, adv, k)
			}
			slot := len(recruiters)
			slotOf[i] = slot
			recruiters = append(recruiters, i)
			ln.active[slot] = true
			ln.carries[slot] = ln.prog.Params.QuorumCarry
			actNest[i] = adv
			counts[Home]++
		case EmitRecruitPop, EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
			adv := nest[i]
			var b bool
			switch st.Emit {
			case EmitRecruitPop:
				if ln.quality[i] > 0 {
					b = ln.antSrc[i].Bernoulli(float64(ln.count[i]) / float64(n))
				}
			case EmitRecruitQual:
				b = ln.antSrc[i].Bernoulli(ln.quality[i] * float64(ln.count[i]) / float64(n))
			case EmitRecruitAdaptive:
				if ln.quality[i] > 0 {
					b = ln.antSrc[i].Bernoulli(AdaptiveRecruitProbability(
						n, int(ln.count[i]), int(ln.paramI[i]), ln.prog.Params.Tau, ln.prog.Params.FloorDiv))
				}
				ln.paramI[i]++
			case EmitRecruitApproxN:
				if ln.quality[i] > 0 {
					p := float64(ln.count[i]) / ln.paramF[i]
					if p > 1 {
						p = 1
					}
					b = ln.antSrc[i].Bernoulli(p)
				}
			}
			if b && adv == Home {
				return fmt.Errorf("ant %d: recruit(1,0): cannot actively recruit for the home nest", i)
			}
			slot := len(recruiters)
			slotOf[i] = slot
			recruiters = append(recruiters, i)
			ln.active[slot] = b
			if ln.carries != nil {
				ln.carries[slot] = 1
			}
			actNest[i] = adv
			counts[Home]++
		}
	}
	ln.recruiters = recruiters

	// Recruitment matching over the recruiting set, in slot space. The
	// scalar engine skips the matcher entirely for an empty set; matching
	// that exactly keeps matchSrc in sync on all-goto rounds. Transporting
	// programs route through the carry-aware form; on rounds where every
	// carry is 1 (no transporter recruited) MatchCarry's draw sequence is
	// exactly Match's, so the scalar engine's anyCarry dispatch needs no
	// mirroring.
	nR := len(recruiters)
	if nR > 0 {
		if ln.carries != nil {
			ln.matcher.MatchCarry(nR, ln.active, ln.carries, &ln.matchSrc, ln.capturedBy, ln.succeeded)
		} else {
			ln.matcher.Match(nR, ln.active, &ln.matchSrc, ln.capturedBy, ln.succeeded)
		}
		// Resolve captured recruiters' outcome nests: a captured slot reads
		// its capturer's advertised nest. The in-place rewrite is safe
		// because Algorithm 1 never captures a capturer, so the capturer's
		// actNest entry still holds its own advertised nest when read.
		for t := 0; t < nR; t++ {
			if cb := ln.capturedBy[t]; cb >= 0 && cb != t {
				actNest[recruiters[t]] = actNest[recruiters[cb]]
			}
		}
	}

	// Observe: fold outcomes into the registers and select successors. The
	// outcome count is the end-of-round population of the outcome nest for
	// searchers and goers, and the home population for recruiters (everyone
	// recruiting stands at the home nest), exactly as Engine.resolve fills
	// Outcome.Count. The commitment census updates incrementally on the
	// rare nest-register writes.
	commit := ln.commit
	countHome := int32(counts[Home])
	finals := 0
	for i := 0; i < n; i++ {
		st := &states[state[i]]
		outNest := actNest[i]
		outCount := countHome
		if slotOf[i] < 0 {
			outCount = int32(counts[outNest])
		}
		next := st.Next
		switch st.Observe {
		case ObserveNone:
			// Padding call; outcome discarded.
		case ObserveDiscovery:
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
			}
			ln.count[i] = outCount
			if slotOf[i] < 0 {
				ln.quality[i] = ln.qual[outNest]
			} else {
				ln.quality[i] = 0
			}
		case ObserveAdopt:
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
				ln.quality[i] = 1
			}
		case ObserveCount:
			ln.count[i] = outCount
		case ObserveAdoptZero:
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
				ln.quality[i] = 0
			}
		case ObserveCountQual:
			ln.count[i] = outCount
			if slotOf[i] < 0 {
				ln.quality[i] = ln.qual[outNest]
			} else {
				ln.quality[i] = 0
			}
		case ObserveDiscoverBranch:
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
			}
			ln.count[i] = outCount
			ln.quality[i] = ln.qual[outNest]
			if ln.quality[i] == 0 {
				next = st.NextB
			}
		case ObserveRecruitNest:
			ln.nestT[i] = outNest
		case ObserveCompareR2:
			ln.countT[i] = outCount
			switch {
			case ln.nestT[i] == nest[i] && ln.countT[i] >= ln.count[i]:
				ln.count[i] = ln.countT[i] // Case 1: re-baseline
			case ln.nestT[i] == nest[i]:
				next = st.NextB // Case 2: population dropped
			default:
				// Case 3: recruited to another nest.
				commit[nest[i]]--
				commit[ln.nestT[i]]++
				nest[i] = ln.nestT[i]
				next = st.NextC
			}
		case ObserveRecountRebase:
			if outCount < ln.countT[i] {
				next = st.NextB
			} else {
				ln.count[i] = outCount
			}
		case ObserveRecountLiteral:
			if outCount < ln.countT[i] {
				next = st.NextB
			}
		case ObserveFinalEq:
			if outCount == ln.count[i] {
				next = st.NextB
			}
		case ObserveAdoptPend:
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
				next = st.NextB
			}
		case ObserveNestLatch:
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
			}
		case ObserveDiscoverNoisy:
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
			}
			c := int(outCount)
			if hook := ln.prog.Params.Count; hook != nil {
				c = hook(c, n, &ln.antSrc[i])
			}
			ln.count[i] = int32(c)
			q := 0.0
			if slotOf[i] < 0 {
				q = ln.qual[outNest]
			}
			if hook := ln.prog.Params.Assess; hook != nil {
				q = hook(q, &ln.antSrc[i])
			}
			if q > ln.prog.Params.Threshold {
				ln.quality[i] = 1
			} else {
				ln.quality[i] = 0
			}
		case ObserveCountNoisy:
			c := int(outCount)
			if hook := ln.prog.Params.Count; hook != nil {
				c = hook(c, n, &ln.antSrc[i])
			}
			ln.count[i] = int32(c)
		case ObserveDiscoverQuorum:
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
			}
			ln.count[i] = outCount
			q := 0.0
			if slotOf[i] < 0 {
				q = ln.qual[outNest]
			}
			if hook := ln.prog.Params.Assess; hook != nil {
				q = hook(q, &ln.antSrc[i])
			}
			if q > 0.5 {
				ln.quality[i] = 1
			} else {
				ln.quality[i] = 0
			}
			// Self-calibrate the quorum threshold into the countT scratch
			// register: QuorumAnt's T = max(⌊mult·count⌋, count+2).
			thr := int32(ln.prog.Params.QuorumMult * float64(outCount))
			if thr < outCount+2 {
				thr = outCount + 2
			}
			ln.countT[i] = thr
		case ObserveQuorumAdopt:
			// Capture — not a nest change — is what wakes a quorum ant: a
			// carried ant knows it was picked up even when the capturer
			// advertises the ant's own nest. Self-pairs are not captures.
			if s := slotOf[i]; s >= 0 {
				if cb := ln.capturedBy[s]; cb >= 0 && cb != s {
					if outNest != nest[i] {
						commit[nest[i]]--
						commit[outNest]++
						nest[i] = outNest
					}
					ln.quality[i] = 1
				}
			}
		case ObserveQuorumCheck:
			ln.count[i] = outCount
			if ln.quality[i] > 0 && ln.countT[i] > 0 && outCount >= ln.countT[i] {
				next = st.NextB // quorum reached: promote to transport
			}
		case ObserveQuorumTransport:
			if s := slotOf[i]; s >= 0 {
				if cb := ln.capturedBy[s]; cb >= 0 && cb != s {
					// The docility draw consumes the CAPTURED ant's stream,
					// exactly like QuorumAnt's submit check.
					if ln.antSrc[i].Bernoulli(ln.prog.Params.QuorumDocility) {
						if outNest != nest[i] {
							commit[nest[i]]--
							commit[outNest]++
							nest[i] = outNest
							next = st.NextB // demote to canvasser of the new nest
						}
						ln.quality[i] = 1
					}
				}
			}
		}
		state[i] = next
		if ln.isFinal[next] {
			finals++
		}
	}
	ln.finals = finals
	return nil
}

// census reports unanimous commitment to a good nest from the incrementally
// maintained tally, mirroring core.TakeCensus + Census.Converged: compiled
// programs model no faults, and a deciding program (one with Final states)
// additionally requires every ant to have reached a Final state, exactly as
// the scalar runner gates on the core.Decided contract.
func (ln *lane) census() (NestID, bool) {
	if ln.decides && ln.finals != ln.n {
		return Home, false
	}
	for i := 1; i <= ln.k; i++ {
		if ln.commit[i] == ln.n && ln.qual[i] > 0 {
			return NestID(i), true
		}
	}
	return Home, false
}
