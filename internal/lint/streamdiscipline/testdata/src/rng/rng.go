// Package rng is a fixture stand-in for the real internal/rng: the
// analyzers identify draw calls by package name, receiver type name, and
// method name only, so this minimal shape is all the tests need.
package rng

type Source struct{ s uint64 }

func (s *Source) Uint64() uint64           { s.s += 0x9e3779b97f4a7c15; return s.s }
func (s *Source) Uint64n(n uint64) uint64  { return s.Uint64() % n }
func (s *Source) Intn(n int) int           { return int(s.Uint64n(uint64(n))) }
func (s *Source) Bernoulli(p float64) bool { return p > 0 && s.Uint64() < 1<<52 }
func (s *Source) Split() Source            { return Source{s: s.s} }

type Threshold uint64

const ThresholdNever Threshold = 0

func (t Threshold) Draw(src *Source) bool { return src.Uint64()>>11 < uint64(t) }
