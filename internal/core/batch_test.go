package core

import (
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/metrics"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/trace"
)

// compilableOracle is a minimal BatchCompilable: it exposes a trivial
// lockstep program so CompileForBatch's cfg gating can be probed without
// depending on the algo package (core must not import it).
type compilableOracle struct{ decline bool }

func (compilableOracle) Name() string { return "oracle" }

func (compilableOracle) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	return nil, nil
}

func (c compilableOracle) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if c.decline {
		return sim.Program{}, false
	}
	return sim.Program{
		Algorithm: "oracle",
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscovery, Next: 0},
		},
	}, true
}

// TestCompileForBatchReasons pins the fallback diagnostics: every scalar-only
// cfg field and every algorithm-side refusal must name itself in the returned
// reason, and an eligible pair must return an empty reason — the "why is this
// sweep slow" contract.
func TestCompileForBatchReasons(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0})
	base := RunConfig{N: 16, Env: env}
	tr := trace.New(2)
	cases := []struct {
		name string
		algo Algorithm
		cfg  RunConfig
		want string
	}{
		{"nil algorithm", nil, base, "no algorithm"},
		{"bad colony", compilableOracle{}, RunConfig{N: 0, Env: env}, "colony size"},
		{"empty environment", compilableOracle{}, RunConfig{N: 8}, "empty environment"},
		{"wrap", compilableOracle{}, func() RunConfig {
			c := base
			c.Wrap = WrapFunc(func(a []sim.Agent) ([]sim.Agent, error) { return a, nil })
			return c
		}(), "cfg.Wrap"},
		{"trace", compilableOracle{}, func() RunConfig {
			c := base
			c.Trace = tr
			return c
		}(), "cfg.Trace"},
		{"metrics", compilableOracle{}, func() RunConfig {
			c := base
			c.Metrics = metrics.NewRegistry()
			return c
		}(), "cfg.Metrics"},
		{"matcher", compilableOracle{}, func() RunConfig {
			c := base
			c.NewMatcher = func() sim.Matcher { return customMatcher{} }
			return c
		}(), "custom matcher"},
		{"nil matcher", compilableOracle{}, func() RunConfig {
			c := base
			c.NewMatcher = func() sim.Matcher { return nil }
			return c
		}(), "cfg.NewMatcher returned nil"},
		{"concurrent", compilableOracle{}, func() RunConfig {
			c := base
			c.Concurrent = true
			return c
		}(), "cfg.Concurrent"},
		{"not compilable", stubAlgorithm{}, base, "does not implement core.BatchCompilable"},
		{"declined", compilableOracle{decline: true}, base, "declined to compile"},
	}
	for _, tc := range cases {
		_, ok, reason := CompileForBatch(tc.algo, tc.cfg)
		if ok {
			t.Errorf("%s: unexpectedly batch-eligible", tc.name)
			continue
		}
		if !strings.Contains(reason, tc.want) {
			t.Errorf("%s: reason %q does not mention %q", tc.name, reason, tc.want)
		}
	}
	if _, ok, reason := CompileForBatch(compilableOracle{}, base); !ok || reason != "" {
		t.Errorf("eligible pair: ok=%v reason=%q, want true and empty", ok, reason)
	}

	// Every stock matcher model compiles: the batch engine runs the default
	// Algorithm 1 pairing (with its carry-aware transport form) and the
	// simultaneous/rendezvous ablations with their scalar draw sequences, so
	// cfg.NewMatcher only forces the scalar path for genuinely custom
	// implementations.
	for _, stock := range sim.Matchers() {
		stock := stock
		name := stock.Name()
		matcherCfg := base
		matcherCfg.NewMatcher = func() sim.Matcher { return stock }
		if _, ok, reason := CompileForBatch(compilableOracle{}, matcherCfg); !ok || reason != "" {
			t.Errorf("stock matcher %s: ok=%v reason=%q, want batch-eligible with empty reason", name, ok, reason)
		}
	}

	// The custom-matcher reason must name the offending type and the stock
	// models that do compile, so "why is this sweep slow" has a one-line
	// answer that does not imply batched matching is missing entirely.
	matcherCfg := base
	matcherCfg.NewMatcher = func() sim.Matcher { return customMatcher{} }
	if _, _, reason := CompileForBatch(compilableOracle{}, matcherCfg); !strings.Contains(reason, "custom-test") ||
		!strings.Contains(reason, "algorithm1") || !strings.Contains(reason, "carry-aware") ||
		!strings.Contains(reason, "simultaneous") || !strings.Contains(reason, "rendezvous") {
		t.Errorf("matcher reason %q does not name the custom type and the stock batch-compiled models", reason)
	}
}

// customMatcher is a non-stock Matcher implementation: configs supplying it
// must stay on the scalar path.
type customMatcher struct{}

func (customMatcher) Name() string { return "custom-test" }

func (customMatcher) Match(n int, active []bool, src *rng.Source, capturedBy []int32, succeeded []bool) {
	for t := 0; t < n; t++ {
		capturedBy[t] = -1
		succeeded[t] = false
	}
}

// transportProgram is a minimal carry-using program: CompileForBatch must
// decline it for stock matchers without carry support (simultaneous and
// rendezvous implement no CarryMatcher), because the scalar engine would
// reject the transporting round at runtime.
type transportOracle struct{}

func (transportOracle) Name() string { return "transport-oracle" }

func (transportOracle) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	return nil, nil
}

func (transportOracle) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	return sim.Program{
		Algorithm: "transport-oracle",
		States: []sim.ProgramState{
			{Emit: sim.EmitRecruitTransport, Observe: sim.ObserveNone, Next: 0},
		},
		Params: sim.ProgramParams{QuorumCarry: 3},
	}, true
}

// TestCompileForBatchTransportNeedsCarryMatcher pins the carry gating: a
// transporting program batches with the default pairing but declines for
// stock matchers lacking MatchCarry, naming the matcher in the reason.
func TestCompileForBatchTransportNeedsCarryMatcher(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0})
	base := RunConfig{N: 16, Env: env}
	if _, ok, reason := CompileForBatch(transportOracle{}, base); !ok || reason != "" {
		t.Fatalf("transport program with default pairing: ok=%v reason=%q, want eligible", ok, reason)
	}
	withA1 := base
	withA1.NewMatcher = func() sim.Matcher { return &sim.AlgorithmOneMatcher{} }
	if _, ok, reason := CompileForBatch(transportOracle{}, withA1); !ok || reason != "" {
		t.Fatalf("transport program with explicit algorithm1: ok=%v reason=%q, want eligible", ok, reason)
	}
	for _, factory := range []func() sim.Matcher{
		func() sim.Matcher { return &sim.SimultaneousMatcher{} },
		func() sim.Matcher { return &sim.RendezvousMatcher{} },
	} {
		cfg := base
		cfg.NewMatcher = factory
		name := factory().Name()
		_, ok, reason := CompileForBatch(transportOracle{}, cfg)
		if ok {
			t.Errorf("%s: transporting program should not batch without carry support", name)
			continue
		}
		if !strings.Contains(reason, name) || !strings.Contains(reason, "CarryMatcher") {
			t.Errorf("%s: reason %q does not name the matcher and the missing carry support", name, reason)
		}
	}
}

// stubAlgorithm is an Algorithm without a compiled form.
type stubAlgorithm struct{}

func (stubAlgorithm) Name() string { return "stub" }

func (stubAlgorithm) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	return nil, nil
}
