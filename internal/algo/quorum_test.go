package algo

import (
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/sim"
)

func TestQuorumConverges(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	for seed := uint64(1); seed <= 8; seed++ {
		res := runAlgo(t, Quorum{}, 200, env, seed, 0)
		if !res.Solved {
			t.Fatalf("seed %d: quorum colony unsolved", seed)
		}
		if !env.Good(res.Winner) {
			t.Fatalf("seed %d: quorum picked bad nest %d", seed, res.Winner)
		}
		// Algorithm's Decided == transporting: everyone must be moving.
		if res.FinalCensus.Decided != res.FinalCensus.Total {
			t.Fatalf("seed %d: %d/%d ants transporting at convergence",
				seed, res.FinalCensus.Decided, res.FinalCensus.Total)
		}
	}
}

func TestQuorumTransportSpeedsFinish(t *testing.T) {
	t.Parallel()
	// With carry=3 transports, the post-quorum phase should finish faster
	// than with carry=1 (pure tandem runs) on average.
	env := sim.MustEnvironment([]float64{1, 1})
	const n, reps = 300, 8
	var fast, slow int
	for seed := uint64(1); seed <= reps; seed++ {
		withTransport := runAlgo(t, Quorum{Carry: 3}, n, env, seed, 0)
		tandemOnly := runAlgo(t, Quorum{Carry: 1}, n, env, seed, 0)
		if !withTransport.Solved || !tandemOnly.Solved {
			t.Fatalf("seed %d: transport=%v tandem=%v", seed, withTransport.Solved, tandemOnly.Solved)
		}
		fast += withTransport.Rounds
		slow += tandemOnly.Rounds
	}
	if fast >= slow {
		t.Fatalf("transports (%d total rounds) not faster than tandem-only (%d)", fast, slow)
	}
}

func TestQuorumAntPromotion(t *testing.T) {
	t.Parallel()
	a := NewQuorumAnt(100, testSrc(1), 2.0, 3, 0, nil)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 5, Quality: 1})
	// Self-calibrated threshold: 2.0 × 5 = 10 ants.
	if a.Transporting() {
		t.Fatal("transporting below quorum")
	}
	if a.Decided() {
		t.Fatal("decided below quorum")
	}
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 1})
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 1, Count: 9}) // below 10: no quorum yet
	if a.Transporting() {
		t.Fatal("transporting below the calibrated threshold")
	}
	a.Act(4)
	a.Observe(4, sim.Outcome{Nest: 1})
	a.Act(5)
	a.Observe(5, sim.Outcome{Nest: 1, Count: 12}) // quorum reached at assess
	if !a.Transporting() || !a.Decided() {
		t.Fatal("quorum at assess did not promote to transport")
	}
	act := a.Act(6)
	if act.Kind != sim.ActionRecruit || !act.Active || act.Carry != 3 {
		t.Fatalf("transporting act = %+v, want transport(1, carry 3)", act)
	}
}

func TestQuorumPassiveNeverTransportsAlone(t *testing.T) {
	t.Parallel()
	// An ant on a bad nest stays passive; even a crowded bad nest must not
	// trigger transport (only canvassers promote).
	a := NewQuorumAnt(100, testSrc(2), 1.5, 3, 0, nil)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 2, Count: 50, Quality: 0})
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 2})
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 2, Count: 90}) // above threshold but passive
	if a.Transporting() {
		t.Fatal("passive ant transporting")
	}
	act := a.Act(2)
	if act.Active {
		t.Fatalf("passive quorum ant recruited actively: %+v", act)
	}
}

func TestQuorumNoisyAssessmentStillSolves(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	a := Quorum{Multiplier: 2.0, Assessor: nest.FlipAssessor{P: 0.1}}
	solved := 0
	const reps = 8
	for seed := uint64(1); seed <= reps; seed++ {
		res := runAlgo(t, a, 200, env, seed, 0)
		if res.Solved && env.Good(res.Winner) {
			solved++
		}
	}
	if solved < reps/2 {
		t.Fatalf("noisy quorum solved only %d/%d", solved, reps)
	}
}

func TestQuorumBuilderValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := (Quorum{}).Build(0, env, testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := (Quorum{}).Build(5, sim.Environment{}, testSrc(1)); err == nil {
		t.Fatal("empty environment accepted")
	}
	if _, err := (Quorum{Multiplier: 0.8}).Build(5, env, testSrc(1)); err == nil {
		t.Fatal("multiplier <= 1 accepted")
	}
	if (Quorum{}).Name() == (Quorum{Assessor: nest.FlipAssessor{P: 0.1}}).Name() {
		t.Fatal("assessor not reflected in name")
	}
}

// TestQuorumThresholdExactBoundary pins the quorum comparison at its exact
// boundary: checkQuorum promotes at count >= threshold, so a population of
// threshold−1 must not transport and a population of exactly threshold must.
func TestQuorumThresholdExactBoundary(t *testing.T) {
	t.Parallel()
	a := NewQuorumAnt(100, testSrc(11), 2.0, 3, 0, nil)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 5, Quality: 1})
	if a.threshold != 10 {
		t.Fatalf("threshold = %d, want 2.0 × 5 = 10", a.threshold)
	}
	cycle := func(round int, count int) {
		a.Act(round)
		a.Observe(round, sim.Outcome{Nest: 1})
		a.Act(round + 1)
		a.Observe(round+1, sim.Outcome{Nest: 1, Count: count})
	}
	cycle(2, 9) // one below: no quorum
	if a.Transporting() {
		t.Fatal("transporting at threshold − 1")
	}
	cycle(4, 10) // exactly at threshold: quorum
	if !a.Transporting() {
		t.Fatal("population equal to the threshold did not reach quorum")
	}
}

// TestQuorumThresholdGrowthFloor pins the self-calibration floor: when
// multiplier × initial count rounds below initial count + 2, the threshold is
// lifted to initial count + 2 so growth is always required — a nest must gain
// ants over the ant's first visit, never reach quorum standing still.
func TestQuorumThresholdGrowthFloor(t *testing.T) {
	t.Parallel()
	// 1.5 × 2 = 3 < 2 + 2: floored to 4.
	a := NewQuorumAnt(100, testSrc(12), 1.5, 3, 0, nil)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 2, Quality: 1})
	if a.threshold != 4 {
		t.Fatalf("threshold = %d, want the floor initial count + 2 = 4", a.threshold)
	}
	// 1.5 × 4 = 6 = 4 + 2: the multiplier value stands exactly at the floor.
	b := NewQuorumAnt(100, testSrc(13), 1.5, 3, 0, nil)
	b.Act(1)
	b.Observe(1, sim.Outcome{Nest: 1, Count: 4, Quality: 1})
	if b.threshold != 6 {
		t.Fatalf("threshold = %d, want 1.5 × 4 = 6", b.threshold)
	}
}

// TestQuorumTransporterCaptureSemantics pins the Recruited-flag handling for
// transporters: an uncaptured recruit outcome leaves the transporter alone; a
// fully docile transporter carried to its own nest submits but keeps
// transporting (the "carried by a nestmate advertising the same nest" case);
// carried to a different nest it demotes to a canvasser of that nest.
func TestQuorumTransporterCaptureSemantics(t *testing.T) {
	t.Parallel()
	build := func(seed uint64) *QuorumAnt {
		a := NewQuorumAnt(100, testSrc(seed), 2.0, 3, 1, nil)
		a.Act(1)
		a.Observe(1, sim.Outcome{Nest: 1, Count: 3, Quality: 1})
		a.Act(2)
		a.Observe(2, sim.Outcome{Nest: 1})
		a.Act(3)
		a.Observe(3, sim.Outcome{Nest: 1, Count: 50}) // far above quorum
		if !a.Transporting() {
			t.Fatal("setup: ant did not reach quorum")
		}
		return a
	}

	a := build(21)
	a.Act(4)
	a.Observe(4, sim.Outcome{Nest: 1, Count: 40}) // recruit outcome, not captured
	if !a.Transporting() || a.nest != 1 {
		t.Fatalf("uncaptured transporter changed state: transport=%v nest=%d", a.Transporting(), a.nest)
	}

	b := build(22)
	b.Act(4)
	b.Observe(4, sim.Outcome{Nest: 1, Recruited: true}) // carried to its own nest
	if !b.Transporting() || !b.active {
		t.Fatalf("transporter carried to its own nest: transport=%v active=%v, want still transporting",
			b.Transporting(), b.active)
	}

	c := build(23)
	c.Act(4)
	c.Observe(4, sim.Outcome{Nest: 2, Recruited: true}) // carried to a rival nest
	if c.Transporting() {
		t.Fatal("docile transporter kept transporting after adoption")
	}
	if c.nest != 2 || !c.active {
		t.Fatalf("docile transporter did not demote to canvasser of the new nest: nest=%d active=%v", c.nest, c.active)
	}
	if c.Decided() {
		t.Fatal("demoted transporter still reports decided")
	}
}

func TestApproxNZeroDeltaMatchesSimple(t *testing.T) {
	t.Parallel()
	// δ = 0 must reproduce Algorithm 3 exactly, draw for draw.
	env := sim.MustEnvironment([]float64{1, 0, 1})
	const n = 96
	for seed := uint64(1); seed <= 3; seed++ {
		plain, err := core.Run(Simple{}, core.RunConfig{N: n, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := core.Run(ApproxN{}, core.RunConfig{N: n, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Rounds != approx.Rounds || plain.Winner != approx.Winner {
			t.Fatalf("seed %d: δ=0 diverged from simple: %+v vs %+v", seed, plain, approx)
		}
	}
}

func TestApproxNToleratesLargeError(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	a := ApproxN{Delta: 0.5}
	solved := 0
	const reps = 8
	for seed := uint64(1); seed <= reps; seed++ {
		res := runAlgo(t, a, 200, env, seed, 0)
		if res.Solved && env.Good(res.Winner) {
			solved++
		}
	}
	if solved < reps-1 {
		t.Fatalf("solved only %d/%d with ±50%% error in n", solved, reps)
	}
}

func TestApproxNBuilderValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := (ApproxN{Delta: -0.1}).Build(5, env, testSrc(1)); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := (ApproxN{Delta: 1}).Build(5, env, testSrc(1)); err == nil {
		t.Fatal("delta >= 1 accepted")
	}
	if _, err := (ApproxN{}).Build(0, env, testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := NewApproxNAnt(0, testSrc(1)); err == nil {
		t.Fatal("zero estimate accepted")
	}
}

// buildTransporter drives a fresh QuorumAnt through search, one recruit round
// and one assess round far above its threshold, returning it in transport
// mode with the given docility.
func buildTransporter(t *testing.T, seed uint64, docility float64) *QuorumAnt {
	t.Helper()
	a := NewQuorumAnt(100, testSrc(seed), 2.0, 3, docility, nil)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 3, Quality: 1})
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 1})
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 1, Count: 50})
	if !a.Transporting() {
		t.Fatal("setup: ant did not reach quorum")
	}
	return a
}

// TestQuorumDocilityBoundaries pins the docility Bernoulli at its endpoints.
// A captured transporter with docility exactly 1 always submits, one with
// docility exactly 0 never does — and both endpoints are draw-free, because
// rng.Source's Bernoulli short-circuits at p <= 0 and p >= 1. The compiled
// batch program relies on that draw-freeness for stream alignment, so the
// endpoints are pinned here at the scalar source of truth. (The public
// builder defaults docility 0 to 0.25; the field is set directly to reach
// the boundary.)
func TestQuorumDocilityBoundaries(t *testing.T) {
	t.Parallel()

	always := buildTransporter(t, 41, 0.5)
	always.docility = 1
	before := always.src.State()
	always.Act(4)
	always.Observe(4, sim.Outcome{Nest: 2, Recruited: true})
	if always.Transporting() || always.nest != 2 || !always.active {
		t.Fatalf("docility-1 transporter did not submit: transport=%v nest=%d active=%v",
			always.Transporting(), always.nest, always.active)
	}
	if always.src.State() != before {
		t.Fatal("docility 1 consumed randomness; Bernoulli(1) must be draw-free")
	}

	never := buildTransporter(t, 42, 0.5)
	never.docility = 0
	before = never.src.State()
	never.Act(4)
	never.Observe(4, sim.Outcome{Nest: 2, Recruited: true})
	if !never.Transporting() || never.nest != 1 {
		t.Fatalf("docility-0 transporter submitted: transport=%v nest=%d",
			never.Transporting(), never.nest)
	}
	if never.src.State() != before {
		t.Fatal("docility 0 consumed randomness; Bernoulli(0) must be draw-free")
	}
}

// TestQuorumTransporterSelfCaptureExclusion pins the self-pair exclusion: a
// transporter whose recruit round self-paired (SelfPaired and Succeeded set,
// Recruited clear — the matcher drew the ant itself) was NOT captured, so it
// keeps transporting and, critically, draws no docility Bernoulli. The batch
// engine's capturedBy[slot] == slot convention encodes the same exclusion.
func TestQuorumTransporterSelfCaptureExclusion(t *testing.T) {
	t.Parallel()
	a := buildTransporter(t, 43, 0.25)
	before := a.src.State()
	a.Act(4)
	a.Observe(4, sim.Outcome{Nest: 1, Count: 60, SelfPaired: true, Succeeded: true})
	if !a.Transporting() || a.nest != 1 {
		t.Fatalf("self-paired transporter changed state: transport=%v nest=%d", a.Transporting(), a.nest)
	}
	if a.src.State() != before {
		t.Fatal("self-pair consumed the docility draw; only capture may draw")
	}
}
