package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// optState is Algorithm 2's state variable (§4: search, active, passive,
// final).
type optState int

const (
	optSearch optState = iota + 1
	optActive
	optPassive
	optFinal
)

// optNone marks "no pending state change" in the phase-boundary latch.
const optNone optState = 0

// String names the state for diagnostics.
func (s optState) String() string {
	switch s {
	case optSearch:
		return "search"
	case optActive:
		return "active"
	case optPassive:
		return "passive"
	case optFinal:
		return "final"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// OptimalAnt is one ant of the paper's Algorithm 2 (§4), the asymptotically
// optimal O(log n) algorithm. Round 1 is the global search round; afterwards
// every non-final ant executes 4-round subroutines in colony-wide lockstep
// (phase position p = (round-2) mod 4, i.e. R1..R4 of the pseudocode), while
// final ants run the 1-round recruit loop.
//
// The implementation is line-faithful to the pseudocode, including:
//
//   - the padding calls whose return values are discarded (lines 13, 18-19,
//     28-29, 35-36, 42),
//   - final ants assigning nest from their recruit return (line 21), and
//   - passive ants finishing their 4-round block after being captured before
//     acting as final (lines 15-19).
//
// One genuine ambiguity exists in the pseudocode's Case 3 (lines 37-42): an
// ant recruited to a new nest never updates its count register, so in its
// next phase it compares the new nest's population against the *old* nest's
// remembered count. Under that literal reading a single unlucky comparison
// turns the recruited ant passive, which shrinks the new nest's measured
// population and can cascade into every competing nest dropping out — after
// which no active or final ants exist and the colony deadlocks, contradicting
// the paper's own Lemma 4.1/4.2 analysis (which models population change
// purely as the recruitment delta Y). We therefore default to the reading
// consistent with the analysis: a Case 3 ant re-baselines count to the count
// it measured at the new nest (count := count_n). The literal reading is kept
// behind Literal for the E17 ablation, which quantifies how often it
// deadlocks (see EXPERIMENTS.md).
type OptimalAnt struct {
	src *rng.Source

	state   optState
	next    optState // latched at the phase boundary (end of R4)
	pending bool     // passive ant captured at R2, becomes final at boundary

	nest    sim.NestID
	count   int
	quality float64

	nestT  sim.NestID // scratch: recruit result at R1
	countT int        // scratch: population measured at R2
	branch int        // active-case branch (1, 2 or 3) chosen at R2

	literal bool
}

var _ sim.Agent = (*OptimalAnt)(nil)

// NewOptimalAnt builds one Algorithm 2 ant. literal selects the pseudocode's
// literal Case 3 (stale count baseline); false selects the analysis-
// consistent re-baselining.
func NewOptimalAnt(src *rng.Source, literal bool) *OptimalAnt {
	return &OptimalAnt{src: src, state: optSearch, literal: literal}
}

// phasePos maps a global round (>= 2) to the pseudocode's R1..R4 as 0..3.
func phasePos(round int) int { return (round - 2) % 4 }

// Act implements sim.Agent.
func (a *OptimalAnt) Act(round int) sim.Action {
	if round == 1 {
		return sim.Search() // line 7
	}
	if a.state == optFinal {
		return sim.Recruit(true, a.nest) // line 21
	}
	p := phasePos(round)
	if a.state == optPassive {
		switch p {
		case 0:
			return sim.Goto(a.nest) // line 13
		case 1:
			return sim.Recruit(false, a.nest) // line 14
		case 2:
			return sim.Goto(a.nest) // line 18
		default:
			return sim.Goto(a.nest) // line 19
		}
	}
	// active
	switch p {
	case 0:
		return sim.Recruit(true, a.nest) // line 23
	case 1:
		return sim.Goto(a.nestT) // line 24
	case 2:
		switch a.branch {
		case 1:
			return sim.Goto(a.nest) // line 28
		case 2:
			return sim.Recruit(false, a.nest) // line 35
		default:
			return sim.Goto(a.nest) // line 39 (nest already := nest_t)
		}
	default: // p == 3
		switch a.branch {
		case 1:
			return sim.Recruit(false, a.nest) // line 29
		case 2:
			return sim.Goto(a.nest) // line 36
		default:
			return sim.Goto(a.nest) // line 42
		}
	}
}

// Observe implements sim.Agent.
func (a *OptimalAnt) Observe(round int, out sim.Outcome) {
	if round == 1 {
		// lines 7-11
		a.nest = out.Nest
		a.count = out.Count
		a.quality = out.Quality
		if a.quality == 0 {
			a.state = optPassive
		} else {
			a.state = optActive
		}
		return
	}
	if a.state == optFinal {
		a.nest = out.Nest // line 21: ⟨nest, ·⟩ := recruit(1, nest)
		return
	}
	p := phasePos(round)
	if a.state == optPassive {
		switch p {
		case 1:
			// lines 14-17: captured passive ants learn the nest and queue the
			// transition to final for the end of the block.
			if out.Nest != a.nest {
				a.nest = out.Nest
				a.pending = true
			}
		case 3:
			if a.pending {
				a.state = optFinal
				a.pending = false
			}
		}
		return
	}
	// active
	switch p {
	case 0:
		a.nestT = out.Nest // line 23
	case 1:
		a.countT = out.Count // line 24
		switch {
		case a.nestT == a.nest && a.countT >= a.count:
			// Case 1, lines 25-27.
			a.branch = 1
			a.count = a.countT
		case a.nestT == a.nest:
			// Case 2, lines 32-34: the nest's population decreased.
			a.branch = 2
			a.next = optPassive
		default:
			// Case 3, lines 37-38: recruited to another nest.
			a.branch = 3
			a.nest = a.nestT
		}
	case 2:
		if a.branch == 3 {
			// lines 39-41: count_n := go(nest).
			countN := out.Count
			if countN < a.countT {
				a.next = optPassive
			} else if !a.literal {
				// Analysis-consistent re-baseline; the literal pseudocode
				// leaves count at the old nest's value (see type comment).
				a.count = countN
			}
		}
	case 3:
		if a.branch == 1 {
			// lines 29-31: count_h from recruit(0, nest).
			if out.Count == a.count {
				a.next = optFinal
			}
		}
		// Phase boundary: latch the queued state change.
		if a.next != optNone {
			a.state = a.next
			a.next = optNone
		}
	}
}

// Committed implements the core.Committer contract.
func (a *OptimalAnt) Committed() (sim.NestID, bool) {
	return a.nest, a.nest != sim.Home
}

// Decided implements the core.Decided contract: Algorithm 2 terminates when
// every ant reaches the final state (paper §4.2).
func (a *OptimalAnt) Decided() bool { return a.state == optFinal }

// State exposes the ant's Algorithm 2 state for tests and experiments.
func (a *OptimalAnt) State() string { return a.state.String() }

// Optimal is the core.Algorithm builder for Algorithm 2. The zero value uses
// the analysis-consistent Case 3; set Literal for the pseudocode-literal
// variant (ablation E17).
type Optimal struct {
	Literal bool
}

// Name implements core.Algorithm.
func (o Optimal) Name() string {
	if o.Literal {
		return "optimal-literal"
	}
	return "optimal"
}

// Build implements core.Algorithm.
func (o Optimal) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: optimal needs a positive colony, got %d", n)
	}
	if env.K() == 0 {
		return nil, fmt.Errorf("algo: optimal needs a non-empty environment")
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		agents[i] = NewOptimalAnt(src.Split(uint64(i)), o.Literal)
	}
	return agents, nil
}
