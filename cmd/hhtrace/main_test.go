package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "32", "-k", "2", "-good", "1", "-format", "csv", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "round,pop0,pop1,pop2") {
		t.Fatalf("csv header missing:\n%.80s", out.String())
	}
	if len(strings.Split(out.String(), "\n")) < 3 {
		t.Fatal("csv has no data rows")
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "32", "-k", "2", "-good", "1", "-format", "json", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"rounds\"") {
		t.Fatalf("json missing rounds:\n%.120s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-format", "xml"}, &out); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Fatal("zero colony accepted")
	}
	if err := run([]string{"-algo", "bogus"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
