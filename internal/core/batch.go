package core

import (
	"fmt"

	"github.com/gmrl/househunt/internal/sim"
)

// BatchCompilable is implemented by algorithms that can lower themselves to
// the batch engine's compiled form (sim.Program). CompileBatch returns
// ok = false when the algorithm cannot be compiled for the given parameters;
// callers then fall back to the scalar agent path.
type BatchCompilable interface {
	Algorithm
	CompileBatch(n int, env sim.Environment) (sim.Program, bool)
}

// CompileForBatch reports whether algo + cfg can run on the batch engine and
// returns the compiled program if so. Eligibility requires a compilable
// algorithm and a configuration with none of the scalar-only features: agent
// wrappers (faults, asynchrony), traces, metrics, custom matchers and the
// goroutine-per-ant mode all hold per-agent or per-engine state the batch
// lanes do not model.
//
// When compilation is declined, the returned reason names the cfg field or
// algorithm that blocked it — one log line answers "why is this sweep on the
// slow path". The reason is empty exactly when ok is true.
func CompileForBatch(algo Algorithm, cfg RunConfig) (prog sim.Program, ok bool, reason string) {
	switch {
	case algo == nil:
		return sim.Program{}, false, "no algorithm"
	case cfg.N <= 0:
		return sim.Program{}, false, fmt.Sprintf("colony size %d is not positive", cfg.N)
	case cfg.Env.K() == 0:
		return sim.Program{}, false, "empty environment"
	case cfg.Wrap != nil:
		return sim.Program{}, false, "cfg.Wrap is set (agent wrappers are scalar-only)"
	case cfg.Trace != nil:
		return sim.Program{}, false, "cfg.Trace is set (per-round traces are scalar-only)"
	case cfg.Metrics != nil:
		return sim.Program{}, false, "cfg.Metrics is set (engine instrumentation is scalar-only)"
	case cfg.NewMatcher != nil:
		// Note the distinction: the batch engine DOES implement the default
		// Algorithm 1 pairing including its carry-aware transport form (the
		// compiled quorum strategy uses it), but a cfg-supplied matcher is an
		// arbitrary implementation with per-engine scratch state, so it stays
		// scalar.
		return sim.Program{}, false, "cfg.NewMatcher is set (custom matchers are scalar-only; the batch engine inlines only the default Algorithm 1 pairing and its carry-aware transport form)"
	case cfg.Concurrent:
		return sim.Program{}, false, "cfg.Concurrent is set (the goroutine-per-ant mode is scalar-only)"
	}
	bc, isCompilable := algo.(BatchCompilable)
	if !isCompilable {
		return sim.Program{}, false, fmt.Sprintf("algorithm %q does not implement core.BatchCompilable", algo.Name())
	}
	prog, ok = bc.CompileBatch(cfg.N, cfg.Env)
	if !ok {
		return sim.Program{}, false, fmt.Sprintf("algorithm %q declined to compile for n=%d, k=%d", algo.Name(), cfg.N, cfg.Env.K())
	}
	return prog, true, ""
}

// RunBatch executes one replicate per seed on the batch engine and returns
// results equal to what Run would produce for the same (algo, cfg, seed)
// triples — same winners, same round counts, same censuses. The boolean
// reports eligibility: when false, the caller must run the scalar path
// (cfg cannot run batched); no work has been done in that case.
func RunBatch(algo Algorithm, cfg RunConfig, seeds []uint64) ([]Result, bool, error) {
	prog, ok, _ := CompileForBatch(algo, cfg)
	if !ok {
		return nil, false, nil
	}
	if len(seeds) == 0 {
		return nil, true, fmt.Errorf("core: batch run needs at least one seed")
	}
	batch, err := sim.NewBatch(cfg.Env, prog, cfg.N)
	if err != nil {
		return nil, true, fmt.Errorf("core: constructing batch engine: %w", err)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(cfg.N, cfg.Env.K())
	}
	window := cfg.StabilityWindow
	if window <= 0 {
		window = 1
	}
	raw, err := batch.Run(seeds, maxRounds, window)
	if err != nil {
		return nil, true, fmt.Errorf("core: running %s batched: %w", algo.Name(), err)
	}
	results := make([]Result, len(raw))
	for i, r := range raw {
		results[i] = Result{
			Solved:        r.Solved,
			Winner:        r.Winner,
			WinnerQuality: r.WinnerQuality,
			Rounds:        r.Rounds,
			FinalCensus: Census{
				Committed: r.Committed,
				// Deciding programs (Final-flagged states, Algorithm 2)
				// report the decided count like TakeCensus would; others
				// expose commitment only (-1).
				Decided: r.Decided,
				Total:   cfg.N,
			},
			Algorithm: algo.Name(),
		}
	}
	return results, true, nil
}
