package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/gmrl/househunt/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordBasics(t *testing.T) {
	t.Parallel()
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	w.AddAll(xs)
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Unbiased sample variance of this classic dataset is 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	t.Parallel()
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford should report zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	t.Parallel()
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Fatalf("single observation: mean %v var %v", w.Mean(), w.Variance())
	}
}

// TestWelfordMatchesNaive is the property-based oracle: streaming moments must
// agree with the two-pass textbook computation on random data.
func TestWelfordMatchesNaive(t *testing.T) {
	t.Parallel()
	src := rng.New(101)
	f := func(seed uint16, length uint8) bool {
		n := int(length%100) + 2
		xs := make([]float64, n)
		local := src.Split(uint64(seed))
		for i := range xs {
			xs[i] = local.NormFloat64()*100 + 50
		}
		var w Welford
		w.AddAll(xs)

		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return almostEqual(w.Mean(), mean, 1e-9*math.Abs(mean)+1e-9) &&
			almostEqual(w.Variance(), variance, 1e-9*variance+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWelfordMergeMatchesSequential checks the parallel-reduction identity.
func TestWelfordMergeMatchesSequential(t *testing.T) {
	t.Parallel()
	src := rng.New(202)
	f := func(cut uint8) bool {
		xs := make([]float64, 64)
		local := src.Split(uint64(cut) + 7)
		for i := range xs {
			xs[i] = local.Float64() * 10
		}
		c := int(cut) % 63
		var a, b, whole Welford
		a.AddAll(xs[:c])
		b.AddAll(xs[c:])
		whole.AddAll(xs)
		a.Merge(b)
		return a.N() == whole.N() &&
			almostEqual(a.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(a.Variance(), whole.Variance(), 1e-9) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	t.Parallel()
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Welford
	a.Merge(c)
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge of empty: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestCI95Coverage(t *testing.T) {
	t.Parallel()
	// Draw many samples of known mean; the CI should cover ~95% of the time.
	src := rng.New(303)
	const trials = 400
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var w Welford
		for i := 0; i < 100; i++ {
			w.Add(src.NormFloat64() + 10)
		}
		lo, hi := w.CI95()
		if lo <= 10 && 10 <= hi {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("CI95 covered true mean in %.3f of trials, want ≈0.95", frac)
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, tc := range cases {
		if got := Quantile(sorted, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile(sorted, 0.1); !almostEqual(got, 1.4, 1e-12) {
		t.Errorf("Quantile(0.1) = %v, want 1.4 (interpolated)", got)
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile of empty slice did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	xs := []float64{5, 1, 4, 2, 3}
	s := Summarize(xs, true)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if len(s.SortedSnapshot) != 5 || s.SortedSnapshot[0] != 1 {
		t.Fatalf("snapshot not retained/sorted: %v", s.SortedSnapshot)
	}
	// Original slice must be untouched (copy-at-boundary).
	if xs[0] != 5 {
		t.Fatal("Summarize mutated its input")
	}
	empty := Summarize(nil, false)
	if empty.N != 0 {
		t.Fatalf("empty summary N = %d", empty.N)
	}
}

func TestMeanVarianceConvenience(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); !almostEqual(got, 5.0/3.0, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
}
