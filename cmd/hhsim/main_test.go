package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64", "-k", "2", "-good", "1", "-seed", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solved") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "final commitments") {
		t.Fatalf("commitments missing:\n%s", out.String())
	}
}

func TestRunWithPlotAndExtras(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "96", "-k", "3", "-good", "2", "-algo", "optimal",
		"-plot", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "legend:") {
		t.Fatalf("plot missing:\n%s", out.String())
	}
}

func TestRunExplicitNests(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64", "-nests", "0.2,0.9", "-algo", "quality", "-seed", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solved") {
		t.Fatalf("quality run failed:\n%s", out.String())
	}
}

func TestRunFaultFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "128", "-k", "2", "-good", "2",
		"-crash", "0.1", "-byz", "0.02", "-jitter", "0.05",
		"-count-noise", "0", "-seed", "7", "-rounds", "4000",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsInvalidFaultFlags pins flag-parse-time fault validation: any
// fraction/window combination the fault spec rejects must fail fast with the
// named errInvalidFaultFlags, and boundary-legal combinations (fractions
// summing to exactly 1, a window of exactly 1) must sail through.
func TestRunRejectsInvalidFaultFlags(t *testing.T) {
	invalid := [][]string{
		{"-crash", "-0.1"},
		{"-byz", "-1"},
		{"-sleep", "-0.5"},
		{"-crash", "0.6", "-byz", "0.6"},
		{"-crash", "0.5", "-byz", "0.3", "-sleep", "0.3"},
		{"-crash", "0.1", "-crash-window", "-1"},
		{"-sleep", "0.1", "-sleep-window", "-64"},
	}
	for _, args := range invalid {
		var out bytes.Buffer
		err := run(append([]string{"-n", "32", "-k", "2", "-good", "1"}, args...), &out)
		if !errors.Is(err, errInvalidFaultFlags) {
			t.Errorf("%v: err = %v, want errInvalidFaultFlags", args, err)
		}
	}
	valid := [][]string{
		{"-crash", "0.5", "-byz", "0.25", "-sleep", "0.25", "-sleep-window", "8"}, // fractions sum to exactly 1
		{"-crash", "0.1", "-crash-window", "1"},                                   // single-round window
		{"-sleep", "0.1", "-sleep-window", "1"},
	}
	for _, args := range valid {
		var out bytes.Buffer
		err := run(append([]string{"-n", "32", "-k", "2", "-good", "1", "-rounds", "50"}, args...), &out)
		if errors.Is(err, errInvalidFaultFlags) {
			t.Errorf("%v: boundary-legal fault flags rejected: %v", args, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nests", "0.5,banana"}, &out); err == nil {
		t.Fatal("malformed nests accepted")
	}
	if err := run([]string{"-algo", "bogus"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-whatever"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestParseQualities(t *testing.T) {
	qs, err := parseQualities(" 0.1 , 0.9 ,1.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 || qs[0] != 0.1 || qs[2] != 1.0 {
		t.Fatalf("parsed %v", qs)
	}
	if _, err := parseQualities("a,b"); err == nil {
		t.Fatal("junk accepted")
	}
}
