package algo

import (
	"github.com/gmrl/househunt/internal/sim"
)

// This file lowers algorithms to the batch engine's compiled form
// (sim.Program). An algorithm that can be compiled implements
// core.BatchCompilable by exposing CompileBatch; the replicate-sweep
// machinery (core.RunBatch, experiment.MeasureConvergence) then executes it
// on the struct-of-arrays fast path, with the scalar agent path as the
// fallback for everything else.

// simpleBatchProgram is Algorithm 3's three-state table: search, then the
// recruit/assess loop. It is the opcode form of newSimpleSpec — the states
// correspond one-to-one and the randomness (a single Bernoulli(count/n) per
// recruit phase, gated on positive quality) is drawn identically, so batch
// executions are bit-identical to both SimplePFSM and the hand-written
// SimpleAnt (which pfsm_test.go proves equivalent to each other).
func simpleBatchProgram(name string) sim.Program {
	return sim.Program{
		Algorithm: name,
		Init:      0,
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscovery, Next: 1},
			{Emit: sim.EmitRecruitPop, Observe: sim.ObserveAdopt, Next: 2},
			{Emit: sim.EmitGotoNest, Observe: sim.ObserveCount, Next: 1},
		},
	}
}

// CompileBatch implements core.BatchCompilable: SimplePFSM's declarative
// state table lowered to opcodes.
func (a SimplePFSM) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return simpleBatchProgram(a.Name()), true
}

// CompileBatch implements core.BatchCompilable. The hand-written SimpleAnt
// and the PFSM formulation execute identically for equal seeds (the active
// flag coincides with quality > 0), so Simple compiles to the same program.
func (a Simple) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return simpleBatchProgram(a.Name()), true
}

// State indices of the compiled Algorithm 2 table. The layout mirrors the
// pseudocode's structure: the global search round, the active 4-round
// subroutine with its three R2 cases as separate state chains, the passive
// subroutine with a separate pending chain for captured ants, and the
// absorbing final recruit loop. The scalar OptimalAnt's branch register is
// the choice of chain, its pending flag is the P_R3P/P_R4P chain, and its
// phase-boundary next-state latch is each chain's last transition — the
// outcome-dependent successors encode all three, so the lane needs no columns
// for them. Every chain from a block entry (A_R1 or P_R1) back to a block
// entry or to F is exactly four states long, which keeps all non-final ants
// aligned on the pseudocode's R1..R4 positions without any round arithmetic.
const (
	optS0     = iota // round 1: global search
	optAR1           // active R1: recruit(1, nest), learn nest_t     (line 23)
	optAR2           // active R2: go(nest_t), three-way compare      (lines 24-38)
	optAR3C1         // case 1 R3: go(nest)                           (line 28)
	optAR4C1         // case 1 R4: recruit(0, nest), final check      (lines 29-31)
	optAR3C2         // case 2 R3: recruit(0, nest)                   (line 35)
	optAR4C2         // case 2 R4: go(nest), latch passive            (line 36)
	optAR3C3         // case 3 R3: go(nest), population check         (lines 39-41)
	optAR4C3         // case 3 R4: go(nest), stay active              (line 42)
	optAR4C3P        // case 3 R4: go(nest), latch passive            (line 42)
	optPR1           // passive R1: go(nest)                          (line 13)
	optPR2           // passive R2: recruit(0, nest), maybe adopt     (lines 14-17)
	optPR3           // passive R3: go(nest)                          (line 18)
	optPR4           // passive R4: go(nest)                          (line 19)
	optPR3P          // pending R3: go(nest)                          (line 18)
	optPR4P          // pending R4: go(nest), latch final             (line 19)
	optF             // final: recruit(1, nest) forever               (line 21)
)

// optimalBatchProgram is Algorithm 2's compiled state table. literal selects
// the pseudocode-literal Case 3 count handling (stale baseline) over the
// analysis-consistent re-baselining, matching OptimalAnt's Literal knob; the
// two variants differ in exactly one observe opcode.
func optimalBatchProgram(name string, literal bool) sim.Program {
	recount := sim.ObserveRecountRebase
	if literal {
		recount = sim.ObserveRecountLiteral
	}
	return sim.Program{
		Algorithm: name,
		Init:      optS0,
		States: []sim.ProgramState{
			optS0:     {Emit: sim.EmitSearch, Observe: sim.ObserveDiscoverBranch, Next: optAR1, NextB: optPR1},
			optAR1:    {Emit: sim.EmitRecruitBit, Arg: 1, Observe: sim.ObserveRecruitNest, Next: optAR2},
			optAR2:    {Emit: sim.EmitGotoScratch, Observe: sim.ObserveCompareR2, Next: optAR3C1, NextB: optAR3C2, NextC: optAR3C3},
			optAR3C1:  {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optAR4C1},
			optAR4C1:  {Emit: sim.EmitRecruitBit, Arg: 0, Observe: sim.ObserveFinalEq, Next: optAR1, NextB: optF},
			optAR3C2:  {Emit: sim.EmitRecruitBit, Arg: 0, Observe: sim.ObserveNone, Next: optAR4C2},
			optAR4C2:  {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR1},
			optAR3C3:  {Emit: sim.EmitGotoNest, Observe: recount, Next: optAR4C3, NextB: optAR4C3P},
			optAR4C3:  {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optAR1},
			optAR4C3P: {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR1},
			optPR1:    {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR2},
			optPR2:    {Emit: sim.EmitRecruitBit, Arg: 0, Observe: sim.ObserveAdoptPend, Next: optPR3, NextB: optPR3P},
			optPR3:    {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR4},
			optPR4:    {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR1},
			optPR3P:   {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optPR4P},
			optPR4P:   {Emit: sim.EmitGotoNest, Observe: sim.ObserveNone, Next: optF},
			optF:      {Emit: sim.EmitRecruitBit, Arg: 1, Observe: sim.ObserveNestLatch, Next: optF, Final: true},
		},
	}
}

// CompileBatch implements core.BatchCompilable: Algorithm 2 lowered to the
// batch engine's outcome-dependent opcode form, in both the
// analysis-consistent and Literal variants. Batch executions are
// round-for-round bit-identical to the scalar OptimalAnt colony (pinned by
// the golden grid in batch_equiv_test.go).
func (o Optimal) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return optimalBatchProgram(o.Name(), o.Literal), true
}
