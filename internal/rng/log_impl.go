package rng

import "math"

// logImpl and sqrtImpl isolate the package's only dependencies on math so the
// hot integer paths stay visibly stdlib-free in rng.go.
func logImpl(x float64) float64  { return math.Log(x) }
func sqrtImpl(x float64) float64 { return math.Sqrt(x) }
