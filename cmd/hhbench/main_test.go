package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(out.String())
	if len(ids) != 21 || ids[0] != "E1" {
		t.Fatalf("listed ids = %v", ids)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1", "-scale", "small"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SHAPE HOLDS") {
		t.Fatalf("output missing verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Lemma 2.1") {
		t.Fatalf("output missing claim:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "gigantic"}, &out); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-engine", "warp"}, &out); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestRunEngineScalar forces the scalar replicate loop; the experiment must
// still regenerate and pass (the batch path is bit-identical, so either
// engine yields the same table).
func TestRunEngineScalar(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "scalar", "-exp", "E2", "-scale", "small"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SHAPE HOLDS") {
		t.Fatalf("output missing verdict:\n%s", out.String())
	}
}
