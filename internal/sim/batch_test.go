package sim

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

// simpleProgram is the Algorithm 3 state table used by the batch tests: the
// same three-state machine algo.SimplePFSM declares, lowered to opcodes.
func simpleProgram() Program {
	return Program{
		Algorithm: "batch-test-simple",
		Init:      0,
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscovery, Next: 1},
			{Emit: EmitRecruitPop, Observe: ObserveAdopt, Next: 2},
			{Emit: EmitGotoNest, Observe: ObserveCount, Next: 1},
		},
	}
}

// scalarSimpleAnt mirrors the compiled program as a hand-written sim.Agent,
// drawing randomness exactly as algo.SimpleAnt does. It is the in-package
// oracle for the batch engine (the cross-package oracle against the real
// algorithms lives in internal/algo).
type scalarSimpleAnt struct {
	n       int
	src     *rng.Source
	state   int
	nest    NestID
	count   int
	quality float64
}

func (a *scalarSimpleAnt) Act(int) Action {
	switch a.state {
	case 0:
		return Search()
	case 1:
		b := false
		if a.quality > 0 {
			b = a.src.Bernoulli(float64(a.count) / float64(a.n))
		}
		return Recruit(b, a.nest)
	default:
		return Goto(a.nest)
	}
}

func (a *scalarSimpleAnt) Observe(_ int, out Outcome) {
	switch a.state {
	case 0:
		a.nest, a.count, a.quality = out.Nest, out.Count, out.Quality
		a.state = 1
	case 1:
		if out.Nest != a.nest {
			a.nest = out.Nest
			a.quality = 1
		}
		a.state = 2
	default:
		a.count = out.Count
		a.state = 1
	}
}

// buildScalarColony wires the scalar oracle colony with the exact stream
// derivation the core runner uses: engine streams from the root seed, ant i
// from root.Split(2).Split(i).
func buildScalarColony(n int, seed uint64) []Agent {
	agents := make([]Agent, n)
	antRoot := rng.New(seed).Split(2)
	for i := range agents {
		agents[i] = &scalarSimpleAnt{n: n, src: antRoot.Split(uint64(i)), state: 0}
	}
	return agents
}

func TestProgramValidate(t *testing.T) {
	t.Parallel()
	if err := simpleProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	cases := map[string]Program{
		"empty":       {Algorithm: "x"},
		"init range":  {Algorithm: "x", Init: 3, States: []ProgramState{{}}},
		"next range":  {Algorithm: "x", States: []ProgramState{{Next: 9}}},
		"bad emit":    {Algorithm: "x", States: []ProgramState{{Emit: 99}}},
		"bad observe": {Algorithm: "x", States: []ProgramState{{Observe: 99}}},
		"bad recruit bit": {Algorithm: "x", States: []ProgramState{
			{Emit: EmitRecruitBit, Arg: 2, Observe: ObserveNone},
		}},
		"nextB range": {Algorithm: "x", States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscoverBranch, Next: 0, NextB: 7},
		}},
		"nextC range": {Algorithm: "x", States: []ProgramState{
			{Emit: EmitGotoScratch, Observe: ObserveCompareR2, Next: 0, NextB: 0, NextC: 7},
		}},
	}
	for name, prog := range cases {
		if err := prog.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid program", name)
		}
	}
}

// TestProgramTraits pins the trait classification that selects the execution
// path: the simple program is lockstep and non-deciding; any branching
// observe or non-uniform emit forces the general path; Final states make a
// program deciding.
func TestProgramTraits(t *testing.T) {
	t.Parallel()
	if p := simpleProgram(); !p.Lockstep() || p.Decides() || !p.NeedsAntRNG() {
		t.Errorf("simple program traits: lockstep=%v decides=%v antRNG=%v, want true/false/true",
			p.Lockstep(), p.Decides(), p.NeedsAntRNG())
	}
	p := decidingProgram()
	if p.Lockstep() {
		t.Error("a program with branching observes classified as lockstep")
	}
	if !p.Decides() {
		t.Error("a program with a Final state classified as non-deciding")
	}
	if p.NeedsAntRNG() {
		t.Error("a program without EmitRecruitPop claims to need ant RNG")
	}
}

// decidingProgram is a minimal general-path program: search once, then
// recruit for the discovered nest forever as a Final state — the skeleton of
// Algorithm 2's final loop.
func decidingProgram() Program {
	return Program{
		Algorithm: "batch-test-decider",
		Init:      0,
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscoverBranch, Next: 1, NextB: 1},
			{Emit: EmitRecruitBit, Arg: 1, Observe: ObserveNestLatch, Next: 1, Final: true},
		},
	}
}

// TestBatchDecidingProgram exercises the general path's result bookkeeping:
// a single-ant colony decides and converges in round one, and the decided
// count lands in BatchResult.Decided.
func TestBatchDecidingProgram(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1})
	b, err := NewBatch(env, decidingProgram(), 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := b.Run([]uint64{1, 2, 3}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !res.Solved || res.Winner != 1 || res.Rounds != 1 {
			t.Fatalf("replicate %d: %+v, want solved winner 1 in round 1", i, res)
		}
		if res.Decided != 1 {
			t.Fatalf("replicate %d: Decided = %d, want 1", i, res.Decided)
		}
	}
}

// TestBatchDecidedGatesConvergence pins the census gate: with a deciding
// program, unanimous commitment alone must not count as convergence until
// every ant reaches a Final state — mirroring core.Census.Converged for
// colonies implementing core.Decided.
func TestBatchDecidedGatesConvergence(t *testing.T) {
	t.Parallel()
	// All ants commit to the lone good nest in round one and then shuttle to
	// it forever, but the Final state (2) is unreachable.
	prog := Program{
		Algorithm: "batch-test-undecided",
		Init:      0,
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscoverBranch, Next: 1, NextB: 1},
			{Emit: EmitGotoNest, Observe: ObserveNone, Next: 1},
			{Emit: EmitGotoNest, Observe: ObserveNone, Next: 2, Final: true},
		},
	}
	env := MustEnvironment([]float64{1})
	b, err := NewBatch(env, prog, 8)
	if err != nil {
		t.Fatal(err)
	}
	results, err := b.Run([]uint64{1}, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Solved {
		t.Fatalf("undecided colony reported solved: %+v", res)
	}
	if res.Rounds != 30 {
		t.Fatalf("undecided colony stopped at round %d, want the full budget", res.Rounds)
	}
	if res.Decided != 0 {
		t.Fatalf("Decided = %d, want 0", res.Decided)
	}
	if res.Committed[1] != 8 {
		t.Fatalf("census %v, want unanimous commitment to nest 1", res.Committed)
	}
}

// TestBatchGeneralPathReportsProgramErrors covers the general path's protocol
// validation: dereferencing an unset scratch nest and actively recruiting for
// the home nest both surface clean errors.
func TestBatchGeneralPathReportsProgramErrors(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1})
	cases := map[string]Program{
		"goto scratch unset": {
			Algorithm: "broken-scratch",
			States: []ProgramState{
				{Emit: EmitGotoScratch, Observe: ObserveCompareR2, Next: 0, NextB: 0, NextC: 0},
			},
		},
		"active recruit for home": {
			Algorithm: "broken-recruit",
			States: []ProgramState{
				{Emit: EmitRecruitBit, Arg: 1, Observe: ObserveFinalEq, Next: 0, NextB: 0},
			},
		},
	}
	for name, prog := range cases {
		b, err := NewBatch(env, prog, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := b.Run([]uint64{1}, 10, 1); err == nil {
			t.Errorf("%s: expected a protocol error", name)
		}
	}
}

func TestNewBatchRejectsBadInputs(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1, 0})
	if _, err := NewBatch(Environment{}, simpleProgram(), 8); err == nil {
		t.Error("empty environment accepted")
	}
	if _, err := NewBatch(env, simpleProgram(), 0); err == nil {
		t.Error("zero colony accepted")
	}
	if _, err := NewBatch(env, Program{Algorithm: "x"}, 8); err == nil {
		t.Error("invalid program accepted")
	}
	b, err := NewBatch(env, simpleProgram(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(nil, 10, 1); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := b.Run([]uint64{1}, 0, 1); err == nil {
		t.Error("non-positive round budget accepted")
	}
	// The ant-index columns are int32 (state buckets, capture indices), so a
	// colony beyond MaxInt32 must be rejected up front with a reason naming
	// the limit — not mis-indexed. The check must fire before any column
	// allocation: at that size the slices themselves would be hundreds of
	// gigabytes.
	if _, err := NewBatch(env, simpleProgram(), math.MaxInt32+1); err == nil {
		t.Error("colony beyond the int32 ant-index limit accepted")
	} else if !strings.Contains(err.Error(), "int32 ant-index limit") {
		t.Errorf("oversize-colony error %q does not name the int32 limit", err)
	}
	// The boundary itself is representable and must construct (lanes size
	// their columns lazily, so constructing the Batch is cheap even here).
	if _, err := NewBatch(env, simpleProgram(), math.MaxInt32); err != nil {
		t.Errorf("NewBatch(n=MaxInt32): %v", err)
	}
}

// TestBatchMatchesScalarRoundForRound is the engine-level golden equivalence
// check: for equal seeds, every round's populations and commitment census
// must be identical between the batch engine and a scalar Engine running the
// equivalent agents.
func TestBatchMatchesScalarRoundForRound(t *testing.T) {
	t.Parallel()
	const (
		n         = 96
		maxRounds = 300
	)
	env := MustEnvironment([]float64{1, 0, 1, 0, 0})
	seeds := []uint64{1, 7, 42, 2015, 0xdeadbeef}

	type roundRec struct {
		counts []int
		commit []int
	}
	// Scalar reference: step an Engine manually, recording per-round state.
	scalar := make([][]roundRec, len(seeds))
	for si, seed := range seeds {
		agents := buildScalarColony(n, seed)
		eng, err := New(env, agents, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < maxRounds; r++ {
			if err := eng.Step(); err != nil {
				t.Fatalf("seed %d: scalar step: %v", seed, err)
			}
			commit := make([]int, env.K()+1)
			for _, a := range agents {
				commit[a.(*scalarSimpleAnt).nest]++
			}
			scalar[si] = append(scalar[si], roundRec{counts: eng.Counts(), commit: commit})
		}
	}

	var mu sync.Mutex
	batchRecs := make([][]roundRec, len(seeds))
	probe := func(rep, round int, counts, committed []int) {
		rec := roundRec{
			counts: append([]int(nil), counts...),
			commit: append([]int(nil), committed...),
		}
		mu.Lock()
		batchRecs[rep] = append(batchRecs[rep], rec)
		mu.Unlock()
	}
	b, err := NewBatch(env, simpleProgram(), n, WithBatchProbe(probe))
	if err != nil {
		t.Fatal(err)
	}
	// A window larger than the budget keeps every replicate running all
	// maxRounds rounds so the trace lengths line up with the scalar loop.
	if _, err := b.Run(seeds, maxRounds, maxRounds+1); err != nil {
		t.Fatal(err)
	}

	for si, seed := range seeds {
		if got, want := len(batchRecs[si]), len(scalar[si]); got != want {
			t.Fatalf("seed %d: batch ran %d rounds, scalar %d", seed, got, want)
		}
		for r := range scalar[si] {
			if !equalInts(batchRecs[si][r].counts, scalar[si][r].counts) {
				t.Fatalf("seed %d round %d: populations diverge: batch %v scalar %v",
					seed, r+1, batchRecs[si][r].counts, scalar[si][r].counts)
			}
			if !equalInts(batchRecs[si][r].commit, scalar[si][r].commit) {
				t.Fatalf("seed %d round %d: commitments diverge: batch %v scalar %v",
					seed, r+1, batchRecs[si][r].commit, scalar[si][r].commit)
			}
		}
	}
}

// TestBatchSolvesAndReportsCensus checks the result bookkeeping: solved
// replicates report a good winner, a full census and a plausible round count.
func TestBatchSolvesAndReportsCensus(t *testing.T) {
	t.Parallel()
	const n = 128
	env := MustEnvironment([]float64{1, 1, 0, 0})
	b, err := NewBatch(env, simpleProgram(), n)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	results, err := b.Run(seeds, 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Seed != seeds[i] {
			t.Fatalf("replicate %d: seed %d out of order", i, res.Seed)
		}
		if !res.Solved {
			t.Fatalf("replicate %d (seed %d) failed to converge in 4000 rounds", i, res.Seed)
		}
		if !env.Good(res.Winner) {
			t.Fatalf("replicate %d: winner %d is not a good nest", i, res.Winner)
		}
		if res.WinnerQuality != env.Quality(res.Winner) {
			t.Fatalf("replicate %d: winner quality %v != q(%d)", i, res.WinnerQuality, res.Winner)
		}
		total := 0
		for _, c := range res.Committed {
			total += c
		}
		if total != n || res.Committed[res.Winner] != n {
			t.Fatalf("replicate %d: census %v does not show unanimity of %d ants", i, res.Committed, n)
		}
		if res.Rounds < 1 || res.Rounds > 4000 {
			t.Fatalf("replicate %d: implausible round count %d", i, res.Rounds)
		}
		if res.Decided != -1 {
			t.Fatalf("replicate %d: Decided = %d for a non-deciding program, want -1", i, res.Decided)
		}
	}

	// Determinism: a second run (single worker) reproduces the first exactly.
	b2, err := NewBatch(env, simpleProgram(), n, WithBatchWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	again, err := b2.Run(seeds, 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Rounds != again[i].Rounds || results[i].Winner != again[i].Winner {
			t.Fatalf("replicate %d not deterministic across worker counts: %+v vs %+v", i, results[i], again[i])
		}
	}
}

// TestBatchReportsProgramErrors ensures a program that emits an invalid call
// surfaces a clean error instead of corrupting memory.
func TestBatchReportsProgramErrors(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1})
	// go(nest) in the initial state dereferences the zero nest register.
	prog := Program{
		Algorithm: "broken",
		States:    []ProgramState{{Emit: EmitGotoNest, Observe: ObserveCount, Next: 0}},
	}
	b, err := NewBatch(env, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run([]uint64{1}, 10, 1); err == nil {
		t.Fatal("expected an error from go on the zero nest register")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
