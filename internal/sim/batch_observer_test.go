package sim

import (
	"reflect"
	"sync"
	"testing"

	"github.com/gmrl/househunt/internal/trace"
)

// This file is the telemetry differential harness: an observed batch run
// must be bit-identical to an unobserved one (observation consumes zero
// draws), the streamed records must agree exactly with the in-process probe,
// and the per-round path must stay at zero allocations with an observer
// attached.

func observerTestSeeds() []uint64 {
	return []uint64{3, 17, 101, 4242, 99991, 7}
}

// repStream accumulates one replicate's streamed records, reassembled by the
// collector sink.
type repStream struct {
	rounds  []int32   // round numbers in arrival order
	counts  [][]int32 // per round: populations 0..k
	commits [][]int32 // per round: commitment census 0..k
	end     []int32   // the StreamEndRound payload
}

// streamSink reconstructs per-replicate series from collector records. All
// mutation happens on the single collector goroutine; reads happen after
// Close.
type streamSink struct {
	k    int
	reps map[int32]*repStream
}

func (s *streamSink) Record(lane int, rep, round int32, row []int32) {
	rs := s.reps[rep]
	if rs == nil {
		rs = &repStream{}
		s.reps[rep] = rs
	}
	if round == StreamEndRound {
		rs.end = append([]int32(nil), row[:4]...)
		return
	}
	base := s.k + 1
	rs.rounds = append(rs.rounds, round)
	rs.counts = append(rs.counts, append([]int32(nil), row[:base]...))
	rs.commits = append(rs.commits, append([]int32(nil), row[base:2*base]...))
}

// probeLog records WithBatchProbe callbacks; probes run concurrently across
// replicates, so it locks.
type probeLog struct {
	mu      sync.Mutex
	rounds  map[int][]int
	counts  map[int][][]int
	commits map[int][][]int
}

func newProbeLog() *probeLog {
	return &probeLog{rounds: map[int][]int{}, counts: map[int][][]int{}, commits: map[int][][]int{}}
}

func (p *probeLog) probe(rep, round int, counts, committed []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rounds[rep] = append(p.rounds[rep], round)
	p.counts[rep] = append(p.counts[rep], append([]int(nil), counts...))
	p.commits[rep] = append(p.commits[rep], append([]int(nil), committed...))
}

// observerPrograms picks representative shapes: the lockstep path, the
// general path (optimal), and the general path with fault lanes.
func observerPrograms() map[string]Program {
	all := allocTestPrograms()
	faulted := all["optimal"]
	faulted.Params.Faults = FaultSpec{CrashFraction: 0.1, CrashWindow: 40, ByzantineFraction: 0.05, SleepFraction: 0.1, SleepWindow: 40, Salt: 9}
	return map[string]Program{
		"simple":         all["simple"],
		"quality":        all["quality"],
		"quorum":         all["quorum"],
		"optimal":        all["optimal"],
		"optimal+faults": faulted,
	}
}

// TestBatchObserverBitIdentical pins the draw-free guarantee: attaching a
// StreamObserver changes nothing about the run — every BatchResult is
// deep-equal to the unobserved run's, and the streamed rounds are exactly the
// probe's rounds.
func TestBatchObserverBitIdentical(t *testing.T) {
	env := MustEnvironment([]float64{1, 0, 0.6, 0})
	const (
		n         = 96
		maxRounds = 400
		window    = 2
	)
	seeds := observerTestSeeds()
	for name, prog := range observerPrograms() {
		name, prog := name, prog
		t.Run(name, func(t *testing.T) {
			baseLog := newProbeLog()
			bBase, err := NewBatch(env, prog, n, WithBatchProbe(baseLog.probe))
			if err != nil {
				t.Fatal(err)
			}
			base, err := bBase.Run(seeds, maxRounds, window)
			if err != nil {
				t.Fatal(err)
			}

			sink := &streamSink{k: env.K(), reps: map[int32]*repStream{}}
			coll, err := trace.NewCollector(StreamRowWidth(env.K()), 64, sink)
			if err != nil {
				t.Fatal(err)
			}
			obs, err := NewStreamObserver(coll, env.K())
			if err != nil {
				t.Fatal(err)
			}
			bObs, err := NewBatch(env, prog, n, WithBatchObserver(obs))
			if err != nil {
				t.Fatal(err)
			}
			observed, err := bObs.Run(seeds, maxRounds, window)
			if err != nil {
				t.Fatal(err)
			}
			coll.Close()

			if !reflect.DeepEqual(base, observed) {
				t.Fatalf("observed run diverged from unobserved run:\nbase:     %+v\nobserved: %+v", base, observed)
			}

			// The streamed records must reproduce the probe stream of the
			// unobserved run record-for-record.
			for rep := range seeds {
				rs := sink.reps[int32(rep)]
				if rs == nil {
					t.Fatalf("rep %d: no streamed records", rep)
				}
				wantRounds := baseLog.rounds[rep]
				if len(rs.rounds) != len(wantRounds) {
					t.Fatalf("rep %d: streamed %d rounds, probe saw %d", rep, len(rs.rounds), len(wantRounds))
				}
				for i, round := range rs.rounds {
					if int(round) != wantRounds[i] {
						t.Fatalf("rep %d record %d: round %d, want %d", rep, i, round, wantRounds[i])
					}
					for j := range rs.counts[i] {
						if int(rs.counts[i][j]) != baseLog.counts[rep][i][j] {
							t.Fatalf("rep %d round %d: populations diverge at nest %d: %d vs %d",
								rep, round, j, rs.counts[i][j], baseLog.counts[rep][i][j])
						}
						if int(rs.commits[i][j]) != baseLog.commits[rep][i][j] {
							t.Fatalf("rep %d round %d: commitments diverge at nest %d: %d vs %d",
								rep, round, j, rs.commits[i][j], baseLog.commits[rep][i][j])
						}
					}
				}
				if rs.end == nil {
					t.Fatalf("rep %d: missing StreamEndRound record", rep)
				}
				solved, rounds, winner, faulty := DecodeStreamEnd(rs.end)
				res := base[rep]
				if solved != res.Solved || rounds != res.Rounds || winner != res.Winner || faulty != res.Faulty {
					t.Fatalf("rep %d: end record (%v,%d,%d,%d) != result (%v,%d,%d,%d)",
						rep, solved, rounds, winner, faulty, res.Solved, res.Rounds, res.Winner, res.Faulty)
				}
				// The final streamed commitment census is the result's.
				last := rs.commits[len(rs.commits)-1]
				for j, c := range res.Committed {
					if int(last[j]) != c {
						t.Fatalf("rep %d: final streamed census %v != result census %v", rep, last, res.Committed)
					}
				}
			}
		})
	}
}

// TestBatchObservedStepAllocationFree extends the AllocsPerRun pin to the
// observed path: one resolved round plus its ObserveRound push must perform
// zero allocations, with the collector goroutine live and draining (the
// measurement counts mallocs across all goroutines).
func TestBatchObservedStepAllocationFree(t *testing.T) {
	env := MustEnvironment([]float64{1, 0, 0.6, 0})
	const n = 192
	for _, name := range []string{"simple", "optimal", "quorum"} {
		prog := allocTestPrograms()[name]
		t.Run(name, func(t *testing.T) {
			// Discard records without retaining row — allocation-free sink.
			coll, err := trace.NewCollector(StreamRowWidth(env.K()), 4096, trace.SinkFunc(func(int, int32, int32, []int32) {}))
			if err != nil {
				t.Fatal(err)
			}
			defer coll.Close()
			obs, err := NewStreamObserver(coll, env.K())
			if err != nil {
				t.Fatal(err)
			}
			lobs := obs.LaneObserver(0)

			b, err := NewBatch(env, prog, n)
			if err != nil {
				t.Fatal(err)
			}
			ln := newLane(b, 1)
			if _, err := ln.runReplicate(0, 7, 300, 1, nil, lobs); err != nil {
				t.Fatalf("warm-up replicate: %v", err)
			}
			ln.reset(11)
			phase := prog.Init
			round := 0
			allocs := testing.AllocsPerRun(200, func() {
				var err error
				if ln.lockstep {
					phase, err = ln.stepLockstep(phase)
				} else {
					err = ln.stepGeneral()
				}
				if err != nil {
					t.Fatal(err)
				}
				ln.census()
				round++
				lobs.ObserveRound(0, round, ln.counts, ln.commit)
			})
			if allocs != 0 {
				t.Errorf("%v allocs per observed round, want 0", allocs)
			}
		})
	}
}

// TestNewStreamObserverValidates covers the wiring error paths.
func TestNewStreamObserverValidates(t *testing.T) {
	sink := trace.SinkFunc(func(int, int32, int32, []int32) {})
	coll, err := trace.NewCollector(StreamRowWidth(2), 8, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	if _, err := NewStreamObserver(nil, 2); err == nil {
		t.Error("nil collector accepted")
	}
	if _, err := NewStreamObserver(coll, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewStreamObserver(coll, 3); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := NewStreamObserver(coll, 2); err != nil {
		t.Errorf("valid wiring rejected: %v", err)
	}
}
