package househunt

// This file is the benchmark harness mandated by DESIGN.md §5: one benchmark
// per experiment (E1-E24), each regenerating its EXPERIMENTS.md table at
// small scale and failing if the paper's claimed shape does not hold, plus
// engine micro-benchmarks (round latency and allocation behaviour at several
// colony sizes).
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkE09 -benchmem
// Full-scale tables come from: go run ./cmd/hhbench -exp all -scale full

import (
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/experiment"
	"github.com/gmrl/househunt/internal/faults"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// benchExperiment runs one suite experiment per iteration and reports its
// headline rounds metric when available. A violated shape fails the bench:
// these benchmarks double as executable regression tests for EXPERIMENTS.md.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiment.RunExperiment(id, experiment.ScaleSmall)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !rep.Pass {
			b.Fatalf("%s: claimed shape violated:\n%s", id, rep)
		}
	}
}

// BenchmarkE01RecruitSuccess regenerates E1 (Lemma 2.1: recruiter success
// probability >= 1/16).
func BenchmarkE01RecruitSuccess(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE02IgnorantPersistence regenerates E2 (Lemma 3.1: ignorant ants
// stay ignorant w.p. >= 1/4 per round).
func BenchmarkE02IgnorantPersistence(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE03LowerBoundScaling regenerates E3 (Theorem 3.2: Ω(log n)
// spreading time).
func BenchmarkE03LowerBoundScaling(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE04PopulationDeltaSymmetry regenerates E4 (Lemma 4.1: Y symmetric
// about zero).
func BenchmarkE04PopulationDeltaSymmetry(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE05DropoutProbability regenerates E5 (Lemma 4.2: P[Y<0] >= 1/66).
func BenchmarkE05DropoutProbability(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE06OptimalScaling regenerates E6 (Theorem 4.3: Algorithm 2 is
// O(log n), insensitive to k).
func BenchmarkE06OptimalScaling(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE07InitialGap regenerates E7 (Lemma 5.4: E[ε] >= 1/(3(n-1))).
func BenchmarkE07InitialGap(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE08SmallNestExtinction regenerates E8 (Lemmas 5.8/5.9:
// sub-threshold nests die within O(k log n) rounds and never win).
func BenchmarkE08SmallNestExtinction(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE09SimpleScaling regenerates E9 (Theorem 5.11: Algorithm 3 is
// O(k log n)).
func BenchmarkE09SimpleScaling(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10AdaptiveSpeedup regenerates E10 (§6 boosted recruitment beats
// Simple at large k).
func BenchmarkE10AdaptiveSpeedup(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11QualityAware regenerates E11 (§6 non-binary qualities select a
// high-quality nest).
func BenchmarkE11QualityAware(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12NoiseResilience regenerates E12 (§6 unbiased perception noise
// is tolerated with graceful slowdown).
func BenchmarkE12NoiseResilience(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13FaultTolerance regenerates E13 (§6 crash/Byzantine tolerance).
func BenchmarkE13FaultTolerance(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Asynchrony regenerates E14 (§6: Simple tolerates jitter,
// Optimal relies on synchrony).
func BenchmarkE14Asynchrony(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15HeadToHead regenerates E15 (the who-wins-where crossover).
func BenchmarkE15HeadToHead(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16PairingAblation regenerates E16 (§2 remark: results persist
// under other natural pairing models).
func BenchmarkE16PairingAblation(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17PseudocodeAblation regenerates E17 (literal vs repaired
// Algorithm 2 Case 3; the literal pseudocode deadlocks).
func BenchmarkE17PseudocodeAblation(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18QuorumTransport regenerates E18 (quorum-gated transports and
// the speed-accuracy trade-off under noisy assessment).
func BenchmarkE18QuorumTransport(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19ApproxN regenerates E19 (§6 approximate knowledge of n).
func BenchmarkE19ApproxN(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20FailureDecay regenerates E20 (the theorems' w.h.p. form:
// failure rate at a fixed C·log n budget vanishes as n grows).
func BenchmarkE20FailureDecay(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkE21CompetingDecay regenerates E21 (geometric decay of competing
// nests, the mechanism of Theorem 4.3).
func BenchmarkE21CompetingDecay(b *testing.B) { benchExperiment(b, "E21") }

// BenchmarkE22CrashFraction regenerates E22 (§6 crash fraction vs convergence
// time, measured on the batch engine's fault lanes).
func BenchmarkE22CrashFraction(b *testing.B) { benchExperiment(b, "E22") }

// BenchmarkE23CorruptMinority regenerates E23 (§6 Byzantine lurers vs
// best-of-k accuracy, with the lure-saturation transition).
func BenchmarkE23CorruptMinority(b *testing.B) { benchExperiment(b, "E23") }

// BenchmarkE24IdlePool regenerates E24 (the sleeping-reserve emigration:
// sleepers are counted, so solved runs wait out the wake window).
func BenchmarkE24IdlePool(b *testing.B) { benchExperiment(b, "E24") }

// --- engine micro-benchmarks -------------------------------------------------

// buildBenchColony constructs a Simple colony mid-execution for round
// latency measurement.
func buildBenchColony(b *testing.B, n, k int) *sim.Engine {
	b.Helper()
	env, err := sim.Uniform(k, k)
	if err != nil {
		b.Fatal(err)
	}
	agents, err := (algo.Simple{}).Build(n, env, rng.New(1).Split(2))
	if err != nil {
		b.Fatal(err)
	}
	engine, err := sim.New(env, agents, sim.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	// Warm through the search round so steady-state rounds are measured.
	if err := engine.Step(); err != nil {
		b.Fatal(err)
	}
	return engine
}

// BenchmarkEngineRound measures steady-state synchronous round latency for
// Algorithm 3 colonies of increasing size (ns/round, allocs/round).
func BenchmarkEngineRound(b *testing.B) {
	for _, n := range []int{1024, 16384, 262144} {
		n := n
		b.Run(byteCount(n), func(b *testing.B) {
			engine := buildBenchColony(b, n, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := engine.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "ant-steps/s")
		})
	}
}

// byteCount renders n as a compact label (1k, 16k, 256k).
func byteCount(n int) string {
	switch {
	case n%(1<<20) == 0:
		return itoa(n>>20) + "M"
	case n%(1<<10) == 0:
		return itoa(n>>10) + "k"
	default:
		return itoa(n)
	}
}

// itoa avoids pulling strconv into the bench hot path imports.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// benchReplicateSweep measures a full replicate sweep (n=1024, k=4, R=32
// colonies to convergence) through experiment.MeasureConvergence on the
// selected algorithm and engine. The scalar and batch variants execute
// bit-identical replicates, so each pair is a before/after comparison of the
// batch engine; the acceptance floors are a 3x throughput gain for Algorithm 3
// (lockstep path) and 1.5x for Algorithm 2 (per-ant state column path).
func benchReplicateSweep(b *testing.B, a core.Algorithm, batch bool) {
	b.Helper()
	const (
		n    = 1024
		k    = 4
		reps = 32
	)
	env, err := sim.Uniform(k, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000}
	experiment.SetBatchEngine(batch)
	defer experiment.SetBatchEngine(true)
	b.ReportAllocs()
	b.ResetTimer()
	totalRounds := 0.0
	for i := 0; i < b.N; i++ {
		pt, err := experiment.MeasureConvergence(a, cfg, reps, "bench-sweep")
		if err != nil {
			b.Fatal(err)
		}
		if pt.Solved == 0 {
			b.Fatal("sweep solved no replicates")
		}
		totalRounds += pt.Rounds.Mean*float64(pt.Solved) + float64(4000*(reps-pt.Solved))
	}
	b.ReportMetric(totalRounds*n/b.Elapsed().Seconds(), "ant-steps/s")
}

// BenchmarkReplicateSweepScalar is the Algorithm 3 scalar agent path baseline.
func BenchmarkReplicateSweepScalar(b *testing.B) { benchReplicateSweep(b, algo.Simple{}, false) }

// BenchmarkReplicateSweepBatch is the Algorithm 3 batch engine path (lockstep
// shared-phase kernels).
func BenchmarkReplicateSweepBatch(b *testing.B) { benchReplicateSweep(b, algo.Simple{}, true) }

// BenchmarkReplicateSweepScalarOptimal is the Algorithm 2 scalar baseline.
func BenchmarkReplicateSweepScalarOptimal(b *testing.B) {
	benchReplicateSweep(b, algo.Optimal{}, false)
}

// BenchmarkReplicateSweepBatchOptimal is the Algorithm 2 batch engine path
// (per-ant state column with outcome-dependent transitions).
func BenchmarkReplicateSweepBatchOptimal(b *testing.B) {
	benchReplicateSweep(b, algo.Optimal{}, true)
}

// BenchmarkReplicateSweepScalarAdaptive is the §6 boosted-rate scalar baseline.
func BenchmarkReplicateSweepScalarAdaptive(b *testing.B) {
	benchReplicateSweep(b, algo.Adaptive{}, false)
}

// BenchmarkReplicateSweepBatchAdaptive is the §6 boosted-rate batch path
// (lockstep with the per-ant phase-clock column).
func BenchmarkReplicateSweepBatchAdaptive(b *testing.B) {
	benchReplicateSweep(b, algo.Adaptive{}, true)
}

// BenchmarkReplicateSweepScalarQuality is the §6 non-binary-quality scalar
// baseline.
func BenchmarkReplicateSweepScalarQuality(b *testing.B) {
	benchReplicateSweep(b, algo.QualityAware{}, false)
}

// BenchmarkReplicateSweepBatchQuality is the §6 non-binary-quality batch path
// (lockstep with the quality-weighted draw).
func BenchmarkReplicateSweepBatchQuality(b *testing.B) {
	benchReplicateSweep(b, algo.QualityAware{}, true)
}

// BenchmarkReplicateSweepScalarApproxN is the §6 approximate-n scalar
// baseline at δ = 0.2.
func BenchmarkReplicateSweepScalarApproxN(b *testing.B) {
	benchReplicateSweep(b, algo.ApproxN{Delta: 0.2}, false)
}

// BenchmarkReplicateSweepBatchApproxN is the §6 approximate-n batch path
// (lockstep with the per-ant ñ column) at δ = 0.2.
func BenchmarkReplicateSweepBatchApproxN(b *testing.B) {
	benchReplicateSweep(b, algo.ApproxN{Delta: 0.2}, true)
}

// BenchmarkReplicateSweepScalarQuorum is the §6 quorum-transport scalar
// baseline (default multiplier 1.5, carry 3, docility 0.25).
func BenchmarkReplicateSweepScalarQuorum(b *testing.B) {
	benchReplicateSweep(b, algo.Quorum{}, false)
}

// BenchmarkReplicateSweepBatchQuorum is the §6 quorum-transport batch path
// (general per-ant path with carry-aware recruitment matching and the
// docility draw on capture).
func BenchmarkReplicateSweepBatchQuorum(b *testing.B) {
	benchReplicateSweep(b, algo.Quorum{}, true)
}

// BenchmarkReplicateSweepScalarNoisy is the §6 noisy-perception scalar
// baseline (relative count noise σ = 0.1).
func BenchmarkReplicateSweepScalarNoisy(b *testing.B) {
	benchReplicateSweep(b, algo.Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.1}}, false)
}

// BenchmarkReplicateSweepBatchNoisy is the §6 noisy-perception batch path
// (lockstep with per-ant estimator hooks) at σ = 0.1.
func BenchmarkReplicateSweepBatchNoisy(b *testing.B) {
	benchReplicateSweep(b, algo.Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.1}}, true)
}

// benchFaultedSweep measures a replicate sweep under a declarative fault spec
// (the adversary axis). On the batch engine the spec compiles to crash-round,
// Byzantine and sleep lanes on the general path; the scalar variant wraps
// agents in the same plan, so each pair is a before/after comparison of the
// fault lowering on bit-identical replicates.
func benchFaultedSweep(b *testing.B, a core.Algorithm, spec faults.Spec, good int, batch bool) {
	b.Helper()
	const (
		n    = 1024
		k    = 4
		reps = 32
	)
	env, err := sim.Uniform(k, good)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000, Wrap: spec}
	experiment.SetBatchEngine(batch)
	defer experiment.SetBatchEngine(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := experiment.MeasureConvergence(a, cfg, reps, "bench-faulted")
		if err != nil {
			b.Fatal(err)
		}
		if pt.Solved == 0 {
			b.Fatal("faulted sweep solved no replicates")
		}
	}
}

// benchCrashSpec is the CI-gated faulted cell: 10% crash faults in a 64-round
// window.
var benchCrashSpec = faults.Spec{CrashFraction: 0.1, CrashWindow: 64, Salt: 6001}

// benchMixedSpec exercises the crash and sleep lanes together. Byzantine
// lurers are left out: they sustain a standing bad-nest population that
// defeats MeasureConvergence's unanimity gate at this scale (the E23
// saturation), and an unsolvable sweep measures nothing — the Byzantine
// lane's per-round cost is identical in kind and its lowering is pinned by
// the differential tests.
var benchMixedSpec = faults.Spec{CrashFraction: 0.08, CrashWindow: 32, SleepFraction: 0.1, SleepWindow: 32, Salt: 6002}

// BenchmarkFaultedSweepScalarCrash is the wrapped scalar baseline for the 10%
// crash cell.
func BenchmarkFaultedSweepScalarCrash(b *testing.B) {
	benchFaultedSweep(b, algo.Simple{}, benchCrashSpec, 2, false)
}

// BenchmarkFaultedSweepBatchCrash is the 10% crash cell on the batch engine's
// crash-round lanes.
func BenchmarkFaultedSweepBatchCrash(b *testing.B) {
	benchFaultedSweep(b, algo.Simple{}, benchCrashSpec, 2, true)
}

// The mixed cells run on a single good nest: late-waking sleepers can freeze
// a split between two equally good sites (the E24 finding), and a stalled
// sweep measures nothing.

// BenchmarkFaultedSweepScalarMixed is the wrapped scalar baseline with crash
// and sleep faults together.
func BenchmarkFaultedSweepScalarMixed(b *testing.B) {
	benchFaultedSweep(b, algo.Simple{}, benchMixedSpec, 1, false)
}

// BenchmarkFaultedSweepBatchMixed runs the crash and sleep lanes on the batch
// engine at once.
func BenchmarkFaultedSweepBatchMixed(b *testing.B) {
	benchFaultedSweep(b, algo.Simple{}, benchMixedSpec, 1, true)
}

// benchMatcherSweep measures a replicate sweep under a stock ablation matcher
// (the E16 axis). Since the matcher lowering these run on the batch engine;
// the scalar variant is the before picture.
func benchMatcherSweep(b *testing.B, newMatcher func() sim.Matcher, batch bool) {
	b.Helper()
	const (
		n    = 1024
		k    = 4
		reps = 32
	)
	env, err := sim.Uniform(k, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000, NewMatcher: newMatcher}
	experiment.SetBatchEngine(batch)
	defer experiment.SetBatchEngine(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := experiment.MeasureConvergence(algo.Simple{}, cfg, reps, "bench-matcher")
		if err != nil {
			b.Fatal(err)
		}
		if pt.Solved == 0 {
			b.Fatal("sweep solved no replicates")
		}
	}
}

// BenchmarkMatcherSweepScalarSimultaneous is the simultaneous-pairing
// ablation on the scalar agent path.
func BenchmarkMatcherSweepScalarSimultaneous(b *testing.B) {
	benchMatcherSweep(b, func() sim.Matcher { return &sim.SimultaneousMatcher{} }, false)
}

// BenchmarkMatcherSweepBatchSimultaneous is the simultaneous-pairing ablation
// compiled to the batch engine.
func BenchmarkMatcherSweepBatchSimultaneous(b *testing.B) {
	benchMatcherSweep(b, func() sim.Matcher { return &sim.SimultaneousMatcher{} }, true)
}

// BenchmarkMatcherSweepScalarRendezvous is the rendezvous-pairing ablation on
// the scalar agent path.
func BenchmarkMatcherSweepScalarRendezvous(b *testing.B) {
	benchMatcherSweep(b, func() sim.Matcher { return &sim.RendezvousMatcher{} }, false)
}

// BenchmarkMatcherSweepBatchRendezvous is the rendezvous-pairing ablation
// compiled to the batch engine.
func BenchmarkMatcherSweepBatchRendezvous(b *testing.B) {
	benchMatcherSweep(b, func() sim.Matcher { return &sim.RendezvousMatcher{} }, true)
}

// BenchmarkEngineRoundConcurrent measures the goroutine-per-ant mode's round
// latency (including the two barrier crossings).
func BenchmarkEngineRoundConcurrent(b *testing.B) {
	const n = 1024
	engine := buildBenchColony(b, n, 8)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := engine.RunConcurrent(engine.Round()+b.N, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFullEmigration measures a complete emigration (search to
// unanimity) per iteration, the end-to-end number a library user feels.
func BenchmarkFullEmigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(
			WithColonySize(1024),
			WithBinaryNests(8, 4),
			WithAlgorithm(AlgorithmOptimal),
			WithSeed(uint64(i+1)),
		)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Solved {
			b.Fatal("emigration failed")
		}
	}
}
