// Package experiment is the measurement harness behind EXPERIMENTS.md: it
// executes repeated house-hunting runs in parallel, aggregates them with the
// stats substrate, and provides the specialized probes for the paper's
// lemma-level claims (recruitment success probability, ignorant persistence,
// population-delta symmetry, initial gaps, small-nest extinction).
//
// Every probe is deterministic given its seed; the benchmark suite and the
// hhbench CLI both call into this package, so tables regenerate identically
// in either entry point.
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/stats"
	"github.com/gmrl/househunt/internal/workload"
)

// batchDisabled gates the batch-engine fast path for replicate loops. The
// batch engine is bit-identical to the scalar path for eligible
// (algorithm, config) pairs (see core.RunBatch), so it is on by default and
// every eligible measurement uses it automatically; SetBatchEngine(false)
// forces the scalar path, which the before/after benchmarks and the
// equivalence tests use.
var batchDisabled atomic.Bool

// SetBatchEngine toggles the batch-engine fast path (default enabled).
func SetBatchEngine(enabled bool) { batchDisabled.Store(!enabled) }

// BatchEngineEnabled reports whether the batch fast path is enabled.
func BatchEngineEnabled() bool { return !batchDisabled.Load() }

// ConvergencePoint aggregates repeated runs of one algorithm on one
// environment and colony size.
type ConvergencePoint struct {
	Algorithm string
	N         int
	K         int
	Reps      int
	Solved    int
	// SuccessRate is Solved/Reps.
	SuccessRate float64
	// Rounds summarizes convergence rounds over the SOLVED runs.
	Rounds stats.Summary
	// WinnerQuality summarizes q(winner) over the solved runs.
	WinnerQuality stats.Summary
}

// MeasureConvergence runs reps independent colonies (parallel across CPUs)
// and aggregates. cfg's N and Env are required; its Seed is ignored (each rep
// derives a seed from tag and the rep index). A rep that fails with a
// protocol/configuration error aborts the whole measurement: those are bugs,
// not outcomes.
func MeasureConvergence(algo core.Algorithm, cfg core.RunConfig, reps int, tag string) (ConvergencePoint, error) {
	if err := validateMeasurement(algo, reps); err != nil {
		return ConvergencePoint{}, err
	}
	seeds := convergenceSeeds(cfg, reps, tag)

	var runs []core.Result
	if BatchEngineEnabled() {
		// Batch fast path: one struct-of-arrays sweep over all replicates.
		// Ineligible (algo, cfg) pairs fall through to the scalar loop.
		batched, ok, err := core.RunBatch(algo, cfg, seeds)
		if err != nil {
			return ConvergencePoint{}, fmt.Errorf("experiment: batch sweep: %w", err)
		}
		if ok {
			runs = batched
		}
	}
	if runs == nil {
		var err error
		runs, err = runScalarReps(algo, cfg, seeds)
		if err != nil {
			return ConvergencePoint{}, err
		}
	}
	return aggregatePoint(algo, cfg, runs), nil
}

// validateMeasurement rejects the argument shapes every measurement shares.
func validateMeasurement(algo core.Algorithm, reps int) error {
	if algo == nil {
		return fmt.Errorf("experiment: nil algorithm")
	}
	if reps <= 0 {
		return fmt.Errorf("experiment: reps must be positive, got %d", reps)
	}
	return nil
}

// convergenceSeeds derives the per-rep seeds; cfg.Seed is ignored by design
// (each rep's seed is a pure function of tag, cell, and rep index).
func convergenceSeeds(cfg core.RunConfig, reps int, tag string) []uint64 {
	seeds := make([]uint64, reps)
	for rep := range seeds {
		seeds[rep] = workload.SeedFor(tag, cfg.N, cfg.Env.K(), rep+1)
	}
	return seeds
}

// runScalarReps executes one scalar replicate per seed, parallel across CPUs.
func runScalarReps(algo core.Algorithm, cfg core.RunConfig, seeds []uint64) ([]core.Result, error) {
	type repResult struct {
		res core.Result
		err error
	}
	results := make([]repResult, len(seeds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallelism())
	for rep := range seeds {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			repCfg := cfg
			repCfg.Seed = seeds[rep]
			res, err := core.Run(algo, repCfg)
			results[rep] = repResult{res: res, err: err}
		}(rep)
	}
	wg.Wait()
	runs := make([]core.Result, len(seeds))
	for rep, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("experiment: rep %d: %w", rep, r.err)
		}
		runs[rep] = r.res
	}
	return runs, nil
}

// aggregatePoint reduces per-rep results to a ConvergencePoint.
func aggregatePoint(algo core.Algorithm, cfg core.RunConfig, runs []core.Result) ConvergencePoint {
	point := ConvergencePoint{Algorithm: algo.Name(), N: cfg.N, K: cfg.Env.K(), Reps: len(runs)}
	rounds := make([]float64, 0, len(runs))
	quality := make([]float64, 0, len(runs))
	for _, res := range runs {
		if res.Solved {
			point.Solved++
			rounds = append(rounds, float64(res.Rounds))
			quality = append(quality, res.WinnerQuality)
		}
	}
	point.SuccessRate = float64(point.Solved) / float64(len(runs))
	point.Rounds = stats.Summarize(rounds, false)
	point.WinnerQuality = stats.Summarize(quality, false)
	return point
}

// maxParallelism bounds the worker pool: one worker per CPU, at least one.
func maxParallelism() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		return 1
	}
	return p
}

// Sweep measures a whole (n, k) grid for one algorithm over binary
// environments with the given good-nest count rule (goodOf(k) clamped to
// [1, k]). MaxRounds <= 0 selects the runner's default budget.
func Sweep(algo core.Algorithm, grid workload.Grid, goodOf func(k int) int, reps, maxRounds int) ([]ConvergencePoint, error) {
	if goodOf == nil {
		goodOf = func(k int) int { return k }
	}
	points := make([]ConvergencePoint, 0, len(grid.Ns)*len(grid.Ks))
	for _, n := range grid.Ns {
		for _, k := range grid.Ks {
			good := goodOf(k)
			if good < 1 {
				good = 1
			}
			if good > k {
				good = k
			}
			env, err := workload.Binary(k, good)
			if err != nil {
				return nil, fmt.Errorf("experiment: building env k=%d good=%d: %w", k, good, err)
			}
			cfg := core.RunConfig{N: n, Env: env, MaxRounds: maxRounds}
			pt, err := MeasureConvergence(algo, cfg, reps, grid.Tag+"/"+algo.Name())
			if err != nil {
				return nil, fmt.Errorf("experiment: point n=%d k=%d: %w", n, k, err)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// FitRoundsVsLogN fits mean convergence rounds against log2(n) across points
// that share k. It feeds the E3/E6 shape checks.
func FitRoundsVsLogN(points []ConvergencePoint) (stats.LinearFit, error) {
	xs := make([]float64, 0, len(points))
	ys := make([]float64, 0, len(points))
	for _, p := range points {
		if p.Solved == 0 {
			continue
		}
		xs = append(xs, float64(p.N))
		ys = append(ys, p.Rounds.Mean)
	}
	return stats.FitLogN(xs, ys)
}

// FitRoundsVsKLogN fits mean convergence rounds against k·log2(n) across all
// points — Theorem 5.11's shape.
func FitRoundsVsKLogN(points []ConvergencePoint) (stats.LinearFit, error) {
	ks := make([]float64, 0, len(points))
	ns := make([]float64, 0, len(points))
	ys := make([]float64, 0, len(points))
	for _, p := range points {
		if p.Solved == 0 {
			continue
		}
		ks = append(ks, float64(p.K))
		ns = append(ns, float64(p.N))
		ys = append(ys, p.Rounds.Mean)
	}
	return stats.FitKLogN(ks, ns, ys)
}

// Table renders convergence points as an aligned text table.
func Table(title string, points []ConvergencePoint) string {
	tb := stats.NewTable(title, "algorithm", "n", "k", "reps", "success", "rounds(mean)", "rounds(p95)", "winnerQ")
	for _, p := range points {
		tb.AddRow(
			p.Algorithm,
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%d", p.Reps),
			fmt.Sprintf("%.3f", p.SuccessRate),
			fmt.Sprintf("%.1f", p.Rounds.Mean),
			fmt.Sprintf("%.1f", p.Rounds.P95),
			fmt.Sprintf("%.2f", p.WinnerQuality.Mean),
		)
	}
	return tb.String()
}
