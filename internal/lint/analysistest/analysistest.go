// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want "regexp" expectations embedded in the
// fixture source — the same golden-comment convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// in-tree loader so the suite works without network access.
//
// Fixtures live under testdata/src/<pkgpath> relative to the calling
// test's package directory; fixture imports resolve against sibling
// directories under testdata/src first and compiler export data for the
// standard library second.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/lint/analysis"
	"github.com/gmrl/househunt/internal/lint/load"
)

var wantRe = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run applies a to the fixture package at testdata/src/<pkgPath> and
// reports any mismatch between emitted diagnostics and // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	srcRoot := filepath.Join("testdata", "src")
	pkg, err := load.LoadFixture(srcRoot, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
					}
					wants = append(wants, &expectation{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !match(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", position(pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func match(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.used && w.file == filepath.Base(pos.Filename) && w.line == pos.Line && w.re.MatchString(msg) {
			w.used = true
			return true
		}
	}
	return false
}

func position(pos token.Position) string {
	parts := strings.Split(filepath.ToSlash(pos.Filename), "/")
	short := parts[len(parts)-1]
	return fmt.Sprintf("%s:%d:%d", short, pos.Line, pos.Column)
}
