// Package househunt is a Go implementation of the distributed house-hunting
// model and algorithms of Ghaffari, Musco, Radeva and Lynch, "Distributed
// House-Hunting in Ant Colonies" (PODC 2015).
//
// A colony of n probabilistic agents must agree on one good nest out of k
// candidates using only the model's three primitives (search, go, recruit).
// This package is the public facade over the full simulation stack: configure
// a colony with options, run it, inspect the result.
//
//	res, err := househunt.Run(
//	    househunt.WithColonySize(512),
//	    househunt.WithBinaryNests(8, 2),          // 8 nests, 2 good
//	    househunt.WithAlgorithm(househunt.AlgorithmSimple),
//	    househunt.WithSeed(42),
//	)
//	if err != nil { ... }
//	fmt.Println(res.Solved, res.Winner, res.Rounds)
//
// Algorithms: AlgorithmOptimal is the paper's O(log n) Algorithm 2;
// AlgorithmSimple is the O(k log n) Algorithm 3; the remaining identifiers
// cover the paper's §6 extensions (adaptive rates, non-binary qualities,
// noisy perception) and the ablation variants. Fault injection, asynchrony
// and tracing are all options.
package househunt

import (
	"errors"
	"fmt"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/async"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/faults"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/trace"
)

// Algorithm selects which house-hunting algorithm a colony runs.
type Algorithm string

// The available algorithms.
const (
	// AlgorithmOptimal is the paper's Algorithm 2: asymptotically optimal
	// O(log n) competition by population trend, with the analysis-consistent
	// Case 3 re-baselining (see DESIGN.md).
	AlgorithmOptimal Algorithm = "optimal"
	// AlgorithmOptimalLiteral is Algorithm 2 with the pseudocode's literal
	// Case 3 (stale count baseline); it can deadlock and exists for the E17
	// ablation.
	AlgorithmOptimalLiteral Algorithm = "optimal-literal"
	// AlgorithmSimple is the paper's Algorithm 3: recruit with probability
	// count/n; O(k log n) rounds.
	AlgorithmSimple Algorithm = "simple"
	// AlgorithmSimplePFSM is Algorithm 3 expressed in the probabilistic
	// finite-state-machine framework; behaviourally identical to
	// AlgorithmSimple.
	AlgorithmSimplePFSM Algorithm = "simple-pfsm"
	// AlgorithmAdaptive is the §6 boosted-rate extension.
	AlgorithmAdaptive Algorithm = "adaptive"
	// AlgorithmQualityAware is the §6 non-binary-quality extension
	// (recruitment probability quality·count/n).
	AlgorithmQualityAware Algorithm = "quality"
	// AlgorithmSpreader is the §3 lower-bound rumor-spreading process; it
	// requires an environment with exactly one good nest.
	AlgorithmSpreader Algorithm = "spreader"
	// AlgorithmQuorum is the quorum-gated transport strategy of the biology
	// (§1.1): tandem runs until the committed nest's population passes a
	// quorum, then 3x-capacity transports. Tune with WithQuorum.
	AlgorithmQuorum Algorithm = "quorum"
	// AlgorithmApproxN is Algorithm 3 where each ant knows the colony size
	// only approximately (§6). Tune with WithColonySizeError.
	AlgorithmApproxN Algorithm = "approxn"
)

// Config collects a colony configuration. Construct with options via New or
// Run; the zero value is not runnable.
type Config struct {
	n          int
	qualities  []float64
	algorithm  Algorithm
	seed       uint64
	maxRounds  int
	stability  int
	concurrent bool
	traced     bool

	countNoise    float64
	flipP         float64
	encounterEst  *nest.EncounterRateCounter
	crashFrac     float64
	crashWindow   int
	byzantineFrac float64
	sleepFrac     float64
	sleepWindow   int
	jitterP       float64
	maxDelay      int

	adaptiveTau      int
	adaptiveFloorDiv float64

	quorumMultiplier float64
	quorumCarry      int
	quorumDocility   float64
	nError           float64
}

// Option configures a colony.
type Option func(*Config) error

// WithColonySize sets the number of ants n (required, positive).
func WithColonySize(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("househunt: colony size %d must be positive", n)
		}
		c.n = n
		return nil
	}
}

// WithNests sets the candidate nest qualities explicitly (values in [0,1],
// at least one positive).
func WithNests(qualities ...float64) Option {
	return func(c *Config) error {
		if len(qualities) == 0 {
			return errors.New("househunt: WithNests needs at least one nest")
		}
		c.qualities = append([]float64(nil), qualities...)
		return nil
	}
}

// WithBinaryNests sets k candidate nests of which good have quality 1.
func WithBinaryNests(k, good int) Option {
	return func(c *Config) error {
		if k <= 0 || good <= 0 || good > k {
			return fmt.Errorf("househunt: invalid binary nests k=%d good=%d", k, good)
		}
		qs := make([]float64, k)
		for i := 0; i < good; i++ {
			qs[i] = 1
		}
		c.qualities = qs
		return nil
	}
}

// WithAlgorithm selects the algorithm; default AlgorithmSimple.
func WithAlgorithm(a Algorithm) Option {
	return func(c *Config) error {
		c.algorithm = a
		return nil
	}
}

// WithSeed fixes the root random seed; default 1. Equal configurations with
// equal seeds produce identical executions.
func WithSeed(seed uint64) Option {
	return func(c *Config) error {
		c.seed = seed
		return nil
	}
}

// WithMaxRounds bounds the execution; 0 (default) uses a generous budget
// derived from n and k.
func WithMaxRounds(rounds int) Option {
	return func(c *Config) error {
		if rounds < 0 {
			return fmt.Errorf("househunt: negative round budget %d", rounds)
		}
		c.maxRounds = rounds
		return nil
	}
}

// WithStabilityWindow requires the converged state to persist for the given
// number of consecutive rounds before the run is declared solved.
func WithStabilityWindow(rounds int) Option {
	return func(c *Config) error {
		if rounds < 0 {
			return fmt.Errorf("househunt: negative stability window %d", rounds)
		}
		c.stability = rounds
		return nil
	}
}

// WithConcurrentAnts runs every ant as its own goroutine (same semantics and
// randomness as the default sequential engine, validated against it).
func WithConcurrentAnts() Option {
	return func(c *Config) error {
		c.concurrent = true
		return nil
	}
}

// WithTracing records per-round populations and commitments; the Result then
// carries a History and supports CSV export and ASCII plotting.
func WithTracing() Option {
	return func(c *Config) error {
		c.traced = true
		return nil
	}
}

// WithCountNoise perturbs every population reading with unbiased relative
// Gaussian noise of the given standard deviation (§6 approximate counting).
// Forces the noisy variant of AlgorithmSimple.
func WithCountNoise(sigma float64) Option {
	return func(c *Config) error {
		if sigma < 0 {
			return fmt.Errorf("househunt: negative count noise %v", sigma)
		}
		c.countNoise = sigma
		return nil
	}
}

// WithAssessmentFlips makes every quality assessment flip with probability p
// (§6 noisy assessment). Forces the noisy variant of AlgorithmSimple.
func WithAssessmentFlips(p float64) Option {
	return func(c *Config) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("househunt: flip probability %v outside [0,1]", p)
		}
		c.flipP = p
		return nil
	}
}

// WithEncounterRateSensing replaces exact population counts by the
// encounter-rate quorum-sensing estimator (Pratt 2005) with the given number
// of probes per visit and calibration volume. Forces the noisy variant of
// AlgorithmSimple.
func WithEncounterRateSensing(probes int, volume float64) Option {
	return func(c *Config) error {
		if probes <= 0 || volume <= 0 {
			return fmt.Errorf("househunt: invalid encounter sensing probes=%d volume=%v", probes, volume)
		}
		c.encounterEst = &nest.EncounterRateCounter{Probes: probes, Volume: volume}
		return nil
	}
}

// WithCrashFaults crashes the given fraction of the colony at uniformly
// random rounds within the window (§6 fault tolerance).
func WithCrashFaults(fraction float64, window int) Option {
	return func(c *Config) error {
		if fraction < 0 || fraction > 1 {
			return fmt.Errorf("househunt: crash fraction %v outside [0,1]", fraction)
		}
		c.crashFrac = fraction
		c.crashWindow = window
		return nil
	}
}

// WithByzantineAnts replaces the given fraction of the colony by adversaries
// that lure ants toward bad nests (§6 fault tolerance).
func WithByzantineAnts(fraction float64) Option {
	return func(c *Config) error {
		if fraction < 0 || fraction > 1 {
			return fmt.Errorf("househunt: byzantine fraction %v outside [0,1]", fraction)
		}
		c.byzantineFrac = fraction
		return nil
	}
}

// WithIdleAnts starts the given fraction of the colony as a sleeping reserve
// that joins the emigration at uniformly random rounds within the window (the
// idle-pool scenario; see EXPERIMENTS.md E24). Sleeping ants are counted by
// the census, so the colony cannot converge before the reserve wakes.
func WithIdleAnts(fraction float64, window int) Option {
	return func(c *Config) error {
		if fraction < 0 || fraction > 1 {
			return fmt.Errorf("househunt: idle fraction %v outside [0,1]", fraction)
		}
		c.sleepFrac = fraction
		c.sleepWindow = window
		return nil
	}
}

// WithJitter holds each ant independently with probability p per round and
// staggers wake-up by up to maxDelay rounds (§6 asynchrony).
func WithJitter(p float64, maxDelay int) Option {
	return func(c *Config) error {
		if p < 0 || p >= 1 {
			return fmt.Errorf("househunt: jitter probability %v outside [0,1)", p)
		}
		if maxDelay < 0 {
			return fmt.Errorf("househunt: negative wake-up delay %d", maxDelay)
		}
		c.jitterP = p
		c.maxDelay = maxDelay
		return nil
	}
}

// WithAdaptiveSchedule tunes AlgorithmAdaptive: the boost-doubling period in
// recruit phases and the boost floor divisor (see internal/algo.AdaptiveAnt).
func WithAdaptiveSchedule(tau int, floorDiv float64) Option {
	return func(c *Config) error {
		if tau < 0 || floorDiv < 0 {
			return fmt.Errorf("househunt: invalid adaptive schedule tau=%d floorDiv=%v", tau, floorDiv)
		}
		c.adaptiveTau = tau
		c.adaptiveFloorDiv = floorDiv
		return nil
	}
}

// WithQuorum tunes AlgorithmQuorum: multiplier scales an ant's initially
// observed nest population into its quorum threshold (must exceed 1; 0 keeps
// the default 1.5), carry is the transport capacity (0 keeps the default 3),
// and docility is the probability a transporter submits to being carried
// away (0 keeps the default 0.25).
func WithQuorum(multiplier float64, carry int, docility float64) Option {
	return func(c *Config) error {
		if multiplier != 0 && multiplier <= 1 {
			return fmt.Errorf("househunt: quorum multiplier %v must exceed 1", multiplier)
		}
		if carry < 0 {
			return fmt.Errorf("househunt: negative transport carry %d", carry)
		}
		if docility < 0 || docility > 1 {
			return fmt.Errorf("househunt: quorum docility %v outside [0,1]", docility)
		}
		c.quorumMultiplier = multiplier
		c.quorumCarry = carry
		c.quorumDocility = docility
		return nil
	}
}

// WithColonySizeError gives each ant of AlgorithmApproxN an independent
// colony-size estimate n·(1+u), u ~ Uniform(−delta, +delta) (§6 "ants know
// only an approximation of n"). delta must lie in [0, 1).
func WithColonySizeError(delta float64) Option {
	return func(c *Config) error {
		if delta < 0 || delta >= 1 {
			return fmt.Errorf("househunt: colony-size error %v outside [0,1)", delta)
		}
		c.nError = delta
		return nil
	}
}

// Colony is a fully configured, runnable house-hunting instance.
type Colony struct {
	cfg Config
}

// New validates options into a runnable Colony.
func New(opts ...Option) (*Colony, error) {
	cfg := Config{algorithm: AlgorithmSimple, seed: 1}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.n <= 0 {
		return nil, errors.New("househunt: WithColonySize is required")
	}
	if len(cfg.qualities) == 0 {
		return nil, errors.New("househunt: WithNests or WithBinaryNests is required")
	}
	if _, err := sim.NewEnvironment(cfg.qualities); err != nil {
		return nil, fmt.Errorf("househunt: %w", err)
	}
	if _, err := buildAlgorithm(cfg); err != nil {
		return nil, err
	}
	return &Colony{cfg: cfg}, nil
}

// buildAlgorithm maps the configuration to a core.Algorithm.
func buildAlgorithm(cfg Config) (core.Algorithm, error) {
	noisy := cfg.countNoise > 0 || cfg.flipP > 0 || cfg.encounterEst != nil
	if noisy {
		if cfg.algorithm == AlgorithmQuorum {
			if cfg.countNoise > 0 || cfg.encounterEst != nil {
				return nil, fmt.Errorf("househunt: AlgorithmQuorum supports WithAssessmentFlips only, not count noise")
			}
			return algo.Quorum{
				Multiplier: cfg.quorumMultiplier,
				Carry:      cfg.quorumCarry,
				Docility:   cfg.quorumDocility,
				Assessor:   nest.FlipAssessor{P: cfg.flipP},
			}, nil
		}
		if cfg.algorithm != AlgorithmSimple {
			return nil, fmt.Errorf("househunt: perception noise is only supported with AlgorithmSimple and AlgorithmQuorum, got %q", cfg.algorithm)
		}
		var counter nest.CountEstimator = nest.ExactCounter{}
		if cfg.encounterEst != nil {
			counter = *cfg.encounterEst
		} else if cfg.countNoise > 0 {
			counter = nest.RelativeNoiseCounter{Sigma: cfg.countNoise}
		}
		var assessor nest.Assessor = nest.ExactAssessor{}
		if cfg.flipP > 0 {
			assessor = nest.FlipAssessor{P: cfg.flipP}
		}
		return algo.Noisy{Counter: counter, Assessor: assessor}, nil
	}
	switch cfg.algorithm {
	case AlgorithmOptimal:
		return algo.Optimal{}, nil
	case AlgorithmOptimalLiteral:
		return algo.Optimal{Literal: true}, nil
	case AlgorithmSimple:
		return algo.Simple{}, nil
	case AlgorithmSimplePFSM:
		return algo.SimplePFSM{}, nil
	case AlgorithmAdaptive:
		return algo.Adaptive{Tau: cfg.adaptiveTau, FloorDiv: cfg.adaptiveFloorDiv}, nil
	case AlgorithmQualityAware:
		return algo.QualityAware{}, nil
	case AlgorithmSpreader:
		return algo.Spreader{}, nil
	case AlgorithmQuorum:
		return algo.Quorum{
			Multiplier: cfg.quorumMultiplier,
			Carry:      cfg.quorumCarry,
			Docility:   cfg.quorumDocility,
		}, nil
	case AlgorithmApproxN:
		return algo.ApproxN{Delta: cfg.nError}, nil
	default:
		return nil, fmt.Errorf("househunt: unknown algorithm %q", cfg.algorithm)
	}
}

// Run executes the colony once and reports the result.
func (c *Colony) Run() (*Result, error) {
	env, err := sim.NewEnvironment(c.cfg.qualities)
	if err != nil {
		return nil, fmt.Errorf("househunt: %w", err)
	}
	algorithm, err := buildAlgorithm(c.cfg)
	if err != nil {
		return nil, err
	}

	runCfg := core.RunConfig{
		N:               c.cfg.n,
		Env:             env,
		Seed:            c.cfg.seed,
		MaxRounds:       c.cfg.maxRounds,
		StabilityWindow: c.cfg.stability,
		Concurrent:      c.cfg.concurrent,
	}

	// The fault knobs lower to a declarative faults.Spec (draw-identical to
	// the legacy faults.Plan wrapper at the same salt); a spec that is the
	// sole wrapper rides on cfg.Wrap directly, keeping the config eligible
	// for the batch engine's fault lanes. Asynchrony remains scalar-only.
	var spec faults.Spec
	if c.cfg.crashFrac > 0 || c.cfg.byzantineFrac > 0 || c.cfg.sleepFrac > 0 {
		spec = faults.Spec{
			CrashFraction:     c.cfg.crashFrac,
			CrashWindow:       c.cfg.crashWindow,
			ByzantineFraction: c.cfg.byzantineFrac,
			SleepFraction:     c.cfg.sleepFrac,
			SleepWindow:       c.cfg.sleepWindow,
			Salt:              1001,
		}
	}
	var asyncWrap core.WrapFunc
	if c.cfg.jitterP > 0 || c.cfg.maxDelay > 0 {
		plan := async.Plan{HoldP: c.cfg.jitterP, MaxDelay: c.cfg.maxDelay}
		asyncWrap = core.WrapFunc(plan.Apply(rng.New(c.cfg.seed).Split(1002)))
	}
	switch {
	case spec.Enabled() && asyncWrap != nil:
		runCfg.Wrap = core.WrapFunc(func(agents []sim.Agent) ([]sim.Agent, error) {
			agents, err := spec.WrapAgents(c.cfg.seed, agents)
			if err != nil {
				return nil, err
			}
			return asyncWrap(agents)
		})
	case spec.Enabled():
		runCfg.Wrap = spec
	case asyncWrap != nil:
		runCfg.Wrap = asyncWrap
	}

	var (
		res core.Result
		tr  *trace.Trace
	)
	if c.cfg.traced {
		tr = trace.New(env.K())
		runCfg.Trace = tr
		res, err = core.RunTraced(algorithm, runCfg)
	} else {
		res, err = core.Run(algorithm, runCfg)
	}
	if err != nil {
		return nil, err
	}
	return newResult(res, env, tr), nil
}

// Run is the one-call convenience: configure, validate and execute a colony.
func Run(opts ...Option) (*Result, error) {
	colony, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return colony.Run()
}
