package sim

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
)

// Program is a compiled probabilistic finite state machine: the agent logic of
// internal/agent and internal/algo lowered to a dense opcode form that the
// batch engine (see Batch) can execute over flat state arrays with no
// interface dispatch, no map lookups and no per-ant heap objects.
//
// A Program state pairs one emit opcode (which environment call to make) with
// one observe opcode (how to fold the call's outcome into the register file)
// and up to three successor states. The register file covers both compiled
// algorithms: a committed nest, a remembered count and a perceived quality
// (Algorithm 3), plus the scratch nest and scratch count Algorithm 2's 4-round
// subroutine carries between rounds (the pseudocode's nest_t and count_t).
//
// Two classes of observe opcode exist. The static ones (ObserveDiscovery,
// ObserveAdopt, ObserveCount) always enter Next, so a colony running only
// those advances in lockstep — the batch engine detects this (Lockstep) and
// runs a specialized shared-phase fast path. The branching ones select among
// Next/NextB/NextC based on the outcome; they are what Algorithm 2 needs, and
// they force the per-ant state column of the general execution path. The
// scalar OptimalAnt's branch, pending and latched next-state registers have no
// columns of their own: outcome-dependent successors encode them as dedicated
// states (e.g. a captured passive ant enters the pending chain of states that
// ends in the final state, exactly when the scalar ant would latch the
// transition at its phase boundary).
//
// States marked Final are terminal "decided" states (Algorithm 2's final
// state). A program with any Final state Decides: the batch engine then gates
// convergence on every ant having reached a Final state, mirroring the
// core.Decided contract of the scalar path, and reports the decided count in
// BatchResult.Decided.
//
// The opcode set covers Algorithms 2 and 3 plus the §6 extensions. The
// extensions that reshape only the recruit draw (Adaptive's boosted schedule,
// QualityAware's quality-weighted rate, ApproxN's private colony-size
// estimate) may read two per-ant parameter columns the lane materializes on
// demand — an integer column (Adaptive's phase clock) and a float column
// (ApproxN's ñ estimate) — and their scalar knobs travel in Params. The
// noisy-perception extension routes every count and quality read through the
// pluggable perception hooks of Params (nil hooks mean exact perception and
// cost nothing), and the quorum-transport extension adds a carry-capable
// recruit emit plus capture-sensitive observes: its threshold register lives
// in the countT scratch column (disjoint from Algorithm 2's use) and its
// transport flag is encoded in the state chain, so no new register columns are
// needed. The stock matcher ablations run batched through WithBatchMatcher,
// and fault injection runs batched through the Params.Faults knobs: the lane
// materializes per-ant crash-round/Byzantine/sleep columns and routes faulted
// ants through engine-owned synthetic states (see FaultSpec), which forces the
// general path and caps faulted programs at 252 states.
// An algorithm advertises its compiled form by implementing the core package's
// BatchCompilable interface.
type Program struct {
	// Algorithm is the source algorithm's name, carried into results.
	Algorithm string
	// Init is the index of the initial state.
	Init uint8
	// States is the dense state table; successor indices refer into it.
	States []ProgramState
	// InitSplit, when positive, splits the colony's initial state by ant
	// index: ants i < InitSplit start in Init and ants i >= InitSplit start
	// in InitRest. The compiled Spreader process uses this for its
	// seed-searcher/waiter split; a split colony is heterogeneous from round
	// one, so Lockstep reports false.
	InitSplit int
	// InitRest is the initial state of ants i >= InitSplit; meaningful only
	// when InitSplit > 0.
	InitRest uint8
	// Params parameterizes the extension emit opcodes; zero unless the
	// program uses one of them (see ProgramParams).
	Params ProgramParams
}

// ProgramParams carries the scalar knobs of the §6 extension opcodes. The
// fields are program-wide constants; per-ant state lives in the lane's
// parameter columns instead.
type ProgramParams struct {
	// Tau is EmitRecruitAdaptive's boost-doubling period in recruit phases;
	// must be positive when that opcode appears.
	Tau int
	// FloorDiv caps EmitRecruitAdaptive's boost at a virtual rival of
	// n/FloorDiv; must be positive when that opcode appears.
	FloorDiv float64
	// NEstDelta is EmitRecruitApproxN's maximum relative colony-size error:
	// each ant's private estimate is ñ = n·(1 + u), u ~ Uniform(−δ, +δ),
	// drawn from the ant's own stream at replicate start (no draw when 0,
	// matching the scalar builder). Must lie in [0, 1) when the opcode
	// appears.
	NEstDelta float64

	// Assess is the perception hook applied by ObserveDiscoverNoisy and
	// ObserveDiscoverQuorum to the outcome quality, drawing any noise from the
	// observing ant's own stream — the compiled form of a nest.Assessor. Nil
	// means exact assessment (and consumes no randomness, exactly like
	// nest.ExactAssessor). Hooks may be called concurrently from different
	// worker lanes and must be stateless, which every assessor in the nest
	// package is.
	Assess func(q float64, src *rng.Source) float64
	// Count is the perception hook applied by ObserveDiscoverNoisy and
	// ObserveCountNoisy to the outcome count — the compiled form of a
	// nest.CountEstimator. Nil means exact counting. The same statelessness
	// requirement as Assess applies.
	Count func(count, n int, src *rng.Source) int
	// Threshold is ObserveDiscoverNoisy's good/bad classification cut: a
	// perceived quality <= Threshold classifies the nest as bad (the ant
	// recruits passively until captured), mirroring NoisyAnt.
	Threshold float64

	// QuorumMult scales an ant's initially observed population into its quorum
	// threshold (ObserveDiscoverQuorum): T = max(⌊QuorumMult·count⌋, count+2).
	// Must exceed 1 when that opcode appears.
	QuorumMult float64
	// QuorumCarry is EmitRecruitTransport's carry capacity (the §6 transport
	// extension; the paper's [21] reports ≈ 3). Must be >= 1 when that opcode
	// appears.
	QuorumCarry int
	// QuorumDocility is the probability a captured transporter submits to
	// being carried away (ObserveQuorumTransport), drawn from the captured
	// ant's stream. Must lie in [0, 1] when that opcode appears.
	QuorumDocility float64

	// Faults injects crash/Byzantine/sleep adversaries into every replicate
	// (see FaultSpec). A disabled (zero) spec costs nothing; an enabled one
	// forces the general execution path and caps the program at 252 states
	// (the engine appends its synthetic fault states after the program's).
	Faults FaultSpec
}

// ProgramState is one compiled PFSM state.
type ProgramState struct {
	// Emit selects the environment call made while in this state.
	Emit EmitOp
	// Arg parameterizes Emit; only EmitRecruitBit uses it (the active bit,
	// 0 or 1).
	Arg uint8
	// Observe selects how the outcome updates the registers and which
	// successor is entered.
	Observe ObserveOp
	// Next is the default successor state.
	Next uint8
	// NextB is the secondary successor of branching observe opcodes (see the
	// per-opcode docs); unused by the static ones.
	NextB uint8
	// NextC is the tertiary successor; only ObserveCompareR2 uses it.
	NextC uint8
	// Final marks a terminal "decided" state for the core.Decided contract.
	Final bool
}

// EmitOp enumerates the compiled emit behaviours.
type EmitOp uint8

const (
	// EmitSearch performs search().
	//hh:draws none from the ant stream; the environment draws one destination word per searching ant, in ant order scalar=SimpleAnt.Act
	EmitSearch EmitOp = iota
	// EmitGotoNest performs go(nest) on the committed nest register.
	//hh:draws none scalar=SimpleAnt.Act
	EmitGotoNest
	// EmitRecruitPop performs recruit(b, nest) with b drawn as
	// Bernoulli(count/n) when the quality register is positive and b = 0
	// otherwise — Algorithm 3's population-proportional recruitment. The
	// Bernoulli draw consumes ant randomness exactly as the scalar
	// SimpleAnt/SimplePFSM do (no draw when quality <= 0), which is what
	// keeps batch and scalar executions bit-identical.
	//hh:draws one Bernoulli(count/n) word when quality > 0 and the rate is inside (0, 1), none otherwise scalar=SimpleAnt.Act
	EmitRecruitPop
	// EmitRecruitBit performs recruit(Arg, nest): the active bit is fixed by
	// the state rather than drawn — Algorithm 2's recruits are all of this
	// form (lines 14, 21, 23, 29, 35 of the pseudocode).
	//hh:draws none: the active bit is compiled into the state, not drawn scalar=OptimalAnt.Act
	EmitRecruitBit
	// EmitGotoScratch performs go(nestT) on the scratch nest register —
	// Algorithm 2's R2 visit to the nest learned while recruiting (line 24).
	//hh:draws none scalar=OptimalAnt.Act
	EmitGotoScratch
	// EmitRecruitQual performs recruit(b, nest) with b drawn as
	// Bernoulli(quality·count/n) — the §6 non-binary-quality extension's
	// assessment-weighted rate. The draw is made unconditionally: rng.Source's
	// Bernoulli consumes no randomness at p <= 0 or p >= 1, which is exactly
	// how the scalar QualityAnt's active gate behaves (a passive ant always
	// holds quality 0, so skipping the call and making it at p = 0 are
	// bit-identical).
	//hh:draws one Bernoulli(quality*count/n) word when the rate is inside (0, 1), none otherwise scalar=QualityAnt.Act
	EmitRecruitQual
	// EmitRecruitAdaptive performs recruit(b, nest) with b drawn as
	// Bernoulli(AdaptiveRecruitProbability(n, count, phases, Tau, FloorDiv))
	// when the quality register is positive and b = 0 otherwise — the §6
	// boosted-rate extension. phases is the ant's entry in the lane's integer
	// parameter column, incremented on every emit (drawn or not), mirroring
	// the scalar AdaptiveAnt's phase clock.
	//hh:draws one Bernoulli(b(r)) word when quality > 0 and the boosted rate is inside (0, 1), none otherwise scalar=AdaptiveAnt.Act
	EmitRecruitAdaptive
	// EmitRecruitApproxN performs recruit(b, nest) with b drawn as
	// Bernoulli(min(1, count/ñ)) when the quality register is positive and
	// b = 0 otherwise — the §6 approximate-n extension. ñ is the ant's entry
	// in the lane's float parameter column, initialized from Params.NEstDelta
	// at replicate start.
	//hh:draws one Bernoulli word when quality > 0 and the clamped rate min(1, count/nEst) is inside (0, 1), none otherwise scalar=ApproxNAnt.Act
	EmitRecruitApproxN
	// EmitRecruitTransport performs recruit(1, nest) with carry capacity
	// Params.QuorumCarry — the §6 transport extension's direct carrying, as
	// QuorumAnt emits after passing quorum. The bit is fixed at 1 (a
	// transporter always recruits), so no randomness is drawn; the lane routes
	// the round's pairing through the matcher's carry-aware form
	// (CarryMatcher.MatchCarry) exactly as the scalar engine does.
	//hh:draws none: a transporter always recruits actively scalar=QuorumAnt.Act
	EmitRecruitTransport
)

// AdaptiveRecruitProbability is the boosted recruitment rate of the §6
// "improved running time" extension and the semantic definition of
// EmitRecruitAdaptive:
//
//	b(r) = count / (count + A(r)),   A(r) = max(n·2^(−⌊phases/tau⌋), n/floorDiv)
//
// The scalar AdaptiveAnt delegates here too, so batch and scalar executions
// share one float-for-float identical formula by construction.
//
//hh:hotpath
//hh:floatok the shared scalar/batch rate definition: float by contract, consumed only through Bernoulli/NewThreshold
func AdaptiveRecruitProbability(n, count, phases, tau int, floorDiv float64) float64 {
	c := float64(count)
	decay := adaptiveDecay(n, phases, tau, floorDiv)
	return c / (c + decay)
}

// adaptiveDecay computes the schedule's virtual-rival term A(r). It is split
// out so the lockstep batch path, where the phase clock is colony-uniform,
// can hoist it out of the per-ant loop.
//
//hh:hotpath
//hh:floatok the shared scalar/batch rate definition: float by contract, consumed only through Bernoulli/NewThreshold
func adaptiveDecay(n, phases, tau int, floorDiv float64) float64 {
	decay := float64(n)
	for i := 0; i < phases/tau; i++ {
		decay /= 2
		if decay <= float64(n)/floorDiv {
			break
		}
	}
	floor := float64(n) / floorDiv
	if decay < floor {
		decay = floor
	}
	return decay
}

// ObserveOp enumerates the compiled observe behaviours. Static opcodes always
// enter Next; branching ones document which successor each outcome selects.
type ObserveOp uint8

const (
	// ObserveDiscovery loads nest, count and quality from the outcome — the
	// pattern after search(). Static.
	//hh:draws none scalar=SimpleAnt.Observe
	ObserveDiscovery ObserveOp = iota
	// ObserveAdopt adopts the recruiter's nest when the outcome's nest
	// differs from the committed one, setting quality to 1 (a captured ant
	// trusts its recruiter) — the pattern after recruit(). Static.
	//hh:draws none scalar=SimpleAnt.Observe
	ObserveAdopt
	// ObserveCount loads only the count register — the pattern after go().
	// Static.
	//hh:draws none scalar=SimpleAnt.Observe
	ObserveCount
	// ObserveNone folds nothing — the padding calls of Algorithm 2 whose
	// return values are discarded. Static.
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveNone
	// ObserveDiscoverBranch loads nest, count and quality like
	// ObserveDiscovery, then branches on the discovered quality: Next when
	// quality > 0 (Algorithm 2's active), NextB when quality = 0 (passive) —
	// lines 8-11.
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveDiscoverBranch
	// ObserveRecruitNest stores the outcome nest in the scratch nest register
	// nestT (the recruit of line 23, whose result is the capturer's nest when
	// captured and the ant's own nest otherwise), then enters Next.
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveRecruitNest
	// ObserveCompareR2 stores the outcome count in countT and performs
	// Algorithm 2's three-way R2 compare (lines 25-38): Case 1 (nestT = nest
	// and countT >= count) re-baselines count := countT and enters Next;
	// Case 2 (nestT = nest, population dropped) enters NextB; Case 3
	// (recruited elsewhere) commits nest := nestT and enters NextC.
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveCompareR2
	// ObserveRecountRebase is Case 3's R3 population check (lines 39-41) in
	// the analysis-consistent reading: count_n := outcome count; if
	// count_n < countT enter NextB (the to-passive chain), else re-baseline
	// count := count_n and enter Next.
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveRecountRebase
	// ObserveRecountLiteral is the pseudocode-literal Case 3 check: same
	// branching as ObserveRecountRebase but count keeps the old nest's value
	// on the Next branch (the stale baseline the E17 ablation quantifies).
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveRecountLiteral
	// ObserveFinalEq is branch 1's R4 check (lines 29-31): if the outcome
	// count equals the count register enter NextB (the final state), else
	// Next. The outcome of a recruit call carries the home-nest population.
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveFinalEq
	// ObserveAdoptPend is the passive R2 fold (lines 14-17): when the outcome
	// nest differs the ant adopts it and enters NextB (the pending chain that
	// latches final at the phase boundary); otherwise it enters Next.
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveAdoptPend
	// ObserveNestLatch re-loads the nest register from the outcome — the
	// final-state recruit loop's ⟨nest, ·⟩ := recruit(1, nest) of line 21 —
	// then enters Next.
	//hh:draws none scalar=OptimalAnt.Observe
	ObserveNestLatch
	// ObserveAdoptZero adopts the recruiter's nest when the outcome's nest
	// differs from the committed one, resetting quality to 0 — the §6
	// quality-aware recruit fold: a captured ant prices the unknown nest
	// conservatively until its next visit re-assesses it. Static.
	//hh:draws none scalar=QualityAnt.Observe
	ObserveAdoptZero
	// ObserveCountQual loads the count register and re-assesses quality from
	// the outcome — the quality-aware assess visit (the engine reports the
	// nest's true quality on go outcomes; recruit outcomes carry quality 0).
	// Static.
	//hh:draws none scalar=QualityAnt.Observe
	ObserveCountQual
	// ObserveDiscoverNoisy is the noisy-perception discovery fold: the count
	// register loads Params.Count(outcome count) and the quality register
	// loads 1 when Params.Assess(outcome quality) exceeds Params.Threshold and
	// 0 otherwise — NoisyAnt's active flag encoded exactly like Simple's
	// (quality > 0 gates the recruit draw). Both hooks draw from the observing
	// ant's own stream, count first, then quality, matching NoisyAnt's observe
	// order. Static.
	//hh:draws whatever Params.Count then Params.Assess draw from the observing ant stream, in that order scalar=NoisyAnt.Observe
	ObserveDiscoverNoisy
	// ObserveCountNoisy loads the count register through Params.Count — the
	// noisy assess visit. Static.
	//hh:draws whatever Params.Count draws from the observing ant stream scalar=NoisyAnt.Observe
	ObserveCountNoisy
	// ObserveDiscoverQuorum is the quorum-transport discovery fold: adopt the
	// outcome nest, load the exact count, classify activity by
	// Params.Assess(outcome quality) > 0.5 into the quality register (1 active
	// canvasser, 0 passive), and self-calibrate the quorum threshold
	// T = max(⌊QuorumMult·count⌋, count+2) into the countT scratch register —
	// exactly QuorumAnt's search observe. Static.
	//hh:draws whatever Params.Assess draws from the observing ant stream scalar=QuorumAnt.Observe
	ObserveDiscoverQuorum
	// ObserveQuorumAdopt is the canvasser/passive recruit fold: when the ant
	// was CAPTURED this round (capture is what QuorumAnt keys on, not a nest
	// change — a carried ant knows it was picked up even if the capturer
	// advertises its own nest) it adopts the capturer's nest and becomes an
	// active canvasser (quality := 1). A self-pair does not count as capture.
	// Static.
	//hh:draws none: capture state folds without randomness scalar=QuorumAnt.Observe
	ObserveQuorumAdopt
	// ObserveQuorumCheck is the canvasser assess fold: load the exact count,
	// then promote to transport — NextB — when the ant canvasses actively
	// (quality > 0) and the count has reached the countT threshold; otherwise
	// enter Next (keep canvassing). The transport states are Final, making the
	// compiled program deciding exactly as QuorumAnt.Decided reports transport.
	//hh:draws none scalar=QuorumAnt.Observe
	ObserveQuorumCheck
	// ObserveQuorumTransport is the transporter recruit fold: a captured
	// transporter submits with probability Params.QuorumDocility (drawn from
	// the captured ant's stream); a submitting transporter carried to a
	// DIFFERENT nest demotes to a canvasser of that nest — NextB — while one
	// carried for its own nest, a resisting one, or an uncaptured one stays in
	// transport — Next.
	//hh:draws one docility Bernoulli word from the captured transporter stream when QuorumDocility is inside (0, 1), none otherwise scalar=QuorumAnt.Observe
	ObserveQuorumTransport
	// ObserveInform is the rumor-spreading fold of the §3 lower-bound process:
	// when the outcome nest is good the ant learns the rumor — it commits to
	// that nest and enters Next (the informed state); otherwise it folds
	// nothing and enters NextB. The recruit outcome of a captured waiter
	// resolves to its capturer's advertised nest, so capture and discovery are
	// the same two information channels as the scalar SpreaderAnt's. The
	// Spreader compiler requires exactly one good nest, making "good outcome
	// nest" and "outcome nest = target" the same predicate.
	//hh:draws none scalar=SpreaderAnt.Observe
	ObserveInform
)

// staticObserve reports whether op always enters Next.
func staticObserve(op ObserveOp) bool {
	switch op {
	case ObserveDiscovery, ObserveAdopt, ObserveCount, ObserveNone,
		ObserveRecruitNest, ObserveNestLatch, ObserveAdoptZero, ObserveCountQual,
		ObserveDiscoverNoisy, ObserveCountNoisy,
		ObserveDiscoverQuorum, ObserveQuorumAdopt:
		return true
	}
	return false
}

// lockstepObserve reports whether the lockstep fast path implements op. The
// quorum observes are static but deliberately excluded: they read the capture
// table, and the only program emitting them (the compiled quorum-transport
// strategy) carries branching observes anyway, so implementing them twice
// would be dead code — a program using them runs the general path.
func lockstepObserve(op ObserveOp) bool {
	switch op {
	case ObserveDiscoverQuorum, ObserveQuorumAdopt:
		return false
	}
	return staticObserve(op)
}

// lockstepEmit reports whether the lockstep fast path implements op.
func lockstepEmit(op EmitOp) bool {
	switch op {
	case EmitSearch, EmitGotoNest, EmitRecruitPop,
		EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
		return true
	}
	return false
}

// recruitDrawEmit reports whether op is a recruit whose active bit is drawn
// from the ant's stream (as opposed to EmitRecruitBit's fixed bit).
func recruitDrawEmit(op EmitOp) bool {
	switch op {
	case EmitRecruitPop, EmitRecruitQual, EmitRecruitAdaptive, EmitRecruitApproxN:
		return true
	}
	return false
}

// Lockstep reports whether every transition is outcome-independent and every
// emit is colony-uniform, i.e. all ants of a colony are always in the same
// state. The batch engine runs such programs on a specialized shared-phase
// path with no per-ant state column or recruiter indirection. A split initial
// state (InitSplit) or an enabled fault spec makes the colony heterogeneous
// regardless of the opcodes, so either forces the general path.
func (p Program) Lockstep() bool {
	if p.InitSplit > 0 || p.Params.Faults.Enabled() {
		return false
	}
	for _, st := range p.States {
		if !lockstepObserve(st.Observe) || !lockstepEmit(st.Emit) {
			return false
		}
	}
	return true
}

// Decides reports whether the program distinguishes terminal states: true
// when any state is Final. Deciding programs gate convergence on all ants
// final, mirroring core.Decided.
func (p Program) Decides() bool {
	for _, st := range p.States {
		if st.Final {
			return true
		}
	}
	return false
}

// observeDrawsRNG reports whether op may draw from the observing ant's stream:
// the perception observes route values through the (possibly noisy) hooks, and
// the transporter fold draws the docility Bernoulli. The classification is
// conservative — exact (nil) hooks draw nothing — so a lane may materialize
// streams that end up untouched, which is exactly what the scalar agents'
// unused sources do.
func observeDrawsRNG(op ObserveOp) bool {
	switch op {
	case ObserveDiscoverNoisy, ObserveCountNoisy,
		ObserveDiscoverQuorum, ObserveQuorumTransport:
		return true
	}
	return false
}

// NeedsAntRNG reports whether any state draws per-ant randomness (every
// drawn-recruit opcode does; EmitRecruitApproxN additionally draws each ant's
// ñ estimate at replicate start; the perception and docility observes draw
// during the fold).
func (p Program) NeedsAntRNG() bool {
	for _, st := range p.States {
		if recruitDrawEmit(st.Emit) || observeDrawsRNG(st.Observe) {
			return true
		}
	}
	return false
}

// UsesCarry reports whether the lane must maintain the per-slot carry column
// and route recruitment pairing through CarryMatcher.MatchCarry
// (EmitRecruitTransport's capacity-carrying recruits).
func (p Program) UsesCarry() bool {
	for _, st := range p.States {
		if st.Emit == EmitRecruitTransport {
			return true
		}
	}
	return false
}

// NeedsIntParam reports whether the lane must materialize the per-ant integer
// parameter column (EmitRecruitAdaptive's phase clock).
func (p Program) NeedsIntParam() bool {
	for _, st := range p.States {
		if st.Emit == EmitRecruitAdaptive {
			return true
		}
	}
	return false
}

// NeedsFloatParam reports whether the lane must materialize the per-ant float
// parameter column (EmitRecruitApproxN's ñ estimate).
func (p Program) NeedsFloatParam() bool {
	for _, st := range p.States {
		if st.Emit == EmitRecruitApproxN {
			return true
		}
	}
	return false
}

// Validate checks structural soundness: a non-empty table, an in-range
// initial state, in-range successors (including the alternates of branching
// opcodes), known, well-parameterized opcodes and, for the extension opcodes,
// in-range program parameters.
func (p Program) Validate() error {
	if len(p.States) == 0 {
		return fmt.Errorf("sim: program %q has no states", p.Algorithm)
	}
	if len(p.States) > 256 {
		return fmt.Errorf("sim: program %q has %d states; state ids are 8-bit", p.Algorithm, len(p.States))
	}
	if int(p.Init) >= len(p.States) {
		return fmt.Errorf("sim: program %q initial state %d out of range", p.Algorithm, p.Init)
	}
	if p.InitSplit < 0 {
		return fmt.Errorf("sim: program %q has negative InitSplit %d", p.Algorithm, p.InitSplit)
	}
	if p.InitSplit > 0 && int(p.InitRest) >= len(p.States) {
		return fmt.Errorf("sim: program %q rest initial state %d out of range", p.Algorithm, p.InitRest)
	}
	if p.Params.Faults.Enabled() {
		if err := p.Params.Faults.Validate(); err != nil {
			return err
		}
		if len(p.States) > 256-batchSyntheticStates {
			return fmt.Errorf("sim: program %q has %d states; faulted programs are capped at %d (the engine appends %d synthetic fault states)",
				p.Algorithm, len(p.States), 256-batchSyntheticStates, batchSyntheticStates)
		}
	}
	if p.NeedsIntParam() {
		if p.Params.Tau < 1 {
			return fmt.Errorf("sim: program %q uses EmitRecruitAdaptive with tau %d; want >= 1", p.Algorithm, p.Params.Tau)
		}
		if !(p.Params.FloorDiv > 0) {
			return fmt.Errorf("sim: program %q uses EmitRecruitAdaptive with floorDiv %v; want > 0", p.Algorithm, p.Params.FloorDiv)
		}
	}
	if p.NeedsFloatParam() && !(p.Params.NEstDelta >= 0 && p.Params.NEstDelta < 1) {
		return fmt.Errorf("sim: program %q uses EmitRecruitApproxN with delta %v outside [0, 1)", p.Algorithm, p.Params.NEstDelta)
	}
	for i, st := range p.States {
		if st.Emit > EmitRecruitTransport {
			return fmt.Errorf("sim: program %q state %d: unknown emit opcode %d", p.Algorithm, i, st.Emit)
		}
		if st.Emit == EmitRecruitBit && st.Arg > 1 {
			return fmt.Errorf("sim: program %q state %d: recruit bit %d is not 0 or 1", p.Algorithm, i, st.Arg)
		}
		if st.Emit == EmitRecruitTransport && p.Params.QuorumCarry < 1 {
			return fmt.Errorf("sim: program %q state %d: EmitRecruitTransport with carry %d; want >= 1", p.Algorithm, i, p.Params.QuorumCarry)
		}
		if st.Observe > ObserveInform {
			return fmt.Errorf("sim: program %q state %d: unknown observe opcode %d", p.Algorithm, i, st.Observe)
		}
		if st.Observe == ObserveDiscoverQuorum && !(p.Params.QuorumMult > 1) {
			return fmt.Errorf("sim: program %q state %d: ObserveDiscoverQuorum with multiplier %v; want > 1", p.Algorithm, i, p.Params.QuorumMult)
		}
		if st.Observe == ObserveQuorumTransport && !(p.Params.QuorumDocility >= 0 && p.Params.QuorumDocility <= 1) {
			return fmt.Errorf("sim: program %q state %d: ObserveQuorumTransport with docility %v outside [0, 1]", p.Algorithm, i, p.Params.QuorumDocility)
		}
		if int(st.Next) >= len(p.States) {
			return fmt.Errorf("sim: program %q state %d: successor %d out of range", p.Algorithm, i, st.Next)
		}
		if !staticObserve(st.Observe) {
			if int(st.NextB) >= len(p.States) {
				return fmt.Errorf("sim: program %q state %d: alternate successor %d out of range", p.Algorithm, i, st.NextB)
			}
			if st.Observe == ObserveCompareR2 && int(st.NextC) >= len(p.States) {
				return fmt.Errorf("sim: program %q state %d: tertiary successor %d out of range", p.Algorithm, i, st.NextC)
			}
		}
	}
	return nil
}
