// Package stats is the statistics substrate for the experiment harness. It
// provides numerically stable streaming moments (Welford), order statistics,
// histograms, ordinary-least-squares fits against the paper's predicted
// shapes (log n and k·log n), bootstrap confidence intervals, and binomial
// tail bounds used by the lemma-level statistical tests.
//
// Everything is stdlib-only and deterministic given a caller-provided random
// source (bootstrap resampling takes an explicit *rng.Source).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance with Welford's algorithm.
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddAll incorporates every observation in xs.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// Merge combines another accumulator into this one using the parallel
// variance formula (Chan et al.), so sharded experiment runs can be reduced.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	nA, nB := float64(w.n), float64(other.n)
	delta := other.mean - w.mean
	total := nA + nB
	w.mean += delta * nB / total
	w.m2 += other.m2 + delta*delta*nA*nB/total
	w.n += other.n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 for an empty accumulator.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 for an empty accumulator.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (n-1 denominator); it is 0
// for fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns a normal-approximation 95% confidence interval for the mean.
func (w *Welford) CI95() (lo, hi float64) {
	const z = 1.959963984540054
	half := z * w.StdErr()
	return w.mean - half, w.mean + half
}

// String renders "mean ± stderr (n=…)", convenient in table cells and logs.
func (w *Welford) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", w.Mean(), w.StdErr(), w.N())
}

// Summary is a point-in-time snapshot of a sample: moments plus selected
// quantiles. Build one with Summarize.
type Summary struct {
	N              int
	Mean           float64
	StdDev         float64
	StdErr         float64
	Min, Max       float64
	Median         float64
	P05, P25       float64
	P75, P95, P99  float64
	TotalObserved  float64
	SortedSnapshot []float64 // retained only when Summarize keep == true
}

// Summarize computes a Summary of xs. When keep is true the sorted copy of
// the data is retained on the Summary for follow-up quantile queries.
func Summarize(xs []float64, keep bool) Summary {
	var s Summary
	s.N = len(xs)
	if len(xs) == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var w Welford
	for _, x := range xs {
		w.Add(x)
		s.TotalObserved += x
	}
	s.Mean = w.Mean()
	s.StdDev = w.StdDev()
	s.StdErr = w.StdErr()
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	if keep {
		s.SortedSnapshot = sorted
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted slice
// using linear interpolation between closest ranks. It panics on an empty
// slice: querying a quantile of nothing is a programming error.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean is a convenience over Welford for one-shot use.
func Mean(xs []float64) float64 {
	var w Welford
	w.AddAll(xs)
	return w.Mean()
}

// Variance is a convenience returning the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	w.AddAll(xs)
	return w.Variance()
}
