package sim

import (
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

func TestFaultSpecEnabled(t *testing.T) {
	cases := []struct {
		name string
		spec FaultSpec
		want bool
	}{
		{"zero", FaultSpec{}, false},
		{"windows-only", FaultSpec{CrashWindow: 10, SleepWindow: 10, Salt: 3}, false},
		{"crash", FaultSpec{CrashFraction: 0.1}, true},
		{"byzantine", FaultSpec{ByzantineFraction: 0.1}, true},
		{"sleep", FaultSpec{SleepFraction: 0.1}, true},
		{"schedule-only", FaultSpec{NewSchedule: func() FaultSchedule { return nil }}, true},
	}
	for _, c := range cases {
		if got := c.spec.Enabled(); got != c.want {
			t.Errorf("%s: Enabled() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFaultSpecValidate(t *testing.T) {
	valid := []FaultSpec{
		{},
		{CrashFraction: 0.3, ByzantineFraction: 0.3, SleepFraction: 0.4},
		{CrashFraction: 1},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	invalid := []FaultSpec{
		{CrashFraction: -0.1},
		{ByzantineFraction: -1},
		{SleepFraction: -0.5},
		{CrashFraction: 0.6, ByzantineFraction: 0.6},
		{CrashFraction: 0.5, ByzantineFraction: 0.3, SleepFraction: 0.3},
		{CrashFraction: 0.1, CrashWindow: -1},
		{SleepFraction: 0.1, SleepWindow: -20},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

// TestFaultSpecEffectiveScheduleSalt pins the adversary-stream derivation: an
// explicit ScheduleSalt wins, and the zero default lands next to the
// victim-assignment salt without colliding with it.
func TestFaultSpecEffectiveScheduleSalt(t *testing.T) {
	cases := []struct {
		spec FaultSpec
		want uint64
	}{
		{FaultSpec{}, 1},
		{FaultSpec{Salt: 7}, 8},
		{FaultSpec{Salt: 7, ScheduleSalt: 99}, 99},
		{FaultSpec{ScheduleSalt: 3}, 3},
	}
	for _, c := range cases {
		if got := c.spec.EffectiveScheduleSalt(); got != c.want {
			t.Errorf("EffectiveScheduleSalt(%+v) = %d, want %d", c.spec, got, c.want)
		}
		if c.spec.ScheduleSalt == 0 && c.spec.EffectiveScheduleSalt() == c.spec.Salt {
			t.Errorf("default schedule salt collides with the fault salt %d", c.spec.Salt)
		}
	}
}

// TestFaultSpecAssignEdges property-checks the two boundary geometries of the
// victim assignment across colony sizes and stream states.
//
// Window 1: every scheduled event lands on its lane's single eligible round —
// all crashes at round 1, all wakes at round 2 — and Intn(1) still consumes
// its draw, so the stream position stays the canonical one.
//
// Fractions summing to exactly 1: the floors can leave at most two ants
// unassigned (one per fractional floor boundary); with fractions that divide
// n exactly, NO ant stays non-faulty, and the three classes still partition
// the colony.
func TestFaultSpecAssignEdges(t *testing.T) {
	for _, n := range []int{4, 37, 200, 1024} {
		for _, seed := range []uint64{1, 42, 2015} {
			crash := make([]int32, n)
			wake := make([]int32, n)
			byz := make([]uint8, n)
			perm := make([]int32, n)

			window1 := FaultSpec{CrashFraction: 0.5, CrashWindow: 1, SleepFraction: 0.5, SleepWindow: 1, Salt: 3}
			window1.Assign(n, rng.New(seed).Split(window1.Salt), crash, wake, byz, perm)
			for i := 0; i < n; i++ {
				if crash[i] != 0 && crash[i] != 1 {
					t.Fatalf("n=%d seed=%d ant %d: crash round %d, want 1 under window 1", n, seed, i, crash[i])
				}
				if wake[i] != 0 && wake[i] != 2 {
					t.Fatalf("n=%d seed=%d ant %d: wake round %d, want 2 under window 1", n, seed, i, wake[i])
				}
			}

			// 1/2 + 1/4 + 1/4 divides every n in the sweep's 4|n cases exactly;
			// for the odd n the floors leave at most 2 ants unassigned.
			sum1 := FaultSpec{CrashFraction: 0.5, CrashWindow: 8, ByzantineFraction: 0.25, SleepFraction: 0.25, SleepWindow: 8, Salt: 3}
			if err := sum1.Validate(); err != nil {
				t.Fatalf("fractions summing to exactly 1 must validate: %v", err)
			}
			sum1.Assign(n, rng.New(seed).Split(sum1.Salt), crash, wake, byz, perm)
			unassigned := 0
			for i := 0; i < n; i++ {
				classes := 0
				if crash[i] > 0 {
					classes++
				}
				if byz[i] != 0 {
					classes++
				}
				if wake[i] > 0 {
					classes++
				}
				if classes > 1 {
					t.Fatalf("n=%d seed=%d ant %d: %d fault classes, want at most 1", n, seed, i, classes)
				}
				if classes == 0 {
					unassigned++
				}
			}
			if n%4 == 0 && unassigned != 0 {
				t.Errorf("n=%d seed=%d: %d ants unassigned under fractions summing to 1, want 0", n, seed, unassigned)
			}
			if unassigned > 2 {
				t.Errorf("n=%d seed=%d: %d ants unassigned, floors can strand at most 2", n, seed, unassigned)
			}
		}
	}
}

// TestFaultSpecAssign checks the canonical victim assignment: victim counts
// are the floors of fraction*n, the three classes are disjoint, scheduled
// rounds respect their windows (crash >= 1, wake >= 2), and the assignment is
// a pure function of the stream (same source state, same columns).
func TestFaultSpecAssign(t *testing.T) {
	const n = 200
	spec := FaultSpec{
		CrashFraction:     0.15,
		CrashWindow:       30,
		ByzantineFraction: 0.1,
		SleepFraction:     0.2,
		SleepWindow:       25,
		Salt:              7,
	}
	crash := make([]int32, n)
	wake := make([]int32, n)
	byz := make([]uint8, n)
	perm := make([]int32, n)
	spec.Assign(n, rng.New(42).Split(spec.Salt), crash, wake, byz, perm)

	nCrash, nByz, nSleep := 0, 0, 0
	for i := 0; i < n; i++ {
		classes := 0
		if crash[i] > 0 {
			nCrash++
			classes++
			if crash[i] < 1 || crash[i] > int32(spec.CrashWindow) {
				t.Errorf("ant %d: crash round %d outside [1, %d]", i, crash[i], spec.CrashWindow)
			}
		}
		if byz[i] != 0 {
			nByz++
			classes++
		}
		if wake[i] > 0 {
			nSleep++
			classes++
			if wake[i] < 2 || wake[i] > int32(spec.SleepWindow)+1 {
				t.Errorf("ant %d: wake round %d outside [2, %d]", i, wake[i], spec.SleepWindow+1)
			}
		}
		if classes > 1 {
			t.Errorf("ant %d assigned to %d fault classes, want at most 1", i, classes)
		}
	}
	if want := int(spec.CrashFraction * n); nCrash != want {
		t.Errorf("crash victims = %d, want %d", nCrash, want)
	}
	if want := int(spec.ByzantineFraction * n); nByz != want {
		t.Errorf("byzantine victims = %d, want %d", nByz, want)
	}
	if want := int(spec.SleepFraction * n); nSleep != want {
		t.Errorf("sleep victims = %d, want %d", nSleep, want)
	}

	// Determinism: a fresh source in the same state reproduces the columns.
	crash2 := make([]int32, n)
	wake2 := make([]int32, n)
	byz2 := make([]uint8, n)
	spec.Assign(n, rng.New(42).Split(spec.Salt), crash2, wake2, byz2, perm)
	for i := 0; i < n; i++ {
		if crash[i] != crash2[i] || wake[i] != wake2[i] || byz[i] != byz2[i] {
			t.Fatalf("ant %d: assignment not reproducible from the same stream", i)
		}
	}
}

// TestFaultSpecAssignDefaultWindows pins that zero windows select
// DefaultFaultWindow for both crash and wake scheduling.
func TestFaultSpecAssignDefaultWindows(t *testing.T) {
	const n = 4096
	spec := FaultSpec{CrashFraction: 0.5, SleepFraction: 0.5}
	crash := make([]int32, n)
	wake := make([]int32, n)
	byz := make([]uint8, n)
	perm := make([]int32, n)
	spec.Assign(n, rng.New(1).Split(9), crash, wake, byz, perm)
	maxCrash, maxWake := int32(0), int32(0)
	for i := 0; i < n; i++ {
		if crash[i] > maxCrash {
			maxCrash = crash[i]
		}
		if wake[i] > maxWake {
			maxWake = wake[i]
		}
	}
	if maxCrash > DefaultFaultWindow {
		t.Errorf("crash round %d exceeds the default window %d", maxCrash, DefaultFaultWindow)
	}
	if maxWake > DefaultFaultWindow+1 {
		t.Errorf("wake round %d exceeds the default window bound %d", maxWake, DefaultFaultWindow+1)
	}
	// With 2048 draws over a 64-round window, every round should be hit;
	// a much smaller spread would mean the default is not being applied.
	if maxCrash != DefaultFaultWindow {
		t.Errorf("crash rounds top out at %d, want the default window %d to be reached", maxCrash, DefaultFaultWindow)
	}
	if maxWake != DefaultFaultWindow+1 {
		t.Errorf("wake rounds top out at %d, want the default bound %d to be reached", maxWake, DefaultFaultWindow+1)
	}
}

// TestFaultSpecAssignAllocationFree pins the doc promise that Assign performs
// no allocations (it runs inside lane.reset on the replicate hot path).
func TestFaultSpecAssignAllocationFree(t *testing.T) {
	const n = 256
	spec := FaultSpec{CrashFraction: 0.2, ByzantineFraction: 0.1, SleepFraction: 0.2, Salt: 5}
	crash := make([]int32, n)
	wake := make([]int32, n)
	byz := make([]uint8, n)
	perm := make([]int32, n)
	src := rng.New(3).Split(spec.Salt)
	allocs := testing.AllocsPerRun(100, func() {
		spec.Assign(n, src, crash, wake, byz, perm)
	})
	if allocs != 0 {
		t.Errorf("Assign allocated %v per call, want 0", allocs)
	}
}
