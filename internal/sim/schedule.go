package sim

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
)

// This file is the engine half of the adaptive-adversary subsystem: the
// FaultSchedule contract both engines share, the batch lane's end-of-round
// mutation pass (applySchedule) and the crash-recovery restart (restartAnt),
// plus the scalar engine's RoundHook plumbing. The faults package supplies
// the other half — the scalar wrapper layer and the stock schedules — and the
// cross-engine differential harness in internal/algo pins the two
// bit-identical.
//
// Timing contract. A schedule observes and mutates at the END of round r:
// after the round's actions resolved and every observe folded, but before the
// round's convergence census is taken. Both engines honor the same point —
// the batch lane calls applySchedule as the last step of stepGeneral, the
// scalar engine calls its RoundHook after the observe loop — so a crash
// scheduled "now" removes the ant from the census of the round it was
// decided in, under either engine. Static fault events (FaultSpec fractions)
// keep their PRE-round semantics from PR 6; the two layers compose.
//
// Draw contract. A schedule consumes randomness only from the adv source it
// is handed — a dedicated adversary stream split off the replicate root at
// EffectiveScheduleSalt(), touched by nothing else — so a randomized schedule
// perturbs no simulation stream and stays bit-identical across engines by
// construction. Draws must be unconditional or gated on ColonyView state
// (which the engines agree on), never on engine internals.

// AntStatus is an ant's fault classification as a schedule observes it.
type AntStatus uint8

const (
	// AntLive: the ant runs its inner algorithm (it may have woken or been
	// restarted earlier; its program clock restarted then).
	AntLive AntStatus = iota
	// AntSleeping: an idle-reserve ant waiting at home for its static wake
	// round. Counted by the census.
	AntSleeping
	// AntCrashed: a crashed ant (static schedule or FaultCrash). Excluded
	// from the census; eligible for FaultRestart.
	AntCrashed
	// AntByzantine: a luring adversary. Excluded from the census; eligible
	// for FaultRelocate.
	AntByzantine
)

// ColonyView is the per-round snapshot a FaultSchedule observes: the round
// number, the commitment census, the decided count and the alive/faulty
// tallies, plus per-ant status and commitment. Both engines present the same
// values at the same observation point, so a schedule keyed on the view is
// engine-agnostic. Implementations are only valid during the Step call they
// are passed to; schedules must not retain them.
type ColonyView interface {
	// Round is the 1-based round that just resolved.
	Round() int
	// N is the colony size, K the number of candidate nests.
	N() int
	K() int
	// Alive is the census total: n minus crashed minus Byzantine ants
	// (sleepers count). Faulty is its complement, Crashed the crashed ants
	// alone (restart candidates).
	Alive() int
	Faulty() int
	Crashed() int
	// Decided is the number of census ants in a decided state, or -1 for
	// non-deciding algorithms (mirroring core.Census.Decided).
	Decided() int
	// Census is the number of census ants committed to nest (Home = 0 is
	// the uncommitted pool). Out-of-range nests report 0.
	Census(nest NestID) int
	// Quality is the environment's quality of nest; Home and out-of-range
	// nests report 0.
	Quality(nest NestID) float64
	// Status is ant i's fault classification.
	Status(i int) AntStatus
	// Committed is ant i's committed nest (Home when uncommitted, sleeping,
	// crashed or Byzantine).
	Committed(i int) NestID
}

// FaultOpKind enumerates the mutations a schedule can request.
type FaultOpKind uint8

const (
	// FaultCrash crashes a live or sleeping ant now: it leaves the census at
	// the end of this round and wanders to its last known nest from the next.
	FaultCrash FaultOpKind = iota
	// FaultRestart revives a crashed ant: it rejoins the census now and
	// re-enters its algorithm's round-1 state next round, with a pristine
	// agent stream — exactly like a sleeper waking.
	FaultRestart
	// FaultRelocate re-aims a Byzantine lurer: from the next round it
	// actively recruits for Nest (which must be a candidate nest, 1..k).
	FaultRelocate
)

// FaultOp is one requested mutation. Nest is only read for FaultRelocate.
type FaultOp struct {
	Kind FaultOpKind
	Ant  int32
	Nest NestID
}

// FaultSchedule is an adaptive adversary: once per round, after the round
// resolves, Step observes the colony and appends the mutations it wants to
// ops (passed sliced to length 0, capacity reused across rounds). Ops are
// applied in the returned order; an op naming an ineligible ant (crashing a
// corpse, restarting a live ant, relocating a non-Byzantine) or an
// out-of-range nest poisons the run with an error naming the schedule.
//
// One FaultSchedule instance serves one replicate: FaultSpec.NewSchedule is
// called per replicate reset, so stateful schedules (budgets, last targets)
// start fresh and replicates stay independent. Draws come only from adv (see
// the package comment's draw contract).
type FaultSchedule interface {
	Name() string
	Step(v ColonyView, adv *rng.Source, ops []FaultOp) []FaultOp
}

// RoundHook is the scalar engine's end-of-round callback: invoked after the
// observe loop of each round, before the caller's convergence predicate. A
// returned error poisons the engine. The faults package's adaptive controller
// is the one producer; the engine discovers it through RoundHooked.
type RoundHook func(e *Engine, round int) error

// RoundHooked is implemented by agents that carry an engine-level round hook
// (the adaptive fault controller's wrapped ants). Engine construction scans
// the colony and installs the first hook found.
type RoundHooked interface {
	RoundHook() RoundHook
}

// laneView adapts a batch lane to ColonyView. It is a named conversion of the
// lane itself — (*laneView)(ln) — so presenting the view to a schedule boxes
// no value and allocates nothing.
type laneView lane

var _ ColonyView = (*laneView)(nil)

// Round implements ColonyView.
//
//hh:hotpath
func (v *laneView) Round() int { return (*lane)(v).round }

// N implements ColonyView.
//
//hh:hotpath
func (v *laneView) N() int { return (*lane)(v).n }

// K implements ColonyView.
//
//hh:hotpath
func (v *laneView) K() int { return (*lane)(v).k }

// Alive implements ColonyView.
//
//hh:hotpath
func (v *laneView) Alive() int { return (*lane)(v).alive }

// Faulty implements ColonyView.
//
//hh:hotpath
func (v *laneView) Faulty() int { ln := (*lane)(v); return ln.n - ln.alive }

// Crashed implements ColonyView.
//
//hh:hotpath
func (v *laneView) Crashed() int { return (*lane)(v).nCrashed }

// Decided implements ColonyView.
//
//hh:hotpath
func (v *laneView) Decided() int {
	ln := (*lane)(v)
	if !ln.decides {
		return -1
	}
	return ln.finals
}

// Census implements ColonyView.
//
//hh:hotpath
func (v *laneView) Census(nest NestID) int {
	ln := (*lane)(v)
	if nest < 0 || int(nest) >= len(ln.commit) {
		return 0
	}
	return ln.commit[nest]
}

// Quality implements ColonyView.
//
//hh:hotpath
func (v *laneView) Quality(nest NestID) float64 {
	ln := (*lane)(v)
	if nest < 1 || int(nest) > ln.k {
		return 0
	}
	return ln.qual[nest]
}

// Status implements ColonyView.
//
//hh:hotpath
func (v *laneView) Status(i int) AntStatus {
	ln := (*lane)(v)
	switch ln.state[i] {
	case ln.crashSt:
		return AntCrashed
	case ln.byzSrchSt, ln.byzRecrSt:
		return AntByzantine
	case ln.sleepSt:
		return AntSleeping
	}
	return AntLive
}

// Committed implements ColonyView.
//
//hh:hotpath
func (v *laneView) Committed(i int) NestID {
	ln := (*lane)(v)
	switch ln.state[i] {
	case ln.crashSt, ln.byzSrchSt, ln.byzRecrSt:
		return Home
	}
	return ln.nest[i]
}

// applySchedule runs the lane's FaultSchedule at the end of a resolved round
// and applies the returned mutations in order, in a sequential ant-order-free
// pass (ops apply one by one; no shard fans out, so worker/shard counts
// cannot reorder anything). The census tallies (commit, alive, nCrashed,
// finals) are maintained incrementally so the round's census — taken right
// after — sees the mutations, matching the scalar hook's position.
//
//hh:hotpath
//hh:draws schedule draws come only from the dedicated adversary stream (schedSrc); no simulation stream is touched
func (ln *lane) applySchedule() error {
	//hh:allocok pointer-shaped view: the interface word holds *laneView, no heap allocation
	ops := ln.sched.Step((*laneView)(ln), &ln.schedSrc, ln.schedOps[:0])
	ln.schedOps = ops[:0] // keep the (possibly grown) buffer for next round
	state := ln.state
	for _, op := range ops {
		i := int(op.Ant)
		if i < 0 || i >= ln.n {
			return fmt.Errorf("schedule %q: ant %d out of range 0..%d", ln.sched.Name(), i, ln.n-1)
		}
		switch op.Kind {
		case FaultCrash:
			switch state[i] {
			case ln.crashSt:
				return fmt.Errorf("schedule %q: crash(%d): ant already crashed", ln.sched.Name(), i)
			case ln.byzSrchSt, ln.byzRecrSt:
				return fmt.Errorf("schedule %q: crash(%d): ant is Byzantine", ln.sched.Name(), i)
			}
			ln.commit[ln.nest[i]]--
			ln.alive--
			ln.nCrashed++
			ln.finals -= int(ln.final[state[i]])
			state[i] = ln.crashSt
			// lastNest keeps its value: the corpse wanders to the last nest
			// the ant knew, exactly like a statically scheduled crash.
		case FaultRestart:
			if state[i] != ln.crashSt {
				return fmt.Errorf("schedule %q: restart(%d): ant is not crashed", ln.sched.Name(), i)
			}
			ln.restartAnt(i)
		case FaultRelocate:
			if state[i] != ln.byzSrchSt && state[i] != ln.byzRecrSt {
				return fmt.Errorf("schedule %q: relocate(%d): ant is not Byzantine", ln.sched.Name(), i)
			}
			if op.Nest < 1 || int(op.Nest) > ln.k {
				return fmt.Errorf("schedule %q: relocate(%d, %d): nest out of range 1..%d", ln.sched.Name(), i, op.Nest, ln.k)
			}
			ln.nest[i] = op.Nest
			state[i] = ln.byzRecrSt
		default:
			return fmt.Errorf("schedule %q: unknown fault op kind %d", ln.sched.Name(), op.Kind)
		}
	}
	return nil
}

// restartAnt revives crashed ant i into its program's initial state with a
// pristine register file and a freshly re-seeded agent stream — the exact
// state resetShard gave it at replicate start (SplitInto never advances the
// parent, so re-splitting reproduces the original stream bit for bit, and
// the ApproxN ñ re-draw consumes the same two words the scalar rebuild's
// builder draws). The ant rejoins the census immediately and emits from the
// initial state next round, re-entering the algorithm's round-1 clock like a
// waking sleeper.
//
//hh:coldpath restart events are sparse — O(requested ops), never O(n) per round, like parkErr's error path
func (ln *lane) restartAnt(i int) {
	if ln.antRNG {
		ln.phAgents.SplitInto(uint64(i), &ln.antSrc[i])
	}
	if ln.paramI != nil {
		ln.paramI[i] = 0
	}
	if ln.paramF != nil {
		nF := float64(ln.n)
		ln.paramF[i] = nF
		if delta := ln.prog.Params.NEstDelta; delta > 0 {
			// Mirrors resetShard's ñ seeding: the scalar rebuild's builder
			// draws the same estimate from the same pristine stream.
			ln.paramF[i] = nF * (1 + (2*ln.antSrc[i].Float64()-1)*delta)
		}
	}
	st := ln.prog.Init
	if split := ln.prog.InitSplit; split > 0 && i >= split {
		st = ln.prog.InitRest
	}
	ln.state[i] = st
	ln.nest[i] = Home
	ln.count[i] = 0
	ln.quality[i] = 0
	ln.nestT[i] = Home
	ln.countT[i] = 0
	ln.lastNest[i] = Home
	ln.alive++
	ln.nCrashed--
	ln.commit[Home]++
	ln.finals += int(ln.final[st])
	// The count column is no longer uniform: invalidate the converged-tail
	// skip so next round's fold refills it.
	ln.countUni = -1
}
