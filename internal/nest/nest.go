// Package nest models candidate nest sites and the approximate ways real
// Temnothorax ants perceive them. It provides:
//
//   - physical nest attributes and the weighted quality function biologists
//     report (cavity area, entrance width, darkness; Healey & Pratt 2008,
//     Sasaki & Pratt 2013 — the paper's [15] and [26]),
//   - noisy quality assessors (unbiased Gaussian noise and binary flips,
//     modeling the paper's remark that individual assessments are imprecise
//     and occasionally irrational [25]),
//   - noisy population estimators, including the encounter-rate mechanism
//     Temnothorax uses for quorum sensing (Pratt 2005, the paper's [22]),
//   - a Buffon's-needle area estimator: ants estimate nest area by random
//     walking and counting self-intersections (Mallon & Franks 2000, the
//     paper's [20]).
//
// The §6 "approximate counting, nest assessment" extension of the paper is
// built from these pieces: algorithms swap the exact environment values for
// estimator outputs.
package nest

import (
	"fmt"
	"math"

	"github.com/gmrl/househunt/internal/rng"
)

// Site is a candidate nest's physical description. Attribute ranges follow
// the conventions of the Temnothorax literature rescaled to [0,1]: larger is
// better for Area and Darkness, smaller is better for Entrance.
type Site struct {
	// Area is the cavity floor area, normalized to [0,1].
	Area float64
	// Entrance is the entrance width, normalized to [0,1].
	Entrance float64
	// Darkness is the cavity light occlusion, normalized to [0,1].
	Darkness float64
}

// QualityWeights encodes the lexicographic-ish priorities ants place on nest
// attributes as a weighted linear score. Weights should be non-negative; they
// are normalized by Quality.
type QualityWeights struct {
	Area     float64
	Entrance float64
	Darkness float64
}

// DefaultWeights approximates the attribute priorities reported for
// T. curvispinosus: darkness dominates, then entrance size, then area.
func DefaultWeights() QualityWeights {
	return QualityWeights{Area: 0.2, Entrance: 0.3, Darkness: 0.5}
}

// Quality maps a site to a scalar quality in [0,1] under the given weights.
// An all-zero weight vector is rejected.
func Quality(s Site, w QualityWeights) (float64, error) {
	if w.Area < 0 || w.Entrance < 0 || w.Darkness < 0 {
		return 0, fmt.Errorf("nest: negative quality weight %+v", w)
	}
	total := w.Area + w.Entrance + w.Darkness
	if total == 0 {
		return 0, fmt.Errorf("nest: all-zero quality weights")
	}
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	q := (w.Area*clamp(s.Area) + w.Entrance*(1-clamp(s.Entrance)) + w.Darkness*clamp(s.Darkness)) / total
	return q, nil
}

// Assessor produces a (possibly noisy) perceived quality from a true quality.
// Implementations must be unbiased or document their bias; the paper's §6
// resilience claim is about unbiased estimators.
type Assessor interface {
	// Assess returns the perceived quality of a nest with true quality q,
	// drawing any randomness from src.
	Assess(q float64, src *rng.Source) float64
	// Name identifies the assessor in experiment tables.
	Name() string
}

// ExactAssessor returns the true quality unchanged.
type ExactAssessor struct{}

var _ Assessor = ExactAssessor{}

// Assess implements Assessor.
func (ExactAssessor) Assess(q float64, _ *rng.Source) float64 { return q }

// Name implements Assessor.
func (ExactAssessor) Name() string { return "exact" }

// GaussianAssessor adds zero-mean Gaussian noise with the given standard
// deviation, clamping the result to [0,1]. Clamping introduces a small bias
// at the boundaries; experiments quantify its effect.
type GaussianAssessor struct {
	Sigma float64
}

var _ Assessor = GaussianAssessor{}

// Assess implements Assessor.
func (g GaussianAssessor) Assess(q float64, src *rng.Source) float64 {
	v := q + src.NormFloat64()*g.Sigma
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Name implements Assessor.
func (g GaussianAssessor) Name() string { return fmt.Sprintf("gaussian(σ=%g)", g.Sigma) }

// FlipAssessor misjudges a binary nest with probability P: a good nest is
// perceived bad and vice versa. This models the individual irrationality
// observed by Sasaki & Pratt (the paper's [25]).
type FlipAssessor struct {
	P float64
}

var _ Assessor = FlipAssessor{}

// Assess implements Assessor.
func (f FlipAssessor) Assess(q float64, src *rng.Source) float64 {
	if src.Bernoulli(f.P) {
		return 1 - q
	}
	return q
}

// Name implements Assessor.
func (f FlipAssessor) Name() string { return fmt.Sprintf("flip(p=%g)", f.P) }

// CountEstimator produces a (possibly noisy) perceived population from a true
// population.
type CountEstimator interface {
	// Estimate returns the perceived number of ants given the true count and
	// the colony size n.
	Estimate(count, n int, src *rng.Source) int
	// Name identifies the estimator in experiment tables.
	Name() string
}

// ExactCounter reports the true count.
type ExactCounter struct{}

var _ CountEstimator = ExactCounter{}

// Estimate implements CountEstimator.
func (ExactCounter) Estimate(count, _ int, _ *rng.Source) int { return count }

// Name implements CountEstimator.
func (ExactCounter) Name() string { return "exact" }

// RelativeNoiseCounter multiplies the true count by (1 + N(0, Sigma²)),
// rounding to the nearest non-negative integer: an unbiased multiplicative
// error model.
type RelativeNoiseCounter struct {
	Sigma float64
}

var _ CountEstimator = RelativeNoiseCounter{}

// Estimate implements CountEstimator.
func (r RelativeNoiseCounter) Estimate(count, _ int, src *rng.Source) int {
	v := float64(count) * (1 + src.NormFloat64()*r.Sigma)
	if v < 0 {
		return 0
	}
	return int(math.Round(v))
}

// Name implements CountEstimator.
func (r RelativeNoiseCounter) Name() string { return fmt.Sprintf("relative(σ=%g)", r.Sigma) }

// EncounterRateCounter simulates quorum sensing by encounter rate (Pratt
// 2005): the assessing ant spends Probes time-steps in the nest; in each step
// it bumps into another ant with probability count/(count+Volume). The count
// estimate inverts the observed encounter frequency. Volume calibrates how
// crowded the cavity feels; larger volumes mean fewer encounters for the same
// population.
type EncounterRateCounter struct {
	Probes int     // sensing steps per visit; default 32 if <= 0
	Volume float64 // effective cavity volume; default 8 if <= 0
}

var _ CountEstimator = EncounterRateCounter{}

// Estimate implements CountEstimator.
func (e EncounterRateCounter) Estimate(count, _ int, src *rng.Source) int {
	probes := e.Probes
	if probes <= 0 {
		probes = 32
	}
	volume := e.Volume
	if volume <= 0 {
		volume = 8
	}
	if count <= 0 {
		return 0
	}
	pEncounter := float64(count) / (float64(count) + volume)
	hits := src.Binomial(probes, pEncounter)
	if hits == probes {
		// Saturated sensing: every probe hit an ant. The inversion below
		// would divide by zero; report the largest resolvable estimate.
		hits = probes - 1
	}
	fHat := float64(hits) / float64(probes)
	est := volume * fHat / (1 - fHat)
	if hits > 0 && est < 1 {
		// The ant met somebody: the nest cannot be read as empty even when a
		// tiny calibration volume collapses the inverted estimate.
		return 1
	}
	return int(math.Round(est))
}

// Name implements CountEstimator.
func (e EncounterRateCounter) Name() string {
	return fmt.Sprintf("encounter(probes=%d,vol=%g)", e.Probes, e.Volume)
}
