package sim

import (
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/trace"
)

// scriptedAgent replays a fixed list of actions and records outcomes. After
// the script is exhausted it repeats its final action.
type scriptedAgent struct {
	script   []Action
	outcomes []Outcome
}

func (s *scriptedAgent) Act(round int) Action {
	idx := round - 1
	if idx >= len(s.script) {
		idx = len(s.script) - 1
	}
	return s.script[idx]
}

func (s *scriptedAgent) Observe(_ int, out Outcome) {
	s.outcomes = append(s.outcomes, out)
}

func scripted(actions ...Action) *scriptedAgent { return &scriptedAgent{script: actions} }

func agentsOf(ss ...*scriptedAgent) []Agent {
	out := make([]Agent, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func TestNewEngineValidation(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1})
	if _, err := New(Environment{}, agentsOf(scripted(Search()))); err == nil {
		t.Fatal("empty environment accepted")
	}
	if _, err := New(env, nil); err == nil {
		t.Fatal("no agents accepted")
	}
	if _, err := New(env, []Agent{nil}); err == nil {
		t.Fatal("nil agent accepted")
	}
	tr := trace.New(5)
	if _, err := New(env, agentsOf(scripted(Search())), WithTrace(tr)); err == nil {
		t.Fatal("mismatched trace accepted")
	}
}

func TestInitialState(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1, 0})
	e, err := New(env, agentsOf(scripted(Search()), scripted(Search()), scripted(Search())))
	if err != nil {
		t.Fatal(err)
	}
	if e.Round() != 0 || e.N() != 3 || e.K() != 2 {
		t.Fatalf("initial shape wrong: round=%d n=%d k=%d", e.Round(), e.N(), e.K())
	}
	if e.Count(Home) != 3 {
		t.Fatalf("everyone should start at home: %v", e.Counts())
	}
	for a := 0; a < 3; a++ {
		if e.Location(a) != Home {
			t.Fatalf("ant %d not at home initially", a)
		}
		if !e.Visited(a, Home) {
			t.Fatal("home should count as visited")
		}
		if e.Visited(a, 1) || e.Visited(a, 2) {
			t.Fatal("candidate nests should start unvisited")
		}
	}
}

func TestSearchMovesAndCounts(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1, 1, 1, 1})
	const n = 400
	agents := make([]Agent, n)
	for i := range agents {
		agents[i] = scripted(Search())
	}
	e, err := New(env, agents, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	counts := e.Counts()
	total := 0
	for i, c := range counts {
		if i == 0 && c != 0 {
			t.Fatalf("home should be empty after universal search: %v", counts)
		}
		total += c
	}
	if total != n {
		t.Fatalf("population not conserved: %v", counts)
	}
	// Roughly uniform: each nest should have ~100 ants.
	for i := 1; i <= 4; i++ {
		if counts[i] < 50 || counts[i] > 150 {
			t.Fatalf("search distribution suspicious: %v", counts)
		}
	}
	// Outcomes must carry the nest id, its quality, and the END-of-round count.
	for a := 0; a < n; a++ {
		out := e.Outcome(a)
		if out.Nest < 1 || int(out.Nest) > 4 {
			t.Fatalf("ant %d searched to invalid nest %d", a, out.Nest)
		}
		if out.Quality != 1 {
			t.Fatalf("ant %d search quality = %v", a, out.Quality)
		}
		if out.Count != counts[out.Nest] {
			t.Fatalf("ant %d search count %d != end-of-round %d", a, out.Count, counts[out.Nest])
		}
		if !e.Visited(a, out.Nest) {
			t.Fatalf("ant %d did not mark searched nest visited", a)
		}
	}
}

func TestGoRequiresVisit(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1, 1})
	e, err := New(env, agentsOf(scripted(Goto(1))))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err == nil {
		t.Fatal("go to unvisited nest accepted in strict mode")
	}
	if e.Err() == nil {
		t.Fatal("engine not poisoned after protocol violation")
	}
	if err := e.Step(); err == nil {
		t.Fatal("poisoned engine accepted another step")
	}
	// Non-strict mode allows it (documented escape hatch for benchmarks).
	e2, err := New(env, agentsOf(scripted(Goto(1))), WithStrict(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Step(); err != nil {
		t.Fatalf("non-strict go rejected: %v", err)
	}
}

func TestGoOutOfRangeAlwaysRejected(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1})
	for _, nest := range []NestID{0, -1, 2} {
		e, err := New(env, agentsOf(scripted(Goto(nest))), WithStrict(false))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); err == nil {
			t.Fatalf("go(%d) accepted", nest)
		}
	}
}

func TestRecruitPreconditions(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1, 1})
	// Active recruiting for the home nest is always invalid.
	e, err := New(env, agentsOf(scripted(Recruit(true, Home))))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err == nil {
		t.Fatal("recruit(1, home) accepted")
	}
	// Passive recruit with nest 0 ("waiting, knows nothing") is valid.
	e2, err := New(env, agentsOf(scripted(Recruit(false, Home))))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Step(); err != nil {
		t.Fatalf("recruit(0, home) rejected: %v", err)
	}
	// Recruit for an unvisited candidate nest violates §2 in strict mode.
	e3, err := New(env, agentsOf(scripted(Recruit(true, 1))))
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Step(); err == nil {
		t.Fatal("recruit(1, unvisited) accepted in strict mode")
	}
}

func TestRecruitmentTeachesNest(t *testing.T) {
	t.Parallel()
	// Ant 0 searches (finds some nest w), then actively recruits for it every
	// round. Ant 1 stays passive at home. Eventually ant 1 must be captured,
	// learn w, and be licensed to go(w).
	env := MustEnvironment([]float64{1, 1, 1})
	recruiterScript := []Action{Search()}
	passiveScript := []Action{Recruit(false, Home)}
	recruiter := &dynamicAgent{
		act: func(round int, self *dynamicAgent) Action {
			if round == 1 {
				return Search()
			}
			return Recruit(true, self.nest)
		},
	}
	passive := &dynamicAgent{
		act: func(round int, self *dynamicAgent) Action {
			if self.nest != Home {
				return Goto(self.nest) // licensed only if recruitment taught it
			}
			return Recruit(false, Home)
		},
	}
	_ = recruiterScript
	_ = passiveScript
	e, err := New(env, []Agent{recruiter, passive}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50 && passive.nest == Home; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if passive.nest == Home {
		t.Fatal("passive ant was never recruited in 50 rounds")
	}
	if passive.nest != recruiter.nest {
		t.Fatalf("recruited ant learned %d, recruiter advertises %d", passive.nest, recruiter.nest)
	}
	// One more step: the passive ant issues go(learned nest); strict mode must accept.
	if err := e.Step(); err != nil {
		t.Fatalf("go after recruitment rejected: %v", err)
	}
	if e.Location(1) != passive.nest {
		t.Fatalf("ant 1 at %d, want %d", e.Location(1), passive.nest)
	}
}

// dynamicAgent lets tests express small reactive behaviours. It tracks the
// last learned nest the way the paper's ants track their committed nest.
type dynamicAgent struct {
	act  func(round int, self *dynamicAgent) Action
	nest NestID
	last Outcome
}

func (d *dynamicAgent) Act(round int) Action { return d.act(round, d) }

func (d *dynamicAgent) Observe(_ int, out Outcome) {
	d.last = out
	switch {
	case out.Recruited:
		d.nest = out.Nest
	case d.nest == Home && out.Nest != Home:
		d.nest = out.Nest
	}
}

func TestRecruitOutcomeCounts(t *testing.T) {
	t.Parallel()
	// 4 ants all passive-recruiting: c(0,r) = 4 must be reported to each.
	env := MustEnvironment([]float64{1})
	agents := agentsOf(
		scripted(Recruit(false, Home)), scripted(Recruit(false, Home)),
		scripted(Recruit(false, Home)), scripted(Recruit(false, Home)),
	)
	e, err := New(env, agents)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if e.Count(Home) != 4 {
		t.Fatalf("home count = %d, want 4", e.Count(Home))
	}
	for a := 0; a < 4; a++ {
		out := e.Outcome(a)
		if out.Count != 4 {
			t.Fatalf("ant %d reported home count %d, want 4", a, out.Count)
		}
		if out.Recruited || out.Succeeded {
			t.Fatalf("all-passive round produced recruitment: %+v", out)
		}
		if out.Nest != Home {
			t.Fatalf("passive non-recruited ant's nest echo = %d, want home", out.Nest)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	t.Parallel()
	build := func() *Engine {
		env := MustEnvironment([]float64{1, 0, 1, 0})
		const n = 64
		agents := make([]Agent, n)
		for i := range agents {
			src := rng.New(1000).Split(uint64(i))
			agents[i] = &randomWalker{src: src}
		}
		e, err := New(env, agents, WithSeed(77))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := build(), build()
	for r := 0; r < 30; r++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
		for i := range a.counts {
			if a.counts[i] != b.counts[i] {
				t.Fatalf("round %d: executions diverged: %v vs %v", r+1, a.Counts(), b.Counts())
			}
		}
	}
}

// randomWalker is a probabilistic agent used by determinism and equivalence
// tests: it searches, then mixes go/recruit choices from its own stream.
type randomWalker struct {
	src  *rng.Source
	nest NestID
}

func (w *randomWalker) Act(round int) Action {
	if round == 1 || w.nest == Home {
		return Search()
	}
	switch w.src.Intn(3) {
	case 0:
		return Goto(w.nest)
	case 1:
		return Recruit(true, w.nest)
	default:
		return Recruit(false, w.nest)
	}
}

func (w *randomWalker) Observe(_ int, out Outcome) {
	if out.Nest != Home {
		w.nest = out.Nest
	}
}

func TestRunUntil(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1})
	e, err := New(env, agentsOf(scripted(Search(), Goto(1))))
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := e.Run(100, func(e *Engine) bool { return e.Round() >= 5 })
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Fatalf("Run stopped at %d, want 5", rounds)
	}
	if _, err := e.Run(0, nil); err == nil {
		t.Fatal("Run with zero maxRounds accepted")
	}
	rounds, err = e.Run(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 8 {
		t.Fatalf("Run to maxRounds stopped at %d, want 8", rounds)
	}
}

func TestTraceWiring(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1, 1})
	tr := trace.New(2, trace.WithEvents(0))
	const n = 16
	agents := make([]Agent, n)
	for i := range agents {
		src := rng.New(55).Split(uint64(i))
		agents[i] = &randomWalker{src: src}
	}
	e, err := New(env, agents, WithSeed(4), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 20 {
		t.Fatalf("trace rounds = %d, want 20", tr.Len())
	}
	for _, rec := range tr.Rounds() {
		total := 0
		for _, p := range rec.Populations {
			total += p
		}
		if total != n {
			t.Fatalf("round %d trace populations sum to %d, want %d", rec.Round, total, n)
		}
	}
	if tr.EventCount(trace.EventRecruitSuccess)+tr.EventCount(trace.EventSelfRecruit) == 0 {
		t.Fatal("no recruitment events recorded in 20 mixed rounds")
	}
}

func TestMetricsWiring(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1})
	e, err := New(env, agentsOf(scripted(Search(), Recruit(true, 1)), scripted(Search(), Recruit(false, 1))))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Metrics().String()
	for _, want := range []string{"engine.rounds", "engine.actions.search", "engine.actions.recruit"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("metrics missing %q:\n%s", want, snap)
		}
	}
	if e.Metrics().Counter("engine.rounds").Value() != 4 {
		t.Fatalf("rounds counter = %d", e.Metrics().Counter("engine.rounds").Value())
	}
}

func TestPopulationConservation(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1, 0, 1})
	const n = 100
	agents := make([]Agent, n)
	for i := range agents {
		src := rng.New(202).Split(uint64(i))
		agents[i] = &randomWalker{src: src}
	}
	e, err := New(env, agents, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range e.Counts() {
			total += c
		}
		if total != n {
			t.Fatalf("round %d: population %d, want %d", e.Round(), total, n)
		}
	}
}
