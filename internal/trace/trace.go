// Package trace records per-round execution histories of house-hunting runs:
// nest populations, commitment censuses, state censuses, and discrete events
// (recruitments, drop-outs, finalizations). Traces power the population-
// dynamics figures in EXPERIMENTS.md, the ASCII plots in the CLI tools, and
// several integration-test oracles.
//
// The package is pure data: it does not know about the engine or the agents.
// The engine and runners push observations in; exporters (CSV, JSON, ASCII)
// pull them out.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventKind labels a discrete event. Starting at 1 keeps the zero value
// invalid, per house style.
type EventKind int

// Event kinds recorded by the engine and runners.
const (
	// EventRecruitSuccess is recorded when an active recruiter captures
	// another ant in the round's matching.
	EventRecruitSuccess EventKind = iota + 1
	// EventSelfRecruit is recorded when the matcher pairs an ant with itself
	// (possible when it draws itself from the recruiting pool).
	EventSelfRecruit
	// EventNestDropout is recorded by Algorithm 2 runners when a competing
	// nest's population decreases and its ants turn passive.
	EventNestDropout
	// EventFinalize is recorded when an ant enters the final state.
	EventFinalize
	// EventCrash is recorded by the fault injector when an ant crashes.
	EventCrash
	// EventByzantineAct is recorded when a Byzantine ant deviates.
	EventByzantineAct
	// EventQuorumReached is recorded when a nest's population first crosses a
	// quorum threshold (used by quorum-flavoured extensions and examples).
	EventQuorumReached
)

// String returns the event kind's wire name.
func (k EventKind) String() string {
	switch k {
	case EventRecruitSuccess:
		return "recruit_success"
	case EventSelfRecruit:
		return "self_recruit"
	case EventNestDropout:
		return "nest_dropout"
	case EventFinalize:
		return "finalize"
	case EventCrash:
		return "crash"
	case EventByzantineAct:
		return "byzantine_act"
	case EventQuorumReached:
		return "quorum_reached"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one discrete occurrence at a round. Subject and Object are ant
// indices (Object may be -1 when not applicable); Nest is a nest index with
// 0 = home.
type Event struct {
	Round   int       `json:"round"`
	Kind    EventKind `json:"kind"`
	Subject int       `json:"subject"`
	Object  int       `json:"object"`
	Nest    int       `json:"nest"`
}

// Round is the per-round record: populations by nest (index 0 = home) and an
// optional commitment census by nest.
type Round struct {
	Round       int   `json:"round"`
	Populations []int `json:"populations"`
	Commitments []int `json:"commitments,omitempty"`
}

// Trace accumulates rounds and events for one execution.
//
// Construct with New. Recording methods copy their slice arguments, so the
// engine may reuse buffers between rounds.
type Trace struct {
	numNests     int // candidate nests (excluding home)
	rounds       []Round
	events       []Event
	recordEvents bool
	maxEvents    int
}

// Option configures a Trace.
type Option func(*Trace)

// WithEvents enables discrete-event recording, keeping at most maxEvents
// events (0 means unlimited). Event recording is off by default because a
// large colony can generate millions of recruitment events.
func WithEvents(maxEvents int) Option {
	return func(t *Trace) {
		t.recordEvents = true
		t.maxEvents = maxEvents
	}
}

// New creates a Trace for an environment with numNests candidate nests.
func New(numNests int, opts ...Option) *Trace {
	t := &Trace{numNests: numNests}
	for _, o := range opts {
		o(t)
	}
	return t
}

// NumNests returns the number of candidate nests the trace was built for.
func (t *Trace) NumNests() int { return t.numNests }

// RecordRound appends a round record. populations must have length
// numNests+1 (home plus candidates); commitments may be nil or length
// numNests+1. Both are copied.
func (t *Trace) RecordRound(round int, populations, commitments []int) error {
	if len(populations) != t.numNests+1 {
		return fmt.Errorf("trace: populations length %d, want %d", len(populations), t.numNests+1)
	}
	rec := Round{Round: round, Populations: append([]int(nil), populations...)}
	if commitments != nil {
		if len(commitments) != t.numNests+1 {
			return fmt.Errorf("trace: commitments length %d, want %d", len(commitments), t.numNests+1)
		}
		rec.Commitments = append([]int(nil), commitments...)
	}
	t.rounds = append(t.rounds, rec)
	return nil
}

// RecordEvent appends an event if event recording is enabled and the cap has
// not been reached.
func (t *Trace) RecordEvent(e Event) {
	if !t.recordEvents {
		return
	}
	if t.maxEvents > 0 && len(t.events) >= t.maxEvents {
		return
	}
	t.events = append(t.events, e)
}

// EventsEnabled reports whether the trace is accepting events; the engine
// uses this to skip event construction entirely when tracing is population-only.
func (t *Trace) EventsEnabled() bool {
	return t.recordEvents && (t.maxEvents == 0 || len(t.events) < t.maxEvents)
}

// Len returns the number of recorded rounds.
func (t *Trace) Len() int { return len(t.rounds) }

// Rounds returns the recorded rounds. The returned slice is the internal
// backing array; callers must treat it as read-only.
func (t *Trace) Rounds() []Round { return t.rounds }

// Events returns recorded events; read-only for callers.
func (t *Trace) Events() []Event { return t.events }

// EventCount returns the number of recorded events of the given kind.
func (t *Trace) EventCount(kind EventKind) int {
	n := 0
	for _, e := range t.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// PopulationSeries returns nest's population trajectory across recorded
// rounds (nest 0 = home).
func (t *Trace) PopulationSeries(nest int) ([]float64, error) {
	if nest < 0 || nest > t.numNests {
		return nil, fmt.Errorf("trace: nest %d out of range [0,%d]", nest, t.numNests)
	}
	out := make([]float64, len(t.rounds))
	for i, r := range t.rounds {
		out[i] = float64(r.Populations[nest])
	}
	return out, nil
}

// CommitmentSeries returns nest's commitment trajectory; rounds without a
// commitment census yield 0.
func (t *Trace) CommitmentSeries(nest int) ([]float64, error) {
	if nest < 0 || nest > t.numNests {
		return nil, fmt.Errorf("trace: nest %d out of range [0,%d]", nest, t.numNests)
	}
	out := make([]float64, len(t.rounds))
	for i, r := range t.rounds {
		if r.Commitments != nil {
			out[i] = float64(r.Commitments[nest])
		}
	}
	return out, nil
}

// WriteCSV writes the per-round populations (and commitments when present)
// as CSV: round,pop0..popK[,com0..comK]. Rows stream through a CSVWriter —
// each row is flushed as it is produced with errors reported against the
// failing round, and nothing beyond one row is buffered.
func (t *Trace) WriteCSV(w io.Writer) error {
	hasCommit := false
	for _, r := range t.rounds {
		if r.Commitments != nil {
			hasCommit = true
			break
		}
	}
	cw := NewCSVWriter(w, t.numNests, hasCommit)
	for _, r := range t.rounds {
		if err := cw.WriteRound(r); err != nil {
			return err
		}
	}
	return cw.Close()
}

// jsonDoc is the on-wire JSON layout of a trace.
type jsonDoc struct {
	NumNests int     `json:"num_nests"`
	Rounds   []Round `json:"rounds"`
	Events   []Event `json:"events,omitempty"`
}

// WriteJSON writes the full trace as a single JSON document, streaming each
// round through a JSONWriter rather than encoding the whole trace at once.
// The output is byte-identical to the historical one-shot encoding of
// jsonDoc.
func (t *Trace) WriteJSON(w io.Writer) error {
	jw := NewJSONWriter(w, t.numNests)
	for _, r := range t.rounds {
		if err := jw.WriteRound(r); err != nil {
			return err
		}
	}
	return jw.Close(t.events)
}

// ReadJSON parses a trace previously written by WriteJSON. Round shapes are
// validated against num_nests on decode, so a truncated or hand-edited
// document fails here instead of panicking later in PopulationSeries. Event
// recording is enabled on the result only when the document carries events:
// the wire format cannot distinguish "events on but none occurred" from
// "events off", so an eventless document reads back with events off (making
// write→read→write a fixed point).
func ReadJSON(r io.Reader) (*Trace, error) {
	var doc jsonDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	if doc.NumNests < 0 {
		return nil, fmt.Errorf("trace: decoding JSON: num_nests %d is negative", doc.NumNests)
	}
	want := doc.NumNests + 1
	for _, rd := range doc.Rounds {
		if len(rd.Populations) != want {
			return nil, fmt.Errorf("trace: decoding JSON: round %d populations length %d, want %d", rd.Round, len(rd.Populations), want)
		}
		if rd.Commitments != nil && len(rd.Commitments) != want {
			return nil, fmt.Errorf("trace: decoding JSON: round %d commitments length %d, want %d", rd.Round, len(rd.Commitments), want)
		}
	}
	var opts []Option
	if len(doc.Events) > 0 {
		opts = append(opts, WithEvents(0))
	}
	t := New(doc.NumNests, opts...)
	t.rounds = doc.Rounds
	t.events = doc.Events
	return t, nil
}
