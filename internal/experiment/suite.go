package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/async"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/faults"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/stats"
	"github.com/gmrl/househunt/internal/workload"
)

// Scale selects experiment sizing: Small finishes in seconds (CI and
// benchmarks), Full is the EXPERIMENTS.md configuration.
type Scale int

// The two experiment scales.
const (
	ScaleSmall Scale = iota + 1
	ScaleFull
)

// Report is a rendered experiment: what the paper claims, what we measured,
// and whether the claimed shape held.
type Report struct {
	ID       string
	Title    string
	Claim    string
	Tables   []string
	Findings []string
	Pass     bool
}

// String renders the report as the block format used in EXPERIMENTS.md.
func (r Report) String() string {
	var b strings.Builder
	status := "SHAPE HOLDS"
	if !r.Pass {
		status = "SHAPE VIOLATED"
	}
	fmt.Fprintf(&b, "=== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "paper claim: %s\n", r.Claim)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t)
	}
	if len(r.Findings) > 0 {
		b.WriteByte('\n')
		for _, f := range r.Findings {
			fmt.Fprintf(&b, "measured: %s\n", f)
		}
	}
	return b.String()
}

// runner is one experiment implementation.
type runner func(Scale) (Report, error)

// suite maps experiment ids to implementations, in report order.
var suite = []struct {
	id string
	fn runner
}{
	{"E1", runE1}, {"E2", runE2}, {"E3", runE3}, {"E4", runE4},
	{"E5", runE5}, {"E6", runE6}, {"E7", runE7}, {"E8", runE8},
	{"E9", runE9}, {"E10", runE10}, {"E11", runE11}, {"E12", runE12},
	{"E13", runE13}, {"E14", runE14}, {"E15", runE15}, {"E16", runE16},
	{"E17", runE17}, {"E18", runE18}, {"E19", runE19}, {"E20", runE20},
	{"E21", runE21}, {"E22", runE22}, {"E23", runE23}, {"E24", runE24},
	{"E25", runE25}, {"E26", runE26}, {"E27", runE27},
}

// IDs returns the experiment identifiers in canonical order.
func IDs() []string {
	out := make([]string, len(suite))
	for i, e := range suite {
		out[i] = e.id
	}
	return out
}

// RunExperiment executes one experiment by id at the given scale.
func RunExperiment(id string, scale Scale) (Report, error) {
	if scale != ScaleSmall && scale != ScaleFull {
		return Report{}, fmt.Errorf("experiment: invalid scale %d", scale)
	}
	for _, e := range suite {
		if strings.EqualFold(e.id, id) {
			return e.fn(scale)
		}
	}
	return Report{}, fmt.Errorf("experiment: unknown experiment %q (have %v)", id, IDs())
}

// pick returns small at ScaleSmall and full otherwise.
func pick[T any](scale Scale, small, full T) T {
	if scale == ScaleSmall {
		return small
	}
	return full
}

// --- E1: Lemma 2.1 — recruiter success probability >= 1/16 ---------------

func runE1(scale Scale) (Report, error) {
	pools := pick(scale, []int{2, 3, 8, 64, 512}, []int{2, 3, 8, 64, 512, 4096})
	trials := pick(scale, 4000, 20000)
	rep := Report{
		ID:    "E1",
		Title: "Recruitment success probability",
		Claim: "Lemma 2.1: an active recruiter with c(0,r) >= 2 succeeds w.p. >= 1/16 = 0.0625",
		Pass:  true,
	}
	tb := stats.NewTable("", "pool", "activeFrac", "trials", "successRate", "wilsonLo", ">=1/16")
	minRate := 1.0
	for _, pool := range pools {
		for _, frac := range []float64{1.0, 0.5} {
			pt, err := MeasureRecruitSuccess(&sim.AlgorithmOneMatcher{}, pool, frac, trials,
				workload.SeedFor("E1", pool, int(frac*100), 0))
			if err != nil {
				return Report{}, err
			}
			ok := pt.WilsonLo >= 1.0/16
			if !ok {
				rep.Pass = false
			}
			if pt.SuccessRate < minRate {
				minRate = pt.SuccessRate
			}
			tb.AddRow(fmt.Sprintf("%d", pool), fmt.Sprintf("%.1f", frac),
				fmt.Sprintf("%d", trials), fmt.Sprintf("%.4f", pt.SuccessRate),
				fmt.Sprintf("%.4f", pt.WilsonLo), fmt.Sprintf("%v", ok))
		}
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("minimum success rate %.4f, comfortably above the 1/16 bound", minRate))
	return rep, nil
}

// --- E2: Lemma 3.1 — ignorant persistence >= 1/4 --------------------------

func runE2(scale Scale) (Report, error) {
	ns := pick(scale, []int{1 << 10, 1 << 12}, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16})
	rep := Report{
		ID:    "E2",
		Title: "Ignorant-ant persistence",
		Claim: "Lemma 3.1: an ignorant ant stays ignorant through a round w.p. >= 1/4",
		Pass:  true,
	}
	tb := stats.NewTable("", "n", "spreadRounds", "minStayRate", "meanStayRate", ">=1/4")
	for _, n := range ns {
		pt, err := MeasureIgnorantPersistence(n, workload.SeedFor("E2", n, 0, 0), 32)
		if err != nil {
			return Report{}, err
		}
		ok := pt.MinStayRate >= 0.25
		if !ok {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", pt.Rounds),
			fmt.Sprintf("%.4f", pt.MinStayRate), fmt.Sprintf("%.4f", pt.MeanStay),
			fmt.Sprintf("%v", ok))
	}
	rep.Tables = append(rep.Tables, tb.String())
	return rep, nil
}

// --- E3: Theorem 3.2 — Ω(log n) lower bound -------------------------------

func runE3(scale Scale) (Report, error) {
	exps := pick(scale, []int{8, 10, 12, 14}, []int{8, 10, 12, 14, 16, 18})
	reps := pick(scale, 6, 20)
	rep := Report{
		ID:    "E3",
		Title: "Lower-bound scaling of rumor spreading",
		Claim: "Theorem 3.2: informing all n ants takes Ω(log n) rounds even for the fastest strategy",
	}
	env, err := workload.SingleGood(2)
	if err != nil {
		return Report{}, err
	}
	var points []ConvergencePoint
	for _, e := range exps {
		n := 1 << uint(e)
		pt, err := MeasureConvergence(algo.Spreader{SearchAll: true},
			core.RunConfig{N: n, Env: env}, reps, "E3")
		if err != nil {
			return Report{}, err
		}
		points = append(points, pt)
	}
	rep.Tables = append(rep.Tables, Table("", points))
	fit, err := FitRoundsVsLogN(points)
	if err != nil {
		return Report{}, err
	}
	rep.Findings = append(rep.Findings, fmt.Sprintf("rounds vs log2(n): %s", fit))
	// Shape: strongly linear in log n with positive slope (each doubling of n
	// adds a roughly constant number of rounds).
	rep.Pass = fit.Slope > 0 && fit.R2 >= 0.85
	return rep, nil
}

// --- E4: Lemma 4.1 — Y symmetric around 0 ---------------------------------

func runE4(scale Scale) (Report, error) {
	trials := pick(scale, 20000, 100000)
	rep := Report{
		ID:    "E4",
		Title: "Population-delta symmetry",
		Claim: "Lemma 4.1: a competing nest's one-round delta Y satisfies P[Y<0] = P[Y>0]",
		Pass:  true,
	}
	tb := stats.NewTable("", "nestSizes", "P[Y<0]", "P[Y=0]", "P[Y>0]", "|P<0 - P>0|")
	for _, sizes := range [][]int{{64, 64}, {32, 96}, {16, 48, 64}, {100, 20}} {
		pt, err := MeasureNestDelta(&sim.AlgorithmOneMatcher{}, sizes, trials,
			workload.SeedFor("E4", len(sizes), sizes[0], 0))
		if err != nil {
			return Report{}, err
		}
		diff := math.Abs(pt.PNeg - pt.PPos)
		if diff > 0.02 {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%v", sizes), fmt.Sprintf("%.4f", pt.PNeg),
			fmt.Sprintf("%.4f", pt.PZero), fmt.Sprintf("%.4f", pt.PPos),
			fmt.Sprintf("%.4f", diff))
	}
	rep.Tables = append(rep.Tables, tb.String())
	return rep, nil
}

// --- E5: Lemma 4.2 — drop-out probability >= 1/66 --------------------------

func runE5(scale Scale) (Report, error) {
	trials := pick(scale, 20000, 100000)
	rep := Report{
		ID:    "E5",
		Title: "Nest drop-out probability",
		Claim: "Lemma 4.2: a competing nest with |C| < c(0,r) shrinks w.p. >= 1/66 ≈ 0.0152 per recruit round",
		Pass:  true,
	}
	tb := stats.NewTable("", "nestSizes", "P[Y<0]", ">=1/66")
	for _, sizes := range [][]int{{64, 64}, {32, 96}, {8, 120}, {16, 16, 16, 16}} {
		pt, err := MeasureNestDelta(&sim.AlgorithmOneMatcher{}, sizes, trials,
			workload.SeedFor("E5", len(sizes), sizes[0], 0))
		if err != nil {
			return Report{}, err
		}
		ok := pt.PNeg >= 1.0/66
		if !ok {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%v", sizes), fmt.Sprintf("%.4f", pt.PNeg), fmt.Sprintf("%v", ok))
	}
	rep.Tables = append(rep.Tables, tb.String())
	return rep, nil
}

// --- E6: Theorem 4.3 — Optimal is O(log n) ---------------------------------

func runE6(scale Scale) (Report, error) {
	grid := workload.Grid{
		Ns:  pick(scale, []int{256, 1024, 4096}, []int{256, 1024, 4096, 16384, 65536}),
		Ks:  pick(scale, []int{2, 4, 8}, []int{2, 4, 8, 16}),
		Tag: "E6",
	}
	reps := pick(scale, 5, 15)
	rep := Report{
		ID:    "E6",
		Title: "Algorithm 2 (Optimal) scaling",
		Claim: "Theorem 4.3: Algorithm 2 solves HouseHunting in O(log n) rounds w.h.p., independent of k",
	}
	points, err := Sweep(algo.Optimal{}, grid, nil, reps, 0)
	if err != nil {
		return Report{}, err
	}
	rep.Tables = append(rep.Tables, Table("", points))
	allSolved := true
	for _, p := range points {
		if p.SuccessRate < 1 {
			allSolved = false
		}
	}
	// Fit rounds against log2(n) at the smallest k only: pooling all k mixes
	// per-k intercepts and wrecks R² even when each k-slice is perfectly
	// logarithmic.
	minK := grid.Ks[0]
	var atMinK []ConvergencePoint
	for _, p := range points {
		if p.K == minK {
			atMinK = append(atMinK, p)
		}
	}
	fit, err := FitRoundsVsLogN(atMinK)
	if err != nil {
		return Report{}, err
	}
	// Rounds must not blow up with k at fixed n: compare k-extremes at max n.
	maxN := grid.Ns[len(grid.Ns)-1]
	var atMaxN []ConvergencePoint
	for _, p := range points {
		if p.N == maxN {
			atMaxN = append(atMaxN, p)
		}
	}
	sort.Slice(atMaxN, func(i, j int) bool { return atMaxN[i].K < atMaxN[j].K })
	kRatio := atMaxN[len(atMaxN)-1].Rounds.Mean / atMaxN[0].Rounds.Mean
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("rounds vs log2(n) at k=%d: %s", minK, fit),
		fmt.Sprintf("k-sensitivity at n=%d: rounds(k=%d)/rounds(k=%d) = %.2f (linear in k would be %.1f)",
			maxN, atMaxN[len(atMaxN)-1].K, atMaxN[0].K, kRatio,
			float64(atMaxN[len(atMaxN)-1].K)/float64(atMaxN[0].K)))
	rep.Pass = allSolved && fit.Slope > 0 && fit.R2 >= 0.85 &&
		kRatio < float64(atMaxN[len(atMaxN)-1].K)/float64(atMaxN[0].K)/2
	return rep, nil
}

// --- E7: Lemma 5.4 — initial gap expectation --------------------------------

func runE7(scale Scale) (Report, error) {
	trials := pick(scale, 20000, 100000)
	rep := Report{
		ID:    "E7",
		Title: "Initial population gap",
		Claim: "Lemma 5.4: after the search round, E[ε(i,j,1)] >= 1/(3(n-1)); ties occur w.p. < 2/3",
		Pass:  true,
	}
	tb := stats.NewTable("", "n", "k", "E[ε]", "bound", "tieRate")
	for _, nk := range [][2]int{{64, 2}, {256, 4}, {1024, 8}, {4096, 16}} {
		pt, err := MeasureInitialGap(nk[0], nk[1], trials, workload.SeedFor("E7", nk[0], nk[1], 0))
		if err != nil {
			return Report{}, err
		}
		if pt.MeanGap < pt.BoundMin || pt.TieRate >= 2.0/3 {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%d", nk[0]), fmt.Sprintf("%d", nk[1]),
			fmt.Sprintf("%.5f", pt.MeanGap), fmt.Sprintf("%.5f", pt.BoundMin),
			fmt.Sprintf("%.4f", pt.TieRate))
	}
	rep.Tables = append(rep.Tables, tb.String())
	return rep, nil
}

// --- E8: Lemmas 5.8/5.9 — small nests go extinct ----------------------------

func runE8(scale Scale) (Report, error) {
	runs := pick(scale, 4, 12)
	rep := Report{
		ID:    "E8",
		Title: "Small-nest extinction",
		Claim: "Lemmas 5.8/5.9: a nest below n/(dk) never recovers and dies within O(k log n) rounds",
		Pass:  true,
	}
	tb := stats.NewTable("", "n", "k", "crossings", "extinct", "recovered", "meanLinger", "budget")
	for _, nk := range [][2]int{{256, 4}, {512, 8}} {
		pt, err := MeasureExtinction(nk[0], nk[1], runs, 8, workload.SeedFor("E8", nk[0], nk[1], 0))
		if err != nil {
			return Report{}, err
		}
		if pt.Recovered > 0 || (pt.Extinct > 0 && pt.MeanLinger > float64(pt.BudgetRounds)) {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%d", nk[0]), fmt.Sprintf("%d", nk[1]),
			fmt.Sprintf("%d", pt.Crossings), fmt.Sprintf("%d", pt.Extinct),
			fmt.Sprintf("%d", pt.Recovered), fmt.Sprintf("%.1f", pt.MeanLinger),
			fmt.Sprintf("%d", pt.BudgetRounds))
	}
	rep.Tables = append(rep.Tables, tb.String())
	return rep, nil
}

// --- E9: Theorem 5.11 — Simple is O(k log n) --------------------------------

func runE9(scale Scale) (Report, error) {
	grid := workload.Grid{
		Ns:  pick(scale, []int{256, 1024, 4096}, []int{256, 1024, 4096, 16384}),
		Ks:  pick(scale, []int{2, 8, 32}, []int{2, 4, 8, 16, 32}),
		Tag: "E9",
	}
	reps := pick(scale, 5, 15)
	rep := Report{
		ID:    "E9",
		Title: "Algorithm 3 (Simple) scaling",
		Claim: "Theorem 5.11: Algorithm 3 solves HouseHunting in O(k log n) rounds w.h.p.",
	}
	points, err := Sweep(algo.Simple{}, grid, nil, reps, 0)
	if err != nil {
		return Report{}, err
	}
	rep.Tables = append(rep.Tables, Table("", points))
	allSolved := true
	for _, p := range points {
		if p.SuccessRate < 1 {
			allSolved = false
		}
	}
	fit, err := FitRoundsVsKLogN(points)
	if err != nil {
		return Report{}, err
	}
	rep.Findings = append(rep.Findings, fmt.Sprintf("rounds vs k·log2(n): %s", fit))
	rep.Pass = allSolved && fit.Slope > 0 && fit.R2 >= 0.75
	return rep, nil
}

// --- E10: §6 adaptive speed-up ----------------------------------------------

func runE10(scale Scale) (Report, error) {
	n := pick(scale, 1024, 2048)
	ks := pick(scale, []int{2, 16, 32}, []int{2, 4, 8, 16, 32, 64})
	reps := pick(scale, 6, 15)
	rep := Report{
		ID:    "E10",
		Title: "Adaptive recruitment speed-up",
		Claim: "§6: boosting recruitment rates with the round number should beat O(k log n) for large k (at a ramp-up cost for small k)",
	}
	tb := stats.NewTable("", "k", "simple(rounds)", "adaptive(rounds)", "speedup")
	var speedupAtMaxK float64
	for _, k := range ks {
		env, err := workload.AllGood(k)
		if err != nil {
			return Report{}, err
		}
		si, err := MeasureConvergence(algo.Simple{}, core.RunConfig{N: n, Env: env}, reps, "E10-s")
		if err != nil {
			return Report{}, err
		}
		ad, err := MeasureConvergence(algo.Adaptive{}, core.RunConfig{N: n, Env: env}, reps, "E10-a")
		if err != nil {
			return Report{}, err
		}
		speedup := si.Rounds.Mean / ad.Rounds.Mean
		if k == ks[len(ks)-1] {
			speedupAtMaxK = speedup
		}
		tb.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.1f", si.Rounds.Mean),
			fmt.Sprintf("%.1f", ad.Rounds.Mean), fmt.Sprintf("%.2fx", speedup))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("speed-up at k=%d: %.2fx (crossover vs Simple sits near k ≈ 16)", ks[len(ks)-1], speedupAtMaxK))
	rep.Pass = speedupAtMaxK > 1.15
	return rep, nil
}

// --- E11: §6 non-binary qualities --------------------------------------------

func runE11(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 12, 40)
	rep := Report{
		ID:    "E11",
		Title: "Quality-weighted selection",
		Claim: "§6: folding quality into the recruitment probability converges to a high-quality nest",
	}
	env, err := workload.QualityLadder(4, 0.2, 0.9)
	if err != nil {
		return Report{}, err
	}
	pt, err := MeasureConvergence(algo.QualityAware{}, core.RunConfig{N: n, Env: env}, reps, "E11")
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "n", "k", "reps", "success", "meanWinnerQ", "bestQ")
	tb.AddRow(fmt.Sprintf("%d", n), "4", fmt.Sprintf("%d", reps),
		fmt.Sprintf("%.3f", pt.SuccessRate), fmt.Sprintf("%.3f", pt.WinnerQuality.Mean), "0.90")
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("mean winner quality %.3f of max 0.90", pt.WinnerQuality.Mean))
	rep.Pass = pt.SuccessRate == 1 && pt.WinnerQuality.Mean >= 0.7
	return rep, nil
}

// --- E12: §6 noisy perception -------------------------------------------------

func runE12(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 6, 20)
	sigmas := []float64{0, 0.1, 0.2, 0.4, 0.8}
	rep := Report{
		ID:    "E12",
		Title: "Noise resilience",
		Claim: "§6: Algorithm 3 stays correct under unbiased count noise, with graceful slowdown",
	}
	env, err := workload.Binary(4, 2)
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "sigma", "success", "rounds(mean)", "slowdown")
	var base float64
	pass := true
	for _, sigma := range sigmas {
		a := algo.Noisy{}
		if sigma > 0 {
			a = algo.Noisy{Counter: nestRelative(sigma)}
		}
		pt, err := MeasureConvergence(a, core.RunConfig{N: n, Env: env, MaxRounds: 40000},
			reps, fmt.Sprintf("E12-%.1f", sigma))
		if err != nil {
			return Report{}, err
		}
		if sigma == 0 {
			base = pt.Rounds.Mean
		}
		slowdown := pt.Rounds.Mean / base
		if sigma <= 0.4 && pt.SuccessRate < 1 {
			pass = false
		}
		tb.AddRow(fmt.Sprintf("%.1f", sigma), fmt.Sprintf("%.3f", pt.SuccessRate),
			fmt.Sprintf("%.1f", pt.Rounds.Mean), fmt.Sprintf("%.2fx", slowdown))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Pass = pass
	return rep, nil
}

// --- E13: §6 fault tolerance ----------------------------------------------------

func runE13(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 6, 20)
	rep := Report{
		ID:    "E13",
		Title: "Crash and Byzantine fault tolerance",
		Claim: "§6: a small number of crashed or malicious ants should not affect performance",
	}
	env, err := workload.Binary(4, 2)
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "crashFrac", "byzFrac", "supermajorityRate", "meanGoodFrac")
	type cell struct{ crash, byz float64 }
	cells := []cell{{0, 0}, {0.05, 0}, {0.15, 0}, {0.3, 0}, {0, 0.02}, {0, 0.05}, {0, 0.1}}
	pass := true
	for _, c := range cells {
		super, goodFrac, err := measureFaultCell(n, env, c.crash, c.byz, reps)
		if err != nil {
			return Report{}, err
		}
		if c.crash <= 0.15 && c.byz <= 0.05 && super < 0.75 {
			pass = false
		}
		tb.AddRow(fmt.Sprintf("%.2f", c.crash), fmt.Sprintf("%.2f", c.byz),
			fmt.Sprintf("%.3f", super), fmt.Sprintf("%.3f", goodFrac))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Pass = pass
	return rep, nil
}

// measureFaultCell runs Simple under one fault configuration and reports the
// rate of runs reaching a 90% good-nest supermajority and the mean final
// good-nest commitment fraction.
func measureFaultCell(n int, env sim.Environment, crash, byz float64, reps int) (superRate, meanGoodFrac float64, err error) {
	super := 0
	var fracSum float64
	for rep := 0; rep < reps; rep++ {
		seed := workload.SeedFor("E13", int(crash*100)*1000+int(byz*100), n, rep+1)
		plan := faults.Plan{CrashFraction: crash, ByzantineFraction: byz, CrashWindow: 50}
		res, err := core.Run(algo.Simple{}, core.RunConfig{
			N: n, Env: env, Seed: seed, MaxRounds: 4000,
			Wrap: core.WrapFunc(plan.Apply(rng.New(seed).Split(3001))),
		})
		if err != nil {
			return 0, 0, err
		}
		best := 0
		for i := 1; i < len(res.FinalCensus.Committed); i++ {
			if env.Good(sim.NestID(i)) && res.FinalCensus.Committed[i] > best {
				best = res.FinalCensus.Committed[i]
			}
		}
		frac := 0.0
		if res.FinalCensus.Total > 0 {
			frac = float64(best) / float64(res.FinalCensus.Total)
		}
		fracSum += frac
		if frac >= 0.9 {
			super++
		}
	}
	return float64(super) / float64(reps), fracSum / float64(reps), nil
}

// --- E14: §6 asynchrony -----------------------------------------------------------

func runE14(scale Scale) (Report, error) {
	n := pick(scale, 128, 512)
	reps := pick(scale, 6, 20)
	rep := Report{
		ID:    "E14",
		Title: "Partial synchrony",
		Claim: "§6: Algorithm 3 tolerates clock jitter; Algorithm 2 relies heavily on synchrony",
	}
	env, err := workload.Binary(2, 2)
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "jitterP", "simple(success)", "simple(rounds)", "optimal(success)", "optimal(rounds)")
	pass := true
	var sBase, oBase float64
	for _, p := range []float64{0, 0.05, 0.15, 0.25} {
		sRate, sRounds, err := measureJitterCell(algo.Simple{}, n, env, p, reps, "E14-s")
		if err != nil {
			return Report{}, err
		}
		oRate, oRounds, err := measureJitterCell(algo.Optimal{}, n, env, p, reps, "E14-o")
		if err != nil {
			return Report{}, err
		}
		if p == 0 {
			sBase, oBase = sRounds, oRounds
		}
		if p <= 0.15 && sRate < 0.75 {
			pass = false
		}
		if p >= 0.15 && oRate > sRate {
			pass = false // the paper's fragility contrast must hold
		}
		tb.AddRow(fmt.Sprintf("%.2f", p),
			fmt.Sprintf("%.3f", sRate), fmt.Sprintf("%.1f", sRounds),
			fmt.Sprintf("%.3f", oRate), fmt.Sprintf("%.1f", oRounds))
		if p == 0.25 && sBase > 0 && oBase > 0 {
			rep.Findings = append(rep.Findings, fmt.Sprintf(
				"slowdown at jitter 0.25: simple %.2fx, optimal %.2fx",
				sRounds/sBase, oRounds/oBase))
		}
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Pass = pass
	return rep, nil
}

// measureJitterCell runs one algorithm under jitter p and returns its solve
// rate and mean rounds over solved runs.
func measureJitterCell(a core.Algorithm, n int, env sim.Environment, p float64, reps int, tag string) (rate, meanRounds float64, err error) {
	solved := 0
	roundsSum := 0.0
	for rep := 0; rep < reps; rep++ {
		seed := workload.SeedFor(tag, int(p*100), n, rep+1)
		cfg := core.RunConfig{N: n, Env: env, Seed: seed, MaxRounds: 6000}
		if p > 0 {
			cfg.Wrap = core.WrapFunc((async.Plan{HoldP: p, MaxDelay: 2}).Apply(rng.New(seed).Split(4001)))
		}
		res, err := core.Run(a, cfg)
		if err != nil {
			return 0, 0, err
		}
		if res.Solved {
			solved++
			roundsSum += float64(res.Rounds)
		}
	}
	if solved > 0 {
		meanRounds = roundsSum / float64(solved)
	}
	return float64(solved) / float64(reps), meanRounds, nil
}

// --- E15: head-to-head comparison ---------------------------------------------------

func runE15(scale Scale) (Report, error) {
	grid := workload.Grid{
		Ns:  pick(scale, []int{1024}, []int{1024, 16384}),
		Ks:  pick(scale, []int{2, 8, 32}, []int{2, 4, 8, 16, 32}),
		Tag: "E15",
	}
	reps := pick(scale, 6, 15)
	rep := Report{
		ID:    "E15",
		Title: "Head-to-head: Optimal vs Simple vs Adaptive",
		Claim: "Simple wins only at small k; Optimal and Adaptive beat Simple at large k (crossover near k ≈ 8-16)",
	}
	var all []ConvergencePoint
	for _, a := range []core.Algorithm{algo.Optimal{}, algo.Simple{}, algo.Adaptive{}} {
		pts, err := Sweep(a, grid, nil, reps, 0)
		if err != nil {
			return Report{}, err
		}
		all = append(all, pts...)
	}
	rep.Tables = append(rep.Tables, Table("", all))
	// Shape: Simple fastest at the smallest k; both Optimal and Adaptive
	// strictly beat Simple at the largest k (the crossover the paper's
	// O(log n) vs O(k log n) bounds predict).
	maxK := grid.Ks[len(grid.Ks)-1]
	minK := grid.Ks[0]
	maxN := grid.Ns[len(grid.Ns)-1]
	atMaxK := map[string]float64{}
	atMinK := map[string]float64{}
	for _, p := range all {
		if p.N != maxN {
			continue
		}
		if p.K == maxK {
			atMaxK[p.Algorithm] = p.Rounds.Mean
		}
		if p.K == minK {
			atMinK[p.Algorithm] = p.Rounds.Mean
		}
	}
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("at n=%d k=%d: optimal %.1f, adaptive %.1f, simple %.1f rounds",
			maxN, maxK, atMaxK["optimal"], atMaxK["adaptive"], atMaxK["simple"]),
		fmt.Sprintf("at n=%d k=%d: simple %.1f is fastest (optimal %.1f, adaptive %.1f)",
			maxN, minK, atMinK["simple"], atMinK["optimal"], atMinK["adaptive"]))
	rep.Pass = atMaxK["optimal"] < atMaxK["simple"] &&
		atMaxK["adaptive"] < atMaxK["simple"] &&
		atMinK["simple"] < atMinK["optimal"] &&
		atMinK["simple"] < atMinK["adaptive"]
	return rep, nil
}

// --- E16: pairing-model ablation -----------------------------------------------------

func runE16(scale Scale) (Report, error) {
	n := pick(scale, 512, 2048)
	reps := pick(scale, 5, 15)
	rep := Report{
		ID:    "E16",
		Title: "Recruitment pairing ablation",
		Claim: "§2 remark: the results should hold under other natural random pairing models",
		Pass:  true,
	}
	env, err := workload.Binary(4, 2)
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "matcher", "algorithm", "success", "rounds(mean)")
	for _, m := range sim.Matchers() {
		for _, a := range []core.Algorithm{algo.Simple{}, algo.Optimal{}} {
			name := m.Name()
			pt, err := MeasureConvergence(a, core.RunConfig{
				N: n, Env: env, NewMatcher: func() sim.Matcher { return matcherFactory(name) },
			}, reps, "E16-"+name)
			if err != nil {
				return Report{}, err
			}
			if pt.SuccessRate < 1 {
				rep.Pass = false
			}
			tb.AddRow(m.Name(), a.Name(), fmt.Sprintf("%.3f", pt.SuccessRate),
				fmt.Sprintf("%.1f", pt.Rounds.Mean))
		}
	}
	rep.Tables = append(rep.Tables, tb.String())
	return rep, nil
}

// matcherFactory returns a fresh matcher instance by name (matchers carry
// scratch state, so each engine needs its own).
func matcherFactory(name string) sim.Matcher {
	switch name {
	case "simultaneous":
		return &sim.SimultaneousMatcher{}
	case "rendezvous":
		return &sim.RendezvousMatcher{}
	default:
		return &sim.AlgorithmOneMatcher{}
	}
}

// --- E17: literal vs repaired Algorithm 2 ---------------------------------------------

func runE17(scale Scale) (Report, error) {
	reps := pick(scale, 10, 40)
	rep := Report{
		ID:    "E17",
		Title: "Algorithm 2 pseudocode ablation (Case 3 count baseline)",
		Claim: "Reproduction finding: the literal pseudocode's stale Case 3 count can cascade into deadlock; re-baselining (as the paper's analysis assumes) repairs it",
	}
	tb := stats.NewTable("", "n", "k", "literal(success)", "repaired(success)")
	pass := true
	for _, nk := range [][2]int{{128, 2}, {512, 4}, {1024, 8}} {
		env, err := workload.AllGood(nk[1])
		if err != nil {
			return Report{}, err
		}
		lit, err := MeasureConvergence(algo.Optimal{Literal: true},
			core.RunConfig{N: nk[0], Env: env, MaxRounds: 4000}, reps, "E17-lit")
		if err != nil {
			return Report{}, err
		}
		fix, err := MeasureConvergence(algo.Optimal{},
			core.RunConfig{N: nk[0], Env: env, MaxRounds: 4000}, reps, "E17-fix")
		if err != nil {
			return Report{}, err
		}
		if fix.SuccessRate < 1 || fix.SuccessRate < lit.SuccessRate {
			pass = false
		}
		tb.AddRow(fmt.Sprintf("%d", nk[0]), fmt.Sprintf("%d", nk[1]),
			fmt.Sprintf("%.3f", lit.SuccessRate), fmt.Sprintf("%.3f", fix.SuccessRate))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Pass = pass
	return rep, nil
}

// --- E18: quorum + transport (speed-accuracy trade-off) ------------------------

func runE18(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 10, 30)
	rep := Report{
		ID:    "E18",
		Title: "Quorum thresholds and transport (the tunable decision dial)",
		Claim: "§1.1/§6, [24], [25]: quorum-gated transport finishes emigrations; the quorum is a speed dial — hair-trigger quorums stall in transport standoffs, over-cautious ones fail to decide — while collective accuracy stays robust to individual misjudgment",
	}
	env, err := workload.Binary(4, 2)
	if err != nil {
		return Report{}, err
	}
	noisy := nestFlip(0.15)
	tb := stats.NewTable("", "multiplier", "assessment", "success", "goodWinRate", "rounds(mean)")
	type cell struct {
		mult  float64
		rate  float64
		round float64
	}
	var noisyCells []cell
	for _, mult := range []float64{1.1, 1.5, 2.0, 3.0} {
		for _, noise := range []bool{false, true} {
			q := algo.Quorum{Multiplier: mult}
			label := "exact"
			if noise {
				q.Assessor = noisy
				label = "flip(0.15)"
			}
			goodWins, solved := 0, 0
			var roundsSum float64
			for r := 0; r < reps; r++ {
				seed := workload.SeedFor("E18", int(mult*100), boolInt(noise)*1000+n, r+1)
				res, err := core.Run(q, core.RunConfig{N: n, Env: env, Seed: seed, MaxRounds: 4000})
				if err != nil {
					return Report{}, err
				}
				if res.Solved {
					solved++
					roundsSum += float64(res.Rounds)
					if env.Good(res.Winner) {
						goodWins++
					}
				}
			}
			succ := float64(solved) / float64(reps)
			goodRate := 0.0
			meanRounds := 0.0
			if solved > 0 {
				goodRate = float64(goodWins) / float64(solved)
				meanRounds = roundsSum / float64(solved)
			}
			if noise {
				noisyCells = append(noisyCells, cell{mult: mult, rate: succ * goodRate, round: meanRounds})
			}
			tb.AddRow(fmt.Sprintf("%.1f", mult), label,
				fmt.Sprintf("%.3f", succ), fmt.Sprintf("%.3f", goodRate),
				fmt.Sprintf("%.1f", meanRounds))
		}
	}
	rep.Tables = append(rep.Tables, tb.String())
	// Shapes: (a) the mid dial (2.0) is decisively faster than the
	// hair-trigger (1.1), whose premature transports stall in tugs-of-war;
	// (b) collective accuracy survives 15% individual misjudgment at every
	// setting (the group-rationality effect of the paper's [25]).
	var hair, mid cell
	for _, c := range noisyCells {
		switch c.mult {
		case 1.1:
			hair = c
		case 2.0:
			mid = c
		}
	}
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("noisy dial: %.1f rounds at multiplier 2.0 vs %.1f at hair-trigger 1.1", mid.round, hair.round),
		"collective choice stayed good despite 15% individual misjudgment (group rationality, paper ref [25])")
	accuracyOK := true
	for _, c := range noisyCells {
		if c.rate > 0 && c.rate < 0.9 {
			accuracyOK = false
		}
	}
	rep.Pass = mid.round < hair.round && accuracyOK
	return rep, nil
}

// boolInt converts a bool to 0/1 for seed derivation.
func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- E19: approximate knowledge of n -------------------------------------------

func runE19(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 6, 20)
	rep := Report{
		ID:    "E19",
		Title: "Approximate knowledge of the colony size",
		Claim: "§6: Algorithm 3 should survive ants knowing only an approximation of n",
	}
	env, err := workload.Binary(4, 2)
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "delta", "success", "rounds(mean)", "slowdown")
	var base float64
	pass := true
	for _, delta := range []float64{0, 0.25, 0.5, 0.75} {
		pt, err := MeasureConvergence(algo.ApproxN{Delta: delta},
			core.RunConfig{N: n, Env: env, MaxRounds: 20000}, reps,
			fmt.Sprintf("E19-%.2f", delta))
		if err != nil {
			return Report{}, err
		}
		if delta == 0 {
			base = pt.Rounds.Mean
		}
		slowdown := pt.Rounds.Mean / base
		if delta <= 0.5 && pt.SuccessRate < 1 {
			pass = false
		}
		tb.AddRow(fmt.Sprintf("%.2f", delta), fmt.Sprintf("%.3f", pt.SuccessRate),
			fmt.Sprintf("%.1f", pt.Rounds.Mean), fmt.Sprintf("%.2fx", slowdown))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Pass = pass
	return rep, nil
}

// --- E20: the "with high probability" form ---------------------------------------

func runE20(scale Scale) (Report, error) {
	exps := pick(scale, []int{8, 10, 12}, []int{8, 10, 12, 14, 16})
	reps := pick(scale, 40, 100)
	rep := Report{
		ID:    "E20",
		Title: "Failure probability decays with n",
		Claim: "Theorems 3.2/4.3 hold 'with probability >= 1 - 1/n^c': at a fixed budget of C·log2(n) rounds, Algorithm 2's failure rate must vanish as n grows",
	}
	env, err := workload.Binary(4, 2)
	if err != nil {
		return Report{}, err
	}
	// C = 8 is calibrated against E6 (mean ≈ 7.1·log2 n at k=4): tight enough
	// that small colonies sometimes miss the deadline, loose enough that large
	// ones never do — which is exactly the w.h.p. shape.
	const budgetC = 8
	tb := stats.NewTable("", "n", "budget(rounds)", "reps", "failures", "failureRate")
	var firstRate, lastRate float64
	for i, e := range exps {
		n := 1 << uint(e)
		budget := budgetC * e
		failures := 0
		for r := 0; r < reps; r++ {
			seed := workload.SeedFor("E20", n, budget, r+1)
			res, err := core.Run(algo.Optimal{}, core.RunConfig{
				N: n, Env: env, Seed: seed, MaxRounds: budget,
			})
			if err != nil {
				return Report{}, err
			}
			if !res.Solved {
				failures++
			}
		}
		rate := float64(failures) / float64(reps)
		if i == 0 {
			firstRate = rate
		}
		lastRate = rate
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", budget),
			fmt.Sprintf("%d", reps), fmt.Sprintf("%d", failures),
			fmt.Sprintf("%.3f", rate))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings, fmt.Sprintf(
		"failure rate fell from %.3f (n=%d) to %.3f (n=%d) at the same C·log n budget",
		firstRate, 1<<uint(exps[0]), lastRate, 1<<uint(exps[len(exps)-1])))
	rep.Pass = lastRate == 0 && firstRate >= lastRate
	return rep, nil
}

// --- E21: geometric decay of competing nests --------------------------------------

func runE21(scale Scale) (Report, error) {
	n := pick(scale, 1024, 4096)
	ks := pick(scale, []int{8, 16}, []int{8, 16, 32})
	runs := pick(scale, 8, 24)
	rep := Report{
		ID:    "E21",
		Title: "Competing nests decay geometrically (Algorithm 2's engine)",
		Claim: "Lemma 4.2 / Theorem 4.3: each competing nest drops out w.p. >= 1/66 per phase, so E[k_{p+1}] <= (65/66)·k_p and one nest remains after O(log k + log n) phases",
		Pass:  true,
	}
	tb := stats.NewTable("", "n", "k", "meanDecay/phase", "paperBound", "phasesToOne", "competing(by phase)")
	for _, k := range ks {
		pt, err := MeasureCompetingDecay(n, k, runs, workload.SeedFor("E21", n, k, 0))
		if err != nil {
			return Report{}, err
		}
		if pt.MeanDecay > 65.0/66 {
			rep.Pass = false
		}
		// Render the first few phase means compactly.
		series := ""
		for i, v := range pt.MeanCompeting {
			if i > 6 {
				series += "…"
				break
			}
			if i > 0 {
				series += " "
			}
			series += fmt.Sprintf("%.1f", v)
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", pt.MeanDecay), fmt.Sprintf("%.4f", 65.0/66),
			fmt.Sprintf("%.1f", pt.PhasesToOne), series)
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		"measured per-phase survival is far below the paper's conservative 65/66 bound")
	return rep, nil
}

// --- E22: adversary series — crash fraction vs convergence time -------------------

func runE22(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 8, 24)
	rep := Report{
		ID:    "E22",
		Title: "Crash fraction vs convergence time (fault lanes)",
		Claim: "§6: crash faults \"should not affect the overall populations of recruiting ants and the algorithm's performance\" — convergence survives and degrades gracefully as the crash fraction grows",
		Pass:  true,
	}
	env, err := workload.Binary(4, 2)
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "crashFrac", "successRate", "meanRounds", "p95Rounds")
	baseline := 0.0
	for _, crash := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000}
		if crash > 0 {
			cfg.Wrap = faults.Spec{CrashFraction: crash, CrashWindow: 50, Salt: 5001}
		}
		pt, err := MeasureConvergence(algo.Simple{}, cfg, reps, fmt.Sprintf("E22-%.2f", crash))
		if err != nil {
			return Report{}, err
		}
		if crash == 0 {
			baseline = pt.Rounds.Mean
		}
		if crash <= 0.15 && pt.SuccessRate < 0.75 {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%.2f", crash), fmt.Sprintf("%.3f", pt.SuccessRate),
			fmt.Sprintf("%.1f", pt.Rounds.Mean), fmt.Sprintf("%.1f", pt.Rounds.P95))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("fault-free baseline %.1f mean rounds; every faulted cell runs on the batch engine's crash lanes", baseline))
	return rep, nil
}

// --- E23: adversary series — corrupt minority vs best-of-k accuracy ---------------

func runE23(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 8, 24)
	rep := Report{
		ID:    "E23",
		Title: "Corrupt minority vs best-of-k accuracy",
		Claim: "§6: a small malicious minority luring toward a bad nest should not stop the colony from selecting the best candidate",
		Pass:  true,
	}
	// Graded qualities with a zero-quality nest for the adversary to latch:
	// the honest colony should still pick the 0.9 site.
	env := sim.MustEnvironment([]float64{0.2, 0.9, 0.4, 0})
	best := 0.9
	tb := stats.NewTable("", "byzFrac", "successRate", "meanWinnerQ", "minWinnerQ")
	for _, byz := range []float64{0, 0.01, 0.02, 0.05, 0.1} {
		cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000}
		if byz > 0 {
			cfg.Wrap = faults.Spec{ByzantineFraction: byz, Salt: 5002}
		}
		pt, err := MeasureConvergence(algo.QualityAware{}, cfg, reps, fmt.Sprintf("E23-%.2f", byz))
		if err != nil {
			return Report{}, err
		}
		// Accuracy survives a small minority (≤2%); past that the lurers
		// sustain a standing bad-nest population that defeats unanimity — a
		// measured saturation transition, not a pass/fail concern.
		if byz <= 0.02 && (pt.SuccessRate < 0.75 || pt.WinnerQuality.Mean < 0.9*best) {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%.2f", byz), fmt.Sprintf("%.3f", pt.SuccessRate),
			fmt.Sprintf("%.3f", pt.WinnerQuality.Mean), fmt.Sprintf("%.3f", pt.WinnerQuality.Min))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		"Byzantine lurers are census-excluded; accuracy is the committed colony's winner quality",
		"lure saturation: between 2% and 5% lurers the standing bad-nest population stops dropping to zero, so full unanimity stalls even though the honest majority sits on the best site")
	return rep, nil
}

// --- E24: adversary series — idle-pool emigration ----------------------------------

func runE24(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 8, 24)
	const window = 60
	rep := Report{
		ID:    "E24",
		Title: "Idle-pool emigration (sleeping reserve)",
		Claim: "idle-pool scenario (Afek–Gordon–Sulamy): sleeping ants are counted, not faulty — the colony cannot finish before the reserve wakes, and still converges once it joins",
		Pass:  true,
	}
	// A single good nest isolates the idle-pool effect: with two equally good
	// sites, late wakers commit to the minority site and can freeze a split
	// that unanimity never resolves — a symmetry trap, not a reserve effect.
	env, err := workload.Binary(4, 1)
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "sleepFrac", "successRate", "meanRounds", "minRounds")
	for _, sleep := range []float64{0, 0.25, 0.5, 0.75} {
		cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000}
		if sleep > 0 {
			cfg.Wrap = faults.Spec{SleepFraction: sleep, SleepWindow: window, Salt: 5003}
		}
		pt, err := MeasureConvergence(algo.Simple{}, cfg, reps, fmt.Sprintf("E24-%.2f", sleep))
		if err != nil {
			return Report{}, err
		}
		if pt.SuccessRate < 0.75 {
			rep.Pass = false
		}
		// With hundreds of sleepers, the last wake round lands at ~window+1
		// w.h.p., and unanimity needs every woken ant: solved runs cannot
		// terminate much before the window closes.
		if sleep >= 0.25 && pt.Solved > 0 && pt.Rounds.Min < float64(window)*0.9 {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%.2f", sleep), fmt.Sprintf("%.3f", pt.SuccessRate),
			fmt.Sprintf("%.1f", pt.Rounds.Mean), fmt.Sprintf("%.1f", pt.Rounds.Min))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("wake window %d rounds: solved faulted runs never finish before ~%d rounds, the reserve's last wake", window, window))
	return rep, nil
}

// --- E25: adaptive adversary — targeted decapitation vs crash budget ---------------

func runE25(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 8, 24)
	rep := Report{
		ID:    "E25",
		Title: "Targeted decapitation vs crash budget (adaptive adversary)",
		Claim: "an adaptive adversary that watches the commitment census and crashes ants committed to the leading nest each round is strictly harder than the same crash budget spent obliviously — yet a bounded budget still only delays convergence, it cannot prevent it",
		Pass:  true,
	}
	env, err := workload.Binary(4, 2)
	if err != nil {
		return Report{}, err
	}
	tb := stats.NewTable("", "budget/n", "adversary", "successRate", "meanRounds", "p95Rounds")
	for _, frac := range []float64{0, 0.05, 0.1, 0.2} {
		budget := int(frac * float64(n))
		for _, adaptive := range []bool{false, true} {
			if frac == 0 && adaptive {
				continue // a zero budget has no adaptive variant
			}
			cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000}
			label := "none"
			if budget > 0 {
				if adaptive {
					// The schedule observes every end-of-round census and
					// decapitates the front-runner, one ant per round.
					b := budget
					cfg.Wrap = faults.Spec{Salt: 5004, NewSchedule: func() faults.Schedule {
						return &faults.TargetedCrash{PerRound: 1, Budget: b}
					}}
					label = "targeted"
				} else {
					// The oblivious control: the same expected number of ants
					// crash at stream-drawn rounds, blind to the census.
					cfg.Wrap = faults.Spec{CrashFraction: frac, CrashWindow: 50, Salt: 5004}
					label = "oblivious"
				}
			}
			pt, err := MeasureConvergence(algo.Simple{}, cfg, reps, fmt.Sprintf("E25-%.2f-%s", frac, label))
			if err != nil {
				return Report{}, err
			}
			// A bounded budget must not break convergence: once the budget is
			// spent the adversary is inert and the survivors finish the hunt.
			if frac <= 0.2 && pt.SuccessRate < 0.75 {
				rep.Pass = false
			}
			tb.AddRow(fmt.Sprintf("%.2f", frac), label, fmt.Sprintf("%.3f", pt.SuccessRate),
				fmt.Sprintf("%.1f", pt.Rounds.Mean), fmt.Sprintf("%.1f", pt.Rounds.P95))
		}
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		"the targeted schedule repeatedly beheads the emerging consensus, so equal budgets cost more rounds than oblivious crashes — but exhaustion of the budget always lets the colony re-converge",
		"every adaptive cell runs on the batch engine's mutation pass (the schedule compiles with the program)")
	return rep, nil
}

// --- E26: adaptive adversary — census-chasing lurers vs static lurers --------------

func runE26(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 8, 24)
	rep := Report{
		ID:    "E26",
		Title: "Census-chasing lurers vs static lurers (adaptive relocation)",
		Claim: "lurers that re-aim at whichever bad nest currently holds the most committed ants concentrate the colony's confusion on one site; a small honest majority still selects the best nest, as in the static §6 case",
		Pass:  true,
	}
	// Graded qualities with TWO zero-quality nests: static lurers scatter
	// across whichever bad nest each found first, adaptive lurers coordinate.
	env := sim.MustEnvironment([]float64{0.2, 0.9, 0, 0})
	best := 0.9
	tb := stats.NewTable("", "byzFrac", "adversary", "successRate", "meanWinnerQ", "minWinnerQ")
	for _, byz := range []float64{0, 0.01, 0.02, 0.05} {
		for _, adaptive := range []bool{false, true} {
			if byz == 0 && adaptive {
				continue
			}
			cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000}
			label := "none"
			if byz > 0 {
				spec := faults.Spec{ByzantineFraction: byz, Salt: 5005}
				label = "static"
				if adaptive {
					spec.NewSchedule = func() faults.Schedule { return &faults.AdaptiveLurer{} }
					label = "adaptive"
				}
				cfg.Wrap = spec
			}
			pt, err := MeasureConvergence(algo.QualityAware{}, cfg, reps, fmt.Sprintf("E26-%.2f-%s", byz, label))
			if err != nil {
				return Report{}, err
			}
			// As in E23: accuracy must survive a small minority. Past ~2% the
			// standing lure population defeats unanimity — measured, not gated.
			if byz <= 0.02 && (pt.SuccessRate < 0.75 || pt.WinnerQuality.Mean < 0.9*best) {
				rep.Pass = false
			}
			tb.AddRow(fmt.Sprintf("%.2f", byz), label, fmt.Sprintf("%.3f", pt.SuccessRate),
				fmt.Sprintf("%.3f", pt.WinnerQuality.Mean), fmt.Sprintf("%.3f", pt.WinnerQuality.Min))
		}
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		"adaptive relocation pools every lurer onto the census front-runner among the bad nests, where static lurers split across their individually-latched targets",
		"relocated lurers advertise nests they never visited; the scalar oracle licenses the recruit via the engine's visited-teach, the batch lane by construction")
	return rep, nil
}

// --- E27: adaptive adversary — churn with exponential restart ----------------------

func runE27(scale Scale) (Report, error) {
	n := pick(scale, 256, 1024)
	reps := pick(scale, 8, 24)
	rep := Report{
		ID:    "E27",
		Title: "Crash-recovery churn (geometric downtime)",
		Claim: "under continuous churn — every ant crashing at a constant per-round hazard and restarting after a geometric downtime — the colony keeps converging: restarted ants re-enter the algorithm from its first round and are re-recruited by the committed majority",
		Pass:  true,
	}
	env, err := workload.Binary(4, 1)
	if err != nil {
		return Report{}, err
	}
	const meanDowntime = 8.0
	tb := stats.NewTable("", "crashProb", "successRate", "meanRounds", "p95Rounds")
	for _, p := range []float64{0, 0.001, 0.005, 0.02} {
		cfg := core.RunConfig{N: n, Env: env, MaxRounds: 4000}
		if p > 0 {
			hazard := p
			cfg.Wrap = faults.Spec{
				Salt: 5006,
				NewSchedule: func() faults.Schedule {
					return faults.Churn{CrashProb: hazard, MeanDowntime: meanDowntime}
				},
				// The scalar fallback path revives ants from a pristine rebuild;
				// the batch engine (which these cells actually run on) re-seeds
				// from its own columns.
				Rebuild: func(seed uint64) ([]sim.Agent, error) {
					return algo.Simple{}.Build(n, env, rng.New(seed).Split(2))
				},
			}
		}
		pt, err := MeasureConvergence(algo.Simple{}, cfg, reps, fmt.Sprintf("E27-%.3f", p))
		if err != nil {
			return Report{}, err
		}
		// Unanimity needs every censused ant: a standing crashed population
		// subtracts from the census, so convergence requires the lulls between
		// crashes to cover the whole colony — moderate hazards must still pass.
		if p <= 0.005 && pt.SuccessRate < 0.75 {
			rep.Pass = false
		}
		tb.AddRow(fmt.Sprintf("%.3f", p), fmt.Sprintf("%.3f", pt.SuccessRate),
			fmt.Sprintf("%.1f", pt.Rounds.Mean), fmt.Sprintf("%.1f", pt.Rounds.P95))
	}
	rep.Tables = append(rep.Tables, tb.String())
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("mean downtime %.0f rounds: at hazard p the steady-state crashed fraction is ~p·%.0f/(1+p·%.0f), the census shortfall the colony must outwait", meanDowntime, meanDowntime, meanDowntime),
		"restarted ants are bit-identically re-seeded on both engines (pristine per-ant streams are split, never consumed)")
	return rep, nil
}
