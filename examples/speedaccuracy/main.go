// Speedaccuracy explores the speed-accuracy trade-off that motivates much of
// the house-hunting biology (Pratt & Sumpter 2006, the paper's [24]): noisier
// individual perception makes decisions faster to destabilize and slower to
// settle, and can cost decision quality.
//
// The example runs the quality-aware colony over a ladder of nest qualities
// while sweeping the ants' assessment noise, then reports decision time and
// the quality of the chosen nest — the two axes of the trade-off.
//
//	go run ./examples/speedaccuracy
package main

import (
	"fmt"
	"log"

	"github.com/gmrl/househunt"
)

func main() {
	// A quality ladder: nest 4 (0.9) is clearly best, nest 3 (0.7) is a
	// tempting near-miss.
	qualities := []float64{0.3, 0.5, 0.7, 0.9}
	const colony = 320
	const repetitions = 10

	fmt.Println("nests:", qualities, "- best is nest 4 (quality 0.9)")
	fmt.Println()
	fmt.Printf("%12s  %10s  %12s  %12s\n", "countNoise", "solved", "meanRounds", "meanWinnerQ")

	for _, sigma := range []float64{0, 0.2, 0.4, 0.8} {
		var solved, roundsSum int
		var qualitySum float64
		for rep := 0; rep < repetitions; rep++ {
			opts := []househunt.Option{
				househunt.WithColonySize(colony),
				househunt.WithNests(qualities...),
				househunt.WithSeed(uint64(1000*rep + 17)),
				househunt.WithMaxRounds(8000),
			}
			if sigma == 0 {
				// Noise-free perception: the quality-aware algorithm hunts the
				// best nest directly.
				opts = append(opts, househunt.WithAlgorithm(househunt.AlgorithmQualityAware))
			} else {
				// Noisy perception runs the §6 approximate-counting variant of
				// Algorithm 3: any positive-quality nest can win, so accuracy
				// degrades to "a good-enough nest", traded for robustness.
				opts = append(opts, househunt.WithCountNoise(sigma))
			}
			res, err := househunt.Run(opts...)
			if err != nil {
				log.Fatal(err)
			}
			if res.Solved {
				solved++
				roundsSum += res.Rounds
				qualitySum += res.WinnerQuality
			}
		}
		meanRounds, meanQ := 0.0, 0.0
		if solved > 0 {
			meanRounds = float64(roundsSum) / float64(solved)
			meanQ = qualitySum / float64(solved)
		}
		fmt.Printf("%12.1f  %7d/%d  %12.1f  %12.3f\n", sigma, solved, repetitions, meanRounds, meanQ)
	}

	fmt.Println()
	fmt.Println("reading the table: with exact perception the colony is accurate (winner")
	fmt.Println("quality ≈ 0.9); as perception noise grows the colony still decides, but")
	fmt.Println("more slowly and on whichever acceptable nest the urn race amplified —")
	fmt.Println("speed and robustness are bought with accuracy.")
}
