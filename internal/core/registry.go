package core

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps algorithm names to implementations so the CLI tools and the
// experiment harness can select algorithms by name. A Registry is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	algos map[string]Algorithm
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{algos: make(map[string]Algorithm, 8)}
}

// Register adds an algorithm under its own Name. Duplicate names and nil
// algorithms are rejected.
func (r *Registry) Register(a Algorithm) error {
	if a == nil {
		return errNilAlgorithm
	}
	name := a.Name()
	if name == "" {
		return fmt.Errorf("core: algorithm with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.algos[name]; dup {
		return fmt.Errorf("core: algorithm %q already registered", name)
	}
	r.algos[name] = a
	return nil
}

// MustRegister is Register that panics on error; for package-level wiring of
// known-unique names in cmd binaries.
func (r *Registry) MustRegister(a Algorithm) {
	if err := r.Register(a); err != nil {
		panic(err)
	}
}

// Lookup returns the algorithm registered under name.
func (r *Registry) Lookup(name string) (Algorithm, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.algos[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (have %v)", name, r.namesLocked())
	}
	return a, nil
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.algos))
	//hh:sorted collection order is discarded: names are sorted before returning
	for n := range r.algos {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
