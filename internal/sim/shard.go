package sim

import "sync"

// shardPool fans one phase function out across the shards of a single lane.
// A lane that shards its colony owns one pool for its whole lifetime: the
// helper goroutines are spawned once (one per shard beyond the caller's own)
// and parked on buffered wake channels between phases, so dispatching a phase
// costs channel operations only — no goroutine creation, no closure
// allocation, nothing on the per-round heap. The phase functions themselves
// are bound once at lane construction (see newLane) and selected by
// assignment, keeping run alloc-free.
//
// Memory ordering: the fn store happens before every wake send, each helper's
// work happens before its wg.Done, and run returns only after wg.Wait — so
// phases are totally ordered across all shards and the lane's columns need no
// further synchronization (each shard touches disjoint ranges within a phase).
type shardPool struct {
	fn   func(shard int)
	wake []chan struct{}
	wg   sync.WaitGroup
}

// newShardPool spawns shards-1 helper goroutines (shard 0 runs on the
// caller). Returns nil when shards < 2 — callers treat a nil pool as the
// run-inline case.
func newShardPool(shards int) *shardPool {
	if shards < 2 {
		return nil
	}
	p := &shardPool{wake: make([]chan struct{}, shards-1)}
	for h := range p.wake {
		c := make(chan struct{}, 1)
		p.wake[h] = c
		go func(shard int) {
			for range c {
				p.fn(shard)
				p.wg.Done()
			}
		}(h + 1)
	}
	return p
}

// run executes fn(shard) for every shard, shard 0 on the calling goroutine,
// and returns when all shards have finished.
//
//hh:hotpath
func (p *shardPool) run(fn func(shard int)) {
	p.fn = fn
	p.wg.Add(len(p.wake))
	for _, c := range p.wake {
		c <- struct{}{}
	}
	fn(0)
	p.wg.Wait()
}

// close parks the helpers permanently. The pool must be idle.
func (p *shardPool) close() {
	for _, c := range p.wake {
		close(c)
	}
}
