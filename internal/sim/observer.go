package sim

import (
	"fmt"

	"github.com/gmrl/househunt/internal/trace"
)

// BatchObserver receives streaming telemetry from a batch run. The engine
// calls LaneObserver once per worker at lane startup (concurrently, so the
// method must be safe for concurrent use) and then feeds each lane's
// observer from that worker alone — per-lane state needs no locking.
//
// Observation is draw-free by construction: observers receive copies of
// engine state after the round resolves and touch no RNG stream, so an
// observed run is bit-identical to an unobserved one (pinned by the
// differential tests in batch_observer_test.go).
type BatchObserver interface {
	// LaneObserver returns the observer for worker lane (0-based). Called
	// concurrently from worker goroutines.
	LaneObserver(lane int) LaneObserver
}

// LaneObserver is one worker lane's telemetry consumer. All calls arrive
// from that lane's goroutine, in execution order: each replicate's rounds
// ascend, terminated by one ReplicateDone; replicates from different lanes
// interleave arbitrarily (the lane pool streams replicates dynamically).
//
// Both methods are on the engine's measured path — 0 allocs/round holds with
// an observer attached (pinned by AllocsPerRun), so implementations must not
// allocate or retain the argument slices, which are lane-owned scratch valid
// only during the call.
type LaneObserver interface {
	// ObserveRound delivers one resolved round: end-of-round populations by
	// nest (index 0 = home) and the commitment census (index 0 =
	// uncommitted).
	ObserveRound(rep, round int, counts, committed []int)
	// ReplicateDone delivers the replicate's final result. res is valid only
	// during the call.
	ReplicateDone(rep int, res *BatchResult)
}

// WithBatchObserver installs a streaming telemetry observer on the batch.
// A nil observer disables observation (the default).
func WithBatchObserver(obs BatchObserver) BatchOption {
	return func(b *Batch) { b.obs = obs }
}

// The stream row layout carried through trace rings by StreamObserver: a
// round record's payload is [populations[0..k], commitments[0..k]]; a
// replicate-end record is flagged by round == StreamEndRound with payload
// [solved, rounds, winner, faulty, ...zeros].
const StreamEndRound = -1

// StreamRowWidth returns the ring payload width (in int32s) StreamObserver
// needs for an environment with k candidate nests. It is always ≥ 4, so the
// replicate-end payload fits.
func StreamRowWidth(k int) int { return 2 * (k + 1) }

// DecodeStreamEnd unpacks a replicate-end payload (a record whose round is
// StreamEndRound).
func DecodeStreamEnd(row []int32) (solved bool, rounds int, winner NestID, faulty int) {
	return row[0] != 0, int(row[1]), NestID(row[2]), int(row[3])
}

// StreamObserver is the BatchObserver that pushes per-round census records
// into a trace.Collector's lane rings: the zero-allocation transport from
// the engine's hot loop to the collector goroutine. Each lane observer owns
// a preallocated row and its own SPSC ring, so the per-round record path
// performs no allocation and no locking; the collector's sink sees, per
// replicate, rounds 1..R in order followed by one StreamEndRound record.
type StreamObserver struct {
	coll *trace.Collector
	k    int
}

// NewStreamObserver wires a collector to an environment with k candidate
// nests. The collector must have been built with payload width
// StreamRowWidth(k).
func NewStreamObserver(coll *trace.Collector, k int) (*StreamObserver, error) {
	if coll == nil {
		return nil, fmt.Errorf("sim: stream observer needs a collector")
	}
	if k < 1 {
		return nil, fmt.Errorf("sim: stream observer needs k ≥ 1, got %d", k)
	}
	if w := coll.Width(); w != StreamRowWidth(k) {
		return nil, fmt.Errorf("sim: collector payload width %d, want %d for k=%d", w, StreamRowWidth(k), k)
	}
	return &StreamObserver{coll: coll, k: k}, nil
}

// LaneObserver implements BatchObserver. Safe for concurrent calls: ring
// registration is the collector's concern.
func (o *StreamObserver) LaneObserver(lane int) LaneObserver {
	return &streamLane{ring: o.coll.Lane(lane), row: make([]int32, StreamRowWidth(o.k)), k: o.k}
}

// streamLane is one lane's ring producer.
type streamLane struct {
	ring *trace.Ring
	row  []int32
	k    int
}

// ObserveRound implements LaneObserver: pack the two censuses into the
// preallocated row and push. Push blocks (spinning) if the collector falls a
// full ring behind, trading a stall for losslessness.
func (s *streamLane) ObserveRound(rep, round int, counts, committed []int) {
	row := s.row
	base := s.k + 1
	for i := 0; i < base; i++ {
		row[i] = int32(counts[i])
		row[base+i] = int32(committed[i])
	}
	s.ring.Push(int32(rep), int32(round), row)
}

// ReplicateDone implements LaneObserver: emit the StreamEndRound marker.
func (s *streamLane) ReplicateDone(rep int, res *BatchResult) {
	row := s.row
	row[0] = 0
	if res.Solved {
		row[0] = 1
	}
	row[1] = int32(res.Rounds)
	row[2] = int32(res.Winner)
	row[3] = int32(res.Faulty)
	for i := 4; i < len(row); i++ {
		row[i] = 0
	}
	s.ring.Push(int32(rep), StreamEndRound, row)
}
