package fixedpoint_test

import (
	"testing"

	"github.com/gmrl/househunt/internal/lint/analysistest"
	"github.com/gmrl/househunt/internal/lint/fixedpoint"
)

func TestFixedPoint(t *testing.T) {
	analysistest.Run(t, fixedpoint.Analyzer, "fpfix")
}
