package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// QuorumAnt implements the strategy real Temnothorax colonies are believed
// to use (paper §1.1, Pratt et al. [22][23]), combining two of the paper's §6
// extensions — quorum thresholds and the tandem-run/transport distinction:
//
//  1. Search, assess, and canvass exactly like Algorithm 3: tandem-run
//     recruitment with probability count/n (carry 1).
//  2. When a visit to the committed nest shows a population at or above the
//     ant's quorum threshold T, the ant switches irreversibly to transport:
//     it recruits every round with carry Carry (default 3 — direct transport
//     is about three times faster than tandem walking, the paper's [21]).
//
// The threshold self-calibrates: T = Multiplier × the population the ant saw
// on its first visit (its initial share, ≈ n/k). A fixed absolute threshold
// below n/k would be met by every nest in round 1 — in this model all n ants
// search simultaneously, unlike the biology where only scouts do — locking
// rival nests into a symmetric transport tug-of-war. Requiring the nest to
// have grown by a factor > 1 over the initial share is the model-appropriate
// reading of "a quorum has been reached".
//
// Quality is judged through an Assessor, so a noisy assessor turns the quorum
// multiplier into the biologists' speed-accuracy dial (Pratt & Sumpter [24]):
// a low quorum commits fast but amplifies individual misjudgments; a high
// quorum filters them at the cost of time. EXPERIMENTS.md E18 measures the
// trade-off.
type QuorumAnt struct {
	n      int
	src    *rng.Source
	phase  simplePhase
	active bool

	nest    sim.NestID
	count   int
	quality float64

	multiplier float64
	threshold  int
	carry      int
	transport  bool
	docility   float64
	assessor   nest.Assessor
}

var _ sim.Agent = (*QuorumAnt)(nil)

// NewQuorumAnt builds one quorum-transport ant. multiplier scales the ant's
// initially observed population into its quorum threshold (values <= 1 mean
// the default 1.5); carry is the transport capacity (values < 1 mean 3);
// docility is the probability a transporter submits to being carried away
// (values outside (0,1] mean the default 0.25); assessor may be nil for
// exact assessment.
func NewQuorumAnt(n int, src *rng.Source, multiplier float64, carry int, docility float64, assessor nest.Assessor) *QuorumAnt {
	if multiplier <= 1 {
		multiplier = 1.5
	}
	if carry < 1 {
		carry = 3
	}
	if docility <= 0 || docility > 1 {
		docility = 0.25
	}
	if assessor == nil {
		assessor = nest.ExactAssessor{}
	}
	return &QuorumAnt{
		n: n, src: src, phase: simpleSearch, active: true,
		multiplier: multiplier, carry: carry, docility: docility, assessor: assessor,
	}
}

// Act implements sim.Agent.
func (a *QuorumAnt) Act(int) sim.Action {
	switch a.phase {
	case simpleSearch:
		return sim.Search()
	case simpleRecruit:
		if a.transport {
			return sim.Transport(a.nest, a.carry)
		}
		b := false
		if a.active {
			b = a.src.Bernoulli(float64(a.count) / float64(a.n))
		}
		return sim.Recruit(b, a.nest)
	default:
		return sim.Goto(a.nest)
	}
}

// Observe implements sim.Agent.
func (a *QuorumAnt) Observe(_ int, out sim.Outcome) {
	switch a.phase {
	case simpleSearch:
		a.nest = out.Nest
		a.count = out.Count
		a.quality = a.assessor.Assess(out.Quality, a.src)
		if a.quality <= 0.5 {
			a.active = false
		}
		// Self-calibrate: quorum = multiplier × the initial share, at least
		// the initial share + 2 so growth is always required.
		a.threshold = int(a.multiplier * float64(out.Count))
		if a.threshold < out.Count+2 {
			a.threshold = out.Count + 2
		}
		a.phase = simpleRecruit
	case simpleRecruit:
		if out.Recruited {
			// Captured (tandem-run or carried). Unlike the §2 model's ants,
			// a carried ant knows it was carried (it was physically picked
			// up), so the check uses Recruited rather than a nest change: an
			// ant that misjudged the winning nest and is carried there by a
			// nestmate advertising that same nest must still wake up.
			//
			// Canvassers and passives adopt the capturer's nest. Transporters
			// mostly resist — their commitment is near-irreversible in the
			// biology, which stops a lone misguided canvasser from kidnapping
			// the moving colony — but submit with probability docility and
			// demote to canvassers of the new nest. Without some docility,
			// two nests that both pass quorum would split the colony forever;
			// with it, the larger transporter camp absorbs the smaller.
			submit := !a.transport || a.src.Bernoulli(a.docility)
			if submit {
				if out.Nest != a.nest {
					a.transport = false
				}
				a.nest = out.Nest
				a.active = true
			}
		}
		a.phase = simpleAssess
	case simpleAssess:
		a.count = out.Count
		a.checkQuorum()
		a.phase = simpleRecruit
	}
}

// checkQuorum flips the ant to transport mode when its committed nest's
// population reaches the threshold. Only ants that judged the nest good
// canvass, and only canvassers promote to transport.
func (a *QuorumAnt) checkQuorum() {
	if !a.transport && a.active && a.threshold > 0 && a.count >= a.threshold {
		a.transport = true
	}
}

// Committed implements the core.Committer contract.
func (a *QuorumAnt) Committed() (sim.NestID, bool) {
	return a.nest, a.nest != sim.Home
}

// Decided implements the core.Decided contract: an ant is decided once it
// transports. (Ants carried to the winner late reach quorum at their next
// visit, since the winning nest's population is far above threshold.)
func (a *QuorumAnt) Decided() bool { return a.transport }

// Transporting exposes the transport flag for tests and experiments.
func (a *QuorumAnt) Transporting() bool { return a.transport }

// Quorum is the core.Algorithm builder for the quorum-transport strategy.
// Multiplier scales an ant's initially observed population into its quorum
// threshold (default 1.5; must exceed 1 when set); Carry is the transport
// capacity (default 3); Docility is the probability a transporter submits to
// being carried away (default 0.25); Assessor defaults to exact.
type Quorum struct {
	Multiplier float64
	Carry      int
	Docility   float64
	Assessor   nest.Assessor
}

// Name implements core.Algorithm.
func (q Quorum) Name() string {
	mult := q.Multiplier
	if mult <= 0 {
		mult = 1.5
	}
	if q.Assessor != nil {
		return fmt.Sprintf("quorum(M=%.2g,%s)", mult, q.Assessor.Name())
	}
	return fmt.Sprintf("quorum(M=%.2g)", mult)
}

// Build implements core.Algorithm.
func (q Quorum) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: quorum needs a positive colony, got %d", n)
	}
	if env.K() == 0 {
		return nil, fmt.Errorf("algo: quorum needs a non-empty environment")
	}
	if q.Multiplier != 0 && q.Multiplier <= 1 {
		return nil, fmt.Errorf("algo: quorum multiplier %v must exceed 1", q.Multiplier)
	}
	if q.Docility < 0 || q.Docility > 1 {
		return nil, fmt.Errorf("algo: quorum docility %v outside [0,1]", q.Docility)
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		agents[i] = NewQuorumAnt(n, src.Split(uint64(i)), q.Multiplier, q.Carry, q.Docility, q.Assessor)
	}
	return agents, nil
}
