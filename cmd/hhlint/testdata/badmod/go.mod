module badfix

go 1.24
