package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	t.Parallel()
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	t.Parallel()
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sources with different seeds produced %d/100 identical draws", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	t.Parallel()
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed: got %d, want %d", i, got, first[i])
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	t.Parallel()
	s := New(99)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	st := s.State()
	clone, err := NewFromState(st)
	if err != nil {
		t.Fatalf("NewFromState: %v", err)
	}
	for i := 0; i < 100; i++ {
		if got, want := clone.Uint64(), s.Uint64(); got != want {
			t.Fatalf("draw %d: restored source diverged", i)
		}
	}
}

func TestNewFromStateRejectsZero(t *testing.T) {
	t.Parallel()
	if _, err := NewFromState([4]uint64{}); err == nil {
		t.Fatal("NewFromState accepted an all-zero state")
	}
}

func TestSplitDeterministicAndNonAdvancing(t *testing.T) {
	t.Parallel()
	parent := New(5)
	before := parent.State()
	c1 := parent.Split(3)
	c2 := parent.Split(3)
	if parent.State() != before {
		t.Fatal("Split advanced the parent stream")
	}
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("draw %d: equal split indices produced different streams", i)
		}
	}
}

func TestSplitChildrenIndependent(t *testing.T) {
	t.Parallel()
	parent := New(5)
	a := parent.Split(0)
	b := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent split children shared %d/1000 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	t.Parallel()
	s := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
				// The message is a constant string: formatting it with fmt
				// would put an fmt.Sprintf call (and fmt's allocations) on
				// the draw hot path, which hhlint's hotpathalloc forbids.
				if msg, ok := r.(string); !ok || msg != "rng: Intn called with non-positive n" {
					t.Fatalf("Intn(%d) panic = %#v, want the constant hot-path message", n, r)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	t.Parallel()
	s := New(123)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from expectation %.0f by more than 5 sigma", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	s := New(77)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	t.Parallel()
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	t.Parallel()
	s := New(13)
	const draws = 200000
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		hits := 0
		for i := 0; i < draws; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		sigma := math.Sqrt(p * (1 - p) / draws)
		if math.Abs(got-p) > 6*sigma {
			t.Errorf("Bernoulli(%v): frequency %v deviates more than 6 sigma", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	s := New(21)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIntoMatchesInvariant(t *testing.T) {
	t.Parallel()
	s := New(22)
	for _, n := range []int{0, 1, 2, 3, 5, 17, 100} {
		dst := make([]int, n)
		// Poison the buffer to catch reliance on zero-initialization.
		for i := range dst {
			dst[i] = -1
		}
		s.PermInto(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("PermInto(%d) produced invalid permutation %v", n, dst)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	t.Parallel()
	s := New(23)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("Perm first-element bucket %d: count %d vs expected %.0f", i, c, want)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	t.Parallel()
	s := New(31)
	xs := []int{10, 20, 30, 40, 50, 60, 70}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestBinomialMoments(t *testing.T) {
	t.Parallel()
	s := New(41)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5}, {50, 0.1}, {200, 0.3}, {1000, 0.02}, {5000, 0.001},
	}
	const draws = 20000
	for _, tc := range cases {
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			v := float64(s.Binomial(tc.n, tc.p))
			if v < 0 || v > float64(tc.n) {
				t.Fatalf("Binomial(%d,%v) = %v out of range", tc.n, tc.p, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / draws
		wantMean := float64(tc.n) * tc.p
		sigma := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(mean-wantMean) > 6*sigma/math.Sqrt(draws) {
			t.Errorf("Binomial(%d,%v): mean %v, want %v", tc.n, tc.p, mean, wantMean)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	t.Parallel()
	s := New(43)
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d, want 0", got)
	}
	if got := s.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d, want 0", got)
	}
	if got := s.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d, want 10", got)
	}
	if got := s.Binomial(-5, 0.5); got != 0 {
		t.Fatalf("Binomial(-5, .5) = %d, want 0", got)
	}
}

func TestGeometricMean(t *testing.T) {
	t.Parallel()
	s := New(47)
	const p, draws = 0.2, 100000
	var sum float64
	for i := 0; i < draws; i++ {
		g := s.Geometric(p)
		if g < 0 {
			t.Fatalf("Geometric returned negative %d", g)
		}
		sum += float64(g)
	}
	mean := sum / draws
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
	if got := s.Geometric(1.0); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	t.Parallel()
	s := New(53)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestUint64BitBalance(t *testing.T) {
	t.Parallel()
	s := New(61)
	const draws = 10000
	ones := make([]int, 64)
	for i := 0; i < draws; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if math.Abs(float64(c)-draws/2) > 6*math.Sqrt(draws/4) {
			t.Errorf("bit %d set in %d/%d draws; generator is biased", b, c, draws)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= s.Intn(1024)
	}
	_ = sink
}

func BenchmarkPermInto1024(b *testing.B) {
	s := New(1)
	dst := make([]int, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.PermInto(dst)
	}
}

// TestSplitIntoMatchesSplit pins the allocation-free variant to Split: both
// must derive the identical child stream, and SplitInto must not advance the
// parent.
func TestSplitIntoMatchesSplit(t *testing.T) {
	t.Parallel()
	parent := New(99)
	before := parent.State()
	for index := uint64(0); index < 50; index++ {
		want := parent.Split(index)
		var got Source
		parent.SplitInto(index, &got)
		if got.State() != want.State() {
			t.Fatalf("index %d: SplitInto state %v != Split state %v", index, got.State(), want.State())
		}
	}
	if parent.State() != before {
		t.Fatal("SplitInto advanced the parent stream")
	}
}
