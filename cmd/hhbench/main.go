// Command hhbench regenerates the experiment tables of EXPERIMENTS.md: one
// experiment per lemma/theorem/extension claim of the paper (E1-E27).
//
// Examples:
//
//	hhbench -list
//	hhbench -exp E9
//	hhbench -exp all -scale full
//	hhbench -engine scalar -exp E9   (force the scalar replicate loop)
//	hhbench -batchbench              (batch vs scalar throughput comparison)
//	hhbench -batchbench -json        (machine-readable BENCH records)
//	hhbench -batchbench -json -out BENCH_pr5.json   (write the artifact)
//	hhbench -batchbench -json -baseline BENCH_pr5.json   (regression gate)
//	hhbench -exp E9 -cpuprofile cpu.prof   (profile any run's hot path)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/experiment"
	"github.com/gmrl/househunt/internal/faults"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hhbench:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments; split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hhbench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment id (E1..E27) or 'all'")
		scale      = fs.String("scale", "small", "experiment sizing: small or full")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		engine     = fs.String("engine", "auto", "replicate engine: auto (batch where eligible) or scalar")
		batchbench = fs.Bool("batchbench", false, "run the batch vs scalar replicate-sweep throughput comparison and exit")
		jsonOut    = fs.Bool("json", false, "with -batchbench, write machine-readable BENCH records instead of text")
		outFile    = fs.String("out", "", "with -batchbench -json, also write the BENCH records to this file (the committed perf artifact)")
		baseline   = fs.String("baseline", "", "with -batchbench, compare batch ms/sweep against this BENCH records file and fail on regression")
		tolerance  = fs.Float64("tolerance", 0.30, "with -baseline, the accepted relative ms/sweep regression before failing")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch strings.ToLower(*engine) {
	case "auto":
		experiment.SetBatchEngine(true)
	case "scalar":
		experiment.SetBatchEngine(false)
	default:
		return fmt.Errorf("unknown engine %q (want auto or scalar)", *engine)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("creating cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("creating mem profile: %w", err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hhbench: writing mem profile:", err)
			}
			f.Close()
		}()
	}

	if *jsonOut && !*batchbench {
		return fmt.Errorf("-json requires -batchbench")
	}
	if (*outFile != "" || *baseline != "") && !*batchbench {
		return fmt.Errorf("-out and -baseline require -batchbench")
	}
	if *outFile != "" && !*jsonOut {
		return fmt.Errorf("-out requires -json")
	}
	if *batchbench {
		bb := defaultBatchBench(*jsonOut)
		bb.out = *outFile
		bb.baseline = *baseline
		bb.tolerance = *tolerance
		return runBatchBench(out, bb)
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	var sc experiment.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = experiment.ScaleSmall
	case "full":
		sc = experiment.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q (want small or full)", *scale)
	}

	ids := experiment.IDs()
	if !strings.EqualFold(*exp, "all") {
		ids = []string{*exp}
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := experiment.RunExperiment(id, sc)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Fprint(out, rep)
		fmt.Fprintf(out, "(elapsed %.1fs)\n\n", time.Since(start).Seconds())
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) reported a violated shape", failed)
	}
	return nil
}

// batchBenchConfig sizes the batch-vs-scalar comparison; the test shrinks it
// so the JSON record path stays exercisable in unit-test time.
type batchBenchConfig struct {
	n, k, good, reps, maxRounds int
	minTime                     time.Duration
	json                        bool
	out                         string  // also write the JSON records to this file
	baseline                    string  // compare against this BENCH records file
	tolerance                   float64 // accepted relative ms/sweep regression
	obsTolerance                float64 // accepted relative overhead of the observed batch cell
	// bigN > 0 adds the large-colony cell: one batch-only sweep of bigReps
	// colonies of bigN ants over bigK nests (no scalar baseline — the scalar
	// oracle at 10^6 ants would dominate the whole run), plus one
	// single-replicate worker-scaling row per scaleWorkers entry, each
	// checked bit-identical to the 1-worker reference.
	bigN, bigK, bigGood, bigReps int
	scaleWorkers                 []int
}

// defaultBatchBench is the published benchmark point: n=1024, k=4, R=32
// replicate colonies, at least a second of measurement per engine, plus the
// million-ant cell (n=10^6, k=16, R=4) that pins the post-ceiling fixed-point
// path and the worker-scaling rows (1, 2 and GOMAXPROCS workers on one
// replicate). The streaming-telemetry cell must stay within 10% of the
// unobserved batch engine — the observer is on the hot path, so its cost is
// gated, not merely reported.
func defaultBatchBench(jsonOut bool) batchBenchConfig {
	workers := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		workers = append(workers, p)
	}
	return batchBenchConfig{
		n: 1024, k: 4, good: 2, reps: 32, maxRounds: 4000, minTime: time.Second,
		json: jsonOut, obsTolerance: 0.10,
		bigN: 1_000_000, bigK: 16, bigGood: 2, bigReps: 4, scaleWorkers: workers,
	}
}

// benchRecord is the machine-readable BENCH line -batchbench -json emits, one
// per (algorithm, engine) cell; the batch cells carry the speedup over their
// scalar baseline. The record tracks the perf trajectory across PRs.
type benchRecord struct {
	Type           string  `json:"type"` // always "BENCH"
	Engine         string  `json:"engine"`
	Algorithm      string  `json:"algorithm"`
	N              int     `json:"n"`
	K              int     `json:"k"`
	Reps           int     `json:"reps"`
	MsPerSweep     float64 `json:"ms_per_sweep"`
	AntStepsPerSec float64 `json:"ant_steps_per_sec"`
	Speedup        float64 `json:"speedup,omitempty"`
	// Workers is the batch worker budget of a scaling row; 0 (omitted) means
	// the engine default and keeps pre-PR-9 records' keys unchanged.
	Workers int `json:"workers,omitempty"`
}

// batchBenchCell is one benchmarked (algorithm, adversary) configuration; the
// tag distinguishes faulted cells in the BENCH records, and wrap (a
// faults.Spec) routes both engines through the same adversary.
type batchBenchCell struct {
	algo core.Algorithm
	tag  string
	wrap core.AgentWrapper
}

// name is the record/reporting label of the cell.
func (c batchBenchCell) name() string { return c.algo.Name() + c.tag }

// batchBenchCells is the benchmarked inventory: every compiled algorithm —
// Algorithm 3 (simple, lockstep path), Algorithm 2 (optimal, per-ant state
// column path), the §6 recruit-draw extensions (adaptive, quality, approxn;
// lockstep with parameter columns), the quorum-transport strategy (general
// path with carry-aware matching) and the noisy-perception model (lockstep
// with estimator hooks) — plus a faulted cell timing the crash lanes (the
// scalar side runs the wrapped agents, the batch side the same spec compiled
// into the program) and an adaptive-adversary cell timing the per-round
// schedule pass (census snapshot + mutation application every round).
func batchBenchCells() []batchBenchCell {
	return []batchBenchCell{
		{algo: algo.Simple{}},
		{algo: algo.Optimal{}},
		{algo: algo.Adaptive{}},
		{algo: algo.QualityAware{}},
		{algo: algo.ApproxN{Delta: 0.2}},
		{algo: algo.Quorum{}},
		{algo: algo.Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.1}}},
		{algo: algo.Simple{}, tag: "+crash10", wrap: faults.Spec{CrashFraction: 0.1, CrashWindow: 64, Salt: 6001}},
		{algo: algo.Simple{}, tag: "+targeted", wrap: faults.Spec{Salt: 6002, NewSchedule: func() faults.Schedule {
			return &faults.TargetedCrash{PerRound: 1, Budget: 10}
		}}},
	}
}

// runBatchBench times the same replicate sweep (R colonies of n ants to
// convergence) on the scalar agent path and on the batch struct-of-arrays
// engine, for every compiled algorithm, reporting ant-step throughput and the
// batch/scalar speedup. Both paths execute bit-identical replicates, so the
// comparison is apples to apples. With bb.out set the JSON records are also
// written to a file (the committed perf artifact); with bb.baseline set the
// run fails if any batch cell's ms/sweep regressed beyond bb.tolerance
// relative to the baseline records.
func runBatchBench(out io.Writer, bb batchBenchConfig) error {
	env, err := workload.Binary(bb.k, bb.good)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	var records []benchRecord

	// Ant-steps executed: every solved replicate ran its recorded rounds,
	// every unsolved one the full budget.
	stepsOf := func(pt experiment.ConvergencePoint) int {
		solvedRounds := int(pt.Rounds.Mean*float64(pt.Solved) + 0.5)
		return solvedRounds + (bb.reps-pt.Solved)*bb.maxRounds
	}
	sweep := func(c batchBenchCell) (totalRounds int, err error) {
		cfg := core.RunConfig{N: bb.n, Env: env, MaxRounds: bb.maxRounds, Wrap: c.wrap}
		pt, err := experiment.MeasureConvergence(c.algo, cfg, bb.reps, "batchbench")
		if err != nil {
			return 0, err
		}
		return stepsOf(pt), nil
	}
	// sweepObserved is sweep with streaming telemetry attached: per-round
	// census records flow through the lane rings into the collector while
	// the sweep runs, so its cost difference against sweep IS the telemetry
	// overhead.
	sweepObserved := func(c batchBenchCell) (totalRounds int, err error) {
		cfg := core.RunConfig{N: bb.n, Env: env, MaxRounds: bb.maxRounds, Wrap: c.wrap}
		pt, dist, err := experiment.MeasureConvergenceStreamed(c.algo, cfg, bb.reps, "batchbench")
		if err != nil {
			return 0, err
		}
		if !dist.Streamed {
			return 0, fmt.Errorf("observed cell %s fell back to the scalar path", c.name())
		}
		return stepsOf(pt), nil
	}

	measure := func(c batchBenchCell, engine string, batch bool, speedupOver float64, sweep func(batchBenchCell) (int, error)) (benchRecord, error) {
		experiment.SetBatchEngine(batch)
		if _, err := sweep(c); err != nil { // warm-up
			return benchRecord{}, err
		}
		var (
			elapsed time.Duration
			rounds  int
			iters   int
		)
		for elapsed < bb.minTime || iters == 0 {
			start := time.Now()
			r, err := sweep(c)
			if err != nil {
				return benchRecord{}, err
			}
			elapsed += time.Since(start)
			rounds += r
			iters++
		}
		perSweepMs := (elapsed / time.Duration(iters)).Seconds() * 1e3
		steps := float64(rounds) * float64(bb.n) / elapsed.Seconds()
		rec := benchRecord{
			Type: "BENCH", Engine: engine, Algorithm: c.name(),
			N: bb.n, K: bb.k, Reps: bb.reps,
			MsPerSweep: perSweepMs, AntStepsPerSec: steps,
		}
		if speedupOver > 0 {
			rec.Speedup = steps / speedupOver
		}
		records = append(records, rec)
		if bb.json {
			if err := enc.Encode(rec); err != nil {
				return benchRecord{}, err
			}
		} else {
			fmt.Fprintf(out, "%-16s %-9s %3d sweep(s) of %d x n=%d k=%d: %8.1f ms/sweep, %11.0f ant-steps/s\n",
				c.name(), engine, iters, bb.reps, bb.n, bb.k, perSweepMs, steps)
		}
		return rec, nil
	}

	if !bb.json {
		fmt.Fprintf(out, "replicate-sweep throughput, scalar agents vs batch engine\n\n")
	}
	defer experiment.SetBatchEngine(true)
	for _, c := range batchBenchCells() {
		scalar, err := measure(c, "scalar", false, 0, sweep)
		if err != nil {
			return err
		}
		batch, err := measure(c, "batch", true, scalar.AntStepsPerSec, sweep)
		if err != nil {
			return err
		}
		if !bb.json {
			fmt.Fprintf(out, "\n%s speedup: %.2fx\n\n", c.name(), batch.AntStepsPerSec/scalar.AntStepsPerSec)
		}
		// One cell times the streaming-telemetry observer against the bare
		// batch engine and gates its overhead; the lockstep path (simple) has
		// the cheapest rounds, so it is the worst case for relative overhead.
		if c.name() != "simple" {
			continue
		}
		obs, err := measure(c, "batch+obs", true, scalar.AntStepsPerSec, sweepObserved)
		if err != nil {
			return err
		}
		overhead := obs.MsPerSweep/batch.MsPerSweep - 1
		if !bb.json {
			fmt.Fprintf(out, "\n%s telemetry overhead: %+.1f%%\n\n", c.name(), overhead*100)
		}
		if bb.obsTolerance > 0 && overhead > bb.obsTolerance {
			return fmt.Errorf("streaming telemetry overhead %.1f%% exceeds the %.0f%% gate (batch %.1f ms/sweep, observed %.1f ms/sweep)",
				overhead*100, bb.obsTolerance*100, batch.MsPerSweep, obs.MsPerSweep)
		}
	}
	if bb.bigN > 0 {
		big, err := runBigCell(out, bb)
		if err != nil {
			return err
		}
		records = append(records, big...)
		if bb.json {
			for _, rec := range big {
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
		}
	}
	if bb.out != "" {
		if err := writeBenchRecords(bb.out, records); err != nil {
			return err
		}
	}
	if bb.baseline != "" {
		return compareBenchBaseline(out, bb, records)
	}
	return nil
}

// runBigCell times the large-colony configuration on the batch engine alone:
// one R=bigReps sweep of bigN-ant colonies (the cell ROADMAP item 1 asks
// for), then one single-replicate run per worker budget in bb.scaleWorkers.
// The scaling rows must all return bit-identical Results — lanes and shards
// partition work without reordering draws — so the row is a correctness check
// as much as a timing; elapsed times are reported as measured, which on a
// single-core host means a flat profile (the fan-out costs what it costs,
// honest numbers over flattering ones).
func runBigCell(out io.Writer, bb batchBenchConfig) ([]benchRecord, error) {
	env, err := workload.Binary(bb.bigK, bb.bigGood)
	if err != nil {
		return nil, err
	}
	a := algo.Simple{}
	cfg := core.RunConfig{N: bb.bigN, Env: env, MaxRounds: bb.maxRounds}
	sweep := func(cfg core.RunConfig, seeds []uint64) ([]core.Result, float64, int, error) {
		start := time.Now()
		res, ok, err := core.RunBatch(a, cfg, seeds)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("big cell: %w", err)
		}
		if !ok {
			return nil, 0, 0, fmt.Errorf("big cell: n=%d fell off the batch path", cfg.N)
		}
		rounds := 0
		for _, r := range res {
			rounds += r.Rounds
		}
		return res, time.Since(start).Seconds() * 1e3, rounds, nil
	}

	var records []benchRecord
	seeds := make([]uint64, bb.bigReps)
	for i := range seeds {
		seeds[i] = uint64(9000 + i)
	}
	_, ms, rounds, err := sweep(cfg, seeds)
	if err != nil {
		return nil, err
	}
	rec := benchRecord{
		Type: "BENCH", Engine: "batch", Algorithm: a.Name(),
		N: bb.bigN, K: bb.bigK, Reps: bb.bigReps,
		MsPerSweep: ms, AntStepsPerSec: float64(rounds) * float64(bb.bigN) / (ms / 1e3),
	}
	records = append(records, rec)
	if !bb.json {
		fmt.Fprintf(out, "%-16s %-9s   1 sweep(s) of %d x n=%d k=%d: %8.1f ms/sweep, %11.0f ant-steps/s\n",
			a.Name(), "batch", bb.bigReps, bb.bigN, bb.bigK, rec.MsPerSweep, rec.AntStepsPerSec)
	}

	// One untimed single-replicate warm-up: the first run after the sweep
	// pays heap growth and GC assists for its fresh lane columns, which
	// otherwise lands entirely on the first scaling row and skews the
	// comparison by ~3x.
	if len(bb.scaleWorkers) > 0 {
		wcfg := cfg
		wcfg.BatchWorkers = bb.scaleWorkers[0]
		if _, _, _, err := sweep(wcfg, seeds[:1]); err != nil {
			return nil, err
		}
	}
	var ref []core.Result
	for _, w := range bb.scaleWorkers {
		wcfg := cfg
		wcfg.BatchWorkers = w
		res, ms, rounds, err := sweep(wcfg, seeds[:1])
		if err != nil {
			return nil, err
		}
		if ref == nil {
			ref = res
		} else if !reflect.DeepEqual(res, ref) {
			return nil, fmt.Errorf("big cell: %d-worker run diverged from the 1-worker reference", w)
		}
		rec := benchRecord{
			Type: "BENCH", Engine: "batch", Algorithm: a.Name() + "+scale",
			N: bb.bigN, K: bb.bigK, Reps: 1, Workers: w,
			MsPerSweep: ms, AntStepsPerSec: float64(rounds) * float64(bb.bigN) / (ms / 1e3),
		}
		records = append(records, rec)
		if !bb.json {
			fmt.Fprintf(out, "%-16s %-9s workers=%d, 1 replicate of n=%d k=%d: %8.1f ms, %11.0f ant-steps/s\n",
				a.Name()+"+scale", "batch", w, bb.bigN, bb.bigK, rec.MsPerSweep, rec.AntStepsPerSec)
		}
	}
	return records, nil
}

// writeBenchRecords writes the BENCH records as JSON lines to path.
func writeBenchRecords(path string, records []benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing BENCH artifact: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("writing BENCH artifact: %w", err)
		}
	}
	return f.Close()
}

// readBenchRecords parses a JSON-lines BENCH records file.
func readBenchRecords(path string) ([]benchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("reading BENCH baseline: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var records []benchRecord
	for dec.More() {
		var rec benchRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("reading BENCH baseline %s: %w", path, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

// compareBenchBaseline is the perf regression gate: every batch cell present
// in both the baseline and the fresh run (matched on algorithm, n, k, reps)
// must not exceed the baseline ms/sweep by more than the tolerance. Scalar
// cells are informational — the scalar agent path is not the optimization
// target — and cells missing from either side are skipped (the inventory may
// grow), but a baseline whose batch cells ALL vanished is an error.
func compareBenchBaseline(out io.Writer, bb batchBenchConfig, fresh []benchRecord) error {
	base, err := readBenchRecords(bb.baseline)
	if err != nil {
		return err
	}
	key := func(r benchRecord) string {
		return fmt.Sprintf("%s|%s|%d|%d|%d|%d", r.Engine, r.Algorithm, r.N, r.K, r.Reps, r.Workers)
	}
	current := make(map[string]benchRecord, len(fresh))
	for _, r := range fresh {
		current[key(r)] = r
	}
	compared := 0
	regressed := 0
	for _, b := range base {
		if b.Engine != "batch" {
			continue
		}
		cur, ok := current[key(b)]
		if !ok {
			continue
		}
		compared++
		ratio := cur.MsPerSweep / b.MsPerSweep
		status := "ok"
		if ratio > 1+bb.tolerance {
			status = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(out, "baseline %-30s %8.1f -> %8.1f ms/sweep (%+.1f%%) %s\n",
			b.Algorithm, b.MsPerSweep, cur.MsPerSweep, (ratio-1)*100, status)
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no batch cells with this run", bb.baseline)
	}
	if regressed > 0 {
		return fmt.Errorf("%d batch cell(s) regressed more than %.0f%% vs %s", regressed, bb.tolerance*100, bb.baseline)
	}
	fmt.Fprintf(out, "baseline check passed: %d batch cell(s) within %.0f%% of %s\n", compared, bb.tolerance*100, bb.baseline)
	return nil
}
