package sim

import "testing"

// newFoldLane builds the minimal lane slice-set the capture-adoption fold
// reads: three ants committed to nests 1, 2, 2 with a 3-nest commitment
// census (index 0 is home).
func newFoldLane() *lane {
	return &lane{
		nest:    []NestID{1, 2, 2},
		quality: []float64{0.25, 0.5, 0.75},
		commit:  []int{0, 1, 2},
		actNest: []NestID{2, 1, 2},
	}
}

// TestAdoptCaptureModes pins the mode-dispatched adoption fold that replaced
// the per-call-site closures: every mode moves the ant and maintains the
// incremental census identically, and only the quality family touches the
// quality register.
func TestAdoptCaptureModes(t *testing.T) {
	t.Parallel()

	t.Run("plain", func(t *testing.T) {
		ln := newFoldLane()
		ln.adoptCapture(0, 2, adoptPlain)
		if ln.nest[0] != 2 {
			t.Fatalf("nest[0] = %d, want 2", ln.nest[0])
		}
		if ln.commit[1] != 0 || ln.commit[2] != 3 {
			t.Fatalf("census = %v, want [0 0 3]", ln.commit)
		}
		if ln.quality[0] != 0.25 {
			t.Fatalf("plain adoption touched the quality register: q=%v", ln.quality[0])
		}
	})

	t.Run("qualOne", func(t *testing.T) {
		ln := newFoldLane()
		ln.adoptCapture(1, 1, adoptQualOne)
		if ln.nest[1] != 1 {
			t.Fatalf("nest[1] = %d, want 1", ln.nest[1])
		}
		if ln.commit[1] != 2 || ln.commit[2] != 1 {
			t.Fatalf("census = %v, want [0 2 1]", ln.commit)
		}
		if ln.quality[1] != 1 {
			t.Fatalf("quality[1] = %v, want 1 (a captured ant trusts its recruiter)", ln.quality[1])
		}
	})

	t.Run("qualZero", func(t *testing.T) {
		ln := newFoldLane()
		ln.adoptCapture(2, 1, adoptQualZero)
		if ln.nest[2] != 1 {
			t.Fatalf("nest[2] = %d, want 1", ln.nest[2])
		}
		if ln.quality[2] != 0 {
			t.Fatalf("qualZero must zero quality: q=%v", ln.quality[2])
		}
	})
}

// TestFoldCaptureAdoptsScan pins the lockstep capture scan: only ants whose
// capturer is a different ant advertising a different nest fold, so self-pairs,
// uncaptured ants and same-nest captures are all no-ops.
func TestFoldCaptureAdoptsScan(t *testing.T) {
	t.Parallel()
	ln := newFoldLane()
	// Ant 0: captured by ant 2, which advertises nest 2 != nest[0]=1 → folds.
	// Ant 1: self-pair (capturedBy[1] = 1) → no fold.
	// Ant 2: uncaptured → no fold.
	ln.capturedBy = []int32{2, 1, -1}
	ln.foldCaptureAdopts(adoptQualOne)
	if ln.nest[0] != 2 || ln.quality[0] != 1 {
		t.Fatalf("ant 0 should adopt nest 2 with quality 1; got nest=%d q=%v", ln.nest[0], ln.quality[0])
	}
	if ln.nest[1] != 2 || ln.quality[1] != 0.5 {
		t.Fatalf("self-pair must not fold: nest=%d q=%v", ln.nest[1], ln.quality[1])
	}
	if ln.nest[2] != 2 || ln.quality[2] != 0.75 {
		t.Fatalf("uncaptured ant must not fold: nest=%d q=%v", ln.nest[2], ln.quality[2])
	}
	if ln.commit[1] != 0 || ln.commit[2] != 3 {
		t.Fatalf("census = %v, want [0 0 3]", ln.commit)
	}

	// A capturer advertising the ant's own nest is a no-op adoption.
	ln2 := newFoldLane()
	ln2.actNest = []NestID{2, 2, 2}
	ln2.capturedBy = []int32{-1, 2, -1} // ant 1 captured by ant 2: actNest 2 == nest[1]
	ln2.foldCaptureAdopts(adoptQualZero)
	if ln2.nest[1] != 2 || ln2.quality[1] != 0.5 {
		t.Fatalf("same-nest capture must not fold: nest=%d q=%v", ln2.nest[1], ln2.quality[1])
	}
}
