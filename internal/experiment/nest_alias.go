package experiment

import "github.com/gmrl/househunt/internal/nest"

// nestRelative builds a relative-noise count estimator; a tiny indirection
// that keeps suite.go free of a second nest import alias.
func nestRelative(sigma float64) nest.CountEstimator {
	return nest.RelativeNoiseCounter{Sigma: sigma}
}

// nestFlip builds a flip assessor for the quorum speed-accuracy experiment.
func nestFlip(p float64) nest.Assessor {
	return nest.FlipAssessor{P: p}
}
