package experiment

import (
	"fmt"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/stats"
	"github.com/gmrl/househunt/internal/trace"
)

// DefaultSketchAlpha is the relative accuracy of the convergence-time
// quantile sketch: any streamed quantile is within 1% of a sample value.
const DefaultSketchAlpha = 0.01

// streamRingSlots sizes each lane's telemetry ring. 256 rounds of slack per
// lane keeps the engine from ever blocking on the collector in practice
// while costing ~2·(k+1)·4·256 bytes per worker.
const streamRingSlots = 256

// StreamedDistributions holds the online statistics a streamed measurement
// folds as rounds complete — full convergence-time distributions out of a
// sweep with no post-hoc replay, which is what the paper's
// with-high-probability claims need (a mean cannot witness a tail bound).
type StreamedDistributions struct {
	// Rounds accumulates convergence rounds over the solved reps (Welford
	// moments: mean/variance/min/max stream exactly).
	Rounds stats.Welford
	// RoundsQ sketches the same observations for quantile queries within
	// DefaultSketchAlpha relative error; sketches from sharded sweeps merge
	// exactly (see stats.QuantileSketch).
	RoundsQ *stats.QuantileSketch
	// Quality accumulates q(winner) over the solved reps.
	Quality stats.Welford
	// RoundsObserved counts the per-round records folded: the sum of every
	// replicate's executed rounds. On the batch path each executed round
	// streamed one census record through the lane rings.
	RoundsObserved uint64
	// Streamed reports the source: true when the statistics were folded from
	// the batch engine's ring-buffer telemetry as rounds completed, false
	// when the cell was batch-ineligible and they were folded from the
	// scalar fallback's results.
	Streamed bool
}

// foldSink folds collector records into StreamedDistributions. All calls
// arrive on the single collector goroutine, so it needs no locking; results
// are read only after Collector.Close. It allocates nothing per record.
type foldSink struct {
	qual []float64 // quality by nest id (index 0 = home)
	d    *StreamedDistributions
}

func (s *foldSink) Record(_ int, _, round int32, row []int32) {
	if round != sim.StreamEndRound {
		s.d.RoundsObserved++
		return
	}
	solved, rounds, winner, _ := sim.DecodeStreamEnd(row)
	if !solved {
		return
	}
	s.d.Rounds.Add(float64(rounds))
	s.d.RoundsQ.Add(float64(rounds))
	s.d.Quality.Add(s.qual[winner])
}

// MeasureConvergenceStreamed is MeasureConvergence with streaming telemetry:
// on the batch path it attaches a sim.StreamObserver, so per-round census
// records flow through per-lane ring buffers into a collector goroutine that
// folds the distributions online while the sweep runs. The ConvergencePoint
// is identical to MeasureConvergence's (observation is draw-free); the
// distributions additionally carry exact streaming moments and a mergeable
// quantile sketch over convergence times.
//
// Cells the batch engine declines (see core.CompileForBatch) fall back to
// the scalar loop and fold the same distributions from its results, so the
// API is total; Streamed reports which path ran.
func MeasureConvergenceStreamed(algo core.Algorithm, cfg core.RunConfig, reps int, tag string) (ConvergencePoint, *StreamedDistributions, error) {
	if err := validateMeasurement(algo, reps); err != nil {
		return ConvergencePoint{}, nil, err
	}
	seeds := convergenceSeeds(cfg, reps, tag)
	dist := &StreamedDistributions{RoundsQ: stats.MustQuantileSketch(DefaultSketchAlpha)}

	if BatchEngineEnabled() {
		runs, ok, err := runBatchStreamed(algo, cfg, seeds, dist)
		if err != nil {
			return ConvergencePoint{}, nil, err
		}
		if ok {
			dist.Streamed = true
			return aggregatePoint(algo, cfg, runs), dist, nil
		}
	}

	runs, err := runScalarReps(algo, cfg, seeds)
	if err != nil {
		return ConvergencePoint{}, nil, err
	}
	for _, res := range runs {
		dist.RoundsObserved += uint64(res.Rounds)
		if res.Solved {
			dist.Rounds.Add(float64(res.Rounds))
			dist.RoundsQ.Add(float64(res.Rounds))
			dist.Quality.Add(res.WinnerQuality)
		}
	}
	return aggregatePoint(algo, cfg, runs), dist, nil
}

// runBatchStreamed wires collector → observer → batch engine for one cell.
// The boolean mirrors core.RunBatchObserved's eligibility.
func runBatchStreamed(algo core.Algorithm, cfg core.RunConfig, seeds []uint64, dist *StreamedDistributions) ([]core.Result, bool, error) {
	k := cfg.Env.K()
	if k == 0 {
		return nil, false, nil // ineligible; the scalar path reports the error
	}
	coll, err := trace.NewCollector(sim.StreamRowWidth(k), streamRingSlots, &foldSink{qual: cfg.Env.Qualities(), d: dist})
	if err != nil {
		return nil, false, fmt.Errorf("experiment: building telemetry collector: %w", err)
	}
	defer coll.Close()
	obs, err := sim.NewStreamObserver(coll, k)
	if err != nil {
		return nil, false, fmt.Errorf("experiment: building stream observer: %w", err)
	}
	runs, ok, err := core.RunBatchObserved(algo, cfg, seeds, obs)
	if err != nil {
		return nil, false, fmt.Errorf("experiment: streamed batch sweep: %w", err)
	}
	if !ok {
		return nil, false, nil
	}
	coll.Close() // drain the tail before the caller reads dist
	return runs, true, nil
}
