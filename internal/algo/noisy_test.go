package algo

import (
	"testing"

	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/sim"
)

// TestNoisyZeroNoiseDegenerate pins the zero-noise corners of the perception
// stack: a RelativeNoiseCounter with σ = 0 must report every count exactly
// (it still consumes a normal draw — the noise term is multiplied away, not
// skipped), a FlipAssessor with p = 0 must return the true quality without
// consuming any randomness (Bernoulli(0) draws nothing), and a Noisy colony
// assembled from both must still solve the instance with a good winner.
func TestNoisyZeroNoiseDegenerate(t *testing.T) {
	t.Parallel()
	src := testSrc(31)
	counter := nest.RelativeNoiseCounter{Sigma: 0}
	for _, c := range []int{0, 1, 7, 100, 1 << 20} {
		if got := counter.Estimate(c, 1024, src); got != c {
			t.Fatalf("σ=0 estimate of %d = %d, want exact", c, got)
		}
	}
	flip := nest.FlipAssessor{P: 0}
	before := src.State()
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := flip.Assess(q, src); got != q {
			t.Fatalf("p=0 flip of %v = %v, want unchanged", q, got)
		}
	}
	if src.State() != before {
		t.Fatal("p=0 flip consumed randomness; the degenerate case must be draw-free")
	}

	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	a := Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0}, Assessor: nest.FlipAssessor{P: 0}}
	res := runAlgo(t, a, 128, env, 5, 0)
	if !res.Solved || !env.Good(res.Winner) {
		t.Fatalf("zero-noise colony failed: %+v", res)
	}
}

// TestNoisyThresholdExactBoundary pins the good/bad classification at its
// boundary: a perceived quality exactly equal to the threshold reads as bad
// (the comparison is quality <= threshold), anything above reads as good.
func TestNoisyThresholdExactBoundary(t *testing.T) {
	t.Parallel()
	at, err := NewNoisyAnt(64, testSrc(32), nest.ExactCounter{}, nest.ExactAssessor{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	at.Act(1)
	at.Observe(1, sim.Outcome{Nest: 1, Count: 4, Quality: 0.5})
	if at.active {
		t.Fatal("quality exactly at the threshold classified as good")
	}
	above, err := NewNoisyAnt(64, testSrc(33), nest.ExactCounter{}, nest.ExactAssessor{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	above.Act(1)
	above.Observe(1, sim.Outcome{Nest: 1, Count: 4, Quality: 0.5000001})
	if !above.active {
		t.Fatal("quality just above the threshold classified as bad")
	}
}

// TestNoisyOverestimateClampsProbability pins the recruit-probability clamp:
// a noisy count above n would put count/n past 1, and the ant must treat it
// as a sure recruit (Bernoulli at p >= 1 is deterministically true and
// consumes no randomness) rather than emit an out-of-range probability.
func TestNoisyOverestimateClampsProbability(t *testing.T) {
	t.Parallel()
	a, err := NewNoisyAnt(8, testSrc(34), nest.ExactCounter{}, nest.ExactAssessor{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a.Act(1)
	// The engine would never report 40 ants in an 8-ant colony, but a noisy
	// counter can: model it by feeding the inflated count through an exact
	// perception path.
	a.Observe(1, sim.Outcome{Nest: 1, Count: 40, Quality: 1})
	before := a.src.State()
	act := a.Act(2)
	if act.Kind != sim.ActionRecruit || !act.Active {
		t.Fatalf("overestimating ant act = %+v, want a sure active recruit", act)
	}
	if a.src.State() != before {
		t.Fatal("clamped sure recruit consumed randomness")
	}
}

// TestNoisyZeroNoisePerceptionTracksExactCounts runs a full colony whose
// estimator and assessor both carry zero noise and asserts, round for round,
// that every ant's perceived count equals the engine's true end-of-round
// count of the nest it observed: the zero-noise perception stack degenerates
// to exact counting (while still consuming its normal draws, so it is NOT
// stream-identical to ExactCounter — only value-identical).
func TestNoisyZeroNoisePerceptionTracksExactCounts(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	const n, rounds = 64, 120
	a := Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0}, Assessor: nest.GaussianAssessor{Sigma: 0}}
	agents, err := a.Build(n, env, testSrc(7))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(env, agents, sim.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		for i, ag := range agents {
			ant := ag.(*NoisyAnt)
			switch eng.ActionTaken(i).Kind {
			case sim.ActionSearch, sim.ActionGo:
				if want := eng.Outcome(i).Count; ant.count != want {
					t.Fatalf("round %d ant %d: perceived count %d != exact count %d",
						r+1, i, ant.count, want)
				}
			}
		}
	}
}
