package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for the experiment harness and CLI
// tools. Cells are strings; numeric formatting is the caller's concern so a
// single experiment can mix integers, ratios, and confidence intervals.
//
// The zero value is an empty table ready for use.
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows are
// accepted and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from Sprintf formats, one per cell.
func (t *Table) AddRowf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "\t"))
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a title line, a header rule, and aligned
// columns, in the style used throughout EXPERIMENTS.md.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return t.title + "\n"
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
