// Package rng provides the deterministic pseudo-random number generation
// substrate used by every stochastic component of the simulator.
//
// All randomness in an execution flows from a single 64-bit seed. The seed is
// expanded with splitmix64 into independent xoshiro256** streams: one for the
// environment (search destinations), one for the recruitment matcher, and one
// per ant. Because streams are split deterministically by index rather than
// drawn on demand, the sequential and concurrent execution modes of the
// engine observe identical random choices, which makes whole executions
// reproducible byte-for-byte.
//
// The package is self-contained (stdlib only) and allocation-free on the hot
// paths. It is not cryptographically secure and must never be used for
// security purposes.
package rng

import (
	"errors"
	"math/bits"
)

// Source is a deterministic xoshiro256** pseudo-random number generator.
//
// The zero value is not a valid source (xoshiro must not have an all-zero
// state); construct one with New, NewFromState, or Split. Source is not safe
// for concurrent use; give each goroutine its own stream via Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x by the splitmix64 increment and returns the mixed
// output. It is used only for seeding: it guarantees a well-distributed,
// never-all-zero xoshiro state from any 64-bit seed.
//
//hh:hotpath
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed. Two sources built
// from the same seed produce identical output streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source to the stream defined by seed, as if it had just
// been constructed with New(seed).
//
//hh:hotpath
func (s *Source) Reseed(seed uint64) {
	sm := seed
	s.s0 = splitmix64(&sm)
	s.s1 = splitmix64(&sm)
	s.s2 = splitmix64(&sm)
	s.s3 = splitmix64(&sm)
}

// NewFromState reconstructs a Source from a previously captured state. It
// returns an error if the state is all zero, which is invalid for xoshiro.
func NewFromState(state [4]uint64) (*Source, error) {
	if state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0 {
		return nil, errors.New("rng: all-zero state is invalid for xoshiro256**")
	}
	return &Source{s0: state[0], s1: state[1], s2: state[2], s3: state[3]}, nil
}

// State captures the current internal state, suitable for NewFromState.
func (s *Source) State() [4]uint64 {
	return [4]uint64{s.s0, s.s1, s.s2, s.s3}
}

// Uint64 returns the next 64 bits of the stream.
//
//hh:hotpath
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9

	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)

	return result
}

// Split derives an independent child stream from this source's seed material
// and the given index. Splitting is a pure function of (current state, index):
// it does NOT advance the parent stream, so the same parent can deterministically
// derive any number of children (e.g. one per ant, keyed by ant index).
func (s *Source) Split(index uint64) *Source {
	var child Source
	s.SplitInto(index, &child)
	return &child
}

// SplitInto derives the same child stream as Split directly into dst,
// avoiding the allocation; the batch engine uses it to re-seed thousands of
// per-ant streams per replicate without garbage.
//
//hh:hotpath
func (s *Source) SplitInto(index uint64, dst *Source) {
	// Mix the parent state with the index through splitmix64 so that children
	// with adjacent indices are decorrelated.
	mix := s.s0 ^ bits.RotateLeft64(s.s2, 19) ^ (index * 0xd1342543de82ef95)
	dst.Reseed(mix)
}

// Int63 returns a non-negative 63-bit integer, mirroring math/rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching the
// contract of math/rand.Intn; callers control n so this is a programmer error,
// not a runtime condition.
//
//hh:hotpath
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's nearly-divisionless
// bounded rejection method. It panics if n == 0.
//
// The function is split into an inlinable fast path (one multiply, no division)
// and the rare rejection tail: the permutation and matching loops of the
// simulator draw bounded integers per ant per round, so keeping the common case
// call-free is worth the contortion. The draw sequence is identical to the
// single-body form — the tail consumes additional words only when the first
// low product falls below n, exactly as before.
//
//hh:hotpath
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n = 0")
	}
	// Lemire 2019: multiply-shift with rejection on the low word.
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		return s.uint64nReject(hi, lo, n)
	}
	return hi
}

// uint64nReject is Uint64n's rejection tail: compute the exact threshold (the
// one division of the method) and redraw while the low word is biased. The
// first draw's words are passed in so the accepted value and the stream
// position are exactly those of the unsplit loop.
//
//hh:hotpath
func (s *Source) uint64nReject(hi, lo, n uint64) uint64 {
	thresh := -n % n
	for lo < thresh {
		hi, lo = bits.Mul64(s.Uint64(), n)
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
//
//hh:hotpath
//hh:floatok Float64 is the float fallback primitive itself; fixed-point callers use Threshold
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p. Values of p <= 0 always return
// false and values >= 1 always return true.
//
//hh:hotpath
//hh:floatok float fallback path above batchTableMaxN; fixed-point callers use Threshold.Draw
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) as a slice of ints,
// generated with the inside-out Fisher-Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// PermInto fills dst (whose length defines n) with a uniformly random
// permutation of [0, len(dst)), avoiding the allocation of Perm. It returns
// dst for convenience.
//
// The bounded draw is Lemire's method fused inline (the call tree
// Intn → Uint64n does not inline, and a permutation is one bounded draw per
// element); the rare rejection tail shares uint64nReject with Uint64n, so
// the draw sequence is exactly Intn(i+1) per element.
//
//hh:hotpath
func (s *Source) PermInto(dst []int) []int {
	if len(dst) == 0 {
		return dst
	}
	dst[0] = 0
	for i := 1; i < len(dst); i++ {
		bound := uint64(i + 1)
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo < bound {
			hi = s.uint64nReject(hi, lo, bound)
		}
		j := int(hi)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}

// PermAdvance consumes exactly the stream words PermInto would consume for a
// permutation of size n without materializing it. The batch engine's matcher
// uses it on rounds whose permutation values are provably unread (no active
// recruiter): the words drawn — including the data-dependent rejection
// redraws — must still leave the stream at the identical position.
//
//hh:hotpath
func (s *Source) PermAdvance(n int) {
	for i := 1; i < n; i++ {
		bound := uint64(i + 1)
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo < bound {
			s.uint64nReject(hi, lo, bound)
		}
	}
}

// PermInto32 is PermInto for an int32 destination: it fills dst with a
// uniformly random permutation of [0, len(dst)) drawn with exactly the same
// stream consumption as PermInto over a slice of the same length (the draws
// depend only on the length, not on the element type). The batch engine's
// matchers use it so a colony-sized permutation occupies half the cache
// footprint. len(dst) must not exceed MaxInt32+1; slot counts never do.
//
//hh:hotpath
func (s *Source) PermInto32(dst []int32) []int32 {
	if len(dst) == 0 {
		return dst
	}
	dst[0] = 0
	for i := 1; i < len(dst); i++ {
		bound := uint64(i + 1)
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo < bound {
			hi = s.uint64nReject(hi, lo, bound)
		}
		j := int(hi)
		dst[i] = dst[j]
		dst[j] = int32(i)
	}
	return dst
}

// Shuffle permutes the first n elements using the provided swap function,
// mirroring math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Binomial returns a sample from Binomial(n, p) by direct simulation for
// small n and by inversion of the normal approximation with continuity
// correction rejected against exact tails for large n. The direct path is
// exact; the approximation keeps the error far below the statistical noise of
// any experiment in this repository.
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// For the colony sizes used here (n up to ~10^6, but binomial draws only on
	// small slices), direct simulation up to a threshold is fast and exact.
	const directThreshold = 64
	if n <= directThreshold {
		k := 0
		for i := 0; i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	}
	// BTRS-free fallback: sum of geometric skips (exact, O(np) expected).
	// For np moderately large this is still fine for our workloads.
	k := 0
	i := 0
	lq := logOnePminus(p)
	for {
		// Skip = floor(log(U)/log(1-p)) failures before next success.
		u := s.Float64()
		if u <= 0 {
			u = 1e-300
		}
		skip := int(logFloat(u) / lq)
		i += skip + 1
		if i > n {
			break
		}
		k++
	}
	return k
}

// logOnePminus returns log(1-p) guarding against p == 1.
func logOnePminus(p float64) float64 {
	q := 1 - p
	if q <= 0 {
		q = 1e-300
	}
	return logFloat(q)
}

// logFloat is a minimal natural-log wrapper kept local so the hot path does
// not pull in additional dependencies; it simply defers to math.Log via the
// indirection in log_impl.go (split out for clarity).
func logFloat(x float64) float64 { return logImpl(x) }

// Geometric returns the number of Bernoulli(p) failures before the first
// success (support {0, 1, ...}). p must be in (0, 1]; p >= 1 returns 0 and
// p <= 0 panics, since the draw would be infinite.
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	u := s.Float64()
	if u <= 0 {
		u = 1e-300
	}
	return int(logFloat(u) / logOnePminus(p))
}

// NormFloat64 returns a standard normal sample using the polar (Marsaglia)
// method. The spare value is not cached to keep the Source stateless beyond
// the xoshiro words; all our uses are far from the performance margin.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * sqrtImpl(-2*logImpl(q)/q)
		}
	}
}

// Pick returns a uniformly random element index of a non-empty collection of
// size n, as Intn does, but is named to read better at call sites choosing
// ants or nests.
func (s *Source) Pick(n int) int { return s.Intn(n) }
