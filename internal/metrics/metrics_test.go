package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	t.Parallel()
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 6 {
		t.Fatalf("Value = %d, want 6", c.Value())
	}
}

func TestGauge(t *testing.T) {
	t.Parallel()
	var g Gauge
	g.Set(10)
	g.Add(-2.5)
	if g.Value() != 7.5 {
		t.Fatalf("Value = %v, want 7.5", g.Value())
	}
}

func TestRegistryReuse(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Counter("recruit.success")
	b := r.Counter("recruit.success")
	if a != b {
		t.Fatal("same name returned different counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counter did not share state")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("same name returned different gauges")
	}
}

func TestSnapshotSorted(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("zzz").Add(3)
	r.Counter("aaa").Inc()
	r.Gauge("mmm").Set(2.5)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size = %d, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
	if snap[0].Name != "aaa" || snap[0].Value != 1 || snap[0].Kind != KindCounter {
		t.Fatalf("unexpected first sample: %+v", snap[0])
	}
}

func TestRegistryString(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("rounds").Add(42)
	r.Gauge("population").Set(128)
	out := r.String()
	if !strings.Contains(out, "rounds") || !strings.Contains(out, "counter") ||
		!strings.Contains(out, "population") || !strings.Contains(out, "gauge") {
		t.Fatalf("String output missing entries:\n%s", out)
	}
}

// TestConcurrentMutateAndSnapshot races incrementers and gauge writers
// against a snapshotter. Under -race this pins that Inc/Add/Set are properly
// synchronized with Snapshot (the bug fixed in the streaming-telemetry PR:
// values used to be plain fields read under the registry mutex but mutated
// without it); without -race it still checks no update is lost.
func TestConcurrentMutateAndSnapshot(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	const (
		writers = 4
		perG    = 10000
	)
	var writerWG, snapWG sync.WaitGroup
	stop := make(chan struct{})
	snapWG.Add(1)
	go func() { // snapshotter
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range r.Snapshot() {
					if s.Value < 0 {
						t.Error("negative sample observed")
						return
					}
				}
			}
		}
	}()
	for i := 0; i < writers; i++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			c := r.Counter("events")
			g := r.Gauge("level")
			for j := 0; j < perG; j++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				g.Set(g.Value()) // racy read-modify-write by design; Set itself must be atomic
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	snapWG.Wait()
	if got := r.Counter("events").Value(); got != writers*perG*3 {
		t.Fatalf("counter = %d, want %d (lost updates)", got, writers*perG*3)
	}
}

// TestGaugeConcurrentAdd pins that Gauge.Add is a lossless read-modify-write.
func TestGaugeConcurrentAdd(t *testing.T) {
	t.Parallel()
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8*5000 {
		t.Fatalf("gauge = %g, want %d (lost adds)", g.Value(), 8*5000)
	}
}

func TestConcurrentCreation(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("shared")
			r.Gauge("g")
			r.Snapshot()
		}()
	}
	wg.Wait()
	if len(r.Snapshot()) != 2 {
		t.Fatalf("snapshot = %v", r.Snapshot())
	}
}
