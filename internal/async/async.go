// Package async perturbs the synchronous execution model toward the paper's
// §6 "Asynchrony" extension. The engine remains round-based (the model's
// environment is inherently synchronous), but wrapped ants no longer advance
// their protocol every round:
//
//   - Jitter holds an ant with probability p each round (a slow ant whose
//     protocol clock drifts behind the colony's),
//   - PhaseShift holds an ant for a fixed prefix of rounds (staggered
//     wake-up after the home nest is destroyed).
//
// During a held round the ant performs a harmless legal call — revisiting its
// committed nest, or waiting passively at home — and its wrapped protocol
// does not observe the round at all. The paper conjectures Algorithm 3
// tolerates this ("as long as the distribution of ants in candidate nests
// stays close to the synchronous distribution") while Algorithm 2 "relies
// heavily on synchrony"; EXPERIMENTS.md E14 measures both.
package async

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// committer mirrors core.Committer to avoid an upward dependency.
type committer interface {
	Committed() (sim.NestID, bool)
}

// faulter mirrors core.Faulty so jitter wrappers compose with fault
// injection without hiding the faultiness from the census.
type faulter interface {
	Faulty() bool
}

// Jitter wraps an agent so that each round is independently held with
// probability P. The inner agent runs on its own logical clock: it acts and
// observes only on pass-through rounds, in order, so its protocol state stays
// internally consistent — it just falls behind the colony.
type Jitter struct {
	inner        sim.Agent
	p            float64
	src          *rng.Source
	initialHolds int
	logical      int
	held         bool
}

var _ sim.Agent = (*Jitter)(nil)

// NewJitter wraps inner with per-round hold probability p drawn from src.
func NewJitter(inner sim.Agent, p float64, src *rng.Source) (*Jitter, error) {
	if inner == nil {
		return nil, fmt.Errorf("async: nil inner agent")
	}
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("async: hold probability %v outside [0,1)", p)
	}
	if src == nil {
		return nil, fmt.Errorf("async: nil random source")
	}
	return &Jitter{inner: inner, p: p, src: src}, nil
}

// NewPhaseShift wraps inner so that its first delay rounds are held: the ant
// wakes up late and then runs synchronously.
func NewPhaseShift(inner sim.Agent, delay int) (*Jitter, error) {
	if inner == nil {
		return nil, fmt.Errorf("async: nil inner agent")
	}
	if delay < 0 {
		return nil, fmt.Errorf("async: negative delay %d", delay)
	}
	return &Jitter{inner: inner, initialHolds: delay}, nil
}

// holdAction is the harmless legal call for a held round.
func (j *Jitter) holdAction() sim.Action {
	if com, ok := j.inner.(committer); ok {
		if nestID, committed := com.Committed(); committed {
			return sim.Goto(nestID)
		}
	}
	return sim.Recruit(false, sim.Home)
}

// Act implements sim.Agent.
func (j *Jitter) Act(int) sim.Action {
	hold := false
	if j.initialHolds > 0 {
		j.initialHolds--
		hold = true
	} else if j.p > 0 && j.src != nil && j.src.Bernoulli(j.p) {
		hold = true
	}
	j.held = hold
	if hold {
		return j.holdAction()
	}
	j.logical++
	return j.inner.Act(j.logical)
}

// Observe implements sim.Agent. Held-round outcomes are invisible to the
// wrapped protocol; in particular a capture during a held passive wait is
// dropped, modeling a tandem run that fails because the follower is absent.
func (j *Jitter) Observe(_ int, out sim.Outcome) {
	if j.held {
		return
	}
	j.inner.Observe(j.logical, out)
}

// Committed delegates to the inner agent for census purposes.
func (j *Jitter) Committed() (sim.NestID, bool) {
	if com, ok := j.inner.(committer); ok {
		return com.Committed()
	}
	return sim.Home, false
}

// Faulty delegates to the inner agent so jitter composes with fault
// injection (a jittered crashed ant is still faulty).
func (j *Jitter) Faulty() bool {
	if f, ok := j.inner.(faulter); ok {
		return f.Faulty()
	}
	return false
}

// LogicalRound reports how many rounds the inner protocol has executed —
// instrumentation for drift measurements.
func (j *Jitter) LogicalRound() int { return j.logical }

// Plan wraps a whole colony with independent jitter, for core.RunConfig.Wrap.
// Delay staggers wake-up: ant i is additionally held for a uniform number of
// rounds in [0, MaxDelay].
type Plan struct {
	// HoldP is the per-round hold probability applied to every ant.
	HoldP float64
	// MaxDelay is the maximum staggered wake-up delay in rounds.
	MaxDelay int
}

// Apply returns a colony wrapper implementing the plan with randomness from
// src.
func (p Plan) Apply(src *rng.Source) func([]sim.Agent) ([]sim.Agent, error) {
	return func(agents []sim.Agent) ([]sim.Agent, error) {
		if p.HoldP < 0 || p.HoldP >= 1 {
			return nil, fmt.Errorf("async: hold probability %v outside [0,1)", p.HoldP)
		}
		if p.MaxDelay < 0 {
			return nil, fmt.Errorf("async: negative MaxDelay %d", p.MaxDelay)
		}
		for i, a := range agents {
			j, err := NewJitter(a, p.HoldP, src.Split(uint64(i)))
			if err != nil {
				return nil, err
			}
			if p.MaxDelay > 0 {
				j.initialHolds = src.Intn(p.MaxDelay + 1)
			}
			agents[i] = j
		}
		return agents, nil
	}
}
