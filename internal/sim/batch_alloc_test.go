package sim

import (
	"fmt"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

// This file pins the zero-allocation contract of the batch hot path: once a
// lane exists, stepping rounds must never touch the heap — for any compiled
// program shape and any stock matcher. The program tables below mirror the
// nine compiled algorithm forms of internal/algo (sim cannot import algo, so
// the tables are restated; the shapes matter, not the exact parameters).

// allocTestPrograms returns program tables covering every opcode family the
// compiled inventory emits: the Algorithm 3 cycle (simple & PFSM), both
// Algorithm 2 variants, the three recruit-draw extensions, the
// quorum-transport strategy and the noisy-perception model.
func allocTestPrograms() map[string]Program {
	simple := Program{
		Algorithm: "simple",
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscovery, Next: 1},
			{Emit: EmitRecruitPop, Observe: ObserveAdopt, Next: 2},
			{Emit: EmitGotoNest, Observe: ObserveCount, Next: 1},
		},
	}
	optimal := func(literal bool) Program {
		recount := ObserveRecountRebase
		if literal {
			recount = ObserveRecountLiteral
		}
		return Program{
			Algorithm: "optimal",
			States: []ProgramState{
				{Emit: EmitSearch, Observe: ObserveDiscoverBranch, Next: 1, NextB: 10},
				{Emit: EmitRecruitBit, Arg: 1, Observe: ObserveRecruitNest, Next: 2},
				{Emit: EmitGotoScratch, Observe: ObserveCompareR2, Next: 3, NextB: 5, NextC: 7},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 4},
				{Emit: EmitRecruitBit, Arg: 0, Observe: ObserveFinalEq, Next: 1, NextB: 16},
				{Emit: EmitRecruitBit, Arg: 0, Observe: ObserveNone, Next: 6},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 10},
				{Emit: EmitGotoNest, Observe: recount, Next: 8, NextB: 9},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 1},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 10},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 11},
				{Emit: EmitRecruitBit, Arg: 0, Observe: ObserveAdoptPend, Next: 12, NextB: 14},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 13},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 10},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 15},
				{Emit: EmitGotoNest, Observe: ObserveNone, Next: 16},
				{Emit: EmitRecruitBit, Arg: 1, Observe: ObserveNestLatch, Next: 16, Final: true},
			},
		}
	}
	adaptive := Program{
		Algorithm: "adaptive",
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscovery, Next: 1},
			{Emit: EmitRecruitAdaptive, Observe: ObserveAdopt, Next: 2},
			{Emit: EmitGotoNest, Observe: ObserveCount, Next: 1},
		},
		Params: ProgramParams{Tau: 2, FloorDiv: 4},
	}
	quality := Program{
		Algorithm: "quality",
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscovery, Next: 1},
			{Emit: EmitRecruitQual, Observe: ObserveAdoptZero, Next: 2},
			{Emit: EmitGotoNest, Observe: ObserveCountQual, Next: 1},
		},
	}
	approxn := Program{
		Algorithm: "approxn",
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscovery, Next: 1},
			{Emit: EmitRecruitApproxN, Observe: ObserveAdopt, Next: 2},
			{Emit: EmitGotoNest, Observe: ObserveCount, Next: 1},
		},
		Params: ProgramParams{NEstDelta: 0.3},
	}
	quorum := Program{
		Algorithm: "quorum",
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscoverQuorum, Next: 1},
			{Emit: EmitRecruitPop, Observe: ObserveQuorumAdopt, Next: 2},
			{Emit: EmitGotoNest, Observe: ObserveQuorumCheck, Next: 1, NextB: 3},
			{Emit: EmitRecruitTransport, Observe: ObserveQuorumTransport, Next: 4, NextB: 2, Final: true},
			{Emit: EmitGotoNest, Observe: ObserveCount, Next: 3, Final: true},
		},
		Params: ProgramParams{QuorumMult: 1.5, QuorumCarry: 3, QuorumDocility: 0.25},
	}
	noisy := Program{
		Algorithm: "noisy",
		States: []ProgramState{
			{Emit: EmitSearch, Observe: ObserveDiscoverNoisy, Next: 1},
			{Emit: EmitRecruitPop, Observe: ObserveAdopt, Next: 2},
			{Emit: EmitGotoNest, Observe: ObserveCountNoisy, Next: 1},
		},
		Params: ProgramParams{
			Threshold: 0.5,
			Count: func(c, n int, src *rng.Source) int {
				// A drawing hook (the noisy shape's whole point) that must
				// not allocate either.
				return c + int(src.Uint64n(3)) - 1
			},
		},
	}
	return map[string]Program{
		"simple":          simple,
		"simplePFSM":      simple, // the PFSM form compiles to the identical table
		"optimal":         optimal(false),
		"optimal-literal": optimal(true),
		"adaptive":        adaptive,
		"quality":         quality,
		"approxn":         approxn,
		"quorum":          quorum,
		"noisy":           noisy,
	}
}

// TestBatchStepAllocationFree asserts testing.AllocsPerRun == 0 over the lane
// step functions — stepLockstep for lockstep programs, stepGeneral otherwise —
// for every compiled program shape, after one warm-up replicate has sized the
// scratch (threshold tables and matcher buffers grow on first use).
func TestBatchStepAllocationFree(t *testing.T) {
	env := MustEnvironment([]float64{1, 0, 0.6, 0})
	const n = 192
	specs := []struct {
		tag  string
		spec FaultSpec
	}{
		{"", FaultSpec{}},
		// The fault lanes force the general path and route faulted ants
		// through the synthetic states — none of which may touch the heap.
		{"+faults", FaultSpec{CrashFraction: 0.1, CrashWindow: 40, ByzantineFraction: 0.05, SleepFraction: 0.1, SleepWindow: 40, Salt: 9}},
	}
	// Shard count 1 exercises the inline phase dispatch, 4 the pooled fan-out:
	// the sharded path must be exactly as heap-silent as the sequential one
	// (phase functions are prebound, reductions use preallocated slabs).
	for _, shards := range []int{1, 4} {
		for name, base := range allocTestPrograms() {
			for _, fs := range specs {
				name, prog, fs, shards := name, base, fs, shards
				prog.Params.Faults = fs.spec
				t.Run(fmt.Sprintf("%s%s/shards=%d", name, fs.tag, shards), func(t *testing.T) {
					b, err := NewBatch(env, prog, n)
					if err != nil {
						t.Fatal(err)
					}
					ln := newLane(b, shards)
					defer ln.close()
					if _, err := ln.runReplicate(0, 7, 300, 1, nil, nil); err != nil {
						t.Fatalf("warm-up replicate: %v", err)
					}
					ln.reset(11)
					phase := prog.Init
					allocs := testing.AllocsPerRun(200, func() {
						var err error
						if ln.lockstep {
							phase, err = ln.stepLockstep(phase)
						} else {
							err = ln.stepGeneral()
						}
						if err != nil {
							t.Fatal(err)
						}
					})
					if allocs != 0 {
						t.Errorf("%s: %v allocs per round on the %s path, want 0",
							name, allocs, map[bool]string{true: "lockstep", false: "general"}[ln.lockstep])
					}
					if fs.spec.Enabled() && ln.lockstep {
						t.Errorf("%s: fault lanes must force the general path", name)
					}
				})
			}
		}
	}
}

// TestBatchStepAllocationFreeStockMatchers repeats the assertion with the
// ablation matchers driving the pairing (they reuse scratch too — the
// simultaneous model's reservoir counters once allocated per call).
func TestBatchStepAllocationFreeStockMatchers(t *testing.T) {
	env := MustEnvironment([]float64{1, 0})
	const n = 128
	progs := allocTestPrograms()
	for _, matcher := range []string{"simultaneous", "rendezvous"} {
		matcher := matcher
		for _, name := range []string{"simple", "optimal"} {
			prog := progs[name]
			t.Run(matcher+"/"+name, func(t *testing.T) {
				factory := func() Matcher {
					if matcher == "simultaneous" {
						return &SimultaneousMatcher{}
					}
					return &RendezvousMatcher{}
				}
				b, err := NewBatch(env, prog, n, WithBatchMatcher(factory))
				if err != nil {
					t.Fatal(err)
				}
				ln := newLane(b, 1)
				if _, err := ln.runReplicate(0, 7, 300, 1, nil, nil); err != nil {
					t.Fatalf("warm-up replicate: %v", err)
				}
				ln.reset(11)
				phase := prog.Init
				allocs := testing.AllocsPerRun(200, func() {
					var err error
					if ln.lockstep {
						phase, err = ln.stepLockstep(phase)
					} else {
						err = ln.stepGeneral()
					}
					if err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("%v allocs per round, want 0", allocs)
				}
			})
		}
	}
}
