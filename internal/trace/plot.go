package trace

import (
	"fmt"
	"strings"
)

// PlotOptions configures RenderPlot.
type PlotOptions struct {
	Width  int  // plot columns; default 72
	Height int  // plot rows; default 16
	Home   bool // include nest 0 (home) as a series
	// Commitments plots the commitment census instead of physical
	// populations; rounds without a census read as zero. Commitment series
	// are smoother because committed ants shuttle between home and nest.
	Commitments bool
}

// seriesGlyphs are the per-series markers, cycled when more series than
// glyphs are plotted.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// RenderPlot draws the population trajectories of every candidate nest (and
// optionally the home nest) as a shared-axes ASCII chart. It is intentionally
// simple: columns are round buckets, rows are population buckets, later
// series overwrite earlier ones on collisions.
func (t *Trace) RenderPlot(opts PlotOptions) string {
	if opts.Width <= 0 {
		opts.Width = 72
	}
	if opts.Height <= 0 {
		opts.Height = 16
	}
	if len(t.rounds) == 0 {
		return "(empty trace)\n"
	}

	first := 1
	if opts.Home {
		first = 0
	}
	value := func(r Round, i int) int {
		if opts.Commitments {
			if r.Commitments == nil {
				return 0
			}
			return r.Commitments[i]
		}
		return r.Populations[i]
	}
	maxPop := 1
	for _, r := range t.rounds {
		for i := first; i <= t.numNests; i++ {
			if v := value(r, i); v > maxPop {
				maxPop = v
			}
		}
	}

	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for nest := first; nest <= t.numNests; nest++ {
		glyph := seriesGlyphs[(nest-first)%len(seriesGlyphs)]
		for i, r := range t.rounds {
			col := 0
			if len(t.rounds) > 1 {
				col = i * (opts.Width - 1) / (len(t.rounds) - 1)
			}
			row := 0
			if maxPop > 0 {
				row = value(r, nest) * (opts.Height - 1) / maxPop
			}
			grid[opts.Height-1-row][col] = glyph
		}
	}

	var b strings.Builder
	series := "population"
	if opts.Commitments {
		series = "committed ants"
	}
	fmt.Fprintf(&b, "%s (max %d) by round (1..%d)\n", series, maxPop, t.rounds[len(t.rounds)-1].Round)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", opts.Width))
	b.WriteByte('\n')
	b.WriteString("legend:")
	for nest := first; nest <= t.numNests; nest++ {
		glyph := seriesGlyphs[(nest-first)%len(seriesGlyphs)]
		label := fmt.Sprintf(" nest%d=%c", nest, glyph)
		if nest == 0 {
			label = fmt.Sprintf(" home=%c", glyph)
		}
		b.WriteString(label)
	}
	b.WriteByte('\n')
	return b.String()
}
