package async

import (
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

func TestNewJitterValidation(t *testing.T) {
	t.Parallel()
	inner := algo.NewSimpleAnt(10, rng.New(1))
	if _, err := NewJitter(nil, 0.1, rng.New(2)); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewJitter(inner, -0.1, rng.New(2)); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := NewJitter(inner, 1.0, rng.New(2)); err == nil {
		t.Fatal("p = 1 accepted (would hold forever)")
	}
	if _, err := NewJitter(inner, 0.1, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestNewPhaseShiftValidation(t *testing.T) {
	t.Parallel()
	inner := algo.NewSimpleAnt(10, rng.New(1))
	if _, err := NewPhaseShift(nil, 2); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewPhaseShift(inner, -1); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestPhaseShiftHoldsThenRuns(t *testing.T) {
	t.Parallel()
	inner := algo.NewSimpleAnt(10, rng.New(3))
	j, err := NewPhaseShift(inner, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two held rounds: uncommitted inner → passive wait at home.
	for r := 1; r <= 2; r++ {
		act := j.Act(r)
		if act.Kind != sim.ActionRecruit || act.Active {
			t.Fatalf("held round %d act = %+v, want recruit(0, home)", r, act)
		}
		j.Observe(r, sim.Outcome{Nest: sim.Home})
	}
	if j.LogicalRound() != 0 {
		t.Fatalf("inner advanced during holds: logical = %d", j.LogicalRound())
	}
	// Round 3: inner wakes up and performs its logical round 1 = search.
	if act := j.Act(3); act.Kind != sim.ActionSearch {
		t.Fatalf("post-delay act = %+v, want search", act)
	}
	j.Observe(3, sim.Outcome{Nest: 2, Count: 1, Quality: 1})
	if j.LogicalRound() != 1 {
		t.Fatalf("logical round = %d, want 1", j.LogicalRound())
	}
	if nestID, ok := j.Committed(); !ok || nestID != 2 {
		t.Fatalf("commitment not delegated: %v %v", nestID, ok)
	}
}

func TestJitterHoldUsesCommittedNest(t *testing.T) {
	t.Parallel()
	inner := algo.NewSimpleAnt(10, rng.New(4))
	j, err := NewPhaseShift(inner, 0)
	if err != nil {
		t.Fatal(err)
	}
	j.Act(1)
	j.Observe(1, sim.Outcome{Nest: 3, Count: 1, Quality: 1})
	// Force a hold and check the held action parks at the committed nest.
	j.initialHolds = 1
	act := j.Act(2)
	if act.Kind != sim.ActionGo || act.Nest != 3 {
		t.Fatalf("held act = %+v, want go(3)", act)
	}
	// The held outcome must not reach the inner protocol.
	before := j.LogicalRound()
	j.Observe(2, sim.Outcome{Nest: 3, Count: 5})
	if j.LogicalRound() != before {
		t.Fatal("held observe advanced the inner clock")
	}
}

func TestJitterHoldFrequency(t *testing.T) {
	t.Parallel()
	inner := algo.NewSimpleAnt(10, rng.New(5))
	j, err := NewJitter(inner, 0.3, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5000
	for r := 1; r <= rounds; r++ {
		j.Act(r)
		j.Observe(r, sim.Outcome{Nest: 1, Count: 1, Quality: 1})
	}
	passRate := float64(j.LogicalRound()) / rounds
	if passRate < 0.65 || passRate > 0.75 {
		t.Fatalf("pass-through rate %v, want ~0.7 for p=0.3", passRate)
	}
}

func TestSimpleConvergesUnderJitter(t *testing.T) {
	t.Parallel()
	// §6: Algorithm 3 should tolerate modest clock drift.
	env := sim.MustEnvironment([]float64{1, 0, 1})
	plan := Plan{HoldP: 0.15, MaxDelay: 4}
	solved := 0
	const reps = 6
	for seed := uint64(1); seed <= reps; seed++ {
		res, err := core.Run(algo.Simple{}, core.RunConfig{
			N: 200, Env: env, Seed: seed, MaxRounds: 4000,
			Wrap: core.WrapFunc(plan.Apply(rng.New(seed).Split(101))),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Solved && env.Good(res.Winner) {
			solved++
		}
	}
	if solved < reps-1 {
		t.Fatalf("simple solved only %d/%d under 15%% jitter", solved, reps)
	}
}

func TestOptimalDegradesUnderJitter(t *testing.T) {
	t.Parallel()
	// The paper's stated contrast: Algorithm 2 "relies heavily on the
	// synchrony". Under substantial jitter, its 4-round phase structure
	// shears apart; we verify it converges strictly less reliably than
	// Algorithm 3 under the identical perturbation (E14 quantifies this).
	env := sim.MustEnvironment([]float64{1, 1})
	plan := Plan{HoldP: 0.25}
	const reps = 8
	solvedOptimal, solvedSimple := 0, 0
	for seed := uint64(1); seed <= reps; seed++ {
		resO, err := core.Run(algo.Optimal{}, core.RunConfig{
			N: 128, Env: env, Seed: seed, MaxRounds: 3000,
			Wrap: core.WrapFunc(plan.Apply(rng.New(seed).Split(103))),
		})
		if err != nil {
			t.Fatalf("optimal seed %d: %v", seed, err)
		}
		if resO.Solved {
			solvedOptimal++
		}
		resS, err := core.Run(algo.Simple{}, core.RunConfig{
			N: 128, Env: env, Seed: seed, MaxRounds: 3000,
			Wrap: core.WrapFunc(plan.Apply(rng.New(seed).Split(104))),
		})
		if err != nil {
			t.Fatalf("simple seed %d: %v", seed, err)
		}
		if resS.Solved {
			solvedSimple++
		}
	}
	if solvedOptimal > solvedSimple {
		t.Fatalf("optimal (%d/%d) out-survived simple (%d/%d) under heavy jitter — "+
			"the paper's fragility contrast should hold", solvedOptimal, reps, solvedSimple, reps)
	}
	if solvedSimple < reps/2 {
		t.Fatalf("simple solved only %d/%d under jitter; expected robustness", solvedSimple, reps)
	}
}

func TestPlanApplyValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	agents, err := (algo.Simple{}).Build(4, env, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Plan{HoldP: 1.5}).Apply(rng.New(1))(agents); err == nil {
		t.Fatal("invalid hold probability applied")
	}
	if _, err := (Plan{MaxDelay: -2}).Apply(rng.New(1))(agents); err == nil {
		t.Fatal("negative delay applied")
	}
	wrapped, err := (Plan{HoldP: 0.1, MaxDelay: 3}).Apply(rng.New(2))(agents)
	if err != nil || len(wrapped) != 4 {
		t.Fatalf("valid plan failed: %v", err)
	}
}
