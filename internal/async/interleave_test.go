package async

import (
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// clockProbe records the (round, kind) sequence its Act/Observe see, so the
// interleaving tests can pin the logical clock a Jitter presents to the
// wrapped protocol under arbitrary hold patterns.
type clockProbe struct {
	calls []probeCall
}

type probeCall struct {
	round   int
	observe bool
	nest    sim.NestID
}

func (p *clockProbe) Act(round int) sim.Action {
	p.calls = append(p.calls, probeCall{round: round})
	return sim.Search()
}

func (p *clockProbe) Observe(round int, out sim.Outcome) {
	p.calls = append(p.calls, probeCall{round: round, observe: true, nest: out.Nest})
}

// TestJitterScriptedInterleaving drives a wrapper through an explicit
// hold/pass script and pins the full call sequence the inner protocol sees:
// pass rounds arrive as a contiguous logical clock 1, 2, 3, ... regardless of
// where the holds fall, each logical Act is followed by its matching Observe
// carrying the engine outcome of the SAME engine round, and held-round
// outcomes are dropped entirely.
func TestJitterScriptedInterleaving(t *testing.T) {
	t.Parallel()
	probe := &clockProbe{}
	j, err := NewPhaseShift(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	script := []bool{false, true, false, true, true, false, false} // true = hold
	for r, hold := range script {
		round := r + 1
		if hold {
			j.initialHolds = 1 // schedule exactly this engine round as held
		}
		j.Act(round)
		// Tag the outcome with the engine round so the probe can prove which
		// engine round each logical observation came from.
		j.Observe(round, sim.Outcome{Nest: sim.NestID(round)})
	}
	// Pass rounds are engine rounds 1, 3, 6, 7 → logical rounds 1..4.
	want := []probeCall{
		{round: 1}, {round: 1, observe: true, nest: 1},
		{round: 2}, {round: 2, observe: true, nest: 3},
		{round: 3}, {round: 3, observe: true, nest: 6},
		{round: 4}, {round: 4, observe: true, nest: 7},
	}
	if len(probe.calls) != len(want) {
		t.Fatalf("inner saw %d calls %v, want %d", len(probe.calls), probe.calls, len(want))
	}
	for i, w := range want {
		if probe.calls[i] != w {
			t.Fatalf("call %d = %+v, want %+v (full sequence %v)", i, probe.calls[i], w, probe.calls)
		}
	}
	if j.LogicalRound() != 4 {
		t.Fatalf("logical round = %d, want 4", j.LogicalRound())
	}
}

// TestJitterClockContiguousUnderRandomHolds runs a long random hold pattern
// and asserts the structural invariants of the interleaving: the inner clock
// is exactly 1..LogicalRound with no gaps, duplicates or reordering, and
// every Act/Observe pair shares one logical round.
func TestJitterClockContiguousUnderRandomHolds(t *testing.T) {
	t.Parallel()
	probe := &clockProbe{}
	j, err := NewJitter(probe, 0.4, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 2000
	for r := 1; r <= rounds; r++ {
		j.Act(r)
		j.Observe(r, sim.Outcome{Nest: 1})
	}
	if len(probe.calls) != 2*j.LogicalRound() {
		t.Fatalf("inner saw %d calls, want %d (an act+observe per logical round)",
			len(probe.calls), 2*j.LogicalRound())
	}
	for i := 0; i < len(probe.calls); i += 2 {
		logical := i/2 + 1
		act, obs := probe.calls[i], probe.calls[i+1]
		if act.observe || !obs.observe {
			t.Fatalf("logical round %d: call order %+v, %+v — want act then observe", logical, act, obs)
		}
		if act.round != logical || obs.round != logical {
			t.Fatalf("logical round %d: inner clock jumped (act %d, observe %d)", logical, act.round, obs.round)
		}
	}
}

// TestPlanInterleavingDeterminism pins the wrapper's stream discipline at the
// colony level: a jittered run is a pure function of the seed, so replaying
// the identical configuration — per-ant hold streams Split from one source —
// must reproduce the round count and final census exactly, even though every
// ant follows a different hold pattern.
func TestPlanInterleavingDeterminism(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1})
	run := func() core.Result {
		res, err := core.Run(algo.Simple{}, core.RunConfig{
			N: 150, Env: env, Seed: 31, MaxRounds: 3000,
			Wrap: core.WrapFunc((Plan{HoldP: 0.2, MaxDelay: 6}).Apply(rng.New(31).Split(101))),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Solved != b.Solved || a.Winner != b.Winner || a.Rounds != b.Rounds {
		t.Fatalf("replay diverged: (%v, %v, %v) vs (%v, %v, %v)",
			a.Solved, a.Winner, a.Rounds, b.Solved, b.Winner, b.Rounds)
	}
	for i := range a.FinalCensus.Committed {
		if a.FinalCensus.Committed[i] != b.FinalCensus.Committed[i] {
			t.Fatalf("replay census diverged at nest %d: %d vs %d",
				i, a.FinalCensus.Committed[i], b.FinalCensus.Committed[i])
		}
	}
}

// TestJitterFaultyDelegation pins composition with fault injection: the
// jitter wrapper must not hide an inner agent's faultiness from the census.
func TestJitterFaultyDelegation(t *testing.T) {
	t.Parallel()
	j, err := NewPhaseShift(&faultyProbe{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Faulty() {
		t.Fatal("jitter hid the inner agent's faultiness")
	}
	plain, err := NewPhaseShift(&clockProbe{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Faulty() {
		t.Fatal("jitter fabricated faultiness for a healthy inner agent")
	}
}

type faultyProbe struct{ clockProbe }

func (*faultyProbe) Faulty() bool { return true }
