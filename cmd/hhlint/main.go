// Command hhlint runs the in-tree static-analysis suite that enforces
// the batch engine's invariants: RNG stream discipline, zero-allocation
// hot paths, fixed-point purity, and replicate determinism.
//
// Usage:
//
//	go run ./cmd/hhlint ./...
//	go run ./cmd/hhlint -run streamdiscipline,determinism ./internal/sim/...
//
// hhlint exits nonzero if any analyzer reports a diagnostic. See
// README.md for the //hh: annotation contracts the analyzers check.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gmrl/househunt/internal/lint"
	"github.com/gmrl/househunt/internal/lint/analysis"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hhlint [-run analyzers] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhlint:", err)
		os.Exit(2)
	}

	n, err := lint.Run(".", patterns, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "hhlint: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
