package stats

import (
	"strings"
	"testing"
)

// TestHistogramClosedUpperBound pins the boundary semantics the type promises:
// the interval is closed, so x == Hi lands in the last bin and does NOT count
// as overflow; only x > Hi does.
func TestHistogramClosedUpperBound(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(10) // == Hi: last bin, no overflow
	if h.Overflow != 0 {
		t.Fatalf("Add(Hi) inflated Overflow to %d", h.Overflow)
	}
	if h.Counts[4] != 1 {
		t.Fatalf("Add(Hi) landed in counts %v, want last bin", h.Counts)
	}
	h.Add(10.0001) // > Hi: last bin and overflow
	if h.Overflow != 1 {
		t.Fatalf("Add(>Hi): Overflow = %d, want 1", h.Overflow)
	}
	if h.Counts[4] != 2 {
		t.Fatalf("Add(>Hi) landed in counts %v, want last bin", h.Counts)
	}
	h.Add(0) // == Lo: first bin, no underflow
	if h.Underflow != 0 || h.Counts[0] != 1 {
		t.Fatalf("Add(Lo): underflow %d counts %v, want clean first bin", h.Underflow, h.Counts)
	}
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
}

// TestHistogramBinEdges checks that interior bin edges split left-closed:
// an observation exactly on an edge belongs to the bin it opens.
func TestHistogramBinEdges(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 2, 3} {
		h.Add(x)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("edge observations distributed as %v, want one per bin (bin %d)", h.Counts, i)
		}
	}
}

func TestHistogramErrors(t *testing.T) {
	t.Parallel()
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(0, 10, -1); err == nil {
		t.Fatal("negative bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("degenerate interval accepted")
	}
	if _, err := NewHistogram(10, 0, 3); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 3, 5, 7, 9} {
		if got := h.BinCenter(i); got != want {
			t.Fatalf("BinCenter(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestHistogramTotalCountsEverything(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(-1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-5, -1, 0, 1, 5} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", h.Underflow, h.Overflow)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 5 {
		t.Fatalf("bin sum = %d, want 5 (clamping must not drop observations)", sum)
	}
}

func TestHistogramRender(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1.5, 1.5, 1.5, 1.5} {
		h.Add(x)
	}
	out := h.Render(8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Render produced %d rows, want one per bin:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 8)) {
		t.Fatalf("fullest bin not drawn at full width:\n%s", out)
	}
	if strings.Contains(lines[2], "#") {
		t.Fatalf("empty bin drew a bar:\n%s", out)
	}
	// Non-positive width falls back to the default.
	if def := h.Render(0); !strings.Contains(def, strings.Repeat("#", 50)) {
		t.Fatalf("Render(0) did not use the 50-column default:\n%s", def)
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render(10)
	if strings.Contains(out, "#") {
		t.Fatalf("empty histogram drew bars:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	t.Parallel()
	if got := Sparkline(nil); got != "" {
		t.Fatalf("Sparkline(nil) = %q, want empty", got)
	}
	flat := Sparkline([]float64{2, 2, 2})
	if flat != "▁▁▁" {
		t.Fatalf("flat series = %q, want all-minimum ticks", flat)
	}
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if ramp != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q, want one tick per level", ramp)
	}
	vee := []rune(Sparkline([]float64{5, 0, 5}))
	if len(vee) != 3 || vee[0] != vee[2] || vee[1] != '▁' {
		t.Fatalf("vee = %q, want symmetric with minimum mid-tick", string(vee))
	}
}
