package nest

import (
	"math"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

func TestQualityWeighting(t *testing.T) {
	t.Parallel()
	w := QualityWeights{Area: 1, Entrance: 1, Darkness: 1}
	perfect := Site{Area: 1, Entrance: 0, Darkness: 1}
	q, err := Quality(perfect, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(q, 1, 1e-12) {
		t.Fatalf("perfect site quality = %v, want 1", q)
	}
	awful := Site{Area: 0, Entrance: 1, Darkness: 0}
	q, err = Quality(awful, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(q, 0, 1e-12) {
		t.Fatalf("awful site quality = %v, want 0", q)
	}
}

func TestQualityClampsAttributes(t *testing.T) {
	t.Parallel()
	q, err := Quality(Site{Area: 5, Entrance: -3, Darkness: 2}, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if q < 0 || q > 1 {
		t.Fatalf("quality %v escaped [0,1]", q)
	}
}

func TestQualityErrors(t *testing.T) {
	t.Parallel()
	if _, err := Quality(Site{}, QualityWeights{}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := Quality(Site{}, QualityWeights{Area: -1, Entrance: 1, Darkness: 1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestQualityPriorities(t *testing.T) {
	t.Parallel()
	// With default weights, darkness must dominate: a dark small nest beats a
	// bright large one.
	w := DefaultWeights()
	dark := Site{Area: 0.2, Entrance: 0.5, Darkness: 1}
	bright := Site{Area: 1, Entrance: 0.5, Darkness: 0.1}
	qd, err := Quality(dark, w)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := Quality(bright, w)
	if err != nil {
		t.Fatal(err)
	}
	if qd <= qb {
		t.Fatalf("darkness priority violated: dark %v <= bright %v", qd, qb)
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExactAssessor(t *testing.T) {
	t.Parallel()
	src := rng.New(1)
	var a ExactAssessor
	for _, q := range []float64{0, 0.3, 1} {
		if got := a.Assess(q, src); got != q {
			t.Fatalf("ExactAssessor(%v) = %v", q, got)
		}
	}
	if a.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestGaussianAssessorUnbiasedAndClamped(t *testing.T) {
	t.Parallel()
	src := rng.New(2)
	a := GaussianAssessor{Sigma: 0.1}
	const trials = 50000
	var sum float64
	for i := 0; i < trials; i++ {
		v := a.Assess(0.5, src)
		if v < 0 || v > 1 {
			t.Fatalf("assessment %v escaped [0,1]", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("GaussianAssessor mean %v, want ~0.5 (unbiased away from boundary)", mean)
	}
}

func TestFlipAssessor(t *testing.T) {
	t.Parallel()
	src := rng.New(3)
	a := FlipAssessor{P: 0.25}
	const trials = 40000
	flips := 0
	for i := 0; i < trials; i++ {
		if a.Assess(1, src) == 0 {
			flips++
		}
	}
	freq := float64(flips) / trials
	if math.Abs(freq-0.25) > 0.02 {
		t.Fatalf("flip frequency %v, want ~0.25", freq)
	}
	never := FlipAssessor{P: 0}
	if never.Assess(1, src) != 1 {
		t.Fatal("P=0 flipped")
	}
}

func TestExactCounter(t *testing.T) {
	t.Parallel()
	src := rng.New(4)
	var c ExactCounter
	if c.Estimate(42, 100, src) != 42 {
		t.Fatal("ExactCounter distorted count")
	}
}

func TestRelativeNoiseCounterUnbiased(t *testing.T) {
	t.Parallel()
	src := rng.New(5)
	c := RelativeNoiseCounter{Sigma: 0.2}
	const trials, count = 50000, 200
	var sum float64
	for i := 0; i < trials; i++ {
		v := c.Estimate(count, 1000, src)
		if v < 0 {
			t.Fatalf("negative count estimate %d", v)
		}
		sum += float64(v)
	}
	mean := sum / trials
	if math.Abs(mean-count) > 1.5 {
		t.Fatalf("RelativeNoiseCounter mean %v, want ~%d", mean, count)
	}
}

func TestEncounterRateCounterMonotoneInPopulation(t *testing.T) {
	t.Parallel()
	src := rng.New(6)
	c := EncounterRateCounter{Probes: 256, Volume: 16}
	const trials = 3000
	avg := func(count int) float64 {
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(c.Estimate(count, 1000, src))
		}
		return sum / trials
	}
	small, medium, large := avg(4), avg(16), avg(64)
	if !(small < medium && medium < large) {
		t.Fatalf("encounter estimates not monotone: %v, %v, %v", small, medium, large)
	}
	// The inversion should land within ~35%% of truth for mid-range loads.
	if math.Abs(medium-16)/16 > 0.35 {
		t.Fatalf("encounter estimate for 16 ants = %v, want within 35%%", medium)
	}
	if c.Estimate(0, 100, src) != 0 {
		t.Fatal("empty nest estimated non-zero")
	}
}

func TestEncounterRateCounterSaturation(t *testing.T) {
	t.Parallel()
	src := rng.New(7)
	// Tiny volume and huge population: every probe hits; estimator must not
	// divide by zero and must return something large but finite.
	c := EncounterRateCounter{Probes: 8, Volume: 0.001}
	got := c.Estimate(1000000, 1000000, src)
	if got <= 0 {
		t.Fatalf("saturated estimate = %d, want positive", got)
	}
}

func TestEncounterRateDefaults(t *testing.T) {
	t.Parallel()
	src := rng.New(8)
	c := EncounterRateCounter{} // zero-value uses defaults
	if got := c.Estimate(10, 100, src); got < 0 {
		t.Fatalf("default-config estimate = %d", got)
	}
	if c.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestBuffonEstimatorConcentratesNearTruth(t *testing.T) {
	t.Parallel()
	src := rng.New(9)
	b := BuffonAreaEstimator{TrailLength: 30, SegmentLength: 0.25}
	const trials = 300
	for _, area := range []float64{4, 16} {
		var sum float64
		for i := 0; i < trials; i++ {
			est, err := b.EstimateArea(area, src)
			if err != nil {
				t.Fatal(err)
			}
			sum += est
		}
		mean := sum / trials
		// Buffon sampling in a bounded square is biased low relative to the
		// ideal chord formula (edge effects shorten effective needles); accept
		// a factor-2 band, which is what the biology reports too.
		if mean < area/2 || mean > area*2 {
			t.Fatalf("Buffon mean estimate %v for true area %v outside factor-2 band", mean, area)
		}
	}
}

// TestBuffonEstimatorUsesLaidTrailLength is the regression test for the
// laid-length bias: dropTrail rounds the trail up to whole needles, laying
// ceil(trail/segLen)·segLen of path per visit, and the estimator formula must
// use that actual length. Two configurations that round to the same needle
// count drop identical segments under the same seed, so after the fix they
// must produce identical estimates; before it, the nominal trail length
// biased the non-multiple configuration low by (1.3/1.5)².
func TestBuffonEstimatorUsesLaidTrailLength(t *testing.T) {
	t.Parallel()
	const area = 4.0
	nonMultiple := BuffonAreaEstimator{TrailLength: 1.3, SegmentLength: 0.5} // lays 3 needles = 1.5
	multiple := BuffonAreaEstimator{TrailLength: 1.5, SegmentLength: 0.5}    // lays 3 needles = 1.5
	for seed := uint64(1); seed <= 20; seed++ {
		a, err := nonMultiple.EstimateArea(area, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := multiple.EstimateArea(area, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("seed %d: same laid trail, different estimates: %v (trail 1.3) vs %v (trail 1.5)", seed, a, b)
		}
	}

	// (A statistical band at a high-rounding setting would not isolate the
	// bug: making the rounding excess large forces needles comparable to the
	// cavity side, where edge effects and the convexity of 1/X dominate the
	// mean regardless of which length the formula uses. The per-seed equality
	// above is the sharp check — it fails under the nominal-length formula
	// for every seed.)
}

func TestBuffonEstimatorErrors(t *testing.T) {
	t.Parallel()
	src := rng.New(10)
	var b BuffonAreaEstimator
	if _, err := b.EstimateArea(0, src); err == nil {
		t.Fatal("zero area accepted")
	}
	if _, err := b.EstimateArea(-3, src); err == nil {
		t.Fatal("negative area accepted")
	}
}

func TestBuffonLargerAreaFewerCrossings(t *testing.T) {
	t.Parallel()
	src := rng.New(11)
	b := BuffonAreaEstimator{TrailLength: 20, SegmentLength: 0.25}
	const trials = 300
	avg := func(area float64) float64 {
		var sum float64
		for i := 0; i < trials; i++ {
			est, err := b.EstimateArea(area, src)
			if err != nil {
				t.Fatal(err)
			}
			sum += est
		}
		return sum / trials
	}
	small, large := avg(2), avg(32)
	if small >= large {
		t.Fatalf("Buffon estimates not ordered: small-area %v >= large-area %v", small, large)
	}
}

func TestSegmentIntersects(t *testing.T) {
	t.Parallel()
	cross1 := segment{0, 0, 2, 2}
	cross2 := segment{0, 2, 2, 0}
	if !cross1.intersects(cross2) {
		t.Fatal("crossing segments not detected")
	}
	parallel1 := segment{0, 0, 1, 0}
	parallel2 := segment{0, 1, 1, 1}
	if parallel1.intersects(parallel2) {
		t.Fatal("parallel segments detected as crossing")
	}
	disjoint := segment{5, 5, 6, 6}
	if cross1.intersects(disjoint) {
		t.Fatal("disjoint segments detected as crossing")
	}
}
