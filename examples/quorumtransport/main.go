// Quorumtransport narrates the full biological emigration mechanism the
// paper's introduction describes (§1.1): scouts canvass candidate sites with
// slow tandem runs; each ant that finds its chosen site busy beyond a quorum
// switches to carrying nestmates directly, at roughly three times the tandem
// pace (the paper's [21]); transports finish the move.
//
// The example contrasts emigrations with and without the transport phase and
// shows the quorum dial's speed-accuracy trade-off under noisy judgment.
//
//	go run ./examples/quorumtransport
package main

import (
	"fmt"
	"log"

	"github.com/gmrl/househunt"
)

func main() {
	const colony = 360

	fmt.Println("emigration with quorum-gated transports vs pure tandem running")
	fmt.Printf("%18s  %8s  %8s\n", "strategy", "solved", "rounds")
	for _, carry := range []int{3, 1} {
		res, err := househunt.Run(
			househunt.WithColonySize(colony),
			househunt.WithBinaryNests(4, 2),
			househunt.WithAlgorithm(househunt.AlgorithmQuorum),
			househunt.WithQuorum(1.5, carry, 0.25),
			househunt.WithSeed(21),
		)
		if err != nil {
			log.Fatal(err)
		}
		label := "transport x3"
		if carry == 1 {
			label = "tandem only"
		}
		fmt.Printf("%18s  %8v  %8d\n", label, res.Solved, res.Rounds)
	}

	fmt.Println("\nthe quorum dial under noisy judgment (10% assessment flips):")
	fmt.Printf("%12s  %10s  %12s\n", "multiplier", "goodWin", "meanRounds")
	for _, mult := range []float64{1.1, 2.0, 3.0} {
		goodWins, roundsSum, solved := 0, 0, 0
		const reps = 8
		for rep := 0; rep < reps; rep++ {
			res, err := househunt.Run(
				househunt.WithColonySize(colony),
				househunt.WithBinaryNests(4, 2),
				househunt.WithAlgorithm(househunt.AlgorithmQuorum),
				househunt.WithQuorum(mult, 3, 0.25),
				househunt.WithAssessmentFlips(0.10),
				househunt.WithSeed(uint64(100*rep+3)),
				househunt.WithMaxRounds(4000),
			)
			if err != nil {
				log.Fatal(err)
			}
			if res.Solved {
				solved++
				roundsSum += res.Rounds
				if res.Winner == 1 || res.Winner == 2 {
					goodWins++
				}
			}
		}
		mean := 0.0
		if solved > 0 {
			mean = float64(roundsSum) / float64(solved)
		}
		fmt.Printf("%12.1f  %7d/%d  %12.1f\n", mult, goodWins, reps, mean)
	}

	fmt.Println()
	fmt.Println("a hair-trigger quorum (1.1x) fires before canvassing has thinned the")
	fmt.Println("field, locking rival sites into transport tugs-of-war — slow, and with")
	fmt.Println("noisier judgment it can crown a misjudged site; a comfortable quorum")
	fmt.Println("(~2x the initial share) lets tandem-run competition pick the winner")
	fmt.Println("first, so transports merely finish the move.")
}
