package algo

import (
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
)

// TestBatchRunAllocationsRoundIndependent pins the no-per-round-allocation
// contract at the public API for every real compiled program: a Batch.Run's
// allocation count is fixed per call (lane setup, result slices) and must not
// scale with the round budget. Comparing a short run against one ~50× longer
// on a single worker catches any hot-path allocation the sim-internal
// per-step assertions might miss (worker fan-out, replicate reset, census).
func TestBatchRunAllocationsRoundIndependent(t *testing.T) {
	env := sim.MustEnvironment([]float64{1, 0, 0.7, 0})
	const n = 96
	seeds := []uint64{3, 5}
	for _, a := range compiledInventory() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			prog, ok := a.(core.BatchCompilable).CompileBatch(n, env)
			if !ok {
				t.Fatalf("%s did not compile", a.Name())
			}
			b, err := sim.NewBatch(env, prog, n, sim.WithBatchWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			run := func(rounds int) float64 {
				// The window above the budget forces every replicate to run
				// the full budget, so the round counts actually differ.
				return testing.AllocsPerRun(5, func() {
					if _, err := b.Run(seeds, rounds, rounds+1); err != nil {
						t.Fatal(err)
					}
				})
			}
			run(4) // warm-up: one-time lazy growth inside the engine
			short := run(4)
			long := run(200)
			if long > short {
				t.Errorf("%s: allocations grew with the round budget: %.1f at 4 rounds, %.1f at 200",
					a.Name(), short, long)
			}
		})
	}
}
