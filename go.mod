module github.com/gmrl/househunt

go 1.24
