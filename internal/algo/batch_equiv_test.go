package algo

import (
	"reflect"
	"sync"
	"testing"

	"github.com/gmrl/househunt/internal/agent"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
)

// TestBatchGoldenEquivalence is the tentpole cross-validation: for equal
// seeds the batch engine must produce round-for-round identical populations
// and commitments to sim.Engine running the scalar SimplePFSM machines.
func TestBatchGoldenEquivalence(t *testing.T) {
	t.Parallel()
	const (
		n         = 128
		maxRounds = 400
	)
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	seeds := []uint64{1, 7, 42, 2015}

	type roundRec struct {
		counts []int
		commit []int
	}
	scalar := make([][]roundRec, len(seeds))
	for si, seed := range seeds {
		agents, err := (SimplePFSM{}).Build(n, env, testSrc(seed).Split(2))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.New(env, agents, sim.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < maxRounds; r++ {
			if err := eng.Step(); err != nil {
				t.Fatalf("seed %d: scalar step: %v", seed, err)
			}
			commit := make([]int, env.K()+1)
			for _, a := range agents {
				commit[a.(*agent.Machine).Regs().Nest]++
			}
			scalar[si] = append(scalar[si], roundRec{counts: eng.Counts(), commit: commit})
		}
	}

	prog, ok := (SimplePFSM{}).CompileBatch(n, env)
	if !ok {
		t.Fatal("SimplePFSM did not compile")
	}
	var mu sync.Mutex
	batchRecs := make([][]roundRec, len(seeds))
	b, err := sim.NewBatch(env, prog, n, sim.WithBatchProbe(func(rep, round int, counts, committed []int) {
		rec := roundRec{
			counts: append([]int(nil), counts...),
			commit: append([]int(nil), committed...),
		}
		mu.Lock()
		batchRecs[rep] = append(batchRecs[rep], rec)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(seeds, maxRounds, maxRounds+1); err != nil {
		t.Fatal(err)
	}

	for si, seed := range seeds {
		if len(batchRecs[si]) != len(scalar[si]) {
			t.Fatalf("seed %d: batch ran %d rounds, scalar %d", seed, len(batchRecs[si]), len(scalar[si]))
		}
		for r := range scalar[si] {
			if !reflect.DeepEqual(batchRecs[si][r], scalar[si][r]) {
				t.Fatalf("seed %d round %d diverged:\nbatch  counts=%v commit=%v\nscalar counts=%v commit=%v",
					seed, r+1,
					batchRecs[si][r].counts, batchRecs[si][r].commit,
					scalar[si][r].counts, scalar[si][r].commit)
			}
		}
	}
}

// TestOptimalBatchGoldenEquivalence is the Algorithm 2 tentpole
// cross-validation: across a seeds × n × k × {rebaseline, literal} grid, the
// batch engine's general (per-ant state column) path must produce
// round-for-round identical populations and commitment censuses to sim.Engine
// running the scalar OptimalAnt colony. The literal variant's cells include
// deadlocking executions, which must reproduce bit-identically too.
func TestOptimalBatchGoldenEquivalence(t *testing.T) {
	t.Parallel()
	const maxRounds = 160
	variants := []Optimal{{}, {Literal: true}}
	ns := []int{32, 96}
	envs := []sim.Environment{
		sim.MustEnvironment([]float64{1, 0}),
		sim.MustEnvironment([]float64{1, 0, 1, 0}),
		sim.MustEnvironment([]float64{0, 1, 1, 0, 0}),
	}
	seeds := []uint64{1, 7, 42, 2015}

	type roundRec struct {
		counts []int
		commit []int
	}
	for _, variant := range variants {
		for _, n := range ns {
			for _, env := range envs {
				scalar := make([][]roundRec, len(seeds))
				for si, seed := range seeds {
					agents, err := variant.Build(n, env, testSrc(seed).Split(2))
					if err != nil {
						t.Fatal(err)
					}
					eng, err := sim.New(env, agents, sim.WithSeed(seed))
					if err != nil {
						t.Fatal(err)
					}
					for r := 0; r < maxRounds; r++ {
						if err := eng.Step(); err != nil {
							t.Fatalf("%s n=%d k=%d seed %d: scalar step: %v", variant.Name(), n, env.K(), seed, err)
						}
						scalar[si] = append(scalar[si], roundRec{
							counts: eng.Counts(),
							commit: core.TakeCensus(agents, env.K()).Committed,
						})
					}
				}

				prog, ok := variant.CompileBatch(n, env)
				if !ok {
					t.Fatalf("%s did not compile", variant.Name())
				}
				if prog.Lockstep() {
					t.Fatalf("%s compiled to a lockstep program; the general path is untested", variant.Name())
				}
				var mu sync.Mutex
				batchRecs := make([][]roundRec, len(seeds))
				b, err := sim.NewBatch(env, prog, n, sim.WithBatchProbe(func(rep, round int, counts, committed []int) {
					rec := roundRec{
						counts: append([]int(nil), counts...),
						commit: append([]int(nil), committed...),
					}
					mu.Lock()
					batchRecs[rep] = append(batchRecs[rep], rec)
					mu.Unlock()
				}))
				if err != nil {
					t.Fatal(err)
				}
				// A window larger than the budget keeps every replicate
				// running all maxRounds rounds so traces line up.
				if _, err := b.Run(seeds, maxRounds, maxRounds+1); err != nil {
					t.Fatal(err)
				}

				for si, seed := range seeds {
					if len(batchRecs[si]) != len(scalar[si]) {
						t.Fatalf("%s n=%d k=%d seed %d: batch ran %d rounds, scalar %d",
							variant.Name(), n, env.K(), seed, len(batchRecs[si]), len(scalar[si]))
					}
					for r := range scalar[si] {
						if !reflect.DeepEqual(batchRecs[si][r], scalar[si][r]) {
							t.Fatalf("%s n=%d k=%d seed %d round %d diverged:\nbatch  counts=%v commit=%v\nscalar counts=%v commit=%v",
								variant.Name(), n, env.K(), seed, r+1,
								batchRecs[si][r].counts, batchRecs[si][r].commit,
								scalar[si][r].counts, scalar[si][r].commit)
						}
					}
				}
			}
		}
	}
}

// TestRunBatchMatchesRunResults checks the runner-level contract: for every
// compilable algorithm, core.RunBatch must return exactly the Results that
// per-seed core.Run produces — same solved flags, winners, round counts and
// final censuses (including the decided count Algorithm 2 exposes) — across
// environments with mixed nest qualities.
func TestRunBatchMatchesRunResults(t *testing.T) {
	t.Parallel()
	envs := []sim.Environment{
		sim.MustEnvironment([]float64{1, 1, 0, 0}),
		sim.MustEnvironment([]float64{1}),
		sim.MustEnvironment([]float64{0, 0, 1}),
	}
	algos := []core.Algorithm{Simple{}, SimplePFSM{}, Optimal{}, Optimal{Literal: true}}
	seeds := []uint64{3, 11, 99, 1234, 87251}
	for _, env := range envs {
		for _, a := range algos {
			cfg := core.RunConfig{N: 64, Env: env, MaxRounds: 5000, StabilityWindow: 2}
			batched, ok, err := core.RunBatch(a, cfg, seeds)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s: expected batch eligibility", a.Name())
			}
			for i, seed := range seeds {
				scfg := cfg
				scfg.Seed = seed
				want, err := core.Run(a, scfg)
				if err != nil {
					t.Fatal(err)
				}
				got := batched[i]
				if got.Solved != want.Solved || got.Winner != want.Winner ||
					got.Rounds != want.Rounds || got.WinnerQuality != want.WinnerQuality ||
					got.Algorithm != want.Algorithm {
					t.Fatalf("%s k=%d seed %d: batch %+v != scalar %+v", a.Name(), env.K(), seed, got, want)
				}
				if !reflect.DeepEqual(got.FinalCensus.Committed, want.FinalCensus.Committed) ||
					got.FinalCensus.Total != want.FinalCensus.Total ||
					got.FinalCensus.Decided != want.FinalCensus.Decided {
					t.Fatalf("%s k=%d seed %d: census diverged: batch %+v != scalar %+v",
						a.Name(), env.K(), seed, got.FinalCensus, want.FinalCensus)
				}
			}
		}
	}
}

// TestRunBatchFallsBackForScalarOnlyConfigs pins the eligibility rules:
// configurations carrying scalar-only features must decline the batch path.
func TestRunBatchFallsBackForScalarOnlyConfigs(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0})
	base := core.RunConfig{N: 16, Env: env}
	ineligible := map[string]core.RunConfig{
		"wrap": func() core.RunConfig {
			c := base
			c.Wrap = func(a []sim.Agent) ([]sim.Agent, error) { return a, nil }
			return c
		}(),
		"matcher": func() core.RunConfig {
			c := base
			c.NewMatcher = func() sim.Matcher { return &sim.AlgorithmOneMatcher{} }
			return c
		}(),
		"concurrent": func() core.RunConfig {
			c := base
			c.Concurrent = true
			return c
		}(),
	}
	for name, cfg := range ineligible {
		if _, ok := core.CompileForBatch(Simple{}, cfg); ok {
			t.Errorf("%s: config should not be batch-eligible", name)
		}
	}
	// Non-compilable algorithms decline too.
	if _, ok := core.CompileForBatch(Adaptive{}, base); ok {
		t.Error("Adaptive has no compiled form yet and must fall back")
	}
	if _, ok, err := core.RunBatch(Adaptive{}, base, []uint64{1}); ok || err != nil {
		t.Errorf("RunBatch on a non-compilable algorithm: ok=%v err=%v, want fallback", ok, err)
	}
}
