// Package agent provides the probabilistic finite state machine (PFSM)
// framework in which the paper models individual ants (§2: "the colony
// consists of n identical probabilistic finite state machines").
//
// A Machine is a declarative PFSM: every state has an emit function (which
// environment call to make this round) and a transition function (which state
// to enter given the call's outcome). The engine's Act/Observe discipline
// maps exactly onto emit/transition, and the framework enforces that
// discipline: a missing state or a transition to an undeclared state is an
// error surfaced through Machine.Err rather than silent misbehaviour.
//
// The register file matches the variables of the paper's pseudocode
// (Algorithm 2 lines 1-5 and Algorithm 3 line 1): the committed nest, the
// remembered count, the perceived quality, and the scratch registers nestT /
// countT / countH used inside Algorithm 2's four-round phases.
package agent

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// StateID names a machine state. The empty string is invalid.
type StateID string

// Registers is the PFSM register file. All algorithms in the paper fit in
// these few cells, which is the point: ants have O(log n) bits of state.
type Registers struct {
	// Nest is the committed nest (paper: "an ant is committed to n_i if
	// nest = i"). Home (0) means uncommitted.
	Nest sim.NestID
	// Count is the remembered population of the committed nest.
	Count int
	// Quality is the perceived quality of the committed nest.
	Quality float64
	// NestT, CountT, CountH are Algorithm 2's intra-phase scratch registers
	// (nest_t, count_t, count_h in the pseudocode).
	NestT  sim.NestID
	CountT int
	CountH int
}

// Spec declares one state's behaviour.
type Spec struct {
	// Emit chooses the environment call for this round. It may read and
	// write registers and draw randomness from the machine's source.
	Emit func(m *Machine, round int) sim.Action
	// Next consumes the outcome and returns the next state. Returning the
	// current state loops.
	Next func(m *Machine, round int, out sim.Outcome) StateID
}

// Machine is a runnable PFSM. It implements sim.Agent. Construct with
// NewMachine; the zero value is unusable.
type Machine struct {
	state  StateID
	regs   Registers
	src    *rng.Source
	spec   map[StateID]Spec
	err    error
	halted bool
}

var _ sim.Agent = (*Machine)(nil)

// NewMachine builds a machine with the given initial state, state table and
// random source. Every Spec must have both Emit and Next.
func NewMachine(initial StateID, spec map[StateID]Spec, src *rng.Source) (*Machine, error) {
	if initial == "" {
		return nil, fmt.Errorf("agent: empty initial state")
	}
	if src == nil {
		return nil, fmt.Errorf("agent: nil random source")
	}
	if _, ok := spec[initial]; !ok {
		return nil, fmt.Errorf("agent: initial state %q not in spec", initial)
	}
	for id, s := range spec {
		if id == "" {
			return nil, fmt.Errorf("agent: empty state id in spec")
		}
		if s.Emit == nil || s.Next == nil {
			return nil, fmt.Errorf("agent: state %q missing Emit or Next", id)
		}
	}
	return &Machine{state: initial, spec: spec, src: src}, nil
}

// State returns the current state.
func (m *Machine) State() StateID { return m.state }

// Regs returns the register file for reading and writing by Spec functions
// and by tests.
func (m *Machine) Regs() *Registers { return &m.regs }

// Src returns the machine's random source.
func (m *Machine) Src() *rng.Source { return m.src }

// Err returns the first protocol error the machine encountered, if any.
func (m *Machine) Err() error { return m.err }

// Act implements sim.Agent. A machine that has erred parks itself passively
// at home so the colony keeps satisfying the one-call-per-round rule; the
// error remains observable through Err.
func (m *Machine) Act(round int) sim.Action {
	if m.err != nil || m.halted {
		return sim.Recruit(false, sim.Home)
	}
	s, ok := m.spec[m.state]
	if !ok {
		m.err = fmt.Errorf("agent: round %d: state %q not in spec", round, m.state)
		return sim.Recruit(false, sim.Home)
	}
	return s.Emit(m, round)
}

// Observe implements sim.Agent.
func (m *Machine) Observe(round int, out sim.Outcome) {
	if m.err != nil || m.halted {
		return
	}
	s, ok := m.spec[m.state]
	if !ok {
		m.err = fmt.Errorf("agent: round %d: state %q not in spec", round, m.state)
		return
	}
	next := s.Next(m, round, out)
	if next == "" {
		m.err = fmt.Errorf("agent: round %d: state %q transitioned to empty state", round, m.state)
		return
	}
	if _, ok := m.spec[next]; !ok {
		m.err = fmt.Errorf("agent: round %d: state %q transitioned to undeclared state %q", round, m.state, next)
		return
	}
	m.state = next
}

// Committed reports the machine's committed nest; it satisfies the core
// package's Committer contract used for convergence detection.
func (m *Machine) Committed() (sim.NestID, bool) {
	return m.regs.Nest, m.regs.Nest != sim.Home
}
