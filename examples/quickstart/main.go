// Quickstart: the smallest possible use of the househunt library.
//
// A colony of 256 ants must choose between 4 candidate nests, 2 of which are
// good. We run the paper's Algorithm 3 ("Simple": recruit with probability
// proportional to nest population) and print the decision.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/gmrl/househunt"
)

func main() {
	res, err := househunt.Run(
		househunt.WithColonySize(256),
		househunt.WithBinaryNests(4, 2),
		househunt.WithAlgorithm(househunt.AlgorithmSimple),
		househunt.WithSeed(2015), // PODC 2015
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Summary())
	fmt.Printf("commitments by nest (index 0 = uncommitted): %v\n", res.Commitments)
	if res.Solved {
		fmt.Printf("the colony now lives in nest %d\n", res.Winner)
	}
}
