package algo

import (
	"github.com/gmrl/househunt/internal/sim"
)

// This file lowers algorithms to the batch engine's compiled form
// (sim.Program). An algorithm that can be compiled implements
// core.BatchCompilable by exposing CompileBatch; the replicate-sweep
// machinery (core.RunBatch, experiment.MeasureConvergence) then executes it
// on the struct-of-arrays fast path, with the scalar agent path as the
// fallback for everything else.

// simpleBatchProgram is Algorithm 3's three-state table: search, then the
// recruit/assess loop. It is the opcode form of newSimpleSpec — the states
// correspond one-to-one and the randomness (a single Bernoulli(count/n) per
// recruit phase, gated on positive quality) is drawn identically, so batch
// executions are bit-identical to both SimplePFSM and the hand-written
// SimpleAnt (which pfsm_test.go proves equivalent to each other).
func simpleBatchProgram(name string) sim.Program {
	return sim.Program{
		Algorithm: name,
		Init:      0,
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscovery, Next: 1},
			{Emit: sim.EmitRecruitPop, Observe: sim.ObserveAdopt, Next: 2},
			{Emit: sim.EmitGotoNest, Observe: sim.ObserveCount, Next: 1},
		},
	}
}

// CompileBatch implements core.BatchCompilable: SimplePFSM's declarative
// state table lowered to opcodes.
func (a SimplePFSM) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return simpleBatchProgram(a.Name()), true
}

// CompileBatch implements core.BatchCompilable. The hand-written SimpleAnt
// and the PFSM formulation execute identically for equal seeds (the active
// flag coincides with quality > 0), so Simple compiles to the same program.
func (a Simple) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if n <= 0 || env.K() == 0 {
		return sim.Program{}, false
	}
	return simpleBatchProgram(a.Name()), true
}
