package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gmrl/househunt/internal/rng"
)

// Batch executes R replicate colonies of n ants each, all running one
// compiled Program, as a struct-of-arrays sweep: per-ant state (PFSM state
// id, register file, RNG stream, location) lives in flat slices rather than
// heap-allocated agent objects, and a round resolves with plain switches over
// opcodes — no interface dispatch, no map lookups and no per-round
// allocations on the hot path. Replicates are fanned out across a worker
// pool; each worker owns one lane of flat arrays and streams replicates
// through it.
//
// The engine is bit-compatible with the scalar path: replicate r seeded with
// seeds[r] produces round-for-round identical populations, commitments and
// final results to an Engine running the same algorithm's scalar agents under
// the same seed (tested against SimplePFSM in internal/algo). That holds
// because the batch engine derives exactly the same RNG streams — envSrc =
// root.Split(0), matchSrc = root.Split(1), ant i = root.Split(2).Split(i) —
// and consumes them in the same order as Engine.Step: per-ant draws are
// stream-disjoint from environment draws, so fusing the emit and move loops
// preserves every sequence.
//
// A Batch is reusable and safe for concurrent Run calls; all mutable state
// lives in per-worker lanes.
type Batch struct {
	env     Environment
	prog    Program
	n       int
	workers int
	probe   func(rep, round int, counts, committed []int)
}

// BatchResult reports one replicate of a Batch run, mirroring the fields the
// scalar runner derives for core.Result.
type BatchResult struct {
	// Seed is the replicate's root seed.
	Seed uint64
	// Solved reports convergence within the round budget.
	Solved bool
	// Winner is the unanimously chosen nest (0 if unsolved).
	Winner NestID
	// WinnerQuality is q(Winner).
	WinnerQuality float64
	// Rounds is the round at which convergence was detected (the end of the
	// stability window), or the budget if unsolved.
	Rounds int
	// Committed is the final commitment census (index 0 = uncommitted).
	Committed []int
}

// BatchOption configures a Batch.
type BatchOption func(*Batch)

// WithBatchWorkers caps the worker pool; values < 1 select GOMAXPROCS.
func WithBatchWorkers(w int) BatchOption {
	return func(b *Batch) { b.workers = w }
}

// WithBatchProbe installs a per-round observer, called after each replicate
// round with that round's end-of-round populations (index 0 = home) and
// commitment census (index 0 = uncommitted). The slices are worker-owned
// scratch, valid only during the call; the probe may be invoked concurrently
// for different replicates. Probes exist for the golden equivalence tests.
func WithBatchProbe(probe func(rep, round int, counts, committed []int)) BatchOption {
	return func(b *Batch) { b.probe = probe }
}

// NewBatch builds a batch engine for n-ant colonies of prog in env.
func NewBatch(env Environment, prog Program, n int, opts ...BatchOption) (*Batch, error) {
	if env.K() == 0 {
		return nil, fmt.Errorf("sim: batch needs a non-empty environment")
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: batch needs a positive colony, got %d", n)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	b := &Batch{env: env, prog: prog, n: n}
	for _, o := range opts {
		o(b)
	}
	return b, nil
}

// N returns the colony size per replicate.
func (b *Batch) N() int { return b.n }

// K returns the number of candidate nests.
func (b *Batch) K() int { return b.env.K() }

// Run executes one replicate per seed and returns the results in seed order.
// maxRounds bounds each replicate; window is the stability window in rounds
// (values < 1 mean 1), both matching the scalar runner's semantics. The first
// replicate error (a compiled program emitting an invalid call) aborts the
// run.
func (b *Batch) Run(seeds []uint64, maxRounds, window int) ([]BatchResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: batch run needs at least one seed")
	}
	if maxRounds <= 0 {
		return nil, fmt.Errorf("sim: batch run needs positive maxRounds, got %d", maxRounds)
	}
	if window < 1 {
		window = 1
	}
	workers := b.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	results := make([]BatchResult, len(seeds))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ln := newLane(b)
			for {
				rep := int(next.Add(1)) - 1
				if rep >= len(seeds) || firstErr.Load() != nil {
					return
				}
				res, err := ln.runReplicate(rep, seeds[rep], maxRounds, window, b.probe)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("sim: batch replicate %d (seed %d): %w", rep, seeds[rep], err))
					return
				}
				results[rep] = res
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return results, nil
}

// lane is one worker's flat-array state: a full colony's registers plus the
// per-round scratch, reused across replicates.
//
// The current Program format has outcome-independent successors, so every
// ant of a colony is always in the same state — the colony advances in
// lockstep through phases. The lane exploits that: the opcode dispatch
// happens once per round, the per-ant work runs in tight specialized loops,
// and a recruit phase needs no recruiter/slot indirection because slot t is
// ant t. When the opcode set grows outcome-dependent transitions, a per-ant
// state column slots back in here.
type lane struct {
	prog Program
	env  Environment
	qual []float64 // quality by nest id (index 0 = home)
	n, k int

	envSrc, matchSrc rng.Source
	antSrc           []rng.Source // one stream per ant, stored by value

	// Register file (struct of arrays); the shared PFSM state lives in
	// runReplicate's phase variable.
	nest    []NestID
	count   []int32
	quality []float64

	// Per-round scratch.
	actNest    []NestID // the nest advertised by this round's search/recruit
	counts     []int    // end-of-round population per nest
	commit     []int    // commitment census, maintained incrementally
	active     []bool   // recruit(1, ·) per ant
	capturedBy []int
	succeeded  []bool
	matcher    AlgorithmOneMatcher
}

func newLane(b *Batch) *lane {
	n, k := b.n, b.env.K()
	qs := b.env.Qualities()
	return &lane{
		prog:       b.prog,
		env:        b.env,
		qual:       qs,
		n:          n,
		k:          k,
		antSrc:     make([]rng.Source, n),
		nest:       make([]NestID, n),
		count:      make([]int32, n),
		quality:    make([]float64, n),
		actNest:    make([]NestID, n),
		counts:     make([]int, k+1),
		commit:     make([]int, k+1),
		active:     make([]bool, n),
		capturedBy: make([]int, n),
		succeeded:  make([]bool, n),
	}
}

// reset re-seeds the lane for a fresh replicate, deriving the same streams
// the scalar stack does: the engine splits {0: environment, 1: matcher} and
// the algorithm builder splits {2} then per-ant substreams.
func (ln *lane) reset(seed uint64) {
	root := rng.New(seed)
	root.SplitInto(0, &ln.envSrc)
	root.SplitInto(1, &ln.matchSrc)
	var agents rng.Source
	root.SplitInto(2, &agents)
	for i := range ln.antSrc {
		agents.SplitInto(uint64(i), &ln.antSrc[i])
	}
	for i := 0; i < ln.n; i++ {
		ln.nest[i] = Home
		ln.count[i] = 0
		ln.quality[i] = 0
	}
	for i := range ln.commit {
		ln.commit[i] = 0
	}
	ln.commit[Home] = ln.n
}

// runReplicate executes one colony to convergence or the round budget.
func (ln *lane) runReplicate(rep int, seed uint64, maxRounds, window int, probe func(rep, round int, counts, committed []int)) (BatchResult, error) {
	ln.reset(seed)
	res := BatchResult{Seed: seed}
	streak := 0
	var winner NestID
	phase := ln.prog.Init
	for round := 1; round <= maxRounds; round++ {
		next, err := ln.step(phase)
		if err != nil {
			return BatchResult{}, fmt.Errorf("round %d: %w", round, err)
		}
		phase = next
		w, ok := ln.census()
		if probe != nil {
			probe(rep, round, ln.counts, ln.commit)
		}
		// Streak bookkeeping mirrors core.Run's until predicate exactly.
		switch {
		case !ok:
			streak = 0
		case streak == 0 || w == winner:
			winner = w
			streak++
		default: // converged, but to a different nest than the streak's
			winner = w
			streak = 1
		}
		res.Rounds = round
		if streak >= window {
			break
		}
	}
	res.Committed = append([]int(nil), ln.commit...)
	if streak >= window {
		res.Solved = true
		res.Winner = winner
		res.WinnerQuality = ln.qual[winner]
	}
	return res, nil
}

// step resolves one synchronous round for the lane's colony: emit + move,
// recruitment matching, end-of-round counts, observe. It is the batch
// counterpart of Engine.Step/resolve with the same randomness. phase is the
// colony's shared PFSM state; the returned value is next round's phase.
func (ln *lane) step(phase uint8) (uint8, error) {
	n, k := ln.n, ln.k
	st := ln.prog.States[phase]
	nest := ln.nest
	actNest := ln.actNest
	counts := ln.counts

	for i := range counts {
		counts[i] = 0
	}

	// Emit and move, accumulating end-of-round populations as we go. Per-ant
	// Bernoulli draws and envSrc search draws touch disjoint streams, so
	// fusing the scalar engine's act/move phases preserves both sequences.
	recruited := false
	switch st.Emit {
	case EmitSearch:
		envSrc := &ln.envSrc
		for i := range actNest {
			dest := NestID(envSrc.Intn(k) + 1)
			actNest[i] = dest
			counts[dest]++
		}
	case EmitGotoNest:
		for i := range nest {
			dest := nest[i]
			if dest < 1 || int(dest) > k {
				return 0, fmt.Errorf("ant %d: go(%d): nest out of range 1..%d", i, dest, k)
			}
			counts[dest]++
		}
	case EmitRecruitPop:
		recruited = true
		nF := float64(n)
		quality := ln.quality
		count := ln.count
		active := ln.active
		for i := range nest {
			b := false
			if quality[i] > 0 {
				b = ln.antSrc[i].Bernoulli(float64(count[i]) / nF)
			}
			active[i] = b
			actNest[i] = nest[i]
		}
		counts[Home] = n

		// Recruitment matching: the paper's Algorithm 1, via the same
		// matcher implementation (and thus the same draw sequence) as the
		// scalar engine. Every ant recruits, so slot t is ant t and no
		// recruiter indirection exists; one concrete call per round costs
		// nothing against the per-ant loops.
		ln.matcher.Match(n, active, &ln.matchSrc, ln.capturedBy, ln.succeeded)
	}

	// Resolve outcome nests in place in actNest: a search outcome is the
	// drawn destination (already there), a go outcome the committed nest,
	// and a recruit outcome the capturer's advertised nest for captured
	// ants. The in-place rewrite is safe because a capturer is never itself
	// captured by another slot (Algorithm 1 blocks both directions), so its
	// entry still holds its own advertised nest when read.
	switch st.Emit {
	case EmitGotoNest:
		copy(actNest, nest)
	case EmitRecruitPop:
		capturedBy := ln.capturedBy
		for i := range actNest {
			if cb := capturedBy[i]; cb >= 0 && cb != i {
				actNest[i] = actNest[cb]
			}
		}
	}

	// Observe: fold outcomes into the registers. Recruit outcomes carry no
	// quality and report the home population (= n, everyone recruited); the
	// commitment census updates incrementally on the rare nest-register
	// writes instead of a full per-round recount.
	commit := ln.commit
	switch st.Observe {
	case ObserveDiscovery:
		count := ln.count
		quality := ln.quality
		for i := range nest {
			outNest := actNest[i]
			if outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
			}
			if recruited {
				count[i] = int32(n)
				quality[i] = 0
			} else {
				count[i] = int32(counts[outNest])
				quality[i] = ln.qual[outNest]
			}
		}
	case ObserveAdopt:
		quality := ln.quality
		for i := range nest {
			if outNest := actNest[i]; outNest != nest[i] {
				commit[nest[i]]--
				commit[outNest]++
				nest[i] = outNest
				quality[i] = 1
			}
		}
	case ObserveCount:
		count := ln.count
		if recruited {
			for i := range count {
				count[i] = int32(n)
			}
		} else {
			for i := range count {
				count[i] = int32(counts[actNest[i]])
			}
		}
	}
	return st.Next, nil
}

// census reports unanimous commitment to a good nest from the incrementally
// maintained tally, mirroring core.TakeCensus + Census.Converged for agents
// that expose commitment only (no Decided, no Faulty — compiled programs
// model neither).
func (ln *lane) census() (NestID, bool) {
	for i := 1; i <= ln.k; i++ {
		if ln.commit[i] == ln.n && ln.qual[i] > 0 {
			return NestID(i), true
		}
	}
	return Home, false
}
