// Package metrics provides lightweight counters and gauges used to instrument
// the simulation engine: recruitment attempts/successes, protocol violations,
// rounds executed, and similar engine-health signals.
//
// Counter and Gauge values are atomic, so engine goroutines may mutate them
// while an observer on another goroutine calls Snapshot: the registry mutex
// guards only the name→metric maps, and the values themselves are read and
// written with atomic operations. A single uncontended atomic add is cheap
// enough that the engine hot path pays no meaningful premium for this.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count, safe for concurrent use.
type Counter struct {
	value atomic.Uint64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.value.Add(1) }

// Add adds delta to the counter; negative deltas are ignored because counters
// are monotone by contract.
func (c *Counter) Add(delta int) {
	if delta > 0 {
		c.value.Add(uint64(delta))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.value.Load() }

// Gauge is an instantaneous value that can move in both directions, safe for
// concurrent use. The float64 is stored as its IEEE-754 bit pattern in an
// atomic word; Add is a CAS loop so concurrent shifts never lose updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		updated := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, updated) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a named collection of counters and gauges. The zero value is
// unusable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter, 16),
		gauges:   make(map[string]*Gauge, 8),
	}
}

// Counter returns the counter with the given name, creating it on first use.
// The returned pointer may be cached by the caller and incremented without
// further map lookups; creation is guarded so setup can race with Snapshot.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns a stable copy of all metric values, sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Value: float64(c.Value()), Kind: KindCounter})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Value: g.Value(), Kind: KindGauge})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Kind distinguishes counter and gauge samples.
type Kind int

// Sample kinds. Starting at 1 keeps the zero value invalid.
const (
	KindCounter Kind = iota + 1
	KindGauge
)

// Sample is one named metric value captured by Snapshot.
type Sample struct {
	Name  string
	Value float64
	Kind  Kind
}

// String renders the registry one metric per line, for CLI summaries.
func (r *Registry) String() string {
	var b strings.Builder
	for _, s := range r.Snapshot() {
		kind := "counter"
		if s.Kind == KindGauge {
			kind = "gauge"
		}
		fmt.Fprintf(&b, "%-40s %-8s %g\n", s.Name, kind, s.Value)
	}
	return b.String()
}
