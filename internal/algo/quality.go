package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// QualityAnt implements the §6 "Non-binary nest qualities" extension: nest
// qualities lie in (0,1] and the recruitment probability becomes
// quality·count/n, folding site assessment into the positive-feedback loop.
// Higher-quality nests recruit proportionally faster, so the colony's urn
// race is biased toward the best site; EXPERIMENTS.md E11 measures how often
// the top-quality nest wins and the quality regret when it does not.
//
// Ants re-assess quality on every visit (the engine reports the nest's
// quality on go outcomes — the ant is physically present), so an ant
// recruited to an unknown nest prices it correctly from its next visit; until
// then it conservatively recruits at quality 0.
type QualityAnt struct {
	n      int
	src    *rng.Source
	phase  simplePhase
	active bool

	nest    sim.NestID
	count   int
	quality float64
}

var _ sim.Agent = (*QualityAnt)(nil)

// NewQualityAnt builds one quality-weighted ant.
func NewQualityAnt(n int, src *rng.Source) *QualityAnt {
	return &QualityAnt{n: n, src: src, phase: simpleSearch, active: true}
}

// Act implements sim.Agent.
func (a *QualityAnt) Act(int) sim.Action {
	switch a.phase {
	case simpleSearch:
		return sim.Search()
	case simpleRecruit:
		b := false
		if a.active {
			b = a.src.Bernoulli(a.quality * float64(a.count) / float64(a.n))
		}
		return sim.Recruit(b, a.nest)
	default:
		return sim.Goto(a.nest)
	}
}

// Observe implements sim.Agent.
func (a *QualityAnt) Observe(_ int, out sim.Outcome) {
	switch a.phase {
	case simpleSearch:
		a.nest = out.Nest
		a.count = out.Count
		a.quality = out.Quality
		if a.quality == 0 {
			a.active = false
		}
		a.phase = simpleRecruit
	case simpleRecruit:
		if out.Nest != a.nest {
			a.nest = out.Nest
			a.active = true
			a.quality = 0 // unknown until the next visit prices it
		}
		a.phase = simpleAssess
	case simpleAssess:
		a.count = out.Count
		a.quality = out.Quality
		a.phase = simpleRecruit
	}
}

// Committed implements the core.Committer contract.
func (a *QualityAnt) Committed() (sim.NestID, bool) {
	return a.nest, a.nest != sim.Home
}

// QualityAware is the core.Algorithm builder for the non-binary extension.
type QualityAware struct{}

// Name implements core.Algorithm.
func (QualityAware) Name() string { return "quality" }

// Build implements core.Algorithm.
func (QualityAware) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: quality needs a positive colony, got %d", n)
	}
	if env.K() == 0 {
		return nil, fmt.Errorf("algo: quality needs a non-empty environment")
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		agents[i] = NewQualityAnt(n, src.Split(uint64(i)))
	}
	return agents, nil
}
