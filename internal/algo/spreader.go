package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// SpreaderAnt realizes the rumor-spreading process underlying the §3 lower
// bound. The "rumor" is the identity of the unique good nest n_w (Theorem
// 3.2's setting): informed ants recruit for n_w every round — the fastest
// possible positive-feedback strategy the model allows — while ignorant ants
// either wait at home to be recruited or search on their own. An ant becomes
// informed when it reaches n_w by search or capture (the lower bound's two
// information channels).
//
// Measuring the rounds until all n ants are informed exhibits the Ω(log n)
// bound: no house-hunting algorithm can beat this process, because solving
// the problem requires informing every ant of the winner's identity.
type SpreaderAnt struct {
	src      *rng.Source
	target   sim.NestID
	informed bool
	searcher bool
}

var _ sim.Agent = (*SpreaderAnt)(nil)

// NewSpreaderAnt builds one spreading-process ant. searcher ants search while
// ignorant; non-searchers wait at home.
func NewSpreaderAnt(src *rng.Source, target sim.NestID, searcher bool) *SpreaderAnt {
	return &SpreaderAnt{src: src, target: target, searcher: searcher}
}

// Act implements sim.Agent.
func (a *SpreaderAnt) Act(int) sim.Action {
	if a.informed {
		return sim.Recruit(true, a.target)
	}
	if a.searcher {
		return sim.Search()
	}
	return sim.Recruit(false, sim.Home)
}

// Observe implements sim.Agent.
func (a *SpreaderAnt) Observe(_ int, out sim.Outcome) {
	if !a.informed && out.Nest == a.target {
		a.informed = true
	}
}

// Informed reports whether the ant knows the winning nest.
func (a *SpreaderAnt) Informed() bool { return a.informed }

// Committed implements the core.Committer contract: informed ants are
// committed to the target, so the runner's convergence detection doubles as
// "all ants informed".
func (a *SpreaderAnt) Committed() (sim.NestID, bool) {
	if !a.informed {
		return sim.Home, false
	}
	return a.target, true
}

// Spreader is the core.Algorithm builder for the lower-bound process.
// Seeds ants (at least 1) search while ignorant and bootstrap the rumor;
// when SearchAll is set every ignorant ant searches, which is the absolute
// best case for spreading speed.
type Spreader struct {
	Seeds     int
	SearchAll bool
}

// Name implements core.Algorithm.
func (s Spreader) Name() string {
	if s.SearchAll {
		return "spreader-searchall"
	}
	return "spreader"
}

// Build implements core.Algorithm.
func (s Spreader) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: spreader needs a positive colony, got %d", n)
	}
	good := env.GoodNests()
	if len(good) != 1 {
		return nil, fmt.Errorf("algo: the lower-bound process needs exactly one good nest, environment has %d", len(good))
	}
	seeds := s.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	if seeds > n {
		seeds = n
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		agents[i] = NewSpreaderAnt(src.Split(uint64(i)), good[0], s.SearchAll || i < seeds)
	}
	return agents, nil
}
