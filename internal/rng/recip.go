package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Recip is a precomputed fixed-point reciprocal of a positive integer
// divisor n. It derives the exact Threshold of count-ratio probabilities —
// NewThreshold(float64(c)/float64(n)) via Threshold, and
// NewThreshold(q·float64(c)/float64(n)) via ThresholdMul — per draw, from
// integer arithmetic only: no per-count table, no float operations on the
// hot path. This is what lets the batch engine's recruit kernels stay
// fixed-point at every colony size instead of capping at a table ceiling.
//
// Exactness is the whole contract: the scalar agents compute their
// probabilities in float64 and hand them to Source.Bernoulli, so a batch
// kernel is only admissible if it reproduces the float result bit for bit.
// Recip does so by emulating IEEE-754 round-to-nearest-even directly: the
// 53-bit mantissa M of fl(c/n) is the correctly rounded quotient
// RNE(c·2^(53+e)/n) for the normalizing exponent e (chosen so
// n ≤ c·2^(e+1) < 2n), computed with a 128-by-64-bit division against the
// precomputed Möller–Granlund reciprocal of n; the threshold is then
// ⌈M·2^−e⌉, exactly NewThreshold's ceiling of p·2⁵³. ThresholdMul adds one
// exactly-rounded 53-bit product in front (emulating fl(q·c)) before the
// same division, mirroring the scalar expression's evaluation order.
// recip_test.go pins both kernels against the float oracle exhaustively
// over small divisors and by property sweep over large ones.
type Recip struct {
	n    uint64 // the divisor
	d    uint64 // n normalized: n << z, top bit set
	v    uint64 // Möller–Granlund word reciprocal of d
	z    uint   // normalization shift: 64 − bits.Len64(n)
	lenN uint   // bits.Len64(n)
	nF   float64
}

// MaxRecipN bounds NewRecip divisors: 2⁵³, the largest n for which every
// count c ≤ n converts to float64 exactly. The kernels emulate the scalar
// float expressions bit for bit, which requires exact operands.
const MaxRecipN = 1 << 53

// NewRecip precomputes the reciprocal of n. It panics when n is outside
// [1, MaxRecipN]; callers size-validate first (colonies near 2⁵³ ants are
// unconstructible long before this bound bites).
func NewRecip(n int) Recip {
	if n <= 0 || uint64(n) > MaxRecipN {
		panic(fmt.Sprintf("rng: NewRecip divisor %d outside [1, 2^53]", n))
	}
	un := uint64(n)
	z := uint(bits.LeadingZeros64(un))
	d := un << z
	// v = ⌊(2¹²⁸−1)/d⌋ − 2⁶⁴, the 2-by-1 division reciprocal.
	v, _ := bits.Div64(^d, ^uint64(0), d)
	return Recip{n: un, d: d, v: v, z: z, lenN: 64 - z, nF: float64(n)}
}

// N returns the divisor.
func (r Recip) N() int { return int(r.n) }

// divRNE divides the 128-bit numerator u = uhi·2⁶⁴ + ulo (already scaled by
// the normalization shift z) by the normalized divisor d, rounding the
// quotient to nearest, ties to even. Precondition: uhi < d. The remainder
// comparison against d−rem is exact because normalization scales numerator
// and divisor by the same power of two.
//
//hh:hotpath
func (r Recip) divRNE(uhi, ulo uint64) uint64 {
	d := r.d
	// Möller–Granlund 2-by-1 division via the precomputed reciprocal
	// (no hardware divide): q = ⌊u/d⌋, rem = u mod d.
	qh, ql := bits.Mul64(r.v, uhi)
	var carry uint64
	ql, carry = bits.Add64(ql, ulo, 0)
	qh, _ = bits.Add64(qh, uhi, carry)
	qh++
	rem := ulo - qh*d
	if rem > ql {
		qh--
		rem += d
	}
	if rem >= d {
		qh++
		rem -= d
	}
	// Round to nearest: up when 2·rem > d, and on the exact tie when the
	// truncated quotient is odd (ties to even).
	half := d - rem
	if rem > half || (rem == half && qh&1 == 1) {
		qh++
	}
	return qh
}

// Threshold returns NewThreshold(float64(c) / float64(n)) — the exact
// fixed-point Bernoulli bound of the scalar count-ratio probability —
// computed with integer arithmetic only.
//
//hh:hotpath
func (r Recip) Threshold(c int) Threshold {
	if c <= 0 {
		return ThresholdNever // p ≤ 0 rejects draw-free, like NewThreshold
	}
	uc := uint64(c)
	if uc >= r.n {
		return ThresholdAlways // p ≥ 1 accepts draw-free
	}
	// Choose e with n ≤ c·2^(e+1) < 2n, so the true ratio lies in
	// [2^−(e+1), 2^−e) and the rounded 53-bit mantissa M = RNE(c·2^(53+e)/n)
	// sits in [2⁵², 2⁵³].
	s := r.lenN - uint(bits.Len64(uc))
	e := s
	if s > 0 && uc<<s >= r.n {
		e = s - 1
	}
	// Numerator c·2^(53+e), pre-shifted by z so the division is by d = n·2^z.
	// c·2^(53+e) < n·2⁵³ keeps the scaled high word below d.
	sh := 53 + e + r.z
	var uhi, ulo uint64
	if sh < 64 {
		uhi = uc >> (64 - sh)
		ulo = uc << sh
	} else {
		uhi = uc << (sh - 64)
	}
	m := r.divRNE(uhi, ulo)
	// NewThreshold's ceiling: t = ⌈fl(c/n)·2⁵³⌉ = ⌈M·2^−e⌉. A mantissa that
	// rounded up to 2⁵³ renormalizes into the next binade, where the ceiling
	// below is exact for it too.
	return Threshold((m + 1<<e - 1) >> e)
}

// ThresholdMul returns NewThreshold(q * float64(c) / float64(n)) — the
// scalar quality-weighted probability, with its left-to-right float
// evaluation order (the product rounds once, the quotient rounds once) —
// computed with integer arithmetic on the main path. Inputs outside the
// fast domain (q ≤ 0, NaN, infinite or subnormal q, non-positive c, or
// products that leave float64's normal range) fall back to the float
// oracle itself, which is trivially exact and cold: engine quality
// registers hold environment qualities, 0 or 1, and counts at most n.
//
//hh:hotpath
func (r Recip) ThresholdMul(q float64, c int) Threshold {
	qb := math.Float64bits(q)
	exp := int(qb >> 52) // sign bit folds in: negatives have exp ≥ 2048
	if c <= 0 || uint64(c) > 1<<53 || exp == 0 || exp >= 0x7ff {
		// q ≤ 0 (sign set ⇒ exp ≥ 2048), ±0/subnormal (exp 0), NaN/Inf
		// (exp 0x7ff), a non-positive count, or a count too large to
		// convert to float64 exactly: delegate to the float definition.
		// Cold by construction for engine inputs (counts never exceed n).
		return NewThreshold(q * float64(c) / r.nF) //hh:floatok cold fallback outside the integer kernels' domain delegates to the float oracle it emulates
	}
	mant := qb&(1<<52-1) | 1<<52
	uc := uint64(c)
	// fl(q·c): exact 106-bit product, rounded to a 53-bit mantissa am with
	// value am·2^e2 (am ∈ [2⁵², 2⁵³)).
	hi, lo := bits.Mul64(mant, uc)
	e2 := exp - 1075 // q = mant·2^(exp−1075)
	if hi == 0 && lo < 1<<53 {
		// The product is exact and already normalized: mant ≥ 2⁵² and
		// c ≥ 1 put it in [2⁵², 2⁵³).
	} else {
		var bl int
		if hi != 0 {
			bl = 128 - bits.LeadingZeros64(hi)
		} else {
			bl = 64 - bits.LeadingZeros64(lo)
		}
		t := uint(bl - 53)
		rem := lo & (1<<t - 1)
		qv := hi<<(64-t) | lo>>t
		half := uint64(1) << (t - 1)
		if rem > half || (rem == half && qv&1 == 1) {
			qv++
		}
		e2 += int(t)
		if qv == 1<<53 { // rounded into the next binade
			qv >>= 1
			e2++
		}
		lo = qv
	}
	am := lo // 53-bit normalized mantissa of fl(q·c), value am·2^e2
	if e2 < -1074 || e2 > 971 {
		// fl(q·c) leaves the normal range (subnormal rounding granularity,
		// or overflow to +Inf): the float oracle is authoritative.
		return NewThreshold(q * float64(c) / r.nF) //hh:floatok cold fallback outside the integer kernels' domain delegates to the float oracle it emulates
	}
	// fl(am·2^e2 / n): locate the quotient's binade. The ratio lies in
	// [2^E, 2^(E+1)) with E = 52 + e2 − lenN, bumped by one when
	// am ≥ n·2^(53−lenN).
	E := 52 + e2 - int(r.lenN)
	var geq bool
	if r.lenN <= 53 {
		geq = am >= r.n<<(53-r.lenN)
	} else {
		geq = true // n = 2⁵³ (lenN 54): am ≥ 2⁵² = n·2^−1 always
	}
	if geq {
		E++
	}
	switch {
	case E >= 0:
		return ThresholdAlways // ratio ≥ 1 accepts draw-free
	case E < -1022:
		// Quotient in (or rounding through) the subnormal range: oracle.
		return NewThreshold(q * float64(c) / r.nF) //hh:floatok cold fallback outside the integer kernels' domain delegates to the float oracle it emulates
	case E <= -55:
		// 0 < fl(p) < 2^−53: the ceiling of p·2⁵³ is 1 for the whole range.
		return 1
	}
	// Mantissa M = RNE(am·2^g/n) with g = 52 − E + e2, then the same ceiling
	// as Threshold. Since E = 52 + e2 − lenN (+1 when geq), g collapses to
	// lenN − bump ∈ {lenN−1, lenN}, i.e. the numerator shift is just n's
	// bit length adjusted by the binade bump — bounded and integer-exact.
	e := -(E + 1)
	g := int(r.lenN)
	if geq {
		g--
	}
	sh := uint(g) + r.z
	var uhi, ulo uint64
	if sh < 64 {
		uhi = am >> (64 - sh)
		ulo = am << sh
	} else {
		uhi = am << (sh - 64)
	}
	m := r.divRNE(uhi, ulo)
	return Threshold((m + 1<<uint(e) - 1) >> uint(e))
}
