package stats

import (
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

func TestBinomialTailUpper(t *testing.T) {
	t.Parallel()
	// P[X >= 75] for X ~ Bin(100, 0.5) is tiny; the bound must reflect that.
	if got := BinomialTailUpper(100, 0.5, 75); got > 1e-4 {
		t.Fatalf("tail bound %v too loose", got)
	}
	if got := BinomialTailUpper(100, 0.5, 40); got != 1 {
		t.Fatalf("below-mean threshold should give trivial bound 1, got %v", got)
	}
	if got := BinomialTailUpper(100, 0.5, 0); got != 1 {
		t.Fatalf("k=0 should give 1, got %v", got)
	}
	if got := BinomialTailUpper(100, 0.5, 101); got != 0 {
		t.Fatalf("k>n should give 0, got %v", got)
	}
}

func TestBinomialTailLower(t *testing.T) {
	t.Parallel()
	if got := BinomialTailLower(100, 0.5, 25); got > 1e-4 {
		t.Fatalf("lower tail bound %v too loose", got)
	}
	if got := BinomialTailLower(100, 0.5, 60); got != 1 {
		t.Fatalf("above-mean threshold should give 1, got %v", got)
	}
	if got := BinomialTailLower(100, 0.5, -1); got != 0 {
		t.Fatalf("k<0 should give 0, got %v", got)
	}
	if got := BinomialTailLower(100, 0.5, 100); got != 1 {
		t.Fatalf("k=n should give 1, got %v", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	t.Parallel()
	lo, hi := WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson interval [%v, %v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("Wilson interval [%v, %v] too wide for n=100", lo, hi)
	}
	lo, hi = WilsonInterval(0, 100)
	if lo != 0 || hi > 0.06 {
		t.Fatalf("Wilson interval for 0/100 = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100)
	if hi != 1 || lo < 0.94 {
		t.Fatalf("Wilson interval for 100/100 = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson interval with no trials = [%v, %v], want [0,1]", lo, hi)
	}
}

func TestBootstrapCI(t *testing.T) {
	t.Parallel()
	src := rng.New(55)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.NormFloat64() + 42
	}
	lo, hi, err := BootstrapCI(xs, 0.95, 500, src)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 42 || hi < 42 {
		t.Fatalf("bootstrap CI [%v, %v] misses true mean 42", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("bootstrap CI [%v, %v] too wide", lo, hi)
	}
	if _, _, err := BootstrapCI(nil, 0.95, 100, src); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, _, err := BootstrapCI(xs, 1.5, 100, src); err == nil {
		t.Fatal("bad level accepted")
	}
}
